// Visualizes the paper's communication pattern (Figures 5 and 6) on a
// small simulated fabric: the cardinal two-step switch protocol, the
// diagonal two-hop forwarding through intermediaries, and the resulting
// per-router traffic.
//
//   ./comm_pattern [--fabric 5] [--nz 4] [--iterations 2]
//                  [--trace-json out.json]
//                  [--lint off|warn|strict] [--hazard-check]
//
// --trace-json writes a Perfetto/Chrome trace_event timeline of the run
// (open at https://ui.perfetto.dev): one track per PE with per-phase
// slices plus instants for every routed block.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dataflow/colors.hpp"
#include "dataflow/harness_cli.hpp"
#include "core/launcher.hpp"
#include "core/tpfa_program.hpp"
#include "obs/phase.hpp"
#include "physics/problem.hpp"
#include "wse/fabric.hpp"

int main(int argc, const char** argv) {
  using namespace fvf;
  const CliParser cli(argc, argv);
  const i32 n = static_cast<i32>(cli.get_int("fabric", 5));
  const i32 nz = static_cast<i32>(cli.get_int("nz", 4));
  const i32 iterations = static_cast<i32>(cli.get_int("iterations", 2));

  std::cout <<
      "Communication plan of the TPFA dataflow program (paper Figs 5-6)\n"
      "----------------------------------------------------------------\n"
      "Cardinal exchange (switch protocol, Fig. 6):\n"
      "  phase 1: even-coordinate PEs broadcast their (p,rho) column and a\n"
      "           router command; the command flips both routers' switch\n"
      "           positions (Sending <-> Receiving)\n"
      "  phase 2: odd PEs, triggered by the command, send back; a second\n"
      "           command restores the switches\n"
      "Diagonal exchange (two hops via intermediaries, Fig. 5):\n"
      "  every PE forwards each received cardinal block, rotated\n"
      "  counterclockwise (W->S, S->E, E->N, N->W), so corner data reaches\n"
      "  the diagonal target concurrently through 4 distinct paths.\n\n";

  TextTable colors({"color", "role", "moves", "delivers face",
                    "forwarded on"},
                   {Align::Left, Align::Left, Align::Left, Align::Left,
                    Align::Left});
  for (const wse::Color c : dataflow::kCardinalColors) {
    colors.add_row({std::to_string(c.id()), "cardinal data",
                    std::string(wse::dir_name(dataflow::movement_dir(c))),
                    std::string(mesh::face_name(dataflow::cardinal_face(c))),
                    std::to_string(dataflow::diagonal_forward_color(c).id())});
  }
  for (const wse::Color c : dataflow::kDiagonalColors) {
    colors.add_row({std::to_string(c.id()), "diagonal forward",
                    std::string(wse::dir_name(dataflow::movement_dir(c))),
                    std::string(mesh::face_name(dataflow::diagonal_face(c))),
                    "-"});
  }
  std::cout << colors.render();

  // Run the real program and report measured traffic.
  const physics::FlowProblem problem =
      physics::make_benchmark_problem(Extents3{n, n, nz}, 42);
  core::DataflowOptions options;
  options.iterations = iterations;
  options.trace_json_path = cli.get_string("trace-json", "");
  // Static lint level and dynamic hazard detector (both off by default).
  dataflow::apply_verification_flags(options, cli);
  const core::DataflowResult result =
      core::run_dataflow_tpfa(problem, options);
  dataflow::print_hazard_summary(result, options.execution.hazard_check,
                                 std::cout);
  if (!result.ok()) {
    std::cerr << "run failed: " << result.errors[0] << "\n";
    return 1;
  }

  std::cout << "\nMeasured on a " << n << "x" << n << " fabric, Nz = " << nz
            << ", " << iterations << " iterations:\n";
  TextTable traffic({"metric", "value"}, {Align::Left, Align::Right});
  traffic.add_row({"wavelets sent",
                   format_count(static_cast<i64>(
                       result.counters.wavelets_sent))});
  traffic.add_row({"wavelets received (delivered to PEs)",
                   format_count(static_cast<i64>(
                       result.counters.wavelets_received))});
  traffic.add_row({"router commands (switch flips)",
                   format_count(static_cast<i64>(
                       result.counters.controls_sent))});
  traffic.add_row({"fabric->memory moves (FMOV)",
                   format_count(static_cast<i64>(result.counters.fmov))});
  traffic.add_row({"events simulated",
                   format_count(static_cast<i64>(result.events_processed))});
  traffic.add_row({"makespan", format_fixed(result.makespan_cycles, 0) +
                                   " cycles"});
  std::cout << traffic.render();

  std::cout << "\nPer-color fabric traffic (wavelet-hops):\n";
  TextTable per_color({"color", "role", "wavelet-hops"},
                      {Align::Left, Align::Left, Align::Right});
  for (u8 c = 0; c < 8; ++c) {
    per_color.add_row({std::to_string(c),
                       c < 4 ? "cardinal data" : "diagonal forward",
                       format_count(static_cast<i64>(
                           result.color_traffic[c]))});
  }
  std::cout << per_color.render();

  // Measured attribution from the phase profiler: where the PEs' cycles
  // actually went (the paper's Table 3 time split, but measured).
  std::cout << "\nMeasured per-phase time split (all PEs):\n";
  TextTable phases({"phase", "cycles", "share"},
                   {Align::Left, Align::Right, Align::Right});
  const f64 phase_total = result.phase_cycles.total();
  for (u8 p = 0; p < obs::kPhaseCount; ++p) {
    const obs::Phase phase = static_cast<obs::Phase>(p);
    const f64 cycles = result.phase_cycles[phase];
    phases.add_row({std::string(obs::phase_name(phase)),
                    format_fixed(cycles, 0),
                    phase_total > 0.0
                        ? format_fixed(cycles / phase_total * 100.0, 1) + "%"
                        : "-"});
  }
  std::cout << phases.render();
  if (!options.trace_json_path.empty()) {
    std::cout << "\nTimeline written to " << options.trace_json_path
              << " (open at https://ui.perfetto.dev)\n";
  }

  // Expected interior traffic: each PE sends 4 cardinal + 4 forwarded
  // blocks of 2*Nz wavelets per iteration.
  const i64 interior = static_cast<i64>(n - 2) * (n - 2);
  std::cout << "\nSanity: an interior PE receives 8 blocks x 2*Nz words = "
            << 16 * nz << " fabric loads per iteration (Table 4: 16 per "
            << "cell); " << interior << " interior PEs in this fabric.\n";
  return 0;
}
