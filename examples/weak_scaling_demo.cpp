// Demonstrates the paper's weak-scaling result (Table 2) live on the
// event simulator: growing the fabric at fixed column depth leaves the
// simulated time per iteration nearly constant while throughput grows
// linearly with the cell count.
//
//   ./weak_scaling_demo [--nz 12] [--iterations 3] [--max-fabric 14]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/launcher.hpp"
#include "physics/problem.hpp"

int main(int argc, const char** argv) {
  using namespace fvf;
  const CliParser cli(argc, argv);
  const i32 nz = static_cast<i32>(cli.get_int("nz", 12));
  const i32 iterations = static_cast<i32>(cli.get_int("iterations", 3));
  const i32 max_fabric = static_cast<i32>(cli.get_int("max-fabric", 14));

  std::cout << "Weak scaling on the simulated wafer-scale engine\n"
            << "(fixed Nz = " << nz << ", " << iterations
            << " applications of Algorithm 1 per run)\n\n";

  core::DataflowOptions options;
  options.iterations = iterations;

  TextTable table({"fabric", "PEs", "cells", "cycles/iter",
                   "time/iter [us]", "throughput [Mcell/s]", "scaling"});
  f64 baseline_cycles = 0.0;
  for (i32 n = 4; n <= max_fabric; n += 2) {
    const physics::FlowProblem problem =
        physics::make_benchmark_problem(Extents3{n, n, nz}, 42);
    const core::DataflowResult result =
        core::run_dataflow_tpfa(problem, options);
    if (!result.ok()) {
      std::cerr << "run failed at " << n << ": " << result.errors[0] << "\n";
      return 1;
    }
    const f64 cycles_per_iter =
        result.makespan_cycles / static_cast<f64>(iterations);
    const f64 seconds_per_iter =
        options.timings.seconds(cycles_per_iter);
    if (baseline_cycles == 0.0) {
      baseline_cycles = cycles_per_iter;
    }
    table.add_row(
        {std::to_string(n) + "x" + std::to_string(n),
         format_count(static_cast<i64>(n) * n),
         format_count(problem.cell_count()),
         format_fixed(cycles_per_iter, 0),
         format_fixed(seconds_per_iter * 1e6, 2),
         format_fixed(static_cast<f64>(problem.cell_count()) /
                          seconds_per_iter / 1e6,
                      1),
         format_fixed(cycles_per_iter / baseline_cycles, 3)});
  }
  std::cout << table.render();
  std::cout << "\nThe 'scaling' column staying ~1.0 while throughput grows\n"
               "with the PE count is the paper's near-perfect weak scaling\n"
               "(Table 2: 0.0813 s -> 0.0823 s while throughput grows\n"
               "121 -> 2227 Gcell/s).\n";
  return 0;
}
