// Dataflow linear solver demo: conjugate gradients running ON the
// simulated wafer-scale engine (the paper's future-work direction,
// Section 9). The matrix-free TPFA operator is applied via the same
// 10-neighbor halo exchange as the flux kernel; the global dot products
// run over chain-reduction trees on the fabric.
//
//   ./dataflow_solver [--nx 8] [--ny 8] [--nz 8] [--tol 1e-6] [--threads N]
//                     [--fault-seed S --fault-rate R] [--trace-json out.json]
//                     [--lint off|warn|strict] [--hazard-check]
//
// --fault-rate > 0 runs the solve under seeded fault injection (link
// stalls, payload bit flips, transient PE halts at the same per-event
// rate); the halo ack/retransmit layer recovers dropped blocks and the
// run prints the injected/detected/recovered/unrecovered accounting.
#include <cmath>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dataflow/harness_cli.hpp"
#include "core/cg_program.hpp"
#include "core/linear_stencil.hpp"
#include "obs/phase.hpp"
#include "physics/problem.hpp"
#include "solver/krylov.hpp"

int main(int argc, const char** argv) {
  using namespace fvf;
  const CliParser cli(argc, argv);
  const i32 nx = static_cast<i32>(cli.get_int("nx", 8));
  const i32 ny = static_cast<i32>(cli.get_int("ny", 8));
  const i32 nz = static_cast<i32>(cli.get_int("nz", 8));
  const f32 tol = static_cast<f32>(cli.get_double("tol", 1e-6));

  const physics::FlowProblem problem = physics::make_benchmark_problem(
      Extents3{nx, ny, nz}, static_cast<u64>(cli.get_int("seed", 42)));
  // A short implicit step (1 h) gives the strong diagonal shift typical
  // of the early transient; the log-normal permeability still makes the
  // off-diagonal coupling heterogeneous across four decades.
  const f64 dt = cli.get_double("dt", 3600.0);
  const core::LinearStencil stencil = core::build_linear_stencil(problem, dt);
  const core::ManufacturedSystem sys = core::manufacture_solution(stencil);

  std::cout << "Solving the linearized TPFA pressure system A x = b on a "
            << nx << "x" << ny << " fabric (" << problem.cell_count()
            << " unknowns)\n";
  std::cout << "Operator symmetry defect: " << stencil.max_asymmetry()
            << "\n\n";

  // Jacobi-scaled system A~ y = b~ (x = D^{-1/2} y): the standard
  // diagonal preconditioning, applied as a pre-transform so the fabric
  // kernel stays plain CG.
  const core::ScaledSystem scaled = core::jacobi_scale(stencil);
  const Array3<f32> scaled_rhs = core::scale_rhs(scaled, sys.rhs);

  // --- fabric CG ------------------------------------------------------------
  core::DataflowCgOptions options;
  options.kernel.relative_tolerance = tol;
  options.kernel.max_iterations =
      static_cast<i32>(cli.get_int("max-iterations", 500));
  // Tiled parallel event engine; every value produces bit-identical
  // results (the default stays serial).
  options.execution.threads = static_cast<i32>(cli.get_int("threads", 1));
  // Seeded fault scenario (same rate for all three fault classes); a
  // given seed/rate is bit-for-bit reproducible across --threads values.
  const f64 fault_rate = cli.get_double("fault-rate", 0.0);
  options.execution.fault = wse::FaultConfig::uniform(
      static_cast<u64>(cli.get_int("fault-seed", 1)), fault_rate);
  // Leave the (unprotected) AllReduce colors out of the flip campaign;
  // the halo retransmit layer recovers everything else.
  options.execution.fault.flip_color_mask = 0x00FFu;
  // Perfetto/Chrome trace_event timeline (open at ui.perfetto.dev);
  // includes fault instants when injection is on.
  options.trace_json_path = cli.get_string("trace-json", "");
  // Static lint level and dynamic hazard detector (both off by default;
  // the detector never changes results, only diagnoses).
  dataflow::apply_verification_flags(options, cli);
  const core::DataflowCgResult fabric =
      core::run_dataflow_cg(scaled.stencil, scaled_rhs, options);
  dataflow::print_hazard_summary(fabric, options.execution.hazard_check,
                                 std::cout);
  if (fault_rate > 0.0) {
    const wse::FaultStats& fs = fabric.faults;
    std::cout << "Fault injection: " << fs.injected() << " injected ("
              << fs.stalls_injected << " stalls, " << fs.flips_injected
              << " flips, " << fs.halts_injected << " halts), "
              << fs.detected() << " detected, " << fs.recovered()
              << " recovered, " << fs.unrecovered() << " unrecovered\n\n";
  }
  if (!fabric.ok()) {
    std::cerr << "fabric CG failed: " << fabric.errors[0] << "\n";
    return 1;
  }
  const Array3<f32> fabric_x = core::unscale_solution(scaled, fabric.solution);

  // --- host CG reference (Jacobi-preconditioned, f64) --------------------------
  const usize n = static_cast<usize>(problem.cell_count());
  std::vector<f64> rhs(n), x_host(n, 0.0), diag(n);
  for (i64 i = 0; i < problem.cell_count(); ++i) {
    rhs[static_cast<usize>(i)] = sys.rhs[i];
    diag[static_cast<usize>(i)] = stencil.diag[i];
  }
  solver::KrylovOptions host_options;
  host_options.relative_tolerance = tol;
  host_options.max_iterations = options.kernel.max_iterations;
  const solver::KrylovResult host = solver::conjugate_gradient(
      [&stencil](std::span<const f64> u, std::span<f64> out) {
        stencil.apply_f64(u, out);
      },
      rhs, x_host, host_options,
      solver::make_jacobi_preconditioner(std::move(diag)));

  // --- compare -----------------------------------------------------------------
  f64 err_exact = 0.0, err_host = 0.0, scale = 0.0;
  for (i64 i = 0; i < problem.cell_count(); ++i) {
    err_exact = std::max(err_exact, std::abs(static_cast<f64>(fabric_x[i]) -
                                             sys.exact[i]));
    err_host = std::max(err_host, std::abs(static_cast<f64>(fabric_x[i]) -
                                           x_host[static_cast<usize>(i)]));
    scale = std::max(scale, std::abs(static_cast<f64>(sys.exact[i])));
  }

  TextTable table({"metric", "fabric CG", "host CG (f64)"},
                  {Align::Left, Align::Right, Align::Right});
  table.add_row({"converged", fabric.converged ? "yes" : "NO",
                 host.converged ? "yes" : "NO"});
  table.add_row({"iterations", std::to_string(fabric.iterations),
                 std::to_string(host.iterations)});
  table.add_row({"||r0||", format_fixed(fabric.initial_residual_norm, 4),
                 format_fixed(host.initial_residual_norm, 4)});
  table.add_row({"||r||", format_fixed(fabric.final_residual_norm, 8),
                 format_fixed(host.final_residual_norm, 8)});
  table.add_row({"simulated device time",
                 format_fixed(fabric.device_seconds * 1e6, 1) + " us", "-"});
  table.add_row({"fabric wavelets",
                 format_count(static_cast<i64>(
                     fabric.counters.wavelets_sent)),
                 "-"});
  std::cout << table.render();
  if (const f64 phase_total = fabric.phase_cycles.total();
      phase_total > 0.0) {
    std::cout << "\nfabric time split:";
    for (u8 p = 0; p < obs::kPhaseCount; ++p) {
      const obs::Phase phase = static_cast<obs::Phase>(p);
      std::cout << (p == 0 ? " " : ", ") << obs::phase_name(phase) << " "
                << format_fixed(
                       fabric.phase_cycles[phase] / phase_total * 100.0, 1)
                << "%";
    }
    std::cout << "\n";
  }
  std::cout << "\nmax |x_fabric - x_exact| / |x_exact| = "
            << format_fixed(err_exact / scale, 8) << "\n";
  std::cout << "max |x_fabric - x_host|  / |x_exact| = "
            << format_fixed(err_host / scale, 8) << "\n";
  return fabric.converged && err_exact < scale * 1e-2 ? 0 : 1;
}
