// CO2 injection scenario: the paper's motivating application. Uses the
// implicit-solver extension (matrix-free TPFA operator + Newton + Krylov
// + backward Euler) to simulate pressure build-up around an injection
// well in a heterogeneous storage formation with a structural dome.
//
//   ./co2_injection [--nx 12] [--ny 12] [--nz 8] [--days 60] [--rate 2.0]
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "physics/problem.hpp"
#include "solver/timestepper.hpp"

int main(int argc, const char** argv) {
  using namespace fvf;
  const CliParser cli(argc, argv);
  const i32 nx = static_cast<i32>(cli.get_int("nx", 12));
  const i32 ny = static_cast<i32>(cli.get_int("ny", 12));
  const i32 nz = static_cast<i32>(cli.get_int("nz", 8));
  const f64 days = cli.get_double("days", 60.0);
  const f64 rate = cli.get_double("rate", 2.0);  // kg/s

  physics::ProblemSpec spec;
  spec.extents = Extents3{nx, ny, nz};
  spec.spacing = mesh::Spacing3{50.0, 50.0, 5.0};
  spec.geomodel = physics::GeomodelKind::Lognormal;
  spec.dome_amplitude = 15.0;  // structural trap
  spec.seed = static_cast<u64>(cli.get_int("seed", 42));
  const physics::FlowProblem problem(spec);

  std::cout << "CO2 injection into " << problem.describe() << "\n";
  std::cout << "Injector at the dome crest, rate " << rate << " kg/s, "
            << days << " days, backward-Euler + Newton + BiCGStab\n\n";

  solver::FlowOperator op(problem, units::kDay);
  // Perforate the bottom-centre cell (down-dip injection).
  const Coord3 well{nx / 2, ny / 2, 0};
  op.add_source(solver::SourceTerm{well, rate});

  std::vector<f64> pressure(static_cast<usize>(problem.cell_count()));
  for (i64 i = 0; i < problem.cell_count(); ++i) {
    pressure[static_cast<usize>(i)] = problem.initial_pressure()[i];
  }
  const f64 p0_well = pressure[static_cast<usize>(
      problem.extents().linear(well.x, well.y, well.z))];

  solver::TimeStepperOptions options;
  options.dt_initial = 0.5 * units::kDay;
  options.dt_max = 10.0 * units::kDay;
  const solver::SimulationReport report =
      solver::simulate_to(op, pressure, days * units::kDay, options);

  TextTable table({"time [d]", "dt [d]", "Newton its", "linear its",
                   "min p [MPa]", "max p [MPa]"});
  for (const solver::StepRecord& step : report.steps) {
    if (!step.converged) {
      table.add_row({format_fixed(step.time_s / units::kDay, 2),
                     format_fixed(step.dt_s / units::kDay, 2),
                     std::to_string(step.newton_iterations), "-", "cut",
                     "-"});
      continue;
    }
    table.add_row({format_fixed(step.time_s / units::kDay, 2),
                   format_fixed(step.dt_s / units::kDay, 2),
                   std::to_string(step.newton_iterations),
                   std::to_string(step.linear_iterations),
                   format_fixed(step.min_pressure / 1e6, 3),
                   format_fixed(step.max_pressure / 1e6, 3)});
  }
  std::cout << table.render();

  const f64 p1_well = pressure[static_cast<usize>(
      problem.extents().linear(well.x, well.y, well.z))];
  std::cout << "\nWell-cell pressure: "
            << format_fixed(p0_well / 1e6, 3) << " MPa -> "
            << format_fixed(p1_well / 1e6, 3) << " MPa (+"
            << format_fixed((p1_well - p0_well) / 1e6, 3) << " MPa)\n";
  std::cout << (report.completed ? "Simulation completed.\n"
                                 : "Simulation stopped early!\n");
  return report.completed && p1_well > p0_well ? 0 : 1;
}
