// field_equation — the cross-backend field-equation API in one CLI.
//
// Runs any kernel from the registry on either backend through
// fvf::api::run_field_equation and prints the shared timing surface, or
// runs it on BOTH backends and reports the parity of the results:
//
//   ./field_equation --kernel heat --backend gpusim [--nx 8 --ny 8 --nz 4]
//   ./field_equation --kernel cg --backend both [--iterations 200]
//
// --kernel resolves against the spec::registry and --backend against the
// api backend inventory; unknown values fail loudly with the real lists.
#include <cmath>
#include <iostream>

#include "api/api.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/kernel_registry.hpp"
#include "spec/registry.hpp"

namespace {

using namespace fvf;

api::FieldEquationResult run_one(const api::FieldEquationSpec& spec,
                                 api::Backend backend) {
  const api::FieldEquationResult result =
      api::run_field_equation(spec, backend);
  std::cout << "  [" << api::backend_name(result.backend) << "] work="
            << result.work << (result.converged ? "" : " (NOT converged)")
            << "  device " << result.device_seconds * 1e3 << " ms"
            << "  digest " << std::hex << result.result_digest << std::dec
            << "\n";
  for (const auto& [name, value] : result.summary) {
    std::cout << "        " << name << " = " << value << "\n";
  }
  return result;
}

}  // namespace

int main(int argc, const char** argv) {
  try {
    const CliParser cli(argc, argv);
    core::register_builtin_kernels();

    api::FieldEquationSpec spec;
    spec.kernel = cli.get_string("kernel", "tpfa");
    spec.nx = static_cast<i32>(cli.get_int("nx", 6));
    spec.ny = static_cast<i32>(cli.get_int("ny", 6));
    spec.nz = static_cast<i32>(cli.get_int("nz", 4));
    spec.seed = static_cast<u64>(cli.get_int("seed", 42));
    spec.iterations = static_cast<i32>(cli.get_int("iterations", 0));
    spec.dt = cli.get_double("dt", 0.0);
    spec.tol = cli.get_double("tol", 1e-5);
    spec.threads = static_cast<i32>(cli.get_int("threads", 1));

    const std::string backend_flag = cli.get_string("backend", "both");
    std::cout << "kernel '" << spec.kernel << "' (registry: "
              << spec::kernel_name_list() << ")\n";

    if (backend_flag != "both") {
      // Unknown values throw here, listing the registered backends.
      (void)run_one(spec, api::parse_backend(backend_flag));
      return 0;
    }

    const api::FieldEquationResult wse =
        run_one(spec, api::Backend::Wse);
    const api::FieldEquationResult gpu =
        run_one(spec, api::Backend::Gpusim);
    FVF_REQUIRE(wse.field.extents() == gpu.field.extents());
    f64 max_rel = 0.0;
    f64 scale = 0.0;
    for (i64 i = 0; i < wse.field.size(); ++i) {
      scale = std::max(scale, std::abs(static_cast<f64>(wse.field[i])));
    }
    for (i64 i = 0; i < wse.field.size(); ++i) {
      const f64 diff = std::abs(static_cast<f64>(wse.field[i]) -
                                static_cast<f64>(gpu.field[i]));
      max_rel = std::max(max_rel, scale > 0.0 ? diff / scale : diff);
    }
    std::cout << "\ncross-backend parity: max |wse - gpusim| / max|wse| = "
              << max_rel
              << (wse.result_digest == gpu.result_digest ? "  (bitwise)"
                                                         : "")
              << "\n";
    // The order-insensitive kernels agree bitwise; the f32-sum kernels
    // (cg/wave/impes) to reduction tolerance.
    FVF_REQUIRE_MSG(max_rel < 1e-3, "backends disagree: " << max_rel);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "field_equation: " << e.what() << "\n";
    return 2;
  }
}
