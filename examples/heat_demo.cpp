// 2D heat diffusion on the simulated wafer-scale engine — the first
// kernel authored purely as a `fvf::spec` stencil program (no legacy
// hand-written counterpart). A pseudo-random initial field diffuses
// under an explicit 9-point Jacobi update; every step runs one
// static-halo exchange with all eight XY neighbors, generated entirely
// from the declarative spec by `spec::compile`.
//
//   ./heat_demo [--nx 16] [--ny 16] [--nz 4] [--steps 10] [--alpha 0.125]
//               [--threads N] [--seed S]
//               [--lint off|warn|strict] [--hazard-check]
//
// The fabric result must match the host mirror bit-for-bit; the demo
// exits non-zero on any mismatch.
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "dataflow/harness_cli.hpp"
#include "spec/heat.hpp"

int main(int argc, const char** argv) {
  using namespace fvf;
  const CliParser cli(argc, argv);
  const i32 nx = static_cast<i32>(cli.get_int("nx", 16));
  const i32 ny = static_cast<i32>(cli.get_int("ny", 16));
  const i32 nz = static_cast<i32>(cli.get_int("nz", 4));
  const Extents3 extents{nx, ny, nz};

  const Array3<f32> initial =
      spec::heat_initial_field(extents, static_cast<u64>(cli.get_int("seed", 42)));

  spec::DataflowHeatOptions options;
  options.kernel.steps = static_cast<i32>(cli.get_int("steps", 10));
  options.kernel.alpha = static_cast<f32>(cli.get_double("alpha", 0.125));
  options.execution.threads = static_cast<i32>(cli.get_int("threads", 1));
  dataflow::apply_verification_flags(options, cli);

  std::cout << "9-point heat diffusion on a " << nx << "x" << ny
            << " fabric (" << nz << " independent layers), "
            << options.kernel.steps << " Jacobi steps, alpha "
            << options.kernel.alpha << "\n";
  const spec::DataflowHeatResult result =
      spec::run_dataflow_heat(initial, options);
  dataflow::print_hazard_summary(result, options.execution.hazard_check,
                                 std::cout);
  if (!result.ok()) {
    std::cerr << "run failed: " << result.errors[0] << "\n";
    return 1;
  }

  // Bitwise differential against the host mirror — the spec-generated
  // program must reproduce the serial arithmetic exactly.
  const Array3<f32> host = spec::heat_reference_host(initial, options.kernel);
  i64 mismatches = 0;
  f64 mean = 0.0;
  for (i64 i = 0; i < host.size(); ++i) {
    if (result.field[i] != host[i]) {
      ++mismatches;
    }
    mean += static_cast<f64>(result.field[i]);
  }
  mean /= static_cast<f64>(host.size());

  TextTable table({"metric", "value"}, {Align::Left, Align::Right});
  table.add_row({"steps completed",
                 format_count(static_cast<i64>(result.steps_completed))});
  table.add_row({"field mean", format_fixed(mean, 6)});
  table.add_row({"host-mirror mismatches", format_count(mismatches)});
  table.add_row({"simulated device time",
                 format_fixed(result.device_seconds * 1e6, 1) + " us"});
  table.add_row({"fabric wavelets",
                 format_count(static_cast<i64>(
                     result.counters.wavelets_sent))});
  std::cout << table.render();

  if (mismatches != 0) {
    std::cerr << "FAIL: fabric field diverged from the host mirror\n";
    return 1;
  }
  return 0;
}
