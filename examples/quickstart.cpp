// Quickstart: build a synthetic geomodel, run the TPFA flux kernel on the
// serial reference and on the simulated wafer-scale engine, and compare.
//
//   ./quickstart [--nx 12] [--ny 12] [--nz 16] [--iterations 3]
#include <cmath>
#include <iostream>

#include "baseline/baseline.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/launcher.hpp"
#include "physics/problem.hpp"

int main(int argc, const char** argv) {
  using namespace fvf;
  const CliParser cli(argc, argv);
  const i32 nx = static_cast<i32>(cli.get_int("nx", 12));
  const i32 ny = static_cast<i32>(cli.get_int("ny", 12));
  const i32 nz = static_cast<i32>(cli.get_int("nz", 16));
  const i32 iterations = static_cast<i32>(cli.get_int("iterations", 3));

  // 1. A problem: mesh geometry, heterogeneous permeability, TPFA
  //    transmissibilities, fluid model, initial pressure.
  const physics::FlowProblem problem = physics::make_benchmark_problem(
      Extents3{nx, ny, nz}, static_cast<u64>(cli.get_int("seed", 42)));
  std::cout << "Problem: " << problem.describe() << "\n";
  std::cout << "Running " << iterations
            << " applications of Algorithm 1 (TPFA flux residual, "
               "10-neighbor stencil)\n\n";

  // 2. Ground truth: the serial CPU reference.
  baseline::BaselineOptions serial_options;
  serial_options.iterations = iterations;
  const baseline::BaselineResult serial =
      baseline::run_serial_baseline(problem, serial_options);

  // 3. The paper's contribution: the same computation as a dataflow
  //    program on a simulated wafer-scale engine — one PE per mesh
  //    column, neighbor data exchanged as colored wavelet blocks.
  core::DataflowOptions dataflow_options;
  dataflow_options.iterations = iterations;
  const core::DataflowResult dataflow =
      core::run_dataflow_tpfa(problem, dataflow_options);
  if (!dataflow.ok()) {
    std::cerr << "dataflow run failed: " << dataflow.errors[0] << "\n";
    return 1;
  }

  // 4. Compare: the two implementations share every f32 operation, so the
  //    residuals must agree bit-for-bit.
  i64 mismatches = 0;
  f64 norm = 0.0;
  for (i64 i = 0; i < serial.residual.size(); ++i) {
    mismatches += (serial.residual[i] != dataflow.residual[i]);
    norm += static_cast<f64>(serial.residual[i]) * serial.residual[i];
  }
  norm = std::sqrt(norm);

  TextTable table({"metric", "value"}, {Align::Left, Align::Right});
  table.add_row({"cells", format_count(problem.cell_count())});
  table.add_row({"residual 2-norm", format_fixed(norm, 6)});
  table.add_row({"bitwise mismatches vs serial", std::to_string(mismatches)});
  table.add_row({"simulated WSE device time",
                 format_fixed(dataflow.device_seconds * 1e6, 2) + " us"});
  table.add_row({"simulated WSE cycles",
                 format_fixed(dataflow.makespan_cycles, 0)});
  table.add_row({"fabric wavelets moved",
                 format_count(static_cast<i64>(
                     dataflow.counters.wavelets_sent))});
  table.add_row({"FLOPs executed on fabric",
                 format_count(static_cast<i64>(dataflow.counters.flops()))});
  table.add_row({"peak PE memory", format_bytes(dataflow.max_pe_memory)});
  table.add_row({"serial host time",
                 format_fixed(serial.host_seconds * 1e3, 2) + " ms"});
  std::cout << table.render();

  if (mismatches != 0) {
    std::cerr << "FAIL: implementations disagree\n";
    return 1;
  }
  std::cout << "\nOK: dataflow and serial residuals agree bit-for-bit.\n";
  return 0;
}
