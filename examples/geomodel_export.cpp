// Builds a synthetic storage-site geomodel, runs one application of the
// TPFA flux kernel, and exports permeability / pressure / residual to a
// legacy-VTK file for ParaView, plus a binary checkpoint of the pressure.
//
//   ./geomodel_export [--nx 24] [--ny 24] [--nz 12] [--out geomodel.vtk]
#include <iostream>

#include "baseline/baseline.hpp"
#include "common/cli.hpp"
#include "io/checkpoint.hpp"
#include "io/vtk_writer.hpp"
#include "physics/problem.hpp"

int main(int argc, const char** argv) {
  using namespace fvf;
  const CliParser cli(argc, argv);
  const i32 nx = static_cast<i32>(cli.get_int("nx", 24));
  const i32 ny = static_cast<i32>(cli.get_int("ny", 24));
  const i32 nz = static_cast<i32>(cli.get_int("nz", 12));
  const std::string out = cli.get_string("out", "geomodel.vtk");
  const std::string ckpt = cli.get_string("checkpoint", "pressure.fvf");

  physics::ProblemSpec spec;
  spec.extents = Extents3{nx, ny, nz};
  spec.spacing = mesh::Spacing3{50.0, 50.0, 5.0};
  spec.geomodel = physics::GeomodelKind::Lognormal;
  spec.dome_amplitude = 20.0;
  spec.seed = static_cast<u64>(cli.get_int("seed", 42));
  const physics::FlowProblem problem(spec);
  std::cout << "Geomodel: " << problem.describe() << "\n";

  baseline::BaselineOptions options;
  options.iterations = 1;
  const baseline::BaselineResult run =
      baseline::run_serial_baseline(problem, options);

  io::write_vtk(out, problem.mesh(),
                {{"permeability", &problem.permeability()},
                 {"pressure", &run.pressure},
                 {"flux_residual", &run.residual}},
                problem.describe());
  std::cout << "Wrote " << out
            << " (permeability, pressure, flux_residual cell fields)\n";

  io::save_field(ckpt, run.pressure);
  const Array3<f32> restored = io::load_field(ckpt);
  i64 mismatches = 0;
  for (i64 i = 0; i < restored.size(); ++i) {
    mismatches += (restored[i] != run.pressure[i]);
  }
  std::cout << "Checkpoint " << ckpt << " round-trip mismatches: "
            << mismatches << " (must be 0)\n";
  return mismatches == 0 ? 0 : 1;
}
