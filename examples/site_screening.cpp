// Storage-site screening: the workflow the paper's introduction motivates
// ("designing large-scale CCS projects ... within regulatory and
// commercial time constraints"). Generates an ensemble of geomodel
// realizations, runs a short implicit injection test on each, and ranks
// them by pressure build-up and injectivity — exercising the geomodel
// generators, the TPFA stack, and the Newton-Krylov solver end to end.
//
//   ./site_screening [--realizations 5] [--nx 8] [--ny 8] [--nz 4]
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "physics/problem.hpp"
#include "solver/timestepper.hpp"

namespace {

struct SiteResult {
  fvf::u64 seed = 0;
  fvf::f64 perm_decades = 0.0;  ///< log10(kmax/kmin), heterogeneity measure
  fvf::f64 buildup_mpa = 0.0;   ///< well-cell pressure rise
  fvf::f64 newton_iterations = 0.0;
  bool converged = false;
};

}  // namespace

int main(int argc, const char** argv) {
  using namespace fvf;
  const CliParser cli(argc, argv);
  const i32 realizations =
      static_cast<i32>(cli.get_int("realizations", 5));
  const i32 nx = static_cast<i32>(cli.get_int("nx", 8));
  const i32 ny = static_cast<i32>(cli.get_int("ny", 8));
  const i32 nz = static_cast<i32>(cli.get_int("nz", 4));
  const f64 rate = cli.get_double("rate", 1.0);  // kg/s
  const f64 days = cli.get_double("days", 10.0);

  std::cout << "Screening " << realizations << " geomodel realizations ("
            << nx << "x" << ny << "x" << nz << ", " << rate << " kg/s for "
            << days << " d)\n\n";

  std::vector<SiteResult> sites;
  for (i32 r = 0; r < realizations; ++r) {
    physics::ProblemSpec spec;
    spec.extents = Extents3{nx, ny, nz};
    spec.spacing = mesh::Spacing3{50.0, 50.0, 5.0};
    spec.geomodel = physics::GeomodelKind::Lognormal;
    spec.dome_amplitude = 12.0;
    spec.seed = 1000 + static_cast<u64>(r) * 37;
    const physics::FlowProblem problem(spec);

    SiteResult site;
    site.seed = spec.seed;
    f32 kmin = problem.permeability()[0];
    f32 kmax = kmin;
    for (i64 i = 0; i < problem.permeability().size(); ++i) {
      kmin = std::min(kmin, problem.permeability()[i]);
      kmax = std::max(kmax, problem.permeability()[i]);
    }
    site.perm_decades = std::log10(static_cast<f64>(kmax) / kmin);

    solver::FlowOperator op(problem, units::kDay);
    const Coord3 well{nx / 2, ny / 2, 0};
    op.add_source(solver::SourceTerm{well, rate});
    std::vector<f64> pressure(static_cast<usize>(problem.cell_count()));
    for (i64 i = 0; i < problem.cell_count(); ++i) {
      pressure[static_cast<usize>(i)] = problem.initial_pressure()[i];
    }
    const f64 p0 = pressure[static_cast<usize>(
        problem.extents().linear(well.x, well.y, well.z))];

    solver::TimeStepperOptions options;
    options.dt_initial = 0.5 * units::kDay;
    options.newton.preconditioner = solver::PreconditionerKind::Ilu0;
    const solver::SimulationReport report =
        solver::simulate_to(op, pressure, days * units::kDay, options);

    site.converged = report.completed;
    site.newton_iterations = report.total_newton_iterations();
    const f64 p1 = pressure[static_cast<usize>(
        problem.extents().linear(well.x, well.y, well.z))];
    site.buildup_mpa = (p1 - p0) / 1e6;
    sites.push_back(site);
  }

  // Rank: lowest pressure build-up first (best injectivity).
  std::sort(sites.begin(), sites.end(),
            [](const SiteResult& a, const SiteResult& b) {
              return a.buildup_mpa < b.buildup_mpa;
            });

  TextTable table({"rank", "seed", "log10(kmax/kmin)", "buildup [MPa]",
                   "Newton its", "status"});
  RunningStats buildup;
  for (usize i = 0; i < sites.size(); ++i) {
    const SiteResult& s = sites[i];
    buildup.add(s.buildup_mpa);
    table.add_row({std::to_string(i + 1), std::to_string(s.seed),
                   format_fixed(s.perm_decades, 2),
                   format_fixed(s.buildup_mpa, 3),
                   format_fixed(s.newton_iterations, 0),
                   s.converged ? "ok" : "STALLED"});
  }
  std::cout << table.render();
  std::cout << "\nBuild-up across the ensemble: mean "
            << format_fixed(buildup.mean(), 3) << " MPa, spread "
            << format_fixed(buildup.stddev(), 3) << " MPa (min "
            << format_fixed(buildup.min(), 3) << ", max "
            << format_fixed(buildup.max(), 3) << ")\n";
  std::cout << "Best site: seed " << sites.front().seed
            << " (lowest injection pressure build-up)\n";

  for (const SiteResult& s : sites) {
    if (!s.converged) {
      return 1;
    }
  }
  return 0;
}
