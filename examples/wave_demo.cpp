// Acoustic wave propagation on the simulated wafer-scale engine — the
// "other applications" the paper's diagonal communication pattern enables
// (Section 8). A Gaussian pressure pulse propagates through a
// heterogeneous medium via leapfrog time stepping; each step's spatial
// operator is applied through the same cardinal + diagonal halo exchange
// as the TPFA flux kernel.
//
//   ./wave_demo [--nx 16] [--ny 16] [--nz 6] [--steps 20] [--out wave.vtk]
//               [--threads N] [--fault-seed S --fault-rate R]
//               [--lint off|warn|strict] [--hazard-check]
//
// --fault-rate > 0 runs the propagation under seeded fault injection;
// the halo ack/retransmit layer is auto-enabled and the wavefield must
// still match the host reference.
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/wave_program.hpp"
#include "dataflow/harness_cli.hpp"
#include "io/vtk_writer.hpp"
#include "physics/problem.hpp"

int main(int argc, const char** argv) {
  using namespace fvf;
  const CliParser cli(argc, argv);
  const i32 nx = static_cast<i32>(cli.get_int("nx", 16));
  const i32 ny = static_cast<i32>(cli.get_int("ny", 16));
  const i32 nz = static_cast<i32>(cli.get_int("nz", 6));
  const i32 steps = static_cast<i32>(cli.get_int("steps", 20));
  const std::string out = cli.get_string("out", "");

  physics::ProblemSpec spec;
  spec.extents = Extents3{nx, ny, nz};
  spec.geomodel = physics::GeomodelKind::Lognormal;
  spec.seed = static_cast<u64>(cli.get_int("seed", 42));
  const physics::FlowProblem problem(spec);

  // The heterogeneous "velocity model": the Jacobi-scaled TPFA Laplacian.
  const core::LinearStencil stencil =
      core::jacobi_scale(core::build_linear_stencil(problem, 3600.0)).stencil;
  const Array3<f32> pulse =
      core::gaussian_pulse(spec.extents, 1.0, 2.0);

  core::DataflowWaveOptions options;
  options.kernel.timesteps = steps;
  options.kernel.kappa = static_cast<f32>(cli.get_double("kappa", 0.4));
  // Tiled parallel event engine; every value produces bit-identical
  // results (the default stays serial).
  options.execution.threads = static_cast<i32>(cli.get_int("threads", 1));
  // Seeded fault scenario (same rate for all three fault classes); a
  // given seed/rate is bit-for-bit reproducible across --threads values.
  const f64 fault_rate = cli.get_double("fault-rate", 0.0);
  options.execution.fault = wse::FaultConfig::uniform(
      static_cast<u64>(cli.get_int("fault-seed", 1)), fault_rate);
  // Restrict bit flips to the halo colors the retransmit layer protects.
  options.execution.fault.flip_color_mask = 0x00FFu;
  // Static lint level and dynamic hazard detector (both off by default).
  dataflow::apply_verification_flags(options, cli);

  std::cout << "Leapfrog acoustic wave on a " << nx << "x" << ny
            << " fabric, " << steps << " timesteps, 11-point operator "
            << "(4 diagonal couplings per layer)\n";
  const core::DataflowWaveResult result =
      core::run_dataflow_wave(stencil, pulse, options);
  if (fault_rate > 0.0) {
    const wse::FaultStats& fs = result.faults;
    std::cout << "Fault injection: " << fs.injected() << " injected ("
              << fs.stalls_injected << " stalls, " << fs.flips_injected
              << " flips, " << fs.halts_injected << " halts), "
              << fs.detected() << " detected, " << fs.recovered()
              << " recovered, " << fs.unrecovered() << " unrecovered\n";
  }
  dataflow::print_hazard_summary(result, options.execution.hazard_check,
                                 std::cout);
  if (!result.ok()) {
    std::cerr << "run failed: " << result.errors[0] << "\n";
    return 1;
  }

  const Array3<f32> host = core::wave_reference_host(
      stencil, pulse, options.kernel.kappa, steps);
  f64 err = 0.0, scale = 0.0, energy = 0.0;
  for (i64 i = 0; i < host.size(); ++i) {
    err = std::max(err,
                   std::abs(static_cast<f64>(result.field[i]) - host[i]));
    scale = std::max(scale, std::abs(static_cast<f64>(host[i])));
    energy += static_cast<f64>(result.field[i]) * result.field[i];
  }

  TextTable table({"metric", "value"}, {Align::Left, Align::Right});
  table.add_row({"field L2 energy", format_fixed(std::sqrt(energy), 4)});
  table.add_row({"max |fabric - host| / max|host|",
                 format_fixed(err / scale, 8)});
  table.add_row({"simulated device time",
                 format_fixed(result.device_seconds * 1e6, 1) + " us"});
  table.add_row({"fabric wavelets",
                 format_count(static_cast<i64>(
                     result.counters.wavelets_sent))});
  std::cout << table.render();

  if (!out.empty()) {
    io::write_vtk(out, problem.mesh(), {{"wavefield", &result.field}});
    std::cout << "Wrote " << out << "\n";
  }
  return err < scale * 1e-3 ? 0 : 1;
}
