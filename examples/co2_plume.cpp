// Two-phase CO2 plume migration: the storage scenario the paper's
// introduction motivates. Supercritical CO2 is injected at the bottom of
// a heterogeneous formation with a structural dome; IMPES (implicit
// pressure / explicit saturation with phase-potential upwinding) tracks
// the buoyant plume as it rises and accumulates under the trap crest.
//
//   ./co2_plume [--nx 14] [--ny 14] [--nz 8] [--hours 12] [--rate 5e-3]
//               [--out plume.vtk]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "io/vtk_writer.hpp"
#include "physics/problem.hpp"
#include "solver/twophase.hpp"

int main(int argc, const char** argv) {
  using namespace fvf;
  const CliParser cli(argc, argv);
  const i32 nx = static_cast<i32>(cli.get_int("nx", 14));
  const i32 ny = static_cast<i32>(cli.get_int("ny", 14));
  const i32 nz = static_cast<i32>(cli.get_int("nz", 8));
  const f64 hours = cli.get_double("hours", 12.0);
  const f64 rate = cli.get_double("rate", 5e-3);  // m^3/s
  const std::string out = cli.get_string("out", "");

  physics::ProblemSpec spec;
  spec.extents = Extents3{nx, ny, nz};
  spec.spacing = mesh::Spacing3{10.0, 10.0, 2.0};
  spec.geomodel = physics::GeomodelKind::Lognormal;
  spec.dome_amplitude = 6.0;
  spec.seed = static_cast<u64>(cli.get_int("seed", 42));
  const physics::FlowProblem problem(spec);

  solver::TwoPhaseOptions options;
  options.anchor_cell = Coord3{0, 0, nz - 1};  // brine outlet at a flank
  solver::TwoPhaseSimulator sim(problem, options);
  const Coord3 well{nx / 2, ny / 2, 0};
  sim.add_well(solver::InjectionWell{well, rate});

  std::cout << "CO2 plume in " << problem.describe() << "\n"
            << "Injector at (" << well.x << ',' << well.y << ',' << well.z
            << "), " << rate << " m^3/s for " << hours << " h (IMPES)\n\n";

  TextTable table({"time [h]", "CO2 in place [m^3]", "max S", "top-layer S",
                   "pressure solves", "substeps"});
  f64 time = 0.0;
  const int snapshots = 6;
  for (int k = 1; k <= snapshots; ++k) {
    const f64 target = hours * 3600.0 * k / snapshots;
    const solver::TwoPhaseReport report =
        sim.advance(target - time, 1800.0);
    if (!report.completed) {
      std::cerr << "IMPES stalled at t = " << report.end_time_s << " s\n";
      return 1;
    }
    time = target;

    const Array3<f64>& s = sim.saturation();
    f64 s_max = 0.0, s_top = 0.0;
    for (i32 y = 0; y < ny; ++y) {
      for (i32 x = 0; x < nx; ++x) {
        for (i32 z = 0; z < nz; ++z) {
          s_max = std::max(s_max, s(x, y, z));
        }
        s_top += s(x, y, nz - 1);
      }
    }
    table.add_row({format_fixed(time / 3600.0, 1),
                   format_fixed(sim.co2_in_place(), 2),
                   format_fixed(s_max, 3), format_fixed(s_top, 3),
                   std::to_string(report.pressure_solves),
                   std::to_string(report.transport_substeps)});
  }
  std::cout << table.render();
  std::cout << "\n(top-layer S rising = buoyant CO2 accumulating under the "
               "dome crest)\n";

  if (!out.empty()) {
    const Array3<f32> s32 = sim.saturation_f32();
    io::write_vtk(out, problem.mesh(),
                  {{"co2_saturation", &s32},
                   {"permeability", &problem.permeability()}});
    std::cout << "Wrote " << out << "\n";
  }
  return 0;
}
