// The whole IMPES loop on the simulated wafer-scale engine: the lagged
// pressure system is solved by the fabric CG program and the saturation
// transport advances as a fabric program with a global-minimum CFL
// all-reduce — the host only reassembles coefficients between windows,
// mirroring the paper's "the host is only used to schedule the workload"
// (Section 7.1) and realizing its Section 9 future work.
//
//   ./fabric_impes_demo [--nx 8] [--ny 8] [--nz 2] [--windows 4]
//                       [--threads N] [--fault-seed S --fault-rate R]
//                       [--lint off|warn|strict] [--hazard-check]
//
// --fault-rate > 0 runs every window's CG + transport launch under
// seeded fault injection (both pipelines auto-enable the halo
// ack/retransmit layer).
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/fabric_impes.hpp"
#include "dataflow/harness_cli.hpp"
#include "physics/problem.hpp"

int main(int argc, const char** argv) {
  using namespace fvf;
  const CliParser cli(argc, argv);
  const i32 nx = static_cast<i32>(cli.get_int("nx", 8));
  const i32 ny = static_cast<i32>(cli.get_int("ny", 8));
  const i32 nz = static_cast<i32>(cli.get_int("nz", 2));
  const i32 windows = static_cast<i32>(cli.get_int("windows", 4));
  const f64 window_s = cli.get_double("window", 900.0);
  const f64 rate = cli.get_double("rate", 2e-4);

  physics::ProblemSpec spec;
  spec.extents = Extents3{nx, ny, nz};
  spec.spacing = mesh::Spacing3{10.0, 10.0, 2.0};
  spec.geomodel = physics::GeomodelKind::Homogeneous;
  spec.seed = static_cast<u64>(cli.get_int("seed", 42));
  const physics::FlowProblem problem(spec);

  core::FabricImpesOptions options;
  // Tiled parallel event engine + seeded fault scenario, as for the
  // single-kernel demos; bit-for-bit reproducible across --threads.
  options.execution.threads = static_cast<i32>(cli.get_int("threads", 1));
  options.execution.fault = wse::FaultConfig::uniform(
      static_cast<u64>(cli.get_int("fault-seed", 1)),
      cli.get_double("fault-rate", 0.0));
  // Restrict bit flips to the halo colors the retransmit layer protects.
  options.execution.fault.flip_color_mask = 0x00FFu;
  // Static lint level and dynamic hazard detector, applied to both fabric
  // launches of every window (parsed via the shared flag plumbing so the
  // flag names and defaults match the single-kernel demos).
  dataflow::HarnessOptions verification;
  dataflow::apply_verification_flags(verification, cli);
  options.lint = verification.lint;
  options.execution.hazard_check = verification.execution.hazard_check;
  core::FabricImpesSimulator sim(problem, options);
  const Coord3 well{nx / 2, ny / 2, 0};
  sim.add_well(well, rate);

  std::cout << "IMPES entirely on the fabric: " << problem.describe()
            << "\nInjector at (" << well.x << ',' << well.y << ',' << well.z
            << "), " << rate << " m^3/s, " << windows << " windows of "
            << window_s << " s\n\n";

  TextTable table({"window", "CG its", "substeps", "CO2 in place [m^3]",
                   "well-cell S", "fabric time [us]"});
  f64 time = 0.0;
  u64 hazards = 0;
  for (i32 w = 1; w <= windows; ++w) {
    const core::FabricImpesWindow report = sim.advance_window(window_s);
    time += window_s;
    hazards += report.hazards;
    if (!report.cg_converged) {
      std::cerr << "pressure solve failed in window " << w << "\n";
      return 1;
    }
    table.add_row({std::to_string(w), std::to_string(report.cg_iterations),
                   std::to_string(report.transport_substeps),
                   format_fixed(sim.co2_in_place(), 4),
                   format_fixed(sim.saturation()(well.x, well.y, well.z), 4),
                   format_fixed(report.device_seconds * 1e6, 1)});
  }
  std::cout << table.render();
  if (options.execution.hazard_check) {
    std::cout << "hazard check: "
              << (hazards == 0 ? "clean" : std::to_string(hazards) +
                                               " finding(s)")
              << " across " << windows << " windows\n";
  }

  const f64 injected = rate * time;
  const f64 error = std::abs(sim.co2_in_place() - injected) / injected;
  std::cout << "\nInjected " << format_fixed(injected, 4)
            << " m^3; in place " << format_fixed(sim.co2_in_place(), 4)
            << " m^3 (volume-balance error "
            << format_fixed(100.0 * error, 3) << "%)\n";
  return error < 0.02 ? 0 : 1;
}
