// Bench-regression gate: diffs freshly produced BENCH_<name>.json
// sidecars against the committed baselines under bench/baselines/ and
// exits nonzero when any tracked number drifts past tolerance — in
// either direction, so unexplained speedups get re-baselined on purpose
// instead of silently shifting the reference point.
//
//   bench_compare --baseline-dir bench/baselines --current-dir out
//                 [--tolerance 0.01] [--counter-tolerance 0]
//                 [--min-metric-tolerance 0.6] [--max-metric-tolerance 3]
//                 [--ignore host_seconds,other_field]
//
// Metrics named with a `min_` prefix are machine-sensitive host-
// throughput numbers gated one direction only: they fail when the
// current value drops below baseline * (1 - min-metric-tolerance), and
// never when the gate machine happens to be faster than the baseline's.
// A `max_` prefix is the mirror (lower-is-better host latencies): it
// fails only above baseline * (1 + max-metric-tolerance).
//
// Exit codes: 0 all tracked benches within tolerance, 1 divergence(s)
// found, 2 usage or parse error. A BENCH file present on only one side
// is a warning, not a failure: new benches land before their baseline,
// and retired baselines are deleted in the same PR.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "obs/bench_diff.hpp"

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error("cannot read " + path.string());
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// BENCH_*.json files directly inside `dir`, sorted by filename so the
/// report order is stable across filesystems.
std::vector<fs::path> bench_files(const fs::path& dir) {
  std::vector<fs::path> out;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json") {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int main(int argc, const char** argv) {
  using namespace fvf;
  try {
    const CliParser cli(argc, argv);
    const std::string baseline_dir = cli.get_string("baseline-dir", "");
    const std::string current_dir = cli.get_string("current-dir", "");
    if (baseline_dir.empty() || current_dir.empty()) {
      std::cerr << "usage: bench_compare --baseline-dir <dir> "
                   "--current-dir <dir> [--tolerance 0.01] "
                   "[--counter-tolerance 0] [--min-metric-tolerance 0.6] "
                   "[--max-metric-tolerance 3] [--ignore host_seconds,...]\n";
      return 2;
    }
    obs::BenchCompareOptions options;
    options.tolerance = cli.get_double("tolerance", options.tolerance);
    options.counter_tolerance =
        cli.get_double("counter-tolerance", options.counter_tolerance);
    options.min_metric_tolerance =
        cli.get_double("min-metric-tolerance", options.min_metric_tolerance);
    options.max_metric_tolerance =
        cli.get_double("max-metric-tolerance", options.max_metric_tolerance);
    if (cli.has("ignore")) {
      // Comma-separated metric/counter names, replacing the default
      // (host_seconds) ignore list.
      options.ignored_fields.clear();
      std::string list = cli.get_string("ignore", "");
      usize start = 0;
      while (start <= list.size()) {
        const usize comma = list.find(',', start);
        const usize end = comma == std::string::npos ? list.size() : comma;
        if (end > start) {
          options.ignored_fields.push_back(list.substr(start, end - start));
        }
        start = end + 1;
      }
    }
    if (!fs::is_directory(baseline_dir) || !fs::is_directory(current_dir)) {
      std::cerr << "bench_compare: --baseline-dir and --current-dir must be "
                   "existing directories\n";
      return 2;
    }

    const std::vector<fs::path> baselines = bench_files(baseline_dir);
    usize compared = 0;
    usize total_divergences = 0;
    for (const fs::path& base_path : baselines) {
      const fs::path cur_path =
          fs::path(current_dir) / base_path.filename();
      if (!fs::exists(cur_path)) {
        std::cout << "WARN  " << base_path.filename().string()
                  << ": no current run produced this bench (skipped)\n";
        continue;
      }
      const obs::BenchData baseline =
          obs::parse_bench_json(read_file(base_path));
      const obs::BenchData current =
          obs::parse_bench_json(read_file(cur_path));
      const std::vector<obs::BenchDivergence> divergences =
          obs::compare_bench(baseline, current, options);
      ++compared;
      if (divergences.empty()) {
        std::cout << "OK    " << baseline.bench << " (" << baseline.cases.size()
                  << " cases within " << options.tolerance * 100.0 << "%)\n";
        continue;
      }
      total_divergences += divergences.size();
      std::cout << "FAIL  " << baseline.bench << ":\n";
      for (const obs::BenchDivergence& d : divergences) {
        std::cout << "      " << d.describe() << "\n";
      }
    }
    for (const fs::path& cur_path : bench_files(current_dir)) {
      if (!fs::exists(fs::path(baseline_dir) / cur_path.filename())) {
        std::cout << "WARN  " << cur_path.filename().string()
                  << ": no committed baseline yet (add it under "
                  << baseline_dir << ")\n";
      }
    }
    if (compared == 0) {
      std::cerr << "bench_compare: no baseline/current BENCH_*.json pair "
                   "found — nothing was gated\n";
      return 2;
    }
    if (total_divergences > 0) {
      std::cout << "\n" << total_divergences
                << " divergence(s). If intentional, re-baseline by copying "
                   "the fresh BENCH_*.json into "
                << baseline_dir << ".\n";
      return 1;
    }
    std::cout << "\nall " << compared << " bench(es) within tolerance\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_compare: " << e.what() << "\n";
    return 2;
  }
}
