/// \file fvf_lint_cli.hpp
/// \brief The fvf_lint command-line tool as a library entry point, so the
///        test suite can drive the exact CLI (arguments, output, exit
///        codes) in-process.
///
/// Usage:
///
///   fvf_lint [--program all|tpfa|cg|transport|wave|impes]
///            [--nx N --ny N --nz N] [--lint warn|strict]
///            [--reliability] [--seed S]
///   fvf_lint --defect-corpus
///   fvf_lint --defect <name>
///
/// The first form constructs the named shipped dataflow program(s) on a
/// seeded benchmark problem, loads (but does not run) the fabric, and
/// lints it. `--reliability` enables the halo ack/retransmit layer so
/// the NACK color routes are verified too. The second form is the
/// linter's self-check: every seeded defect fixture must trip exactly
/// its diagnostic class. The third lints a single corpus fixture with
/// normal reporting, for exit-code tests.
///
/// Exit codes (mirroring bench_compare): 0 verification clean (or, for
/// --defect-corpus, every fixture behaved), 1 findings (with --lint
/// warn, warning-severity findings alone do not fail), 2 usage error.
#pragma once

#include <iosfwd>

namespace fvf::tools {

[[nodiscard]] int fvf_lint_cli(int argc, const char* const* argv,
                               std::ostream& out, std::ostream& err);

}  // namespace fvf::tools
