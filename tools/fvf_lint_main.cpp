#include <iostream>

#include "tools/fvf_lint_cli.hpp"

int main(int argc, const char** argv) {
  return fvf::tools::fvf_lint_cli(argc, argv, std::cout, std::cerr);
}
