#include "tools/fvf_lint_cli.hpp"

#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/cg_program.hpp"
#include "core/kernel_registry.hpp"
#include "core/launcher.hpp"
#include "core/linear_stencil.hpp"
#include "core/transport_program.hpp"
#include "core/wave_program.hpp"
#include "dataflow/harness_cli.hpp"
#include "lint/defects.hpp"
#include "lint/lint.hpp"
#include "physics/problem.hpp"
#include "spec/heat.hpp"
#include "spec/registry.hpp"

namespace fvf::tools {

namespace {

constexpr const char* kUsage =
    "usage: fvf_lint [--program all|tpfa|cg|transport|wave|impes|heat]\n"
    "                [--nx N --ny N --nz N] [--lint warn|strict]\n"
    "                [--reliability] [--seed S] [--json]\n"
    "       fvf_lint --defect-corpus\n"
    "       fvf_lint --defect <name> [--json]\n";

struct LintJob {
  std::string name;
  lint::Report report;
};

/// What the CLI lints for each shipped program: the load half of the
/// launch pipeline (colors claimed, routers configured, programs bound),
/// then the full static verifier via FabricHarness::lint_report.
struct Fixture {
  physics::FlowProblem problem;
  core::LinearStencil stencil;
  Array3<f32> ones;

  Fixture(Extents3 extents, u64 seed)
      : problem([&] {
          physics::ProblemSpec spec;
          spec.extents = extents;
          spec.spacing = mesh::Spacing3{25.0, 25.0, 4.0};
          spec.geomodel = physics::GeomodelKind::Lognormal;
          spec.seed = seed;
          return physics::FlowProblem(spec);
        }()),
        stencil(core::build_linear_stencil(problem, 86400.0)),
        ones(extents) {
    ones.fill(1.0f);
  }
};

[[nodiscard]] lint::Report lint_tpfa(const Fixture& fx) {
  const core::DataflowOptions options;
  const core::TpfaLoad load = core::load_dataflow_tpfa(fx.problem, options);
  return load.harness->lint_report();
}

[[nodiscard]] lint::Report lint_cg(const Fixture& fx, bool reliability) {
  core::DataflowCgOptions options;
  options.reliability.enabled = reliability;
  const core::CgLoad load = core::load_dataflow_cg(fx.stencil, fx.ones,
                                                   options);
  return load.harness->lint_report();
}

[[nodiscard]] lint::Report lint_transport(const Fixture& fx,
                                          bool reliability) {
  core::DataflowTransportOptions options;
  options.kernel.window_seconds = 60.0;
  options.kernel.pore_volume = 1.0f;
  options.reliability.enabled = reliability;
  const Extents3 ext = fx.problem.extents();
  Array3<f32> saturation(ext);
  saturation.fill(0.0f);
  Array3<f32> well_rate(ext);
  well_rate.fill(0.0f);
  const core::TransportLoad load = core::load_dataflow_transport(
      fx.problem, saturation, fx.problem.initial_pressure(), well_rate,
      options);
  return load.harness->lint_report();
}

[[nodiscard]] lint::Report lint_wave(const Fixture& fx, bool reliability) {
  core::DataflowWaveOptions options;
  options.reliability.enabled = reliability;
  const Array3<f32> initial =
      core::gaussian_pulse(fx.problem.extents(), 1.0, 2.0);
  const core::WaveLoad load =
      core::load_dataflow_wave(fx.stencil, initial, options);
  return load.harness->lint_report();
}

[[nodiscard]] lint::Report lint_heat(const Fixture& fx, bool reliability) {
  spec::DataflowHeatOptions options;
  options.reliability.enabled = reliability;
  const Array3<f32> field =
      spec::heat_initial_field(fx.problem.extents(), 7);
  const spec::HeatLoad load = spec::load_dataflow_heat(field, options);
  return load.harness->lint_report();
}

/// The IMPES loop is the CG pressure solve plus the transport window on
/// the same fabric geometry; its static verification is the union of
/// both launches (with the IMPES solver settings).
[[nodiscard]] lint::Report lint_impes(const Fixture& fx, bool reliability) {
  lint::Report combined = lint_cg(fx, reliability);
  lint::Report transport = lint_transport(fx, reliability);
  combined.diagnostics.insert(
      combined.diagnostics.end(),
      std::make_move_iterator(transport.diagnostics.begin()),
      std::make_move_iterator(transport.diagnostics.end()));
  return combined;
}

/// Minimal JSON string escaping: quotes, backslashes, and control bytes
/// (diagnostic messages never carry anything beyond printable ASCII, but
/// the escaping must still be lossless).
void json_escape(std::ostream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
}

/// One diagnostic as a JSON object: typed fields first (check slug,
/// severity, PE coordinates, color id or null, computed bound or null),
/// then the rendered message.
void write_diagnostic_json(std::ostream& out, const lint::Diagnostic& d,
                           const char* indent) {
  out << indent << "{\"check\": \"" << lint::check_name(d.check)
      << "\", \"severity\": \""
      << (d.severity == lint::Severity::Error ? "error" : "warning")
      << "\", \"pe\": {\"x\": " << d.pe.x << ", \"y\": " << d.pe.y
      << "}, \"color\": ";
  if (d.color.has_value()) {
    out << static_cast<int>(d.color->id());
  } else {
    out << "null";
  }
  out << ", \"bound\": ";
  if (d.bound.has_value()) {
    out << *d.bound;
  } else {
    out << "null";
  }
  out << ", \"message\": \"";
  json_escape(out, d.message);
  out << "\"}";
}

void write_report_json(std::ostream& out, const lint::Report& report,
                       const char* item_indent, const char* close_indent) {
  out << "[";
  for (usize i = 0; i < report.diagnostics.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    write_diagnostic_json(out, report.diagnostics[i], item_indent);
  }
  if (!report.diagnostics.empty()) {
    out << "\n" << close_indent;
  }
  out << "]";
}

[[nodiscard]] int exit_code(usize errors, usize warnings, lint::Level level) {
  if (errors > 0) {
    return 1;
  }
  return (warnings > 0 && level == lint::Level::Strict) ? 1 : 0;
}

/// Corpus self-check: every seeded fixture must trip its own diagnostic
/// class and nothing else — a linter that stops flagging a corpus entry
/// (or starts over-flagging one) is broken.
[[nodiscard]] int run_defect_corpus(std::ostream& out, std::ostream& err) {
  bool all_ok = true;
  for (const lint::Defect& defect : lint::defect_corpus()) {
    const lint::Report report = defect.lint();
    const bool tripped =
        std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                    [&](const lint::Diagnostic& d) {
                      return d.check == defect.expected;
                    });
    const bool nothing_else =
        std::all_of(report.diagnostics.begin(), report.diagnostics.end(),
                    [&](const lint::Diagnostic& d) {
                      return d.check == defect.expected;
                    });
    if (tripped && nothing_else) {
      out << "ok   " << defect.name << " (" << report.diagnostics.size()
          << " finding(s))\n";
    } else {
      all_ok = false;
      err << "FAIL " << defect.name << ": expected only "
          << lint::check_name(defect.expected) << " findings, got "
          << report.diagnostics.size() << ":\n"
          << report.describe();
    }
  }
  out << (all_ok ? "defect corpus: all fixtures flagged\n"
                 : "defect corpus: FAILURES\n");
  return all_ok ? 0 : 1;
}

/// Lints one corpus fixture with normal reporting. The fixture is broken
/// by construction, so a clean report exits 0 only if the linter failed
/// to flag it — callers use this as the negative (must-fail) leg.
[[nodiscard]] int run_single_defect(const std::string& name, bool json,
                                    std::ostream& out, std::ostream& err) {
  for (const lint::Defect& defect : lint::defect_corpus()) {
    if (defect.name == name) {
      const lint::Report report = defect.lint();
      if (json) {
        out << "{\"defect\": \"" << defect.name << "\", \"diagnostics\": ";
        write_report_json(out, report, "  ", "");
        out << "}\n";
      } else {
        out << report.describe();
      }
      return report.clean() ? 0 : 1;
    }
  }
  err << "fvf_lint: unknown defect '" << name << "'; corpus:\n";
  for (const lint::Defect& defect : lint::defect_corpus()) {
    err << "  " << defect.name << " — " << defect.description << '\n';
  }
  return 2;
}

}  // namespace

int fvf_lint_cli(int argc, const char* const* argv, std::ostream& out,
                 std::ostream& err) {
  try {
    const CliParser cli(argc, argv);
    if (cli.has("help")) {
      out << kUsage;
      return 0;
    }
    if (cli.has("defect-corpus")) {
      return run_defect_corpus(out, err);
    }
    if (cli.has("defect")) {
      return run_single_defect(cli.get_string("defect", ""),
                               cli.has("json"), out, err);
    }

    const std::string level_name = cli.get_string("lint", "strict");
    lint::Level level = lint::Level::Strict;
    if (level_name == "warn") {
      level = lint::Level::Warn;
    } else if (level_name != "strict") {
      err << "fvf_lint: unknown --lint level '" << level_name << "'\n"
          << kUsage;
      return 2;
    }

    core::register_builtin_kernels();
    std::vector<std::string> known;
    for (const spec::KernelInfo& kernel : spec::registered_kernels()) {
      known.push_back(kernel.name);
    }
    constexpr std::string_view kAll[] = {"all"};
    const std::string program =
        dataflow::parse_program_flag(cli, "all", known, kAll);
    const std::vector<std::string> selected =
        program == "all" ? known : std::vector<std::string>{program};

    const Extents3 extents{static_cast<i32>(cli.get_int("nx", 6)),
                           static_cast<i32>(cli.get_int("ny", 5)),
                           static_cast<i32>(cli.get_int("nz", 4))};
    if (extents.nx < 1 || extents.ny < 1 || extents.nz < 1) {
      err << "fvf_lint: extents must be positive\n" << kUsage;
      return 2;
    }
    const u64 seed = static_cast<u64>(cli.get_int("seed", 42));
    const bool reliability = cli.has("reliability");
    const Fixture fx(extents, seed);

    std::vector<LintJob> jobs;
    for (const std::string& name : selected) {
      LintJob job;
      job.name = name;
      if (name == "tpfa") {
        job.report = lint_tpfa(fx);
      } else if (name == "cg") {
        job.report = lint_cg(fx, reliability);
      } else if (name == "transport") {
        job.report = lint_transport(fx, reliability);
      } else if (name == "wave") {
        job.report = lint_wave(fx, reliability);
      } else if (name == "heat") {
        job.report = lint_heat(fx, reliability);
      } else {
        job.report = lint_impes(fx, reliability);
      }
      jobs.push_back(std::move(job));
    }

    usize errors = 0;
    usize warnings = 0;
    const bool json = cli.has("json");
    if (json) {
      out << "{\"programs\": [";
    }
    for (usize i = 0; i < jobs.size(); ++i) {
      const LintJob& job = jobs[i];
      if (json) {
        out << (i == 0 ? "\n" : ",\n");
        out << "  {\"name\": \"" << job.name << "\", \"errors\": "
            << job.report.error_count() << ", \"warnings\": "
            << job.report.warning_count() << ", \"diagnostics\": ";
        write_report_json(out, job.report, "    ", "  ");
        out << "}";
      } else {
        out << "program " << job.name << " (" << extents.nx << 'x'
            << extents.ny << 'x' << extents.nz << "): ";
        if (job.report.clean()) {
          out << "clean\n";
        } else {
          out << job.report.error_count() << " error(s), "
              << job.report.warning_count() << " warning(s)\n"
              << job.report.describe();
        }
      }
      errors += job.report.error_count();
      warnings += job.report.warning_count();
    }
    if (json) {
      out << "\n]}\n";
    }
    return exit_code(errors, warnings, level);
  } catch (const std::exception& e) {
    err << "fvf_lint: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace fvf::tools
