#include "tools/fvf_spec_cli.hpp"

#include <iomanip>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/cli.hpp"
#include "core/kernel_registry.hpp"
#include "dataflow/color_plan.hpp"
#include "dataflow/harness_cli.hpp"
#include "lint/lint.hpp"
#include "spec/program.hpp"
#include "spec/registry.hpp"
#include "wse/fabric.hpp"
#include "wse/memory.hpp"

namespace fvf::tools {

namespace {

constexpr const char* kUsage =
    "usage: fvf_spec --list-kernels\n"
    "       fvf_spec --dump-plan --program <kernel>\n"
    "       fvf_spec --lint --program <kernel> [--nx N --ny N --nz N]\n"
    "                [--reliability]\n";

int list_kernels(std::ostream& out) {
  out << "registered kernels:\n";
  for (const spec::KernelInfo& kernel : spec::registered_kernels()) {
    out << "  " << std::left << std::setw(10) << kernel.name
        << (kernel.compiled ? "[spec]   " : "[legacy] ") << kernel.summary
        << "\n";
  }
  return 0;
}

/// Resolves --program against the registry and requires the spec path.
[[nodiscard]] spec::KernelInfo require_compiled(const CliParser& cli,
                                                std::ostream& err,
                                                bool& failed) {
  std::vector<std::string> known;
  for (const spec::KernelInfo& kernel : spec::registered_kernels()) {
    known.push_back(kernel.name);
  }
  const std::string name = dataflow::parse_program_flag(cli, "", known);
  spec::KernelInfo kernel = spec::find_kernel(name);
  if (!kernel.compiled || kernel.compile_spec == nullptr) {
    err << "fvf_spec: '" << name
        << "' uses the legacy hand-written path; no spec to lower "
           "(spec kernels:";
    for (const spec::KernelInfo& k : spec::registered_kernels()) {
      if (k.compiled) {
        err << ' ' << k.name;
      }
    }
    err << ")\n";
    failed = true;
  }
  return kernel;
}

int dump_plan(const spec::KernelInfo& kernel, std::ostream& out) {
  const spec::CompiledSpec compiled = kernel.compile_spec();
  out << compiled.describe();

  dataflow::ColorPlan plan;
  compiled.claim_colors(plan, /*reliability=*/false);
  out << "color plan after claiming:\n" << plan.describe() << "\n";

  constexpr i32 kNz = 4;
  out << "footprint (nz=" << kNz
      << "): data=" << compiled.data_footprint_bytes(kNz)
      << " bytes, code=" << compiled.code_footprint_bytes()
      << " bytes (budget " << wse::PeMemory::kDefaultBudget << ")\n";
  out << "shape digest: 0x" << std::hex << compiled.shape_digest()
      << std::dec << "\n";
  return 0;
}

/// Static verification from the spec alone: claims the colors on a fresh
/// plan, loads a kernel-less generated program onto a small fabric, and
/// runs the full linter (claim audit, routing, handlers, memory).
int lint_spec(const spec::KernelInfo& kernel, const CliParser& cli,
              std::ostream& out) {
  const spec::CompiledSpec compiled = kernel.compile_spec();
  const bool reliability = cli.has("reliability");
  const i32 nx = static_cast<i32>(cli.get_int("nx", 4));
  const i32 ny = static_cast<i32>(cli.get_int("ny", 3));
  const i32 nz = static_cast<i32>(cli.get_int("nz", 2));
  FVF_REQUIRE_MSG(nx >= 1 && ny >= 1 && nz >= 1,
                  "fvf_spec: extents must be positive");

  auto plan = std::make_shared<dataflow::ColorPlan>();
  const spec::CompiledSpec::Claims claims =
      compiled.claim_colors(*plan, reliability);
  spec::SpecPeProgram::LaunchBindings bindings;
  bindings.reduce = claims.reduce;
  bindings.reliability.enabled = reliability;

  wse::Fabric fabric(nx, ny);
  const wse::ProgramFactory factory =
      [&compiled, nz, bindings](
          Coord2 coord, Coord2 fabric_size) -> std::unique_ptr<wse::PeProgram> {
    return std::make_unique<spec::SpecPeProgram>(coord, fabric_size, nz,
                                                 compiled, bindings, nullptr);
  };
  fabric.load(factory);

  lint::Options options;
  options.probe_factory = factory;
  options.memory_budget = wse::PeMemory::kDefaultBudget;
  options.color_claimed = [plan](wse::Color c) { return plan->claimed(c); };
  options.color_map = [plan] { return plan->describe(); };
  const lint::Report report = lint::run(fabric, options);

  out << "spec '" << compiled.name() << "' on " << nx << 'x' << ny
      << " fabric (nz=" << nz << "): ";
  if (report.clean()) {
    out << "clean\n";
    return 0;
  }
  out << report.error_count() << " error(s), " << report.warning_count()
      << " warning(s)\n"
      << report.describe();
  return 1;
}

}  // namespace

int fvf_spec_cli(int argc, const char* const* argv, std::ostream& out,
                 std::ostream& err) {
  try {
    const CliParser cli(argc, argv);
    core::register_builtin_kernels();
    if (cli.has("help")) {
      out << kUsage;
      return 0;
    }
    if (cli.has("list-kernels")) {
      return list_kernels(out);
    }
    if (cli.has("dump-plan") || cli.has("lint")) {
      bool failed = false;
      const spec::KernelInfo kernel = require_compiled(cli, err, failed);
      if (failed) {
        return 2;
      }
      return cli.has("dump-plan") ? dump_plan(kernel, out)
                                  : lint_spec(kernel, cli, out);
    }
    err << kUsage;
    return 2;
  } catch (const std::exception& e) {
    err << "fvf_spec: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace fvf::tools
