// fvf_serve — scenario-service front-end of the simulator.
//
// Reads scenario request lines (request.hpp grammar: `program=cg nx=8
// seed=7 threads=4 ...`, one request per line, `#` comments) from
// --requests <file> and/or positional arguments, submits all of them to
// a ScenarioService, waits for every response, and prints one status
// line per request plus machine-readable service stats.
//
//   fvf_serve --requests scenarios.txt [--workers 2]
//             [--queue-capacity 64] [--checkpoint-dir dir]
//             [--backend auto|wse|gpusim]
//             [--stats-json out.json] [--print-responses]
//
// --backend sets the default execution backend for request lines that
// don't carry their own `backend=` field (auto routes background
// requests to gpusim); unknown values fail loudly with the inventory.
//
// Exit codes: 0 every response Ok, 1 at least one request failed / was
// shed / missed its deadline, 2 usage or parse error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/backend.hpp"
#include "common/cli.hpp"
#include "serve/service.hpp"

namespace {

using namespace fvf;

std::vector<std::string> request_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("cannot read " + path);
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    const usize first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    lines.push_back(line);
  }
  return lines;
}

void write_stats_json(std::ostream& os, const serve::ServiceStats& stats) {
  os << "{\n"
     << "  \"submitted\": " << stats.submitted << ",\n"
     << "  \"completed\": " << stats.completed << ",\n"
     << "  \"failed\": " << stats.failed << ",\n"
     << "  \"shed\": " << stats.shed << ",\n"
     << "  \"deadline_expired\": " << stats.deadline_expired << ",\n"
     << "  \"cache_hits\": " << stats.memo.hits << ",\n"
     << "  \"cache_misses\": " << stats.memo.misses << ",\n"
     << "  \"cache_hit_rate\": " << stats.memo.hit_rate() << ",\n"
     << "  \"coalesced\": " << stats.coalesced << ",\n"
     << "  \"queue_depth\": " << stats.queue_depth << ",\n"
     << "  \"max_queue_depth\": " << stats.max_queue_depth << ",\n"
     << "  \"latency_p50_ms\": " << stats.latency_p50_ms << ",\n"
     << "  \"latency_p99_ms\": " << stats.latency_p99_ms << ",\n"
     << "  \"cold_simulations\": " << stats.executor.simulations << ",\n"
     << "  \"problem_cache_hit_rate\": " << stats.executor.problems.hit_rate()
     << ",\n"
     << "  \"problem_cache_evictions\": " << stats.executor.problems.evictions
     << ",\n"
     << "  \"setup_cache_hit_rate\": " << stats.executor.setups.hit_rate()
     << ",\n"
     << "  \"setup_cache_evictions\": " << stats.executor.setups.evictions
     << ",\n"
     << "  \"lint_cache_evictions\": " << stats.executor.lint.evictions
     << ",\n"
     << "  \"checkpoints_saved\": " << stats.executor.checkpoints_saved
     << ",\n"
     << "  \"resumes\": " << stats.executor.resumes << "\n"
     << "}\n";
}

}  // namespace

int main(int argc, const char** argv) {
  try {
    const CliParser cli(argc, argv);
    std::vector<std::string> lines;
    if (cli.has("requests")) {
      lines = request_lines(cli.get_string("requests", ""));
    }
    for (const std::string& arg : cli.positional()) {
      lines.push_back(arg);
    }
    if (lines.empty()) {
      std::cerr << "usage: fvf_serve --requests <file> [--workers 2]\n"
                   "       [--queue-capacity 64] [--cache-entries 1024]\n"
                   "       [--checkpoint-dir dir]\n"
                   "       [--backend auto|" << api::backend_name_list()
                << "]\n"
                   "       [--stats-json out.json] [--print-responses]\n"
                   "       [\"program=cg nx=8 seed=7\" ...]\n";
      return 2;
    }

    // Default backend for lines without their own backend= field. The
    // value is validated up front: an unknown spelling aborts before any
    // request is submitted, listing the registered backends.
    const std::string backend = cli.get_string("backend", "auto");
    if (backend != "auto") {
      (void)api::parse_backend(backend);
    }
    for (std::string& line : lines) {
      if (line.find("backend") == std::string::npos && backend != "auto") {
        line += " backend=" + backend;
      }
    }

    serve::ServiceOptions options;
    options.workers = static_cast<i32>(cli.get_int("workers", 2));
    options.queue_capacity = static_cast<usize>(
        cli.get_int("queue-capacity", static_cast<i64>(options.queue_capacity)));
    options.cache_entries = static_cast<usize>(
        cli.get_int("cache-entries", static_cast<i64>(options.cache_entries)));
    options.checkpoint_dir = cli.get_string("checkpoint-dir", "");
    const bool print_responses = cli.get_bool("print-responses", false);

    serve::ScenarioService service(options);
    std::vector<std::shared_future<serve::ScenarioResponse>> futures;
    futures.reserve(lines.size());
    for (const std::string& line : lines) {
      futures.push_back(service.submit_line(line));
    }
    if (options.workers == 0) {
      service.drain();
    }

    usize not_ok = 0;
    for (usize i = 0; i < futures.size(); ++i) {
      const serve::ScenarioResponse& response = futures[i].get();
      if (!response.ok()) {
        ++not_ok;
      }
      std::ostringstream hash;
      hash << std::hex << response.scenario_hash;
      std::cout << serve::status_name(response.status) << "  scenario="
                << hash.str()
                << (response.cache_hit ? " [memo]"
                    : response.coalesced ? " [coalesced]"
                    : response.resumed   ? " [resumed]"
                                         : "")
                << "  " << lines[i] << "\n";
      if (!response.error.empty()) {
        std::cout << "      " << response.error << "\n";
      }
      if (print_responses && response.ok()) {
        std::cout << serve::serialize_response(response);
      }
    }

    const serve::ServiceStats stats = service.stats();
    // Responses, not jobs: a coalesced waiter got an ok answer even
    // though stats.completed counts the one shared execution once.
    std::cout << "\nserved " << stats.submitted << " request(s): "
              << futures.size() - not_ok << " ok, " << stats.failed
              << " failed, "
              << stats.shed << " shed, " << stats.deadline_expired
              << " deadline-expired; cache hit rate "
              << stats.memo.hit_rate() << ", p50 " << stats.latency_p50_ms
              << " ms, p99 " << stats.latency_p99_ms << " ms\n";
    if (cli.has("stats-json")) {
      std::ofstream out(cli.get_string("stats-json", ""));
      if (!out.good()) {
        throw std::runtime_error("cannot write stats json");
      }
      write_stats_json(out, stats);
    }
    return not_ok == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "fvf_serve: " << e.what() << "\n";
    return 2;
  }
}
