#include <iostream>

#include "tools/fvf_spec_cli.hpp"

int main(int argc, const char** argv) {
  return fvf::tools::fvf_spec_cli(argc, argv, std::cout, std::cerr);
}
