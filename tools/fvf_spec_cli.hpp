/// \file fvf_spec_cli.hpp
/// \brief The `fvf_spec` tool as a library entry point, so the test
///        suite can drive the exact tool (arguments, output, exit codes)
///        in-process.
#pragma once

#include <iosfwd>

namespace fvf::tools {

/// Runs the fvf_spec CLI: `--list-kernels`, `--dump-plan --program X`,
/// `--lint --program X [--nx --ny --nz] [--reliability]`.
/// Exit codes: 0 ok / lint clean, 1 lint findings, 2 usage error or
/// unknown kernel.
int fvf_spec_cli(int argc, const char* const* argv, std::ostream& out,
                 std::ostream& err);

}  // namespace fvf::tools
