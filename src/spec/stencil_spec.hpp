/// \file stencil_spec.hpp
/// \brief `fvf::spec` — the declarative stencil-program DSL.
///
/// A StencilSpec captures everything a fabric program used to hand-write:
/// the stencil shape (5-point cardinal or 9-point with diagonal corners),
/// the halo-exchange machinery (the Figure 6 two-step switch protocol or
/// the shared HaloExchange component), the complete ordered per-PE memory
/// layout, the color-plan claim labels, and an optional fabric-wide
/// reduction. `spec::compile` validates the spec and lowers it to a
/// CompiledSpec; `spec::SpecPeProgram` is the generated
/// `dataflow::IterativeKernelProgram` that executes it, invoking a
/// StencilKernel for the physics only.
///
/// The split is deliberate: everything that fvf::lint can verify
/// statically (colors, routes, sends, handlers, memory) is produced by
/// the compiler from the spec, while the kernel contributes nothing but
/// arithmetic — so a compiled program that passes `fvf::lint --strict`
/// is communication-correct by construction, whatever the kernel does.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "mesh/stencil.hpp"
#include "wse/collectives.hpp"
#include "wse/dsd.hpp"
#include "wse/fabric.hpp"

namespace fvf::spec {

/// How neighbor columns move between PEs.
enum class ExchangeKind : u8 {
  /// No neighbor traffic at all (reduction-free local kernels and the
  /// lint defect fixtures).
  None,
  /// The paper's Figure 6 two-step switch protocol with explicit
  /// per-color handlers and diagonal forwarding (Figure 5). Supports
  /// overlap: the kernel processes each block the moment it arrives.
  SwitchProtocol,
  /// The shared dataflow::HaloExchange component: one [fields...] block
  /// per round to all ten neighbors, kernel runs at round completion.
  StaticHalo,
};

/// Which neighbors participate in the stencil.
enum class StencilShape : u8 {
  FivePoint,  ///< 4 cardinal XY neighbors (plus the vertical column)
  NinePoint,  ///< cardinal + 4 diagonal corner neighbors
};

/// Role of one record in the per-PE memory layout. The compiler checks
/// receive-buffer sizes against the declared halo block; everything else
/// is accounting the engine reserves verbatim, in declaration order.
enum class FieldRole : u8 {
  State,         ///< kernel-owned columns, words_per_cell * Nz floats
  Code,          ///< fixed code+runtime bytes (independent of Nz)
  CardinalRecv,  ///< the 4 cardinal receive buffers (SwitchProtocol)
  DiagonalRecv,  ///< the 4 diagonal receive buffers (SwitchProtocol)
  HaloRecv,      ///< the 8 HaloExchange buffers (StaticHalo)
};

/// One record of the ordered per-PE memory declaration.
struct FieldSpec {
  std::string name;  ///< reservation tag, shown in lint memory findings
  FieldRole role = FieldRole::State;
  /// f32 words per column cell (all roles except Code).
  i32 words_per_cell = 0;
  /// Absolute bytes (Code role only).
  usize bytes = 0;
};

/// ColorPlan claim owner strings, shown in plan descriptions and lint
/// unclaimed-color diagnostics.
struct ClaimLabels {
  std::string cardinal;
  std::string diagonal;
  std::string allreduce;
  std::string nack;
};

/// A fabric-wide reduction the kernel triggers at round completion
/// (StaticHalo only; the transport dt MIN-tree is the canonical use).
struct ReductionSpec {
  wse::ReduceOp op = wse::ReduceOp::Min;
  i32 length = 1;
};

/// Deliberate spec defects, used only by the lint defect corpus to
/// produce programs that each trip exactly one diagnostic class.
struct DefectInjection {
  /// Skip binding the data handler for the East cardinal color while
  /// still routing and declaring its traffic (unhandled-delivery).
  bool drop_east_data_handler = false;
};

class StencilKernel;

/// Creates the per-PE physics kernel at load time. May be empty for
/// kernel-less fixtures (the program then must never be run).
using KernelFactory =
    std::function<std::unique_ptr<StencilKernel>(Coord2 coord,
                                                 Coord2 fabric_size)>;

/// The declarative program description `spec::compile` lowers.
struct StencilSpec {
  std::string name;
  ExchangeKind exchange = ExchangeKind::SwitchProtocol;
  StencilShape shape = StencilShape::NinePoint;
  /// f32 words per column cell in one halo block (e.g. [p | rho] = 2).
  i32 block_words_per_cell = 2;
  /// Outer rounds the switch-protocol engine runs (SwitchProtocol only;
  /// StaticHalo kernels decide termination themselves).
  i32 rounds = 1;
  /// Complete ordered per-PE memory layout.
  std::vector<FieldSpec> fields;
  ClaimLabels claims;
  std::optional<ReductionSpec> reduction;
  KernelFactory make_kernel;
  DefectInjection defects;
};

/// What a StaticHalo kernel wants after a completed round.
enum class RoundAction : u8 {
  Continue,  ///< start the next exchange round
  Done,      ///< signal completion to the runtime
  Reduce,    ///< contribute to the fabric-wide reduction first
};

struct RoundOutcome {
  RoundAction action = RoundAction::Done;
  /// Contribution to the reduction (RoundAction::Reduce only).
  f32 contribution = 0.0f;
};

/// The physics half of a compiled program. The engine owns every color,
/// route, buffer, and counter; the kernel sees arrivals as face-tagged
/// DSD views and supplies the arithmetic. Hooks are grouped by the
/// exchange kind that invokes them; the defaults reject calls so a
/// kernel wired to the wrong exchange fails loudly.
class StencilKernel {
 public:
  StencilKernel() = default;
  StencilKernel(const StencilKernel&) = delete;
  StencilKernel& operator=(const StencilKernel&) = delete;
  virtual ~StencilKernel() = default;

  /// The two halves of the outgoing block ([p | rho] for TPFA).
  struct SendHalves {
    std::span<const f32> first;
    std::span<const f32> second;
  };

  /// Per-face receive-buffer views for the canonical-order accumulation;
  /// empty optionals mark fabric-edge faces (and the vertical faces,
  /// which are always local).
  using FaceBlocks = std::array<std::optional<wse::Dsd>, mesh::kFaceCount>;

  // --- SwitchProtocol hooks ---------------------------------------------
  /// Local work at the start of round `round` (pressure advance, EOS,
  /// residual reset for TPFA). Charged phases are the kernel's business.
  virtual void local_compute(wse::PeApi& api, i32 round);
  /// The block this PE injects on every cardinal color this round.
  [[nodiscard]] virtual SendHalves send_halves() const;
  /// A neighbor block is current: compute with it now (overlap). `block`
  /// views the engine's receive buffer (block_words_per_cell * Nz); the
  /// kernel may overwrite dead halves (TPFA parks the flux column there).
  virtual void process_block(wse::PeApi& api, mesh::Face face,
                             wse::Dsd block);
  /// All faces of round `round` are in: fold them into the result in
  /// canonical face order.
  virtual void finalize_round(wse::PeApi& api, const FaceBlocks& blocks);

  // --- StaticHalo hooks -------------------------------------------------
  /// Stage and return the outgoing halo block for the next round.
  [[nodiscard]] virtual std::span<const f32> begin_round(wse::PeApi& api);
  /// One halo block arrived; the view stays valid until the next round.
  virtual void on_block(wse::PeApi& api, mesh::Face face, wse::Dsd block);
  /// Every expected block arrived: run the round's arithmetic.
  [[nodiscard]] virtual RoundOutcome on_round_complete(wse::PeApi& api);
  /// The reduction completed with `value`; decide Continue or Done.
  [[nodiscard]] virtual RoundAction on_reduced(wse::PeApi& api, f32 value);
};

}  // namespace fvf::spec
