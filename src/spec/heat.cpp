#include "spec/heat.hpp"

#include <algorithm>

#include "spec/compile.hpp"
#include "spec/launch.hpp"

namespace fvf::spec {

namespace {

using wse::Dsd;
using wse::PeApi;

inline u64 hash_cell(u64 seed, u64 index) {
  // splitmix64-style finalizer: deterministic, no libm, no global RNG.
  u64 x = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

/// The physics half of the heat program: one Jacobi update per round.
class HeatKernel final : public StencilKernel {
 public:
  HeatKernel(i32 nz, HeatKernelOptions options, std::vector<f32> column)
      : nz_(nz), options_(options), u_(std::move(column)) {
    FVF_REQUIRE(nz > 0);
    FVF_REQUIRE(options.steps >= 1);
    FVF_REQUIRE(static_cast<i32>(u_.size()) == nz);
    const usize n = static_cast<usize>(nz);
    u_next_.assign(n, 0.0f);
    send_buf_.assign(n, 0.0f);
  }

  [[nodiscard]] std::span<const f32> field() const noexcept { return u_; }
  [[nodiscard]] i32 steps_completed() const noexcept { return steps_done_; }

  [[nodiscard]] std::span<const f32> begin_round(PeApi& api) override {
    for (auto& view : neighbor_block_) {
      view.reset();
    }
    std::copy(u_.begin(), u_.end(), send_buf_.begin());
    api.scalar_ops(static_cast<usize>(nz_));
    return send_buf_;
  }

  void on_block(PeApi& api, mesh::Face face, Dsd block) override {
    api.hazard_mark_live(block, "heat neighbor view");
    neighbor_block_[static_cast<usize>(face)] = block;
  }

  [[nodiscard]] RoundOutcome on_round_complete(PeApi& api) override {
    for (i32 z = 0; z < nz_; ++z) {
      const usize uz = static_cast<usize>(z);
      const f32 u_self = u_[uz];
      f32 acc = u_self;
      // Identical face order and skip rules as heat_reference_host.
      for (const mesh::Face face : mesh::kAllFaces) {
        if (mesh::is_vertical(face)) {
          continue;  // Z layers are independent
        }
        const auto& view = neighbor_block_[static_cast<usize>(face)];
        if (!view) {
          continue;  // fabric-edge face: no-flux boundary
        }
        const f32 u_nb = view->at(z);
        acc += options_.alpha * (heat_face_weight(face) * (u_nb - u_self));
      }
      u_next_[uz] = acc;
    }
    api.scalar_ops(static_cast<usize>(nz_) * 8 * 4);

    std::copy(u_next_.begin(), u_next_.end(), u_.begin());
    api.scalar_ops(static_cast<usize>(nz_));
    api.hazard_release_all();

    ++steps_done_;
    return RoundOutcome{steps_done_ >= options_.steps ? RoundAction::Done
                                                      : RoundAction::Continue,
                        0.0f};
  }

 private:
  i32 nz_ = 0;
  HeatKernelOptions options_;
  std::vector<f32> u_;
  std::vector<f32> u_next_;
  std::vector<f32> send_buf_;
  /// Views of the halo buffers, one per XY face, refreshed every round.
  std::array<std::optional<Dsd>, mesh::kFaceCount> neighbor_block_;
  i32 steps_done_ = 0;
};

StencilSpec make_heat_spec(const HeatKernelOptions&) {
  StencilSpec s;
  s.name = "heat";
  s.exchange = ExchangeKind::StaticHalo;
  s.shape = StencilShape::NinePoint;
  s.block_words_per_cell = 1;  // [u]
  s.claims.cardinal = "heat halo exchange";
  s.claims.diagonal = "heat halo diagonal forwards";
  s.claims.nack = "heat halo retransmit";
  s.fields = {
      {"u/u_next/send columns", FieldRole::State, 3, 0},
      {"halo buffers", FieldRole::HaloRecv, 8, 0},
      {"code+runtime", FieldRole::Code, 0, 2048},
  };
  return s;
}

HeatPeProgram::HeatPeProgram(Coord2 coord, Coord2 fabric_size, i32 nz,
                             HeatKernelOptions options,
                             std::vector<f32> column,
                             dataflow::HaloReliabilityOptions reliability)
    : SpecPeProgram(coord, fabric_size, nz, compile(make_heat_spec(options)),
                    SpecPeProgram::LaunchBindings{{}, reliability},
                    std::make_unique<HeatKernel>(nz, options,
                                                 std::move(column))),
      physics_(static_cast<HeatKernel*>(kernel())) {}

std::span<const f32> HeatPeProgram::field() const noexcept {
  return physics_->field();
}

i32 HeatPeProgram::steps_completed() const noexcept {
  return physics_->steps_completed();
}

HeatLoad load_dataflow_heat(const Array3<f32>& field,
                            const DataflowHeatOptions& options) {
  const Extents3 ext = field.extents();

  dataflow::HaloReliabilityOptions reliability = options.reliability;
  if (options.execution.fault.bit_flip_rate > 0.0) {
    // Dropped blocks break the implicit-FIFO halo protocol; the
    // ack/retransmit layer is mandatory under such fault scenarios.
    reliability.enabled = true;
  }

  // Compile the declarative spec and verify the lowered program (strict
  // lint, memoized per program shape).
  const CompiledSpec compiled = compile(make_heat_spec(options.kernel));
  const Coord2 extents{ext.nx, ext.ny};
  const dataflow::HarnessOptions effective = verified_options(
      compiled, extents, ext.nz, options, reliability.enabled);

  HeatLoad load;
  load.harness =
      std::make_unique<dataflow::FabricHarness>(extents, effective);
  compiled.claim_colors(load.harness->colors(), reliability.enabled);

  const HeatKernelOptions kernel = options.kernel;
  load.grid = load.harness->load<HeatPeProgram>(
      [&field, ext, kernel, reliability](Coord2 coord, Coord2 fabric_size) {
        std::vector<f32> column(static_cast<usize>(ext.nz));
        for (i32 z = 0; z < ext.nz; ++z) {
          column[static_cast<usize>(z)] = field(coord.x, coord.y, z);
        }
        return std::make_unique<HeatPeProgram>(coord, fabric_size, ext.nz,
                                               kernel, std::move(column),
                                               reliability);
      });
  record_verified(compiled, extents, ext.nz, effective, reliability.enabled);
  return load;
}

DataflowHeatResult run_dataflow_heat(const Array3<f32>& field,
                                     const DataflowHeatOptions& options) {
  const Extents3 ext = field.extents();
  const HeatLoad load = load_dataflow_heat(field, options);

  DataflowHeatResult result;
  static_cast<dataflow::RunInfo&>(result) = load.harness->run();
  result.field = Array3<f32>(ext);
  load.grid.gather(result.field,
                   [](const HeatPeProgram& p) { return p.field(); });
  result.steps_completed = load.grid.at(0, 0).steps_completed();
  return result;
}

Array3<f32> heat_reference_host(const Array3<f32>& field,
                                const HeatKernelOptions& options) {
  const Extents3 ext = field.extents();
  Array3<f32> u = field;
  Array3<f32> u_next(ext);
  for (i32 step = 0; step < options.steps; ++step) {
    for (i32 z = 0; z < ext.nz; ++z) {
      for (i32 y = 0; y < ext.ny; ++y) {
        for (i32 x = 0; x < ext.nx; ++x) {
          const f32 u_self = u(x, y, z);
          f32 acc = u_self;
          // Identical face order and skip rules as the PE kernel.
          for (const mesh::Face face : mesh::kAllFaces) {
            if (mesh::is_vertical(face)) {
              continue;
            }
            const Coord3 off = mesh::face_offset(face);
            const i32 nx = x + off.x;
            const i32 ny = y + off.y;
            if (nx < 0 || nx >= ext.nx || ny < 0 || ny >= ext.ny) {
              continue;
            }
            const f32 u_nb = u(nx, ny, z);
            acc += options.alpha * (heat_face_weight(face) * (u_nb - u_self));
          }
          u_next(x, y, z) = acc;
        }
      }
    }
    std::swap(u, u_next);
  }
  return u;
}

Array3<f32> heat_initial_field(Extents3 extents, u64 seed) {
  Array3<f32> field(extents);
  for (i64 i = 0; i < field.size(); ++i) {
    const u64 h = hash_cell(seed, static_cast<u64>(i));
    field[i] = static_cast<f32>(h >> 40) * (1.0f / 16777216.0f);
  }
  return field;
}

}  // namespace fvf::spec
