/// \file program.hpp
/// \brief SpecPeProgram — the `IterativeKernelProgram` subclass that
///        `spec::compile` generates (one engine, parameterized by the
///        CompiledSpec; the physics arrives as a StencilKernel).
///
/// The SwitchProtocol mode is an operation-for-operation port of the
/// hand-written TPFA exchange (Figure 6 roles and routes, Figure 5
/// diagonal forwarding, the <=1-iteration-ahead receive buffers, the
/// control-triggered phase-2 sends, and the completion gating on the
/// send obligation) — the golden traces prove the lowering is faithful.
/// The StaticHalo mode drives the shared HaloExchange component plus the
/// optional reduction tree, mirroring the transport program's event
/// order exactly.
#pragma once

#include <memory>
#include <string>

#include "dataflow/iterative_kernel.hpp"
#include "spec/compile.hpp"

namespace fvf::spec {

class SpecPeProgram : public dataflow::IterativeKernelProgram {
 public:
  /// Launch-time inputs the ColorPlan hands back after claiming.
  struct LaunchBindings {
    std::optional<wse::AllReduceColors> reduce;
    dataflow::HaloReliabilityOptions reliability{};
  };

  /// `kernel` may be null only for programs that are linted but never
  /// run (the defect corpus fixtures).
  SpecPeProgram(Coord2 coord, Coord2 fabric_size, i32 nz,
                CompiledSpec compiled, LaunchBindings bindings,
                std::unique_ptr<StencilKernel> kernel);

  [[nodiscard]] const CompiledSpec& compiled() const noexcept {
    return compiled_;
  }
  [[nodiscard]] i32 completed_rounds() const noexcept { return round_; }

  /// One-line diagnostic of the engine's communication state (per-color
  /// send/receive/control counters); used by deadlock reports and tests.
  [[nodiscard]] std::string debug_state() const;

 protected:
  [[nodiscard]] StencilKernel* kernel() const noexcept {
    return kernel_.get();
  }

 private:
  struct CardinalState {
    bool phase1_sender = false;  ///< sends at round start
    bool has_upstream = false;   ///< expects data (+control) arrivals
    i32 received = 0;            ///< total data blocks delivered
    i32 processed = 0;           ///< total blocks consumed by the kernel
    i32 controls = 0;            ///< total control wavelets delivered
    i32 sends = 0;               ///< total blocks sent
    bool buffered = false;       ///< unconsumed block in the recv buffer
  };
  struct DiagonalState {
    bool expected = false;  ///< the corner neighbor exists
    i32 received = 0;
    i32 processed = 0;
    bool buffered = false;
  };

  // wse::PeProgram / IterativeKernelProgram phase hooks.
  void reserve_memory(wse::PeMemory& mem) override;
  void begin(wse::PeApi& api) override;
  void configure_routes(wse::Router& router) override;
  [[nodiscard]] std::vector<wse::SendDeclaration> program_send_declarations()
      const override;
  [[nodiscard]] std::vector<wse::ChannelDependency>
  program_channel_dependencies() const override;
  /// Origin note for fvf::lint flow diagnostics: maps a color back to the
  /// StencilSpec field that generates its traffic (exchange, shape,
  /// reduction, reliability binding), so a finding points at the spec
  /// declaration to fix rather than the lowered routing artifact.
  [[nodiscard]] std::string describe_channel(wse::Color color) const override;
  void on_halo_block(wse::PeApi& api, mesh::Face face,
                     wse::Dsd block) override;
  void on_halo_complete(wse::PeApi& api) override;

  // Switch-protocol machinery (Figure 6 port).
  void handle_cardinal(wse::PeApi& api, wse::Color color, wse::Dir from,
                       std::span<const u32> data);
  void handle_diagonal(wse::PeApi& api, wse::Color color, wse::Dir from,
                       std::span<const u32> data);
  void handle_control(wse::PeApi& api, wse::Color color);
  void begin_iteration(wse::PeApi& api);
  void send_block(wse::PeApi& api, wse::Color color);
  void process_cardinal(wse::PeApi& api, wse::Color color);
  void process_diagonal(wse::PeApi& api, wse::Color color);
  void check_completion(wse::PeApi& api);
  void finalize_round(wse::PeApi& api);

  // Static-halo machinery (HaloExchange + reduction driver).
  void start_round(wse::PeApi& api);
  void apply_action(wse::PeApi& api, RoundAction action);

  [[nodiscard]] StencilKernel& require_kernel() const;

  CompiledSpec compiled_;
  std::unique_ptr<StencilKernel> kernel_;
  /// Launch-time color/reliability bindings kept for describe_channel.
  std::optional<wse::AllReduceColors> reduce_colors_;
  bool reliability_enabled_ = false;
  i32 nz_ = 0;
  i32 block_len_ = 0;  ///< block_words_per_cell * nz
  bool nine_point_ = false;

  // Switch-protocol receive buffers and per-color state.
  std::array<std::vector<f32>, 4> card_buf_;
  std::array<std::vector<f32>, 4> diag_buf_;
  i32 round_ = 0;
  i32 cards_processed_this_round_ = 0;
  i32 diags_processed_this_round_ = 0;
  i32 expected_cards_ = 0;
  i32 expected_diags_ = 0;
  std::array<CardinalState, 4> card_;
  std::array<DiagonalState, 4> diag_;
};

}  // namespace fvf::spec
