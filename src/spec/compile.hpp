/// \file compile.hpp
/// \brief `spec::compile` — validates a StencilSpec and lowers it to the
///        launchable form: color-plan claims, the per-PE memory layout,
///        and the inputs of the generated SpecPeProgram.
///
/// Compilation is pure validation + canonicalization; the heavy lowering
/// (routes, handlers, send declarations) happens inside SpecPeProgram
/// from the compiled description. Every compile error names the spec and
/// the offending field or phase — never a bare index.
#pragma once

#include <string>

#include "dataflow/color_plan.hpp"
#include "spec/stencil_spec.hpp"

namespace fvf::spec {

/// A validated, launch-ready spec. Copyable: every PE program carries
/// one, and the launch helpers hash it to memoize strict-lint passes.
class CompiledSpec {
 public:
  /// Colors handed back to the launcher after claiming.
  struct Claims {
    std::optional<wse::AllReduceColors> reduce;
  };

  [[nodiscard]] const StencilSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& name() const noexcept {
    return spec_.name;
  }
  [[nodiscard]] bool nine_point() const noexcept {
    return spec_.shape == StencilShape::NinePoint;
  }
  [[nodiscard]] i32 block_words() const noexcept {
    return spec_.block_words_per_cell;
  }

  /// Claims this program's colors on the harness plan, in the canonical
  /// order (cardinal, diagonal, reduction tree, NACK), using the spec's
  /// owner labels. `reliability` adds the NACK claim.
  Claims claim_colors(dataflow::ColorPlan& plan, bool reliability) const;

  /// Accounting-only data footprint (all non-Code fields) for depth `nz`.
  [[nodiscard]] usize data_footprint_bytes(i32 nz) const noexcept;
  /// Sum of the Code fields (zero or one by validation).
  [[nodiscard]] usize code_footprint_bytes() const noexcept;

  /// Structural digest (name, exchange, shape, block, fields): two
  /// launches with equal digests lower to identical colors, routes,
  /// handlers, and memory, so one strict-lint pass covers both.
  [[nodiscard]] u64 shape_digest() const noexcept { return digest_; }

  /// Human-readable lowering summary (`fvf_spec --dump-plan`).
  [[nodiscard]] std::string describe() const;

 private:
  friend CompiledSpec compile(StencilSpec spec);
  CompiledSpec() = default;

  StencilSpec spec_;
  u64 digest_ = 0;
};

/// Validates and lowers `spec`. Throws ContractViolation with a message
/// naming the spec and the offending field/phase on any inconsistency.
[[nodiscard]] CompiledSpec compile(StencilSpec spec);

}  // namespace fvf::spec
