/// \file registry.hpp
/// \brief The kernel registry — the process-wide inventory of launchable
///        fabric programs, compiled-spec and legacy alike.
///
/// Tools (`fvf_spec`, `fvf_lint`, harness CLIs) resolve `--program`
/// against this registry instead of hard-coding name lists, so an
/// unknown value is rejected with the real inventory and a newly added
/// spec kernel shows up everywhere at once. The registry is mechanism
/// only: it stores what callers register. `fvf::core` registers the
/// shipped inventory via `core::register_builtin_kernels()`; the
/// spec-owned heat kernel registers from this library.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "spec/compile.hpp"

namespace fvf::spec {

/// One launchable program, by canonical CLI name.
struct KernelInfo {
  std::string name;
  /// True when the program lowers through `spec::compile` (its plan can
  /// be dumped and linted from the spec alone); false for the legacy
  /// hand-written path (CG, wave, IMPES).
  bool compiled = false;
  std::string summary;
  /// Builds the default-options CompiledSpec. Null for legacy kernels.
  std::function<CompiledSpec()> compile_spec;
};

/// Registers (or, by name, replaces) a kernel. Thread-safe.
void register_kernel(KernelInfo info);

/// Every registered kernel, in registration order.
[[nodiscard]] std::vector<KernelInfo> registered_kernels();

/// The registered kernel named `name`, or an empty optional-like copy —
/// callers test `found.name.empty()`.
[[nodiscard]] KernelInfo find_kernel(std::string_view name);

/// "tpfa|cg|transport|..." — for usage strings and error messages.
[[nodiscard]] std::string kernel_name_list(std::string_view separator = "|");

}  // namespace fvf::spec
