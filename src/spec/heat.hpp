/// \file heat.hpp
/// \brief 2D heat diffusion with a 9-point stencil — the first kernel
///        authored directly as a `fvf::spec` program, with no legacy
///        hand-written counterpart.
///
/// Each PE owns one Z column of a scalar field u. Per step, every PE
/// exchanges its u column with all eight XY neighbors (static halo) and
/// applies one explicit Jacobi update per layer:
///
///   u' = u + alpha * sum_f w_f * (u_nb - u)
///
/// with cardinal weight 4/6 and diagonal weight 1/6 (the classical
/// 9-point Laplacian weighting). Z layers are independent; fabric-edge
/// faces are skipped (no-flux boundary). A host mirror
/// (heat_reference_host) replicates the f32 arithmetic and face order
/// operation-for-operation for bitwise validation.
#pragma once

#include <memory>
#include <vector>

#include "common/array3d.hpp"
#include "dataflow/fabric_harness.hpp"
#include "spec/program.hpp"

namespace fvf::spec {

/// Kernel options shared by every PE.
struct HeatKernelOptions {
  i32 steps = 10;      ///< explicit Jacobi steps to run
  f32 alpha = 0.125f;  ///< diffusion number (stable for alpha <= 1/8)
};

/// Classical 9-point Laplacian weights (cardinal:diagonal ratio 4:1,
/// normalized so the eight weights sum to 4). Shared by the PE kernel,
/// the host mirror, and the gpusim backend so all three agree
/// bit-for-bit.
inline constexpr f32 kHeatCardinalWeight = 4.0f / 6.0f;
inline constexpr f32 kHeatDiagonalWeight = 1.0f / 6.0f;

[[nodiscard]] inline f32 heat_face_weight(mesh::Face face) {
  const Coord3 off = mesh::face_offset(face);
  return (off.x != 0 && off.y != 0) ? kHeatDiagonalWeight
                                    : kHeatCardinalWeight;
}

/// The declarative description of the heat program.
[[nodiscard]] StencilSpec make_heat_spec(const HeatKernelOptions& options);

class HeatKernel;

/// The per-PE heat program: a thin facade over the compiled-spec engine.
class HeatPeProgram final : public SpecPeProgram {
 public:
  HeatPeProgram(Coord2 coord, Coord2 fabric_size, i32 nz,
                HeatKernelOptions options, std::vector<f32> column,
                dataflow::HaloReliabilityOptions reliability = {});

  /// The u column after the final completed step.
  [[nodiscard]] std::span<const f32> field() const noexcept;
  [[nodiscard]] i32 steps_completed() const noexcept;

 private:
  HeatKernel* physics_;  ///< borrowed from the engine-owned kernel
};

/// Launch options.
struct DataflowHeatOptions : dataflow::HarnessOptions {
  HeatKernelOptions kernel{};
  dataflow::HaloReliabilityOptions reliability{};
};

/// Result of a heat run on the fabric: full fabric accounting plus the
/// diffused field.
struct DataflowHeatResult : dataflow::RunInfo {
  Array3<f32> field;
  i32 steps_completed = 0;
};

/// A loaded-but-not-run heat launch (see core/launcher.hpp::TpfaLoad).
/// The referenced field array must outlive the load.
struct HeatLoad {
  std::unique_ptr<dataflow::FabricHarness> harness;
  dataflow::ProgramGrid<HeatPeProgram> grid;
};

/// Claims the heat colors and loads the per-PE programs without running
/// the event engine — the fvf_lint entry point, and the first half of
/// run_dataflow_heat.
[[nodiscard]] HeatLoad load_dataflow_heat(const Array3<f32>& field,
                                          const DataflowHeatOptions& options);

/// Runs `options.kernel.steps` Jacobi steps on the simulated fabric
/// (one PE per column) and gathers the diffused field.
[[nodiscard]] DataflowHeatResult run_dataflow_heat(
    const Array3<f32>& field, const DataflowHeatOptions& options);

/// Host mirror of the fabric heat run: identical f32 arithmetic and face
/// order, for bitwise validation.
[[nodiscard]] Array3<f32> heat_reference_host(const Array3<f32>& field,
                                              const HeatKernelOptions& options);

/// Deterministic pseudo-random initial field in [0, 1), built from an
/// integer hash of the cell's linear index (no libm, no global RNG).
[[nodiscard]] Array3<f32> heat_initial_field(Extents3 extents, u64 seed);

}  // namespace fvf::spec
