/// \file defects.cpp
/// \brief The lint defect corpus (lint/defects.hpp), now generated from
///        `fvf::spec` where the diagnostic class has a spec-level cause.
///
/// Three corpus entries are deliberately-broken StencilSpecs lowered
/// through the real compiler — the same pipeline every shipped program
/// uses — so the corpus exercises lint on generated programs, not
/// hand-built lookalikes:
///
///   - unhandled-delivery: a switch-protocol spec whose East data
///     handler is dropped via DefectInjection;
///   - memory-over-budget / memory-near-limit: exchange-free specs whose
///     single declared field overshoots (or crowds) the PE budget.
///
/// The remaining five classes describe defects below the spec
/// abstraction (raw router misconfiguration, unclaimed colors, cycles),
/// which `spec::compile` makes unrepresentable — those fixtures stay
/// hand-seeded.
#include "lint/defects.hpp"

#include <memory>
#include <utility>

#include "spec/compile.hpp"
#include "spec/program.hpp"
#include "wse/fabric.hpp"
#include "wse/program.hpp"
#include "wse/route.hpp"
#include "wse/router.hpp"

namespace fvf::lint {

namespace {

using wse::Color;
using wse::ColorConfig;
using wse::Dir;
using wse::position;
using wse::RouteRule;
using wse::SwitchPosition;

/// Every hand-seeded fixture runs on one color; the choice is arbitrary.
constexpr Color kColor{0};

/// Per-PE behaviour of a hand-seeded fixture, driven entirely by data so
/// each defect is a handful of lines.
struct FixtureSpec {
  std::function<void(wse::Router&)> configure;
  std::vector<wse::SendDeclaration> sends;
  std::vector<wse::ChannelDependency> deps;
  std::vector<wse::ReductionDeclaration> reductions;
  bool handles = true;
};

class FixtureProgram final : public wse::PeProgram {
 public:
  explicit FixtureProgram(FixtureSpec spec) : spec_(std::move(spec)) {}

  void configure_router(wse::Router& router) override {
    if (spec_.configure != nullptr) {
      spec_.configure(router);
    }
  }
  void reserve_memory(wse::PeMemory&) override {}
  [[nodiscard]] bool handles_color(Color, bool) const override {
    return spec_.handles;
  }
  [[nodiscard]] std::vector<wse::SendDeclaration> send_declarations()
      const override {
    return spec_.sends;
  }
  [[nodiscard]] std::vector<wse::ChannelDependency> channel_dependencies()
      const override {
    return spec_.deps;
  }
  [[nodiscard]] std::vector<wse::ReductionDeclaration> reduction_declarations()
      const override {
    return spec_.reductions;
  }
  void on_start(wse::PeApi&) override {}
  void on_data(wse::PeApi&, Color, Dir, std::span<const u32>) override {}

 private:
  FixtureSpec spec_;
};

/// Builds a width x height fabric whose PE programs come from `spec_of`,
/// loads it, and lints it. The probe factory re-invokes `spec_of`, so the
/// memory check sees the same declarations the loaded programs made.
[[nodiscard]] Report lint_fixture(
    i32 width, i32 height,
    const std::function<FixtureSpec(Coord2)>& spec_of,
    const std::function<void(Options&)>& tweak = nullptr) {
  wse::Fabric fabric(width, height);
  const wse::ProgramFactory factory =
      [spec_of](Coord2 coord, Coord2) -> std::unique_ptr<wse::PeProgram> {
    return std::make_unique<FixtureProgram>(spec_of(coord));
  };
  fabric.load(factory);
  Options options;
  options.probe_factory = factory;
  if (tweak != nullptr) {
    tweak(options);
  }
  return run(fabric, options);
}

/// Compiles a (deliberately broken) StencilSpec and lints the generated
/// program on a width x height fabric — the corpus path for defects that
/// exist at the spec level. Programs are loaded kernel-less: lint only
/// inspects structure, never runs physics.
[[nodiscard]] Report lint_spec_fixture(
    spec::StencilSpec broken, i32 width, i32 height, i32 nz,
    const std::function<void(Options&)>& tweak = nullptr) {
  const spec::CompiledSpec compiled = spec::compile(std::move(broken));
  wse::Fabric fabric(width, height);
  const wse::ProgramFactory factory =
      [&compiled, nz](Coord2 coord,
                      Coord2 fabric_size) -> std::unique_ptr<wse::PeProgram> {
    return std::make_unique<spec::SpecPeProgram>(
        coord, fabric_size, nz, compiled,
        spec::SpecPeProgram::LaunchBindings{}, nullptr);
  };
  fabric.load(factory);
  Options options;
  options.probe_factory = factory;
  if (tweak != nullptr) {
    tweak(options);
  }
  return run(fabric, options);
}

[[nodiscard]] ColorConfig single(SwitchPosition pos) {
  std::vector<SwitchPosition> positions;
  positions.push_back(std::move(pos));
  return ColorConfig(std::move(positions));
}

/// unclaimed-color: a router configures kColor, but the claim oracle says
/// no component owns it.
[[nodiscard]] Report lint_unclaimed_color() {
  return lint_fixture(
      1, 1,
      [](Coord2) {
        FixtureSpec spec;
        spec.configure = [](wse::Router& router) {
          router.configure(kColor, single(position(Dir::Ramp, {Dir::East})));
        };
        return spec;
      },
      [](Options& options) {
        options.color_claimed = [](Color) { return false; };
        options.color_map = [] {
          return std::string("  (no colors claimed: empty plan)");
        };
      });
}

/// switch-reconfigured: two components both install kColor on the same
/// router; the second silently replaces the first's position table.
[[nodiscard]] Report lint_switch_reconfigured() {
  return lint_fixture(1, 1, [](Coord2) {
    FixtureSpec spec;
    spec.configure = [](wse::Router& router) {
      router.configure(kColor, single(position(Dir::Ramp, {Dir::East})));
      router.configure(kColor, single(position(Dir::Ramp, {Dir::North})));
    };
    return spec;
  });
}

/// routing-cycle: a 2x2 ring (0,0) -E-> (1,0) -N-> (1,1) -W-> (0,1) -S->
/// back to (0,0). A wavelet injected at (0,0) circulates forever.
[[nodiscard]] Report lint_routing_cycle() {
  return lint_fixture(2, 2, [](Coord2 coord) {
    FixtureSpec spec;
    if (coord.x == 0 && coord.y == 0) {
      spec.sends = {{kColor, false}};
      spec.configure = [](wse::Router& router) {
        router.configure(kColor,
                         single(position({RouteRule{Dir::Ramp, {Dir::East}},
                                          RouteRule{Dir::North, {Dir::East}}})));
      };
    } else if (coord.x == 1 && coord.y == 0) {
      spec.configure = [](wse::Router& router) {
        router.configure(kColor, single(position(Dir::West, {Dir::North})));
      };
    } else if (coord.x == 1 && coord.y == 1) {
      spec.configure = [](wse::Router& router) {
        router.configure(kColor, single(position(Dir::South, {Dir::West})));
      };
    } else {
      spec.configure = [](wse::Router& router) {
        router.configure(kColor, single(position(Dir::East, {Dir::South})));
      };
    }
    return spec;
  });
}

/// dead-end: a 1x3 pipeline whose last PE only configures Ramp -> East;
/// blocks forwarded by the middle PE arrive on its West input, which no
/// switch position accepts — they would wait in the input buffer forever.
[[nodiscard]] Report lint_dead_end() {
  return lint_fixture(3, 1, [](Coord2 coord) {
    FixtureSpec spec;
    if (coord.x == 0) {
      spec.sends = {{kColor, false}};
      spec.configure = [](wse::Router& router) {
        router.configure(kColor, single(position(Dir::Ramp, {Dir::East})));
      };
    } else if (coord.x == 1) {
      spec.configure = [](wse::Router& router) {
        router.configure(kColor, single(position(Dir::West, {Dir::East})));
      };
    } else {
      spec.configure = [](wse::Router& router) {
        router.configure(kColor, single(position(Dir::Ramp, {Dir::East})));
      };
    }
    return spec;
  });
}

/// unrouted-send: the program declares a send on kColor, but no switch
/// position of that color accepts the Ramp — injected wavelets would
/// never leave the PE.
[[nodiscard]] Report lint_unrouted_send() {
  return lint_fixture(2, 1, [](Coord2 coord) {
    FixtureSpec spec;
    if (coord.x == 0) {
      spec.sends = {{kColor, false}};
      spec.configure = [](wse::Router& router) {
        router.configure(kColor, single(position(Dir::West, {Dir::Ramp})));
      };
    }
    return spec;
  });
}

/// unhandled-delivery: a compiled switch-protocol spec whose East data
/// handler is dropped (DefectInjection) — traffic is still routed and
/// declared, so exactly the delivery check fires, at the downstream PE.
[[nodiscard]] Report lint_unhandled_delivery() {
  spec::StencilSpec broken;
  broken.name = "unhandled-delivery fixture";
  broken.exchange = spec::ExchangeKind::SwitchProtocol;
  broken.shape = spec::StencilShape::FivePoint;
  broken.block_words_per_cell = 2;
  broken.rounds = 1;
  broken.fields = {
      {"cardinal recv buffers", spec::FieldRole::CardinalRecv, 8, 0},
      {"diagonal recv buffers", spec::FieldRole::DiagonalRecv, 8, 0},
  };
  broken.defects.drop_east_data_handler = true;
  return lint_spec_fixture(std::move(broken), 2, 1, 1);
}

/// memory-over-budget: a compiled spec declaring a 64 KiB field against
/// the 48 KiB WSE-2 PE budget.
[[nodiscard]] Report lint_memory_over_budget() {
  spec::StencilSpec broken;
  broken.name = "memory-over-budget fixture";
  broken.exchange = spec::ExchangeKind::None;
  broken.fields = {{"fixture payload", spec::FieldRole::State, 16384, 0}};
  return lint_spec_fixture(std::move(broken), 1, 1, 1,
                           [](Options& options) {
                             options.memory_budget =
                                 wse::PeMemory::kDefaultBudget;
                           });
}

/// memory-near-limit: 47 KiB of the 48 KiB budget — legal, but within
/// the default 90% warning fraction.
[[nodiscard]] Report lint_memory_near_limit() {
  spec::StencilSpec broken;
  broken.name = "memory-near-limit fixture";
  broken.exchange = spec::ExchangeKind::None;
  broken.fields = {{"fixture payload", spec::FieldRole::State, 12032, 0}};
  return lint_spec_fixture(std::move(broken), 1, 1, 1,
                           [](Options& options) {
                             options.memory_budget =
                                 wse::PeMemory::kDefaultBudget;
                           });
}

/// buffer-overflow-possible: the sender declares 96 blocks in flight on a
/// color whose receiving switch only accepts West in one of its two
/// positions — with the switch parked on the other position, all 96 blocks
/// queue in the West input buffer, past the default depth of 64.
[[nodiscard]] Report lint_buffer_overflow_possible() {
  return lint_fixture(2, 1, [](Coord2 coord) {
    FixtureSpec spec;
    if (coord.x == 0) {
      spec.sends = {{kColor, false, 96}};
      spec.configure = [](wse::Router& router) {
        router.configure(kColor, single(position(Dir::Ramp, {Dir::East})));
      };
    } else {
      spec.configure = [](wse::Router& router) {
        router.configure(
            kColor,
            ColorConfig({position(Dir::West, {Dir::Ramp}),
                         position(Dir::East, {Dir::Ramp})}));
      };
    }
    return spec;
  });
}

/// cross-color-deadlock: two PEs with mutually-blocking send orderings.
/// (0,0) sends color 0 east only after color 1 arrives; (1,0) sends
/// color 1 west only after color 0 arrives. Neither send can ever start.
constexpr Color kEastbound{0};
constexpr Color kWestbound{1};

[[nodiscard]] Report lint_cross_color_deadlock() {
  return lint_fixture(2, 1, [](Coord2 coord) {
    FixtureSpec spec;
    if (coord.x == 0) {
      spec.sends = {{kEastbound, false}};
      spec.deps = {{kWestbound, kEastbound}};
      spec.configure = [](wse::Router& router) {
        router.configure(kEastbound,
                         single(position(Dir::Ramp, {Dir::East})));
        router.configure(kWestbound,
                         single(position(Dir::East, {Dir::Ramp})));
      };
    } else {
      spec.sends = {{kWestbound, false}};
      spec.deps = {{kEastbound, kWestbound}};
      spec.configure = [](wse::Router& router) {
        router.configure(kWestbound,
                         single(position(Dir::Ramp, {Dir::West})));
        router.configure(kEastbound,
                         single(position(Dir::West, {Dir::Ramp})));
      };
    }
    return spec;
  });
}

/// order-sensitive-reduction: the middle PE of a 1x3 row folds kColor in
/// arrival order while both neighbors send toward it — the routing plan
/// does not pin which block lands first, so the f32 result is
/// interleaving-dependent.
[[nodiscard]] Report lint_order_sensitive_reduction() {
  return lint_fixture(3, 1, [](Coord2 coord) {
    FixtureSpec spec;
    if (coord.x == 0) {
      spec.sends = {{kColor, false}};
      spec.configure = [](wse::Router& router) {
        router.configure(kColor, single(position(Dir::Ramp, {Dir::East})));
      };
    } else if (coord.x == 2) {
      spec.sends = {{kColor, false}};
      spec.configure = [](wse::Router& router) {
        router.configure(kColor, single(position(Dir::Ramp, {Dir::West})));
      };
    } else {
      spec.reductions = {{{kColor}, true, "fixture accumulator"}};
      spec.configure = [](wse::Router& router) {
        router.configure(
            kColor,
            single(position({RouteRule{Dir::West, {Dir::Ramp}},
                             RouteRule{Dir::East, {Dir::Ramp}}})));
      };
    }
    return spec;
  });
}

}  // namespace

const std::vector<Defect>& defect_corpus() {
  static const std::vector<Defect> corpus = {
      {"unclaimed-color", Check::UnclaimedColor,
       "router configures a color no component claimed in the ColorPlan",
       lint_unclaimed_color},
      {"switch-reconfigured", Check::SwitchReconfigured,
       "two components install the same color's switch positions",
       lint_switch_reconfigured},
      {"routing-cycle", Check::RoutingCycle,
       "2x2 routing ring: injected wavelets circulate forever",
       lint_routing_cycle},
      {"dead-end", Check::DeadEnd,
       "traffic routed into an input no switch position accepts",
       lint_dead_end},
      {"unrouted-send", Check::UnroutedSend,
       "declared send on a color that never accepts the Ramp",
       lint_unrouted_send},
      {"unhandled-delivery", Check::UnhandledDelivery,
       "compiled spec with its East data handler dropped: routed traffic "
       "reaches a PE that does not handle the color",
       lint_unhandled_delivery},
      {"memory-over-budget", Check::MemoryOverBudget,
       "compiled spec whose declared field exceeds the 48 KiB PE budget",
       lint_memory_over_budget},
      {"memory-near-limit", Check::MemoryNearLimit,
       "compiled spec whose declared field fills 90%+ of the PE budget",
       lint_memory_near_limit},
      {"buffer-overflow-possible", Check::BufferOverflowPossible,
       "declared in-flight blocks exceed the receiving router's input "
       "buffer depth under an adverse switch position",
       lint_buffer_overflow_possible},
      {"cross-color-deadlock", Check::CrossColorDeadlock,
       "two PEs whose declared send orderings wait on each other's colors",
       lint_cross_color_deadlock},
      {"order-sensitive-reduction", Check::OrderSensitiveReduction,
       "arrival-order f32 fold fed by two senders the routing plan does "
       "not sequence",
       lint_order_sensitive_reduction},
  };
  return corpus;
}

}  // namespace fvf::lint
