#include "spec/launch.hpp"

#include <mutex>
#include <unordered_set>

namespace fvf::spec {

namespace {

u64 shape_key(const CompiledSpec& compiled, Coord2 extents, i32 nz,
              const dataflow::HarnessOptions& options,
              bool reliability_enabled) {
  // FNV-style mix over everything that changes what the linter sees.
  u64 h = compiled.shape_digest();
  const auto mix = [&h](u64 v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<u64>(extents.x));
  mix(static_cast<u64>(extents.y));
  mix(static_cast<u64>(nz));
  mix(options.pe_memory_budget);
  mix(reliability_enabled ? 1u : 0u);
  return h;
}

std::mutex& memo_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_set<u64>& memo() {
  static std::unordered_set<u64> passes;
  return passes;
}

}  // namespace

dataflow::HarnessOptions verified_options(const CompiledSpec& compiled,
                                          Coord2 extents, i32 nz,
                                          const dataflow::HarnessOptions& base,
                                          bool reliability_enabled) {
  dataflow::HarnessOptions options = base;
  if (options.lint == lint::Level::Strict) {
    return options;
  }
  const u64 key =
      shape_key(compiled, extents, nz, base, reliability_enabled);
  const std::lock_guard<std::mutex> lock(memo_mutex());
  if (memo().count(key) == 0) {
    options.lint = lint::Level::Strict;
  }
  return options;
}

void record_verified(const CompiledSpec& compiled, Coord2 extents, i32 nz,
                     const dataflow::HarnessOptions& effective,
                     bool reliability_enabled) {
  if (effective.lint != lint::Level::Strict) {
    return;
  }
  const u64 key =
      shape_key(compiled, extents, nz, effective, reliability_enabled);
  const std::lock_guard<std::mutex> lock(memo_mutex());
  memo().insert(key);
}

}  // namespace fvf::spec
