/// \file launch.hpp
/// \brief The mandatory verification gate for compiled programs.
///
/// Every spec-compiled launch must pass `fvf::lint` in strict mode
/// before the FabricHarness hands the fabric to the event engine. The
/// harness runs the linter during load, but its lint level is fixed at
/// construction — so the launchers ask `verified_options` for the
/// effective HarnessOptions *before* constructing the harness, and call
/// `record_verified` once the load (and therefore the strict lint pass)
/// succeeded.
///
/// To keep repeated launches cheap (the scenario service replays the
/// same shapes thousands of times), passes are memoized process-wide by
/// the spec's structural digest + fabric extents + column depth + memory
/// budget + reliability: two launches with equal keys lower to identical
/// colors, routes, handlers, and memory reservations, so one strict pass
/// proves both.
#pragma once

#include "dataflow/run_info.hpp"
#include "spec/compile.hpp"

namespace fvf::spec {

/// `base` with lint raised to Strict unless this exact program shape
/// already passed strict lint in this process (a stricter base level is
/// never lowered).
[[nodiscard]] dataflow::HarnessOptions verified_options(
    const CompiledSpec& compiled, Coord2 extents, i32 nz,
    const dataflow::HarnessOptions& base, bool reliability_enabled);

/// Records a successful strict-lint pass for the shape. Call after the
/// harness load succeeded with options returned by verified_options.
void record_verified(const CompiledSpec& compiled, Coord2 extents, i32 nz,
                     const dataflow::HarnessOptions& effective,
                     bool reliability_enabled);

}  // namespace fvf::spec
