#include "spec/compile.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace fvf::spec {

namespace {

/// FNV-1a, matching the canonical-hash convention used elsewhere.
constexpr u64 kFnvOffset = 0xcbf29ce484222325ULL;
constexpr u64 kFnvPrime = 0x100000001b3ULL;

u64 fnv1a(u64 h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= kFnvPrime;
  }
  return h;
}

u64 fnv1a_mix(u64 h, u64 v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= kFnvPrime;
  }
  return h;
}

[[noreturn]] void compile_error(const StencilSpec& spec,
                                const std::string& detail) {
  throw ContractViolation("spec::compile: spec '" + spec.name + "': " +
                          detail);
}

const char* role_name(FieldRole role) {
  switch (role) {
    case FieldRole::State:
      return "state";
    case FieldRole::Code:
      return "code";
    case FieldRole::CardinalRecv:
      return "cardinal-recv";
    case FieldRole::DiagonalRecv:
      return "diagonal-recv";
    case FieldRole::HaloRecv:
      return "halo-recv";
  }
  return "?";
}

const char* exchange_name(ExchangeKind kind) {
  switch (kind) {
    case ExchangeKind::None:
      return "none";
    case ExchangeKind::SwitchProtocol:
      return "switch-protocol";
    case ExchangeKind::StaticHalo:
      return "static-halo";
  }
  return "?";
}

void validate(const StencilSpec& spec) {
  if (spec.name.empty()) {
    throw ContractViolation("spec::compile: spec has no name");
  }
  if (spec.block_words_per_cell < 1 &&
      spec.exchange != ExchangeKind::None) {
    compile_error(spec, "block_words_per_cell must be >= 1");
  }
  if (spec.exchange == ExchangeKind::SwitchProtocol) {
    if (spec.rounds < 1) {
      compile_error(spec,
                    "rounds must be >= 1 for the switch-protocol exchange");
    }
    if (spec.block_words_per_cell % 2 != 0) {
      compile_error(spec,
                    "block_words_per_cell must be even: switch-protocol "
                    "blocks are injected as two half-column spans");
    }
  }
  if (spec.exchange == ExchangeKind::StaticHalo &&
      spec.shape != StencilShape::NinePoint) {
    compile_error(spec,
                  "the static-halo exchange always serves all ten "
                  "neighbors; declare shape = NinePoint");
  }
  if (spec.reduction) {
    if (spec.exchange != ExchangeKind::StaticHalo) {
      compile_error(spec,
                    "reduction phase requires the static-halo exchange");
    }
    if (spec.reduction->length != 1) {
      compile_error(spec,
                    "reduction phase: only length-1 reductions are "
                    "supported");
    }
  }

  const FieldSpec* code = nullptr;
  const FieldSpec* cardinal_recv = nullptr;
  const FieldSpec* diagonal_recv = nullptr;
  const FieldSpec* halo_recv = nullptr;
  for (const FieldSpec& field : spec.fields) {
    if (field.name.empty()) {
      compile_error(spec, "every field needs a name (role " +
                              std::string(role_name(field.role)) +
                              " field declared without one)");
    }
    for (const FieldSpec& other : spec.fields) {
      if (&other != &field && other.name == field.name) {
        compile_error(spec, "duplicate field '" + field.name + "'");
      }
    }
    if (field.role == FieldRole::Code) {
      if (field.bytes == 0) {
        compile_error(spec, "code field '" + field.name +
                                "' must declare a byte footprint");
      }
      if (code != nullptr) {
        compile_error(spec, "second code field '" + field.name +
                                "' (already have '" + code->name + "')");
      }
      code = &field;
      continue;
    }
    if (field.words_per_cell < 1) {
      compile_error(spec, "field '" + field.name +
                              "' must declare words_per_cell >= 1");
    }
    if (field.bytes != 0) {
      compile_error(spec, "field '" + field.name +
                              "': bytes is reserved for the code field");
    }
    const auto claim_unique = [&](const FieldSpec*& slot,
                                  ExchangeKind needs) {
      if (spec.exchange != needs) {
        compile_error(spec, "field '" + field.name + "' (role " +
                                role_name(field.role) +
                                ") requires the " +
                                std::string(exchange_name(needs)) +
                                " exchange");
      }
      if (slot != nullptr) {
        compile_error(spec, "second " +
                                std::string(role_name(field.role)) +
                                " field '" + field.name +
                                "' (already have '" + slot->name + "')");
      }
      slot = &field;
    };
    switch (field.role) {
      case FieldRole::CardinalRecv:
        claim_unique(cardinal_recv, ExchangeKind::SwitchProtocol);
        break;
      case FieldRole::DiagonalRecv:
        claim_unique(diagonal_recv, ExchangeKind::SwitchProtocol);
        break;
      case FieldRole::HaloRecv:
        claim_unique(halo_recv, ExchangeKind::StaticHalo);
        break;
      default:
        break;
    }
  }

  const auto check_recv = [&](const FieldSpec* field, const char* what,
                              i32 buffers) {
    if (field == nullptr) {
      compile_error(spec, std::string("missing ") + what +
                              " receive-buffer field");
    }
    const i32 expected = buffers * spec.block_words_per_cell;
    if (field->words_per_cell != expected) {
      std::ostringstream os;
      os << "field '" << field->name << "' must hold " << buffers << " x "
         << spec.block_words_per_cell << " = " << expected
         << " words per cell (declares " << field->words_per_cell << ")";
      compile_error(spec, os.str());
    }
  };
  if (spec.exchange == ExchangeKind::SwitchProtocol) {
    check_recv(cardinal_recv, "cardinal", 4);
    // The diagonal buffers stay allocated even in the 5-point ablation
    // (the layout is shape-independent), so they are required either way.
    check_recv(diagonal_recv, "diagonal", 4);
  }
  if (spec.exchange == ExchangeKind::StaticHalo) {
    check_recv(halo_recv, "halo", 8);
  }
}

}  // namespace

CompiledSpec::Claims CompiledSpec::claim_colors(dataflow::ColorPlan& plan,
                                                bool reliability) const {
  Claims claims;
  switch (spec_.exchange) {
    case ExchangeKind::None:
      break;
    case ExchangeKind::SwitchProtocol:
      (void)plan.claim_cardinal(spec_.claims.cardinal);
      if (nine_point()) {
        (void)plan.claim_diagonal(spec_.claims.diagonal);
      }
      break;
    case ExchangeKind::StaticHalo:
      (void)plan.claim_cardinal(spec_.claims.cardinal);
      (void)plan.claim_diagonal(spec_.claims.diagonal);
      if (spec_.reduction) {
        claims.reduce = plan.claim_allreduce(spec_.claims.allreduce);
      }
      if (reliability) {
        (void)plan.claim_nack(spec_.claims.nack);
      }
      break;
  }
  return claims;
}

usize CompiledSpec::data_footprint_bytes(i32 nz) const noexcept {
  usize words = 0;
  for (const FieldSpec& field : spec_.fields) {
    if (field.role != FieldRole::Code) {
      words += static_cast<usize>(field.words_per_cell) *
               static_cast<usize>(nz);
    }
  }
  return words * sizeof(f32);
}

usize CompiledSpec::code_footprint_bytes() const noexcept {
  usize bytes = 0;
  for (const FieldSpec& field : spec_.fields) {
    if (field.role == FieldRole::Code) {
      bytes += field.bytes;
    }
  }
  return bytes;
}

std::string CompiledSpec::describe() const {
  std::ostringstream os;
  os << "spec '" << spec_.name << "': exchange=" << exchange_name(spec_.exchange)
     << " shape=" << (nine_point() ? "9-point" : "5-point")
     << " block=" << spec_.block_words_per_cell << " words/cell";
  if (spec_.exchange == ExchangeKind::SwitchProtocol) {
    os << " rounds=" << spec_.rounds;
  }
  if (spec_.reduction) {
    os << " reduction="
       << (spec_.reduction->op == wse::ReduceOp::Min   ? "min"
           : spec_.reduction->op == wse::ReduceOp::Max ? "max"
                                                       : "sum")
       << "[" << spec_.reduction->length << "]";
  }
  os << "\n";
  for (const FieldSpec& field : spec_.fields) {
    os << "  field '" << field.name << "' (" << role_name(field.role)
       << "): ";
    if (field.role == FieldRole::Code) {
      os << field.bytes << " bytes";
    } else {
      os << field.words_per_cell << " words/cell";
    }
    os << "\n";
  }
  return os.str();
}

CompiledSpec compile(StencilSpec spec) {
  validate(spec);

  CompiledSpec compiled;
  u64 digest = kFnvOffset;
  digest = fnv1a(digest, spec.name);
  digest = fnv1a_mix(digest, static_cast<u64>(spec.exchange));
  digest = fnv1a_mix(digest, static_cast<u64>(spec.shape));
  digest = fnv1a_mix(digest, static_cast<u64>(spec.block_words_per_cell));
  // Rounds stay excluded deliberately (pinned by spec_test): they steer
  // the engine, not the lowering — and the flow analyses' verdict is
  // rounds-independent too, because the declared in-flight bound (the
  // one-round-ahead skew guard) caps occupancy per send regardless of
  // how many rounds run. A future check whose verdict does scale with
  // rounds must mix them in here.
  digest = fnv1a_mix(digest, spec.reduction ? 1u : 0u);
  digest = fnv1a_mix(digest, spec.defects.drop_east_data_handler ? 1u : 0u);
  for (const FieldSpec& field : spec.fields) {
    digest = fnv1a(digest, field.name);
    digest = fnv1a_mix(digest, static_cast<u64>(field.role));
    digest = fnv1a_mix(digest, static_cast<u64>(field.words_per_cell));
    digest = fnv1a_mix(digest, field.bytes);
  }
  compiled.digest_ = digest;
  compiled.spec_ = std::move(spec);
  return compiled;
}

}  // namespace fvf::spec
