#include "spec/program.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace fvf::spec {

using namespace dataflow;

namespace {

using wse::Color;
using wse::ColorConfig;
using wse::Dir;
using wse::Dsd;
using wse::FabricDsd;
using wse::PeApi;
using wse::RouteRule;

/// Coordinate of this PE along the movement axis of a cardinal color.
i32 axis_coord(Coord2 coord, Color color) {
  const Dir m = movement_dir(color);
  return (m == Dir::East || m == Dir::West) ? coord.x : coord.y;
}

bool neighbor_exists(Coord2 coord, Coord2 fabric, Dir d) {
  const Coord2 off = wse::dir_offset(d);
  const i32 nx = coord.x + off.x;
  const i32 ny = coord.y + off.y;
  return nx >= 0 && nx < fabric.x && ny >= 0 && ny < fabric.y;
}

}  // namespace

// Default StencilKernel hooks: reject calls so a kernel wired to the
// wrong exchange kind fails with a named hook, not a silent no-op.
void StencilKernel::local_compute(PeApi&, i32) {
  FVF_REQUIRE_MSG(false, "StencilKernel::local_compute not implemented");
}
StencilKernel::SendHalves StencilKernel::send_halves() const {
  FVF_REQUIRE_MSG(false, "StencilKernel::send_halves not implemented");
}
void StencilKernel::process_block(PeApi&, mesh::Face, Dsd) {
  FVF_REQUIRE_MSG(false, "StencilKernel::process_block not implemented");
}
void StencilKernel::finalize_round(PeApi&, const FaceBlocks&) {
  FVF_REQUIRE_MSG(false, "StencilKernel::finalize_round not implemented");
}
std::span<const f32> StencilKernel::begin_round(PeApi&) {
  FVF_REQUIRE_MSG(false, "StencilKernel::begin_round not implemented");
}
void StencilKernel::on_block(PeApi&, mesh::Face, Dsd) {
  FVF_REQUIRE_MSG(false, "StencilKernel::on_block not implemented");
}
RoundOutcome StencilKernel::on_round_complete(PeApi&) {
  FVF_REQUIRE_MSG(false,
                  "StencilKernel::on_round_complete not implemented");
}
RoundAction StencilKernel::on_reduced(PeApi&, f32) {
  FVF_REQUIRE_MSG(false, "StencilKernel::on_reduced not implemented");
}

SpecPeProgram::SpecPeProgram(Coord2 coord, Coord2 fabric_size, i32 nz,
                             CompiledSpec compiled, LaunchBindings bindings,
                             std::unique_ptr<StencilKernel> kernel)
    : IterativeKernelProgram(coord, fabric_size),
      compiled_(std::move(compiled)),
      kernel_(std::move(kernel)),
      nz_(nz),
      nine_point_(compiled_.nine_point()) {
  FVF_REQUIRE(nz_ >= 1);
  block_len_ = compiled_.block_words() * nz_;
  const StencilSpec& spec = compiled_.spec();

  switch (spec.exchange) {
    case ExchangeKind::None:
      break;

    case ExchangeKind::SwitchProtocol: {
      for (auto& buf : card_buf_) {
        buf.assign(static_cast<usize>(block_len_), 0.0f);
      }
      for (auto& buf : diag_buf_) {
        buf.assign(static_cast<usize>(block_len_), 0.0f);
      }

      // Communication roles (Figure 6): even PEs along a color's movement
      // axis — and edge PEs with no upstream — send in phase 1; the rest
      // wait for the upstream's control wavelet.
      expected_cards_ = 0;
      for (const Color c : kCardinalColors) {
        CardinalState& cs = card_[cardinal_index(c)];
        cs.has_upstream = neighbor_exists(coord, fabric_size, upstream_dir(c));
        cs.phase1_sender = (axis_coord(coord, c) % 2 == 0) || !cs.has_upstream;
        if (cs.has_upstream) {
          ++expected_cards_;
        }
      }
      expected_diags_ = 0;
      for (const Color c : kDiagonalColors) {
        DiagonalState& ds = diag_[diagonal_index(c)];
        const mesh::Face face = diagonal_face(c);
        const Coord3 off = mesh::face_offset(face);
        const i32 cx = coord.x + off.x;
        const i32 cy = coord.y + off.y;
        ds.expected = nine_point_ && cx >= 0 && cx < fabric_size.x &&
                      cy >= 0 && cy < fabric_size.y;
        if (ds.expected) {
          ++expected_diags_;
        }
      }

      // Declarative dispatch: the cardinal exchange plus its control
      // wavelets, and the diagonal forwards when the shape has corners.
      // All of it is halo traffic for the profiler; the handlers retag
      // themselves when they hand a drained block to the kernel.
      for (const Color c : kCardinalColors) {
        if (!(spec.defects.drop_east_data_handler && c == kEastData)) {
          bind_data(
              c,
              [this](PeApi& api, Color color, Dir from,
                     std::span<const u32> block) {
                handle_cardinal(api, color, from, block);
              },
              obs::Phase::Halo);
        }
        bind_control(
            c,
            [this](PeApi& api, Color color, Dir) {
              handle_control(api, color);
            },
            obs::Phase::Halo);
      }
      if (nine_point_) {
        for (const Color c : kDiagonalColors) {
          bind_data(
              c,
              [this](PeApi& api, Color color, Dir from,
                     std::span<const u32> block) {
                handle_diagonal(api, color, from, block);
              },
              obs::Phase::Halo);
        }
      }
      break;
    }

    case ExchangeKind::StaticHalo: {
      reliability_enabled_ = bindings.reliability.enabled;
      use_halo_exchange(block_len_, bindings.reliability);
      if (spec.reduction) {
        reduce_colors_ = bindings.reduce;
        FVF_REQUIRE_MSG(bindings.reduce.has_value(),
                        "spec '" << spec.name
                                 << "' declares a reduction phase but the "
                                    "launch supplied no AllReduce colors");
        use_allreduce(*bindings.reduce, spec.reduction->length,
                      spec.reduction->op);
      }
      break;
    }
  }
}

StencilKernel& SpecPeProgram::require_kernel() const {
  FVF_REQUIRE_MSG(kernel_ != nullptr,
                  "spec '" << compiled_.name()
                           << "': program was loaded without a kernel and "
                              "can be linted but not run");
  return *kernel_;
}

void SpecPeProgram::reserve_memory(wse::PeMemory& mem) {
  const usize n = static_cast<usize>(nz_);
  for (const FieldSpec& field : compiled_.spec().fields) {
    if (field.role == FieldRole::Code) {
      mem.reserve(field.bytes, field.name);
    } else {
      mem.reserve(static_cast<usize>(field.words_per_cell) * n * sizeof(f32),
                  field.name);
    }
  }
}

void SpecPeProgram::configure_routes(wse::Router& router) {
  if (compiled_.spec().exchange != ExchangeKind::SwitchProtocol) {
    return;  // None: no colors; StaticHalo: the component owns its routes.
  }
  // Cardinal colors: the Figure 6 two-position switch protocol.
  for (const Color c : kCardinalColors) {
    const CardinalState& cs = card_[cardinal_index(c)];
    const Dir move = movement_dir(c);
    const Dir up = upstream_dir(c);
    if (!cs.has_upstream) {
      // Edge PE on the upstream side: nothing ever arrives, so a single
      // broadcast-root position suffices (its own control wraps in place).
      router.configure(c, ColorConfig({wse::position(Dir::Ramp, {move})}));
    } else if (cs.phase1_sender) {
      router.configure(c, ColorConfig({wse::position(Dir::Ramp, {move}),
                                       wse::position(up, {Dir::Ramp})}));
    } else {
      router.configure(c, ColorConfig({wse::position(up, {Dir::Ramp}),
                                       wse::position(Dir::Ramp, {move})}));
    }
  }
  // Diagonal forward colors: static pass-through routes.
  if (nine_point_) {
    for (const Color c : kDiagonalColors) {
      const Dir move = movement_dir(c);
      const Dir up = upstream_dir(c);
      router.configure(
          c, ColorConfig({wse::position({RouteRule{Dir::Ramp, {move}},
                                         RouteRule{up, {Dir::Ramp}}})}));
    }
  }
}

std::vector<wse::SendDeclaration> SpecPeProgram::program_send_declarations()
    const {
  if (compiled_.spec().exchange != ExchangeKind::SwitchProtocol) {
    return {};
  }
  // Figure 6: every PE sends one block plus the role-flipping control
  // wavelet on each cardinal color, and forwards received blocks on the
  // rotated diagonal color (Figure 5 intermediary role).
  std::vector<wse::SendDeclaration> sends;
  for (const Color c : kCardinalColors) {
    sends.push_back({c, false});
    sends.push_back({c, true});
    if (nine_point_ && card_[cardinal_index(c)].has_upstream) {
      sends.push_back({diagonal_forward_color(c), false});
    }
  }
  return sends;
}

std::vector<wse::ChannelDependency>
SpecPeProgram::program_channel_dependencies() const {
  if (compiled_.spec().exchange != ExchangeKind::SwitchProtocol) {
    return {};  // StaticHalo orderings come from the attached components.
  }
  std::vector<wse::ChannelDependency> deps;
  for (const Color c : kCardinalColors) {
    const CardinalState& cs = card_[cardinal_index(c)];
    if (!cs.has_upstream) {
      continue;
    }
    if (!cs.phase1_sender) {
      // Figure 6 phase-2 role: this PE sends only after the upstream's
      // control wavelet flips the switch (handle_control gating). The
      // upstream is a phase-1 sender (or edge PE), so the chain ends.
      deps.push_back({c, c});
    }
    if (nine_point_) {
      // Figure 5 intermediary: the diagonal forward is sent from inside
      // handle_cardinal, after the cardinal block arrives.
      deps.push_back({c, diagonal_forward_color(c)});
    }
  }
  return deps;
}

std::string SpecPeProgram::describe_channel(Color color) const {
  const StencilSpec& spec = compiled_.spec();
  if (spec.exchange == ExchangeKind::None) {
    return {};
  }
  std::ostringstream os;
  os << "declared by StencilSpec '" << spec.name << '\'';
  if (is_cardinal_color(color)) {
    os << " (exchange="
       << (spec.exchange == ExchangeKind::SwitchProtocol ? "switch-protocol"
                                                         : "static-halo")
       << ", block_words_per_cell=" << spec.block_words_per_cell;
    if (spec.exchange == ExchangeKind::SwitchProtocol) {
      os << ", rounds=" << spec.rounds;
    }
    os << ')';
    return os.str();
  }
  if (is_diagonal_color(color) && nine_point_) {
    os << " (shape=nine-point diagonal forward)";
    return os.str();
  }
  if (reduce_colors_.has_value() &&
      (color == reduce_colors_->row_reduce ||
       color == reduce_colors_->col_reduce ||
       color == reduce_colors_->row_bcast ||
       color == reduce_colors_->col_bcast)) {
    os << " (reduction: length=" << spec.reduction->length << ')';
    return os.str();
  }
  if (reliability_enabled_ && is_nack_color(color)) {
    os << " (halo reliability binding)";
    return os.str();
  }
  return {};
}

void SpecPeProgram::begin(PeApi& api) {
  switch (compiled_.spec().exchange) {
    case ExchangeKind::None:
      require_kernel().local_compute(api, 0);
      api.signal_done();
      break;
    case ExchangeKind::SwitchProtocol:
      begin_iteration(api);
      check_completion(api);
      break;
    case ExchangeKind::StaticHalo:
      start_round(api);
      break;
  }
}

// --- switch-protocol machinery ------------------------------------------

void SpecPeProgram::send_block(PeApi& api, Color color) {
  CardinalState& cs = card_[cardinal_index(color)];
  // Injection is halo traffic (it only costs PE cycles in the blocking-
  // send ablation, where the stall should not be booked as compute).
  api.set_phase(obs::Phase::Halo);
  const StencilKernel::SendHalves halves = require_kernel().send_halves();
  api.send(color, halves.first, halves.second);
  api.send_control(color);
  ++cs.sends;
}

void SpecPeProgram::begin_iteration(PeApi& api) {
  cards_processed_this_round_ = 0;
  diags_processed_this_round_ = 0;

  require_kernel().local_compute(api, round_);

  // Phase-1 sends, plus phase-2 sends whose trigger control arrived early.
  for (const Color c : kCardinalColors) {
    CardinalState& cs = card_[cardinal_index(c)];
    if (cs.sends == round_ && (cs.phase1_sender || cs.controls > cs.sends)) {
      send_block(api, c);
    }
  }

  // Blocks that arrived one iteration early are now current: consume them.
  for (const Color c : kCardinalColors) {
    CardinalState& cs = card_[cardinal_index(c)];
    if (cs.buffered && cs.processed == round_) {
      process_cardinal(api, c);
    }
  }
  for (const Color c : kDiagonalColors) {
    DiagonalState& ds = diag_[diagonal_index(c)];
    if (ds.buffered && ds.processed == round_) {
      process_diagonal(api, c);
    }
  }
}

void SpecPeProgram::process_cardinal(PeApi& api, Color color) {
  CardinalState& cs = card_[cardinal_index(color)];
  FVF_ASSERT(cs.buffered && cs.processed == round_);
  require_kernel().process_block(api, cardinal_face(color),
                                 Dsd::of(card_buf_[cardinal_index(color)]));
  ++cs.processed;
  cs.buffered = false;
  ++cards_processed_this_round_;
}

void SpecPeProgram::process_diagonal(PeApi& api, Color color) {
  DiagonalState& ds = diag_[diagonal_index(color)];
  FVF_ASSERT(ds.buffered && ds.processed == round_);
  require_kernel().process_block(api, diagonal_face(color),
                                 Dsd::of(diag_buf_[diagonal_index(color)]));
  ++ds.processed;
  ds.buffered = false;
  ++diags_processed_this_round_;
}

void SpecPeProgram::finalize_round(PeApi& api) {
  StencilKernel::FaceBlocks blocks;
  for (const Color c : kCardinalColors) {
    if (card_[cardinal_index(c)].has_upstream) {
      blocks[static_cast<usize>(cardinal_face(c))] =
          Dsd::of(card_buf_[cardinal_index(c)]);
    }
  }
  for (const Color c : kDiagonalColors) {
    if (diag_[diagonal_index(c)].expected) {
      blocks[static_cast<usize>(diagonal_face(c))] =
          Dsd::of(diag_buf_[diagonal_index(c)]);
    }
  }
  require_kernel().finalize_round(api, blocks);
}

void SpecPeProgram::handle_cardinal(PeApi& api, Color color, Dir from,
                                    std::span<const u32> data) {
  FVF_REQUIRE(static_cast<i32>(data.size()) == block_len_);
  FVF_REQUIRE_MSG(from == upstream_dir(color),
                  "cardinal block arrived from unexpected link");
  CardinalState& cs = card_[cardinal_index(color)];
  const i32 tag = cs.received;
  ++cs.received;
  FVF_REQUIRE_MSG(!cs.buffered, "cardinal receive buffer overrun");
  FVF_REQUIRE_MSG(tag <= round_ + 1,
                  "neighbor ran more than 1 iteration ahead");

  // Drain the wavelets into PE memory (the FMOVs/cell of Table 4).
  std::vector<f32>& buf = card_buf_[cardinal_index(color)];
  api.fmovs(Dsd::of(buf), FabricDsd::of(data));
  cs.buffered = true;

  // Intermediary role (Figure 5): forward the block to the rotated
  // diagonal target immediately, overlapping our own partial flux.
  if (nine_point_) {
    const usize half = static_cast<usize>(block_len_) / 2;
    api.send(diagonal_forward_color(color),
             std::span<const f32>(buf.data(), half),
             std::span<const f32>(buf.data() + half, half));
  }

  if (tag == round_) {
    process_cardinal(api, color);
    check_completion(api);
  }
}

void SpecPeProgram::handle_diagonal(PeApi& api, Color color, Dir from,
                                    std::span<const u32> data) {
  FVF_REQUIRE(static_cast<i32>(data.size()) == block_len_);
  FVF_REQUIRE_MSG(from == upstream_dir(color),
                  "diagonal block arrived from unexpected link");
  DiagonalState& ds = diag_[diagonal_index(color)];
  FVF_REQUIRE_MSG(ds.expected, "unexpected diagonal block");
  const i32 tag = ds.received;
  ++ds.received;
  FVF_REQUIRE_MSG(!ds.buffered, "diagonal receive buffer overrun");
  FVF_REQUIRE_MSG(tag <= round_ + 1,
                  "corner ran more than 1 iteration ahead");

  std::vector<f32>& buf = diag_buf_[diagonal_index(color)];
  api.fmovs(Dsd::of(buf), FabricDsd::of(data));
  ds.buffered = true;

  if (tag == round_) {
    process_diagonal(api, color);
    check_completion(api);
  }
}

void SpecPeProgram::handle_control(PeApi& api, Color color) {
  CardinalState& cs = card_[cardinal_index(color)];
  ++cs.controls;
  // Phase-2 senders transmit when their upstream's command arrives and
  // their column state is current; early commands (the upstream running
  // one iteration ahead) are honored at the next iteration boundary in
  // begin_iteration. Completing an iteration is gated on having sent
  // (check_completion), so the column state can never advance past an
  // unsent block.
  if (!cs.phase1_sender && cs.sends == round_ && cs.controls > cs.sends) {
    send_block(api, color);
    check_completion(api);
  }
}

void SpecPeProgram::check_completion(PeApi& api) {
  // An iteration is complete when all expected neighbor blocks have been
  // consumed AND this PE has sent its own block on every cardinal color —
  // otherwise the kernel state could advance while a downstream neighbor
  // still waits for the current state (the send obligation).
  const auto all_sends_done = [this] {
    for (const Color c : kCardinalColors) {
      if (card_[cardinal_index(c)].sends != round_ + 1) {
        return false;
      }
    }
    return true;
  };
  while (round_ < compiled_.spec().rounds &&
         cards_processed_this_round_ == expected_cards_ &&
         diags_processed_this_round_ == expected_diags_ &&
         all_sends_done()) {
    finalize_round(api);
    ++round_;
    if (round_ == compiled_.spec().rounds) {
      api.signal_done();
      return;
    }
    begin_iteration(api);
  }
}

// --- static-halo machinery ----------------------------------------------

void SpecPeProgram::start_round(PeApi& api) {
  const std::span<const f32> block = require_kernel().begin_round(api);
  FVF_REQUIRE(static_cast<i32>(block.size()) == block_len_);
  exchange().begin_round(api, block);
}

void SpecPeProgram::on_halo_block(PeApi& api, mesh::Face face, Dsd block) {
  require_kernel().on_block(api, face, block);
}

void SpecPeProgram::apply_action(PeApi& api, RoundAction action) {
  if (action == RoundAction::Done) {
    api.signal_done();
    return;
  }
  FVF_REQUIRE(action == RoundAction::Continue);
  ++round_;
  start_round(api);
}

void SpecPeProgram::on_halo_complete(PeApi& api) {
  const RoundOutcome outcome = require_kernel().on_round_complete(api);
  if (outcome.action == RoundAction::Reduce) {
    FVF_REQUIRE_MSG(compiled_.spec().reduction.has_value(),
                    "spec '" << compiled_.name()
                             << "': kernel requested a reduction but the "
                                "spec declares no reduction phase");
    const std::array<f32, 1> contrib{outcome.contribution};
    allreduce().contribute(api, contrib,
                           [this](PeApi& a, std::span<const f32> g) {
                             apply_action(a, require_kernel().on_reduced(
                                                 a, g[0]));
                           });
    return;
  }
  apply_action(api, outcome.action);
}

std::string SpecPeProgram::debug_state() const {
  std::ostringstream os;
  os << "PE(" << coord().x << ',' << coord().y << ") iter=" << round_
     << " cards=" << cards_processed_this_round_ << '/' << expected_cards_
     << " diags=" << diags_processed_this_round_ << '/' << expected_diags_;
  for (const Color c : kCardinalColors) {
    const CardinalState& cs = card_[cardinal_index(c)];
    os << " | c" << static_cast<int>(c.id())
       << (cs.phase1_sender ? " p1" : " p2") << " rx=" << cs.received
       << " proc=" << cs.processed << " ctl=" << cs.controls
       << " tx=" << cs.sends << (cs.buffered ? " buf" : "");
  }
  for (const Color c : kDiagonalColors) {
    const DiagonalState& ds = diag_[diagonal_index(c)];
    if (ds.expected) {
      os << " | d" << static_cast<int>(c.id()) << " rx=" << ds.received
         << " proc=" << ds.processed << (ds.buffered ? " buf" : "");
    }
  }
  return os.str();
}

}  // namespace fvf::spec
