#include "spec/registry.hpp"

#include <mutex>
#include <sstream>
#include <utility>

namespace fvf::spec {

namespace {

struct Registry {
  std::mutex mutex;
  std::vector<KernelInfo> kernels;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace

void register_kernel(KernelInfo info) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (KernelInfo& existing : reg.kernels) {
    if (existing.name == info.name) {
      existing = std::move(info);
      return;
    }
  }
  reg.kernels.push_back(std::move(info));
}

std::vector<KernelInfo> registered_kernels() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.kernels;
}

KernelInfo find_kernel(std::string_view name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const KernelInfo& kernel : reg.kernels) {
    if (kernel.name == name) {
      return kernel;
    }
  }
  return {};
}

std::string kernel_name_list(std::string_view separator) {
  std::ostringstream os;
  bool first = true;
  for (const KernelInfo& kernel : registered_kernels()) {
    if (!first) {
      os << separator;
    }
    first = false;
    os << kernel.name;
  }
  return os.str();
}

}  // namespace fvf::spec
