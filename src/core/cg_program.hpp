/// \file cg_program.hpp
/// \brief Conjugate-gradient solver running ON the simulated wafer-scale
///        engine — the paper's future-work direction ("developing
///        nonlinear and linear solvers on a dataflow architecture",
///        Section 9), built from the same ingredients as the flux kernel:
///
///   - matrix-free operator apply via the 10-neighbor halo exchange
///     (static color routes; the search direction column flows instead of
///     pressure/density),
///   - global dot products via the AllReduceSum chain-reduction trees,
///   - purely local vector updates (axpy) on each PE's column.
///
/// Every PE takes the identical alpha/beta/stop decisions because they
/// all receive the same reduced scalars, so the distributed iteration is
/// deterministic and terminates uniformly.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "common/array3d.hpp"
#include "core/linear_stencil.hpp"
#include "dataflow/fabric_harness.hpp"
#include "dataflow/iterative_kernel.hpp"

namespace fvf::core {

/// Solver parameters shared by every PE.
struct CgKernelOptions {
  i32 max_iterations = 200;
  f32 relative_tolerance = 1e-5f;
};

/// Per-PE column data for the CG program.
struct PeCgData {
  std::vector<f32> rhs;                                    ///< b, length Nz
  std::array<std::vector<f32>, mesh::kFaceCount> offdiag;  ///< per-face
  std::vector<f32> diag;                                   ///< diagonal
};

/// The per-PE CG program. The all-reduce tree colors come from the launch
/// pipeline's ColorPlan claim.
class CgPeProgram final : public dataflow::IterativeKernelProgram {
 public:
  CgPeProgram(Coord2 coord, Coord2 fabric_size, i32 nz,
              CgKernelOptions options, wse::AllReduceColors reduce_colors,
              PeCgData data, dataflow::HaloReliabilityOptions reliability = {});

  [[nodiscard]] std::span<const f32> solution() const noexcept { return x_; }
  [[nodiscard]] i32 iterations() const noexcept { return iterations_; }
  [[nodiscard]] bool converged() const noexcept { return converged_; }
  [[nodiscard]] f64 initial_residual_norm2() const noexcept { return rho0_; }
  [[nodiscard]] f64 final_residual_norm2() const noexcept { return rho_last_; }

 private:
  // IterativeKernelProgram phase hooks.
  void reserve_memory(wse::PeMemory& mem) override;
  void begin(wse::PeApi& api) override;
  void on_halo_block(wse::PeApi& api, mesh::Face face, wse::Dsd d_nb) override;
  void on_halo_complete(wse::PeApi& api) override;

  void start_exchange(wse::PeApi& api);
  void on_dot_dq(wse::PeApi& api, f32 global);
  void on_rho(wse::PeApi& api, f32 global);
  [[nodiscard]] f32 local_dot(wse::PeApi& api, std::span<const f32> a,
                              std::span<const f32> b);

  i32 nz_;
  CgKernelOptions options_;

  // CG vectors (per-PE columns).
  std::vector<f32> b_;
  std::vector<f32> x_;
  std::vector<f32> r_;
  std::vector<f32> d_;
  std::vector<f32> q_;
  std::vector<f32> scratch_;
  std::array<std::vector<f32>, mesh::kFaceCount> offdiag_;
  std::vector<f32> diag_;

  f32 rho_ = 0.0f;
  f64 rho0_ = 0.0;
  f64 rho_last_ = 0.0;
  i32 iterations_ = 0;
  bool converged_ = false;
  bool done_ = false;
};

/// Launch options for a fabric CG solve.
struct DataflowCgOptions : dataflow::HarnessOptions {
  CgKernelOptions kernel{};
  /// Halo ack/retransmit layer. Auto-enabled by run_dataflow_cg when the
  /// fault scenario can drop blocks (bit_flip_rate > 0), since the
  /// implicit-FIFO protocol cannot survive drops.
  dataflow::HaloReliabilityOptions reliability{};
};

/// Result of a fabric CG solve: full fabric accounting plus the solve.
struct DataflowCgResult : dataflow::RunInfo {
  Array3<f32> solution;
  i32 iterations = 0;
  bool converged = false;
  f64 initial_residual_norm = 0.0;
  f64 final_residual_norm = 0.0;
};

/// A loaded-but-not-run CG launch (see core/launcher.hpp::TpfaLoad). The
/// referenced stencil and rhs must outlive the load.
struct CgLoad {
  std::unique_ptr<dataflow::FabricHarness> harness;
  dataflow::ProgramGrid<CgPeProgram> grid;
};

/// Claims the CG colors and loads the per-PE programs without running the
/// event engine — the fvf_lint entry point, and the first half of
/// run_dataflow_cg.
[[nodiscard]] CgLoad load_dataflow_cg(const LinearStencil& stencil,
                                      const Array3<f32>& rhs,
                                      const DataflowCgOptions& options);

/// Solves A x = rhs on the simulated fabric, one PE per mesh column.
[[nodiscard]] DataflowCgResult run_dataflow_cg(const LinearStencil& stencil,
                                               const Array3<f32>& rhs,
                                               const DataflowCgOptions& options);

}  // namespace fvf::core
