#include "core/halo_exchange.hpp"

#include "common/assert.hpp"

namespace fvf::core {

namespace {

using wse::Color;
using wse::ColorConfig;
using wse::Dir;
using wse::Dsd;
using wse::FabricDsd;
using wse::PeApi;
using wse::RouteRule;

}  // namespace

HaloExchange::HaloExchange(Coord2 coord, Coord2 fabric_size, i32 block_length)
    : coord_(coord), fabric_(fabric_size), block_length_(block_length) {
  FVF_REQUIRE(block_length > 0);
  const usize n = static_cast<usize>(block_length);
  for (auto& buf : card_buf_) {
    buf.assign(n, 0.0f);
  }
  for (auto& buf : diag_buf_) {
    buf.assign(n, 0.0f);
  }
  const auto exists = [&](mesh::Face face) {
    const Coord3 off = mesh::face_offset(face);
    const i32 nx = coord_.x + off.x;
    const i32 ny = coord_.y + off.y;
    return nx >= 0 && nx < fabric_.x && ny >= 0 && ny < fabric_.y;
  };
  for (const Color c : kCardinalColors) {
    LinkState& s = card_[cardinal_index(c)];
    s.has_upstream = exists(cardinal_face(c));
    expected_cards_ += s.has_upstream;
  }
  for (const Color c : kDiagonalColors) {
    LinkState& s = diag_[diagonal_index(c)];
    s.has_upstream = exists(diagonal_face(c));
    expected_diags_ += s.has_upstream;
  }
}

void HaloExchange::configure_router(wse::Router& router) const {
  for (const Color c : kCardinalColors) {
    router.configure(c, ColorConfig({wse::position(
                            {RouteRule{Dir::Ramp, {movement_dir(c)}},
                             RouteRule{upstream_dir(c), {Dir::Ramp}}})}));
  }
  for (const Color c : kDiagonalColors) {
    router.configure(c, ColorConfig({wse::position(
                            {RouteRule{Dir::Ramp, {movement_dir(c)}},
                             RouteRule{upstream_dir(c), {Dir::Ramp}}})}));
  }
}

void HaloExchange::set_handlers(BlockHandler on_block,
                                RoundHandler on_round_complete) {
  on_block_ = std::move(on_block);
  on_round_complete_ = std::move(on_round_complete);
}

void HaloExchange::begin_round(PeApi& api, std::span<const f32> payload) {
  FVF_REQUIRE(static_cast<i32>(payload.size()) == block_length_);
  FVF_REQUIRE_MSG(!round_open_, "begin_round while a round is in flight");
  FVF_REQUIRE(on_block_ != nullptr && on_round_complete_ != nullptr);
  ++round_;
  done_this_round_ = 0;
  round_open_ = true;

  for (const Color c : kCardinalColors) {
    api.send(c, payload);
  }
  // Blocks that arrived one round early are current now.
  for (const Color c : kCardinalColors) {
    LinkState& s = card_[cardinal_index(c)];
    if (s.buffered && s.processed == round_ - 1) {
      process_block(api, c);
    }
  }
  for (const Color c : kDiagonalColors) {
    LinkState& s = diag_[diagonal_index(c)];
    if (s.buffered && s.processed == round_ - 1) {
      process_block(api, c);
    }
  }
  check_round_complete(api);
}

void HaloExchange::process_block(PeApi& api, Color color) {
  const bool cardinal = is_cardinal_color(color);
  LinkState& s = cardinal ? card_[cardinal_index(color)]
                          : diag_[diagonal_index(color)];
  FVF_ASSERT(s.buffered);
  std::vector<f32>& buf = cardinal ? card_buf_[cardinal_index(color)]
                                   : diag_buf_[diagonal_index(color)];
  on_block_(api, cardinal ? cardinal_face(color) : diagonal_face(color),
            Dsd::of(buf));
  ++s.processed;
  s.buffered = false;
  ++done_this_round_;
}

void HaloExchange::on_data(PeApi& api, Color color, Dir from,
                           std::span<const u32> data) {
  FVF_REQUIRE(owns(color));
  FVF_REQUIRE(static_cast<i32>(data.size()) == block_length_);
  FVF_REQUIRE(from == upstream_dir(color));

  const bool cardinal = is_cardinal_color(color);
  LinkState& s = cardinal ? card_[cardinal_index(color)]
                          : diag_[diagonal_index(color)];
  FVF_REQUIRE_MSG(s.has_upstream, "halo block from a nonexistent neighbor");
  const i32 tag = s.received;
  ++s.received;
  FVF_REQUIRE_MSG(!s.buffered, "halo receive buffer overrun");
  FVF_REQUIRE_MSG(tag <= round_, "neighbor ran more than 1 round ahead");

  std::vector<f32>& buf = cardinal ? card_buf_[cardinal_index(color)]
                                   : diag_buf_[diagonal_index(color)];
  api.fmovs(Dsd::of(buf), FabricDsd::of(data));
  s.buffered = true;
  if (cardinal) {
    // Intermediary role (Figure 5): forward for the diagonal second hop.
    api.send(diagonal_forward_color(color), buf);
  }
  if (round_open_ && tag == round_ - 1) {
    process_block(api, color);
    check_round_complete(api);
  }
}

void HaloExchange::check_round_complete(PeApi& api) {
  if (round_open_ && done_this_round_ == expected_blocks()) {
    // Close the round before notifying: the handler may begin the next.
    round_open_ = false;
    on_round_complete_(api);
  }
}

}  // namespace fvf::core
