#include "core/wave_program.hpp"

#include <cmath>
#include <memory>

#include "common/assert.hpp"

namespace fvf::core {

using namespace dataflow;

namespace {

using wse::Dsd;
using wse::PeApi;

}  // namespace

WavePeProgram::WavePeProgram(Coord2 coord, Coord2 fabric_size, i32 nz,
                             WaveKernelOptions options, PeWaveData data,
                             HaloReliabilityOptions reliability)
    : IterativeKernelProgram(coord, fabric_size),
      nz_(nz),
      options_(options) {
  FVF_REQUIRE(nz > 0);
  FVF_REQUIRE(options.timesteps >= 1);
  FVF_REQUIRE(static_cast<i32>(data.u0.size()) == nz);
  FVF_REQUIRE(static_cast<i32>(data.u_prev.size()) == nz);
  u_cur_ = std::move(data.u0);
  u_prev_ = std::move(data.u_prev);
  offdiag_ = std::move(data.offdiag);
  diag_ = std::move(data.diag);
  for (const auto& c : offdiag_) {
    FVF_REQUIRE(static_cast<i32>(c.size()) == nz);
  }
  FVF_REQUIRE(static_cast<i32>(diag_.size()) == nz);

  const usize n = static_cast<usize>(nz);
  q_.assign(n, 0.0f);
  use_halo_exchange(nz, reliability);
}

void WavePeProgram::reserve_memory(wse::PeMemory& mem) {
  const usize n = static_cast<usize>(nz_) * sizeof(f32);
  mem.reserve(3 * n, "u_prev/u_cur/q");
  mem.reserve((mesh::kFaceCount + 1) * n, "stencil columns");
  mem.reserve(8 * n, "halo buffers");
  mem.reserve(4096, "code+runtime");
}

void WavePeProgram::begin(PeApi& api) { start_step(api); }

void WavePeProgram::start_step(PeApi& api) {
  // q = diag .* u + vertical couplings (all local memory).
  api.fmuls(Dsd::of(q_), Dsd::of(diag_), Dsd::of(u_cur_));
  if (nz_ > 1) {
    const i32 m = nz_ - 1;
    const Dsd u = Dsd::of(u_cur_);
    const Dsd q = Dsd::of(q_);
    api.fmacs(
        q.window(0, m),
        Dsd::of(offdiag_[static_cast<usize>(mesh::Face::ZPlus)]).window(0, m),
        u.window(1, m), q.window(0, m));
    api.fmacs(
        q.window(1, m),
        Dsd::of(offdiag_[static_cast<usize>(mesh::Face::ZMinus)]).window(1, m),
        u.window(0, m), q.window(1, m));
  }

  exchange().begin_round(api, u_cur_);
}

void WavePeProgram::on_halo_block(PeApi& api, mesh::Face face, Dsd u_nb) {
  api.fmacs(Dsd::of(q_), Dsd::of(offdiag_[static_cast<usize>(face)]), u_nb,
            Dsd::of(q_));
}

void WavePeProgram::on_halo_complete(PeApi& api) {
  // Leapfrog update: u_next = 2 u - u_prev - kappa q, written into the
  // (dead) u_prev column, then rotate the time levels.
  const Dsd u = Dsd::of(u_cur_);
  const Dsd prev = Dsd::of(u_prev_);
  const Dsd q = Dsd::of(q_);
  api.fmuls(q, q, -options_.kappa);  // q <- -kappa (A u)
  api.fnegs(prev, prev);             // prev <- -u_prev
  api.fadds(prev, prev, q);          // prev <- -u_prev - kappa A u
  api.fmacs(prev, u, 2.0f, prev);    // prev <- 2u - u_prev - kappa A u
  std::swap(u_prev_, u_cur_);
  ++step_;
  if (step_ == options_.timesteps) {
    api.signal_done();
    return;
  }
  start_step(api);
}

WaveLoad load_dataflow_wave(const LinearStencil& stencil,
                            const Array3<f32>& initial,
                            const DataflowWaveOptions& options) {
  const Extents3 ext = stencil.extents;
  FVF_REQUIRE(initial.extents() == ext);

  HaloReliabilityOptions reliability = options.reliability;
  if (options.execution.fault.bit_flip_rate > 0.0) {
    // Dropped blocks break the implicit-FIFO halo protocol; the
    // ack/retransmit layer is mandatory under such fault scenarios.
    reliability.enabled = true;
  }

  WaveLoad load;
  load.harness =
      std::make_unique<FabricHarness>(Coord2{ext.nx, ext.ny}, options);
  load.harness->colors().claim_cardinal("wave halo exchange");
  load.harness->colors().claim_diagonal("wave halo diagonal forwards");
  if (reliability.enabled) {
    load.harness->colors().claim_nack("wave halo retransmit");
  }

  // Locals are captured by value: the probe factory the harness keeps
  // must stay valid after this function returns.
  const WaveKernelOptions kernel = options.kernel;
  load.grid = load.harness->load<WavePeProgram>(
      [&stencil, &initial, ext, kernel,
       reliability](Coord2 coord, Coord2 fabric_size) {
        PeWaveData data;
        data.u0.resize(static_cast<usize>(ext.nz));
        data.u_prev.resize(static_cast<usize>(ext.nz));
        data.diag.resize(static_cast<usize>(ext.nz));
        for (i32 z = 0; z < ext.nz; ++z) {
          data.u0[static_cast<usize>(z)] = initial(coord.x, coord.y, z);
          data.u_prev[static_cast<usize>(z)] = initial(coord.x, coord.y, z);
          data.diag[static_cast<usize>(z)] = stencil.diag(coord.x, coord.y, z);
        }
        for (const mesh::Face f : mesh::kAllFaces) {
          auto& col = data.offdiag[static_cast<usize>(f)];
          col.resize(static_cast<usize>(ext.nz));
          for (i32 z = 0; z < ext.nz; ++z) {
            col[static_cast<usize>(z)] =
                stencil.offdiag[static_cast<usize>(f)](coord.x, coord.y, z);
          }
        }
        return std::make_unique<WavePeProgram>(coord, fabric_size, ext.nz,
                                               kernel, std::move(data),
                                               reliability);
      });
  return load;
}

DataflowWaveResult run_dataflow_wave(const LinearStencil& stencil,
                                     const Array3<f32>& initial,
                                     const DataflowWaveOptions& options) {
  const Extents3 ext = stencil.extents;
  const WaveLoad load = load_dataflow_wave(stencil, initial, options);

  DataflowWaveResult result;
  static_cast<RunInfo&>(result) = load.harness->run();
  result.field = Array3<f32>(ext);
  load.grid.gather(result.field,
                   [](const WavePeProgram& p) { return p.field(); });
  return result;
}

Array3<f32> wave_reference_host(const LinearStencil& stencil,
                                const Array3<f32>& initial, f32 kappa,
                                i32 timesteps) {
  const Extents3 ext = stencil.extents;
  const usize n = static_cast<usize>(ext.cell_count());
  std::vector<f64> prev(n), cur(n), q(n);
  for (i64 i = 0; i < ext.cell_count(); ++i) {
    prev[static_cast<usize>(i)] = initial[i];
    cur[static_cast<usize>(i)] = initial[i];
  }
  for (i32 t = 0; t < timesteps; ++t) {
    stencil.apply_f64(cur, q);
    for (usize i = 0; i < n; ++i) {
      const f64 next = 2.0 * cur[i] - prev[i] -
                       static_cast<f64>(kappa) * q[i];
      prev[i] = cur[i];
      cur[i] = next;
    }
  }
  Array3<f32> out(ext);
  for (i64 i = 0; i < ext.cell_count(); ++i) {
    out[i] = static_cast<f32>(cur[static_cast<usize>(i)]);
  }
  return out;
}

Array3<f32> gaussian_pulse(Extents3 extents, f64 amplitude, f64 sigma_cells) {
  FVF_REQUIRE(sigma_cells > 0.0);
  Array3<f32> field(extents);
  const f64 cx = 0.5 * (extents.nx - 1);
  const f64 cy = 0.5 * (extents.ny - 1);
  const f64 cz = 0.5 * (extents.nz - 1);
  for (i32 z = 0; z < extents.nz; ++z) {
    for (i32 y = 0; y < extents.ny; ++y) {
      for (i32 x = 0; x < extents.nx; ++x) {
        const f64 r2 = (x - cx) * (x - cx) + (y - cy) * (y - cy) +
                       (z - cz) * (z - cz);
        field(x, y, z) = static_cast<f32>(
            amplitude * std::exp(-r2 / (2.0 * sigma_cells * sigma_cells)));
      }
    }
  }
  return field;
}

}  // namespace fvf::core
