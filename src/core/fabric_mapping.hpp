/// \file fabric_mapping.hpp
/// \brief Cell-to-PE mapping strategies for arbitrary mesh topologies,
///        and their fabric communication cost — the paper's future-work
///        question made quantitative (Section 9: "mapping them
///        efficiently onto a dataflow architecture" and "data
///        broadcasting strategies to support data movement from any
///        cells").
///
/// A mapping assigns every cell to a PE (x, y). Its quality is the
/// communication it induces: flux-graph edges whose endpoints sit on
/// different PEs cost fabric traffic proportional to their Manhattan
/// hop distance, and anything beyond one hop needs forwarding through
/// intermediaries (the generalization of the paper's diagonal pattern).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "physics/unstructured.hpp"

namespace fvf::core {

/// Assignment of every cell to a fabric coordinate.
struct FabricMapping {
  std::string name;
  i32 width = 0;
  i32 height = 0;
  std::vector<Coord2> pe_of_cell;

  void validate(i64 cell_count) const;
};

/// Communication cost a mapping induces on a flux graph.
struct MappingCommCost {
  i64 local_edges = 0;      ///< both endpoints on the same PE (free)
  i64 neighbor_edges = 0;   ///< one hop (cardinal PE neighbors)
  i64 diagonal_edges = 0;   ///< two hops via one intermediary (Fig. 5)
  i64 far_edges = 0;        ///< > 2 hops: needs general forwarding
  i64 total_hops = 0;       ///< sum of Manhattan distances
  f64 max_cells_per_pe = 0; ///< memory pressure (column depth analog)

  [[nodiscard]] i64 remote_edges() const noexcept {
    return neighbor_edges + diagonal_edges + far_edges;
  }
};

/// The paper's column mapping for Cartesian meshes: cell (x, y, z) on
/// PE (x, y). Only valid for meshes flattened from an nx*ny*nz box.
[[nodiscard]] FabricMapping column_mapping(i32 nx, i32 ny, i32 nz);

/// Space-filling-curve mapping for arbitrary cell orderings: cells are
/// placed along a Morton (Z-order) curve over the fabric, `cells_per_pe`
/// consecutive cells per PE — the natural generalization of the column
/// mapping to unstructured meshes.
[[nodiscard]] FabricMapping morton_mapping(i64 cell_count, i32 width,
                                           i32 height);

/// Adversarial baseline: cells scattered uniformly at random.
[[nodiscard]] FabricMapping random_mapping(i64 cell_count, i32 width,
                                           i32 height, u64 seed);

/// Evaluates the fabric communication a mapping induces on a mesh.
[[nodiscard]] MappingCommCost evaluate_mapping(
    const physics::UnstructuredMesh& mesh, const FabricMapping& mapping);

/// Interleaves the bits of (x, y) — the Morton index of a fabric tile.
[[nodiscard]] u64 morton_encode(u32 x, u32 y);
/// Inverse of morton_encode.
[[nodiscard]] Coord2 morton_decode(u64 code);

}  // namespace fvf::core
