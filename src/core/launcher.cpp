#include "core/launcher.hpp"

#include <memory>

#include "common/assert.hpp"
#include "physics/residual.hpp"
#include "spec/compile.hpp"
#include "spec/launch.hpp"

namespace fvf::core {

using namespace dataflow;

PeColumnData extract_column(const physics::FlowProblem& problem, i32 x,
                            i32 y) {
  const Extents3 ext = problem.extents();
  FVF_REQUIRE(x >= 0 && x < ext.nx && y >= 0 && y < ext.ny);
  const mesh::CartesianMesh& m = problem.mesh();
  const Array3<f32>& p0 = problem.initial_pressure();
  const mesh::TransmissibilityField& trans = problem.transmissibility();
  const usize n = static_cast<usize>(ext.nz);

  PeColumnData data;
  data.pressure.resize(n);
  data.elevation.resize(n);
  for (i32 z = 0; z < ext.nz; ++z) {
    data.pressure[static_cast<usize>(z)] = p0(x, y, z);
    data.elevation[static_cast<usize>(z)] =
        static_cast<f32>(m.elevation(x, y, z));
  }

  for (const mesh::Face f : mesh::kAllFaces) {
    auto& col = data.trans[static_cast<usize>(f)];
    col.resize(n);
    for (i32 z = 0; z < ext.nz; ++z) {
      col[static_cast<usize>(z)] = trans.at(x, y, z, f);
    }
  }

  // Static neighbor geometry (elevation columns), exchanged once at setup.
  const auto fill_neighbor_elevation = [&](std::vector<f32>& out, i32 nx_,
                                           i32 ny_) {
    out.resize(n);
    for (i32 z = 0; z < ext.nz; ++z) {
      out[static_cast<usize>(z)] = static_cast<f32>(m.elevation(nx_, ny_, z));
    }
  };
  for (const wse::Color c : kCardinalColors) {
    const mesh::Face face = cardinal_face(c);
    const Coord3 off = mesh::face_offset(face);
    const i32 nx_ = x + off.x;
    const i32 ny_ = y + off.y;
    if (nx_ >= 0 && nx_ < ext.nx && ny_ >= 0 && ny_ < ext.ny) {
      fill_neighbor_elevation(data.elevation_cardinal[cardinal_index(c)], nx_,
                              ny_);
    } else {
      data.elevation_cardinal[cardinal_index(c)].assign(n, 0.0f);
    }
  }
  for (const wse::Color c : kDiagonalColors) {
    const mesh::Face face = diagonal_face(c);
    const Coord3 off = mesh::face_offset(face);
    const i32 nx_ = x + off.x;
    const i32 ny_ = y + off.y;
    if (nx_ >= 0 && nx_ < ext.nx && ny_ >= 0 && ny_ < ext.ny) {
      fill_neighbor_elevation(data.elevation_diagonal[diagonal_index(c)], nx_,
                              ny_);
    } else {
      data.elevation_diagonal[diagonal_index(c)].assign(n, 0.0f);
    }
  }
  return data;
}

TpfaLoad load_dataflow_tpfa(const physics::FlowProblem& problem,
                            const DataflowOptions& options) {
  const Extents3 ext = problem.extents();
  FVF_REQUIRE(options.iterations >= 1);

  TpfaKernelOptions kernel = options.kernel;
  kernel.iterations = options.iterations;
  const physics::FluidProperties fluid = problem.fluid();

  // Compile the declarative spec and verify the lowered program: every
  // compiled launch passes strict lint before the fabric runs (memoized
  // per program shape, so replayed scenarios only pay it once).
  const spec::CompiledSpec compiled = spec::compile(make_tpfa_spec(kernel));
  const Coord2 extents{ext.nx, ext.ny};
  const HarnessOptions effective = spec::verified_options(
      compiled, extents, ext.nz, options, /*reliability_enabled=*/false);

  TpfaLoad load;
  load.harness = std::make_unique<FabricHarness>(extents, effective);
  compiled.claim_colors(load.harness->colors(), /*reliability=*/false);

  // Everything local is captured by value: the probe factory the harness
  // keeps must stay valid after this function returns.
  load.grid = load.harness->load<TpfaPeProgram>(
      [&problem, ext, kernel, fluid](Coord2 coord, Coord2 fabric_size) {
        return std::make_unique<TpfaPeProgram>(
            coord, fabric_size, ext, kernel, fluid,
            extract_column(problem, coord.x, coord.y));
      });
  spec::record_verified(compiled, extents, ext.nz, effective,
                        /*reliability_enabled=*/false);
  return load;
}

DataflowResult run_dataflow_tpfa(const physics::FlowProblem& problem,
                                 const DataflowOptions& options) {
  const TpfaLoad load = load_dataflow_tpfa(problem, options);

  DataflowResult result;
  static_cast<RunInfo&>(result) = load.harness->run();
  const Extents3 ext = problem.extents();
  result.residual = Array3<f32>(ext);
  result.pressure = Array3<f32>(ext);
  load.grid.gather(result.residual,
                   [](const TpfaPeProgram& p) { return p.residual(); });
  load.grid.gather(result.pressure,
                   [](const TpfaPeProgram& p) { return p.pressure(); });
  return result;
}

}  // namespace fvf::core
