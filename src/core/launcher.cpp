#include "core/launcher.hpp"

#include "common/assert.hpp"
#include "physics/residual.hpp"

namespace fvf::core {

PeColumnData extract_column(const physics::FlowProblem& problem, i32 x,
                            i32 y) {
  const Extents3 ext = problem.extents();
  FVF_REQUIRE(x >= 0 && x < ext.nx && y >= 0 && y < ext.ny);
  const mesh::CartesianMesh& m = problem.mesh();
  const Array3<f32>& p0 = problem.initial_pressure();
  const mesh::TransmissibilityField& trans = problem.transmissibility();
  const usize n = static_cast<usize>(ext.nz);

  PeColumnData data;
  data.pressure.resize(n);
  data.elevation.resize(n);
  for (i32 z = 0; z < ext.nz; ++z) {
    data.pressure[static_cast<usize>(z)] = p0(x, y, z);
    data.elevation[static_cast<usize>(z)] =
        static_cast<f32>(m.elevation(x, y, z));
  }

  for (const mesh::Face f : mesh::kAllFaces) {
    auto& col = data.trans[static_cast<usize>(f)];
    col.resize(n);
    for (i32 z = 0; z < ext.nz; ++z) {
      col[static_cast<usize>(z)] = trans.at(x, y, z, f);
    }
  }

  // Static neighbor geometry (elevation columns), exchanged once at setup.
  const auto fill_neighbor_elevation = [&](std::vector<f32>& out, i32 nx_,
                                           i32 ny_) {
    out.resize(n);
    for (i32 z = 0; z < ext.nz; ++z) {
      out[static_cast<usize>(z)] = static_cast<f32>(m.elevation(nx_, ny_, z));
    }
  };
  for (const wse::Color c : kCardinalColors) {
    const mesh::Face face = cardinal_face(c);
    const Coord3 off = mesh::face_offset(face);
    const i32 nx_ = x + off.x;
    const i32 ny_ = y + off.y;
    if (nx_ >= 0 && nx_ < ext.nx && ny_ >= 0 && ny_ < ext.ny) {
      fill_neighbor_elevation(data.elevation_cardinal[cardinal_index(c)], nx_,
                              ny_);
    } else {
      data.elevation_cardinal[cardinal_index(c)].assign(n, 0.0f);
    }
  }
  for (const wse::Color c : kDiagonalColors) {
    const mesh::Face face = diagonal_face(c);
    const Coord3 off = mesh::face_offset(face);
    const i32 nx_ = x + off.x;
    const i32 ny_ = y + off.y;
    if (nx_ >= 0 && nx_ < ext.nx && ny_ >= 0 && ny_ < ext.ny) {
      fill_neighbor_elevation(data.elevation_diagonal[diagonal_index(c)], nx_,
                              ny_);
    } else {
      data.elevation_diagonal[diagonal_index(c)].assign(n, 0.0f);
    }
  }
  return data;
}

DataflowResult run_dataflow_tpfa(const physics::FlowProblem& problem,
                                 const DataflowOptions& options) {
  const Extents3 ext = problem.extents();
  FVF_REQUIRE(options.iterations >= 1);

  wse::Fabric fabric(ext.nx, ext.ny, options.timings,
                     options.pe_memory_budget, options.execution);

  TpfaKernelOptions kernel = options.kernel;
  kernel.iterations = options.iterations;

  // Program registry so results can be gathered after the run.
  std::vector<TpfaPeProgram*> programs(
      static_cast<usize>(fabric.pe_count()), nullptr);
  const physics::FluidProperties fluid = problem.fluid();

  fabric.load([&](Coord2 coord, Coord2 fabric_size) {
    auto program = std::make_unique<TpfaPeProgram>(
        coord, fabric_size, ext, kernel, fluid,
        extract_column(problem, coord.x, coord.y));
    programs[static_cast<usize>(coord.y) * static_cast<usize>(ext.nx) +
             static_cast<usize>(coord.x)] = program.get();
    return program;
  });

  if (options.trace != nullptr) {
    fabric.set_tracer(*options.trace);
  }

  const wse::RunReport report = fabric.run();

  DataflowResult result;
  result.residual = Array3<f32>(ext);
  result.pressure = Array3<f32>(ext);
  for (i32 y = 0; y < ext.ny; ++y) {
    for (i32 x = 0; x < ext.nx; ++x) {
      const TpfaPeProgram* program =
          programs[static_cast<usize>(y) * static_cast<usize>(ext.nx) +
                   static_cast<usize>(x)];
      const std::span<const f32> r = program->residual();
      const std::span<const f32> p = program->pressure();
      for (i32 z = 0; z < ext.nz; ++z) {
        result.residual(x, y, z) = r[static_cast<usize>(z)];
        result.pressure(x, y, z) = p[static_cast<usize>(z)];
      }
    }
  }
  result.makespan_cycles = report.makespan_cycles;
  result.device_seconds = options.timings.seconds(report.makespan_cycles);
  result.counters = fabric.total_counters();
  for (u8 c = 0; c < 8; ++c) {
    result.color_traffic[c] = fabric.color_traffic(wse::Color{c});
  }
  result.max_pe_memory = fabric.max_memory_used();
  result.events_processed = report.events_processed;
  result.faults = report.faults;
  result.trace_events_emitted = report.trace_events_emitted;
  result.trace_records_dropped = report.trace_records_dropped;
  result.errors_total = report.errors_total;
  result.errors_suppressed = report.errors_suppressed;
  result.errors = report.errors;
  return result;
}

}  // namespace fvf::core
