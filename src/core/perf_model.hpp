/// \file perf_model.hpp
/// \brief Measured-plus-extrapolated performance model for paper-scale
///        dataflow runs.
///
/// The event-driven simulation is exact but cannot execute 750x994 PEs x
/// 246 cells x 1000 iterations on a workstation. Because the algorithm
/// weak-scales (per-PE work is independent of fabric size — verified by
/// the simulator itself in bench_table2), the paper-scale time is
/// obtained by (1) measuring per-iteration makespan cycles on a small
/// fabric at two column depths, (2) fitting the affine model
/// cycles/iter = a + b*Nz, and (3) evaluating it at the target Nz and
/// iteration count. EXPERIMENTS.md documents this protocol next to every
/// extrapolated number.
#pragma once

#include "core/launcher.hpp"
#include "physics/problem.hpp"

namespace fvf::core {

/// Affine per-iteration cycle model fitted from simulator measurements.
struct CycleModel {
  f64 base_cycles = 0.0;      ///< a: per-iteration fixed cost
  f64 cycles_per_layer = 0.0; ///< b: per-iteration cost per z-layer

  [[nodiscard]] f64 cycles_per_iteration(i32 nz) const noexcept {
    return base_cycles + cycles_per_layer * static_cast<f64>(nz);
  }

  [[nodiscard]] f64 total_seconds(i32 nz, i64 iterations,
                                  const wse::FabricTimings& t) const noexcept {
    return t.seconds(cycles_per_iteration(nz) *
                     static_cast<f64>(iterations));
  }
};

/// Options for the calibration runs.
struct CalibrationSpec {
  i32 fabric_nx = 12;
  i32 fabric_ny = 12;
  i32 nz_low = 16;
  i32 nz_high = 48;
  i32 iterations = 6;
  bool comm_only = false;  ///< calibrate the communication-only variant
  u64 seed = 42;
};

/// Runs the event simulator twice (two column depths) and fits the affine
/// cycle model. The same DataflowOptions toggles used for the measurement
/// apply to the extrapolation target.
[[nodiscard]] CycleModel calibrate_cycle_model(const CalibrationSpec& spec,
                                               const DataflowOptions& base);

/// Measured makespan cycles per iteration for one configuration.
[[nodiscard]] f64 measure_cycles_per_iteration(const physics::FlowProblem& problem,
                                               const DataflowOptions& options);

}  // namespace fvf::core
