#include "core/transport_program.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/assert.hpp"
#include "core/launcher.hpp"
#include "physics/residual.hpp"
#include "spec/compile.hpp"
#include "spec/launch.hpp"

namespace fvf::core {

using namespace dataflow;

namespace {

using wse::Dsd;
using wse::PeApi;

}  // namespace

/// The physics half of the transport program: per-round flux assembly,
/// CFL bound, and the saturation update. All communication (halo rounds,
/// completion, the MIN-reduce tree) lives in the spec engine.
class TransportKernel final : public spec::StencilKernel {
 public:
  TransportKernel(i32 nz, TransportKernelOptions options,
                  PeTransportData data)
      : nz_(nz), options_(options) {
    FVF_REQUIRE(nz > 0);
    FVF_REQUIRE(options.window_seconds > 0.0);
    FVF_REQUIRE(options.pore_volume > 0.0f);
    FVF_REQUIRE(options.cfl > 0.0f && options.cfl <= 1.0f);

    s_ = std::move(data.saturation);
    p_ = std::move(data.pressure);
    z_self_ = std::move(data.elevation);
    z_cardinal_ = std::move(data.elevation_cardinal);
    z_diagonal_ = std::move(data.elevation_diagonal);
    trans_ = std::move(data.trans);
    well_rate_ = std::move(data.well_rate);
    FVF_REQUIRE(static_cast<i32>(s_.size()) == nz);
    FVF_REQUIRE(static_cast<i32>(p_.size()) == nz);
    FVF_REQUIRE(static_cast<i32>(well_rate_.size()) == nz);

    const usize n = static_cast<usize>(nz);
    send_buf_.assign(2 * n, 0.0f);
    ds_.assign(n, 0.0f);
    outflow_.assign(n, 0.0f);

    // Face -> neighbor-elevation column lookup (static geometry).
    z_nb_of_face_.fill(nullptr);
    for (const wse::Color c : kCardinalColors) {
      z_nb_of_face_[static_cast<usize>(cardinal_face(c))] =
          &z_cardinal_[cardinal_index(c)];
    }
    for (const wse::Color c : kDiagonalColors) {
      z_nb_of_face_[static_cast<usize>(diagonal_face(c))] =
          &z_diagonal_[diagonal_index(c)];
    }
  }

  [[nodiscard]] std::span<const f32> saturation() const noexcept {
    return s_;
  }
  [[nodiscard]] i32 substeps() const noexcept { return substeps_; }
  [[nodiscard]] f64 advanced_seconds() const noexcept { return time_; }

  [[nodiscard]] std::span<const f32> begin_round(PeApi& api) override {
    for (auto& view : neighbor_block_) {
      view.reset();
    }
    // Stage [S | p] for the halo block (fabric-output DSDs stream from
    // contiguous memory).
    std::copy(s_.begin(), s_.end(), send_buf_.begin());
    std::copy(p_.begin(), p_.end(),
              send_buf_.begin() + static_cast<std::ptrdiff_t>(nz_));
    api.scalar_ops(2 * static_cast<usize>(nz_));
    return send_buf_;
  }

  void on_block(PeApi& api, mesh::Face face, Dsd block) override {
    // Keep a view into the halo buffer; it stays valid until the next
    // begin_round. Mark it live for the hazard detector: a receive
    // overwriting it before the flux loop below reads it would be a bug
    // (the dt min-reduce barrier is what rules that out).
    api.hazard_mark_live(block, "transport neighbor view");
    neighbor_block_[static_cast<usize>(face)] = block;
  }

  [[nodiscard]] spec::RoundOutcome on_round_complete(PeApi& api) override {
    const TransportFluid& fl = options_.fluid;
    const i32 nz = nz_;

    for (i32 z = 0; z < nz; ++z) {
      ds_[static_cast<usize>(z)] = well_rate_[static_cast<usize>(z)];
      outflow_[static_cast<usize>(z)] = well_rate_[static_cast<usize>(z)];
    }

    for (i32 z = 0; z < nz; ++z) {
      const usize uz = static_cast<usize>(z);
      for (const mesh::Face face : mesh::kAllFaces) {
        const f32 t = trans_[static_cast<usize>(face)][uz];
        f32 s_nb, p_nb, z_nb;
        if (mesh::is_vertical(face)) {
          const i32 dz = face == mesh::Face::ZPlus ? 1 : -1;
          const i32 znb = z + dz;
          if (znb < 0 || znb >= nz) {
            continue;
          }
          s_nb = s_[static_cast<usize>(znb)];
          p_nb = p_[static_cast<usize>(znb)];
          z_nb = z_self_[static_cast<usize>(znb)];
        } else {
          const auto& view = neighbor_block_[static_cast<usize>(face)];
          if (!view) {
            continue;  // fabric-edge face
          }
          s_nb = view->at(z);
          p_nb = view->at(nz + z);
          z_nb = (*z_nb_of_face_[static_cast<usize>(face)])[uz];
        }
        const TransportFaceFlux flux = transport_face(s_[uz], s_nb, p_[uz], p_nb,
                                             z_self_[uz], z_nb, t, fl);
        ds_[uz] -= flux.nonwetting;
        outflow_[uz] += flux.magnitude;
      }
    }
    api.scalar_ops(static_cast<usize>(nz) * mesh::kFaceCount * 12);

    f32 dt_local = std::numeric_limits<f32>::infinity();
    for (i32 z = 0; z < nz; ++z) {
      const f32 out = outflow_[static_cast<usize>(z)];
      if (out > 0.0f) {
        dt_local =
            std::min(dt_local, options_.cfl * options_.pore_volume / out);
      }
    }
    api.scalar_ops(static_cast<usize>(nz) * 2);

    // The stashed views are fully consumed; release them before the
    // reduction so a neighbor's post-barrier round can refill the buffers.
    api.hazard_release_all();

    return spec::RoundOutcome{spec::RoundAction::Reduce, dt_local};
  }

  [[nodiscard]] spec::RoundAction on_reduced(PeApi& api,
                                             f32 global_dt) override {
    const f32 remaining =
        static_cast<f32>(options_.window_seconds - time_);
    f32 dt = std::min(global_dt, remaining);
    if (!(dt > 0.0f)) {
      dt = remaining;  // quiescent or rounding: finish the window
    }
    for (i32 z = 0; z < nz_; ++z) {
      const usize uz = static_cast<usize>(z);
      s_[uz] = std::clamp(s_[uz] + dt * ds_[uz] / options_.pore_volume, 0.0f,
                          1.0f);
    }
    api.scalar_ops(static_cast<usize>(nz_) * 3);

    time_ += static_cast<f64>(dt);
    ++substeps_;
    if (time_ >= options_.window_seconds * (1.0 - 1e-12) ||
        substeps_ >= options_.max_substeps) {
      return spec::RoundAction::Done;
    }
    return spec::RoundAction::Continue;
  }

 private:
  i32 nz_;
  TransportKernelOptions options_;

  std::vector<f32> s_;
  std::vector<f32> p_;
  std::vector<f32> send_buf_;  ///< [S | p] staging for the halo block
  std::vector<f32> ds_;        ///< accumulated volume rate per cell
  std::vector<f32> outflow_;   ///< CFL bookkeeping per cell
  std::vector<f32> z_self_;
  std::array<std::vector<f32>, 4> z_cardinal_;
  std::array<std::vector<f32>, 4> z_diagonal_;
  std::array<std::vector<f32>, mesh::kFaceCount> trans_;
  std::vector<f32> well_rate_;

  /// Views of the halo buffers, one per XY face, refreshed every round.
  std::array<std::optional<wse::Dsd>, mesh::kFaceCount> neighbor_block_;
  /// Face -> neighbor elevation column (static geometry lookup).
  std::array<const std::vector<f32>*, mesh::kFaceCount> z_nb_of_face_{};

  f64 time_ = 0.0;
  i32 substeps_ = 0;
};

spec::StencilSpec make_transport_spec(const TransportKernelOptions&) {
  spec::StencilSpec s;
  s.name = "transport";
  s.exchange = spec::ExchangeKind::StaticHalo;
  s.shape = spec::StencilShape::NinePoint;
  s.block_words_per_cell = 2;  // [S | p]
  s.claims.cardinal = "transport halo exchange";
  s.claims.diagonal = "transport halo diagonal forwards";
  s.claims.allreduce = "transport dt min-reduce";
  s.claims.nack = "transport halo retransmit";
  s.reduction = spec::ReductionSpec{wse::ReduceOp::Min, 1};
  // The complete ordered per-PE memory layout (code+runtime reserved
  // last, matching the historical program's reservation order).
  s.fields = {
      {"S/p/send/ds/outflow/wells", spec::FieldRole::State, 6, 0},
      {"trans + elevations", spec::FieldRole::State,
       static_cast<i32>(mesh::kFaceCount) + 9, 0},
      {"halo buffers", spec::FieldRole::HaloRecv, 16, 0},
      {"code+runtime", spec::FieldRole::Code, 0, 4096},
  };
  return s;
}

TransportPeProgram::TransportPeProgram(Coord2 coord, Coord2 fabric_size,
                                       i32 nz, TransportKernelOptions options,
                                       wse::AllReduceColors reduce_colors,
                                       PeTransportData data,
                                       HaloReliabilityOptions reliability)
    : SpecPeProgram(coord, fabric_size, nz,
                    spec::compile(make_transport_spec(options)),
                    spec::SpecPeProgram::LaunchBindings{reduce_colors,
                                                        reliability},
                    std::make_unique<TransportKernel>(nz, options,
                                                      std::move(data))),
      physics_(static_cast<TransportKernel*>(kernel())) {}

std::span<const f32> TransportPeProgram::saturation() const noexcept {
  return physics_->saturation();
}

i32 TransportPeProgram::substeps() const noexcept {
  return physics_->substeps();
}

f64 TransportPeProgram::advanced_seconds() const noexcept {
  return physics_->advanced_seconds();
}

TransportLoad load_dataflow_transport(const physics::FlowProblem& problem,
                                      const Array3<f32>& saturation,
                                      const Array3<f32>& pressure,
                                      const Array3<f32>& well_rate,
                                      const DataflowTransportOptions& options) {
  const Extents3 ext = problem.extents();
  FVF_REQUIRE(saturation.extents() == ext);
  FVF_REQUIRE(pressure.extents() == ext);
  FVF_REQUIRE(well_rate.extents() == ext);

  HaloReliabilityOptions reliability = options.reliability;
  if (options.execution.fault.bit_flip_rate > 0.0) {
    // Dropped blocks break the implicit-FIFO halo protocol; the
    // ack/retransmit layer is mandatory under such fault scenarios.
    reliability.enabled = true;
  }

  // Compile the declarative spec and verify the lowered program: every
  // compiled launch passes strict lint before the fabric runs (memoized
  // per program shape, so replayed scenarios only pay it once).
  const spec::CompiledSpec compiled =
      spec::compile(make_transport_spec(options.kernel));
  const Coord2 extents{ext.nx, ext.ny};
  const HarnessOptions effective = spec::verified_options(
      compiled, extents, ext.nz, options, reliability.enabled);

  TransportLoad load;
  load.harness = std::make_unique<FabricHarness>(extents, effective);
  const spec::CompiledSpec::Claims claims =
      compiled.claim_colors(load.harness->colors(), reliability.enabled);
  FVF_REQUIRE(claims.reduce.has_value());
  const wse::AllReduceColors reduce_colors = *claims.reduce;

  // Locals are captured by value: the probe factory the harness keeps
  // must stay valid after this function returns.
  const TransportKernelOptions kernel = options.kernel;
  load.grid = load.harness->load<TransportPeProgram>(
      [&problem, &saturation, &pressure, &well_rate, ext, kernel,
       reduce_colors, reliability](Coord2 coord, Coord2 fabric_size) {
        // Geometry via the shared column extractor, dynamic fields by hand.
        PeColumnData geometry = extract_column(problem, coord.x, coord.y);
        PeTransportData data;
        data.elevation = std::move(geometry.elevation);
        data.elevation_cardinal = std::move(geometry.elevation_cardinal);
        data.elevation_diagonal = std::move(geometry.elevation_diagonal);
        data.trans = std::move(geometry.trans);
        const usize n = static_cast<usize>(ext.nz);
        data.saturation.resize(n);
        data.pressure.resize(n);
        data.well_rate.resize(n);
        for (i32 z = 0; z < ext.nz; ++z) {
          data.saturation[static_cast<usize>(z)] =
              saturation(coord.x, coord.y, z);
          data.pressure[static_cast<usize>(z)] = pressure(coord.x, coord.y, z);
          data.well_rate[static_cast<usize>(z)] =
              well_rate(coord.x, coord.y, z);
        }
        return std::make_unique<TransportPeProgram>(
            coord, fabric_size, ext.nz, kernel, reduce_colors,
            std::move(data), reliability);
      });
  spec::record_verified(compiled, extents, ext.nz, effective,
                        reliability.enabled);
  return load;
}

DataflowTransportResult run_dataflow_transport(
    const physics::FlowProblem& problem, const Array3<f32>& saturation,
    const Array3<f32>& pressure, const Array3<f32>& well_rate,
    const DataflowTransportOptions& options) {
  const Extents3 ext = problem.extents();
  const TransportLoad load = load_dataflow_transport(
      problem, saturation, pressure, well_rate, options);

  DataflowTransportResult result;
  static_cast<RunInfo&>(result) = load.harness->run();
  result.saturation = Array3<f32>(ext);
  load.grid.gather(result.saturation,
                   [](const TransportPeProgram& p) { return p.saturation(); });
  const TransportPeProgram& probe = load.grid.at(0, 0);
  result.substeps = probe.substeps();
  result.advanced_seconds = probe.advanced_seconds();
  return result;
}

Array3<f32> transport_reference_host(const physics::FlowProblem& problem,
                                     const Array3<f32>& saturation,
                                     const Array3<f32>& pressure,
                                     const Array3<f32>& well_rate,
                                     const TransportKernelOptions& options) {
  const Extents3 ext = problem.extents();
  const Array3<f32> elev = physics::cell_elevations(problem.mesh());
  Array3<f32> s = saturation;
  Array3<f32> ds(ext), outflow(ext);
  const TransportFluid& fl = options.fluid;

  f64 time = 0.0;
  i32 substeps = 0;
  while (true) {
    // Identical per-cell, per-face order as the PE kernel.
    for (i32 z = 0; z < ext.nz; ++z) {
      for (i32 y = 0; y < ext.ny; ++y) {
        for (i32 x = 0; x < ext.nx; ++x) {
          ds(x, y, z) = well_rate(x, y, z);
          outflow(x, y, z) = well_rate(x, y, z);
        }
      }
    }
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        for (i32 z = 0; z < ext.nz; ++z) {
          for (const mesh::Face face : mesh::kAllFaces) {
            const auto nb = problem.mesh().neighbor(x, y, z, face);
            if (!nb) {
              continue;
            }
            const TransportFaceFlux flux = transport_face(
                s(x, y, z), s(nb->x, nb->y, nb->z), pressure(x, y, z),
                pressure(nb->x, nb->y, nb->z), elev(x, y, z),
                elev(nb->x, nb->y, nb->z),
                problem.transmissibility().at(x, y, z, face), fl);
            ds(x, y, z) -= flux.nonwetting;
            outflow(x, y, z) += flux.magnitude;
          }
        }
      }
    }
    f32 dt_global = std::numeric_limits<f32>::infinity();
    for (i64 i = 0; i < outflow.size(); ++i) {
      if (outflow[i] > 0.0f) {
        dt_global =
            std::min(dt_global, options.cfl * options.pore_volume / outflow[i]);
      }
    }
    const f32 remaining = static_cast<f32>(options.window_seconds - time);
    f32 dt = std::min(dt_global, remaining);
    if (!(dt > 0.0f)) {
      dt = remaining;
    }
    for (i64 i = 0; i < s.size(); ++i) {
      s[i] = std::clamp(s[i] + dt * ds[i] / options.pore_volume, 0.0f, 1.0f);
    }
    time += static_cast<f64>(dt);
    ++substeps;
    if (time >= options.window_seconds * (1.0 - 1e-12) ||
        substeps >= options.max_substeps) {
      break;
    }
  }
  return s;
}

}  // namespace fvf::core
