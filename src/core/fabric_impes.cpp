#include "core/fabric_impes.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "physics/residual.hpp"

namespace fvf::core {

FabricImpesSimulator::FabricImpesSimulator(
    const physics::FlowProblem& problem, FabricImpesOptions options)
    : problem_(problem),
      options_(options),
      saturation_(problem.extents(), 0.0f),
      pressure_(problem.extents(),
                static_cast<f32>(options.anchor_pressure)),
      well_rate_(problem.extents(), 0.0f) {
  FVF_REQUIRE(options_.porosity > 0.0 && options_.porosity < 1.0);
  FVF_REQUIRE(problem.extents().contains(options_.anchor_cell.x,
                                         options_.anchor_cell.y,
                                         options_.anchor_cell.z));
}

void FabricImpesSimulator::add_well(Coord3 cell, f64 volume_rate) {
  FVF_REQUIRE(problem_.extents().contains(cell.x, cell.y, cell.z));
  FVF_REQUIRE(volume_rate >= 0.0);
  well_rate_(cell.x, cell.y, cell.z) += static_cast<f32>(volume_rate);
}

void FabricImpesSimulator::restore_state(const Array3<f32>& saturation,
                                         const Array3<f32>& pressure) {
  FVF_REQUIRE_MSG(saturation.extents() == problem_.extents() &&
                      pressure.extents() == problem_.extents(),
                  "checkpointed fields do not match the problem extents");
  saturation_ = saturation;
  pressure_ = pressure;
}

f64 FabricImpesSimulator::co2_in_place() const {
  const f64 pore_volume = problem_.mesh().cell_volume() * options_.porosity;
  f64 total = 0.0;
  for (i64 i = 0; i < saturation_.size(); ++i) {
    total += static_cast<f64>(saturation_[i]) * pore_volume;
  }
  return total;
}

void build_impes_pressure_system(const physics::FlowProblem& problem,
                                 const TransportFluid& fluid,
                                 const Array3<f32>& saturation,
                                 const Array3<f32>& pressure,
                                 const Array3<f32>& well_rate,
                                 Coord3 anchor_cell, f64 anchor_pressure,
                                 LinearStencil& stencil, Array3<f32>& rhs) {
  const Extents3 ext = problem.extents();
  const mesh::CartesianMesh& m = problem.mesh();
  const TransportFluid& fl = fluid;
  const f64 g = fl.gravity;
  const Array3<f32> elev = physics::cell_elevations(m);

  stencil.extents = ext;
  stencil.diag = Array3<f32>(ext);
  for (auto& c : stencil.offdiag) {
    c = Array3<f32>(ext);
  }
  rhs = Array3<f32>(ext);

  const auto kr = [&](f64 s) {
    return std::pow(std::clamp(s, 0.0, 1.0),
                    static_cast<f64>(fl.corey_exponent));
  };

  // Lagged per-face phase mobilities with phase-potential upwinding on
  // the previous pressure; the total-mobility coefficient is shared by
  // both sides, so the operator is symmetric (SPD with the penalty).
  f64 diag_sum = 0.0;
  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        f64 diag = 0.0;
        for (const mesh::Face f : mesh::kAllFaces) {
          const auto nb = m.neighbor(x, y, z, f);
          if (!nb) {
            continue;
          }
          const f64 t = problem.transmissibility().at(x, y, z, f);
          const f64 dz = static_cast<f64>(elev(x, y, z)) -
                         elev(nb->x, nb->y, nb->z);
          const f64 dp = static_cast<f64>(pressure(x, y, z)) -
                         pressure(nb->x, nb->y, nb->z);
          const f64 dphi_n = dp + fl.density_nonwetting * g * dz;
          const f64 dphi_w = dp + fl.density_wetting * g * dz;
          const f64 s_n = dphi_n > 0.0 ? saturation(x, y, z)
                                       : saturation(nb->x, nb->y, nb->z);
          const f64 s_w = dphi_w > 0.0 ? saturation(x, y, z)
                                       : saturation(nb->x, nb->y, nb->z);
          const f64 mob_n = kr(s_n) / fl.viscosity_nonwetting;
          const f64 mob_w = kr(1.0 - s_w) / fl.viscosity_wetting;
          const f64 coeff = t * (mob_n + mob_w);
          diag += coeff;
          stencil.offdiag[static_cast<usize>(f)](x, y, z) =
              static_cast<f32>(-coeff);
          // Gravity contribution to this cell's RHS (cell-based: each
          // side adds its own half; antisymmetric dz keeps it globally
          // consistent).
          rhs(x, y, z) -= static_cast<f32>(
              t * g * dz * (mob_n * fl.density_nonwetting +
                            mob_w * fl.density_wetting));
        }
        rhs(x, y, z) += well_rate(x, y, z);
        stencil.diag(x, y, z) = static_cast<f32>(diag);
        diag_sum += diag;
      }
    }
  }

  // Anchor penalty pins the incompressible system's pressure level.
  const f64 penalty =
      std::max(diag_sum / static_cast<f64>(ext.cell_count()), 1e-30) * 1e3;
  stencil.diag(anchor_cell.x, anchor_cell.y, anchor_cell.z) +=
      static_cast<f32>(penalty);
  rhs(anchor_cell.x, anchor_cell.y, anchor_cell.z) +=
      static_cast<f32>(penalty * anchor_pressure);
}

void FabricImpesSimulator::build_pressure_system(LinearStencil& stencil,
                                                 Array3<f32>& rhs) const {
  build_impes_pressure_system(problem_, options_.fluid, saturation_,
                              pressure_, well_rate_, options_.anchor_cell,
                              options_.anchor_pressure, stencil, rhs);
}

FabricImpesWindow FabricImpesSimulator::advance_window(f64 seconds) {
  FVF_REQUIRE(seconds > 0.0);
  FabricImpesWindow window;

  // --- pressure on the fabric ------------------------------------------------
  LinearStencil stencil;
  Array3<f32> rhs;
  build_pressure_system(stencil, rhs);
  const ScaledSystem scaled = jacobi_scale(stencil);

  DataflowCgOptions cg_options;
  cg_options.kernel = options_.cg;
  cg_options.timings = options_.timings;
  cg_options.execution = options_.execution;
  cg_options.lint = options_.lint;
  const DataflowCgResult cg =
      run_dataflow_cg(scaled.stencil, scale_rhs(scaled, rhs), cg_options);
  FVF_REQUIRE_MSG(cg.ok(), "fabric CG failed: " << cg.errors.front());
  FVF_REQUIRE_MSG(cg.converged, "fabric pressure solve did not converge ("
                                    << cg.iterations << " iterations, ||r|| "
                                    << cg.final_residual_norm << ")");
  pressure_ = unscale_solution(scaled, cg.solution);
  window.cg_iterations = cg.iterations;
  window.cg_converged = cg.converged;
  window.device_seconds += cg.device_seconds;
  window.hazards += cg.hazards_total;
  dataflow::accumulate(window.fabric, cg);

  // --- transport on the fabric --------------------------------------------------
  DataflowTransportOptions transport_options;
  transport_options.kernel.fluid = options_.fluid;
  transport_options.kernel.cfl = options_.cfl;
  transport_options.kernel.window_seconds = seconds;
  transport_options.kernel.max_substeps = options_.max_substeps_per_window;
  transport_options.kernel.pore_volume = static_cast<f32>(
      problem_.mesh().cell_volume() * options_.porosity);
  transport_options.timings = options_.timings;
  transport_options.execution = options_.execution;
  transport_options.lint = options_.lint;
  const DataflowTransportResult transport = run_dataflow_transport(
      problem_, saturation_, pressure_, well_rate_, transport_options);
  FVF_REQUIRE_MSG(transport.ok(),
                  "fabric transport failed: " << transport.errors.front());
  saturation_ = transport.saturation;
  window.transport_substeps = transport.substeps;
  window.device_seconds += transport.device_seconds;
  window.hazards += transport.hazards_total;
  dataflow::accumulate(window.fabric, transport);
  return window;
}

}  // namespace fvf::core
