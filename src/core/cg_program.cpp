#include "core/cg_program.hpp"

#include <cmath>
#include <memory>

#include "common/assert.hpp"

namespace fvf::core {

using namespace dataflow;

namespace {

using wse::Dsd;
using wse::PeApi;

}  // namespace

CgPeProgram::CgPeProgram(Coord2 coord, Coord2 fabric_size, i32 nz,
                         CgKernelOptions options,
                         wse::AllReduceColors reduce_colors, PeCgData data,
                         HaloReliabilityOptions reliability)
    : IterativeKernelProgram(coord, fabric_size),
      nz_(nz),
      options_(options) {
  FVF_REQUIRE(nz > 0);
  FVF_REQUIRE(static_cast<i32>(data.rhs.size()) == nz);
  b_ = std::move(data.rhs);
  offdiag_ = std::move(data.offdiag);
  diag_ = std::move(data.diag);
  for (const auto& c : offdiag_) {
    FVF_REQUIRE(static_cast<i32>(c.size()) == nz);
  }
  FVF_REQUIRE(static_cast<i32>(diag_.size()) == nz);

  const usize n = static_cast<usize>(nz);
  x_.assign(n, 0.0f);
  r_.assign(n, 0.0f);
  d_.assign(n, 0.0f);
  q_.assign(n, 0.0f);
  scratch_.assign(n, 0.0f);

  // Halo exchange of the search direction + global dot-product trees
  // (static pass-through routes; no switch protocol — the CG exchange is
  // symmetric every round, so the Figure 6 role alternation brings
  // nothing here).
  use_halo_exchange(nz, reliability);
  use_allreduce(reduce_colors, 1);
}

void CgPeProgram::reserve_memory(wse::PeMemory& mem) {
  const usize n = static_cast<usize>(nz_) * sizeof(f32);
  mem.reserve(6 * n, "b/x/r/d/q/scratch");
  mem.reserve(mesh::kFaceCount * n, "stencil coefficients");
  mem.reserve(n, "diagonal shift");
  mem.reserve(8 * n, "halo buffers");
  mem.reserve(4096, "code+runtime");
}

f32 CgPeProgram::local_dot(PeApi& api, std::span<const f32> a,
                           std::span<const f32> b) {
  FVF_REQUIRE(a.size() == b.size());
  f32 sum = 0.0f;
  for (usize i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  api.scalar_ops(2 * a.size());
  return sum;
}

void CgPeProgram::begin(PeApi& api) {
  // x = 0, r = b, d = r.
  r_ = b_;
  d_ = r_;
  api.scalar_ops(2 * static_cast<usize>(nz_));

  const f32 rho_local = local_dot(api, r_, r_);
  const std::array<f32, 1> contrib{rho_local};
  allreduce().contribute(api, contrib,
                         [this](PeApi& a, std::span<const f32> g) {
    rho_ = g[0];
    rho0_ = g[0];
    rho_last_ = g[0];
    if (rho0_ <= 0.0 || options_.max_iterations == 0) {
      converged_ = rho0_ <= 0.0;
      done_ = true;
      a.signal_done();
      return;
    }
    start_exchange(a);
  });
}

void CgPeProgram::start_exchange(PeApi& api) {
  // q = diag .* d, then the two local vertical face terms.
  api.fmuls(Dsd::of(q_), Dsd::of(diag_), Dsd::of(d_));
  if (nz_ > 1) {
    const i32 m = nz_ - 1;
    const Dsd d = Dsd::of(d_);
    const Dsd q = Dsd::of(q_);
    // z+ term for cells 0..nz-2: q += C_z+ * d_{K+1}.
    api.fmacs(
        q.window(0, m),
        Dsd::of(offdiag_[static_cast<usize>(mesh::Face::ZPlus)]).window(0, m),
        d.window(1, m), q.window(0, m));
    // z- term for cells 1..nz-1: q += C_z- * d_{K-1}.
    api.fmacs(
        q.window(1, m),
        Dsd::of(offdiag_[static_cast<usize>(mesh::Face::ZMinus)]).window(1, m),
        d.window(0, m), q.window(1, m));
  }

  // Broadcast the search-direction column to the four cardinal
  // neighbors; the per-block hook accumulates q += C_f d_nb and the
  // round hook continues with the dot products.
  exchange().begin_round(api, d_);
}

void CgPeProgram::on_halo_block(PeApi& api, mesh::Face face, Dsd d_nb) {
  // q += C_f * d_nb
  api.fmacs(Dsd::of(q_), Dsd::of(offdiag_[static_cast<usize>(face)]), d_nb,
            Dsd::of(q_));
}

void CgPeProgram::on_halo_complete(PeApi& api) {
  const f32 dot_dq = local_dot(api, d_, q_);
  const std::array<f32, 1> contrib{dot_dq};
  allreduce().contribute(api, contrib,
                         [this](PeApi& a, std::span<const f32> g) {
                           on_dot_dq(a, g[0]);
                         });
}

void CgPeProgram::on_dot_dq(PeApi& api, f32 global) {
  FVF_REQUIRE_MSG(global != 0.0f, "CG breakdown: d'Ad == 0");
  const f32 alpha = rho_ / global;
  // x += alpha d ; r -= alpha q
  api.fmuls(Dsd::of(scratch_), Dsd::of(d_), alpha);
  api.fadds(Dsd::of(x_), Dsd::of(x_), Dsd::of(scratch_));
  api.fmuls(Dsd::of(scratch_), Dsd::of(q_), alpha);
  api.fsubs(Dsd::of(r_), Dsd::of(r_), Dsd::of(scratch_));

  const f32 rr = local_dot(api, r_, r_);
  const std::array<f32, 1> contrib{rr};
  allreduce().contribute(api, contrib,
                         [this](PeApi& a, std::span<const f32> g) {
                           on_rho(a, g[0]);
                         });
}

void CgPeProgram::on_rho(PeApi& api, f32 global) {
  ++iterations_;
  rho_last_ = global;
  const f32 tol2 = options_.relative_tolerance * options_.relative_tolerance;
  const bool stop = global <= tol2 * static_cast<f32>(rho0_) ||
                    iterations_ >= options_.max_iterations;
  if (stop) {
    converged_ = global <= tol2 * static_cast<f32>(rho0_);
    done_ = true;
    api.signal_done();
    return;
  }
  const f32 beta = global / rho_;
  rho_ = global;
  // d = r + beta d
  api.fmuls(Dsd::of(d_), Dsd::of(d_), beta);
  api.fadds(Dsd::of(d_), Dsd::of(d_), Dsd::of(r_));
  start_exchange(api);
}

CgLoad load_dataflow_cg(const LinearStencil& stencil, const Array3<f32>& rhs,
                        const DataflowCgOptions& options) {
  const Extents3 ext = stencil.extents;
  FVF_REQUIRE(rhs.extents() == ext);

  HaloReliabilityOptions reliability = options.reliability;
  if (options.execution.fault.bit_flip_rate > 0.0) {
    // Bit flips make the fabric drop corrupted blocks; the implicit-FIFO
    // halo protocol cannot survive a drop, so the ack/retransmit layer
    // is mandatory for such scenarios.
    reliability.enabled = true;
  }

  CgLoad load;
  load.harness =
      std::make_unique<FabricHarness>(Coord2{ext.nx, ext.ny}, options);
  load.harness->colors().claim_cardinal("cg halo exchange");
  load.harness->colors().claim_diagonal("cg halo diagonal forwards");
  const wse::AllReduceColors reduce_colors =
      load.harness->colors().claim_allreduce("cg dot-product all-reduce");
  if (reliability.enabled) {
    load.harness->colors().claim_nack("cg halo retransmit");
  }

  // Locals are captured by value: the probe factory the harness keeps
  // must stay valid after this function returns.
  const CgKernelOptions kernel = options.kernel;
  load.grid = load.harness->load<CgPeProgram>(
      [&stencil, &rhs, ext, kernel, reduce_colors,
       reliability](Coord2 coord, Coord2 fabric_size) {
        PeCgData data;
        data.rhs.resize(static_cast<usize>(ext.nz));
        data.diag.resize(static_cast<usize>(ext.nz));
        for (i32 z = 0; z < ext.nz; ++z) {
          data.rhs[static_cast<usize>(z)] = rhs(coord.x, coord.y, z);
          data.diag[static_cast<usize>(z)] = stencil.diag(coord.x, coord.y, z);
        }
        for (const mesh::Face f : mesh::kAllFaces) {
          auto& col = data.offdiag[static_cast<usize>(f)];
          col.resize(static_cast<usize>(ext.nz));
          for (i32 z = 0; z < ext.nz; ++z) {
            col[static_cast<usize>(z)] =
                stencil.offdiag[static_cast<usize>(f)](coord.x, coord.y, z);
          }
        }
        return std::make_unique<CgPeProgram>(coord, fabric_size, ext.nz,
                                             kernel, reduce_colors,
                                             std::move(data), reliability);
      });
  return load;
}

DataflowCgResult run_dataflow_cg(const LinearStencil& stencil,
                                 const Array3<f32>& rhs,
                                 const DataflowCgOptions& options) {
  const Extents3 ext = stencil.extents;
  const CgLoad load = load_dataflow_cg(stencil, rhs, options);

  DataflowCgResult result;
  static_cast<RunInfo&>(result) = load.harness->run();
  result.solution = Array3<f32>(ext);
  load.grid.gather(result.solution,
                   [](const CgPeProgram& p) { return p.solution(); });
  const CgPeProgram& probe = load.grid.at(0, 0);
  result.iterations = probe.iterations();
  result.converged = probe.converged();
  result.initial_residual_norm = std::sqrt(probe.initial_residual_norm2());
  result.final_residual_norm = std::sqrt(probe.final_residual_norm2());
  return result;
}

}  // namespace fvf::core
