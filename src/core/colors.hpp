/// \file colors.hpp
/// \brief Color (routing tag) assignments of the TPFA dataflow program.
///
/// Communication plan per application of Algorithm 1 (paper Section 5.2):
///
/// *Cardinal exchange* — four data colors, one per movement direction.
/// Each uses the two-switch-position send/receive protocol of Figure 6:
/// PEs at even coordinate along the movement axis send first; their
/// control wavelet flips both routers; the odd PEs then send back.
///
///   color       moves   received from   provides face   forwarded on
///   kEastData   East    West neighbor   x-  (XMinus)    kDiagSouth
///   kWestData   West    East neighbor   x+  (XPlus)     kDiagNorth
///   kNorthData  North   South neighbor  y-  (YMinus)    kDiagEast
///   kSouthData  South   North neighbor  y+  (YPlus)     kDiagWest
///
/// *Diagonal exchange* — four forward colors with static routes
/// (Ramp -> movement dir; upstream -> Ramp). Every PE acts as the
/// intermediary of Figure 5: on receiving a cardinal block it immediately
/// re-sends it rotated counterclockwise (W->S, S->E, E->N, N->W), so each
/// corner's data reaches the diagonal target in two hops and all four
/// corner transfers proceed concurrently through distinct intermediaries.
///
///   color        second hop   received from   provides corner  face
///   kDiagSouth   southward    North neighbor  north-west       xy-+
///   kDiagNorth   northward    South neighbor  south-east       xy+-
///   kDiagEast    eastward     West neighbor   south-west       xy--
///   kDiagWest    westward     East neighbor   north-east       xy++
#pragma once

#include <array>
#include <optional>

#include "mesh/stencil.hpp"
#include "wse/fabric_types.hpp"

namespace fvf::core {

inline constexpr wse::Color kEastData{0};
inline constexpr wse::Color kWestData{1};
inline constexpr wse::Color kNorthData{2};
inline constexpr wse::Color kSouthData{3};
inline constexpr wse::Color kDiagSouth{4};
inline constexpr wse::Color kDiagNorth{5};
inline constexpr wse::Color kDiagEast{6};
inline constexpr wse::Color kDiagWest{7};

inline constexpr std::array<wse::Color, 4> kCardinalColors = {
    kEastData, kWestData, kNorthData, kSouthData};
inline constexpr std::array<wse::Color, 4> kDiagonalColors = {
    kDiagSouth, kDiagNorth, kDiagEast, kDiagWest};

/// *Retransmit NACKs* — four colors with static one-hop routes, one per
/// travel direction, used by the halo-exchange reliability layer (a
/// receiver missing a block NACKs its upstream neighbor, which resends
/// from a bounded resend buffer). Allocated from the free color space
/// above the AllReduce block (colors 8-11); configured and used only when
/// HaloReliabilityOptions::enabled is set.
inline constexpr wse::Color kNackEast{12};   // NACK traveling East
inline constexpr wse::Color kNackWest{13};   // NACK traveling West
inline constexpr wse::Color kNackNorth{14};  // NACK traveling North
inline constexpr wse::Color kNackSouth{15};  // NACK traveling South

inline constexpr std::array<wse::Color, 4> kNackColors = {
    kNackEast, kNackWest, kNackNorth, kNackSouth};

[[nodiscard]] constexpr bool is_nack_color(wse::Color c) noexcept {
  return c.id() >= kNackEast.id() && c.id() <= kNackSouth.id();
}

/// Direction a NACK color carries its request in.
[[nodiscard]] constexpr wse::Dir nack_movement_dir(wse::Color c) noexcept {
  switch (c.id()) {
    case 12: return wse::Dir::East;
    case 13: return wse::Dir::West;
    case 14: return wse::Dir::North;
    default: return wse::Dir::South;
  }
}

/// The NACK color that travels toward `d`.
[[nodiscard]] constexpr wse::Color nack_color_toward(wse::Dir d) noexcept {
  switch (d) {
    case wse::Dir::East: return kNackEast;
    case wse::Dir::West: return kNackWest;
    case wse::Dir::North: return kNackNorth;
    default: return kNackSouth;
  }
}

/// Index (0..3) of a cardinal or diagonal color within its group.
[[nodiscard]] constexpr usize cardinal_index(wse::Color c) noexcept {
  return c.id();
}
[[nodiscard]] constexpr usize diagonal_index(wse::Color c) noexcept {
  return static_cast<usize>(c.id() - kDiagSouth.id());
}

[[nodiscard]] constexpr bool is_cardinal_color(wse::Color c) noexcept {
  return c.id() <= kSouthData.id();
}
[[nodiscard]] constexpr bool is_diagonal_color(wse::Color c) noexcept {
  return c.id() >= kDiagSouth.id() && c.id() <= kDiagWest.id();
}

/// Direction a cardinal color moves data in.
[[nodiscard]] constexpr wse::Dir movement_dir(wse::Color c) noexcept {
  switch (c.id()) {
    case 0: return wse::Dir::East;
    case 1: return wse::Dir::West;
    case 2: return wse::Dir::North;
    case 3: return wse::Dir::South;
    case 4: return wse::Dir::South;
    case 5: return wse::Dir::North;
    case 6: return wse::Dir::East;
    default: return wse::Dir::West;
  }
}

/// Link a block of this color arrives through (= opposite of movement).
[[nodiscard]] constexpr wse::Dir upstream_dir(wse::Color c) noexcept {
  return wse::opposite(movement_dir(c));
}

/// Mesh face whose neighbor data a cardinal color delivers.
[[nodiscard]] constexpr mesh::Face cardinal_face(wse::Color c) noexcept {
  switch (c.id()) {
    case 0: return mesh::Face::XMinus;
    case 1: return mesh::Face::XPlus;
    case 2: return mesh::Face::YMinus;
    default: return mesh::Face::YPlus;
  }
}

/// Mesh face whose corner data a diagonal color delivers.
[[nodiscard]] constexpr mesh::Face diagonal_face(wse::Color c) noexcept {
  switch (c.id()) {
    case 4: return mesh::Face::DiagMP;  // north-west corner
    case 5: return mesh::Face::DiagPM;  // south-east corner
    case 6: return mesh::Face::DiagMM;  // south-west corner
    default: return mesh::Face::DiagPP; // north-east corner
  }
}

/// The diagonal color on which a cardinal block is forwarded by its
/// intermediary (the counterclockwise rotation W->S, S->E, E->N, N->W).
[[nodiscard]] constexpr wse::Color diagonal_forward_color(
    wse::Color cardinal) noexcept {
  switch (cardinal.id()) {
    case 0: return kDiagSouth;  // arrived from West  -> forward South
    case 1: return kDiagNorth;  // arrived from East  -> forward North
    case 2: return kDiagEast;   // arrived from South -> forward East
    default: return kDiagWest;  // arrived from North -> forward West
  }
}

}  // namespace fvf::core
