/// \file transport_program.hpp
/// \brief Explicit two-phase saturation transport as a dataflow program —
///        together with the fabric CG pressure solve (cg_program.hpp)
///        this puts the full IMPES loop on the simulated wafer-scale
///        engine, the paper's "nonlinear and linear solvers on a dataflow
///        architecture" future work (Section 9).
///
/// Per sub-step, every PE:
///   1. exchanges its [saturation | pressure] column with all ten
///      neighbors (cardinal + diagonal halo, Figure 5/6 machinery),
///   2. computes the non-wetting phase flux through each face with
///      phase-potential upwinding and accumulates dS,
///   3. contributes its local CFL bound to a fabric-wide MIN all-reduce,
///   4. applies the globally agreed dt and either finishes the window or
///      starts the next sub-step.
///
/// The global minimum makes every PE take the identical dt, so the
/// distributed explicit integration is deterministic and terminates
/// uniformly. A host mirror (transport_reference_host) replicates the
/// arithmetic operation-for-operation in f32 for bitwise validation.
///
/// Like TPFA, the program is expressed as a `fvf::spec` stencil program:
/// `make_transport_spec` declares the static-halo exchange, the dt
/// MIN-reduction, and the per-PE memory layout; the physics arrives as
/// the (file-local) TransportKernel's round callbacks.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "common/array3d.hpp"
#include "dataflow/fabric_harness.hpp"
#include "physics/problem.hpp"
#include "spec/program.hpp"

namespace fvf::core {

/// Fluid/rock constants of the transport kernel (f32, as on the PE).
struct TransportFluid {
  f32 viscosity_wetting = 5.0e-4f;
  f32 viscosity_nonwetting = 5.5e-5f;
  f32 density_wetting = 1050.0f;
  f32 density_nonwetting = 700.0f;
  f32 corey_exponent = 2.0f;
  f32 gravity = 9.80665f;  ///< 0 disables the gravity term
};

/// The per-face two-phase flux in f32 — shared verbatim by the PE
/// kernel, the host mirror, and the gpusim backend so all three agree
/// bit-for-bit.
struct TransportFaceFlux {
  f32 nonwetting = 0.0f;
  f32 magnitude = 0.0f;  ///< |F_n| + |F_w| for the CFL bound
};

[[nodiscard]] inline f32 transport_corey(f32 s, f32 exponent) {
  return std::pow(std::clamp(s, 0.0f, 1.0f), exponent);
}

[[nodiscard]] inline TransportFaceFlux transport_face(
    f32 s_self, f32 s_nb, f32 p_self, f32 p_nb, f32 z_self, f32 z_nb,
    f32 trans, const TransportFluid& fl) {
  const f32 dz = z_self - z_nb;
  const f32 dp = p_self - p_nb;
  const f32 dphi_n = dp + fl.density_nonwetting * fl.gravity * dz;
  const f32 s_up_n = dphi_n > 0.0f ? s_self : s_nb;
  const f32 flux_n =
      trans *
      (transport_corey(s_up_n, fl.corey_exponent) / fl.viscosity_nonwetting) *
      dphi_n;
  const f32 dphi_w = dp + fl.density_wetting * fl.gravity * dz;
  const f32 s_up_w = dphi_w > 0.0f ? s_self : s_nb;
  const f32 flux_w =
      trans *
      (transport_corey(1.0f - s_up_w, fl.corey_exponent) /
       fl.viscosity_wetting) *
      dphi_w;
  return TransportFaceFlux{flux_n, std::abs(flux_n) + std::abs(flux_w)};
}

/// Kernel options shared by every PE.
struct TransportKernelOptions {
  TransportFluid fluid{};
  f32 cfl = 0.5f;
  f64 window_seconds = 0.0;  ///< simulated time to advance
  i32 max_substeps = 10000;
  f32 pore_volume = 0.0;     ///< phi * V per cell (uniform mesh)
};

/// Per-PE column data.
struct PeTransportData {
  std::vector<f32> saturation;  ///< S, length Nz (updated)
  std::vector<f32> pressure;    ///< p, length Nz (fixed for the window)
  std::vector<f32> elevation;   ///< own cell-centre elevations
  std::array<std::vector<f32>, 4> elevation_cardinal;
  std::array<std::vector<f32>, 4> elevation_diagonal;
  std::array<std::vector<f32>, mesh::kFaceCount> trans;
  std::vector<f32> well_rate;   ///< injected volume rate per cell [m^3/s]
};

/// The declarative description of the transport program: the [S | p]
/// static-halo exchange, the fabric-wide dt MIN-reduction, and the
/// complete ordered per-PE memory layout.
[[nodiscard]] spec::StencilSpec make_transport_spec(
    const TransportKernelOptions& options);

class TransportKernel;

/// The per-PE transport program. The dt min-reduce tree colors come from
/// the launch pipeline's ColorPlan claim. A thin facade over the
/// compiled-spec engine keeping the historical constructor and accessors.
class TransportPeProgram final : public spec::SpecPeProgram {
 public:
  TransportPeProgram(Coord2 coord, Coord2 fabric_size, i32 nz,
                     TransportKernelOptions options,
                     wse::AllReduceColors reduce_colors, PeTransportData data,
                     dataflow::HaloReliabilityOptions reliability = {});

  [[nodiscard]] std::span<const f32> saturation() const noexcept;
  [[nodiscard]] i32 substeps() const noexcept;
  [[nodiscard]] f64 advanced_seconds() const noexcept;

 private:
  TransportKernel* physics_;  ///< borrowed from the engine-owned kernel
};

/// Launch options.
struct DataflowTransportOptions : dataflow::HarnessOptions {
  TransportKernelOptions kernel{};
  /// Halo ack/retransmit layer. Auto-enabled by run_dataflow_transport
  /// when the fault scenario can drop blocks (bit_flip_rate > 0).
  dataflow::HaloReliabilityOptions reliability{};
};

/// Result of a transport window on the fabric: full fabric accounting
/// plus the advanced state.
struct DataflowTransportResult : dataflow::RunInfo {
  Array3<f32> saturation;
  i32 substeps = 0;
  f64 advanced_seconds = 0.0;
};

/// A loaded-but-not-run transport launch (see
/// core/launcher.hpp::TpfaLoad). The referenced problem and field arrays
/// must outlive the load.
struct TransportLoad {
  std::unique_ptr<dataflow::FabricHarness> harness;
  dataflow::ProgramGrid<TransportPeProgram> grid;
};

/// Claims the transport colors and loads the per-PE programs without
/// running the event engine — the fvf_lint entry point, and the first
/// half of run_dataflow_transport.
[[nodiscard]] TransportLoad load_dataflow_transport(
    const physics::FlowProblem& problem, const Array3<f32>& saturation,
    const Array3<f32>& pressure, const Array3<f32>& well_rate,
    const DataflowTransportOptions& options);

/// Advances saturations by `options.kernel.window_seconds` on the fabric,
/// holding `pressure` fixed (one IMPES transport window).
[[nodiscard]] DataflowTransportResult run_dataflow_transport(
    const physics::FlowProblem& problem, const Array3<f32>& saturation,
    const Array3<f32>& pressure, const Array3<f32>& well_rate,
    const DataflowTransportOptions& options);

/// Host mirror of the fabric transport window: identical f32 arithmetic
/// and face order, for bitwise validation.
[[nodiscard]] Array3<f32> transport_reference_host(
    const physics::FlowProblem& problem, const Array3<f32>& saturation,
    const Array3<f32>& pressure, const Array3<f32>& well_rate,
    const TransportKernelOptions& options);

}  // namespace fvf::core
