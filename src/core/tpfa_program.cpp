#include "core/tpfa_program.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "mesh/fields.hpp"
#include "physics/flux.hpp"

namespace fvf::core {

using namespace dataflow;

namespace {

using wse::Color;
using wse::ColorConfig;
using wse::Dir;
using wse::Dsd;
using wse::FabricDsd;
using wse::PeApi;
using wse::RouteRule;
using wse::SwitchPosition;

/// Coordinate of this PE along the movement axis of a cardinal color.
i32 axis_coord(Coord2 coord, Color color) {
  const Dir m = movement_dir(color);
  return (m == Dir::East || m == Dir::West) ? coord.x : coord.y;
}

bool neighbor_exists(Coord2 coord, Coord2 fabric, Dir d) {
  const Coord2 off = wse::dir_offset(d);
  const i32 nx = coord.x + off.x;
  const i32 ny = coord.y + off.y;
  return nx >= 0 && nx < fabric.x && ny >= 0 && ny < fabric.y;
}

}  // namespace

TpfaPeProgram::TpfaPeProgram(Coord2 coord, Coord2 fabric_size,
                             Extents3 mesh_extents, TpfaKernelOptions options,
                             physics::FluidProperties fluid, PeColumnData data)
    : IterativeKernelProgram(coord, fabric_size),
      mesh_extents_(mesh_extents),
      options_(options),
      fluid_(fluid),
      nz_(mesh_extents.nz) {
  FVF_REQUIRE(options_.iterations >= 1);
  FVF_REQUIRE(static_cast<i32>(data.pressure.size()) == nz_);
  FVF_REQUIRE(static_cast<i32>(data.elevation.size()) == nz_);

  const physics::KernelConstants constants =
      physics::make_kernel_constants(fluid_);
  gravity_f32_ = 2.0f * constants.half_g;
  inv_mu_f32_ = constants.inv_mu;

  p_ = std::move(data.pressure);
  z_self_ = std::move(data.elevation);
  rho_.assign(static_cast<usize>(nz_), 0.0f);
  r_.assign(static_cast<usize>(nz_), 0.0f);
  z_cardinal_ = std::move(data.elevation_cardinal);
  z_diagonal_ = std::move(data.elevation_diagonal);
  trans_ = std::move(data.trans);
  for (const auto& t : trans_) {
    FVF_REQUIRE(static_cast<i32>(t.size()) == nz_);
  }

  for (auto& buf : card_buf_) {
    buf.assign(2 * static_cast<usize>(nz_), 0.0f);
  }
  for (auto& buf : diag_buf_) {
    buf.assign(2 * static_cast<usize>(nz_), 0.0f);
  }
  const usize scratch_count = options_.reuse_buffers ? 4 : 13;
  scratch_.resize(scratch_count);
  for (auto& s : scratch_) {
    s.assign(static_cast<usize>(nz_), 0.0f);
  }
  zflux_.assign(static_cast<usize>(nz_), 0.0f);

  // Communication roles.
  expected_cards_ = 0;
  for (const Color c : kCardinalColors) {
    CardinalState& cs = card_[cardinal_index(c)];
    cs.has_upstream = neighbor_exists(coord, fabric_size, upstream_dir(c));
    cs.phase1_sender = (axis_coord(coord, c) % 2 == 0) || !cs.has_upstream;
    if (cs.has_upstream) {
      ++expected_cards_;
    }
  }
  expected_diags_ = 0;
  for (const Color c : kDiagonalColors) {
    DiagonalState& ds = diag_[diagonal_index(c)];
    const mesh::Face face = diagonal_face(c);
    const Coord3 off = mesh::face_offset(face);
    const i32 cx = coord.x + off.x;
    const i32 cy = coord.y + off.y;
    ds.expected = options_.diagonals_enabled && cx >= 0 && cx < fabric_size.x &&
                  cy >= 0 && cy < fabric_size.y;
    if (ds.expected) {
      ++expected_diags_;
    }
  }

  // Declarative dispatch: the Figure 6 cardinal exchange plus its control
  // wavelets, and the Figure 5 diagonal forwards when enabled. All of it
  // is halo traffic for the profiler; the handlers retag themselves when
  // they hand a drained block to the flux kernel.
  for (const Color c : kCardinalColors) {
    bind_data(
        c,
        [this](wse::PeApi& api, Color color, Dir from,
               std::span<const u32> block) {
          handle_cardinal(api, color, from, block);
        },
        obs::Phase::Halo);
    bind_control(
        c,
        [this](wse::PeApi& api, Color color, Dir) {
          handle_control(api, color);
        },
        obs::Phase::Halo);
  }
  if (options_.diagonals_enabled) {
    for (const Color c : kDiagonalColors) {
      bind_data(
          c,
          [this](wse::PeApi& api, Color color, Dir from,
                 std::span<const u32> block) {
            handle_diagonal(api, color, from, block);
          },
          obs::Phase::Halo);
    }
  }
}

usize TpfaPeProgram::data_footprint_bytes(i32 nz, bool reuse_buffers) {
  const usize n = static_cast<usize>(nz);
  usize words = 0;
  words += 3 * n;                      // p, rho, r
  words += n;                          // own elevations
  words += 8 * n;                      // 8 neighbor elevation columns
  words += mesh::kFaceCount * n;       // 10 transmissibility columns
  words += 4 * 2 * n;                  // 4 cardinal receive buffers
  words += 4 * 2 * n;                  // 4 diagonal receive buffers
  words += (reuse_buffers ? 4 : 13) * n;  // scratch columns
  words += n;                          // vertical-face flux column
  return words * sizeof(f32);
}

void TpfaPeProgram::reserve_memory(wse::PeMemory& mem) {
  mem.reserve(kCodeFootprintBytes, "code+runtime");
  const usize n = static_cast<usize>(nz_);
  mem.reserve(3 * n * 4, "p/rho/r columns");
  mem.reserve(n * 4, "own elevations");
  mem.reserve(8 * n * 4, "neighbor elevations");
  mem.reserve(mesh::kFaceCount * n * 4, "transmissibilities");
  mem.reserve(4 * 2 * n * 4, "cardinal recv buffers");
  mem.reserve(4 * 2 * n * 4, "diagonal recv buffers");
  mem.reserve(scratch_.size() * n * 4, "scratch columns");
  mem.reserve(n * 4, "vertical flux column");
}

void TpfaPeProgram::configure_routes(wse::Router& router) {
  // Cardinal colors: the Figure 6 two-position switch protocol.
  for (const Color c : kCardinalColors) {
    const CardinalState& cs = card_[cardinal_index(c)];
    const Dir move = movement_dir(c);
    const Dir up = upstream_dir(c);
    if (!cs.has_upstream) {
      // Edge PE on the upstream side: nothing ever arrives, so a single
      // broadcast-root position suffices (its own control wraps in place).
      router.configure(c, ColorConfig({wse::position(Dir::Ramp, {move})}));
    } else if (cs.phase1_sender) {
      router.configure(c, ColorConfig({wse::position(Dir::Ramp, {move}),
                                       wse::position(up, {Dir::Ramp})}));
    } else {
      router.configure(c, ColorConfig({wse::position(up, {Dir::Ramp}),
                                       wse::position(Dir::Ramp, {move})}));
    }
  }
  // Diagonal forward colors: static pass-through routes.
  if (options_.diagonals_enabled) {
    for (const Color c : kDiagonalColors) {
      const Dir move = movement_dir(c);
      const Dir up = upstream_dir(c);
      router.configure(
          c, ColorConfig({wse::position({RouteRule{Dir::Ramp, {move}},
                                         RouteRule{up, {Dir::Ramp}}})}));
    }
  }
}

std::vector<wse::SendDeclaration> TpfaPeProgram::program_send_declarations()
    const {
  // Figure 6: every PE sends one [p | rho] block plus the role-flipping
  // control wavelet on each cardinal color, and forwards received blocks
  // on the rotated diagonal color (Figure 5 intermediary role).
  std::vector<wse::SendDeclaration> sends;
  for (const Color c : kCardinalColors) {
    sends.push_back({c, false});
    sends.push_back({c, true});
    if (options_.diagonals_enabled && card_[cardinal_index(c)].has_upstream) {
      sends.push_back({diagonal_forward_color(c), false});
    }
  }
  return sends;
}

void TpfaPeProgram::begin(PeApi& api) {
  begin_iteration(api);
  check_completion(api);
}

wse::Dsd TpfaPeProgram::scratch(usize slot, i32 length) noexcept {
  return Dsd::of(scratch_[slot]).window(0, length);
}

void TpfaPeProgram::compute_face_flux(PeApi& api, Dsd p_nb, Dsd rho_nb,
                                      Dsd z_nb, Dsd trans, Dsd p_self,
                                      Dsd rho_self, Dsd z_self,
                                      Dsd flux_out) {
  const i32 n = p_nb.length;
  // Scratch schedule. With buffer reuse (Section 5.3.1) four columns are
  // cycled through like hand-allocated registers; without it, every
  // intermediate gets its own column. Numerics are identical.
  usize next = 0;
  const auto fresh = [&]() -> Dsd {
    const usize slot = options_.reuse_buffers ? (next % 4) : next;
    ++next;
    return scratch(slot, n);
  };

  // Mirrors physics::tpfa_face_flux operation-for-operation (see flux.hpp
  // for the Table 4 instruction budget).
  Dsd dz = fresh();
  api.fsubs(dz, z_nb, z_self);        // FSUB: dz = z_L - z_K
  Dsd dp = fresh();
  api.fsubs(dp, p_nb, p_self);        // FSUB: dp = p_L - p_K
  Dsd rho_avg = fresh();
  api.fadds(rho_avg, rho_self, rho_nb);  // FADD: rho_K + rho_L
  api.fmuls(rho_avg, rho_avg, 0.5f);  // FMUL: * 0.5
  api.fmuls(dz, dz, gravity_f32_);    // FMUL: g * dz
  Dsd dphi = options_.reuse_buffers ? dz : fresh();
  api.fmacs(dphi, rho_avg, dz, dp);   // FMA: dphi = rho_avg*(g dz) + dp
  Dsd cmp = options_.reuse_buffers ? dp : fresh();
  api.fsubs(cmp, dphi, 0.0f);         // FSUB: upwind compare vs zero
  Dsd lam_self = options_.reuse_buffers ? rho_avg : fresh();
  api.fmuls(lam_self, rho_self, inv_mu_f32_);  // FMUL: rho_K / mu
  Dsd lam_neib = fresh();
  api.fmuls(lam_neib, rho_nb, inv_mu_f32_);    // FMUL: rho_L / mu
  Dsd lam = options_.reuse_buffers ? cmp : fresh();
  api.selects(lam, cmp, lam_self, lam_neib);   // predicated move (Eq. 4)
  Dsd t_lam = options_.reuse_buffers ? lam : fresh();
  api.fmuls(t_lam, trans, lam);       // FMUL: T * lambda
  // The flux lands in flux_out (typically the dead p half of the block's
  // receive buffer), where it waits for the canonical-order accumulation.
  api.fmuls(flux_out, t_lam, dphi);   // FMUL: F = T lambda dphi
}

void TpfaPeProgram::accumulate_flux(PeApi& api, Dsd flux, Dsd r) {
  Dsd neg = scratch(0, flux.length);
  api.fnegs(neg, flux);  // FNEG
  api.fsubs(r, r, neg);  // FSUB: r -= (-F)
}

void TpfaPeProgram::local_compute(PeApi& api) {
  if (!options_.compute_enabled) {
    return;
  }
  api.set_phase(obs::Phase::LocalCompute);
  const usize n = static_cast<usize>(nz_);

  // Pressure advance between applications of Algorithm 1 (matches
  // mesh::advance_pressure on the global array element-for-element).
  if (iter_ > 0) {
    for (usize z = 0; z < n; ++z) {
      const i64 linear = mesh_extents_.linear(coord().x, coord().y,
                                              static_cast<i32>(z));
      p_[z] += mesh::pressure_bump(linear, iter_ - 1);
    }
    api.transcendental_ops(n);
    api.scalar_ops(2 * n);
  }

  // EOS pass (Eq. 5). Accounted outside the Table 4 instruction classes,
  // as in the paper.
  for (usize z = 0; z < n; ++z) {
    rho_[z] = fluid_.density_f32(p_[z]);
  }
  api.transcendental_ops(n);
  api.scalar_ops(3 * n);

  api.zeros(Dsd::of(r_));
}

void TpfaPeProgram::send_block(PeApi& api, Color color) {
  CardinalState& cs = card_[cardinal_index(color)];
  // Injection is halo traffic (it only costs PE cycles in the blocking-
  // send ablation, where the stall should not be booked as compute).
  api.set_phase(obs::Phase::Halo);
  api.send(color, p_, rho_);
  api.send_control(color);
  ++cs.sends;
}

void TpfaPeProgram::begin_iteration(PeApi& api) {
  cards_processed_this_iter_ = 0;
  diags_processed_this_iter_ = 0;

  local_compute(api);

  // Phase-1 sends, plus phase-2 sends whose trigger control arrived early.
  for (const Color c : kCardinalColors) {
    CardinalState& cs = card_[cardinal_index(c)];
    if (cs.sends == iter_ &&
        (cs.phase1_sender || cs.controls > cs.sends)) {
      send_block(api, c);
    }
  }

  // Blocks that arrived one iteration early are now current: consume them.
  for (const Color c : kCardinalColors) {
    CardinalState& cs = card_[cardinal_index(c)];
    if (cs.buffered && cs.processed == iter_) {
      process_cardinal(api, c);
    }
  }
  for (const Color c : kDiagonalColors) {
    DiagonalState& ds = diag_[diagonal_index(c)];
    if (ds.buffered && ds.processed == iter_) {
      process_diagonal(api, c);
    }
  }
}

void TpfaPeProgram::process_cardinal(PeApi& api, Color color) {
  CardinalState& cs = card_[cardinal_index(color)];
  FVF_ASSERT(cs.buffered && cs.processed == iter_);
  if (options_.compute_enabled) {
    // Partial flux computed as soon as the block is current (overlap,
    // Section 5.3.2); the flux column overwrites the dead p half of the
    // receive buffer and waits for the canonical-order accumulation.
    std::vector<f32>& buf = card_buf_[cardinal_index(color)];
    const mesh::Face face = cardinal_face(color);
    const Dsd p_nb = Dsd::of(buf).window(0, nz_);
    const Dsd rho_nb = Dsd::of(buf).window(nz_, nz_);
    api.set_phase(obs::Phase::LocalCompute);
    compute_face_flux(api, p_nb, rho_nb,
                      Dsd::of(z_cardinal_[cardinal_index(color)]),
                      Dsd::of(trans_[static_cast<usize>(face)]), Dsd::of(p_),
                      Dsd::of(rho_), Dsd::of(z_self_), p_nb);
  }
  ++cs.processed;
  cs.buffered = false;
  ++cards_processed_this_iter_;
}

void TpfaPeProgram::process_diagonal(PeApi& api, Color color) {
  DiagonalState& ds = diag_[diagonal_index(color)];
  FVF_ASSERT(ds.buffered && ds.processed == iter_);
  if (options_.compute_enabled) {
    std::vector<f32>& buf = diag_buf_[diagonal_index(color)];
    const mesh::Face face = diagonal_face(color);
    const Dsd p_nb = Dsd::of(buf).window(0, nz_);
    const Dsd rho_nb = Dsd::of(buf).window(nz_, nz_);
    api.set_phase(obs::Phase::LocalCompute);
    compute_face_flux(api, p_nb, rho_nb,
                      Dsd::of(z_diagonal_[diagonal_index(color)]),
                      Dsd::of(trans_[static_cast<usize>(face)]), Dsd::of(p_),
                      Dsd::of(rho_), Dsd::of(z_self_), p_nb);
  }
  ++ds.processed;
  ds.buffered = false;
  ++diags_processed_this_iter_;
}

void TpfaPeProgram::finalize_residual(PeApi& api) {
  if (!options_.compute_enabled) {
    return;
  }
  api.set_phase(obs::Phase::LocalCompute);
  // Accumulate the ten faces in the canonical stencil order, exactly as
  // the serial reference's inner loop does, so the residual is
  // bit-identical. Vertical faces are computed here (they are local and
  // cheap); all communicated faces were computed on arrival.
  const Dsd r = Dsd::of(r_);
  const i32 m = nz_ - 1;
  for (const mesh::Face face : mesh::kAllFaces) {
    if (mesh::is_vertical(face)) {
      if (nz_ <= 1) {
        continue;
      }
      const Dsd p = Dsd::of(p_);
      const Dsd rho = Dsd::of(rho_);
      const Dsd z = Dsd::of(z_self_);
      const Dsd t = Dsd::of(trans_[static_cast<usize>(face)]);
      const Dsd flux = Dsd::of(zflux_).window(0, m);
      if (face == mesh::Face::ZMinus) {
        // Cells 1..nz-1, neighbor below.
        compute_face_flux(api, p.window(0, m), rho.window(0, m),
                          z.window(0, m), t.window(1, m), p.window(1, m),
                          rho.window(1, m), z.window(1, m), flux);
        accumulate_flux(api, flux, r.window(1, m));
      } else {
        // Cells 0..nz-2, neighbor above.
        compute_face_flux(api, p.window(1, m), rho.window(1, m),
                          z.window(1, m), t.window(0, m), p.window(0, m),
                          rho.window(0, m), z.window(0, m), flux);
        accumulate_flux(api, flux, r.window(0, m));
      }
      continue;
    }
    if (mesh::is_cardinal_xy(face)) {
      for (const Color c : kCardinalColors) {
        if (cardinal_face(c) == face &&
            card_[cardinal_index(c)].has_upstream) {
          const Dsd flux =
              Dsd::of(card_buf_[cardinal_index(c)]).window(0, nz_);
          accumulate_flux(api, flux, r);
        }
      }
      continue;
    }
    for (const Color c : kDiagonalColors) {
      if (diagonal_face(c) == face && diag_[diagonal_index(c)].expected) {
        const Dsd flux = Dsd::of(diag_buf_[diagonal_index(c)]).window(0, nz_);
        accumulate_flux(api, flux, r);
      }
    }
  }
}

void TpfaPeProgram::handle_cardinal(PeApi& api, Color color, Dir from,
                                    std::span<const u32> data) {
  FVF_REQUIRE(static_cast<i32>(data.size()) == 2 * nz_);
  FVF_REQUIRE_MSG(from == upstream_dir(color),
                  "cardinal block arrived from unexpected link");
  CardinalState& cs = card_[cardinal_index(color)];
  const i32 tag = cs.received;
  ++cs.received;
  FVF_REQUIRE_MSG(!cs.buffered, "cardinal receive buffer overrun");
  FVF_REQUIRE_MSG(tag <= iter_ + 1, "neighbor ran more than 1 iteration ahead");

  // Drain the wavelets into PE memory (the 16 FMOVs/cell of Table 4).
  std::vector<f32>& buf = card_buf_[cardinal_index(color)];
  api.fmovs(Dsd::of(buf), FabricDsd::of(data));
  cs.buffered = true;

  // Intermediary role (Figure 5): forward the block to the rotated
  // diagonal target immediately, overlapping our own partial flux.
  if (options_.diagonals_enabled) {
    api.send(diagonal_forward_color(color),
             std::span<const f32>(buf.data(), static_cast<usize>(nz_)),
             std::span<const f32>(buf.data() + nz_,
                                  static_cast<usize>(nz_)));
  }

  if (tag == iter_) {
    process_cardinal(api, color);
    check_completion(api);
  }
}

void TpfaPeProgram::handle_diagonal(PeApi& api, Color color, Dir from,
                                    std::span<const u32> data) {
  FVF_REQUIRE(static_cast<i32>(data.size()) == 2 * nz_);
  FVF_REQUIRE_MSG(from == upstream_dir(color),
                  "diagonal block arrived from unexpected link");
  DiagonalState& ds = diag_[diagonal_index(color)];
  FVF_REQUIRE_MSG(ds.expected, "unexpected diagonal block");
  const i32 tag = ds.received;
  ++ds.received;
  FVF_REQUIRE_MSG(!ds.buffered, "diagonal receive buffer overrun");
  FVF_REQUIRE_MSG(tag <= iter_ + 1, "corner ran more than 1 iteration ahead");

  std::vector<f32>& buf = diag_buf_[diagonal_index(color)];
  api.fmovs(Dsd::of(buf), FabricDsd::of(data));
  ds.buffered = true;

  if (tag == iter_) {
    process_diagonal(api, color);
    check_completion(api);
  }
}

void TpfaPeProgram::handle_control(PeApi& api, Color color) {
  CardinalState& cs = card_[cardinal_index(color)];
  ++cs.controls;
  // Phase-2 senders transmit when their upstream's command arrives and
  // their column state is current; early commands (the upstream running
  // one iteration ahead) are honored at the next iteration boundary in
  // begin_iteration. Completing an iteration is gated on having sent
  // (check_completion), so the column state can never advance past an
  // unsent block.
  if (!cs.phase1_sender && cs.sends == iter_ && cs.controls > cs.sends) {
    send_block(api, color);
    check_completion(api);
  }
}

std::string TpfaPeProgram::debug_state() const {
  std::ostringstream os;
  os << "PE(" << coord().x << ',' << coord().y << ") iter=" << iter_
     << " cards=" << cards_processed_this_iter_ << '/' << expected_cards_
     << " diags=" << diags_processed_this_iter_ << '/' << expected_diags_;
  for (const Color c : kCardinalColors) {
    const CardinalState& cs = card_[cardinal_index(c)];
    os << " | c" << static_cast<int>(c.id())
       << (cs.phase1_sender ? " p1" : " p2") << " rx=" << cs.received
       << " proc=" << cs.processed << " ctl=" << cs.controls
       << " tx=" << cs.sends << (cs.buffered ? " buf" : "");
  }
  for (const Color c : kDiagonalColors) {
    const DiagonalState& ds = diag_[diagonal_index(c)];
    if (ds.expected) {
      os << " | d" << static_cast<int>(c.id()) << " rx=" << ds.received
         << " proc=" << ds.processed << (ds.buffered ? " buf" : "");
    }
  }
  return os.str();
}

void TpfaPeProgram::check_completion(PeApi& api) {
  // An iteration is complete when all expected neighbor blocks have been
  // consumed AND this PE has sent its own block on every cardinal color —
  // otherwise the pressure column could advance while a downstream
  // neighbor still waits for the current state (the send obligation).
  const auto all_sends_done = [this] {
    for (const Color c : kCardinalColors) {
      if (card_[cardinal_index(c)].sends != iter_ + 1) {
        return false;
      }
    }
    return true;
  };
  while (iter_ < options_.iterations &&
         cards_processed_this_iter_ == expected_cards_ &&
         diags_processed_this_iter_ == expected_diags_ && all_sends_done()) {
    finalize_residual(api);
    ++iter_;
    if (iter_ == options_.iterations) {
      api.signal_done();
      return;
    }
    begin_iteration(api);
  }
}

}  // namespace fvf::core
