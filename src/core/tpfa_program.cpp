#include "core/tpfa_program.hpp"

#include <memory>

#include "common/assert.hpp"
#include "mesh/fields.hpp"
#include "physics/flux.hpp"
#include "spec/compile.hpp"

namespace fvf::core {

using namespace dataflow;

namespace {

using wse::Dsd;
using wse::PeApi;

}  // namespace

/// The physics half of the TPFA program: Algorithm 1's arithmetic only.
/// Every communication decision (roles, routes, sends, buffering,
/// completion) lives in the spec engine; this kernel computes fluxes on
/// the blocks the engine hands it, in the exact DSD-op order of the
/// original hand-written program (Table 4 derives from these calls).
class TpfaKernel final : public spec::StencilKernel {
 public:
  TpfaKernel(Coord2 coord, Extents3 mesh_extents, TpfaKernelOptions options,
             physics::FluidProperties fluid, PeColumnData data)
      : coord_(coord),
        mesh_extents_(mesh_extents),
        options_(options),
        fluid_(fluid),
        nz_(mesh_extents.nz) {
    FVF_REQUIRE(static_cast<i32>(data.pressure.size()) == nz_);
    FVF_REQUIRE(static_cast<i32>(data.elevation.size()) == nz_);

    const physics::KernelConstants constants =
        physics::make_kernel_constants(fluid_);
    gravity_f32_ = 2.0f * constants.half_g;
    inv_mu_f32_ = constants.inv_mu;

    p_ = std::move(data.pressure);
    z_self_ = std::move(data.elevation);
    rho_.assign(static_cast<usize>(nz_), 0.0f);
    r_.assign(static_cast<usize>(nz_), 0.0f);
    z_cardinal_ = std::move(data.elevation_cardinal);
    z_diagonal_ = std::move(data.elevation_diagonal);
    trans_ = std::move(data.trans);
    for (const auto& t : trans_) {
      FVF_REQUIRE(static_cast<i32>(t.size()) == nz_);
    }

    const usize scratch_count = options_.reuse_buffers ? 4 : 13;
    scratch_.resize(scratch_count);
    for (auto& s : scratch_) {
      s.assign(static_cast<usize>(nz_), 0.0f);
    }
    zflux_.assign(static_cast<usize>(nz_), 0.0f);

    // Face -> neighbor-elevation column lookup (static geometry).
    z_nb_of_face_.fill(nullptr);
    for (const wse::Color c : kCardinalColors) {
      z_nb_of_face_[static_cast<usize>(cardinal_face(c))] =
          &z_cardinal_[cardinal_index(c)];
    }
    for (const wse::Color c : kDiagonalColors) {
      z_nb_of_face_[static_cast<usize>(diagonal_face(c))] =
          &z_diagonal_[diagonal_index(c)];
    }
  }

  [[nodiscard]] std::span<const f32> residual() const noexcept { return r_; }
  [[nodiscard]] std::span<const f32> pressure() const noexcept { return p_; }

  void local_compute(PeApi& api, i32 round) override {
    if (!options_.compute_enabled) {
      return;
    }
    api.set_phase(obs::Phase::LocalCompute);
    const usize n = static_cast<usize>(nz_);

    // Pressure advance between applications of Algorithm 1 (matches
    // mesh::advance_pressure on the global array element-for-element).
    if (round > 0) {
      for (usize z = 0; z < n; ++z) {
        const i64 linear =
            mesh_extents_.linear(coord_.x, coord_.y, static_cast<i32>(z));
        p_[z] += mesh::pressure_bump(linear, round - 1);
      }
      api.transcendental_ops(n);
      api.scalar_ops(2 * n);
    }

    // EOS pass (Eq. 5). Accounted outside the Table 4 instruction
    // classes, as in the paper.
    for (usize z = 0; z < n; ++z) {
      rho_[z] = fluid_.density_f32(p_[z]);
    }
    api.transcendental_ops(n);
    api.scalar_ops(3 * n);

    api.zeros(Dsd::of(r_));
  }

  [[nodiscard]] SendHalves send_halves() const override {
    return {p_, rho_};
  }

  void process_block(PeApi& api, mesh::Face face, Dsd block) override {
    if (!options_.compute_enabled) {
      return;
    }
    // Partial flux computed as soon as the block is current (overlap,
    // Section 5.3.2); the flux column overwrites the dead p half of the
    // receive buffer and waits for the canonical-order accumulation.
    const Dsd p_nb = block.window(0, nz_);
    const Dsd rho_nb = block.window(nz_, nz_);
    api.set_phase(obs::Phase::LocalCompute);
    compute_face_flux(api, p_nb, rho_nb,
                      Dsd::of(*z_nb_of_face_[static_cast<usize>(face)]),
                      Dsd::of(trans_[static_cast<usize>(face)]), Dsd::of(p_),
                      Dsd::of(rho_), Dsd::of(z_self_), p_nb);
  }

  void finalize_round(PeApi& api, const FaceBlocks& blocks) override {
    if (!options_.compute_enabled) {
      return;
    }
    api.set_phase(obs::Phase::LocalCompute);
    // Accumulate the ten faces in the canonical stencil order, exactly as
    // the serial reference's inner loop does, so the residual is
    // bit-identical. Vertical faces are computed here (they are local and
    // cheap); all communicated faces were computed on arrival.
    const Dsd r = Dsd::of(r_);
    const i32 m = nz_ - 1;
    for (const mesh::Face face : mesh::kAllFaces) {
      if (mesh::is_vertical(face)) {
        if (nz_ <= 1) {
          continue;
        }
        const Dsd p = Dsd::of(p_);
        const Dsd rho = Dsd::of(rho_);
        const Dsd z = Dsd::of(z_self_);
        const Dsd t = Dsd::of(trans_[static_cast<usize>(face)]);
        const Dsd flux = Dsd::of(zflux_).window(0, m);
        if (face == mesh::Face::ZMinus) {
          // Cells 1..nz-1, neighbor below.
          compute_face_flux(api, p.window(0, m), rho.window(0, m),
                            z.window(0, m), t.window(1, m), p.window(1, m),
                            rho.window(1, m), z.window(1, m), flux);
          accumulate_flux(api, flux, r.window(1, m));
        } else {
          // Cells 0..nz-2, neighbor above.
          compute_face_flux(api, p.window(1, m), rho.window(1, m),
                            z.window(1, m), t.window(0, m), p.window(0, m),
                            rho.window(0, m), z.window(0, m), flux);
          accumulate_flux(api, flux, r.window(0, m));
        }
        continue;
      }
      const auto& block = blocks[static_cast<usize>(face)];
      if (block) {
        accumulate_flux(api, block->window(0, nz_), r);
      }
    }
  }

 private:
  [[nodiscard]] Dsd scratch(usize slot, i32 length) noexcept {
    return Dsd::of(scratch_[slot]).window(0, length);
  }

  /// The TPFA face kernel over a column window: computes the flux column
  /// into `flux_out` (12 DSD ops). Every implementation-visible FP
  /// instruction is a DSD op charged to the PE's counters. `flux_out`
  /// may alias `p_nb`, which is dead by the time the flux is written.
  void compute_face_flux(PeApi& api, Dsd p_nb, Dsd rho_nb, Dsd z_nb,
                         Dsd trans, Dsd p_self, Dsd rho_self, Dsd z_self,
                         Dsd flux_out) {
    const i32 n = p_nb.length;
    // Scratch schedule. With buffer reuse (Section 5.3.1) four columns
    // are cycled through like hand-allocated registers; without it,
    // every intermediate gets its own column. Numerics are identical.
    usize next = 0;
    const auto fresh = [&]() -> Dsd {
      const usize slot = options_.reuse_buffers ? (next % 4) : next;
      ++next;
      return scratch(slot, n);
    };

    // Mirrors physics::tpfa_face_flux operation-for-operation (see
    // flux.hpp for the Table 4 instruction budget).
    Dsd dz = fresh();
    api.fsubs(dz, z_nb, z_self);        // FSUB: dz = z_L - z_K
    Dsd dp = fresh();
    api.fsubs(dp, p_nb, p_self);        // FSUB: dp = p_L - p_K
    Dsd rho_avg = fresh();
    api.fadds(rho_avg, rho_self, rho_nb);  // FADD: rho_K + rho_L
    api.fmuls(rho_avg, rho_avg, 0.5f);  // FMUL: * 0.5
    api.fmuls(dz, dz, gravity_f32_);    // FMUL: g * dz
    Dsd dphi = options_.reuse_buffers ? dz : fresh();
    api.fmacs(dphi, rho_avg, dz, dp);   // FMA: dphi = rho_avg*(g dz) + dp
    Dsd cmp = options_.reuse_buffers ? dp : fresh();
    api.fsubs(cmp, dphi, 0.0f);         // FSUB: upwind compare vs zero
    Dsd lam_self = options_.reuse_buffers ? rho_avg : fresh();
    api.fmuls(lam_self, rho_self, inv_mu_f32_);  // FMUL: rho_K / mu
    Dsd lam_neib = fresh();
    api.fmuls(lam_neib, rho_nb, inv_mu_f32_);    // FMUL: rho_L / mu
    Dsd lam = options_.reuse_buffers ? cmp : fresh();
    api.selects(lam, cmp, lam_self, lam_neib);   // predicated move (Eq. 4)
    Dsd t_lam = options_.reuse_buffers ? lam : fresh();
    api.fmuls(t_lam, trans, lam);       // FMUL: T * lambda
    // The flux lands in flux_out (typically the dead p half of the
    // block's receive buffer), where it waits for the canonical-order
    // accumulation.
    api.fmuls(flux_out, t_lam, dphi);   // FMUL: F = T lambda dphi
  }

  /// r -= (-flux): the FNEG + FSUB accumulation pair of the face budget.
  void accumulate_flux(PeApi& api, Dsd flux, Dsd r) {
    Dsd neg = scratch(0, flux.length);
    api.fnegs(neg, flux);  // FNEG
    api.fsubs(r, r, neg);  // FSUB: r -= (-F)
  }

  Coord2 coord_;
  Extents3 mesh_extents_;
  TpfaKernelOptions options_;
  physics::FluidProperties fluid_;
  f32 gravity_f32_ = 0.0f;
  f32 inv_mu_f32_ = 0.0f;
  i32 nz_ = 0;

  std::vector<f32> p_;
  std::vector<f32> rho_;
  std::vector<f32> r_;
  std::vector<f32> z_self_;
  std::array<std::vector<f32>, 4> z_cardinal_;
  std::array<std::vector<f32>, 4> z_diagonal_;
  std::array<std::vector<f32>, mesh::kFaceCount> trans_;
  /// Face -> neighbor elevation column (static geometry lookup).
  std::array<std::vector<f32>*, mesh::kFaceCount> z_nb_of_face_{};
  std::vector<std::vector<f32>> scratch_;
  std::vector<f32> zflux_;  ///< vertical-face flux column
};

spec::StencilSpec make_tpfa_spec(const TpfaKernelOptions& options) {
  spec::StencilSpec s;
  s.name = "tpfa";
  s.exchange = spec::ExchangeKind::SwitchProtocol;
  s.shape = options.diagonals_enabled ? spec::StencilShape::NinePoint
                                      : spec::StencilShape::FivePoint;
  s.block_words_per_cell = 2;  // [p | rho]
  s.rounds = options.iterations;
  s.claims.cardinal = "tpfa cardinal exchange";
  s.claims.diagonal = "tpfa diagonal forwards";
  // The complete ordered per-PE memory layout (the engine reserves these
  // verbatim; the order and tags are part of the program's contract with
  // the lint memory report and the footprint tests).
  const i32 scratch_columns = options.reuse_buffers ? 4 : 13;
  s.fields = {
      {"code+runtime", spec::FieldRole::Code, 0,
       TpfaPeProgram::kCodeFootprintBytes},
      {"p/rho/r columns", spec::FieldRole::State, 3, 0},
      {"own elevations", spec::FieldRole::State, 1, 0},
      {"neighbor elevations", spec::FieldRole::State, 8, 0},
      {"transmissibilities", spec::FieldRole::State,
       static_cast<i32>(mesh::kFaceCount), 0},
      {"cardinal recv buffers", spec::FieldRole::CardinalRecv, 8, 0},
      {"diagonal recv buffers", spec::FieldRole::DiagonalRecv, 8, 0},
      {"scratch columns", spec::FieldRole::State, scratch_columns, 0},
      {"vertical flux column", spec::FieldRole::State, 1, 0},
  };
  return s;
}

TpfaPeProgram::TpfaPeProgram(Coord2 coord, Coord2 fabric_size,
                             Extents3 mesh_extents, TpfaKernelOptions options,
                             physics::FluidProperties fluid, PeColumnData data)
    : SpecPeProgram(coord, fabric_size, mesh_extents.nz,
                    spec::compile(make_tpfa_spec(options)), {},
                    std::make_unique<TpfaKernel>(coord, mesh_extents, options,
                                                 fluid, std::move(data))),
      physics_(static_cast<TpfaKernel*>(kernel())) {}

std::span<const f32> TpfaPeProgram::residual() const noexcept {
  return physics_->residual();
}

std::span<const f32> TpfaPeProgram::pressure() const noexcept {
  return physics_->pressure();
}

usize TpfaPeProgram::data_footprint_bytes(i32 nz, bool reuse_buffers) {
  const usize n = static_cast<usize>(nz);
  usize words = 0;
  words += 3 * n;                      // p, rho, r
  words += n;                          // own elevations
  words += 8 * n;                      // 8 neighbor elevation columns
  words += mesh::kFaceCount * n;       // 10 transmissibility columns
  words += 4 * 2 * n;                  // 4 cardinal receive buffers
  words += 4 * 2 * n;                  // 4 diagonal receive buffers
  words += (reuse_buffers ? 4 : 13) * n;  // scratch columns
  words += n;                          // vertical-face flux column
  return words * sizeof(f32);
}

}  // namespace fvf::core
