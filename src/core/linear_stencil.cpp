#include "core/linear_stencil.hpp"

#include <cmath>
#include <numbers>

#include "common/assert.hpp"

namespace fvf::core {

void LinearStencil::apply_f64(std::span<const f64> u,
                              std::span<f64> out) const {
  const i64 n = extents.cell_count();
  FVF_REQUIRE(static_cast<i64>(u.size()) == n);
  FVF_REQUIRE(static_cast<i64>(out.size()) == n);
  for (i32 z = 0; z < extents.nz; ++z) {
    for (i32 y = 0; y < extents.ny; ++y) {
      for (i32 x = 0; x < extents.nx; ++x) {
        const i64 i = extents.linear(x, y, z);
        f64 acc =
            static_cast<f64>(diag(x, y, z)) * u[static_cast<usize>(i)];
        for (const mesh::Face f : mesh::kAllFaces) {
          const f64 c = offdiag[static_cast<usize>(f)](x, y, z);
          if (c == 0.0) {
            continue;
          }
          const Coord3 off = mesh::face_offset(f);
          const i64 j = extents.linear(x + off.x, y + off.y, z + off.z);
          acc += c * u[static_cast<usize>(j)];
        }
        out[static_cast<usize>(i)] = acc;
      }
    }
  }
}

f64 LinearStencil::max_asymmetry() const {
  f64 worst = 0.0;
  for (i32 z = 0; z < extents.nz; ++z) {
    for (i32 y = 0; y < extents.ny; ++y) {
      for (i32 x = 0; x < extents.nx; ++x) {
        for (const mesh::Face f : mesh::kAllFaces) {
          const Coord3 off = mesh::face_offset(f);
          const i32 nx = x + off.x;
          const i32 ny = y + off.y;
          const i32 nz = z + off.z;
          if (!extents.contains(nx, ny, nz)) {
            continue;
          }
          worst = std::max(
              worst, std::abs(static_cast<f64>(
                                  offdiag[static_cast<usize>(f)](x, y, z)) -
                              offdiag[static_cast<usize>(mesh::opposite(f))](
                                  nx, ny, nz)));
        }
      }
    }
  }
  return worst;
}

LinearStencil build_linear_stencil(const physics::FlowProblem& problem,
                                   f64 accumulation_dt) {
  const Extents3 ext = problem.extents();
  LinearStencil stencil;
  stencil.extents = ext;
  stencil.diag = Array3<f32>(ext);
  for (auto& c : stencil.offdiag) {
    c = Array3<f32>(ext);
  }

  const physics::FluidProperties& fluid = problem.fluid();
  const physics::RockProperties& rock = problem.rock();
  const f64 lambda_bar = fluid.reference_density / fluid.viscosity;
  const f64 sigma =
      accumulation_dt > 0.0
          ? problem.mesh().cell_volume() * rock.reference_porosity *
                (fluid.compressibility + rock.rock_compressibility) *
                fluid.reference_density / accumulation_dt
          : 0.0;

  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        f64 diag = sigma;
        for (const mesh::Face f : mesh::kAllFaces) {
          const f64 g =
              static_cast<f64>(problem.transmissibility().at(x, y, z, f)) *
              lambda_bar;
          diag += g;
          stencil.offdiag[static_cast<usize>(f)](x, y, z) =
              static_cast<f32>(-g);
        }
        stencil.diag(x, y, z) = static_cast<f32>(diag);
      }
    }
  }
  return stencil;
}

ScaledSystem jacobi_scale(const LinearStencil& stencil) {
  const Extents3 ext = stencil.extents;
  ScaledSystem scaled;
  scaled.stencil.extents = ext;
  scaled.stencil.diag = Array3<f32>(ext);
  for (auto& c : scaled.stencil.offdiag) {
    c = Array3<f32>(ext);
  }
  scaled.inv_sqrt_diag = Array3<f32>(ext);

  for (i64 i = 0; i < ext.cell_count(); ++i) {
    FVF_REQUIRE_MSG(stencil.diag[i] > 0.0f,
                    "Jacobi scaling requires a positive diagonal");
    scaled.inv_sqrt_diag[i] =
        1.0f / std::sqrt(stencil.diag[i]);
  }
  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        scaled.stencil.diag(x, y, z) = 1.0f;
        for (const mesh::Face f : mesh::kAllFaces) {
          const Coord3 off = mesh::face_offset(f);
          const i32 nx = x + off.x;
          const i32 ny = y + off.y;
          const i32 nz = z + off.z;
          if (!ext.contains(nx, ny, nz)) {
            continue;
          }
          // Grouped as c * (s_K * s_L) so the scaled coefficient is
          // bitwise symmetric across the face (multiplication is
          // commutative; association order is not).
          const f64 s_pair =
              static_cast<f64>(scaled.inv_sqrt_diag(x, y, z)) *
              static_cast<f64>(scaled.inv_sqrt_diag(nx, ny, nz));
          scaled.stencil.offdiag[static_cast<usize>(f)](x, y, z) =
              static_cast<f32>(
                  static_cast<f64>(
                      stencil.offdiag[static_cast<usize>(f)](x, y, z)) *
                  s_pair);
        }
      }
    }
  }
  return scaled;
}

Array3<f32> scale_rhs(const ScaledSystem& scaled, const Array3<f32>& rhs) {
  FVF_REQUIRE(rhs.extents() == scaled.stencil.extents);
  Array3<f32> out(rhs.extents());
  for (i64 i = 0; i < rhs.size(); ++i) {
    out[i] = rhs[i] * scaled.inv_sqrt_diag[i];
  }
  return out;
}

Array3<f32> unscale_solution(const ScaledSystem& scaled,
                             const Array3<f32>& y) {
  FVF_REQUIRE(y.extents() == scaled.stencil.extents);
  Array3<f32> out(y.extents());
  for (i64 i = 0; i < y.size(); ++i) {
    out[i] = y[i] * scaled.inv_sqrt_diag[i];
  }
  return out;
}

ManufacturedSystem manufacture_solution(const LinearStencil& stencil) {
  const Extents3 ext = stencil.extents;
  ManufacturedSystem out;
  out.exact = Array3<f32>(ext);
  out.rhs = Array3<f32>(ext);

  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        const f64 fx = ext.nx > 1 ? static_cast<f64>(x) / (ext.nx - 1) : 0.0;
        const f64 fy = ext.ny > 1 ? static_cast<f64>(y) / (ext.ny - 1) : 0.0;
        const f64 fz = ext.nz > 1 ? static_cast<f64>(z) / (ext.nz - 1) : 0.0;
        out.exact(x, y, z) = static_cast<f32>(
            std::cos(std::numbers::pi * fx) * std::cos(std::numbers::pi * fy) +
            0.5 * std::cos(std::numbers::pi * fz));
      }
    }
  }

  const i64 n = ext.cell_count();
  std::vector<f64> u(static_cast<usize>(n)), b(static_cast<usize>(n));
  for (i64 i = 0; i < n; ++i) {
    u[static_cast<usize>(i)] = out.exact[i];
  }
  stencil.apply_f64(u, b);
  for (i64 i = 0; i < n; ++i) {
    out.rhs[i] = static_cast<f32>(b[static_cast<usize>(i)]);
  }
  return out;
}

}  // namespace fvf::core
