#include "core/kernel_registry.hpp"

#include "core/tpfa_program.hpp"
#include "core/transport_program.hpp"
#include "spec/heat.hpp"
#include "spec/registry.hpp"

namespace fvf::core {

void register_builtin_kernels() {
  spec::register_kernel(
      {"tpfa", true,
       "two-point flux pressure iteration (switch-protocol exchange)",
       [] { return spec::compile(make_tpfa_spec({})); }});
  spec::register_kernel(
      {"cg", false, "conjugate-gradient pressure solve (legacy path)",
       nullptr});
  spec::register_kernel(
      {"transport", true,
       "explicit saturation transport with CFL dt min-reduce",
       [] { return spec::compile(make_transport_spec({})); }});
  spec::register_kernel(
      {"wave", false, "second-order acoustic wave kernel (legacy path)",
       nullptr});
  spec::register_kernel(
      {"impes", false, "IMPES pressure/transport loop (legacy path)",
       nullptr});
  spec::register_kernel(
      {"heat", true, "2D heat diffusion, 9-point stencil (spec-only)",
       [] { return spec::compile(spec::make_heat_spec({})); }});
}

}  // namespace fvf::core
