/// \file kernel_registry.hpp
/// \brief Registers the shipped program inventory with the
///        `spec::registry`, so tools resolve `--program` against one
///        authoritative list.
#pragma once

namespace fvf::core {

/// Registers every shipped kernel (tpfa, cg, transport, wave, impes,
/// heat) with `spec::register_kernel`. Idempotent; call once per tool
/// before consulting the registry.
void register_builtin_kernels();

}  // namespace fvf::core
