#include "core/perf_model.hpp"

#include "common/assert.hpp"

namespace fvf::core {

f64 measure_cycles_per_iteration(const physics::FlowProblem& problem,
                                 const DataflowOptions& options) {
  const DataflowResult result = run_dataflow_tpfa(problem, options);
  FVF_REQUIRE_MSG(result.ok(), "calibration run failed: "
                                   << (result.errors.empty()
                                           ? "unknown"
                                           : result.errors.front()));
  return result.makespan_cycles / static_cast<f64>(options.iterations);
}

CycleModel calibrate_cycle_model(const CalibrationSpec& spec,
                                 const DataflowOptions& base) {
  FVF_REQUIRE(spec.nz_high > spec.nz_low);

  DataflowOptions options = base;
  options.iterations = spec.iterations;
  options.kernel.compute_enabled = !spec.comm_only;

  const auto run_at = [&](i32 nz) {
    const physics::FlowProblem problem = physics::make_benchmark_problem(
        Extents3{spec.fabric_nx, spec.fabric_ny, nz}, spec.seed);
    return measure_cycles_per_iteration(problem, options);
  };

  const f64 low = run_at(spec.nz_low);
  const f64 high = run_at(spec.nz_high);

  CycleModel model;
  model.cycles_per_layer =
      (high - low) / static_cast<f64>(spec.nz_high - spec.nz_low);
  model.base_cycles =
      low - model.cycles_per_layer * static_cast<f64>(spec.nz_low);
  return model;
}

}  // namespace fvf::core
