#include "core/fabric_mapping.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace fvf::core {

void FabricMapping::validate(i64 cell_count) const {
  FVF_REQUIRE(width > 0 && height > 0);
  FVF_REQUIRE(static_cast<i64>(pe_of_cell.size()) == cell_count);
  for (const Coord2 pe : pe_of_cell) {
    FVF_REQUIRE(pe.x >= 0 && pe.x < width);
    FVF_REQUIRE(pe.y >= 0 && pe.y < height);
  }
}

u64 morton_encode(u32 x, u32 y) {
  const auto spread = [](u64 v) {
    v &= 0xFFFFFFFFull;
    v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
    v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
    v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
    v = (v | (v << 2)) & 0x3333333333333333ull;
    v = (v | (v << 1)) & 0x5555555555555555ull;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

Coord2 morton_decode(u64 code) {
  const auto compact = [](u64 v) {
    v &= 0x5555555555555555ull;
    v = (v | (v >> 1)) & 0x3333333333333333ull;
    v = (v | (v >> 2)) & 0x0F0F0F0F0F0F0F0Full;
    v = (v | (v >> 4)) & 0x00FF00FF00FF00FFull;
    v = (v | (v >> 8)) & 0x0000FFFF0000FFFFull;
    v = (v | (v >> 16)) & 0x00000000FFFFFFFFull;
    return v;
  };
  return Coord2{static_cast<i32>(compact(code)),
                static_cast<i32>(compact(code >> 1))};
}

FabricMapping column_mapping(i32 nx, i32 ny, i32 nz) {
  FVF_REQUIRE(nx > 0 && ny > 0 && nz > 0);
  FabricMapping mapping;
  mapping.name = "column (paper)";
  mapping.width = nx;
  mapping.height = ny;
  mapping.pe_of_cell.reserve(static_cast<usize>(nx) * ny * nz);
  // Linear index order matches Extents3: x innermost, z outermost.
  for (i32 z = 0; z < nz; ++z) {
    for (i32 y = 0; y < ny; ++y) {
      for (i32 x = 0; x < nx; ++x) {
        mapping.pe_of_cell.push_back(Coord2{x, y});
      }
    }
  }
  return mapping;
}

FabricMapping morton_mapping(i64 cell_count, i32 width, i32 height) {
  FVF_REQUIRE(cell_count > 0 && width > 0 && height > 0);
  FabricMapping mapping;
  mapping.name = "Morton SFC";
  mapping.width = width;
  mapping.height = height;
  mapping.pe_of_cell.reserve(static_cast<usize>(cell_count));

  // Enumerate the fabric's tiles in Morton order (skipping codes that
  // land outside a non-square fabric), then pack consecutive cells onto
  // consecutive tiles.
  std::vector<Coord2> tiles;
  tiles.reserve(static_cast<usize>(width) * static_cast<usize>(height));
  const u64 side = static_cast<u64>(
      std::bit_ceil(static_cast<u32>(std::max(width, height))));
  for (u64 code = 0; code < side * side; ++code) {
    const Coord2 pe = morton_decode(code);
    if (pe.x < width && pe.y < height) {
      tiles.push_back(pe);
    }
  }
  const i64 pes = static_cast<i64>(tiles.size());
  const i64 per_pe = (cell_count + pes - 1) / pes;
  for (i64 c = 0; c < cell_count; ++c) {
    mapping.pe_of_cell.push_back(tiles[static_cast<usize>(c / per_pe)]);
  }
  return mapping;
}

FabricMapping random_mapping(i64 cell_count, i32 width, i32 height,
                             u64 seed) {
  FVF_REQUIRE(cell_count > 0 && width > 0 && height > 0);
  FabricMapping mapping;
  mapping.name = "random";
  mapping.width = width;
  mapping.height = height;
  mapping.pe_of_cell.reserve(static_cast<usize>(cell_count));
  Xoshiro256 rng(seed);
  for (i64 c = 0; c < cell_count; ++c) {
    mapping.pe_of_cell.push_back(
        Coord2{static_cast<i32>(rng.below(static_cast<u64>(width))),
               static_cast<i32>(rng.below(static_cast<u64>(height)))});
  }
  return mapping;
}

MappingCommCost evaluate_mapping(const physics::UnstructuredMesh& mesh,
                                 const FabricMapping& mapping) {
  mapping.validate(mesh.cell_count);
  MappingCommCost cost;

  std::vector<i64> cells_per_pe(
      static_cast<usize>(mapping.width) * static_cast<usize>(mapping.height),
      0);
  for (const Coord2 pe : mapping.pe_of_cell) {
    ++cells_per_pe[static_cast<usize>(pe.y) *
                       static_cast<usize>(mapping.width) +
                   static_cast<usize>(pe.x)];
  }
  cost.max_cells_per_pe = static_cast<f64>(
      *std::max_element(cells_per_pe.begin(), cells_per_pe.end()));

  for (const physics::FaceConnection& face : mesh.faces) {
    const Coord2 a = mapping.pe_of_cell[static_cast<usize>(face.cell_a)];
    const Coord2 b = mapping.pe_of_cell[static_cast<usize>(face.cell_b)];
    const i32 dx = std::abs(a.x - b.x);
    const i32 dy = std::abs(a.y - b.y);
    const i32 hops = dx + dy;
    cost.total_hops += hops;
    if (hops == 0) {
      ++cost.local_edges;
    } else if (hops == 1) {
      ++cost.neighbor_edges;
    } else if (hops == 2 && dx == 1 && dy == 1) {
      ++cost.diagonal_edges;
    } else {
      ++cost.far_edges;
    }
  }
  return cost;
}

}  // namespace fvf::core
