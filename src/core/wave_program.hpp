/// \file wave_program.hpp
/// \brief Second dataflow application: explicit acoustic wave propagation
///        on the simulated wafer-scale engine.
///
/// The paper's Discussion (Section 8) argues its diagonal communication
/// pattern "enables the implementation of other types of applications,
/// such as solving the acoustic wave equation on tilted transversely
/// isotropic media, that also require fetching data from diagonal
/// neighbors". This program demonstrates exactly that: a second-order
/// leapfrog scheme
///
///   u^{t+1} = 2 u^t - u^{t-1} - kappa * (A u^t)
///
/// whose spatial operator A is any 11-point LinearStencil (including the
/// four X-Y diagonal couplings), applied each step through the same
/// cardinal + diagonal halo exchange as the TPFA flux kernel.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "common/array3d.hpp"
#include "core/linear_stencil.hpp"
#include "dataflow/fabric_harness.hpp"
#include "dataflow/iterative_kernel.hpp"

namespace fvf::core {

/// Wave-kernel options shared by every PE.
struct WaveKernelOptions {
  i32 timesteps = 1;
  f32 kappa = 1.0f;  ///< dt^2 c^2 scaling of the spatial operator
};

/// Per-PE column data for the wave program.
struct PeWaveData {
  std::vector<f32> u0;       ///< initial field, length Nz
  std::vector<f32> u_prev;   ///< field at t-1 (u0 for a standing start)
  std::array<std::vector<f32>, mesh::kFaceCount> offdiag;
  std::vector<f32> diag;
};

/// The per-PE leapfrog program.
class WavePeProgram final : public dataflow::IterativeKernelProgram {
 public:
  WavePeProgram(Coord2 coord, Coord2 fabric_size, i32 nz,
                WaveKernelOptions options, PeWaveData data,
                dataflow::HaloReliabilityOptions reliability = {});

  [[nodiscard]] std::span<const f32> field() const noexcept { return u_cur_; }
  [[nodiscard]] i32 completed_steps() const noexcept { return step_; }

 private:
  // IterativeKernelProgram phase hooks.
  void reserve_memory(wse::PeMemory& mem) override;
  void begin(wse::PeApi& api) override;
  void on_halo_block(wse::PeApi& api, mesh::Face face, wse::Dsd u_nb) override;
  void on_halo_complete(wse::PeApi& api) override;

  void start_step(wse::PeApi& api);

  i32 nz_;
  WaveKernelOptions options_;

  std::vector<f32> u_prev_;
  std::vector<f32> u_cur_;
  std::vector<f32> q_;  ///< A u^t accumulator
  std::array<std::vector<f32>, mesh::kFaceCount> offdiag_;
  std::vector<f32> diag_;
  i32 step_ = 0;
};

/// Launch options.
struct DataflowWaveOptions : dataflow::HarnessOptions {
  WaveKernelOptions kernel{};
  /// Halo ack/retransmit layer. Auto-enabled by run_dataflow_wave when
  /// the fault scenario can drop blocks (bit_flip_rate > 0).
  dataflow::HaloReliabilityOptions reliability{};
};

/// Result of a fabric wave run: full fabric accounting plus the field.
struct DataflowWaveResult : dataflow::RunInfo {
  Array3<f32> field;  ///< u at the final timestep
};

/// A loaded-but-not-run wave launch (see core/launcher.hpp::TpfaLoad).
/// The referenced stencil and initial field must outlive the load.
struct WaveLoad {
  std::unique_ptr<dataflow::FabricHarness> harness;
  dataflow::ProgramGrid<WavePeProgram> grid;
};

/// Claims the wave colors and loads the per-PE programs without running
/// the event engine — the fvf_lint entry point, and the first half of
/// run_dataflow_wave.
[[nodiscard]] WaveLoad load_dataflow_wave(const LinearStencil& stencil,
                                          const Array3<f32>& initial,
                                          const DataflowWaveOptions& options);

/// Runs `options.kernel.timesteps` leapfrog steps on the fabric.
[[nodiscard]] DataflowWaveResult run_dataflow_wave(
    const LinearStencil& stencil, const Array3<f32>& initial,
    const DataflowWaveOptions& options);

/// Host f64 reference of the same leapfrog iteration.
[[nodiscard]] Array3<f32> wave_reference_host(const LinearStencil& stencil,
                                              const Array3<f32>& initial,
                                              f32 kappa, i32 timesteps);

/// A centred Gaussian pulse initial condition.
[[nodiscard]] Array3<f32> gaussian_pulse(Extents3 extents, f64 amplitude,
                                         f64 sigma_cells);

}  // namespace fvf::core
