/// \file mapping_model.hpp
/// \brief Analytic comparison of the two problem-to-fabric mappings of
///        paper Figure 3: cell-based (chosen by the paper) vs face-based.
///
/// The paper states the cell-based approach "is the most straightforward
/// to map to fabric" and best leverages compute/memory/communication.
/// This model quantifies that choice: PEs required, per-PE memory,
/// fabric traffic, and flux computations per application of Algorithm 1.
///
/// Face-based assumptions (documented, conservative toward face-based):
/// one PE per owned-face column (5 owned face classes per cell column:
/// x+, y+, z+ and the two owned diagonals); each face PE receives the
/// two adjacent cell columns' (p, rho), computes each flux once, and
/// scatters the flux column to both adjacent cell PEs, which accumulate.
#pragma once

#include <string>

#include "common/types.hpp"

namespace fvf::core {

/// Resource cost of one mapping at a given problem size.
struct MappingCost {
  std::string name;
  i64 pes = 0;                      ///< processing elements required
  i64 words_per_pe = 0;             ///< resident f32 words per PE
  i64 fabric_words_per_iteration = 0;  ///< words delivered fabric-wide
  i64 flux_computations_per_iteration = 0;  ///< per-face kernel runs
};

/// The paper's cell-based mapping: PE (x, y) owns the whole Z column.
[[nodiscard]] MappingCost cell_based_cost(i32 nx, i32 ny, i32 nz);

/// The alternative face-based mapping.
[[nodiscard]] MappingCost face_based_cost(i32 nx, i32 ny, i32 nz);

}  // namespace fvf::core
