/// \file launcher.hpp
/// \brief Builds a simulated wafer-scale fabric from a FlowProblem, loads
///        the TPFA dataflow program onto every PE, runs it, and gathers
///        the results back to host arrays.
#pragma once

#include <array>
#include <string>

#include "common/array3d.hpp"
#include "core/tpfa_program.hpp"
#include "physics/problem.hpp"
#include "wse/fabric.hpp"

namespace fvf::core {

/// Launch configuration for a dataflow TPFA run.
struct DataflowOptions {
  i32 iterations = 1;
  TpfaKernelOptions kernel{};
  wse::FabricTimings timings{};
  wse::ExecutionOptions execution{};
  usize pe_memory_budget = wse::PeMemory::kDefaultBudget;
  /// Optional event recorder (communication-pattern capture). Installed
  /// via Fabric::set_tracer(TraceRecorder&) so the run report also
  /// carries the recorder's capacity-drop count. Must outlive the run.
  wse::TraceRecorder* trace = nullptr;
};

/// Result of a dataflow TPFA run.
struct DataflowResult {
  /// Flux residual gathered from all PEs after the final iteration.
  Array3<f32> residual;
  /// Final pressure (after iterations-1 advance steps).
  Array3<f32> pressure;
  /// Simulated device time for all iterations, from the fabric clock.
  f64 device_seconds = 0.0;
  f64 makespan_cycles = 0.0;
  /// Aggregate instruction/traffic counters over all PEs.
  wse::PeCounters counters{};
  /// Fabric-link wavelets per communication color (indices follow
  /// core/colors.hpp: 0-3 cardinal data, 4-7 diagonal forwards).
  std::array<u64, 8> color_traffic{};
  /// Peak per-PE memory footprint (bytes).
  usize max_pe_memory = 0;
  u64 events_processed = 0;
  /// Fault-injection outcome (all zero when injection is disabled).
  wse::FaultStats faults{};
  /// Trace accounting when a recorder was attached: records emitted by
  /// the engine and records the recorder dropped at capacity.
  u64 trace_events_emitted = 0;
  u64 trace_records_dropped = 0;
  /// Total errors raised vs. messages suppressed past the recording cap.
  u64 errors_total = 0;
  u64 errors_suppressed = 0;
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Extracts the per-PE column data for PE (x, y) from the global problem
/// (the "host memcpy" phase: initial pressure, static geometry, and
/// transmissibility columns).
[[nodiscard]] PeColumnData extract_column(const physics::FlowProblem& problem,
                                          i32 x, i32 y);

/// Runs `options.iterations` applications of Algorithm 1 on the simulated
/// fabric (one PE per mesh column) and gathers residual + pressure.
[[nodiscard]] DataflowResult run_dataflow_tpfa(
    const physics::FlowProblem& problem, const DataflowOptions& options);

}  // namespace fvf::core
