/// \file launcher.hpp
/// \brief Builds a simulated wafer-scale fabric from a FlowProblem, loads
///        the TPFA dataflow program onto every PE, runs it, and gathers
///        the results back to host arrays.
#pragma once

#include <memory>

#include "common/array3d.hpp"
#include "core/tpfa_program.hpp"
#include "dataflow/fabric_harness.hpp"
#include "physics/problem.hpp"

namespace fvf::core {

/// Launch configuration for a dataflow TPFA run.
struct DataflowOptions : dataflow::HarnessOptions {
  i32 iterations = 1;
  TpfaKernelOptions kernel{};
};

/// Result of a dataflow TPFA run: full fabric accounting plus the
/// gathered fields.
struct DataflowResult : dataflow::RunInfo {
  /// Flux residual gathered from all PEs after the final iteration.
  Array3<f32> residual;
  /// Final pressure (after iterations-1 advance steps).
  Array3<f32> pressure;
};

/// Extracts the per-PE column data for PE (x, y) from the global problem
/// (the "host memcpy" phase: initial pressure, static geometry, and
/// transmissibility columns).
[[nodiscard]] PeColumnData extract_column(const physics::FlowProblem& problem,
                                          i32 x, i32 y);

/// A loaded-but-not-run TPFA launch: the harness (for static lint or an
/// actual run) plus the typed program grid for gathering results. The
/// referenced FlowProblem must outlive the load (the lint probe factory
/// extracts columns from it on demand).
struct TpfaLoad {
  std::unique_ptr<dataflow::FabricHarness> harness;
  dataflow::ProgramGrid<TpfaPeProgram> grid;
};

/// Claims the TPFA colors and loads the per-PE programs without running
/// the event engine — the fvf_lint entry point, and the first half of
/// run_dataflow_tpfa.
[[nodiscard]] TpfaLoad load_dataflow_tpfa(const physics::FlowProblem& problem,
                                          const DataflowOptions& options);

/// Runs `options.iterations` applications of Algorithm 1 on the simulated
/// fabric (one PE per mesh column) and gathers residual + pressure.
[[nodiscard]] DataflowResult run_dataflow_tpfa(
    const physics::FlowProblem& problem, const DataflowOptions& options);

}  // namespace fvf::core
