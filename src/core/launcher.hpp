/// \file launcher.hpp
/// \brief Builds a simulated wafer-scale fabric from a FlowProblem, loads
///        the TPFA dataflow program onto every PE, runs it, and gathers
///        the results back to host arrays.
#pragma once

#include "common/array3d.hpp"
#include "core/tpfa_program.hpp"
#include "dataflow/fabric_harness.hpp"
#include "physics/problem.hpp"

namespace fvf::core {

/// Launch configuration for a dataflow TPFA run.
struct DataflowOptions : dataflow::HarnessOptions {
  i32 iterations = 1;
  TpfaKernelOptions kernel{};
};

/// Result of a dataflow TPFA run: full fabric accounting plus the
/// gathered fields.
struct DataflowResult : dataflow::RunInfo {
  /// Flux residual gathered from all PEs after the final iteration.
  Array3<f32> residual;
  /// Final pressure (after iterations-1 advance steps).
  Array3<f32> pressure;
};

/// Extracts the per-PE column data for PE (x, y) from the global problem
/// (the "host memcpy" phase: initial pressure, static geometry, and
/// transmissibility columns).
[[nodiscard]] PeColumnData extract_column(const physics::FlowProblem& problem,
                                          i32 x, i32 y);

/// Runs `options.iterations` applications of Algorithm 1 on the simulated
/// fabric (one PE per mesh column) and gathers residual + pressure.
[[nodiscard]] DataflowResult run_dataflow_tpfa(
    const physics::FlowProblem& problem, const DataflowOptions& options);

}  // namespace fvf::core
