/// \file linear_stencil.hpp
/// \brief The linearized (fixed-mobility) TPFA operator in general
///        stencil form:
///
///   (A u)_K = diag_K u_K + sum_f offdiag_f(K) u_{L(f)}
///
/// Built from a flow problem as diag = sigma + sum_f G_f and
/// offdiag_f = -G_f with G_f = Upsilon_f * lambda_bar (lambda_bar =
/// rho_ref / mu frozen) and sigma the accumulation shift V phi c / dt.
/// This is the symmetric positive-definite pressure operator a
/// matrix-free Krylov method solves each Newton iteration (paper
/// Section 8). The general form also represents the Jacobi-scaled
/// operator D^{-1/2} A D^{-1/2} used to tame the conditioning of
/// strongly heterogeneous permeability fields.
#pragma once

#include <array>

#include "common/array3d.hpp"
#include "mesh/stencil.hpp"
#include "physics/problem.hpp"

namespace fvf::core {

/// Per-cell stencil coefficients, in the layout both the host reference
/// and the per-PE dataflow program consume.
struct LinearStencil {
  Extents3 extents{};
  /// Diagonal coefficient per cell.
  Array3<f32> diag;
  /// Coefficient multiplying the neighbor across each face; zero where
  /// the neighbor does not exist.
  std::array<Array3<f32>, mesh::kFaceCount> offdiag;

  /// Host reference apply, out = A u (f64 accumulation, for validation).
  void apply_f64(std::span<const f64> u, std::span<f64> out) const;

  /// Symmetry defect max |offdiag(K,f) - offdiag(L,opp f)|; 0 for a
  /// valid operator.
  [[nodiscard]] f64 max_asymmetry() const;
};

/// Builds the linearized operator from a flow problem.
///
/// `accumulation_dt`: time-step used for sigma = V phi c_total / dt;
/// pass 0 to omit the shift (pure flux operator, singular).
[[nodiscard]] LinearStencil build_linear_stencil(
    const physics::FlowProblem& problem, f64 accumulation_dt);

/// Symmetrically Jacobi-scaled system: A~ = D^{-1/2} A D^{-1/2} with
/// D = diag(A). Solve A~ y = D^{-1/2} b, then x = D^{-1/2} y.
struct ScaledSystem {
  LinearStencil stencil;     ///< A~, unit diagonal
  Array3<f32> inv_sqrt_diag; ///< D^{-1/2}
};
[[nodiscard]] ScaledSystem jacobi_scale(const LinearStencil& stencil);

/// Transforms a right-hand side into the scaled system (b~ = D^{-1/2} b).
[[nodiscard]] Array3<f32> scale_rhs(const ScaledSystem& scaled,
                                    const Array3<f32>& rhs);
/// Recovers the original unknowns from the scaled solution
/// (x = D^{-1/2} y).
[[nodiscard]] Array3<f32> unscale_solution(const ScaledSystem& scaled,
                                           const Array3<f32>& y);

/// Manufactured system: b = A u_exact for a smooth u_exact.
struct ManufacturedSystem {
  Array3<f32> exact;
  Array3<f32> rhs;
};
[[nodiscard]] ManufacturedSystem manufacture_solution(
    const LinearStencil& stencil);

}  // namespace fvf::core
