/// \file tpfa_program.hpp
/// \brief The per-PE TPFA flux kernel — the paper's primary contribution
///        (Section 5), expressed as a dataflow program for the simulated
///        wafer-scale engine.
///
/// Mapping (Section 5.1): mesh cell (x, y, z) lives on PE (x, y); the
/// whole Z column resides in the PE's private memory. Each application of
/// Algorithm 1 on a PE:
///
///   1. advances its pressure column and evaluates the EOS densities,
///   2. computes the two vertical faces locally (no communication),
///   3. exchanges (pressure, density) columns with its four cardinal
///      neighbors using the two-step switch protocol of Figure 6,
///   4. forwards each received cardinal block to the rotated diagonal
///      target (Figure 5) while computing the cardinal partial flux,
///   5. computes the four diagonal partial fluxes as forwarded blocks
///      arrive, and
///   6. advances to the next iteration once all ten faces are assembled.
///
/// Communication/computation overlap is intrinsic: partial fluxes are
/// computed in the data handlers as blocks arrive (Section 5.3.2), and
/// vertical faces are computed while cardinal data is in flight.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/array3d.hpp"
#include "dataflow/iterative_kernel.hpp"
#include "mesh/stencil.hpp"
#include "physics/fluid.hpp"
#include "wse/fabric.hpp"

namespace fvf::core {

/// Kernel options (the Section 5.3 optimization toggles + run modes).
struct TpfaKernelOptions {
  i32 iterations = 1;
  /// false = communication-only variant used for Table 3: all flux
  /// computations removed, data movement untouched.
  bool compute_enabled = true;
  /// Buffer-reuse optimization (Section 5.3.1): true = 4 shared scratch
  /// columns scheduled like hand-allocated registers; false = one fresh
  /// scratch column per intermediate value (13 columns).
  bool reuse_buffers = true;
  /// false = cardinal-only ablation (no diagonal exchange or fluxes).
  bool diagonals_enabled = true;
};

/// Host-side per-PE column data extracted from the global problem.
struct PeColumnData {
  std::vector<f32> pressure;        ///< initial p, length Nz
  std::vector<f32> elevation;       ///< own cell-centre elevations, Nz
  /// Neighbor elevation columns, static geometry loaded at setup.
  /// Cardinal slots indexed by cardinal_index(color), diagonal slots by
  /// diagonal_index(color); empty when the neighbor does not exist.
  std::array<std::vector<f32>, 4> elevation_cardinal;
  std::array<std::vector<f32>, 4> elevation_diagonal;
  /// Per-face transmissibility columns (zero where no neighbor).
  std::array<std::vector<f32>, mesh::kFaceCount> trans;
};

/// The per-PE program. Instantiated once per PE by the launcher. Runs on
/// the dataflow runtime but keeps its hand-written Figure 6 exchange: the
/// cardinal/diagonal colors are bound as explicit data/control handlers
/// rather than delegated to the shared HaloExchange component.
class TpfaPeProgram final : public dataflow::IterativeKernelProgram {
 public:
  TpfaPeProgram(Coord2 coord, Coord2 fabric_size, Extents3 mesh_extents,
                TpfaKernelOptions options, physics::FluidProperties fluid,
                PeColumnData data);

  /// Residual column after the final completed iteration.
  [[nodiscard]] std::span<const f32> residual() const noexcept { return r_; }
  /// Pressure column after the final completed iteration.
  [[nodiscard]] std::span<const f32> pressure() const noexcept { return p_; }
  [[nodiscard]] i32 completed_iterations() const noexcept { return iter_; }

  /// One-line diagnostic of the program's communication state (per-color
  /// send/receive/control counters); used by deadlock reports and tests.
  [[nodiscard]] std::string debug_state() const;

  /// Accounting-only footprint of the program's data in PE memory (bytes)
  /// for a given depth and buffer-reuse mode, excluding the fixed code
  /// footprint.
  [[nodiscard]] static usize data_footprint_bytes(i32 nz, bool reuse_buffers);

  /// Reserved bytes modeling program code + runtime structures. Sized so
  /// that, with buffer reuse enabled, the deepest column fitting in the
  /// default 48 KiB PE memory is Nz = 246 — the paper's maximum.
  static constexpr usize kCodeFootprintBytes = 6800;

 private:
  struct CardinalState {
    bool phase1_sender = false;  ///< sends at iteration start
    bool has_upstream = false;   ///< expects data (+control) arrivals
    i32 received = 0;            ///< total data blocks delivered
    i32 processed = 0;           ///< total blocks consumed by the kernel
    i32 controls = 0;            ///< total control wavelets delivered
    i32 sends = 0;               ///< total blocks sent
    bool buffered = false;       ///< unconsumed block in the recv buffer
  };
  struct DiagonalState {
    bool expected = false;  ///< the corner neighbor exists
    i32 received = 0;
    i32 processed = 0;
    bool buffered = false;
  };

  // IterativeKernelProgram phase hooks.
  void reserve_memory(wse::PeMemory& mem) override;
  void begin(wse::PeApi& api) override;
  void configure_routes(wse::Router& router) override;
  [[nodiscard]] std::vector<wse::SendDeclaration> program_send_declarations()
      const override;

  // Figure 6 exchange handlers (bound per color in the constructor).
  void handle_cardinal(wse::PeApi& api, wse::Color color, wse::Dir from,
                       std::span<const u32> data);
  void handle_diagonal(wse::PeApi& api, wse::Color color, wse::Dir from,
                       std::span<const u32> data);
  void handle_control(wse::PeApi& api, wse::Color color);

  void begin_iteration(wse::PeApi& api);
  void local_compute(wse::PeApi& api);
  void send_block(wse::PeApi& api, wse::Color color);
  void process_cardinal(wse::PeApi& api, wse::Color color);
  void process_diagonal(wse::PeApi& api, wse::Color color);
  void check_completion(wse::PeApi& api);
  /// Accumulates the ten face-flux columns into the residual in the
  /// canonical face order (bit-identical to the serial reference's
  /// per-cell loop), computing the two local vertical faces in place.
  void finalize_residual(wse::PeApi& api);

  /// The TPFA face kernel over a column window: computes the flux column
  /// into `flux_out` (12 DSD ops). Every implementation-visible FP
  /// instruction is a DSD op charged to the PE's counters (Table 4
  /// derives from these calls). `flux_out` may alias `p_nb`, which is
  /// dead by the time the flux is written.
  void compute_face_flux(wse::PeApi& api, wse::Dsd p_nb, wse::Dsd rho_nb,
                         wse::Dsd z_nb, wse::Dsd trans, wse::Dsd p_self,
                         wse::Dsd rho_self, wse::Dsd z_self,
                         wse::Dsd flux_out);
  /// r -= (-flux): the FNEG + FSUB accumulation pair of the face budget.
  void accumulate_flux(wse::PeApi& api, wse::Dsd flux, wse::Dsd r);

  [[nodiscard]] wse::Dsd scratch(usize slot, i32 length) noexcept;

  // --- static identity ----------------------------------------------------
  Extents3 mesh_extents_;
  TpfaKernelOptions options_;
  physics::FluidProperties fluid_;
  f32 gravity_f32_ = 0.0f;
  f32 inv_mu_f32_ = 0.0f;
  i32 nz_ = 0;

  // --- PE-resident data -----------------------------------------------------
  std::vector<f32> p_;
  std::vector<f32> rho_;
  std::vector<f32> r_;
  std::vector<f32> z_self_;
  std::array<std::vector<f32>, 4> z_cardinal_;
  std::array<std::vector<f32>, 4> z_diagonal_;
  std::array<std::vector<f32>, mesh::kFaceCount> trans_;
  /// Receive buffers, [p | rho] of 2*Nz each. Once a block's flux column
  /// is computed, the (dead) p half is overwritten with that flux so the
  /// canonical-order accumulation needs no extra storage.
  std::array<std::vector<f32>, 4> card_buf_;
  std::array<std::vector<f32>, 4> diag_buf_;
  std::vector<std::vector<f32>> scratch_;
  std::vector<f32> zflux_;  ///< vertical-face flux column

  // --- iteration state ------------------------------------------------------
  i32 iter_ = 0;
  i32 cards_processed_this_iter_ = 0;
  i32 diags_processed_this_iter_ = 0;
  i32 expected_cards_ = 0;
  i32 expected_diags_ = 0;
  std::array<CardinalState, 4> card_;
  std::array<DiagonalState, 4> diag_;
};

}  // namespace fvf::core
