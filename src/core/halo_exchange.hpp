/// \file halo_exchange.hpp
/// \brief Reusable 10-neighbor halo exchange for dataflow programs with
///        static routes (no Figure 6 switch protocol): every PE sends one
///        fixed-length block per round on each cardinal color and
///        forwards received cardinal blocks to the rotated diagonal
///        target (Figure 5). Used by the fabric CG solver and the
///        acoustic-wave kernel; the TPFA flux program keeps its own
///        exchange because it implements the switch-based protocol.
///
/// Round semantics: blocks are tagged implicitly by per-link FIFO order.
/// A neighbor may run at most one round ahead; such early blocks wait in
/// their receive buffer and are delivered at the next begin_round. The
/// owner is notified once per processed block and once per completed
/// round.
#pragma once

#include <array>
#include <functional>
#include <span>
#include <vector>

#include "core/colors.hpp"
#include "wse/fabric.hpp"

namespace fvf::core {

class HaloExchange {
 public:
  /// Invoked for every processed block of the *current* round with the
  /// face it supplies and a view of the received data.
  using BlockHandler =
      std::function<void(wse::PeApi&, mesh::Face, wse::Dsd data)>;
  /// Invoked exactly once per round, after all expected blocks of that
  /// round were processed. May start the next round.
  using RoundHandler = std::function<void(wse::PeApi&)>;

  HaloExchange(Coord2 coord, Coord2 fabric_size, i32 block_length);

  /// Installs the static routes for colors 0..7; call from
  /// configure_router.
  void configure_router(wse::Router& router) const;

  /// Whether `color` belongs to this exchange (colors 0..7).
  [[nodiscard]] static bool owns(wse::Color color) noexcept {
    return is_cardinal_color(color) || is_diagonal_color(color);
  }

  void set_handlers(BlockHandler on_block, RoundHandler on_round_complete);

  /// Starts the next round: sends `payload` on all four cardinal colors
  /// and consumes blocks that arrived early. May complete the round
  /// synchronously (boundary PEs with no neighbors, or all blocks early).
  void begin_round(wse::PeApi& api, std::span<const f32> payload);

  /// Feeds a block to the exchange. Precondition: owns(color).
  void on_data(wse::PeApi& api, wse::Color color, wse::Dir from,
               std::span<const u32> data);

  [[nodiscard]] i32 rounds_started() const noexcept { return round_; }
  /// Blocks expected per round (existing cardinal + diagonal neighbors).
  [[nodiscard]] i32 expected_blocks() const noexcept {
    return expected_cards_ + expected_diags_;
  }

 private:
  struct LinkState {
    bool has_upstream = false;
    i32 received = 0;
    i32 processed = 0;
    bool buffered = false;
  };

  void process_block(wse::PeApi& api, wse::Color color);
  void check_round_complete(wse::PeApi& api);

  Coord2 coord_;
  Coord2 fabric_;
  i32 block_length_;
  BlockHandler on_block_;
  RoundHandler on_round_complete_;

  std::array<std::vector<f32>, 4> card_buf_;
  std::array<std::vector<f32>, 4> diag_buf_;
  std::array<LinkState, 4> card_;
  std::array<LinkState, 4> diag_;
  i32 expected_cards_ = 0;
  i32 expected_diags_ = 0;
  i32 round_ = 0;
  i32 done_this_round_ = 0;
  bool round_open_ = false;
};

}  // namespace fvf::core
