#include "core/mapping_model.hpp"

namespace fvf::core {

MappingCost cell_based_cost(i32 nx, i32 ny, i32 nz) {
  MappingCost cost;
  cost.name = "cell-based (paper)";
  cost.pes = static_cast<i64>(nx) * ny;
  // The TPFA program's resident data: p/rho/r, own + 8 neighbor
  // elevations, 10 transmissibility columns, 8 receive buffers of 2 Nz,
  // 4 scratch columns, 1 vertical-flux column = 43 Nz words (see
  // TpfaPeProgram::data_footprint_bytes).
  cost.words_per_pe = 43 * static_cast<i64>(nz);
  // Each interior PE drains 8 blocks x 2 Nz words per iteration.
  cost.fabric_words_per_iteration = cost.pes * 16 * static_cast<i64>(nz);
  // Cell-based computes every interior face twice (once per side):
  // 10 faces per cell.
  cost.flux_computations_per_iteration =
      cost.pes * static_cast<i64>(nz) * 10;
  return cost;
}

MappingCost face_based_cost(i32 nx, i32 ny, i32 nz) {
  MappingCost cost;
  cost.name = "face-based";
  // One PE per owned-face column (x+, y+, z+, two owned diagonals) plus
  // the cell PEs that accumulate the residual.
  const i64 columns = static_cast<i64>(nx) * ny;
  cost.pes = 5 * columns + columns;
  // A face PE holds both adjacent cells' (p, rho) columns (4 Nz), its
  // transmissibility column, a flux column, and scratch (~4 Nz).
  cost.words_per_pe = 10 * static_cast<i64>(nz);
  // Per column per iteration: 5 face PEs each receive 2 cell columns of
  // 2 Nz words (20 Nz) and scatter a flux column to 2 cell PEs (10 Nz).
  cost.fabric_words_per_iteration = columns * 30 * static_cast<i64>(nz);
  // Each face computed once: 5 owned faces per cell.
  cost.flux_computations_per_iteration =
      columns * static_cast<i64>(nz) * 5;
  return cost;
}

}  // namespace fvf::core
