/// \file fabric_impes.hpp
/// \brief The full IMPES loop with BOTH kernels on the simulated
///        wafer-scale engine: each window solves the lagged-mobility
///        pressure system with the fabric CG solver (cg_program.hpp) and
///        advances saturations with the fabric transport program
///        (transport_program.hpp). The host only re-assembles the lagged
///        coefficients between windows — the same role the paper's host
///        machine plays ("only used to schedule the workload",
///        Section 7.1).
///
/// This realizes the paper's Section 9 future work end to end:
/// "developing nonlinear and linear solvers on a dataflow architecture
/// can broaden the scope of FV applications".
#pragma once

#include <vector>

#include "common/array3d.hpp"
#include "core/cg_program.hpp"
#include "core/transport_program.hpp"
#include "physics/problem.hpp"

namespace fvf::core {

/// Builds the lagged-mobility SPD IMPES pressure system (stencil + rhs)
/// from the current saturations, with phase-potential upwinding on the
/// previous pressure, gravity source terms, and an anchor penalty that
/// pins the incompressible system's pressure level. Shared by the fabric
/// IMPES driver and the gpusim backend so both solve the identical
/// system.
void build_impes_pressure_system(const physics::FlowProblem& problem,
                                 const TransportFluid& fluid,
                                 const Array3<f32>& saturation,
                                 const Array3<f32>& pressure,
                                 const Array3<f32>& well_rate,
                                 Coord3 anchor_cell, f64 anchor_pressure,
                                 LinearStencil& stencil, Array3<f32>& rhs);

struct FabricImpesOptions {
  TransportFluid fluid{};
  f64 porosity = 0.2;
  f32 cfl = 0.5f;
  Coord3 anchor_cell{0, 0, 0};
  f64 anchor_pressure = 20.0e6;
  CgKernelOptions cg{.max_iterations = 1500, .relative_tolerance = 1e-5f};
  i32 max_substeps_per_window = 5000;
  wse::FabricTimings timings{};
  /// Execution model for both fabric launches of a window (threading and
  /// fault injection; the CG and transport pipelines auto-enable the halo
  /// reliability layer when the fault scenario can drop blocks).
  /// `execution.hazard_check` turns the dynamic memory-hazard detector on
  /// for both launches.
  wse::ExecutionOptions execution{};
  /// Static verification level (fvf::lint) applied to both fabric loads
  /// of every window.
  lint::Level lint = lint::Level::Off;
};

/// Per-window statistics.
struct FabricImpesWindow {
  i32 cg_iterations = 0;
  bool cg_converged = false;
  i32 transport_substeps = 0;
  f64 device_seconds = 0.0;  ///< simulated fabric time (CG + transport)
  u64 hazards = 0;  ///< memory hazards flagged (CG + transport), when on
  /// Full fabric accounting of the window, accumulated over both
  /// launches (dataflow::accumulate: CG solve + transport advance).
  dataflow::RunInfo fabric{};
};

/// IMPES driver: pressure on the fabric, transport on the fabric.
class FabricImpesSimulator {
 public:
  FabricImpesSimulator(const physics::FlowProblem& problem,
                       FabricImpesOptions options);

  /// Registers a constant-rate injection of the non-wetting phase.
  void add_well(Coord3 cell, f64 volume_rate);

  /// Advances one IMPES window: one pressure solve + explicit transport
  /// to `seconds` of simulated time.
  [[nodiscard]] FabricImpesWindow advance_window(f64 seconds);

  /// Replaces the simulator state with checkpointed fields (both on the
  /// problem's extents). The host carries no other per-window state, so
  /// a simulator restored from the fields saved after window k advances
  /// bit-identically to one that ran windows 1..k itself — the
  /// checkpoint/restore contract of long scenario-service jobs.
  void restore_state(const Array3<f32>& saturation,
                     const Array3<f32>& pressure);

  [[nodiscard]] const Array3<f32>& saturation() const noexcept {
    return saturation_;
  }
  [[nodiscard]] const Array3<f32>& pressure() const noexcept {
    return pressure_;
  }
  /// Non-wetting phase volume in place [m^3].
  [[nodiscard]] f64 co2_in_place() const;

 private:
  /// Builds the lagged-mobility SPD pressure system (stencil + rhs) from
  /// the current saturations, with phase-potential upwinding on the
  /// previous pressure and an anchor penalty.
  void build_pressure_system(LinearStencil& stencil, Array3<f32>& rhs) const;

  const physics::FlowProblem& problem_;
  FabricImpesOptions options_;
  Array3<f32> saturation_;
  Array3<f32> pressure_;
  Array3<f32> well_rate_;
};

}  // namespace fvf::core
