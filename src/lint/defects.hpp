/// \file defects.hpp
/// \brief Seeded defect corpus: one deliberately broken fabric fixture per
///        lint diagnostic class.
///
/// The corpus is the linter's own regression suite — each fixture plants
/// exactly one defect and the tests (and `fvf_lint --defect-corpus`)
/// assert that linting it yields exactly the expected diagnostic class,
/// and nothing else. A linter that stops flagging a corpus entry is
/// broken, whatever the shipped programs say.
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "lint/lint.hpp"

namespace fvf::lint {

/// One broken fixture. `lint()` constructs the defective fabric from
/// scratch and runs the verifier over it.
struct Defect {
  /// Slug of the seeded defect; equals check_name(expected).
  std::string_view name;
  /// The diagnostic class this fixture must trigger.
  Check expected;
  /// What is broken, for CLI output and test failure messages.
  std::string_view description;
  std::function<Report()> lint;
};

/// The full corpus, one entry per diagnostic class, in Check enum order.
[[nodiscard]] const std::vector<Defect>& defect_corpus();

}  // namespace fvf::lint
