#include "lint/flow.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/assert.hpp"
#include "lint/color_graph.hpp"
#include "wse/program.hpp"
#include "wse/route.hpp"
#include "wse/router.hpp"

namespace fvf::lint {

namespace {

using detail::ColorGraph;
using wse::Color;
using wse::Dir;

[[nodiscard]] std::string_view long_dir_name(Dir d) noexcept {
  switch (d) {
    case Dir::North: return "North";
    case Dir::East: return "East";
    case Dir::South: return "South";
    case Dir::West: return "West";
    case Dir::Ramp: return "Ramp";
  }
  return "?";
}

[[nodiscard]] usize pe_index(const wse::Fabric& fabric, Coord2 pe) noexcept {
  return static_cast<usize>(pe.y) * static_cast<usize>(fabric.width()) +
         static_cast<usize>(pe.x);
}

[[nodiscard]] std::string default_label(Color color) {
  std::ostringstream os;
  os << "color " << static_cast<int>(color.id());
  return os.str();
}

/// Whether some switch position of `pe` delivers `input` to the Ramp.
[[nodiscard]] bool delivers_to_ramp(const ColorGraph& graph, Coord2 pe,
                                    Dir input) {
  bool delivers = false;
  graph.each_output(pe, input, [&](Dir out) {
    if (out == Dir::Ramp) {
      delivers = true;
    }
  });
  return delivers;
}

/// Union-graph BFS from one sender's Ramp injection point. Invokes
/// `visit(node)` for every reachable routing node — including the
/// injection node itself, where blocks park when the active position has
/// no Ramp rule — and `deliver(pe)` once per PE whose Ramp the traffic
/// can reach.
template <typename VisitFn, typename DeliverFn>
void walk_from_sender(const ColorGraph& graph, Coord2 sender, VisitFn&& visit,
                      DeliverFn&& deliver) {
  std::vector<usize> frontier;
  std::vector<bool> visited(graph.node_count(), false);
  std::vector<bool> delivered(
      static_cast<usize>(graph.width()) * static_cast<usize>(graph.height()),
      false);
  const usize start = graph.node(sender, Dir::Ramp);
  visited[start] = true;
  visit(start);
  frontier.push_back(start);
  while (!frontier.empty()) {
    const usize n = frontier.back();
    frontier.pop_back();
    const Coord2 pe = graph.pe_of(n);
    graph.each_output(pe, graph.input_of(n), [&](Dir out) {
      if (out == Dir::Ramp) {
        const usize p =
            static_cast<usize>(pe.y) * static_cast<usize>(graph.width()) +
            static_cast<usize>(pe.x);
        if (!delivered[p]) {
          delivered[p] = true;
          deliver(pe);
        }
        return;
      }
      const Coord2 off = wse::dir_offset(out);
      const Coord2 target{pe.x + off.x, pe.y + off.y};
      if (!graph.on_fabric(target)) {
        return;
      }
      const usize t = graph.node(target, wse::opposite(out));
      if (!visited[t]) {
        visited[t] = true;
        visit(t);
        frontier.push_back(t);
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Buffer-bound analysis
// ---------------------------------------------------------------------------

/// Sum of declared in-flight block bounds this program carries on `color`
/// (data and control declarations both park in the same per-PE buffer).
[[nodiscard]] u64 declared_in_flight(const wse::PeProgram& program,
                                     Color color) {
  u64 blocks = 0;
  for (const wse::SendDeclaration& send : program.send_declarations()) {
    if (send.color == color) {
      blocks += send.in_flight;
    }
  }
  return blocks;
}

// ---------------------------------------------------------------------------
// Cross-color wait-for analysis
// ---------------------------------------------------------------------------

/// The wait-for graph the deadlock check runs a cycle search on. Two node
/// kinds, both restricted to the colors that appear in some declared
/// ChannelDependency:
///
///   routing node (color, PE, input)  a block of `color` occupying that
///                                    link; it waits on whatever produces
///                                    the block upstream (reverse-flow
///                                    edges, or the sender's obligation
///                                    at the Ramp)
///   obligation node (PE, color)      the declared send of `color` at
///                                    `PE`; it waits on the deliveries of
///                                    every declared prerequisite color
///
/// A cycle therefore means: some send transitively waits on a delivery
/// that only happens after that same send — a protocol deadlock no
/// schedule can escape.
class WaitForGraph {
 public:
  WaitForGraph(const wse::Fabric& fabric, std::vector<Color> colors)
      : fabric_(fabric), colors_(std::move(colors)) {
    graphs_.reserve(colors_.size());
    slot_of_.fill(kNoSlot);
    for (usize slot = 0; slot < colors_.size(); ++slot) {
      graphs_.emplace_back(fabric_, colors_[slot]);
      slot_of_[colors_[slot].id()] = slot;
    }
    pe_count_ = static_cast<usize>(fabric_.pe_count());
    routing_nodes_ = pe_count_ * wse::kLinkCount;
    deps_at_.resize(pe_count_);
    sends_at_.resize(pe_count_, 0);
    for (i32 y = 0; y < fabric_.height(); ++y) {
      for (i32 x = 0; x < fabric_.width(); ++x) {
        const wse::PeProgram* program = fabric_.pe(x, y).program();
        if (program == nullptr) {
          continue;
        }
        const usize p = pe_index(fabric_, Coord2{x, y});
        for (const wse::ChannelDependency& dep :
             program->channel_dependencies()) {
          if (slot_of_[dep.prerequisite.id()] != kNoSlot &&
              slot_of_[dep.dependent.id()] != kNoSlot) {
            deps_at_[p].push_back(dep);
          }
        }
        for (const wse::SendDeclaration& send : program->send_declarations()) {
          const usize slot = slot_of_[send.color.id()];
          if (slot != kNoSlot) {
            sends_at_[p] |= u32{1} << slot;
          }
        }
      }
    }
  }

  [[nodiscard]] usize node_total() const noexcept {
    return colors_.size() * (routing_nodes_ + pe_count_);
  }

  [[nodiscard]] bool is_obligation(usize n) const noexcept {
    return n >= colors_.size() * routing_nodes_;
  }
  [[nodiscard]] Coord2 pe_of(usize n) const {
    if (is_obligation(n)) {
      const usize local = (n - colors_.size() * routing_nodes_) % pe_count_;
      return Coord2{static_cast<i32>(local % static_cast<usize>(
                                                 fabric_.width())),
                    static_cast<i32>(local / static_cast<usize>(
                                                 fabric_.width()))};
    }
    return graphs_[n / routing_nodes_].pe_of(n % routing_nodes_);
  }
  [[nodiscard]] Color color_of(usize n) const {
    if (is_obligation(n)) {
      return colors_[(n - colors_.size() * routing_nodes_) / pe_count_];
    }
    return colors_[n / routing_nodes_];
  }

  [[nodiscard]] usize obligation_node(usize slot, usize pe) const noexcept {
    return colors_.size() * routing_nodes_ + slot * pe_count_ + pe;
  }
  [[nodiscard]] usize routing_node(usize slot, Coord2 pe, Dir input) const {
    return slot * routing_nodes_ + graphs_[slot].node(pe, input);
  }

  [[nodiscard]] std::vector<usize> successors(usize n) const {
    std::vector<usize> out;
    if (is_obligation(n)) {
      const Coord2 pe = pe_of(n);
      const Color color = color_of(n);
      const usize p = pe_index(fabric_, pe);
      for (const wse::ChannelDependency& dep : deps_at_[p]) {
        if (dep.dependent != color) {
          continue;
        }
        const usize slot = slot_of_[dep.prerequisite.id()];
        const ColorGraph& graph = graphs_[slot];
        // The send waits for deliveries of the prerequisite, which can
        // only arrive through a link input some position delivers to the
        // Ramp (a PE never waits on its own injection).
        for (usize in = 0; in < wse::kLinkCount; ++in) {
          const Dir input = static_cast<Dir>(in);
          if (input != Dir::Ramp && delivers_to_ramp(graph, pe, input)) {
            out.push_back(routing_node(slot, pe, input));
          }
        }
      }
      return out;
    }
    const usize slot = n / routing_nodes_;
    const ColorGraph& graph = graphs_[slot];
    const Coord2 pe = graph.pe_of(n % routing_nodes_);
    const Dir input = graph.input_of(n % routing_nodes_);
    if (input == Dir::Ramp) {
      // Injected here: the block exists once the PE's own send runs.
      const usize p = pe_index(fabric_, pe);
      if ((sends_at_[p] & (u32{1} << slot)) != 0) {
        out.push_back(obligation_node(slot, p));
      }
      return out;
    }
    // Arrived over a link: the block was forwarded by the upstream
    // neighbour, through any of its inputs whose rules output toward us.
    const Coord2 off = wse::dir_offset(input);
    const Coord2 src{pe.x + off.x, pe.y + off.y};
    if (!graph.on_fabric(src)) {
      return out;
    }
    const Dir toward_us = wse::opposite(input);
    for (usize in = 0; in < wse::kLinkCount; ++in) {
      const Dir src_in = static_cast<Dir>(in);
      bool forwards = false;
      graph.each_output(src, src_in, [&](Dir o) {
        if (o == toward_us) {
          forwards = true;
        }
      });
      if (forwards) {
        out.push_back(routing_node(slot, src, src_in));
      }
    }
    return out;
  }

  [[nodiscard]] const std::vector<Color>& colors() const noexcept {
    return colors_;
  }
  [[nodiscard]] const std::vector<wse::ChannelDependency>& deps_at(
      usize pe) const noexcept {
    return deps_at_[pe];
  }
  [[nodiscard]] bool any_dependency() const noexcept {
    return std::any_of(deps_at_.begin(), deps_at_.end(),
                       [](const auto& d) { return !d.empty(); });
  }
  [[nodiscard]] usize pe_count() const noexcept { return pe_count_; }

 private:
  static constexpr usize kNoSlot = static_cast<usize>(-1);

  const wse::Fabric& fabric_;
  std::vector<Color> colors_;
  std::vector<ColorGraph> graphs_;
  std::array<usize, Color::kMaxColors> slot_of_{};
  usize pe_count_ = 0;
  usize routing_nodes_ = 0;
  std::vector<std::vector<wse::ChannelDependency>> deps_at_;
  std::vector<u32> sends_at_;
};

class FlowLinter {
 public:
  FlowLinter(const wse::Fabric& fabric, const FlowOptions& options,
             std::vector<Diagnostic>& out)
      : fabric_(fabric), options_(options), out_(out) {}

  void run() {
    check_buffer_bounds();
    check_deadlock();
    check_determinism();
  }

 private:
  [[nodiscard]] std::string label(Color color) const {
    return options_.color_label != nullptr ? options_.color_label(color)
                                           : default_label(color);
  }

  /// Lifts a finding to the layer that generated the traffic: programs
  /// built from a higher-level description (spec::SpecPeProgram) map the
  /// color back to the declaration field via describe_channel, so the
  /// diagnostic names what to fix rather than the lowered artifact.
  void push(Diagnostic d) {
    if (d.color.has_value()) {
      const wse::PeProgram* program = fabric_.pe(d.pe.x, d.pe.y).program();
      if (program != nullptr) {
        const std::string note = program->describe_channel(*d.color);
        if (!note.empty()) {
          d.message += "; ";
          d.message += note;
        }
      }
    }
    out_.push_back(std::move(d));
  }

  void check_buffer_bounds() {
    const BufferAnalysis analysis =
        analyze_buffer_occupancy(fabric_, options_.skip_colors);
    const u32 depth = options_.router_buffer_depth != 0
                          ? options_.router_buffer_depth
                          : fabric_.execution().router_buffer_depth;
    if (analysis.minimal_depth <= depth) {
      return;
    }
    // One finding localizes the problem: report the worst PE (first in
    // raster order) and count the others, so a wafer-scale program does
    // not emit a diagnostic per PE.
    const PeOccupancy* worst = nullptr;
    usize exceeding = 0;
    for (const PeOccupancy& pe : analysis.per_pe) {
      if (pe.blocks > depth) {
        ++exceeding;
        if (worst == nullptr || pe.blocks > worst->blocks) {
          worst = &pe;
        }
      }
    }
    std::ostringstream os;
    os << "worst-case router input-buffer occupancy at PE(" << worst->pe.x
       << ',' << worst->pe.y << ") reaches " << worst->blocks << " blocks (";
    bool first = true;
    std::optional<Color> single_color;
    bool one_color = true;
    for (const ParkContribution& c : worst->contributions) {
      os << (first ? "" : ", ") << label(c.color) << " via "
         << long_dir_name(c.input) << ": " << c.blocks;
      first = false;
      if (single_color.has_value() && *single_color != c.color) {
        one_color = false;
      }
      single_color = c.color;
    }
    os << "), exceeding router_buffer_depth " << depth
       << ": the run would drop blocks; router_buffer_depth >= "
       << analysis.minimal_depth << " is sufficient";
    if (exceeding > 1) {
      os << " (" << exceeding << " PEs exceed the configured depth)";
    }
    Diagnostic d{Check::BufferOverflowPossible, Severity::Error, worst->pe,
                 one_color ? single_color : std::nullopt, os.str()};
    d.bound = analysis.minimal_depth;
    push(std::move(d));
  }

  void check_deadlock() {
    // Colors that appear in some declared ordering; everything else
    // cannot sit on a wait cycle (single-color routing cycles are the
    // routing-cycle check's finding, and are skipped here).
    std::array<bool, Color::kMaxColors> interesting{};
    for (i32 y = 0; y < fabric_.height(); ++y) {
      for (i32 x = 0; x < fabric_.width(); ++x) {
        const wse::PeProgram* program = fabric_.pe(x, y).program();
        if (program == nullptr) {
          continue;
        }
        for (const wse::ChannelDependency& dep :
             program->channel_dependencies()) {
          if (!options_.skip_colors[dep.prerequisite.id()] &&
              !options_.skip_colors[dep.dependent.id()]) {
            interesting[dep.prerequisite.id()] = true;
            interesting[dep.dependent.id()] = true;
          }
        }
      }
    }
    std::vector<Color> colors;
    for (u8 c = 0; c < Color::kMaxColors; ++c) {
      if (interesting[c]) {
        colors.push_back(Color{c});
      }
    }
    if (colors.empty()) {
      return;
    }
    const WaitForGraph wait(fabric_, std::move(colors));

    enum class Mark : u8 { White, Gray, Black };
    std::vector<Mark> mark(wait.node_total(), Mark::White);
    struct Frame {
      usize node = 0;
      std::vector<usize> succ;
      usize next = 0;
    };
    std::vector<Frame> stack;
    for (usize slot = 0; slot < wait.colors().size(); ++slot) {
      for (usize p = 0; p < wait.pe_count(); ++p) {
        const usize root = wait.obligation_node(slot, p);
        if (mark[root] != Mark::White) {
          continue;
        }
        mark[root] = Mark::Gray;
        stack.push_back(Frame{root, wait.successors(root)});
        while (!stack.empty()) {
          Frame& frame = stack.back();
          if (frame.next >= frame.succ.size()) {
            mark[frame.node] = Mark::Black;
            stack.pop_back();
            continue;
          }
          const usize target = frame.succ[frame.next++];
          if (mark[target] == Mark::Gray) {
            report_deadlock(wait, stack, target);
            return;  // one cycle is enough to localize the knot
          }
          if (mark[target] == Mark::White) {
            mark[target] = Mark::Gray;
            stack.push_back(Frame{target, wait.successors(target)});
          }
        }
      }
    }
  }

  template <typename Frames>
  void report_deadlock(const WaitForGraph& wait, const Frames& stack,
                       usize back_to) {
    usize start = 0;
    for (usize i = 0; i < stack.size(); ++i) {
      if (stack[i].node == back_to) {
        start = i;
        break;
      }
    }
    // The cycle alternates obligation nodes (a send waiting) with the
    // routing nodes of the prerequisite it waits on; render the sends in
    // cycle order, each naming the prerequisite and its producer (the
    // next obligation on the cycle).
    struct Obligation {
      Coord2 pe;
      Color color;
    };
    std::vector<Obligation> sends;
    std::vector<Coord2> relays;
    for (usize i = start; i < stack.size(); ++i) {
      const usize n = stack[i].node;
      if (wait.is_obligation(n)) {
        sends.push_back(Obligation{wait.pe_of(n), wait.color_of(n)});
      } else {
        relays.push_back(wait.pe_of(n));
      }
    }
    std::ostringstream os;
    os << "cross-color send ordering can deadlock: ";
    for (usize i = 0; i < sends.size(); ++i) {
      const Obligation& s = sends[i];
      const Obligation& producer = sends[(i + 1) % sends.size()];
      os << (i == 0 ? "" : "; ") << "PE(" << s.pe.x << ',' << s.pe.y
         << ") sends " << label(s.color) << " only after "
         << label(producer.color) << " arrives from PE(" << producer.pe.x
         << ',' << producer.pe.y << ')';
    }
    os << "; the wait cycle closes and none of these sends can happen";
    // Routing PEs on the cycle beyond the senders themselves (multi-hop
    // relays) are part of the knot too.
    std::vector<Coord2> extra;
    for (const Coord2 pe : relays) {
      const bool is_sender =
          std::any_of(sends.begin(), sends.end(),
                      [&](const Obligation& s) { return s.pe == pe; });
      if (!is_sender &&
          std::find(extra.begin(), extra.end(), pe) == extra.end()) {
        extra.push_back(pe);
      }
    }
    if (!extra.empty()) {
      os << " (traffic relayed through ";
      for (usize i = 0; i < extra.size(); ++i) {
        os << (i == 0 ? "" : ", ") << "PE(" << extra[i].x << ','
           << extra[i].y << ')';
      }
      os << ')';
    }
    FVF_ASSERT(!sends.empty());
    push(Diagnostic{Check::CrossColorDeadlock, Severity::Error,
                    sends.front().pe, sends.front().color, os.str()});
  }

  void check_determinism() {
    // Gather the arrival-order accumulations and the colors they fold.
    struct Fold {
      Coord2 pe;
      std::string fold_label;
      std::vector<Color> colors;
    };
    std::vector<Fold> folds;
    std::array<bool, Color::kMaxColors> fold_colors{};
    for (i32 y = 0; y < fabric_.height(); ++y) {
      for (i32 x = 0; x < fabric_.width(); ++x) {
        const wse::PeProgram* program = fabric_.pe(x, y).program();
        if (program == nullptr) {
          continue;
        }
        for (const wse::ReductionDeclaration& red :
             program->reduction_declarations()) {
          if (!red.folds_in_arrival_order) {
            continue;
          }
          Fold fold{Coord2{x, y}, red.label, {}};
          for (const Color c : red.colors) {
            if (!options_.skip_colors[c.id()]) {
              fold.colors.push_back(c);
              fold_colors[c.id()] = true;
            }
          }
          if (!fold.colors.empty()) {
            folds.push_back(std::move(fold));
          }
        }
      }
    }
    if (folds.empty()) {
      return;
    }

    // Per color: how many declared data senders can reach each PE's Ramp
    // over the union graph, with the first two recorded for the message.
    const usize pe_count = static_cast<usize>(fabric_.pe_count());
    constexpr usize kSampleSenders = 2;
    struct Reach {
      std::vector<u32> sources;
      std::vector<std::array<Coord2, kSampleSenders>> sample;
    };
    std::array<Reach, Color::kMaxColors> reach_by_color;
    for (u8 c = 0; c < Color::kMaxColors; ++c) {
      if (!fold_colors[c]) {
        continue;
      }
      const Color color{c};
      Reach& reach = reach_by_color[c];
      reach.sources.assign(pe_count, 0);
      reach.sample.assign(pe_count, {});
      const ColorGraph graph(fabric_, color);
      for (i32 y = 0; y < fabric_.height(); ++y) {
        for (i32 x = 0; x < fabric_.width(); ++x) {
          const wse::PeProgram* program = fabric_.pe(x, y).program();
          if (program == nullptr) {
            continue;
          }
          const std::vector<wse::SendDeclaration> sends =
              program->send_declarations();
          const bool sends_data =
              std::any_of(sends.begin(), sends.end(),
                          [&](const wse::SendDeclaration& s) {
                            return s.color == color && !s.control;
                          });
          if (!sends_data) {
            continue;
          }
          const Coord2 sender{x, y};
          walk_from_sender(graph, sender, [](usize) {}, [&](Coord2 pe) {
            const usize p = pe_index(fabric_, pe);
            if (reach.sources[p] < kSampleSenders) {
              reach.sample[p][reach.sources[p]] = sender;
            }
            ++reach.sources[p];
          });
        }
      }
    }

    for (const Fold& fold : folds) {
      const usize p = pe_index(fabric_, fold.pe);
      u64 sources = 0;
      std::vector<Coord2> samples;
      for (const Color c : fold.colors) {
        const Reach& reach = reach_by_color[c.id()];
        sources += reach.sources[p];
        for (usize i = 0;
             i < std::min<usize>(reach.sources[p], kSampleSenders); ++i) {
          if (samples.size() < 2 * kSampleSenders) {
            samples.push_back(reach.sample[p][i]);
          }
        }
      }
      if (sources < 2) {
        continue;  // at most one producer: delivery order is pinned
      }
      std::ostringstream os;
      os << "PE(" << fold.pe.x << ',' << fold.pe.y << ") folds '"
         << fold.fold_label << "' in arrival order over ";
      for (usize i = 0; i < fold.colors.size(); ++i) {
        os << (i == 0 ? "" : ", ") << label(fold.colors[i]);
      }
      os << ", and the routing plan lets " << sources
         << " senders reach its Ramp (";
      for (usize i = 0; i < samples.size(); ++i) {
        os << (i == 0 ? "" : ", ") << "PE(" << samples[i].x << ','
           << samples[i].y << ')';
      }
      if (sources > samples.size()) {
        os << ", ...";
      }
      os << "): the f32 result depends on delivery interleaving";
      push(Diagnostic{Check::OrderSensitiveReduction, Severity::Warning,
                      fold.pe,
                      fold.colors.size() == 1
                          ? std::optional<Color>{fold.colors[0]}
                          : std::nullopt,
                      os.str()});
    }
  }

  const wse::Fabric& fabric_;
  const FlowOptions& options_;
  std::vector<Diagnostic>& out_;
};

}  // namespace

BufferAnalysis analyze_buffer_occupancy(
    const wse::Fabric& fabric,
    const std::array<bool, Color::kMaxColors>& skip_colors) {
  const usize pe_count = static_cast<usize>(fabric.pe_count());
  std::vector<u64> total(pe_count, 0);
  std::vector<std::vector<ParkContribution>> contributions(pe_count);
  // Scratch accumulator over routing nodes, reused across colors.
  std::vector<u64> node_blocks;
  for (u8 c = 0; c < Color::kMaxColors; ++c) {
    if (skip_colors[c]) {
      continue;
    }
    const Color color{c};
    const ColorGraph graph(fabric, color);
    // Fast path: a color with no parkable (PE, input) node can never
    // occupy a router input buffer, whatever its traffic.
    std::vector<bool> parkable(graph.node_count(), false);
    bool any_parkable = false;
    for (i32 y = 0; y < fabric.height(); ++y) {
      for (i32 x = 0; x < fabric.width(); ++x) {
        const Coord2 pe{x, y};
        if (!graph.config(pe).configured()) {
          continue;
        }
        for (usize in = 0; in < wse::kLinkCount; ++in) {
          if (graph.parkable(pe, static_cast<Dir>(in))) {
            parkable[graph.node(pe, static_cast<Dir>(in))] = true;
            any_parkable = true;
          }
        }
      }
    }
    if (!any_parkable) {
      continue;
    }
    node_blocks.assign(graph.node_count(), 0);
    bool any_blocks = false;
    for (i32 y = 0; y < fabric.height(); ++y) {
      for (i32 x = 0; x < fabric.width(); ++x) {
        const wse::PeProgram* program = fabric.pe(x, y).program();
        if (program == nullptr) {
          continue;
        }
        const u64 in_flight = declared_in_flight(*program, color);
        if (in_flight == 0) {
          continue;
        }
        // Every parkable node this sender's traffic can occupy may hold
        // its whole in-flight window at once in the worst case.
        walk_from_sender(
            graph, Coord2{x, y},
            [&](usize n) {
              if (parkable[n]) {
                node_blocks[n] += in_flight;
                any_blocks = true;
              }
            },
            [](Coord2) {});
      }
    }
    if (!any_blocks) {
      continue;
    }
    for (usize n = 0; n < node_blocks.size(); ++n) {
      if (node_blocks[n] == 0) {
        continue;
      }
      const Coord2 pe = graph.pe_of(n);
      const usize p = pe_index(fabric, pe);
      total[p] += node_blocks[n];
      contributions[p].push_back(
          ParkContribution{color, graph.input_of(n), node_blocks[n]});
    }
  }
  BufferAnalysis analysis;
  for (usize p = 0; p < pe_count; ++p) {
    if (total[p] == 0) {
      continue;
    }
    analysis.minimal_depth = std::max(analysis.minimal_depth, total[p]);
    analysis.per_pe.push_back(
        PeOccupancy{Coord2{static_cast<i32>(p % static_cast<usize>(
                               fabric.width())),
                           static_cast<i32>(p / static_cast<usize>(
                               fabric.width()))},
                    total[p], std::move(contributions[p])});
  }
  return analysis;
}

void run_flow_checks(const wse::Fabric& fabric, const FlowOptions& options,
                     std::vector<Diagnostic>& out) {
  FlowLinter linter(fabric, options, out);
  linter.run();
}

}  // namespace fvf::lint
