/// \file flow.hpp
/// \brief fvf::lint flow analysis — buffer bounds, cross-color deadlock,
///        and reduction-order determinism, decided before launch.
///
/// Three failure modes of a constructed fabric program are only
/// observable mid-run through the event engine, which dynamic testing
/// cannot cover at wafer scale:
///
///   buffer-overflow-possible  the worst-case router input-buffer
///                             occupancy (blocks parked waiting for a
///                             switch advance) can exceed
///                             ExecutionOptions::router_buffer_depth, so
///                             the run would drop blocks and record a
///                             runtime error
///   cross-color-deadlock      the declared send orderings
///                             (PeProgram::channel_dependencies) plus the
///                             routing plan form a wait cycle: every send
///                             on the cycle waits for a delivery that
///                             transitively waits on that send
///   order-sensitive-reduction (warning) an f32 accumulation declared to
///                             fold in arrival order
///                             (PeProgram::reduction_declarations) can be
///                             reached by two or more senders, so the
///                             result depends on delivery interleaving
///
/// All three are decided on the union-over-switch-positions routing
/// graph (see docs/ARCHITECTURE.md "Static flow analysis" for the
/// lattice and its precision limits) and run at launch time only — zero
/// hot-path cost. The entry point is run_flow_checks(), invoked by
/// lint::run() under Options::check_flow; analyze_buffer_occupancy() is
/// exposed separately so tests can differentially validate the computed
/// bound against the executing fabric.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "lint/lint.hpp"
#include "wse/fabric.hpp"

namespace fvf::lint {

/// One parkable flow into a PE's router input buffer, as accounted by the
/// buffer-bound analyzer: up to `blocks` blocks of `color` entering
/// through `input` can be waiting for a switch-position advance at once.
struct ParkContribution {
  wse::Color color{};
  wse::Dir input{};
  u64 blocks = 0;
};

/// Worst-case router input-buffer occupancy of one PE: the sum of its
/// parkable contributions. The runtime drops a block (and records a run
/// error) when a park would start with `blocks` already waiting and
/// ExecutionOptions::router_buffer_depth <= that count, so `blocks` is
/// exactly the minimal sufficient depth for this PE.
struct PeOccupancy {
  Coord2 pe{};
  u64 blocks = 0;
  std::vector<ParkContribution> contributions;
};

/// Result of the buffer-bound analysis over a loaded fabric.
struct BufferAnalysis {
  /// Minimal ExecutionOptions::router_buffer_depth at which no declared
  /// traffic pattern can overflow any router input buffer: the maximum
  /// per-PE occupancy. Zero when nothing can park anywhere.
  u64 minimal_depth = 0;
  /// PEs with nonzero worst-case occupancy, in raster order.
  std::vector<PeOccupancy> per_pe;
};

/// Configuration for run_flow_checks. Defaults reproduce lint::run's
/// behaviour when driven through lint::Options.
struct FlowOptions {
  /// Router input-buffer depth the buffer-bound analysis compares
  /// against; 0 uses the loaded fabric's own configured depth.
  u32 router_buffer_depth = 0;
  /// Human label of a color (see lint::Options::color_label).
  std::function<std::string(wse::Color)> color_label;
  /// Colors to exclude from the analyses — lint::run sets the colors the
  /// per-color cycle check already flagged, since occupancy and wait-for
  /// properties are not meaningful on a cyclic routing graph.
  std::array<bool, wse::Color::kMaxColors> skip_colors{};
};

/// Computes the worst-case router input-buffer occupancy of every PE from
/// declared sends (SendDeclaration::in_flight), routing fan-in, and
/// switch-position unions. `skip_colors` excludes colors (cyclic routing
/// graphs make the bound meaningless); pass {} to analyze everything.
[[nodiscard]] BufferAnalysis analyze_buffer_occupancy(
    const wse::Fabric& fabric,
    const std::array<bool, wse::Color::kMaxColors>& skip_colors = {});

/// Runs the three flow analyses over a loaded (but not executed) fabric,
/// appending diagnostics to `out`. Called by lint::run under
/// Options::check_flow; exposed for tools that want flow findings alone.
void run_flow_checks(const wse::Fabric& fabric, const FlowOptions& options,
                     std::vector<Diagnostic>& out);

}  // namespace fvf::lint
