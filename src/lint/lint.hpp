/// \file lint.hpp
/// \brief fvf::lint — static verification of a constructed-but-not-executed
///        fabric program.
///
/// The correctness burden of a dataflow program sits in hand-routed colors,
/// switch positions, and per-PE memory budgets: a mis-routed color parks
/// wavelets in a router input buffer forever, an oversubscribed PE fails at
/// first allocation, and both only surface mid-run (or never). fvf::lint
/// walks the loaded-but-unexecuted fabric — router switch configurations,
/// PeProgram color bindings (handles_color), declared sends
/// (send_declarations), and declared memory footprints (reserve_memory on
/// probe instances) — and reports typed diagnostics with PE coordinates and
/// color names, before a single event runs.
///
/// Diagnostic catalogue (Check):
///
///   unclaimed-color     a router configures a color no component claimed
///                       in the ColorPlan (the historic load-time audit)
///   switch-reconfigured a color's switch positions were installed more
///                       than once during load: a later component replaced
///                       the table an earlier one planned its traffic on
///   routing-cycle       the per-color routing graph (union over all switch
///                       positions) contains a cycle: wavelets can
///                       circulate forever (deadlock potential)
///   dead-end            traffic is routed into a router input that no
///                       switch position of the receiving PE accepts: the
///                       blocks wait in the input buffer forever (or, on an
///                       unconfigured color, fail the run)
///   unrouted-send       a program declares a send on a color whose switch
///                       positions never accept the Ramp: injected wavelets
///                       are parked at the sender
///   unhandled-delivery  a declared send can reach a PE's Ramp whose
///                       program does not handle the color (handles_color)
///   memory-over-budget  the declared static footprint (reserve_memory)
///                       exceeds the PE byte budget
///   memory-near-limit   (warning) the footprint is within the warn
///                       fraction of the budget
///
/// Flow analyses (see lint/flow.hpp for the model):
///
///   buffer-overflow-possible  the worst-case router input-buffer
///                       occupancy, from declared sends and
///                       switch-position unions, exceeds
///                       router_buffer_depth; the diagnostic carries the
///                       minimal sufficient depth in `bound`
///   cross-color-deadlock declared send orderings
///                       (PeProgram::channel_dependencies) plus the
///                       routing plan form a wait cycle across colors
///   order-sensitive-reduction (warning) an f32 accumulation declared to
///                       fold in arrival order can be reached by two or
///                       more senders: the result depends on delivery
///                       interleaving
///
/// Off-fabric traffic is deliberately *not* a finding: every shipped
/// program injects on all movement colors and lets the wafer edge absorb
/// boundary traffic, exactly like the real machine.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "wse/fabric.hpp"

namespace fvf::lint {

/// Verification level a harness launch opts into (--lint=strict|warn|off).
enum class Level : u8 {
  Off,     ///< only the historic unclaimed-color audit runs
  Warn,    ///< full lint; findings print to stderr, the run proceeds
  Strict,  ///< full lint; any error-severity finding fails the load
};

/// The typed diagnostic classes (see the file comment for the catalogue).
enum class Check : u8 {
  UnclaimedColor,
  SwitchReconfigured,
  RoutingCycle,
  DeadEnd,
  UnroutedSend,
  UnhandledDelivery,
  MemoryOverBudget,
  MemoryNearLimit,
  BufferOverflowPossible,
  CrossColorDeadlock,
  OrderSensitiveReduction,
};

enum class Severity : u8 { Warning, Error };

/// Stable kebab-case slug of a check, used in rendered reports and golden
/// message files.
[[nodiscard]] std::string_view check_name(Check check) noexcept;

/// One finding. `message` is the full human-readable text (it already
/// names the PE and color); `pe` and `color` carry the same facts typed,
/// for tools that want to group or filter.
struct Diagnostic {
  Check check{};
  Severity severity = Severity::Error;
  Coord2 pe{};
  std::optional<wse::Color> color;
  std::string message;
  /// Computed quantity where the check has one — today the minimal
  /// sufficient router_buffer_depth on buffer-overflow-possible.
  std::optional<u64> bound;
};

/// Lint configuration. The callbacks decouple fvf::lint from the dataflow
/// layer above it: the ColorPlan supplies claim/naming context without a
/// library dependency in that direction.
struct Options {
  /// Routing-graph checks: cycles, dead-ends, unrouted sends, unhandled
  /// deliveries.
  bool check_routing = true;
  /// Per-PE static memory verification (needs probe_factory).
  bool check_memory = true;
  /// Switch-position reconfiguration hazards.
  bool check_reconfiguration = true;
  /// Flow analyses: buffer bounds, cross-color deadlock, reduction-order
  /// determinism (lint/flow.hpp).
  bool check_flow = true;
  /// Router input-buffer depth the buffer-bound analysis compares
  /// against; 0 uses the loaded fabric's configured depth
  /// (ExecutionOptions::router_buffer_depth).
  u32 router_buffer_depth = 0;
  /// Fraction of the byte budget at which memory-near-limit fires.
  f64 memory_warn_fraction = 0.9;
  /// Budget override for the memory check; 0 uses each PE's own budget.
  usize memory_budget = 0;
  /// Constructs a fresh program instance for a PE so its reserve_memory
  /// declaration can be probed without touching the loaded fabric. The
  /// memory check is skipped when null.
  wse::ProgramFactory probe_factory;
  /// Claim oracle (ColorPlan::claimed). The unclaimed-color audit is
  /// skipped when null.
  std::function<bool(wse::Color)> color_claimed;
  /// Renders the color map appended to unclaimed-color diagnostics
  /// (ColorPlan::describe).
  std::function<std::string()> color_map;
  /// Human label of a color, e.g. "color 3 ('tpfa cardinal exchange')".
  /// Defaults to "color <id>" when null.
  std::function<std::string(wse::Color)> color_label;
};

struct Report {
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool clean() const noexcept { return diagnostics.empty(); }
  [[nodiscard]] usize error_count() const noexcept;
  [[nodiscard]] usize warning_count() const noexcept;
  /// One line per diagnostic: "<severity>[<check>] <message>\n". The
  /// rendering is deterministic (fixed iteration order), so golden-message
  /// tests can compare it verbatim.
  [[nodiscard]] std::string describe() const;
};

/// Runs every enabled check over a loaded (but not executed) fabric.
[[nodiscard]] Report run(const wse::Fabric& fabric, const Options& options);

}  // namespace fvf::lint
