#include "lint/lint.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <utility>

#include "common/assert.hpp"
#include "lint/color_graph.hpp"
#include "lint/flow.hpp"
#include "wse/memory.hpp"
#include "wse/program.hpp"
#include "wse/route.hpp"
#include "wse/router.hpp"

namespace fvf::lint {

namespace {

using detail::ColorGraph;
using wse::Color;
using wse::Dir;

[[nodiscard]] std::string_view long_dir_name(Dir d) noexcept {
  switch (d) {
    case Dir::North: return "North";
    case Dir::East: return "East";
    case Dir::South: return "South";
    case Dir::West: return "West";
    case Dir::Ramp: return "Ramp";
  }
  return "?";
}

class Linter {
 public:
  Linter(const wse::Fabric& fabric, const Options& options)
      : fabric_(fabric), options_(options) {}

  [[nodiscard]] Report run() {
    audit_claims();
    for (u8 c = 0; c < Color::kMaxColors; ++c) {
      lint_color(Color{c});
    }
    if (options_.check_flow) {
      FlowOptions flow;
      flow.router_buffer_depth = options_.router_buffer_depth;
      flow.color_label = options_.color_label;
      // Occupancy bounds and wait-for reachability are meaningless on a
      // cyclic routing graph; the routing-cycle finding owns those
      // colors.
      flow.skip_colors = cyclic_colors_;
      run_flow_checks(fabric_, flow, report_.diagnostics);
    }
    if (options_.check_memory && options_.probe_factory != nullptr) {
      lint_memory();
    }
    return std::move(report_);
  }

 private:
  [[nodiscard]] std::string label(Color color) const {
    if (options_.color_label != nullptr) {
      return options_.color_label(color);
    }
    std::ostringstream os;
    os << "color " << static_cast<int>(color.id());
    return os.str();
  }

  void add(Check check, Severity severity, Coord2 pe,
           std::optional<Color> color, std::string message) {
    report_.diagnostics.push_back(
        Diagnostic{check, severity, pe, color, std::move(message)});
  }

  /// The historic load-time route audit: every configured color must be
  /// claimed in the ColorPlan. Iteration order and message text are kept
  /// verbatim so FabricHarness can preserve its fail-fast contract.
  void audit_claims() {
    if (options_.color_claimed == nullptr) {
      return;
    }
    for (i32 y = 0; y < fabric_.height(); ++y) {
      for (i32 x = 0; x < fabric_.width(); ++x) {
        const wse::Router& router = fabric_.router(x, y);
        for (u8 c = 0; c < Color::kMaxColors; ++c) {
          const Color color{c};
          if (!router.config(color).configured() ||
              options_.color_claimed(color)) {
            continue;
          }
          std::ostringstream os;
          os << "router at PE(" << x << ',' << y << ") configures color "
             << static_cast<int>(c)
             << " which no component claimed in the ColorPlan";
          if (options_.color_map != nullptr) {
            os << '\n' << options_.color_map();
          }
          add(Check::UnclaimedColor, Severity::Error, Coord2{x, y}, color,
              os.str());
        }
      }
    }
  }

  void lint_color(Color color) {
    if (options_.check_reconfiguration) {
      check_reconfiguration(color);
    }
    if (!options_.check_routing) {
      return;
    }
    const ColorGraph graph(fabric_, color);
    check_dead_ends(graph, color);
    check_cycles(graph, color);
    check_sends(graph, color);
  }

  void check_reconfiguration(Color color) {
    for (i32 y = 0; y < fabric_.height(); ++y) {
      for (i32 x = 0; x < fabric_.width(); ++x) {
        const u32 count = fabric_.router(x, y).configure_count(color);
        if (count <= 1) {
          continue;
        }
        std::ostringstream os;
        os << "router at PE(" << x << ',' << y << ") installed "
           << label(color) << ' ' << count
           << " times during load: a later component silently replaced the "
              "switch positions an earlier one planned its traffic on";
        add(Check::SwitchReconfigured, Severity::Error, Coord2{x, y}, color,
            os.str());
      }
    }
  }

  /// Flags traffic routed into a router input that no switch position of
  /// the receiving PE accepts: such blocks wait in the input buffer
  /// forever (or fail the run outright when the color is unconfigured
  /// there). Off-fabric outputs are absorbed at the wafer edge by design
  /// and are never findings.
  void check_dead_ends(const ColorGraph& graph, Color color) {
    std::vector<bool> reported(graph.node_count(), false);
    for (i32 y = 0; y < graph.height(); ++y) {
      for (i32 x = 0; x < graph.width(); ++x) {
        const Coord2 pe{x, y};
        if (!graph.config(pe).configured()) {
          continue;
        }
        for (usize in = 0; in < wse::kLinkCount; ++in) {
          const Dir input = static_cast<Dir>(in);
          graph.each_output(pe, input, [&](Dir out) {
            if (out == Dir::Ramp) {
              return;
            }
            const Coord2 off = wse::dir_offset(out);
            const Coord2 target{pe.x + off.x, pe.y + off.y};
            if (!graph.on_fabric(target)) {
              return;  // absorbed at the wafer edge
            }
            const Dir arrival = wse::opposite(out);
            if (graph.accepts(target, arrival)) {
              return;
            }
            const usize node = graph.node(target, arrival);
            if (reported[node]) {
              return;
            }
            reported[node] = true;
            std::ostringstream os;
            os << label(color) << " is routed from PE(" << pe.x << ','
               << pe.y << ") into the " << long_dir_name(arrival)
               << " input of PE(" << target.x << ',' << target.y << "), ";
            if (graph.config(target).configured()) {
              os << "which no switch position there accepts: blocks would "
                    "wait in that router's input buffer forever";
            } else {
              os << "where the color is not configured at all: the run "
                    "would fail at the first wavelet";
            }
            add(Check::DeadEnd, Severity::Error, target, color, os.str());
          });
        }
      }
    }
  }

  /// Depth-first search over the union routing graph; reports the first
  /// cycle found per color (one finding is enough to localize the knot).
  void check_cycles(const ColorGraph& graph, Color color) {
    enum class Mark : u8 { White, Gray, Black };
    std::vector<Mark> mark(graph.node_count(), Mark::White);
    std::vector<std::vector<usize>> succ(graph.node_count());
    const auto successors = [&](usize n) -> const std::vector<usize>& {
      std::vector<usize>& out = succ[n];
      if (!out.empty()) {
        return out;
      }
      const Coord2 pe = graph.pe_of(n);
      if (graph.config(pe).configured()) {
        graph.each_output(pe, graph.input_of(n), [&](Dir o) {
          if (o == Dir::Ramp) {
            return;
          }
          const Coord2 off = wse::dir_offset(o);
          const Coord2 target{pe.x + off.x, pe.y + off.y};
          if (graph.on_fabric(target)) {
            out.push_back(graph.node(target, wse::opposite(o)));
          }
        });
      }
      return out;
    };

    struct Frame {
      usize node = 0;
      usize next = 0;
    };
    std::vector<Frame> stack;
    for (usize root = 0; root < graph.node_count(); ++root) {
      if (mark[root] != Mark::White) {
        continue;
      }
      stack.push_back(Frame{root});
      mark[root] = Mark::Gray;
      while (!stack.empty()) {
        Frame& frame = stack.back();
        const std::vector<usize>& next = successors(frame.node);
        if (frame.next >= next.size()) {
          mark[frame.node] = Mark::Black;
          stack.pop_back();
          continue;
        }
        const usize target = next[frame.next++];
        if (mark[target] == Mark::Gray) {
          cyclic_colors_[color.id()] = true;
          report_cycle(graph, color, stack, target);
          return;  // one cycle per color
        }
        if (mark[target] == Mark::White) {
          mark[target] = Mark::Gray;
          stack.push_back(Frame{target});
        }
      }
    }
  }

  template <typename Frames>
  void report_cycle(const ColorGraph& graph, Color color,
                    const Frames& stack, usize back_to) {
    // The cycle is the stack suffix starting at `back_to`.
    usize start = 0;
    for (usize i = 0; i < stack.size(); ++i) {
      if (stack[i].node == back_to) {
        start = i;
        break;
      }
    }
    std::ostringstream os;
    os << label(color) << " routing forms a cycle: ";
    for (usize i = start; i < stack.size(); ++i) {
      const Coord2 pe = graph.pe_of(stack[i].node);
      os << "PE(" << pe.x << ',' << pe.y << ") -> ";
    }
    const Coord2 first = graph.pe_of(back_to);
    os << "PE(" << first.x << ',' << first.y
       << "); wavelets entering it would circulate forever (deadlock)";
    add(Check::RoutingCycle, Severity::Error, first, color, os.str());
  }

  /// Send-centric checks: every declared send must have a Ramp-accepting
  /// switch position at the sender (unrouted-send), and every PE whose
  /// Ramp the traffic can reach must handle the color
  /// (unhandled-delivery). Reachability runs over the union graph from
  /// all declared senders of each kind (data / control).
  void check_sends(const ColorGraph& graph, Color color) {
    std::vector<Coord2> data_senders;
    std::vector<Coord2> control_senders;
    for (i32 y = 0; y < graph.height(); ++y) {
      for (i32 x = 0; x < graph.width(); ++x) {
        const wse::PeProgram* program = fabric_.pe(x, y).program();
        if (program == nullptr) {
          continue;
        }
        bool data = false;
        bool control = false;
        for (const wse::SendDeclaration& send : program->send_declarations()) {
          if (send.color != color) {
            continue;
          }
          (send.control ? control : data) = true;
        }
        if (!data && !control) {
          continue;
        }
        const Coord2 pe{x, y};
        if (data) {
          data_senders.push_back(pe);
        }
        if (control) {
          control_senders.push_back(pe);
        }
        if (!graph.accepts(pe, Dir::Ramp)) {
          std::ostringstream os;
          os << "PE(" << x << ',' << y << ") declares a send on "
             << label(color);
          if (graph.config(pe).configured()) {
            os << " but no switch position of that color accepts the Ramp: "
                  "injected wavelets would never leave the PE";
          } else {
            os << " but the color is not configured on its router";
          }
          add(Check::UnroutedSend, Severity::Error, pe, color, os.str());
        }
      }
    }
    check_deliveries(graph, color, data_senders, /*control=*/false);
    check_deliveries(graph, color, control_senders, /*control=*/true);
  }

  void check_deliveries(const ColorGraph& graph, Color color,
                        const std::vector<Coord2>& senders, bool control) {
    if (senders.empty()) {
      return;
    }
    // Multi-source BFS from every sender's Ramp injection point.
    std::vector<bool> visited(graph.node_count(), false);
    std::vector<usize> frontier;
    for (const Coord2 pe : senders) {
      const usize n = graph.node(pe, Dir::Ramp);
      if (graph.accepts(pe, Dir::Ramp) && !visited[n]) {
        visited[n] = true;
        frontier.push_back(n);
      }
    }
    std::vector<bool> delivered(static_cast<usize>(fabric_.pe_count()),
                                false);
    while (!frontier.empty()) {
      const usize n = frontier.back();
      frontier.pop_back();
      const Coord2 pe = graph.pe_of(n);
      graph.each_output(pe, graph.input_of(n), [&](Dir out) {
        if (out == Dir::Ramp) {
          delivered[static_cast<usize>(pe.y) *
                        static_cast<usize>(graph.width()) +
                    static_cast<usize>(pe.x)] = true;
          return;
        }
        const Coord2 off = wse::dir_offset(out);
        const Coord2 target{pe.x + off.x, pe.y + off.y};
        if (!graph.on_fabric(target)) {
          return;
        }
        const usize t = graph.node(target, wse::opposite(out));
        if (!visited[t] && graph.accepts(target, wse::opposite(out))) {
          visited[t] = true;
          frontier.push_back(t);
        }
      });
    }
    for (i32 y = 0; y < graph.height(); ++y) {
      for (i32 x = 0; x < graph.width(); ++x) {
        if (!delivered[static_cast<usize>(y) *
                           static_cast<usize>(graph.width()) +
                       static_cast<usize>(x)]) {
          continue;
        }
        const wse::PeProgram* program = fabric_.pe(x, y).program();
        if (program == nullptr || program->handles_color(color, control)) {
          continue;
        }
        std::ostringstream os;
        os << label(color) << ' '
           << (control ? "control wavelets" : "data blocks")
           << " can reach the Ramp of PE(" << x << ',' << y
           << "), whose program does not handle that color";
        add(Check::UnhandledDelivery, Severity::Error, Coord2{x, y}, color,
            os.str());
      }
    }
  }

  void lint_memory() {
    const Coord2 size{fabric_.width(), fabric_.height()};
    for (i32 y = 0; y < fabric_.height(); ++y) {
      for (i32 x = 0; x < fabric_.width(); ++x) {
        // Probe arena with an effectively unlimited budget: the point is
        // to *measure* the declaration, not to fail at the first excess
        // reserve (PeMemory throws on its own budget).
        wse::PeMemory probe(usize{1} << 40);
        const std::unique_ptr<wse::PeProgram> program =
            options_.probe_factory(Coord2{x, y}, size);
        FVF_REQUIRE_MSG(program != nullptr,
                        "lint probe factory returned no program for PE("
                            << x << ',' << y << ")");
        program->reserve_memory(probe);
        const usize used = probe.used();
        const usize budget = options_.memory_budget != 0
                                 ? options_.memory_budget
                                 : fabric_.pe(x, y).memory().budget();
        if (used > budget) {
          std::ostringstream os;
          os << "PE(" << x << ',' << y << ") declares " << used
             << " bytes of static PE memory, exceeding the " << budget
             << "-byte budget by " << used - budget << " bytes (";
          bool first = true;
          for (const wse::AllocationRecord& record : probe.records()) {
            os << (first ? "" : ", ") << '\'' << record.tag << "' "
               << record.bytes;
            first = false;
          }
          os << ')';
          add(Check::MemoryOverBudget, Severity::Error, Coord2{x, y},
              std::nullopt, os.str());
        } else if (static_cast<f64>(used) >=
                   options_.memory_warn_fraction * static_cast<f64>(budget)) {
          std::ostringstream os;
          os << "PE(" << x << ',' << y << ") declares " << used
             << " bytes of static PE memory, "
             << static_cast<int>(100.0 * static_cast<f64>(used) /
                                 static_cast<f64>(budget))
             << "% of the " << budget << "-byte budget";
          add(Check::MemoryNearLimit, Severity::Warning, Coord2{x, y},
              std::nullopt, os.str());
        }
      }
    }
  }

  const wse::Fabric& fabric_;
  const Options& options_;
  Report report_;
  std::array<bool, Color::kMaxColors> cyclic_colors_{};
};

}  // namespace

std::string_view check_name(Check check) noexcept {
  switch (check) {
    case Check::UnclaimedColor: return "unclaimed-color";
    case Check::SwitchReconfigured: return "switch-reconfigured";
    case Check::RoutingCycle: return "routing-cycle";
    case Check::DeadEnd: return "dead-end";
    case Check::UnroutedSend: return "unrouted-send";
    case Check::UnhandledDelivery: return "unhandled-delivery";
    case Check::MemoryOverBudget: return "memory-over-budget";
    case Check::MemoryNearLimit: return "memory-near-limit";
    case Check::BufferOverflowPossible: return "buffer-overflow-possible";
    case Check::CrossColorDeadlock: return "cross-color-deadlock";
    case Check::OrderSensitiveReduction: return "order-sensitive-reduction";
  }
  return "unknown";
}

usize Report::error_count() const noexcept {
  return static_cast<usize>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::Error;
                    }));
}

usize Report::warning_count() const noexcept {
  return diagnostics.size() - error_count();
}

std::string Report::describe() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics) {
    os << (d.severity == Severity::Error ? "error" : "warning") << '['
       << check_name(d.check) << "] " << d.message << '\n';
  }
  return os.str();
}

Report run(const wse::Fabric& fabric, const Options& options) {
  Linter linter(fabric, options);
  return linter.run();
}

}  // namespace fvf::lint
