/// \file color_graph.hpp
/// \brief The per-color routing graph fvf::lint analyses run on.
///
/// Nodes are (PE, input link) pairs; edges follow the *union* of the
/// routing rules over all switch positions of the color. The switch state
/// at an arbitrary run point is dynamic (control wavelets advance it), so
/// every reachability-style property must be decided conservatively on
/// this union — see docs/ARCHITECTURE.md "Static flow analysis" for what
/// is and is not decidable on it. Shared by the classic routing checks
/// (lint.cpp) and the flow analyzers (flow.cpp); internal to fvf::lint.
#pragma once

#include "wse/fabric.hpp"
#include "wse/route.hpp"
#include "wse/router.hpp"

namespace fvf::lint::detail {

class ColorGraph {
 public:
  ColorGraph(const wse::Fabric& fabric, wse::Color color)
      : fabric_(fabric), color_(color) {}

  [[nodiscard]] i32 width() const noexcept { return fabric_.width(); }
  [[nodiscard]] i32 height() const noexcept { return fabric_.height(); }
  [[nodiscard]] usize node_count() const noexcept {
    return static_cast<usize>(fabric_.pe_count()) * wse::kLinkCount;
  }
  [[nodiscard]] usize node(Coord2 pe, wse::Dir input) const noexcept {
    return (static_cast<usize>(pe.y) * static_cast<usize>(width()) +
            static_cast<usize>(pe.x)) *
               wse::kLinkCount +
           static_cast<usize>(input);
  }
  [[nodiscard]] Coord2 pe_of(usize n) const noexcept {
    const usize pe = n / wse::kLinkCount;
    return Coord2{static_cast<i32>(pe % static_cast<usize>(width())),
                  static_cast<i32>(pe / static_cast<usize>(width()))};
  }
  [[nodiscard]] wse::Dir input_of(usize n) const noexcept {
    return static_cast<wse::Dir>(n % wse::kLinkCount);
  }

  [[nodiscard]] const wse::ColorConfig& config(Coord2 pe) const {
    return fabric_.router(pe.x, pe.y).config(color_);
  }

  /// Whether any switch position of `pe` has a rule for `input`.
  [[nodiscard]] bool accepts(Coord2 pe, wse::Dir input) const {
    for (const wse::SwitchPosition& pos : config(pe).positions()) {
      if (pos.find(input) != nullptr) {
        return true;
      }
    }
    return false;
  }

  /// Whether a block entering `pe` through `input` can *park*: the color
  /// has more than one switch position there, at least one position
  /// accepts the input (otherwise the dead-end check owns the finding),
  /// and at least one position does not — so depending on the dynamic
  /// switch state the block may wait in the router's input buffer for a
  /// control-wavelet advance.
  [[nodiscard]] bool parkable(Coord2 pe, wse::Dir input) const {
    const std::vector<wse::SwitchPosition>& positions =
        config(pe).positions();
    if (positions.size() < 2) {
      return false;
    }
    usize accepting = 0;
    for (const wse::SwitchPosition& pos : positions) {
      if (pos.find(input) != nullptr) {
        ++accepting;
      }
    }
    return accepting >= 1 && accepting < positions.size();
  }

  [[nodiscard]] bool on_fabric(Coord2 pe) const noexcept {
    return pe.x >= 0 && pe.x < width() && pe.y >= 0 && pe.y < height();
  }

  /// Invokes `fn(output)` for every output link of `input`'s rules, over
  /// all switch positions (duplicates across positions included).
  template <typename Fn>
  void each_output(Coord2 pe, wse::Dir input, Fn&& fn) const {
    for (const wse::SwitchPosition& pos : config(pe).positions()) {
      if (const wse::RouteRule* rule = pos.find(input)) {
        for (const wse::Dir out : rule->outputs) {
          fn(out);
        }
      }
    }
  }

 private:
  const wse::Fabric& fabric_;
  wse::Color color_;
};

}  // namespace fvf::lint::detail
