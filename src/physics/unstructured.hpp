/// \file unstructured.hpp
/// \brief General (unstructured) TPFA mesh representation — groundwork
///        for the paper's first future-work item: "supporting arbitrary
///        mesh topologies and mapping them efficiently onto a dataflow
///        architecture" (Section 9).
///
/// A mesh is reduced to exactly what TPFA needs: cells (volume +
/// elevation) and faces (a pair of cells + a transmissibility). The
/// structured Cartesian path remains the performance path; this
/// representation feeds the mapping studies in core/fabric_mapping.hpp
/// and a reference assembly equivalent to the structured face-based one.
#pragma once

#include <vector>

#include "common/array3d.hpp"
#include "physics/problem.hpp"

namespace fvf::physics {

/// One TPFA connection between two cells.
struct FaceConnection {
  i64 cell_a = 0;
  i64 cell_b = 0;
  f32 transmissibility = 0.0f;
};

/// Topology-agnostic TPFA mesh.
struct UnstructuredMesh {
  i64 cell_count = 0;
  std::vector<f32> elevation;    ///< per cell
  std::vector<FaceConnection> faces;

  /// Per-cell neighbor counts (degree distribution of the flux graph).
  [[nodiscard]] std::vector<i32> degrees() const;

  /// Validates indices and transmissibilities; throws on corruption.
  void validate() const;
};

/// Flattens a Cartesian FlowProblem into the unstructured representation,
/// enumerating faces in the canonical owned-face order (z-outer, y, x,
/// then x+/y+/z+/xy++/xy+- per cell) so results are directly comparable
/// with the structured face-based assembly.
[[nodiscard]] UnstructuredMesh flatten_problem(
    const physics::FlowProblem& problem);

/// Face-based residual assembly on the unstructured mesh (each face
/// visited once, flux scattered with opposite signs). With a mesh from
/// flatten_problem and the same inputs, the result is bit-identical to
/// physics::assemble_residual_face_based.
void assemble_residual_unstructured(const UnstructuredMesh& mesh,
                                    const physics::FluidProperties& fluid,
                                    std::span<const f32> pressure,
                                    std::span<const f32> density,
                                    std::span<f32> residual);

}  // namespace fvf::physics
