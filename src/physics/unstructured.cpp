#include "physics/unstructured.hpp"

#include "common/assert.hpp"
#include "physics/flux.hpp"
#include "physics/residual.hpp"

namespace fvf::physics {

std::vector<i32> UnstructuredMesh::degrees() const {
  std::vector<i32> deg(static_cast<usize>(cell_count), 0);
  for (const FaceConnection& f : faces) {
    ++deg[static_cast<usize>(f.cell_a)];
    ++deg[static_cast<usize>(f.cell_b)];
  }
  return deg;
}

void UnstructuredMesh::validate() const {
  FVF_REQUIRE(cell_count > 0);
  FVF_REQUIRE(static_cast<i64>(elevation.size()) == cell_count);
  for (const FaceConnection& f : faces) {
    FVF_REQUIRE(f.cell_a >= 0 && f.cell_a < cell_count);
    FVF_REQUIRE(f.cell_b >= 0 && f.cell_b < cell_count);
    FVF_REQUIRE_MSG(f.cell_a != f.cell_b, "self-loop face");
    FVF_REQUIRE(f.transmissibility >= 0.0f);
  }
}

UnstructuredMesh flatten_problem(const physics::FlowProblem& problem) {
  const Extents3 ext = problem.extents();
  const Array3<f32> elev = physics::cell_elevations(problem.mesh());

  UnstructuredMesh mesh;
  mesh.cell_count = ext.cell_count();
  mesh.elevation.assign(elev.flat().begin(), elev.flat().end());

  // Owned-face enumeration in the exact order of the structured
  // face-based assembly (see physics/residual.cpp).
  constexpr mesh::Face kOwnedFaces[] = {
      mesh::Face::XPlus, mesh::Face::YPlus, mesh::Face::ZPlus,
      mesh::Face::DiagPP, mesh::Face::DiagPM};
  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        for (const mesh::Face f : kOwnedFaces) {
          const auto nb = problem.mesh().neighbor(x, y, z, f);
          if (!nb) {
            continue;
          }
          mesh.faces.push_back(FaceConnection{
              ext.linear(x, y, z), ext.linear(nb->x, nb->y, nb->z),
              problem.transmissibility().at(x, y, z, f)});
        }
      }
    }
  }
  return mesh;
}

void assemble_residual_unstructured(const UnstructuredMesh& mesh,
                                    const physics::FluidProperties& fluid,
                                    std::span<const f32> pressure,
                                    std::span<const f32> density,
                                    std::span<f32> residual) {
  FVF_REQUIRE(static_cast<i64>(pressure.size()) == mesh.cell_count);
  FVF_REQUIRE(static_cast<i64>(density.size()) == mesh.cell_count);
  FVF_REQUIRE(static_cast<i64>(residual.size()) == mesh.cell_count);

  const physics::KernelConstants constants =
      physics::make_kernel_constants(fluid);
  physics::NullOps ops;

  for (f32& r : residual) {
    r = 0.0f;
  }
  for (const FaceConnection& face : mesh.faces) {
    const usize a = static_cast<usize>(face.cell_a);
    const usize b = static_cast<usize>(face.cell_b);
    const physics::FaceInputs in{
        pressure[a],       pressure[b],       density[a], density[b],
        mesh.elevation[a], mesh.elevation[b], face.transmissibility};
    const f32 flux = physics::tpfa_face_flux(in, constants, ops);
    residual[a] += flux;
    residual[b] -= flux;
  }
}

}  // namespace fvf::physics
