#include "physics/residual.hpp"

#include "physics/flux.hpp"

namespace fvf::physics {

void evaluate_density(const FluidProperties& fluid, Span3<const f32> pressure,
                      Span3<f32> density) {
  FVF_REQUIRE(pressure.extents() == density.extents());
  const i64 n = pressure.size();
  const f32* p = pressure.data();
  f32* rho = density.data();
  for (i64 i = 0; i < n; ++i) {
    rho[i] = fluid.density_f32(p[i]);
  }
}

Array3<f32> cell_elevations(const mesh::CartesianMesh& m) {
  const Extents3 ext = m.extents();
  Array3<f32> elev(ext);
  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        elev(x, y, z) = static_cast<f32>(m.elevation(x, y, z));
      }
    }
  }
  return elev;
}

void assemble_residual_face_based(const mesh::CartesianMesh& m,
                                  const mesh::TransmissibilityField& trans,
                                  const FluidProperties& fluid,
                                  Span3<const f32> pressure,
                                  Span3<const f32> density,
                                  Span3<f32> residual, StencilMode mode) {
  const Extents3 ext = m.extents();
  FVF_REQUIRE(pressure.extents() == ext);
  FVF_REQUIRE(density.extents() == ext);
  FVF_REQUIRE(residual.extents() == ext);

  const KernelConstants constants = make_kernel_constants(fluid);
  const Array3<f32> elev = cell_elevations(m);
  NullOps ops;

  for (i64 i = 0; i < residual.size(); ++i) {
    residual[i] = 0.0f;
  }

  // Visit each interior face once from its "plus" side.
  constexpr mesh::Face kOwnedFaces[] = {
      mesh::Face::XPlus, mesh::Face::YPlus, mesh::Face::ZPlus,
      mesh::Face::DiagPP, mesh::Face::DiagPM};

  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        for (const mesh::Face f : kOwnedFaces) {
          if (mode == StencilMode::CardinalOnly && mesh::is_diagonal(f)) {
            continue;
          }
          const auto nb = m.neighbor(x, y, z, f);
          if (!nb) {
            continue;
          }
          const FaceInputs in{
              pressure(x, y, z),  pressure(nb->x, nb->y, nb->z),
              density(x, y, z),   density(nb->x, nb->y, nb->z),
              elev(x, y, z),      elev(nb->x, nb->y, nb->z),
              trans.at(x, y, z, f)};
          const f32 flux = tpfa_face_flux(in, constants, ops);
          residual(x, y, z) += flux;
          residual(nb->x, nb->y, nb->z) -= flux;
        }
      }
    }
  }
}

void assemble_residual_f64(const mesh::CartesianMesh& m,
                           const mesh::TransmissibilityField& trans,
                           const FluidProperties& fluid,
                           Span3<const f32> pressure, Span3<f64> residual,
                           StencilMode mode) {
  const Extents3 ext = m.extents();
  FVF_REQUIRE(pressure.extents() == ext);
  FVF_REQUIRE(residual.extents() == ext);

  const f64 inv_mu = 1.0 / fluid.viscosity;
  const Array3<f32> elev = cell_elevations(m);

  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        f64 r = 0.0;
        const f64 p_self = pressure(x, y, z);
        const f64 rho_self = fluid.density(p_self);
        for (const mesh::Face f : mesh::kAllFaces) {
          if (mode == StencilMode::CardinalOnly && mesh::is_diagonal(f)) {
            continue;
          }
          const auto nb = m.neighbor(x, y, z, f);
          if (!nb) {
            continue;
          }
          const f64 p_neib = pressure(nb->x, nb->y, nb->z);
          const f64 rho_neib = fluid.density(p_neib);
          r += tpfa_face_flux_f64(p_self, p_neib, rho_self, rho_neib,
                                  elev(x, y, z), elev(nb->x, nb->y, nb->z),
                                  trans.at(x, y, z, f), fluid.gravity, inv_mu);
        }
        residual(x, y, z) = r;
      }
    }
  }
}

void apply_algorithm1(const mesh::CartesianMesh& m,
                      const mesh::TransmissibilityField& trans,
                      const FluidProperties& fluid, Span3<const f32> pressure,
                      Span3<f32> density_scratch, Span3<f32> residual,
                      StencilMode mode) {
  evaluate_density(fluid, pressure, density_scratch);
  NullOps ops;
  assemble_residual_cell_based(m, trans, fluid, pressure,
                               Span3<const f32>(density_scratch.data(),
                                                density_scratch.extents()),
                               residual, ops, mode);
}

}  // namespace fvf::physics
