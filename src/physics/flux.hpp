/// \file flux.hpp
/// \brief The TPFA single-face flux kernel (Eqs. 3a–4 of the paper).
///
/// This is THE kernel: the serial reference, both GPU-style baselines, and
/// the per-PE dataflow program all call these inline functions, so every
/// implementation computes bit-identical per-face fluxes and the paper's
/// Table 4 instruction counts are derived from the code that actually runs.
///
/// Per-face instruction mix (one TPFA flux + residual accumulation):
///
///   FSUB x4  : dz, dp, upwind compare, residual accumulate
///   FADD x1  : rho_self + rho_neib
///   FMUL x6  : rho_avg, g*dz, lambda_self, lambda_neib, T*lambda, flux
///   FMA  x1  : dphi = rho_avg*(g*dz) + dp
///   FNEG x1  : flux negation in the accumulate step
///
/// which reproduces the paper's 60 FMUL / 40 FSUB / 10 FNEG / 10 FADD /
/// 10 FMA per interior cell (10 faces) — 14 FLOPs per face, 140 per cell.
#pragma once

#include "common/types.hpp"
#include "physics/opcount.hpp"

namespace fvf::physics {

/// Scalar inputs for one face flux between cell K ("self") and its
/// neighbor L across the face. All values are single precision, matching
/// the 32-bit arithmetic of the paper's implementations.
struct FaceInputs {
  f32 p_self = 0.0f;    ///< p_K
  f32 p_neib = 0.0f;    ///< p_L
  f32 rho_self = 0.0f;  ///< rho(p_K), precomputed by the EOS pass
  f32 rho_neib = 0.0f;  ///< rho(p_L)
  f32 z_self = 0.0f;    ///< elevation of K's centre
  f32 z_neib = 0.0f;    ///< elevation of L's centre
  f32 trans = 0.0f;     ///< TPFA transmissibility Upsilon_KL
};

/// Precomputed fluid constants for the inner kernels.
struct KernelConstants {
  f32 half_g = 0.0f;  ///< 0.5 * g, folds the density average factor
  f32 inv_mu = 0.0f;  ///< 1 / mu
};

/// Computes the TPFA flux F_KL = Upsilon * lambda_upw * dphi with
///   dphi = p_L - p_K + rho_avg * g * (z_L - z_K)            (Eq. 3b)
///   lambda_upw = rho_K/mu if dphi > 0 else rho_L/mu         (Eq. 4)
///
/// Ops is an instruction-tally policy (CountingOps or NullOps).
template <typename Ops>
[[nodiscard]] inline f32 tpfa_face_flux(const FaceInputs& in,
                                        const KernelConstants& c,
                                        Ops& ops) noexcept {
  const f32 dz = in.z_neib - in.z_self;
  ops.fsub();
  const f32 dp = in.p_neib - in.p_self;
  ops.fsub();
  const f32 rho_sum = in.rho_self + in.rho_neib;
  ops.fadd();
  // rho_avg carries the 0.5 factor; g is applied to dz separately so the
  // FMA below matches Eq. 3b term-for-term.
  const f32 rho_avg = 0.5f * rho_sum;
  ops.fmul();
  const f32 gdz = (2.0f * c.half_g) * dz;  // 2*half_g == g, constant-folded
  ops.fmul();
  const f32 dphi = rho_avg * gdz + dp;
  ops.fma();
  // Upwind selection (Eq. 4). The comparison is performed as a subtract
  // against zero followed by a sign test, matching the FSUB accounting of
  // Table 4; the select itself is a predicated move (not FP-counted).
  const f32 cmp = dphi - 0.0f;
  ops.fsub();
  const f32 lambda_self = in.rho_self * c.inv_mu;
  ops.fmul();
  const f32 lambda_neib = in.rho_neib * c.inv_mu;
  ops.fmul();
  const f32 lambda = (cmp > 0.0f) ? lambda_self : lambda_neib;
  const f32 t_lambda = in.trans * lambda;
  ops.fmul();
  const f32 flux = t_lambda * dphi;
  ops.fmul();
  return flux;
}

/// Accumulates a face flux into the cell residual:
///   r_K <- r_K - (-F_KL)
/// The negate-then-subtract pair is how the dataflow kernel consumes its
/// FNEG budget (Table 4) while keeping the accumulation a single FSUB.
template <typename Ops>
inline void accumulate_flux(f32& residual, f32 flux, Ops& ops) noexcept {
  const f32 negated = -flux;
  ops.fneg();
  residual = residual - negated;
  ops.fsub();
}

/// Convenience: flux + accumulate in one call (the full 14-FLOP face).
template <typename Ops>
inline void apply_face(const FaceInputs& in, const KernelConstants& c,
                       f32& residual, Ops& ops) noexcept {
  const f32 flux = tpfa_face_flux(in, c, ops);
  accumulate_flux(residual, flux, ops);
}

/// Builds kernel constants from fluid properties.
template <typename Fluid>
[[nodiscard]] inline KernelConstants make_kernel_constants(
    const Fluid& fluid) noexcept {
  return KernelConstants{static_cast<f32>(0.5 * fluid.gravity),
                         static_cast<f32>(1.0 / fluid.viscosity)};
}

/// Reference double-precision face flux used by accuracy tests and by the
/// implicit-solver extension. Mirrors tpfa_face_flux arithmetic exactly
/// (same association order) but in f64.
[[nodiscard]] inline f64 tpfa_face_flux_f64(f64 p_self, f64 p_neib,
                                            f64 rho_self, f64 rho_neib,
                                            f64 z_self, f64 z_neib, f64 trans,
                                            f64 gravity,
                                            f64 inv_mu) noexcept {
  const f64 dz = z_neib - z_self;
  const f64 dp = p_neib - p_self;
  const f64 rho_avg = 0.5 * (rho_self + rho_neib);
  const f64 dphi = rho_avg * (gravity * dz) + dp;
  const f64 lambda = (dphi > 0.0) ? rho_self * inv_mu : rho_neib * inv_mu;
  return trans * lambda * dphi;
}

}  // namespace fvf::physics
