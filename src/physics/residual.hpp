/// \file residual.hpp
/// \brief Serial reference implementation of Algorithm 1: the flux part of
///        the residual, r_flux, assembled over the 10-face stencil.
///
/// This implementation is the correctness ground truth for the dataflow
/// implementation (src/core) and both GPU-style baselines (src/baseline).
#pragma once

#include <vector>

#include "common/array3d.hpp"
#include "common/types.hpp"
#include "mesh/cartesian_mesh.hpp"
#include "mesh/transmissibility.hpp"
#include "physics/fluid.hpp"
#include "physics/flux.hpp"
#include "physics/opcount.hpp"

namespace fvf::physics {

/// Which faces participate in the assembly. The paper's kernel always
/// computes all ten; the cardinal-only mode exists for the diagonal
/// ablation study.
enum class StencilMode {
  AllTenFaces,
  CardinalOnly,  ///< 6 faces: X/Y cardinals + Z column
};

/// Evaluates the EOS (Eq. 5) for every cell: rho[i] = rho(p[i]).
/// This per-cell pass runs once per application of Algorithm 1 and is
/// accounted separately from the per-face Table 4 instruction mix (the
/// paper's table omits the EOS transcendental; see EXPERIMENTS.md).
void evaluate_density(const FluidProperties& fluid, Span3<const f32> pressure,
                      Span3<f32> density);

/// Cell-centred elevations for every cell (layer elevation + topography).
[[nodiscard]] Array3<f32> cell_elevations(const mesh::CartesianMesh& m);

/// Assembles r_flux with the cell-based loop of Algorithm 1: the outer
/// loop sweeps cells, the inner loop sweeps each cell's in-mesh neighbors,
/// computing one flux per (cell, face) pair — each interior face is
/// therefore computed twice, once from each side, exactly as the paper's
/// cell-based GPU and dataflow kernels do.
///
/// `ops` receives the per-face instruction tally (pass NullOps{} for
/// performance runs).
template <typename Ops>
void assemble_residual_cell_based(const mesh::CartesianMesh& m,
                                  const mesh::TransmissibilityField& trans,
                                  const FluidProperties& fluid,
                                  Span3<const f32> pressure,
                                  Span3<const f32> density,
                                  Span3<f32> residual, Ops& ops,
                                  StencilMode mode = StencilMode::AllTenFaces);

/// Face-based assembly: each interior face is visited once and its flux is
/// scattered with opposite signs to the two adjacent cells. Produces the
/// same residual as the cell-based loop up to floating-point summation
/// order; used by conservation and equivalence tests.
void assemble_residual_face_based(const mesh::CartesianMesh& m,
                                  const mesh::TransmissibilityField& trans,
                                  const FluidProperties& fluid,
                                  Span3<const f32> pressure,
                                  Span3<const f32> density,
                                  Span3<f32> residual,
                                  StencilMode mode = StencilMode::AllTenFaces);

/// Double-precision reference assembly (cell-based), for accuracy bounds.
void assemble_residual_f64(const mesh::CartesianMesh& m,
                           const mesh::TransmissibilityField& trans,
                           const FluidProperties& fluid,
                           Span3<const f32> pressure, Span3<f64> residual,
                           StencilMode mode = StencilMode::AllTenFaces);

/// One full application of Algorithm 1 in its reference form:
/// density pass (Eq. 5) followed by cell-based flux assembly.
void apply_algorithm1(const mesh::CartesianMesh& m,
                      const mesh::TransmissibilityField& trans,
                      const FluidProperties& fluid, Span3<const f32> pressure,
                      Span3<f32> density_scratch, Span3<f32> residual,
                      StencilMode mode = StencilMode::AllTenFaces);

// --- template implementation ------------------------------------------------

template <typename Ops>
void assemble_residual_cell_based(const mesh::CartesianMesh& m,
                                  const mesh::TransmissibilityField& trans,
                                  const FluidProperties& fluid,
                                  Span3<const f32> pressure,
                                  Span3<const f32> density,
                                  Span3<f32> residual, Ops& ops,
                                  StencilMode mode) {
  const Extents3 ext = m.extents();
  FVF_REQUIRE(pressure.extents() == ext);
  FVF_REQUIRE(density.extents() == ext);
  FVF_REQUIRE(residual.extents() == ext);

  const KernelConstants constants = make_kernel_constants(fluid);
  const Array3<f32> elev = cell_elevations(m);

  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        f32 r = 0.0f;
        for (const mesh::Face f : mesh::kAllFaces) {
          if (mode == StencilMode::CardinalOnly && mesh::is_diagonal(f)) {
            continue;
          }
          const auto nb = m.neighbor(x, y, z, f);
          if (!nb) {
            continue;
          }
          const FaceInputs in{
              pressure(x, y, z),  pressure(nb->x, nb->y, nb->z),
              density(x, y, z),   density(nb->x, nb->y, nb->z),
              elev(x, y, z),      elev(nb->x, nb->y, nb->z),
              trans.at(x, y, z, f)};
          apply_face(in, constants, r, ops);
        }
        residual(x, y, z) = r;
      }
    }
  }
}

}  // namespace fvf::physics
