/// \file fluid.hpp
/// \brief Fluid model of paper Section 3: slightly compressible fluid with
///        exponential pressure–density relation (Eq. 5) and constant
///        viscosity.
#pragma once

#include <cmath>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "common/units.hpp"

namespace fvf::physics {

/// Constant fluid parameters. Defaults approximate supercritical CO2 at
/// storage conditions.
struct FluidProperties {
  f64 reference_density = 700.0;   ///< rho_ref [kg/m^3]
  f64 reference_pressure = 20.0e6; ///< p_ref [Pa]
  f64 compressibility = 4.5e-9;    ///< c_f [1/Pa]
  f64 viscosity = 5.5e-5;          ///< mu [Pa*s], constant per Section 3
  f64 gravity = units::kGravity;   ///< g [m/s^2]

  /// Eq. 5: rho(p) = rho_ref * exp(c_f (p - p_ref)).
  [[nodiscard]] f64 density(f64 pressure) const noexcept {
    return reference_density *
           std::exp(compressibility * (pressure - reference_pressure));
  }

  /// d rho / d p, used by the implicit-solver extension.
  [[nodiscard]] f64 density_derivative(f64 pressure) const noexcept {
    return compressibility * density(pressure);
  }

  /// Single-precision EOS used by the f32 kernels. Evaluated per cell per
  /// application of Algorithm 1 (see Table 4 discussion in EXPERIMENTS.md:
  /// the paper's per-cell instruction table excludes the EOS transcendental).
  [[nodiscard]] f32 density_f32(f32 pressure) const noexcept {
    return static_cast<f32>(reference_density) *
           std::exp(static_cast<f32>(compressibility) *
                    (pressure - static_cast<f32>(reference_pressure)));
  }

  void validate() const {
    FVF_REQUIRE(reference_density > 0.0);
    FVF_REQUIRE(compressibility >= 0.0);
    FVF_REQUIRE(viscosity > 0.0);
    FVF_REQUIRE(gravity >= 0.0);
  }
};

/// Rock model: porosity depends linearly on pressure (paper Section 3).
struct RockProperties {
  f64 reference_porosity = 0.2;     ///< phi_ref [-]
  f64 reference_pressure = 20.0e6;  ///< p_ref [Pa]
  f64 rock_compressibility = 1.0e-9;///< c_r [1/Pa]

  [[nodiscard]] f64 porosity(f64 pressure) const noexcept {
    return reference_porosity *
           (1.0 + rock_compressibility * (pressure - reference_pressure));
  }

  [[nodiscard]] f64 porosity_derivative() const noexcept {
    return reference_porosity * rock_compressibility;
  }
};

}  // namespace fvf::physics
