/// \file problem.hpp
/// \brief A fully specified flux-computation problem: mesh + rock/fluid
///        properties + transmissibilities + initial pressure. Factories
///        build the synthetic cases used by tests, examples, and the
///        benchmark harness.
#pragma once

#include <memory>
#include <string>

#include "common/array3d.hpp"
#include "common/types.hpp"
#include "mesh/cartesian_mesh.hpp"
#include "mesh/transmissibility.hpp"
#include "physics/fluid.hpp"

namespace fvf::physics {

/// Kind of synthetic geomodel to generate.
enum class GeomodelKind {
  Homogeneous,   ///< uniform 100 mD sand
  Layered,       ///< layer-cake stratigraphy (log-uniform per layer)
  Lognormal,     ///< smoothly correlated heterogeneous field
  Channelized,   ///< sinuous fluvial sand channels in a shale background
};

/// Parameters for building a FlowProblem.
struct ProblemSpec {
  Extents3 extents{16, 16, 8};
  mesh::Spacing3 spacing{50.0, 50.0, 5.0};
  GeomodelKind geomodel = GeomodelKind::Lognormal;
  f64 diagonal_weight = 0.5;
  /// Amplitude [m] of the structural dome topography; 0 gives a flat mesh
  /// (gravity then only acts on the vertical faces).
  f64 dome_amplitude = 10.0;
  u64 seed = 42;
  FluidProperties fluid{};
  RockProperties rock{};
};

/// An immutable problem instance shared by all implementations.
class FlowProblem {
 public:
  explicit FlowProblem(const ProblemSpec& spec);

  [[nodiscard]] const ProblemSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const mesh::CartesianMesh& mesh() const noexcept { return mesh_; }
  [[nodiscard]] const mesh::TransmissibilityField& transmissibility() const noexcept {
    return trans_;
  }
  [[nodiscard]] const FluidProperties& fluid() const noexcept { return spec_.fluid; }
  [[nodiscard]] const RockProperties& rock() const noexcept { return spec_.rock; }
  [[nodiscard]] const Array3<f32>& permeability() const noexcept { return perm_; }
  [[nodiscard]] const Array3<f32>& initial_pressure() const noexcept {
    return initial_pressure_;
  }
  [[nodiscard]] Extents3 extents() const noexcept { return mesh_.extents(); }
  [[nodiscard]] i64 cell_count() const noexcept { return mesh_.cell_count(); }

  /// A human-readable one-line description (for harness output).
  [[nodiscard]] std::string describe() const;

 private:
  ProblemSpec spec_;
  mesh::CartesianMesh mesh_;
  Array3<f32> perm_;
  mesh::TransmissibilityField trans_;
  Array3<f32> initial_pressure_;
};

/// The canonical benchmark problem used throughout the harness: a
/// log-normal geomodel on the requested extents, mirroring the paper's
/// evaluation protocol (Section 7) at configurable scale.
[[nodiscard]] FlowProblem make_benchmark_problem(Extents3 extents,
                                                 u64 seed = 42);

}  // namespace fvf::physics
