#include "physics/problem.hpp"

#include <sstream>

#include "common/units.hpp"
#include "mesh/fields.hpp"

namespace fvf::physics {

namespace {

Array3<f32> build_permeability(const ProblemSpec& spec) {
  switch (spec.geomodel) {
    case GeomodelKind::Homogeneous:
      return mesh::homogeneous_field(
          spec.extents, static_cast<f32>(100.0 * units::kMilliDarcy));
    case GeomodelKind::Layered:
      return mesh::layered_permeability(
          spec.extents, static_cast<f32>(1.0 * units::kMilliDarcy),
          static_cast<f32>(1000.0 * units::kMilliDarcy), spec.seed);
    case GeomodelKind::Lognormal: {
      mesh::LognormalOptions options;
      options.seed = spec.seed;
      return mesh::lognormal_permeability(spec.extents, options);
    }
    case GeomodelKind::Channelized: {
      mesh::ChannelOptions options;
      options.seed = spec.seed;
      return mesh::channelized_permeability(spec.extents, options);
    }
  }
  return mesh::homogeneous_field(spec.extents,
                                 static_cast<f32>(100.0 * units::kMilliDarcy));
}

}  // namespace

FlowProblem::FlowProblem(const ProblemSpec& spec)
    : spec_(spec),
      mesh_([&] {
        mesh::CartesianMesh m(spec.extents, spec.spacing);
        if (spec.dome_amplitude != 0.0) {
          m.set_topography(
              mesh::dome_topography(spec.extents, spec.dome_amplitude));
        }
        return m;
      }()),
      perm_(build_permeability(spec)),
      trans_(mesh::build_transmissibilities(
          mesh_, perm_, mesh::TransmissibilityOptions{spec.diagonal_weight})),
      initial_pressure_([&] {
        mesh::PressureFieldOptions options;
        options.top_pressure = spec.fluid.reference_pressure;
        options.reference_density = spec.fluid.reference_density;
        options.seed = spec.seed ^ 0x9E3779B97F4A7C15ULL;
        return mesh::hydrostatic_pressure(mesh_, options);
      }()) {
  spec_.fluid.validate();
}

std::string FlowProblem::describe() const {
  const Extents3 e = extents();
  std::ostringstream os;
  os << e.nx << 'x' << e.ny << 'x' << e.nz << " mesh ("
     << cell_count() << " cells), ";
  switch (spec_.geomodel) {
    case GeomodelKind::Homogeneous:
      os << "homogeneous";
      break;
    case GeomodelKind::Layered:
      os << "layered";
      break;
    case GeomodelKind::Lognormal:
      os << "lognormal";
      break;
    case GeomodelKind::Channelized:
      os << "channelized";
      break;
  }
  os << " geomodel, seed " << spec_.seed;
  return os.str();
}

FlowProblem make_benchmark_problem(Extents3 extents, u64 seed) {
  ProblemSpec spec;
  spec.extents = extents;
  spec.geomodel = GeomodelKind::Lognormal;
  spec.seed = seed;
  return FlowProblem(spec);
}

}  // namespace fvf::physics
