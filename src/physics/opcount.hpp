/// \file opcount.hpp
/// \brief Instruction and memory-traffic accounting in the style of the
///        paper's Table 4.
///
/// Table 4 attributes to each instruction class a fixed memory cost:
///
///   FMUL/FSUB/FADD : 2 loads, 1 store
///   FNEG           : 1 load, 1 store
///   FMA            : 3 loads, 1 store
///   FMOV           : 1 store + 1 fabric load
///
/// and a FLOP count of 1 for all classes except FMA (2) and FMOV (0).
/// The kernels in flux.hpp call the tally hooks at the exact points the
/// corresponding operation is performed, so the per-cell counts reported
/// by bench_table4_instruction_counts are derived from the real kernel,
/// not from a hand-written table.
#pragma once

#include "common/types.hpp"

namespace fvf::physics {

/// Accumulated instruction and traffic counts.
struct OpTally {
  u64 fmul = 0;
  u64 fsub = 0;
  u64 fneg = 0;
  u64 fadd = 0;
  u64 fma = 0;
  u64 fmov = 0;

  u64 mem_loads = 0;
  u64 mem_stores = 0;
  u64 fabric_loads = 0;

  [[nodiscard]] constexpr u64 flops() const noexcept {
    return fmul + fsub + fneg + fadd + 2 * fma;
  }

  [[nodiscard]] constexpr u64 fp_instructions() const noexcept {
    return fmul + fsub + fneg + fadd + fma;
  }

  [[nodiscard]] constexpr u64 mem_accesses() const noexcept {
    return mem_loads + mem_stores;
  }

  /// Memory traffic in bytes assuming 32-bit operands (paper Section 7.3).
  [[nodiscard]] constexpr u64 mem_bytes() const noexcept {
    return 4 * mem_accesses();
  }

  /// Fabric traffic in bytes assuming 32-bit wavelets.
  [[nodiscard]] constexpr u64 fabric_bytes() const noexcept {
    return 4 * fabric_loads;
  }

  constexpr OpTally& operator+=(const OpTally& other) noexcept {
    fmul += other.fmul;
    fsub += other.fsub;
    fneg += other.fneg;
    fadd += other.fadd;
    fma += other.fma;
    fmov += other.fmov;
    mem_loads += other.mem_loads;
    mem_stores += other.mem_stores;
    fabric_loads += other.fabric_loads;
    return *this;
  }

  friend constexpr bool operator==(const OpTally&, const OpTally&) = default;
};

/// Tallying policy: every hook updates the embedded OpTally with the
/// Table 4 cost model.
class CountingOps {
 public:
  static constexpr bool kCounting = true;

  constexpr void fmul() noexcept { ++tally_.fmul; tally_.mem_loads += 2; ++tally_.mem_stores; }
  constexpr void fsub() noexcept { ++tally_.fsub; tally_.mem_loads += 2; ++tally_.mem_stores; }
  constexpr void fneg() noexcept { ++tally_.fneg; ++tally_.mem_loads; ++tally_.mem_stores; }
  constexpr void fadd() noexcept { ++tally_.fadd; tally_.mem_loads += 2; ++tally_.mem_stores; }
  constexpr void fma() noexcept { ++tally_.fma; tally_.mem_loads += 3; ++tally_.mem_stores; }
  /// FMOV: moves one 32-bit word from the fabric into local memory.
  constexpr void fmov() noexcept { ++tally_.fmov; ++tally_.mem_stores; ++tally_.fabric_loads; }

  [[nodiscard]] constexpr const OpTally& tally() const noexcept { return tally_; }
  constexpr void reset() noexcept { tally_ = OpTally{}; }

 private:
  OpTally tally_{};
};

/// No-op policy: compiles to nothing; used by the performance kernels.
struct NullOps {
  static constexpr bool kCounting = false;

  constexpr void fmul() const noexcept {}
  constexpr void fsub() const noexcept {}
  constexpr void fneg() const noexcept {}
  constexpr void fadd() const noexcept {}
  constexpr void fma() const noexcept {}
  constexpr void fmov() const noexcept {}
};

}  // namespace fvf::physics
