/// \file backend.hpp
/// \brief The backend inventory of the field-equation API: the simulated
///        wafer-scale engine (wse::) and the executing simulated GPU
///        (gpusim::). Every CLI that accepts --backend resolves the
///        value here, so an unknown spelling is rejected loudly with the
///        real inventory — the same contract dataflow::parse_program_flag
///        enforces for --program.
#pragma once

#include <string>
#include <string_view>

#include "common/types.hpp"

namespace fvf::api {

/// An execution backend every registry kernel runs on end to end.
enum class Backend : u8 { Wse = 0, Gpusim = 1 };

inline constexpr usize kBackendCount = 2;

/// Canonical CLI/request spelling ("wse", "gpusim").
[[nodiscard]] std::string_view backend_name(Backend backend) noexcept;

/// "wse|gpusim" — for usage strings and error messages.
[[nodiscard]] std::string backend_name_list(std::string_view separator = "|");

/// Resolves a --backend value against the inventory. Throws
/// ContractViolation naming the offending value and every registered
/// backend on an unknown spelling.
[[nodiscard]] Backend parse_backend(std::string_view value);

}  // namespace fvf::api
