/// \file api.hpp
/// \brief The scenario-level field-equation entry point: one call runs
///        any kernel from the spec::registry on either backend and
///        returns a backend-tagged result with the shared timing surface.
///
/// `run_field_equation` builds the *canonical scenario* of the named
/// kernel — the same deterministic inputs fvf::serve constructs for a
/// request with the same (extents, seed, iterations, dt, tol) — and
/// dispatches it to the simulated wafer-scale engine (core::/spec::
/// dataflow programs) or the executing simulated GPU (gpusim:: kernels,
/// baseline:: for TPFA). Because both backends consume identical inputs
/// and share the physics (core::transport_face, spec::heat_face_weight,
/// core::build_impes_pressure_system), their results agree bitwise for
/// the order-insensitive kernels (tpfa, transport, heat) and to
/// reduction tolerance for the f32-sum kernels (cg, wave, impes).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "api/backend.hpp"
#include "common/array3d.hpp"
#include "dataflow/run_info.hpp"
#include "gpusim/kernels.hpp"

namespace fvf::api {

/// One field-equation scenario: a kernel name from the spec::registry
/// plus the content fields that determine its result bit-for-bit. The
/// 0 sentinels resolve to the same per-kernel defaults fvf::serve uses,
/// so a defaulted spec and an explicit one are the same scenario.
struct FieldEquationSpec {
  std::string kernel = "tpfa";  ///< resolved against spec::registry
  i32 nx = 6;
  i32 ny = 6;
  i32 nz = 4;
  u64 seed = 42;       ///< geomodel / initial-field seed
  i32 iterations = 0;  ///< work count; 0 = per-kernel default
  f64 dt = 0.0;        ///< timestep / window seconds; 0 = default
  f64 tol = 1e-5;      ///< CG relative tolerance
  /// WSE event-engine host threads. Results are bit-identical for every
  /// value; ignored by the gpusim backend.
  i32 threads = 1;
};

/// Returns `spec` with the 0 sentinels replaced by the per-kernel
/// defaults (TPFA 2 iterations, CG 200, transport 1 window, wave 8
/// steps, IMPES 3 windows, heat 10 steps; dt 900 s for transport/IMPES
/// windows, 3600 s otherwise). Throws on an unknown kernel name, listing
/// the registry inventory.
[[nodiscard]] FieldEquationSpec resolve_spec(const FieldEquationSpec& spec);

/// A backend-tagged field-equation result with the shared RunInfo/timing
/// surface both backends report into.
struct FieldEquationResult {
  Backend backend = Backend::Wse;
  std::string kernel;
  /// Simulated device time: fabric clock (wse) or the analytic GPU
  /// timeline of kernels + PCIe copies (gpusim).
  f64 device_seconds = 0.0;
  /// Wall-clock of the functional execution on this host.
  f64 host_seconds = 0.0;
  /// Work performed: iterations (tpfa/cg), substeps (transport), steps
  /// (wave/heat), windows (impes).
  i32 work = 0;
  bool converged = true;  ///< CG/IMPES solves; always true otherwise
  /// The kernel's primary field: residual (tpfa), solution (cg),
  /// saturation (transport/impes), wave field, temperature (heat).
  Array3<f32> field;
  /// FNV-1a digest over the result fields' bit patterns — the same
  /// digest fvf::serve publishes, so cross-backend and cross-layer
  /// results are comparable by one number.
  u64 result_digest = 0;
  /// Kernel-specific scalars (iterations, residual norms, substeps...).
  std::vector<std::pair<std::string, f64>> summary;
  /// Full fabric accounting (populated when backend == Wse).
  dataflow::RunInfo fabric{};
  /// Full GPU accounting (populated when backend == Gpusim).
  gpusim::GpuRunInfo gpu{};
};

/// Runs the named kernel's canonical scenario on `backend`. Throws
/// ContractViolation on an unknown kernel (listing the registry) and
/// propagates kernel failures (non-convergence, fabric errors) as
/// exceptions from the underlying program.
[[nodiscard]] FieldEquationResult run_field_equation(
    const FieldEquationSpec& spec, Backend backend);

// --- canonical scenario inputs -------------------------------------------
// Shared with fvf::serve so a request and an api call with the same
// content fields run bit-identical scenarios.

/// The transport scenario's initial saturation patch (centre cells).
[[nodiscard]] Array3<f32> transport_initial_saturation(Extents3 extents);

/// The transport scenario's centre injector (1e-4 at the top centre).
[[nodiscard]] Array3<f32> transport_well_rate(Extents3 extents);

/// FNV-1a 64 over a field's extents and payload bit patterns, chained
/// onto `hash` (bit-compatible with serve::digest_field).
[[nodiscard]] u64 digest_field(u64 hash, const Array3<f32>& field) noexcept;

/// The digest chain seed every scenario digest starts from.
inline constexpr u64 kDigestSeed = 0xcbf29ce484222325ULL;

}  // namespace fvf::api
