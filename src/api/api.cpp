#include "api/api.hpp"

#include <bit>

#include "baseline/baseline.hpp"
#include "common/assert.hpp"
#include "common/timer.hpp"
#include "core/fabric_impes.hpp"
#include "core/kernel_registry.hpp"
#include "core/launcher.hpp"
#include "core/linear_stencil.hpp"
#include "gpusim/occupancy.hpp"
#include "spec/registry.hpp"

namespace fvf::api {

namespace {

u64 fnv1a_mix(u64 hash, u64 value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffULL;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// The canonical problems of the scenarios: IMPES runs the homogeneous
/// injection geomodel of the demos, every other kernel the log-normal
/// benchmark problem — identical to fvf::serve's problem cache.
[[nodiscard]] physics::FlowProblem make_problem(
    const FieldEquationSpec& spec) {
  const Extents3 ext{spec.nx, spec.ny, spec.nz};
  if (spec.kernel == "impes") {
    physics::ProblemSpec problem_spec;
    problem_spec.extents = ext;
    problem_spec.spacing = mesh::Spacing3{10.0, 10.0, 2.0};
    problem_spec.geomodel = physics::GeomodelKind::Homogeneous;
    problem_spec.seed = spec.seed;
    return physics::FlowProblem(problem_spec);
  }
  return physics::make_benchmark_problem(ext, spec.seed);
}

/// The shared linear-system setup of the CG and wave scenarios.
struct LinearSetup {
  core::ScaledSystem scaled;
  Array3<f32> scaled_rhs;
};

[[nodiscard]] LinearSetup make_linear_setup(
    const physics::FlowProblem& problem, f64 dt) {
  const core::LinearStencil stencil = core::build_linear_stencil(problem, dt);
  LinearSetup setup;
  const core::ManufacturedSystem manufactured =
      core::manufacture_solution(stencil);
  setup.scaled = core::jacobi_scale(stencil);
  setup.scaled_rhs = core::scale_rhs(setup.scaled, manufactured.rhs);
  return setup;
}

void tag_gpu(FieldEquationResult& result, const gpusim::GpuRunInfo& info) {
  result.gpu = info;
  result.device_seconds = info.device_seconds;
  result.host_seconds = info.host_seconds;
}

void tag_fabric(FieldEquationResult& result, const dataflow::RunInfo& info,
                f64 host_seconds) {
  result.fabric = info;
  result.device_seconds = info.device_seconds;
  result.host_seconds = host_seconds;
}

void require_ok(const dataflow::RunInfo& info, const char* kernel) {
  FVF_REQUIRE_MSG(info.errors.empty(), "fabric " << kernel << " failed: "
                                                 << info.errors.front());
}

// ---------------------------------------------------------------- tpfa --

void run_tpfa(const FieldEquationSpec& spec, Backend backend,
              FieldEquationResult& result) {
  const physics::FlowProblem problem = make_problem(spec);
  if (backend == Backend::Wse) {
    WallTimer timer;
    core::DataflowOptions options;
    options.iterations = spec.iterations;
    options.execution.threads = spec.threads;
    const core::DataflowResult run = core::run_dataflow_tpfa(problem, options);
    require_ok(run, "tpfa");
    tag_fabric(result, run, timer.seconds());
    result.field = run.residual;
    result.result_digest = digest_field(kDigestSeed, run.residual);
    result.result_digest = digest_field(result.result_digest, run.pressure);
  } else {
    // TPFA on the GPU is the paper's hand-written CUDA baseline, which
    // shares its per-cell flux arithmetic with the serial oracle.
    baseline::BaselineOptions options;
    options.iterations = spec.iterations;
    const baseline::BaselineResult run =
        baseline::run_cuda_baseline(problem, options);
    gpusim::GpuRunInfo info;
    info.device_seconds = run.device_seconds;
    info.host_seconds = run.host_seconds;
    info.kernels_launched = run.kernels_launched;
    info.cells_processed = run.cells_processed;
    info.occupancy =
        gpusim::estimate_occupancy(gpusim::BlockDim{}).theoretical_occupancy;
    tag_gpu(result, info);
    result.field = run.residual;
    result.result_digest = digest_field(kDigestSeed, run.residual);
    result.result_digest = digest_field(result.result_digest, run.pressure);
  }
  result.work = spec.iterations;
}

// ------------------------------------------------------------------ cg --

void run_cg(const FieldEquationSpec& spec, Backend backend,
            FieldEquationResult& result) {
  const physics::FlowProblem problem = make_problem(spec);
  const LinearSetup setup = make_linear_setup(problem, spec.dt);
  Array3<f32> solution;
  if (backend == Backend::Wse) {
    WallTimer timer;
    core::DataflowCgOptions options;
    options.kernel.max_iterations = spec.iterations;
    options.kernel.relative_tolerance = static_cast<f32>(spec.tol);
    options.execution.threads = spec.threads;
    const core::DataflowCgResult run =
        core::run_dataflow_cg(setup.scaled.stencil, setup.scaled_rhs, options);
    require_ok(run, "cg");
    tag_fabric(result, run, timer.seconds());
    solution = core::unscale_solution(setup.scaled, run.solution);
    result.work = run.iterations;
    result.converged = run.converged;
    result.summary.emplace_back("initial_residual_norm",
                                run.initial_residual_norm);
    result.summary.emplace_back("final_residual_norm",
                                run.final_residual_norm);
  } else {
    gpusim::GpuCgOptions options;
    options.kernel.max_iterations = spec.iterations;
    options.kernel.relative_tolerance = static_cast<f32>(spec.tol);
    const gpusim::GpuCgResult run =
        gpusim::run_gpu_cg(setup.scaled.stencil, setup.scaled_rhs, options);
    tag_gpu(result, run.info);
    solution = core::unscale_solution(setup.scaled, run.solution);
    result.work = run.iterations;
    result.converged = run.converged;
    result.summary.emplace_back("initial_residual_norm",
                                run.initial_residual_norm);
    result.summary.emplace_back("final_residual_norm",
                                run.final_residual_norm);
  }
  result.field = std::move(solution);
  result.result_digest = digest_field(kDigestSeed, result.field);
}

// ----------------------------------------------------------- transport --

void run_transport(const FieldEquationSpec& spec, Backend backend,
                   FieldEquationResult& result) {
  const physics::FlowProblem problem = make_problem(spec);
  const Extents3 ext = problem.extents();
  const Array3<f32> saturation = transport_initial_saturation(ext);
  const Array3<f32> wells = transport_well_rate(ext);
  const f32 pore_volume =
      static_cast<f32>(problem.mesh().cell_volume() * 0.2);
  if (backend == Backend::Wse) {
    WallTimer timer;
    core::DataflowTransportOptions options;
    options.kernel.window_seconds = spec.dt;
    options.kernel.pore_volume = pore_volume;
    options.execution.threads = spec.threads;
    const core::DataflowTransportResult run = core::run_dataflow_transport(
        problem, saturation, problem.initial_pressure(), wells, options);
    require_ok(run, "transport");
    tag_fabric(result, run, timer.seconds());
    result.field = run.saturation;
    result.work = run.substeps;
    result.summary.emplace_back("advanced_seconds", run.advanced_seconds);
  } else {
    gpusim::GpuTransportOptions options;
    options.kernel.window_seconds = spec.dt;
    options.kernel.pore_volume = pore_volume;
    const gpusim::GpuTransportResult run = gpusim::run_gpu_transport(
        problem, saturation, problem.initial_pressure(), wells, options);
    tag_gpu(result, run.info);
    result.field = run.saturation;
    result.work = run.substeps;
    result.summary.emplace_back("advanced_seconds", run.advanced_seconds);
  }
  result.result_digest = digest_field(kDigestSeed, result.field);
}

// ---------------------------------------------------------------- wave --

void run_wave(const FieldEquationSpec& spec, Backend backend,
              FieldEquationResult& result) {
  const physics::FlowProblem problem = make_problem(spec);
  const LinearSetup setup = make_linear_setup(problem, spec.dt);
  const Array3<f32> pulse =
      core::gaussian_pulse(Extents3{spec.nx, spec.ny, spec.nz}, 1.0, 2.0);
  if (backend == Backend::Wse) {
    WallTimer timer;
    core::DataflowWaveOptions options;
    options.kernel.timesteps = spec.iterations;
    options.kernel.kappa = 0.4f;
    options.execution.threads = spec.threads;
    const core::DataflowWaveResult run =
        core::run_dataflow_wave(setup.scaled.stencil, pulse, options);
    require_ok(run, "wave");
    tag_fabric(result, run, timer.seconds());
    result.field = run.field;
  } else {
    gpusim::GpuWaveOptions options;
    options.kernel.timesteps = spec.iterations;
    options.kernel.kappa = 0.4f;
    const gpusim::GpuWaveResult run =
        gpusim::run_gpu_wave(setup.scaled.stencil, pulse, options);
    tag_gpu(result, run.info);
    result.field = run.field;
  }
  result.work = spec.iterations;
  result.result_digest = digest_field(kDigestSeed, result.field);
}

// ---------------------------------------------------------------- heat --

void run_heat(const FieldEquationSpec& spec, Backend backend,
              FieldEquationResult& result) {
  const Array3<f32> initial = spec::heat_initial_field(
      Extents3{spec.nx, spec.ny, spec.nz}, spec.seed);
  if (backend == Backend::Wse) {
    WallTimer timer;
    spec::DataflowHeatOptions options;
    options.kernel.steps = spec.iterations;
    options.execution.threads = spec.threads;
    const spec::DataflowHeatResult run =
        spec::run_dataflow_heat(initial, options);
    require_ok(run, "heat");
    tag_fabric(result, run, timer.seconds());
    result.field = run.field;
    result.work = run.steps_completed;
  } else {
    gpusim::GpuHeatOptions options;
    options.kernel.steps = spec.iterations;
    const gpusim::GpuHeatResult run = gpusim::run_gpu_heat(initial, options);
    tag_gpu(result, run.info);
    result.field = run.field;
    result.work = run.steps_completed;
  }
  result.result_digest = digest_field(kDigestSeed, result.field);
}

// --------------------------------------------------------------- impes --

void run_impes(const FieldEquationSpec& spec, Backend backend,
               FieldEquationResult& result) {
  const physics::FlowProblem problem = make_problem(spec);
  const Coord3 well{spec.nx / 2, spec.ny / 2, 0};
  f64 cg_iterations = 0.0;
  f64 substeps = 0.0;
  Array3<f32> saturation;
  Array3<f32> pressure;
  if (backend == Backend::Wse) {
    WallTimer timer;
    core::FabricImpesOptions options;
    options.execution.threads = spec.threads;
    core::FabricImpesSimulator sim(problem, options);
    sim.add_well(well, 2e-4);
    dataflow::RunInfo total;
    for (i32 window = 0; window < spec.iterations; ++window) {
      const core::FabricImpesWindow report = sim.advance_window(spec.dt);
      dataflow::accumulate(total, report.fabric);
      cg_iterations += report.cg_iterations;
      substeps += report.transport_substeps;
      result.converged = result.converged && report.cg_converged;
    }
    tag_fabric(result, total, timer.seconds());
    saturation = sim.saturation();
    pressure = sim.pressure();
  } else {
    Array3<f32> wells(problem.extents(), 0.0f);
    wells(well.x, well.y, well.z) = static_cast<f32>(2e-4);
    const gpusim::GpuImpesResult run = gpusim::run_gpu_impes(
        problem, wells, spec.dt, spec.iterations, gpusim::GpuImpesOptions{});
    tag_gpu(result, run.info);
    for (const gpusim::GpuImpesWindow& window : run.windows) {
      cg_iterations += window.cg_iterations;
      substeps += window.transport_substeps;
      result.converged = result.converged && window.cg_converged;
    }
    saturation = run.saturation;
    pressure = run.pressure;
  }
  result.work = spec.iterations;
  result.field = std::move(saturation);
  result.result_digest = digest_field(kDigestSeed, result.field);
  result.result_digest = digest_field(result.result_digest, pressure);
  result.summary.emplace_back("cg_iterations", cg_iterations);
  result.summary.emplace_back("transport_substeps", substeps);
}

}  // namespace

FieldEquationSpec resolve_spec(const FieldEquationSpec& spec) {
  core::register_builtin_kernels();
  const spec::KernelInfo info = spec::find_kernel(spec.kernel);
  FVF_REQUIRE_MSG(!info.name.empty(),
                  "unknown kernel '" << spec.kernel << "' (registered kernels: "
                                     << spec::kernel_name_list() << ")");
  FieldEquationSpec resolved = spec;
  if (resolved.iterations == 0) {
    if (resolved.kernel == "tpfa") {
      resolved.iterations = 2;
    } else if (resolved.kernel == "cg") {
      resolved.iterations = 200;
    } else if (resolved.kernel == "transport") {
      resolved.iterations = 1;
    } else if (resolved.kernel == "wave") {
      resolved.iterations = 8;
    } else if (resolved.kernel == "impes") {
      resolved.iterations = 3;
    } else if (resolved.kernel == "heat") {
      resolved.iterations = 10;
    } else {
      resolved.iterations = 1;
    }
  }
  if (resolved.dt == 0.0) {
    resolved.dt = (resolved.kernel == "transport" || resolved.kernel == "impes")
                      ? 900.0
                      : 3600.0;
  }
  FVF_REQUIRE_MSG(resolved.nx > 0 && resolved.ny > 0 && resolved.nz > 0,
                  "field-equation extents must be positive ("
                      << resolved.nx << 'x' << resolved.ny << 'x'
                      << resolved.nz << ')');
  FVF_REQUIRE(resolved.iterations > 0);
  FVF_REQUIRE(resolved.dt > 0.0);
  FVF_REQUIRE(resolved.tol > 0.0);
  FVF_REQUIRE(resolved.threads >= 1);
  return resolved;
}

FieldEquationResult run_field_equation(const FieldEquationSpec& raw,
                                       Backend backend) {
  const FieldEquationSpec spec = resolve_spec(raw);
  FieldEquationResult result;
  result.backend = backend;
  result.kernel = spec.kernel;
  if (spec.kernel == "tpfa") {
    run_tpfa(spec, backend, result);
  } else if (spec.kernel == "cg") {
    run_cg(spec, backend, result);
  } else if (spec.kernel == "transport") {
    run_transport(spec, backend, result);
  } else if (spec.kernel == "wave") {
    run_wave(spec, backend, result);
  } else if (spec.kernel == "impes") {
    run_impes(spec, backend, result);
  } else if (spec.kernel == "heat") {
    run_heat(spec, backend, result);
  } else {
    // resolve_spec accepted the name, so a registry kernel without a
    // field-equation scenario is a wiring bug, not a user error.
    FVF_REQUIRE_MSG(false, "kernel '" << spec.kernel
                                      << "' has no field-equation dispatch");
  }
  return result;
}

Array3<f32> transport_initial_saturation(Extents3 ext) {
  Array3<f32> saturation(ext, 0.0f);
  saturation(ext.nx / 2, ext.ny / 2, 0) = 0.6f;
  if (ext.ny / 2 > 0) {
    saturation(ext.nx / 2, ext.ny / 2 - 1, ext.nz > 1 ? 1 : 0) = 0.3f;
  }
  return saturation;
}

Array3<f32> transport_well_rate(Extents3 ext) {
  Array3<f32> wells(ext, 0.0f);
  wells(ext.nx / 2, ext.ny / 2, 0) = 1e-4f;
  return wells;
}

u64 digest_field(u64 hash, const Array3<f32>& field) noexcept {
  const Extents3 ext = field.extents();
  hash = fnv1a_mix(hash, static_cast<u64>(ext.nx));
  hash = fnv1a_mix(hash, static_cast<u64>(ext.ny));
  hash = fnv1a_mix(hash, static_cast<u64>(ext.nz));
  for (const f32 value : field.flat()) {
    hash = fnv1a_mix(hash, std::bit_cast<u32>(value));
  }
  return hash;
}

}  // namespace fvf::api
