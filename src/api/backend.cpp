#include "api/backend.hpp"

#include "common/assert.hpp"

namespace fvf::api {

std::string_view backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::Wse:
      return "wse";
    case Backend::Gpusim:
      return "gpusim";
  }
  return "?";
}

std::string backend_name_list(std::string_view separator) {
  std::string list;
  for (usize b = 0; b < kBackendCount; ++b) {
    if (b > 0) {
      list += separator;
    }
    list += backend_name(static_cast<Backend>(b));
  }
  return list;
}

Backend parse_backend(std::string_view value) {
  for (usize b = 0; b < kBackendCount; ++b) {
    const Backend backend = static_cast<Backend>(b);
    if (value == backend_name(backend)) {
      return backend;
    }
  }
  FVF_REQUIRE_MSG(false, "unknown backend '" << value
                                             << "' (registered backends: "
                                             << backend_name_list() << ")");
  return Backend::Wse;  // unreachable
}

}  // namespace fvf::api
