/// \file energy.hpp
/// \brief Energy model of paper Section 7.2: steady-state device power,
///        energy per run, and FLOP/W efficiency comparison between the
///        wafer-scale device and the GPU baseline.
#pragma once

#include <string>

#include "common/types.hpp"

namespace fvf::roofline {

/// Steady-state power envelope of a device under the FV flux workload.
struct PowerModel {
  std::string name;
  f64 steady_watts = 0.0;
};

/// The paper's measured operating points.
[[nodiscard]] PowerModel cs2_power();   ///< 23 kW steady state
[[nodiscard]] PowerModel a100_power();  ///< 250 W peak under this workload

/// Energy/efficiency summary of one run.
struct EnergyReport {
  f64 runtime_s = 0.0;
  f64 energy_joules = 0.0;
  f64 total_flops = 0.0;
  f64 gflops_per_watt = 0.0;
};

/// Computes energy and FLOP/W for a run of `runtime_s` executing
/// `total_flops` under the given power model.
[[nodiscard]] EnergyReport energy_report(const PowerModel& power,
                                         f64 runtime_s, f64 total_flops);

/// Energy-efficiency ratio a/b in GFLOP/W (the paper's "2.2x energy
/// efficiency ... in aggregate and without considering the host").
[[nodiscard]] f64 efficiency_ratio(const EnergyReport& a,
                                   const EnergyReport& b);

}  // namespace fvf::roofline
