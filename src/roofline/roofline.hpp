/// \file roofline.hpp
/// \brief Roofline performance model (paper Section 7.3 / Figure 8):
///        machine ceilings, kernel points, attainability queries, and a
///        log-log ASCII chart renderer.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace fvf::roofline {

/// One bandwidth ceiling (a slanted roof in the log-log chart).
struct BandwidthCeiling {
  std::string name;
  f64 bytes_per_s = 0.0;
};

/// A machine: one compute peak and one or more bandwidth ceilings. The
/// CS-2 model carries two bandwidths (PE local memory and fabric), the
/// A100 model one (HBM DRAM).
struct MachineModel {
  std::string name;
  f64 peak_flops = 0.0;
  std::vector<BandwidthCeiling> bandwidths;
};

/// A measured kernel placed on the chart.
struct KernelPoint {
  std::string name;
  f64 arithmetic_intensity = 0.0;  ///< FLOPs / byte
  f64 achieved_flops = 0.0;        ///< FLOPs / s
};

/// Attainable FLOP/s at the given arithmetic intensity under one ceiling.
[[nodiscard]] f64 attainable_flops(const MachineModel& machine,
                                   f64 arithmetic_intensity,
                                   usize bandwidth_index = 0);

/// Whether a kernel at this intensity is bandwidth-bound (true) or
/// compute-bound (false) with respect to the chosen ceiling.
[[nodiscard]] bool is_bandwidth_bound(const MachineModel& machine,
                                      f64 arithmetic_intensity,
                                      usize bandwidth_index = 0);

/// The ridge point intensity where bandwidth and compute roofs meet.
[[nodiscard]] f64 ridge_intensity(const MachineModel& machine,
                                  usize bandwidth_index = 0);

/// Fraction of the attainable roof a kernel achieves (0..1+).
[[nodiscard]] f64 efficiency(const MachineModel& machine,
                             const KernelPoint& point,
                             usize bandwidth_index = 0);

/// Renders a log-log ASCII roofline chart of the machine roofs and the
/// kernel points (Figure 8 in text form).
[[nodiscard]] std::string render_chart(const MachineModel& machine,
                                       const std::vector<KernelPoint>& points,
                                       int width = 72, int height = 20);

/// The simulated CS-2 machine at a given active-fabric size: peak from
/// 2-wide f32 SIMD per PE; memory bandwidth from the per-PE local-store
/// width; fabric bandwidth from one 32-bit wavelet per link per cycle.
[[nodiscard]] MachineModel cs2_machine(i64 active_pes, f64 clock_hz = 850e6);

/// The A100-like machine of the GPU baselines.
[[nodiscard]] MachineModel a100_machine();

}  // namespace fvf::roofline
