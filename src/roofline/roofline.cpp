#include "roofline/roofline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace fvf::roofline {

f64 attainable_flops(const MachineModel& machine, f64 arithmetic_intensity,
                     usize bandwidth_index) {
  FVF_REQUIRE(bandwidth_index < machine.bandwidths.size());
  FVF_REQUIRE(arithmetic_intensity > 0.0);
  return std::min(machine.peak_flops,
                  machine.bandwidths[bandwidth_index].bytes_per_s *
                      arithmetic_intensity);
}

bool is_bandwidth_bound(const MachineModel& machine, f64 arithmetic_intensity,
                        usize bandwidth_index) {
  return attainable_flops(machine, arithmetic_intensity, bandwidth_index) <
         machine.peak_flops;
}

f64 ridge_intensity(const MachineModel& machine, usize bandwidth_index) {
  FVF_REQUIRE(bandwidth_index < machine.bandwidths.size());
  return machine.peak_flops /
         machine.bandwidths[bandwidth_index].bytes_per_s;
}

f64 efficiency(const MachineModel& machine, const KernelPoint& point,
               usize bandwidth_index) {
  return point.achieved_flops /
         attainable_flops(machine, point.arithmetic_intensity,
                          bandwidth_index);
}

std::string render_chart(const MachineModel& machine,
                         const std::vector<KernelPoint>& points, int width,
                         int height) {
  FVF_REQUIRE(width >= 24 && height >= 8);
  FVF_REQUIRE(!machine.bandwidths.empty());

  // Chart bounds in log10 space, padded around roofs and points.
  f64 min_ai = 1e-3;
  f64 max_ai = 1e3;
  for (const KernelPoint& p : points) {
    min_ai = std::min(min_ai, p.arithmetic_intensity / 4.0);
    max_ai = std::max(max_ai, p.arithmetic_intensity * 4.0);
  }
  f64 max_perf = machine.peak_flops * 2.0;
  f64 min_perf = max_perf;
  for (const BandwidthCeiling& bw : machine.bandwidths) {
    min_perf = std::min(min_perf, bw.bytes_per_s * min_ai);
  }
  for (const KernelPoint& p : points) {
    min_perf = std::min(min_perf, p.achieved_flops / 4.0);
  }
  min_perf = std::max(min_perf, 1.0);

  const f64 lx0 = std::log10(min_ai);
  const f64 lx1 = std::log10(max_ai);
  const f64 ly0 = std::log10(min_perf);
  const f64 ly1 = std::log10(max_perf);

  std::vector<std::string> grid(static_cast<usize>(height),
                                std::string(static_cast<usize>(width), ' '));
  const auto plot = [&](f64 ai, f64 flops, char mark) {
    if (ai <= 0.0 || flops <= 0.0) {
      return;
    }
    const f64 fx = (std::log10(ai) - lx0) / (lx1 - lx0);
    const f64 fy = (std::log10(flops) - ly0) / (ly1 - ly0);
    if (fx < 0.0 || fx > 1.0 || fy < 0.0 || fy > 1.0) {
      return;
    }
    const int col = std::min(width - 1, static_cast<int>(fx * (width - 1)));
    const int row =
        height - 1 - std::min(height - 1, static_cast<int>(fy * (height - 1)));
    char& cell = grid[static_cast<usize>(row)][static_cast<usize>(col)];
    if (cell == ' ' || mark == 'o') {
      cell = mark;
    }
  };

  // Roof lines: for every column, plot each ceiling.
  for (int c = 0; c < width; ++c) {
    const f64 ai =
        std::pow(10.0, lx0 + (lx1 - lx0) * static_cast<f64>(c) /
                                  static_cast<f64>(width - 1));
    plot(ai, machine.peak_flops, '-');
    for (const BandwidthCeiling& bw : machine.bandwidths) {
      const f64 roof = std::min(machine.peak_flops, bw.bytes_per_s * ai);
      plot(ai, roof, roof < machine.peak_flops ? '/' : '-');
    }
  }
  for (const KernelPoint& p : points) {
    plot(p.arithmetic_intensity, p.achieved_flops, 'o');
  }

  std::ostringstream os;
  os << "Roofline: " << machine.name << "  (log-log; '/' bandwidth roofs, "
        "'-' compute roof, 'o' kernels)\n";
  os << "  peak = " << machine.peak_flops / 1e12 << " TFLOP/s";
  for (const BandwidthCeiling& bw : machine.bandwidths) {
    os << "; " << bw.name << " = " << bw.bytes_per_s / 1e12 << " TB/s";
  }
  os << '\n';
  for (const std::string& row : grid) {
    os << "  |" << row << "\n";
  }
  os << "  +" << std::string(static_cast<usize>(width), '-') << "\n";
  os << "   AI from " << min_ai << " to " << max_ai << " FLOP/B\n";
  for (const KernelPoint& p : points) {
    os << "   o " << p.name << ": AI = " << p.arithmetic_intensity
       << " FLOP/B, achieved = " << p.achieved_flops / 1e12 << " TFLOP/s\n";
  }
  return os.str();
}

MachineModel cs2_machine(i64 active_pes, f64 clock_hz) {
  FVF_REQUIRE(active_pes > 0);
  MachineModel machine;
  machine.name = "CS-2 (simulated, " + std::to_string(active_pes) + " PEs)";
  // 2-wide f32 SIMD per PE per cycle.
  machine.peak_flops = static_cast<f64>(active_pes) * clock_hz * 2.0;
  // Per-PE local store sustains ~1.4 32-bit words/cycle for streaming
  // kernels (calibrated to place the paper's memory point on the roof:
  // 311.85 TFLOP/s at AI 0.0862 on 745,500 PEs).
  machine.bandwidths.push_back(BandwidthCeiling{
      "PE memory", static_cast<f64>(active_pes) * clock_hz * 5.66});
  // One 32-bit wavelet per link per cycle.
  machine.bandwidths.push_back(BandwidthCeiling{
      "fabric", static_cast<f64>(active_pes) * clock_hz * 4.0});
  return machine;
}

MachineModel a100_machine() {
  MachineModel machine;
  machine.name = "NVIDIA A100-40GB (simulated)";
  machine.peak_flops = 19.5e12;
  machine.bandwidths.push_back(BandwidthCeiling{"HBM", 1.555e12 * 0.92});
  return machine;
}

}  // namespace fvf::roofline
