#include "roofline/energy.hpp"

#include "common/assert.hpp"

namespace fvf::roofline {

PowerModel cs2_power() { return PowerModel{"CS-2 (steady state)", 23000.0}; }

PowerModel a100_power() {
  return PowerModel{"A100 (peak under workload)", 250.0};
}

EnergyReport energy_report(const PowerModel& power, f64 runtime_s,
                           f64 total_flops) {
  FVF_REQUIRE(runtime_s > 0.0);
  FVF_REQUIRE(power.steady_watts > 0.0);
  EnergyReport report;
  report.runtime_s = runtime_s;
  report.energy_joules = power.steady_watts * runtime_s;
  report.total_flops = total_flops;
  report.gflops_per_watt =
      total_flops / runtime_s / power.steady_watts / 1e9;
  return report;
}

f64 efficiency_ratio(const EnergyReport& a, const EnergyReport& b) {
  FVF_REQUIRE(b.gflops_per_watt > 0.0);
  return a.gflops_per_watt / b.gflops_per_watt;
}

}  // namespace fvf::roofline
