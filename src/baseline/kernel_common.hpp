/// \file kernel_common.hpp
/// \brief The GPU-style per-cell flux kernel shared by the RAJA-like and
///        CUDA-like baselines (paper Section 6).
///
/// Unlike the dataflow version, device memory is shared across all
/// threads, so neighbor data is fetched with plain index arithmetic — no
/// inter-cell communication. The per-face arithmetic is the single shared
/// kernel in physics/flux.hpp, so all implementations agree bitwise.
#pragma once

#include <array>

#include "common/array3d.hpp"
#include "mesh/stencil.hpp"
#include "physics/flux.hpp"
#include "physics/residual.hpp"

namespace fvf::baseline {

/// Raw device-memory view of the problem (flat pointers + extents), the
/// shape a GPU kernel would receive as arguments.
struct DeviceView {
  const f32* pressure = nullptr;
  const f32* density = nullptr;
  const f32* elevation = nullptr;
  std::array<const f32*, mesh::kFaceCount> trans{};
  f32* residual = nullptr;
  Extents3 extents{};
  physics::KernelConstants constants{};
  bool include_diagonals = true;
};

/// One thread's work: assemble the flux residual of cell (x, y, z) from
/// its (up to) ten neighbors. Mirrors Algorithm 1's inner loop.
inline void flux_cell(const DeviceView& v, i32 x, i32 y, i32 z) noexcept {
  const Extents3 ext = v.extents;
  const i64 self = ext.linear(x, y, z);
  const f32 p_self = v.pressure[self];
  const f32 rho_self = v.density[self];
  const f32 z_self = v.elevation[self];

  physics::NullOps ops;
  f32 r = 0.0f;
  for (const mesh::Face f : mesh::kAllFaces) {
    if (!v.include_diagonals && mesh::is_diagonal(f)) {
      continue;
    }
    const Coord3 off = mesh::face_offset(f);
    const i32 nx = x + off.x;
    const i32 ny = y + off.y;
    const i32 nz = z + off.z;
    if (!ext.contains(nx, ny, nz)) {
      continue;  // boundary face
    }
    const i64 neib = ext.linear(nx, ny, nz);
    const physics::FaceInputs in{
        p_self,
        v.pressure[neib],
        rho_self,
        v.density[neib],
        z_self,
        v.elevation[neib],
        v.trans[static_cast<usize>(f)][self]};
    physics::apply_face(in, v.constants, r, ops);
  }
  v.residual[self] = r;
}

/// One thread's work in the density (EOS) kernel.
inline void density_cell(const f32* pressure, f32* density, i64 index,
                         const physics::FluidProperties& fluid) noexcept {
  density[index] = fluid.density_f32(pressure[index]);
}

}  // namespace fvf::baseline
