/// \file baseline.hpp
/// \brief The three reference implementations the dataflow version is
///        compared against (paper Sections 6–7):
///
///   - Serial:    plain CPU loop; the correctness ground truth.
///   - RajaLike:  policy-driven kernel on the simulated GPU with the
///                paper's 16x8x8 tiling (Figure 7).
///   - CudaLike:  hand-written kernel on the simulated GPU with manual
///                grid/block index arithmetic and boundary checks.
///
/// All three produce bit-identical residuals (same per-cell arithmetic,
/// independent per-cell outputs).
#pragma once

#include <string>

#include "common/array3d.hpp"
#include "physics/problem.hpp"
#include "physics/residual.hpp"

namespace fvf::baseline {

enum class BaselineKind { Serial, RajaLike, CudaLike };

[[nodiscard]] std::string baseline_name(BaselineKind kind);

/// Options for a baseline run.
struct BaselineOptions {
  i32 iterations = 1;
  physics::StencilMode mode = physics::StencilMode::AllTenFaces;
};

/// Result of a baseline run.
struct BaselineResult {
  Array3<f32> residual;
  Array3<f32> pressure;
  /// Simulated device seconds (GPU kinds; 0 for Serial).
  f64 device_seconds = 0.0;
  /// Actual wall-clock of the functional execution on this host.
  f64 host_seconds = 0.0;
  u64 kernels_launched = 0;
  i64 cells_processed = 0;
};

/// Analytic per-iteration DRAM-traffic model of the simulated GPU
/// baselines, calibrated so the paper-scale mesh reproduces Table 1
/// (see EXPERIMENTS.md, "GPU model calibration").
struct GpuTrafficModel {
  f64 flux_bytes_per_cell = 106.4;    ///< CUDA-like kernel
  f64 density_bytes_per_cell = 8.0;   ///< EOS pass: read p, write rho
  f64 flux_flops_per_cell = 140.0;
  f64 density_flops_per_cell = 12.0;
};

/// Bytes-per-cell of the RAJA-like flux kernel: the paper measures the
/// RAJA version ~15% slower than hand-written CUDA (Table 1), which the
/// model expresses as extra traffic from the generated index machinery.
[[nodiscard]] GpuTrafficModel raja_traffic_model();
[[nodiscard]] GpuTrafficModel cuda_traffic_model();

/// Runs `iterations` applications of Algorithm 1 with the serial
/// reference implementation.
[[nodiscard]] BaselineResult run_serial_baseline(
    const physics::FlowProblem& problem, const BaselineOptions& options);

/// Runs the RAJA-like GPU baseline (policy-tiled, simulated device).
[[nodiscard]] BaselineResult run_raja_baseline(
    const physics::FlowProblem& problem, const BaselineOptions& options);

/// Runs the hand-written CUDA-like GPU baseline.
[[nodiscard]] BaselineResult run_cuda_baseline(
    const physics::FlowProblem& problem, const BaselineOptions& options);

/// Dispatch by kind.
[[nodiscard]] BaselineResult run_baseline(BaselineKind kind,
                                          const physics::FlowProblem& problem,
                                          const BaselineOptions& options);

/// Pure timing model: simulated device seconds for `iterations`
/// applications on a mesh of `cells` cells, without executing anything.
/// Used to produce the paper-scale rows of Tables 1 and 2.
[[nodiscard]] f64 predict_gpu_seconds(BaselineKind kind, i64 cells,
                                      i64 iterations);

}  // namespace fvf::baseline
