#include "baseline/baseline.hpp"

#include "baseline/kernel_common.hpp"
#include "common/timer.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/raja_like.hpp"
#include "mesh/fields.hpp"

namespace fvf::baseline {

std::string baseline_name(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::Serial:
      return "CPU/serial";
    case BaselineKind::RajaLike:
      return "GPU/RAJA";
    case BaselineKind::CudaLike:
      return "GPU/CUDA";
  }
  return "?";
}

GpuTrafficModel cuda_traffic_model() { return GpuTrafficModel{}; }

GpuTrafficModel raja_traffic_model() {
  GpuTrafficModel model;
  model.flux_bytes_per_cell = 123.4;
  return model;
}

BaselineResult run_serial_baseline(const physics::FlowProblem& problem,
                                   const BaselineOptions& options) {
  const Extents3 ext = problem.extents();
  BaselineResult result;
  result.pressure = problem.initial_pressure();
  result.residual = Array3<f32>(ext);
  Array3<f32> density(ext);

  WallTimer timer;
  for (i32 it = 0; it < options.iterations; ++it) {
    if (it > 0) {
      mesh::advance_pressure(result.pressure.span(), it - 1);
    }
    physics::apply_algorithm1(problem.mesh(), problem.transmissibility(),
                              problem.fluid(), result.pressure.span(),
                              density.span(), result.residual.span(),
                              options.mode);
    result.cells_processed += ext.cell_count();
  }
  result.host_seconds = timer.seconds();
  return result;
}

namespace {

/// Shared GPU-baseline harness: allocation, H2D copies, the per-iteration
/// density + flux kernels, and the final D2H copy. The `launch` callable
/// abstracts the difference between the RAJA-like policy expansion and
/// the hand-written CUDA-like loop nest.
template <typename LaunchFn>
BaselineResult run_gpu_baseline(const physics::FlowProblem& problem,
                                const BaselineOptions& options,
                                const GpuTrafficModel& model,
                                LaunchFn&& launch) {
  const Extents3 ext = problem.extents();
  const i64 cells = ext.cell_count();
  const usize n = static_cast<usize>(cells);

  BaselineResult result;
  result.pressure = problem.initial_pressure();
  result.residual = Array3<f32>(ext);

  WallTimer timer;
  gpusim::Device device;

  // Allocate device memory and load the whole mesh at once (Section 6:
  // "we avoid data domain decomposition").
  auto d_pressure = device.alloc<f32>(n, "pressure");
  auto d_density = device.alloc<f32>(n, "density");
  auto d_residual = device.alloc<f32>(n, "residual");
  auto d_elevation = device.alloc<f32>(n, "elevation");
  std::array<gpusim::DeviceBuffer<f32>, mesh::kFaceCount> d_trans;
  for (const mesh::Face f : mesh::kAllFaces) {
    d_trans[static_cast<usize>(f)] = device.alloc<f32>(n, "trans");
  }

  device.copy_to_device<f32>(result.pressure.flat(), d_pressure);
  {
    const Array3<f32> elev = physics::cell_elevations(problem.mesh());
    device.copy_to_device<f32>(elev.flat(), d_elevation);
    for (const mesh::Face f : mesh::kAllFaces) {
      device.copy_to_device<f32>(
          problem.transmissibility().face_array(f).flat(),
          d_trans[static_cast<usize>(f)]);
    }
  }

  DeviceView view;
  view.pressure = d_pressure.data();
  view.density = d_density.data();
  view.elevation = d_elevation.data();
  for (const mesh::Face f : mesh::kAllFaces) {
    view.trans[static_cast<usize>(f)] = d_trans[static_cast<usize>(f)].data();
  }
  view.residual = d_residual.data();
  view.extents = ext;
  view.constants = physics::make_kernel_constants(problem.fluid());
  view.include_diagonals =
      options.mode == physics::StencilMode::AllTenFaces;

  const gpusim::DeviceEvent start = device.record_event();
  const physics::FluidProperties fluid = problem.fluid();
  for (i32 it = 0; it < options.iterations; ++it) {
    if (it > 0) {
      // Device-side pressure advance (same bump as every implementation);
      // traffic folded into the density pass model.
      f32* p = d_pressure.data();
      for (i64 i = 0; i < cells; ++i) {
        p[i] += mesh::pressure_bump(i, it - 1);
      }
    }
    // EOS kernel.
    const gpusim::KernelTraffic density_traffic{
        model.density_bytes_per_cell * static_cast<f64>(cells),
        model.density_flops_per_cell * static_cast<f64>(cells)};
    {
      f32* rho = d_density.data();
      const f32* p = d_pressure.data();
      for (i64 i = 0; i < cells; ++i) {
        density_cell(p, rho, i, fluid);
      }
      device.record_kernel(density_traffic);
    }
    // Flux kernel.
    const gpusim::KernelTraffic flux_traffic{
        model.flux_bytes_per_cell * static_cast<f64>(cells),
        model.flux_flops_per_cell * static_cast<f64>(cells)};
    const gpusim::LaunchStats stats = launch(device, ext, flux_traffic, view);
    result.cells_processed += stats.cells_processed;
  }
  const gpusim::DeviceEvent stop = device.record_event();

  device.copy_to_host<f32>(d_residual, result.residual.flat());
  device.copy_to_host<f32>(d_pressure, result.pressure.flat());

  result.device_seconds = gpusim::Device::elapsed_seconds(start, stop);
  result.host_seconds = timer.seconds();
  result.kernels_launched = device.kernels_launched();
  return result;
}

}  // namespace

BaselineResult run_raja_baseline(const physics::FlowProblem& problem,
                                 const BaselineOptions& options) {
  return run_gpu_baseline(
      problem, options, raja_traffic_model(),
      [](gpusim::Device& device, Extents3 ext,
         const gpusim::KernelTraffic& traffic, const DeviceView& view) {
        // RAJA::kernel with the Figure 7 policy: 16x8x8 tile, nested
        // thread loops, lambda receiving (x, y, z).
        return gpusim::forall_cells<gpusim::KernelPolicy<gpusim::PaperTile>>(
            device, ext, traffic,
            [&view](i32 x, i32 y, i32 z) { flux_cell(view, x, y, z); });
      });
}

BaselineResult run_cuda_baseline(const physics::FlowProblem& problem,
                                 const BaselineOptions& options) {
  return run_gpu_baseline(
      problem, options, cuda_traffic_model(),
      [](gpusim::Device& device, Extents3 ext,
         const gpusim::KernelTraffic& traffic, const DeviceView& view) {
        // Hand-written launch: manually computed block dimensions and
        // explicit per-thread boundary checks (paper Section 6).
        const gpusim::BlockDim block{16, 8, 8};
        return gpusim::launch_3d(device, ext, block, traffic,
                                 [&view](i32 x, i32 y, i32 z) {
                                   flux_cell(view, x, y, z);
                                 });
      });
}

BaselineResult run_baseline(BaselineKind kind,
                            const physics::FlowProblem& problem,
                            const BaselineOptions& options) {
  switch (kind) {
    case BaselineKind::Serial:
      return run_serial_baseline(problem, options);
    case BaselineKind::RajaLike:
      return run_raja_baseline(problem, options);
    case BaselineKind::CudaLike:
      return run_cuda_baseline(problem, options);
  }
  FVF_REQUIRE(false);
  return {};
}

f64 predict_gpu_seconds(BaselineKind kind, i64 cells, i64 iterations) {
  FVF_REQUIRE(kind != BaselineKind::Serial);
  const GpuTrafficModel model = kind == BaselineKind::RajaLike
                                    ? raja_traffic_model()
                                    : cuda_traffic_model();
  const gpusim::DeviceSpec spec = gpusim::a100_spec();
  const f64 bw =
      spec.dram_bandwidth_bytes_per_s * spec.achievable_bandwidth_fraction;
  const f64 bytes_per_iter =
      (model.flux_bytes_per_cell + model.density_bytes_per_cell) *
      static_cast<f64>(cells);
  const f64 flops_per_iter =
      (model.flux_flops_per_cell + model.density_flops_per_cell) *
      static_cast<f64>(cells);
  const f64 per_iter =
      2.0 * spec.kernel_launch_overhead_s +
      std::max(bytes_per_iter / bw, flops_per_iter / spec.peak_fp32_flops);
  return per_iter * static_cast<f64>(iterations);
}

}  // namespace fvf::baseline
