#include "serve/executor.hpp"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/api.hpp"
#include "common/assert.hpp"
#include "core/cg_program.hpp"
#include "core/fabric_impes.hpp"
#include "core/launcher.hpp"
#include "core/linear_stencil.hpp"
#include "core/transport_program.hpp"
#include "core/wave_program.hpp"
#include "io/checkpoint.hpp"
#include "spec/heat.hpp"
#include "wse/fault.hpp"

namespace fvf::serve {

/// The cached linear-system setup shared by the CG and wave scenarios:
/// stencil assembly, manufactured solution, and Jacobi scaling are all
/// deterministic functions of (problem, dt).
struct CgSetup {
  core::ScaledSystem scaled;
  Array3<f32> scaled_rhs;
  core::ManufacturedSystem manufactured;
};

namespace {

constexpr u64 kDigestSeed = 0xcbf29ce484222325ULL;

/// Applies the request's execution knobs to any HarnessOptions-derived
/// program options struct: the canonical fault scenario of the demos
/// (uniform rates, bit flips restricted to the retransmit-protected halo
/// colors) plus the thread count, which never changes results.
void apply_execution(dataflow::HarnessOptions& options,
                     const ScenarioRequest& request, lint::Level lint) {
  options.execution.threads = request.threads;
  options.execution.fault =
      wse::FaultConfig::uniform(request.fault_seed, request.fault_rate);
  options.execution.fault.flip_color_mask = 0x00FFu;
  options.lint = lint;
}

/// Content key of the problem cache. IMPES scenarios use the
/// homogeneous injection geomodel of the demo; the single-kernel
/// scenarios share the canonical log-normal benchmark problem.
u64 problem_key(const ScenarioRequest& request) {
  const bool impes = request.program == ProgramKind::Impes;
  u64 key = fnv1a(impes ? "problem/impes" : "problem/benchmark");
  key = fnv1a_mix(key, static_cast<u64>(request.nx));
  key = fnv1a_mix(key, static_cast<u64>(request.ny));
  key = fnv1a_mix(key, static_cast<u64>(request.nz));
  key = fnv1a_mix(key, request.seed);
  return key;
}

u64 setup_key(const ScenarioRequest& request) {
  u64 key = fnv1a_mix(fnv1a("setup/stencil"), problem_key(request));
  key = fnv1a_mix(key, std::bit_cast<u64>(request.dt));
  return key;
}

u64 lint_key(const ScenarioRequest& request) {
  u64 key = fnv1a("lint");
  key = fnv1a_mix(key, static_cast<u64>(request.program));
  key = fnv1a_mix(key, static_cast<u64>(request.nx));
  key = fnv1a_mix(key, static_cast<u64>(request.ny));
  key = fnv1a_mix(key, static_cast<u64>(request.nz));
  key = fnv1a_mix(key, static_cast<u64>(request.lint));
  return key;
}

/// Checkpoint file paths of a long job, named by the scenario hash.
struct CheckpointPaths {
  std::string meta;
  std::string saturation;
  std::string pressure;
};

CheckpointPaths checkpoint_paths(const std::string& dir, u64 hash) {
  char stem[32];
  std::snprintf(stem, sizeof(stem), "scn_%016llx",
                static_cast<unsigned long long>(hash));
  const std::string base = dir + "/" + stem;
  return CheckpointPaths{base + ".meta", base + "_saturation.fvf",
                         base + "_pressure.fvf"};
}

}  // namespace

ScenarioExecutor::ScenarioExecutor()
    : ScenarioExecutor(kDefaultCacheEntries) {}

ScenarioExecutor::ScenarioExecutor(usize cache_entries)
    : problems_(cache_entries),
      setups_(cache_entries),
      lint_passes_(cache_entries) {}

ScenarioExecutor::~ScenarioExecutor() = default;

ExecutorStats ScenarioExecutor::stats() const {
  ExecutorStats stats;
  stats.problems = problems_.stats();
  stats.setups = setups_.stats();
  stats.lint = lint_passes_.stats();
  stats.simulations = simulations_.load();
  stats.checkpoints_saved = checkpoints_saved_.load();
  stats.resumes = resumes_.load();
  return stats;
}

std::shared_ptr<const physics::FlowProblem> ScenarioExecutor::problem_for(
    const ScenarioRequest& request) {
  return problems_.get_or_build(problem_key(request), [&request] {
    if (request.program == ProgramKind::Impes) {
      physics::ProblemSpec spec;
      spec.extents = Extents3{request.nx, request.ny, request.nz};
      spec.spacing = mesh::Spacing3{10.0, 10.0, 2.0};
      spec.geomodel = physics::GeomodelKind::Homogeneous;
      spec.seed = request.seed;
      return physics::FlowProblem(spec);
    }
    return physics::make_benchmark_problem(
        Extents3{request.nx, request.ny, request.nz}, request.seed);
  });
}

std::shared_ptr<const CgSetup> ScenarioExecutor::setup_for(
    const ScenarioRequest& request) {
  return setups_.get_or_build(setup_key(request), [this, &request] {
    const std::shared_ptr<const physics::FlowProblem> problem =
        problem_for(request);
    const core::LinearStencil stencil =
        core::build_linear_stencil(*problem, request.dt);
    CgSetup setup;
    setup.manufactured = core::manufacture_solution(stencil);
    setup.scaled = core::jacobi_scale(stencil);
    setup.scaled_rhs = core::scale_rhs(setup.scaled, setup.manufactured.rhs);
    return setup;
  });
}

lint::Level ScenarioExecutor::effective_lint(const ScenarioRequest& request) {
  if (request.lint == lint::Level::Off) {
    return lint::Level::Off;
  }
  // A clean verification is a property of the program shape; once one
  // request verified it, identical shapes skip the verifier entirely.
  if (lint_passes_.lookup(lint_key(request)) != nullptr) {
    return lint::Level::Off;
  }
  return request.lint;
}

void ScenarioExecutor::record_lint_pass(const ScenarioRequest& request) {
  if (request.lint != lint::Level::Off) {
    lint_passes_.insert(lint_key(request), true);
  }
}

ScenarioResponse ScenarioExecutor::execute(const ScenarioRequest& raw,
                                           const ExecutionContext& context) {
  ScenarioResponse response;
  try {
    const ScenarioRequest request = resolve_defaults(raw);
    response.scenario_hash = scenario_hash(request);
    simulations_.fetch_add(1);
    if (request.backend == BackendChoice::Gpusim) {
      run_gpusim(request, response);
    } else {
      switch (request.program) {
        case ProgramKind::Tpfa:
          run_tpfa(request, response);
          break;
        case ProgramKind::Cg:
          run_cg(request, response);
          break;
        case ProgramKind::Transport:
          run_transport(request, response);
          break;
        case ProgramKind::Wave:
          run_wave(request, response);
          break;
        case ProgramKind::Impes:
          run_impes(request, response, context);
          break;
        case ProgramKind::Heat:
          run_heat(request, response);
          break;
      }
      if (response.status == RequestStatus::Ok) {
        // Lint verifies fabric programs; a gpusim run proves nothing
        // about the fabric shape, so only wse runs record a pass.
        record_lint_pass(request);
      }
    }
  } catch (const std::exception& error) {
    response.status = RequestStatus::Failed;
    response.error = error.what();
  }
  return response;
}

void ScenarioExecutor::run_tpfa(const ScenarioRequest& request,
                                ScenarioResponse& response) {
  const std::shared_ptr<const physics::FlowProblem> problem =
      problem_for(request);
  core::DataflowOptions options;
  options.iterations = request.iterations;
  apply_execution(options, request, effective_lint(request));
  const core::DataflowResult result = core::run_dataflow_tpfa(*problem, options);
  response.info = result;
  u64 digest = digest_field(kDigestSeed, result.residual);
  digest = digest_field(digest, result.pressure);
  response.result_digest = digest;
  if (!result.ok()) {
    response.status = RequestStatus::Failed;
    response.error = result.errors.front();
  }
}

void ScenarioExecutor::run_cg(const ScenarioRequest& request,
                              ScenarioResponse& response) {
  const std::shared_ptr<const CgSetup> setup = setup_for(request);
  core::DataflowCgOptions options;
  options.kernel.max_iterations = request.iterations;
  options.kernel.relative_tolerance = static_cast<f32>(request.tol);
  apply_execution(options, request, effective_lint(request));
  const core::DataflowCgResult result =
      core::run_dataflow_cg(setup->scaled.stencil, setup->scaled_rhs, options);
  response.info = result;
  const Array3<f32> solution =
      core::unscale_solution(setup->scaled, result.solution);
  response.result_digest = digest_field(kDigestSeed, solution);
  response.summary.emplace_back("iterations", static_cast<f64>(result.iterations));
  response.summary.emplace_back("converged", result.converged ? 1.0 : 0.0);
  response.summary.emplace_back("initial_residual_norm",
                                result.initial_residual_norm);
  response.summary.emplace_back("final_residual_norm",
                                result.final_residual_norm);
  if (!result.ok()) {
    response.status = RequestStatus::Failed;
    response.error = result.errors.front();
  } else if (!result.converged) {
    response.status = RequestStatus::Failed;
    std::ostringstream os;
    os << "CG did not converge within " << request.iterations
       << " iterations (||r||/||r0|| = "
       << result.final_residual_norm / result.initial_residual_norm << ")";
    response.error = os.str();
  }
}

void ScenarioExecutor::run_transport(const ScenarioRequest& request,
                                     ScenarioResponse& response) {
  const std::shared_ptr<const physics::FlowProblem> problem =
      problem_for(request);
  const Extents3 ext = problem->extents();

  // The canonical transport scenario: the initial saturation patch and
  // a centre injector over the problem's own initial pressure field.
  Array3<f32> saturation(ext, 0.0f);
  saturation(ext.nx / 2, ext.ny / 2, 0) = 0.6f;
  if (ext.ny / 2 > 0) {
    saturation(ext.nx / 2, ext.ny / 2 - 1, ext.nz > 1 ? 1 : 0) = 0.3f;
  }
  Array3<f32> wells(ext, 0.0f);
  wells(ext.nx / 2, ext.ny / 2, 0) = 1e-4f;

  core::DataflowTransportOptions options;
  options.kernel.window_seconds = request.dt;
  options.kernel.pore_volume =
      static_cast<f32>(problem->mesh().cell_volume() * 0.2);
  apply_execution(options, request, effective_lint(request));
  const core::DataflowTransportResult result = core::run_dataflow_transport(
      *problem, saturation, problem->initial_pressure(), wells, options);
  response.info = result;
  response.result_digest = digest_field(kDigestSeed, result.saturation);
  response.summary.emplace_back("substeps", static_cast<f64>(result.substeps));
  response.summary.emplace_back("advanced_seconds", result.advanced_seconds);
  if (!result.ok()) {
    response.status = RequestStatus::Failed;
    response.error = result.errors.front();
  }
}

void ScenarioExecutor::run_wave(const ScenarioRequest& request,
                                ScenarioResponse& response) {
  const std::shared_ptr<const CgSetup> setup = setup_for(request);
  const Array3<f32> pulse = core::gaussian_pulse(
      Extents3{request.nx, request.ny, request.nz}, 1.0, 2.0);
  core::DataflowWaveOptions options;
  options.kernel.timesteps = request.iterations;
  options.kernel.kappa = 0.4f;
  apply_execution(options, request, effective_lint(request));
  const core::DataflowWaveResult result =
      core::run_dataflow_wave(setup->scaled.stencil, pulse, options);
  response.info = result;
  response.result_digest = digest_field(kDigestSeed, result.field);
  if (!result.ok()) {
    response.status = RequestStatus::Failed;
    response.error = result.errors.front();
  }
}

void ScenarioExecutor::run_heat(const ScenarioRequest& request,
                                ScenarioResponse& response) {
  // Heat needs no FlowProblem: the initial field is a deterministic
  // function of (extents, seed), so the scenario hash still keys the
  // result bit-for-bit.
  const Array3<f32> initial = spec::heat_initial_field(
      Extents3{request.nx, request.ny, request.nz}, request.seed);
  spec::DataflowHeatOptions options;
  options.kernel.steps = request.iterations;
  apply_execution(options, request, effective_lint(request));
  const spec::DataflowHeatResult result =
      spec::run_dataflow_heat(initial, options);
  response.info = result;
  response.result_digest = digest_field(kDigestSeed, result.field);
  response.summary.emplace_back("steps",
                                static_cast<f64>(result.steps_completed));
  if (!result.ok()) {
    response.status = RequestStatus::Failed;
    response.error = result.errors.front();
  }
}

void ScenarioExecutor::run_gpusim(const ScenarioRequest& request,
                                  ScenarioResponse& response) {
  api::FieldEquationSpec spec;
  spec.kernel = std::string(program_name(request.program));
  spec.nx = request.nx;
  spec.ny = request.ny;
  spec.nz = request.nz;
  spec.seed = request.seed;
  spec.iterations = request.iterations;
  spec.dt = request.dt;
  spec.tol = request.tol;
  const api::FieldEquationResult result =
      api::run_field_equation(spec, api::Backend::Gpusim);
  // The shared timing surface: the analytic GPU timeline stands in for
  // the fabric clock in the response's RunInfo.
  response.info.device_seconds = result.device_seconds;
  response.result_digest = result.result_digest;
  response.summary = result.summary;
  response.summary.emplace_back("work", static_cast<f64>(result.work));
  response.summary.emplace_back(
      "gpu_kernels_launched", static_cast<f64>(result.gpu.kernels_launched));
  response.summary.emplace_back("gpu_occupancy", result.gpu.occupancy);
  if (request.program == ProgramKind::Cg && !result.converged) {
    response.status = RequestStatus::Failed;
    std::ostringstream os;
    os << "CG did not converge within " << request.iterations
       << " iterations on the gpusim backend";
    response.error = os.str();
  }
}

void ScenarioExecutor::run_impes(const ScenarioRequest& request,
                                 ScenarioResponse& response,
                                 const ExecutionContext& context) {
  const std::shared_ptr<const physics::FlowProblem> problem =
      problem_for(request);
  core::FabricImpesOptions options;
  options.execution.threads = request.threads;
  options.execution.fault =
      wse::FaultConfig::uniform(request.fault_seed, request.fault_rate);
  options.execution.fault.flip_color_mask = 0x00FFu;
  options.lint = effective_lint(request);

  core::FabricImpesSimulator sim(*problem, options);
  sim.add_well(Coord3{request.nx / 2, request.ny / 2, 0}, 2e-4);

  const bool checkpointing =
      request.checkpoint_every > 0 && !context.checkpoint_dir.empty();
  const CheckpointPaths paths =
      checkpoint_paths(context.checkpoint_dir, response.scenario_hash);

  i32 windows_done = 0;
  dataflow::RunInfo total;
  i64 cg_iterations = 0;
  i64 substeps = 0;

  if (checkpointing) {
    // Resume when a complete checkpoint of this exact scenario exists.
    std::ifstream meta_in(paths.meta);
    if (meta_in.good()) {
      std::ostringstream text;
      text << meta_in.rdbuf();
      const std::string meta = text.str();
      // The meta file embeds the canonical content so a hash collision
      // (or a stale directory) can never resume the wrong scenario.
      const std::string canonical_line =
          "canonical=" + canonical_content(request) + "\n";
      if (meta.find(canonical_line) != std::string::npos) {
        const dataflow::RunInfo done = parse_run_info(meta);
        sim.restore_state(io::load_field(paths.saturation),
                          io::load_field(paths.pressure));
        total = done;
        std::istringstream scalars(meta);
        std::string line;
        while (std::getline(scalars, line)) {
          if (line.rfind("windows_done=", 0) == 0) {
            windows_done = static_cast<i32>(std::stol(line.substr(13)));
          } else if (line.rfind("cg_iterations_total=", 0) == 0) {
            cg_iterations = std::stol(line.substr(20));
          } else if (line.rfind("transport_substeps_total=", 0) == 0) {
            substeps = std::stol(line.substr(25));
          }
        }
        response.resumed = true;
        resumes_.fetch_add(1);
      }
    }
  }

  for (i32 window = windows_done; window < request.iterations; ++window) {
    if (window > windows_done && context.expired && context.expired()) {
      std::ostringstream os;
      os << "deadline exceeded after " << window << "/" << request.iterations
         << " windows";
      if (checkpointing) {
        os << " (checkpoint covers the first "
           << (window / request.checkpoint_every) * request.checkpoint_every
           << ")";
      }
      response.status = RequestStatus::DeadlineExpired;
      response.error = os.str();
      response.info = total;
      return;
    }
    const core::FabricImpesWindow report = sim.advance_window(request.dt);
    dataflow::accumulate(total, report.fabric);
    cg_iterations += report.cg_iterations;
    substeps += report.transport_substeps;
    const i32 done = window + 1;
    if (checkpointing && done < request.iterations &&
        done % request.checkpoint_every == 0) {
      std::filesystem::create_directories(context.checkpoint_dir);
      io::save_field(paths.saturation, sim.saturation());
      io::save_field(paths.pressure, sim.pressure());
      // Meta goes last: a checkpoint without its meta file is invisible
      // to resume, so a crash mid-save can never resume partial state.
      std::ofstream meta_out(paths.meta, std::ios::binary | std::ios::trunc);
      meta_out << "canonical=" << canonical_content(request) << '\n'
               << "windows_done=" << done << '\n'
               << "cg_iterations_total=" << cg_iterations << '\n'
               << "transport_substeps_total=" << substeps << '\n'
               << serialize_run_info(total);
      checkpoints_saved_.fetch_add(1);
    }
  }

  if (checkpointing) {
    // The job is complete; a finished scenario must not leave a stale
    // resume point behind.
    std::remove(paths.meta.c_str());
    std::remove(paths.saturation.c_str());
    std::remove(paths.pressure.c_str());
  }

  response.info = total;
  u64 digest = digest_field(kDigestSeed, sim.saturation());
  digest = digest_field(digest, sim.pressure());
  response.result_digest = digest;
  response.summary.emplace_back("windows",
                                static_cast<f64>(request.iterations));
  response.summary.emplace_back("cg_iterations",
                                static_cast<f64>(cg_iterations));
  response.summary.emplace_back("transport_substeps",
                                static_cast<f64>(substeps));
  response.summary.emplace_back("co2_in_place", sim.co2_in_place());
}

}  // namespace fvf::serve
