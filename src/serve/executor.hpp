/// \file executor.hpp
/// \brief Maps a parsed scenario request onto one of the six fabric
///        programs, sharing the expensive setup across requests.
///
/// Three content-hash cache layers sit between a request and the event
/// engine:
///
///   - **problem cache** — geomodel + mesh + transmissibility
///     construction (physics::FlowProblem), keyed by extents/seed/kind;
///   - **setup cache** — the linearized pressure system (stencil build,
///     manufactured RHS, Jacobi scaling) shared by the CG and wave
///     scenarios, keyed by problem + dt;
///   - **lint cache** — successful static verification (routing graphs,
///     memory budgets, switch hazards are a property of program
///     structure, not data), keyed by program/extents/level, so only the
///     first request of a shape pays for fvf::lint.
///
/// Full-result memoization lives above this layer, in ScenarioService.
/// The executor also implements checkpoint/restore of long IMPES jobs
/// via the src/io/checkpoint field format plus a small meta file.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "physics/problem.hpp"
#include "serve/cache.hpp"
#include "serve/request.hpp"
#include "serve/response.hpp"

namespace fvf::serve {

/// Cancellation/checkpoint context the service passes per execution.
struct ExecutionContext {
  /// Returns true once the request's deadline has expired. Consulted
  /// between fabric launches (IMPES window boundaries) — a launch is
  /// never interrupted mid-flight, so cancellation leaves no partial
  /// state. Null = no deadline.
  std::function<bool()> expired;
  /// Directory for long-job checkpoints; empty disables checkpointing.
  std::string checkpoint_dir;
};

/// Monotonic accounting of one executor.
struct ExecutorStats {
  CacheStats problems;
  CacheStats setups;
  CacheStats lint;
  /// Scenario executions that reached a fabric launch (cold runs).
  u64 simulations = 0;
  u64 checkpoints_saved = 0;
  u64 resumes = 0;
};

struct CgSetup;

class ScenarioExecutor {
 public:
  /// Default LRU capacity of each cache layer (entries). Generous: a
  /// replay workload rarely touches more than a few dozen shapes.
  static constexpr usize kDefaultCacheEntries = 1024;

  ScenarioExecutor();
  /// `cache_entries` bounds each cache layer (0 = unbounded).
  explicit ScenarioExecutor(usize cache_entries);
  ~ScenarioExecutor();

  ScenarioExecutor(const ScenarioExecutor&) = delete;
  ScenarioExecutor& operator=(const ScenarioExecutor&) = delete;

  /// Runs the scenario and returns the response. Failures (lint strict,
  /// fabric errors, non-convergence) come back as status Failed with the
  /// reason recorded — execute never throws on a bad scenario. A
  /// mid-run deadline expiry returns DeadlineExpired with the
  /// accounting accumulated so far.
  [[nodiscard]] ScenarioResponse execute(const ScenarioRequest& request,
                                         const ExecutionContext& context);

  [[nodiscard]] ExecutorStats stats() const;

 private:
  void run_tpfa(const ScenarioRequest& request, ScenarioResponse& response);
  void run_cg(const ScenarioRequest& request, ScenarioResponse& response);
  void run_transport(const ScenarioRequest& request,
                     ScenarioResponse& response);
  void run_wave(const ScenarioRequest& request, ScenarioResponse& response);
  void run_impes(const ScenarioRequest& request, ScenarioResponse& response,
                 const ExecutionContext& context);
  void run_heat(const ScenarioRequest& request, ScenarioResponse& response);
  /// Every program on the executing gpusim backend, via the
  /// fvf::api field-equation entry point (identical canonical scenario
  /// inputs, so digests are comparable across backends).
  void run_gpusim(const ScenarioRequest& request, ScenarioResponse& response);

  [[nodiscard]] std::shared_ptr<const physics::FlowProblem> problem_for(
      const ScenarioRequest& request);
  [[nodiscard]] std::shared_ptr<const CgSetup> setup_for(
      const ScenarioRequest& request);

  /// The lint level the run should use: the request's level on first
  /// sight of a (program, extents, level) shape, Off once that shape has
  /// verified cleanly before. record_lint_pass() marks the shape clean.
  [[nodiscard]] lint::Level effective_lint(const ScenarioRequest& request);
  void record_lint_pass(const ScenarioRequest& request);

  HashCache<physics::FlowProblem> problems_;
  HashCache<CgSetup> setups_;
  HashCache<bool> lint_passes_;
  std::atomic<u64> simulations_{0};
  std::atomic<u64> checkpoints_saved_{0};
  std::atomic<u64> resumes_{0};
};

}  // namespace fvf::serve
