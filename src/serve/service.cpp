#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace fvf::serve {

namespace {

f64 steady_now_ms() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<f64, std::milli>(now).count();
}

ScenarioResponse make_status(u64 hash, RequestStatus status,
                             std::string error) {
  ScenarioResponse response;
  response.scenario_hash = hash;
  response.status = status;
  response.error = std::move(error);
  return response;
}

std::shared_future<ScenarioResponse> ready(ScenarioResponse response) {
  std::promise<ScenarioResponse> promise;
  promise.set_value(std::move(response));
  return promise.get_future().share();
}

}  // namespace

ScenarioService::ScenarioService(ServiceOptions options)
    : options_(std::move(options)), executor_(options_.cache_entries) {
  FVF_REQUIRE_MSG(options_.workers >= 0,
                  "ServiceOptions::workers must be >= 0");
  FVF_REQUIRE_MSG(options_.queue_capacity >= 1,
                  "ServiceOptions::queue_capacity must be >= 1");
  if (options_.workers > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.workers);
    scheduler_ = std::thread([this] {
      pool_->run_indexed(options_.workers, [this](i64) { worker_loop(); });
    });
  }
}

ScenarioService::~ScenarioService() { shutdown(); }

f64 ScenarioService::now() const {
  return options_.now_ms ? options_.now_ms() : steady_now_ms();
}

std::shared_future<ScenarioResponse> ScenarioService::submit_line(
    std::string_view line) {
  return submit(parse_request(line));
}

std::shared_future<ScenarioResponse> ScenarioService::submit(
    const ScenarioRequest& raw) {
  const ScenarioRequest request = resolve_defaults(raw);
  const u64 hash = scenario_hash(request);
  const f64 submitted_at = now();

  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.submitted;

  if (stopping_) {
    ++stats_.shed;
    return ready(make_status(hash, RequestStatus::Shed, "service stopped"));
  }

  // Memo: an identical scenario already ran to completion.
  if (const auto memo = memo_.find(hash); memo != memo_.end()) {
    ++stats_.memo.hits;
    ++stats_.completed;
    latency_ms_.push_back(0.0);
    ScenarioResponse response = memo->second;
    response.cache_hit = true;
    return ready(std::move(response));
  }

  // Coalesce: an identical scenario is queued or running right now.
  if (const auto running = inflight_.find(hash); running != inflight_.end()) {
    ++stats_.memo.hits;
    ++stats_.coalesced;
    return running->second->future;
  }

  ++stats_.memo.misses;

  auto job = std::make_shared<Job>();
  job->request = request;
  job->hash = hash;
  job->seq = next_seq_++;
  job->submit_ms = submitted_at;
  job->deadline_at_ms =
      request.deadline_ms == 0
          ? 0.0
          : submitted_at + static_cast<f64>(request.deadline_ms);
  job->future = job->promise.get_future().share();

  if (queue_.size() >= options_.queue_capacity) {
    // Overflow: shed the youngest job of the least-important class,
    // counting the incoming request among the candidates.
    usize victim = queue_.size();  // sentinel: the incoming job
    Priority victim_priority = request.priority;
    u64 victim_seq = job->seq;
    for (usize i = 0; i < queue_.size(); ++i) {
      const Priority p = queue_[i]->request.priority;
      const u64 s = queue_[i]->seq;
      if (static_cast<u8>(p) > static_cast<u8>(victim_priority) ||
          (p == victim_priority && s > victim_seq)) {
        victim = i;
        victim_priority = p;
        victim_seq = s;
      }
    }
    std::ostringstream os;
    os << "shed: queue overflow (capacity " << options_.queue_capacity << ")";
    if (victim == queue_.size()) {
      ++stats_.shed;
      return ready(make_status(hash, RequestStatus::Shed, os.str()));
    }
    const std::shared_ptr<Job> evicted = queue_[victim];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(victim));
    inflight_.erase(evicted->hash);
    ++stats_.shed;
    lock.unlock();
    evicted->promise.set_value(
        make_status(evicted->hash, RequestStatus::Shed, os.str()));
    lock.lock();
    if (stopping_) {  // raced with shutdown while unlocked
      ++stats_.shed;
      return ready(make_status(hash, RequestStatus::Shed, "service stopped"));
    }
  }

  queue_.push_back(job);
  inflight_.emplace(hash, job);
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  const std::shared_future<ScenarioResponse> future = job->future;
  lock.unlock();
  work_ready_.notify_one();
  return future;
}

usize ScenarioService::next_job_locked() const {
  usize best = 0;
  for (usize i = 1; i < queue_.size(); ++i) {
    const Priority bp = queue_[best]->request.priority;
    const Priority ip = queue_[i]->request.priority;
    if (static_cast<u8>(ip) < static_cast<u8>(bp) ||
        (ip == bp && queue_[i]->seq < queue_[best]->seq)) {
      best = i;
    }
  }
  return best;
}

void ScenarioService::finish(const std::shared_ptr<Job>& job,
                             ScenarioResponse response, f64 latency_ms) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    switch (response.status) {
      case RequestStatus::Ok:
        ++stats_.completed;
        memo_.emplace(job->hash, response);
        break;
      case RequestStatus::Failed:
        ++stats_.failed;
        break;
      case RequestStatus::DeadlineExpired:
        ++stats_.deadline_expired;
        break;
      case RequestStatus::Shed:
        ++stats_.shed;
        break;
    }
    latency_ms_.push_back(latency_ms);
    cold_latency_ms_.push_back(latency_ms);
    inflight_.erase(job->hash);
  }
  job->promise.set_value(std::move(response));
}

bool ScenarioService::run_one() {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) {
      return false;
    }
    const usize index = next_job_locked();
    job = queue_[index];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  }

  const f64 started = now();
  const f64 queue_ms = started - job->submit_ms;

  if (job->deadline_at_ms > 0.0 && started >= job->deadline_at_ms) {
    std::ostringstream os;
    os << "deadline (" << job->request.deadline_ms << " ms) expired after "
       << queue_ms << " ms in queue";
    ScenarioResponse response =
        make_status(job->hash, RequestStatus::DeadlineExpired, os.str());
    response.queue_ms = queue_ms;
    finish(job, std::move(response), queue_ms);
    return true;
  }

  ExecutionContext context;
  context.checkpoint_dir = options_.checkpoint_dir;
  if (job->deadline_at_ms > 0.0) {
    const f64 deadline = job->deadline_at_ms;
    context.expired = [this, deadline] { return now() >= deadline; };
  }

  ScenarioResponse response = executor_.execute(job->request, context);
  const f64 finished = now();
  response.queue_ms = queue_ms;
  response.run_ms = finished - started;
  finish(job, std::move(response), finished - job->submit_ms);
  return true;
}

void ScenarioService::drain() {
  while (run_one()) {
  }
}

void ScenarioService::worker_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) {
        return;
      }
    }
    run_one();
  }
}

void ScenarioService::shutdown() {
  std::deque<std::shared_ptr<Job>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
    // With live workers, let them finish the backlog; in manual mode
    // nothing will ever run the queue, so shed it here.
    if (pool_ == nullptr) {
      orphaned.swap(queue_);
      for (const auto& job : orphaned) {
        inflight_.erase(job->hash);
        ++stats_.shed;
      }
    }
  }
  for (const auto& job : orphaned) {
    job->promise.set_value(
        make_status(job->hash, RequestStatus::Shed, "service shutdown"));
  }
  work_ready_.notify_all();
  if (scheduler_.joinable()) {
    scheduler_.join();
  }
  pool_.reset();
}

ServiceStats ScenarioService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats stats = stats_;
  stats.queue_depth = queue_.size();
  stats.executor = executor_.stats();
  if (!latency_ms_.empty()) {
    stats.latency_p50_ms = percentile(latency_ms_, 50.0);
    stats.latency_p99_ms = percentile(latency_ms_, 99.0);
  }
  if (!cold_latency_ms_.empty()) {
    stats.cold_latency_p50_ms = percentile(cold_latency_ms_, 50.0);
    stats.cold_latency_p99_ms = percentile(cold_latency_ms_, 99.0);
  }
  return stats;
}

}  // namespace fvf::serve
