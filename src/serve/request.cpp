#include "serve/request.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "api/backend.hpp"
#include "common/assert.hpp"

namespace fvf::serve {

std::string_view program_name(ProgramKind kind) noexcept {
  switch (kind) {
    case ProgramKind::Tpfa:
      return "tpfa";
    case ProgramKind::Cg:
      return "cg";
    case ProgramKind::Transport:
      return "transport";
    case ProgramKind::Wave:
      return "wave";
    case ProgramKind::Impes:
      return "impes";
    case ProgramKind::Heat:
      return "heat";
  }
  return "?";
}

std::string_view backend_choice_name(BackendChoice backend) noexcept {
  switch (backend) {
    case BackendChoice::Auto:
      return "auto";
    case BackendChoice::Wse:
      return api::backend_name(api::Backend::Wse);
    case BackendChoice::Gpusim:
      return api::backend_name(api::Backend::Gpusim);
  }
  return "?";
}

std::string_view priority_name(Priority priority) noexcept {
  switch (priority) {
    case Priority::Interactive:
      return "interactive";
    case Priority::Batch:
      return "batch";
    case Priority::Background:
      return "background";
  }
  return "?";
}

namespace {

/// Spelling normalization: dashes to underscores, then the documented
/// aliases onto the canonical field name.
std::string normalize_key(std::string_view raw) {
  std::string key(raw);
  for (char& c : key) {
    if (c == '-') {
      c = '_';
    }
  }
  if (key == "steps" || key == "windows" || key == "max_iterations") {
    return "iterations";
  }
  if (key == "tolerance") {
    return "tol";
  }
  if (key == "window" || key == "window_seconds" || key == "timestep") {
    return "dt";
  }
  if (key == "deadline") {
    return "deadline_ms";
  }
  return key;
}

i64 parse_i64(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  FVF_REQUIRE_MSG(end != value.c_str() && *end == '\0' && errno == 0,
                  "request field '" << key << "' has non-integer value '"
                                    << value << "'");
  return static_cast<i64>(parsed);
}

f64 parse_f64(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const f64 parsed = std::strtod(value.c_str(), &end);
  FVF_REQUIRE_MSG(end != value.c_str() && *end == '\0' && errno == 0,
                  "request field '" << key << "' has non-numeric value '"
                                    << value << "'");
  return parsed;
}

ProgramKind parse_program(const std::string& value) {
  for (u8 p = 0; p < kProgramCount; ++p) {
    const ProgramKind kind = static_cast<ProgramKind>(p);
    if (value == program_name(kind)) {
      return kind;
    }
  }
  FVF_REQUIRE_MSG(false,
                  "unknown program '"
                      << value
                      << "' (expected tpfa|cg|transport|wave|impes|heat)");
  return ProgramKind::Tpfa;  // unreachable
}

Priority parse_priority(const std::string& value) {
  if (value == "interactive" || value == "high") {
    return Priority::Interactive;
  }
  if (value == "batch" || value == "normal") {
    return Priority::Batch;
  }
  if (value == "background" || value == "low") {
    return Priority::Background;
  }
  FVF_REQUIRE_MSG(false, "unknown priority '"
                             << value
                             << "' (expected interactive|batch|background)");
  return Priority::Batch;  // unreachable
}

BackendChoice parse_backend_choice(const std::string& value) {
  if (value == "auto") {
    return BackendChoice::Auto;
  }
  if (value == api::backend_name(api::Backend::Wse)) {
    return BackendChoice::Wse;
  }
  if (value == api::backend_name(api::Backend::Gpusim)) {
    return BackendChoice::Gpusim;
  }
  FVF_REQUIRE_MSG(false, "unknown backend '" << value << "' (expected auto|"
                                             << api::backend_name_list()
                                             << ")");
  return BackendChoice::Auto;  // unreachable
}

lint::Level parse_lint(const std::string& value) {
  if (value == "off") {
    return lint::Level::Off;
  }
  if (value == "warn") {
    return lint::Level::Warn;
  }
  if (value == "strict") {
    return lint::Level::Strict;
  }
  FVF_REQUIRE_MSG(false, "unknown lint level '" << value
                                                << "' (expected off|warn|strict)");
  return lint::Level::Off;  // unreachable
}

/// Canonical float spelling: shortest round-trippable decimal via %.17g
/// (the hash must not distinguish "1e-05" from "0.00001", so both are
/// parsed and re-printed the same way).
std::string canonical_f64(f64 value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Per-program defaults for the work-count and timestep fields, applied
/// after parsing so the canonical content never contains a 0 sentinel.
void apply_defaults(ScenarioRequest& request) {
  if (request.iterations == 0) {
    switch (request.program) {
      case ProgramKind::Tpfa:
        request.iterations = 2;
        break;
      case ProgramKind::Cg:
        request.iterations = 200;
        break;
      case ProgramKind::Transport:
        request.iterations = 1;
        break;
      case ProgramKind::Wave:
        request.iterations = 8;
        break;
      case ProgramKind::Impes:
        request.iterations = 3;
        break;
      case ProgramKind::Heat:
        request.iterations = 10;
        break;
    }
  }
  if (request.backend == BackendChoice::Auto) {
    // Deterministic routing: background work runs on the executing GPU
    // backend, keeping the fabric free for interactive/batch requests.
    request.backend = request.priority == Priority::Background
                          ? BackendChoice::Gpusim
                          : BackendChoice::Wse;
  }
  if (request.dt == 0.0) {
    switch (request.program) {
      case ProgramKind::Tpfa:
      case ProgramKind::Heat:
        request.dt = 3600.0;  // unused by the kernel, fixed for the hash
        break;
      case ProgramKind::Cg:
      case ProgramKind::Wave:
        request.dt = 3600.0;
        break;
      case ProgramKind::Transport:
      case ProgramKind::Impes:
        request.dt = 900.0;
        break;
    }
  }
}

void validate(const ScenarioRequest& request) {
  FVF_REQUIRE_MSG(request.nx > 0 && request.ny > 0 && request.nz > 0,
                  "request extents must be positive ("
                      << request.nx << 'x' << request.ny << 'x' << request.nz
                      << ')');
  FVF_REQUIRE_MSG(request.iterations > 0, "request field 'iterations' = "
                                              << request.iterations
                                              << " must be positive");
  FVF_REQUIRE_MSG(request.dt > 0.0,
                  "request field 'dt' = " << request.dt << " must be positive");
  FVF_REQUIRE_MSG(request.tol > 0.0, "request field 'tol' = "
                                         << request.tol << " must be positive");
  FVF_REQUIRE_MSG(request.fault_rate >= 0.0 && request.fault_rate <= 1.0,
                  "request field 'fault_rate' = " << request.fault_rate
                                                  << " must be in [0, 1]");
  FVF_REQUIRE_MSG(request.threads >= 1, "request field 'threads' = "
                                            << request.threads
                                            << " must be >= 1");
  FVF_REQUIRE_MSG(request.checkpoint_every >= 0,
                  "request field 'checkpoint_every' = "
                      << request.checkpoint_every << " must be >= 0");
}

}  // namespace

ScenarioRequest parse_request(std::string_view line) {
  ScenarioRequest request;
  request.iterations = 0;  // 0 = resolve the per-program default below
  request.dt = 0.0;

  std::string text(line);
  for (char& c : text) {
    if (c == ',') {
      c = ' ';
    }
  }
  std::istringstream tokens(text);
  std::string token;
  while (tokens >> token) {
    if (token[0] == '#') {
      break;  // rest of the line is a comment
    }
    const usize eq = token.find('=');
    FVF_REQUIRE_MSG(eq != std::string::npos && eq > 0 && eq + 1 < token.size(),
                    "malformed request token '" << token
                                                << "' (expected key=value)");
    const std::string key = normalize_key(token.substr(0, eq));
    const std::string value = token.substr(eq + 1);

    if (key == "program") {
      request.program = parse_program(value);
    } else if (key == "backend") {
      request.backend = parse_backend_choice(value);
    } else if (key == "nx") {
      request.nx = static_cast<i32>(parse_i64(key, value));
    } else if (key == "ny") {
      request.ny = static_cast<i32>(parse_i64(key, value));
    } else if (key == "nz") {
      request.nz = static_cast<i32>(parse_i64(key, value));
    } else if (key == "seed") {
      request.seed = static_cast<u64>(parse_i64(key, value));
    } else if (key == "iterations") {
      request.iterations = static_cast<i32>(parse_i64(key, value));
    } else if (key == "dt") {
      request.dt = parse_f64(key, value);
    } else if (key == "tol") {
      request.tol = parse_f64(key, value);
    } else if (key == "fault_seed") {
      request.fault_seed = static_cast<u64>(parse_i64(key, value));
    } else if (key == "fault_rate") {
      request.fault_rate = parse_f64(key, value);
    } else if (key == "threads") {
      request.threads = static_cast<i32>(parse_i64(key, value));
    } else if (key == "lint") {
      request.lint = parse_lint(value);
    } else if (key == "priority") {
      request.priority = parse_priority(value);
    } else if (key == "deadline_ms") {
      request.deadline_ms = static_cast<u64>(parse_i64(key, value));
    } else if (key == "checkpoint_every") {
      request.checkpoint_every = static_cast<i32>(parse_i64(key, value));
    } else {
      FVF_REQUIRE_MSG(false, "unknown request field '" << key << "'");
    }
  }
  // Defaults resolve only once parsing is complete: the program token
  // may come before or after the fields it defaults, and order must not
  // matter.
  apply_defaults(request);
  validate(request);
  return request;
}

ScenarioRequest resolve_defaults(const ScenarioRequest& request) {
  ScenarioRequest resolved = request;
  apply_defaults(resolved);
  validate(resolved);
  return resolved;
}

std::string canonical_content(const ScenarioRequest& request) {
  const ScenarioRequest defaulted = resolve_defaults(request);
  std::ostringstream os;
  os << "backend=" << backend_choice_name(defaulted.backend)
     << " dt=" << canonical_f64(defaulted.dt)
     << " fault_rate=" << canonical_f64(defaulted.fault_rate)
     << " fault_seed=" << defaulted.fault_seed
     << " iterations=" << defaulted.iterations << " nx=" << defaulted.nx
     << " ny=" << defaulted.ny << " nz=" << defaulted.nz
     << " program=" << program_name(defaulted.program)
     << " seed=" << defaulted.seed << " tol=" << canonical_f64(defaulted.tol);
  return os.str();
}

u64 fnv1a(std::string_view bytes) noexcept {
  u64 hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<u8>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

u64 fnv1a_mix(u64 hash, u64 value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffULL;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

u64 scenario_hash(const ScenarioRequest& request) {
  return fnv1a(canonical_content(request));
}

}  // namespace fvf::serve
