/// \file response.hpp
/// \brief Scenario responses and their canonical serialization.
///
/// The serialized form covers exactly the *deterministic* content of a
/// response — the scenario hash, status, fabric accounting (RunInfo with
/// f64s as exact bit patterns), the result-field digest, and the summary
/// scalars. Host-side timings and cache provenance are deliberately
/// excluded, so a memoized response serializes byte-identically to the
/// cold run that produced it, for every `--threads` value. The same text
/// format doubles as the checkpoint-meta encoding of a long job's
/// accumulated accounting.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/array3d.hpp"
#include "dataflow/run_info.hpp"

namespace fvf::serve {

/// Terminal state of a scenario request.
enum class RequestStatus : u8 {
  Ok = 0,
  /// Rejected by admission control (queue overflow or service shutdown).
  Shed,
  /// Deadline expired before or during execution; recorded, never thrown.
  DeadlineExpired,
  /// The execution raised an error (lint strict failure, fabric error,
  /// non-convergence, ...).
  Failed,
};

[[nodiscard]] std::string_view status_name(RequestStatus status) noexcept;

/// The service's answer to one scenario request.
struct ScenarioResponse {
  u64 scenario_hash = 0;
  RequestStatus status = RequestStatus::Ok;
  /// Human-readable reason for any non-Ok status.
  std::string error;
  /// Full fabric accounting (for IMPES: accumulated over every window of
  /// the job, including windows executed before a checkpoint/restore).
  dataflow::RunInfo info;
  /// FNV-1a 64 over the raw f32 bit patterns of every gathered result
  /// field, in a fixed field order (the cheap stand-in for shipping the
  /// arrays back over a wire).
  u64 result_digest = 0;
  /// Deterministic per-program scalars (iterations, converged, substeps,
  /// co2_in_place, ...), name-sorted. f64 values serialize as bits.
  std::vector<std::pair<std::string, f64>> summary;

  // --- host-side provenance; excluded from serialize_response ---------------
  /// Served from the full-result memo without running.
  bool cache_hit = false;
  /// Joined an in-flight identical request (one simulation, N responses).
  bool coalesced = false;
  /// Execution resumed from an on-disk checkpoint.
  bool resumed = false;
  f64 queue_ms = 0.0;
  f64 run_ms = 0.0;

  [[nodiscard]] bool ok() const noexcept {
    return status == RequestStatus::Ok;
  }
};

/// Canonical deterministic serialization (see file comment). Two
/// responses to the same scenario are byte-identical here regardless of
/// thread count, cache path, or checkpoint/restore history.
[[nodiscard]] std::string serialize_response(const ScenarioResponse& response);

/// Canonical key=value serialization of a RunInfo: every f64 as its
/// exact bit pattern, per-PE phase attribution compressed to a digest.
[[nodiscard]] std::string serialize_run_info(const dataflow::RunInfo& info);

/// Inverse of serialize_run_info for checkpoint metadata. Requires the
/// per-PE attribution to have been empty at serialization time (the
/// accumulated accounting of a multi-launch job, which drops it); throws
/// ContractViolation otherwise or on malformed text.
[[nodiscard]] dataflow::RunInfo parse_run_info(const std::string& text);

/// FNV-1a 64 over the raw bit patterns of `values`, chained onto `hash`.
[[nodiscard]] u64 digest_f32(u64 hash, std::span<const f32> values) noexcept;

/// Digest of a whole field (extents + payload bits), chained onto `hash`.
[[nodiscard]] u64 digest_field(u64 hash, const Array3<f32>& field) noexcept;

}  // namespace fvf::serve
