/// \file service.hpp
/// \brief ScenarioService — the batched, cached, multi-tenant front-end
///        of the simulator.
///
/// Requests enter a bounded priority queue and are executed
/// asynchronously by a fixed worker fleet forked from the repo's own
/// fvf::ThreadPool. Three properties define the service:
///
///   - **Memoization.** The simulator is bit-deterministic, so the
///     canonical scenario hash (request.hpp) keys a full-result memo:
///     an identical request — any field spelling, any thread count —
///     returns the cached response without running. Below the memo, the
///     executor shares problem/setup/lint construction across
///     *different* scenarios that agree on those inputs.
///   - **Coalescing.** A request identical to one already queued or
///     running joins its in-flight future: one simulation, N responses.
///   - **Admission control.** The queue is bounded; on overflow the
///     service sheds deterministically — the youngest request of the
///     least-important priority class loses, receiving a recorded Shed
///     response (never an exception, never an abort). Per-request
///     deadlines cancel cleanly at dequeue or between IMPES windows.
///
/// `workers = 0` puts the service in manual mode: nothing executes until
/// drain() runs queued jobs on the calling thread — the deterministic
/// harness the admission/deadline tests and the load bench build on.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "serve/executor.hpp"
#include "serve/request.hpp"
#include "serve/response.hpp"

namespace fvf::serve {

/// Service configuration.
struct ServiceOptions {
  /// Concurrent scenario executions (>= 1), forked from one
  /// fvf::ThreadPool. 0 = manual mode: submit() only enqueues and the
  /// caller runs jobs via drain() — deterministic, single-threaded.
  i32 workers = 2;
  /// Bounded admission queue (counts queued, not yet running, jobs).
  usize queue_capacity = 64;
  /// LRU capacity of each executor cache layer (problem, setup, lint),
  /// in entries; 0 = unbounded.
  usize cache_entries = ScenarioExecutor::kDefaultCacheEntries;
  /// Directory for long-job checkpoints; empty disables checkpointing.
  std::string checkpoint_dir;
  /// Monotonic clock in milliseconds, injectable for deterministic
  /// deadline tests. Null = std::chrono::steady_clock.
  std::function<f64()> now_ms;
};

/// Machine-readable service counters (see also ExecutorStats).
struct ServiceStats {
  u64 submitted = 0;
  u64 completed = 0;  ///< responses delivered with status Ok
  u64 failed = 0;
  u64 shed = 0;
  u64 deadline_expired = 0;
  /// Full-result memo accounting. hits = requests answered without any
  /// execution; misses = requests that had to queue.
  CacheStats memo;
  /// Requests that joined an in-flight identical execution.
  u64 coalesced = 0;
  usize queue_depth = 0;
  usize max_queue_depth = 0;
  /// End-to-end latency (enqueue -> response, ms) percentiles over every
  /// request that got a response, memo hits included at ~0.
  f64 latency_p50_ms = 0.0;
  f64 latency_p99_ms = 0.0;
  /// The same percentiles over executed (non-memoized) jobs only.
  f64 cold_latency_p50_ms = 0.0;
  f64 cold_latency_p99_ms = 0.0;
  ExecutorStats executor;
};

class ScenarioService {
 public:
  explicit ScenarioService(ServiceOptions options = {});
  ~ScenarioService();

  ScenarioService(const ScenarioService&) = delete;
  ScenarioService& operator=(const ScenarioService&) = delete;

  /// Submits a scenario. Returns immediately with a future that resolves
  /// to the response — possibly already resolved (memo hit, shed, or
  /// stopped service). Throws ContractViolation only on an invalid
  /// request (bad field values); every runtime outcome is a status.
  [[nodiscard]] std::shared_future<ScenarioResponse> submit(
      const ScenarioRequest& request);

  /// Parses `line` (request.hpp grammar) and submits it.
  [[nodiscard]] std::shared_future<ScenarioResponse> submit_line(
      std::string_view line);

  /// Manual mode: executes queued jobs on the calling thread until the
  /// queue is empty. No-op on a service with workers.
  void drain();

  /// Stops admission (later submits are shed), sheds every queued job
  /// with a recorded error, and joins the workers. Idempotent; the
  /// destructor calls it.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;

 private:
  struct Job {
    ScenarioRequest request;  ///< defaults resolved
    u64 hash = 0;
    u64 seq = 0;
    f64 submit_ms = 0.0;
    f64 deadline_at_ms = 0.0;  ///< 0 = no deadline
    std::promise<ScenarioResponse> promise;
    std::shared_future<ScenarioResponse> future;
  };

  [[nodiscard]] f64 now() const;
  /// Picks the queue index to run next: lowest priority value, then
  /// oldest. Requires a non-empty queue and the lock held.
  [[nodiscard]] usize next_job_locked() const;
  /// Pops and executes one job; returns false if the queue was empty.
  bool run_one();
  void finish(const std::shared_ptr<Job>& job, ScenarioResponse response,
              f64 latency_ms);
  void worker_loop();

  ServiceOptions options_;
  ScenarioExecutor executor_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<std::shared_ptr<Job>> queue_;
  /// hash -> queued or running job (coalescing target).
  std::unordered_map<u64, std::shared_ptr<Job>> inflight_;
  /// hash -> memoized Ok response.
  std::unordered_map<u64, ScenarioResponse> memo_;
  std::vector<f64> latency_ms_;
  std::vector<f64> cold_latency_ms_;
  ServiceStats stats_;
  u64 next_seq_ = 0;
  bool stopping_ = false;

  /// The worker fleet: one scheduler thread forks options_.workers
  /// worker loops over a fvf::ThreadPool (the scheduler participates as
  /// one of them, matching the pool's fork-join contract).
  std::unique_ptr<ThreadPool> pool_;
  std::thread scheduler_;
};

}  // namespace fvf::serve
