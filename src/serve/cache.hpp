/// \file cache.hpp
/// \brief Content-hash caches of the scenario service.
///
/// Every cache layer (geomodel/transmissibility, linear-system setup,
/// lint verification, full-result memo) is a HashCache: a 64-bit content
/// hash keys an immutable, shareable value. Concurrent requests for the
/// same key are deduplicated — exactly one caller builds, the rest block
/// on its future — and a failed build is evicted so the next request
/// retries instead of caching the exception forever.
///
/// Capacity is bounded: when a layer holds more than `capacity` entries
/// the least-recently-used one is evicted (capacity 0 = unbounded). The
/// eviction order is deterministic — strict LRU over the sequence of
/// get_or_build/lookup/insert calls — and an entry whose build is still
/// in flight is never evicted, so waiters always get their value.
#pragma once

#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/types.hpp"

namespace fvf::serve {

/// Hit/miss/eviction accounting of one cache layer (monotonic).
struct CacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;

  [[nodiscard]] f64 hit_rate() const noexcept {
    const u64 total = hits + misses;
    return total == 0 ? 0.0 : static_cast<f64>(hits) / static_cast<f64>(total);
  }
};

template <typename V>
class HashCache {
 public:
  HashCache() = default;
  explicit HashCache(usize capacity) : capacity_(capacity) {}

  /// Rebounds the cache (0 = unbounded), evicting LRU entries if the
  /// current contents exceed the new capacity.
  void set_capacity(usize capacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity;
    evict_over_capacity();
  }

  /// Returns the cached value for `key`, building it with `build()` on
  /// the first request. The build runs outside the cache lock; a second
  /// thread asking for the same key waits for the first build instead of
  /// duplicating it. A throwing build propagates to every waiter and is
  /// then forgotten.
  template <typename BuildFn>
  [[nodiscard]] std::shared_ptr<const V> get_or_build(u64 key,
                                                      BuildFn&& build) {
    std::shared_future<std::shared_ptr<const V>> future;
    std::shared_ptr<std::promise<std::shared_ptr<const V>>> promise;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++stats_.hits;
        touch(it->second);
        future = it->second.future;
      } else {
        ++stats_.misses;
        promise =
            std::make_shared<std::promise<std::shared_ptr<const V>>>();
        future = promise->get_future().share();
        lru_.push_front(key);
        entries_.emplace(key, Entry{future, lru_.begin(), true});
        evict_over_capacity();
      }
    }
    if (promise != nullptr) {
      try {
        promise->set_value(
            std::make_shared<const V>(std::forward<BuildFn>(build)()));
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
          it->second.in_flight = false;
        }
      } catch (...) {
        promise->set_exception(std::current_exception());
        {
          std::lock_guard<std::mutex> lock(mutex_);
          erase_entry(key);
        }
        throw;
      }
    }
    return future.get();
  }

  /// Non-building probe: the cached value, or nullptr (counted as a
  /// miss). Blocks only if the key's build is still in flight elsewhere.
  [[nodiscard]] std::shared_ptr<const V> lookup(u64 key) {
    std::shared_future<std::shared_ptr<const V>> future;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it == entries_.end()) {
        ++stats_.misses;
        return nullptr;
      }
      ++stats_.hits;
      touch(it->second);
      future = it->second.future;
    }
    return future.get();
  }

  /// Records a ready-made value (first write wins; re-inserting an
  /// existing key is a no-op). Does not count toward hits/misses.
  void insert(u64 key, V value) {
    std::promise<std::shared_ptr<const V>> promise;
    promise.set_value(std::make_shared<const V>(std::move(value)));
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.find(key) != entries_.end()) {
      return;
    }
    lru_.push_front(key);
    entries_.emplace(key, Entry{promise.get_future().share(), lru_.begin(),
                                false});
    evict_over_capacity();
  }

  [[nodiscard]] CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  [[nodiscard]] usize size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const V>> future;
    std::list<u64>::iterator lru;  ///< position in lru_ (front = MRU)
    /// True while the building thread has not published the value yet.
    /// In-flight entries are exempt from eviction: evicting one would
    /// detach the key other threads are blocked on.
    bool in_flight = false;
  };

  /// Marks an entry most-recently-used. Callers hold mutex_.
  void touch(Entry& entry) { lru_.splice(lru_.begin(), lru_, entry.lru); }

  void erase_entry(u64 key) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.erase(it->second.lru);
      entries_.erase(it);
    }
  }

  /// Evicts least-recently-used completed entries until the cache fits
  /// its capacity. Callers hold mutex_.
  void evict_over_capacity() {
    if (capacity_ == 0) {
      return;
    }
    auto it = lru_.end();
    while (entries_.size() > capacity_ && it != lru_.begin()) {
      --it;
      auto entry = entries_.find(*it);
      if (entry->second.in_flight) {
        continue;
      }
      it = lru_.erase(it);
      entries_.erase(entry);
      ++stats_.evictions;
    }
  }

  mutable std::mutex mutex_;
  usize capacity_ = 0;  ///< 0 = unbounded
  std::unordered_map<u64, Entry> entries_;
  std::list<u64> lru_;  ///< front = most recent, back = eviction candidate
  CacheStats stats_;
};

}  // namespace fvf::serve
