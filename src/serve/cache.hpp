/// \file cache.hpp
/// \brief Content-hash caches of the scenario service.
///
/// Every cache layer (geomodel/transmissibility, linear-system setup,
/// lint verification, full-result memo) is a HashCache: a 64-bit content
/// hash keys an immutable, shareable value. Concurrent requests for the
/// same key are deduplicated — exactly one caller builds, the rest block
/// on its future — and a failed build is evicted so the next request
/// retries instead of caching the exception forever.
#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/types.hpp"

namespace fvf::serve {

/// Hit/miss accounting of one cache layer (monotonic).
struct CacheStats {
  u64 hits = 0;
  u64 misses = 0;

  [[nodiscard]] f64 hit_rate() const noexcept {
    const u64 total = hits + misses;
    return total == 0 ? 0.0 : static_cast<f64>(hits) / static_cast<f64>(total);
  }
};

template <typename V>
class HashCache {
 public:
  /// Returns the cached value for `key`, building it with `build()` on
  /// the first request. The build runs outside the cache lock; a second
  /// thread asking for the same key waits for the first build instead of
  /// duplicating it. A throwing build propagates to every waiter and is
  /// then forgotten.
  template <typename BuildFn>
  [[nodiscard]] std::shared_ptr<const V> get_or_build(u64 key,
                                                      BuildFn&& build) {
    std::shared_future<std::shared_ptr<const V>> future;
    std::shared_ptr<std::promise<std::shared_ptr<const V>>> promise;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++stats_.hits;
        future = it->second;
      } else {
        ++stats_.misses;
        promise =
            std::make_shared<std::promise<std::shared_ptr<const V>>>();
        future = promise->get_future().share();
        entries_.emplace(key, future);
      }
    }
    if (promise != nullptr) {
      try {
        promise->set_value(
            std::make_shared<const V>(std::forward<BuildFn>(build)()));
      } catch (...) {
        promise->set_exception(std::current_exception());
        {
          std::lock_guard<std::mutex> lock(mutex_);
          entries_.erase(key);
        }
        throw;
      }
    }
    return future.get();
  }

  /// Non-building probe: the cached value, or nullptr (counted as a
  /// miss). Blocks only if the key's build is still in flight elsewhere.
  [[nodiscard]] std::shared_ptr<const V> lookup(u64 key) {
    std::shared_future<std::shared_ptr<const V>> future;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it == entries_.end()) {
        ++stats_.misses;
        return nullptr;
      }
      ++stats_.hits;
      future = it->second;
    }
    return future.get();
  }

  /// Records a ready-made value (first write wins; re-inserting an
  /// existing key is a no-op). Does not count toward hits/misses.
  void insert(u64 key, V value) {
    std::promise<std::shared_ptr<const V>> promise;
    promise.set_value(std::make_shared<const V>(std::move(value)));
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.try_emplace(key, promise.get_future().share());
  }

  [[nodiscard]] CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  [[nodiscard]] usize size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<u64, std::shared_future<std::shared_ptr<const V>>>
      entries_;
  CacheStats stats_;
};

}  // namespace fvf::serve
