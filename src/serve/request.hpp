/// \file request.hpp
/// \brief Scenario requests of the fvf::serve front-end: the parsed
///        schema, field canonicalization, and the content hash that keys
///        every cache layer.
///
/// A scenario request names one of the five fabric programs plus the
/// inputs that determine its result bit-for-bit: mesh extents, geomodel
/// seed, iteration/window counts, timestep, tolerance, and the fault
/// scenario. Because the simulator is deterministic (and bit-identical
/// for every --threads value), that tuple is a perfect memoization key —
/// scenario_hash() is computed over the *canonical* form of exactly those
/// fields, so spelling variants ("fault-rate" vs "fault_rate", field
/// order, "1e-05" vs "0.00001") hash identically, while scheduling
/// metadata (threads, priority, deadline) never pollutes the key.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "lint/lint.hpp"

namespace fvf::serve {

/// Which fabric program the scenario runs.
enum class ProgramKind : u8 { Tpfa, Cg, Transport, Wave, Impes, Heat };

inline constexpr usize kProgramCount = 6;

[[nodiscard]] std::string_view program_name(ProgramKind kind) noexcept;

/// Admission priority class. Lower enum value = more important. When the
/// bounded queue overflows the service sheds from the lowest class first
/// (and within a class, the youngest request).
enum class Priority : u8 { Interactive = 0, Batch = 1, Background = 2 };

[[nodiscard]] std::string_view priority_name(Priority priority) noexcept;

/// Which execution backend runs the scenario. Auto resolves by priority
/// at resolve_defaults time: Background requests route to the executing
/// gpusim backend (freeing the fabric for interactive work), everything
/// else to the wse fabric. The *resolved* backend is a content field —
/// it joins canonical_content()/scenario_hash(), so a memoized fabric
/// result can never answer a gpusim request or vice versa.
enum class BackendChoice : u8 { Auto = 0, Wse = 1, Gpusim = 2 };

[[nodiscard]] std::string_view backend_choice_name(
    BackendChoice backend) noexcept;

/// A parsed scenario request.
///
/// Content fields (hashed): program, backend (resolved), nx, ny, nz,
/// seed, iterations, dt, tol, fault_seed, fault_rate. Scheduling fields
/// (not hashed): threads, lint, priority, deadline_ms, checkpoint_every.
struct ScenarioRequest {
  ProgramKind program = ProgramKind::Tpfa;

  // --- content: what the simulation computes -------------------------------
  i32 nx = 6;
  i32 ny = 6;
  i32 nz = 4;
  /// Geomodel / field seed (physics::ProblemSpec::seed).
  u64 seed = 42;
  /// Program-specific work count: TPFA iterations, CG max iterations,
  /// wave timesteps, transport windows (always 1), IMPES windows.
  i32 iterations = 0;  ///< 0 = per-program default (see parse_request)
  /// Timestep / window seconds: CG+wave stencil dt, transport/IMPES
  /// window length.
  f64 dt = 0.0;  ///< 0 = per-program default
  /// CG relative tolerance (ignored by the other programs).
  f64 tol = 1e-5;
  /// Fault scenario (wse::FaultConfig::uniform(fault_seed, fault_rate)).
  /// Fabric-only: the gpusim backend has no fault injection and ignores
  /// these (they still hash, keeping the canonical form uniform).
  u64 fault_seed = 1;
  f64 fault_rate = 0.0;
  /// Execution backend. Auto resolves by priority (see BackendChoice);
  /// the resolved value is hashed as content.
  BackendChoice backend = BackendChoice::Auto;

  // --- scheduling: how the service runs it (never hashed) ------------------
  /// Event-engine host threads. Results are bit-identical for every
  /// value, which is exactly why this is not part of the scenario hash.
  i32 threads = 1;
  /// Static verification level applied at load. Lint findings are a
  /// property of the program structure, not the data, so successful
  /// verification is cached per (program, extents, level) and skipped on
  /// later requests.
  lint::Level lint = lint::Level::Off;
  Priority priority = Priority::Batch;
  /// Wall-clock deadline in milliseconds from submission; 0 = none. An
  /// expired deadline cancels the request cleanly (at dequeue, or between
  /// IMPES windows mid-run) with a recorded error.
  u64 deadline_ms = 0;
  /// IMPES only: checkpoint the job state every N windows (0 = off) so an
  /// interrupted job resumes instead of recomputing. Requires the
  /// service's checkpoint_dir.
  i32 checkpoint_every = 0;
};

/// Parses a `key=value ...` request line (whitespace- or comma-separated
/// tokens, `#` starts a comment). Keys are case-sensitive but
/// spelling-normalized: dashes become underscores and the documented
/// aliases (steps/windows -> iterations, tolerance -> tol, window ->
/// dt, fault-seed/fault-rate spellings) map to the canonical field.
/// Throws ContractViolation on an unknown key, a malformed value, or an
/// out-of-range field.
[[nodiscard]] ScenarioRequest parse_request(std::string_view line);

/// Returns the request with the per-program iteration/dt defaults
/// resolved (0 sentinels replaced), after validating every field. The
/// executor and the canonical hash both operate on resolved requests so
/// an explicit "iterations=200" and a defaulted CG request are the same
/// scenario.
[[nodiscard]] ScenarioRequest resolve_defaults(const ScenarioRequest& request);

/// The canonical content string the scenario hash is computed over:
/// the content fields only, canonically spelled, canonically formatted,
/// in one fixed order. Two requests with equal canonical_content are the
/// same scenario by construction.
[[nodiscard]] std::string canonical_content(const ScenarioRequest& request);

/// FNV-1a 64-bit over canonical_content().
[[nodiscard]] u64 scenario_hash(const ScenarioRequest& request);

/// FNV-1a 64-bit over arbitrary bytes (the hash every serve cache key
/// derives from).
[[nodiscard]] u64 fnv1a(std::string_view bytes) noexcept;

/// Mixes `value` into an existing FNV-1a state (for composite keys).
[[nodiscard]] u64 fnv1a_mix(u64 hash, u64 value) noexcept;

}  // namespace fvf::serve
