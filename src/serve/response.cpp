#include "serve/response.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/assert.hpp"
#include "serve/request.hpp"

namespace fvf::serve {

std::string_view status_name(RequestStatus status) noexcept {
  switch (status) {
    case RequestStatus::Ok:
      return "ok";
    case RequestStatus::Shed:
      return "shed";
    case RequestStatus::DeadlineExpired:
      return "deadline_expired";
    case RequestStatus::Failed:
      return "failed";
  }
  return "?";
}

namespace {

/// Exact f64 encoding: the bit pattern in hex. "%.17g" would round-trip
/// too, but bits make byte-identity trivially auditable.
std::string hex_bits(f64 value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(std::bit_cast<u64>(value)));
  return buffer;
}

std::string hex_u64(u64 value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string escape_line(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_line(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (usize i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      out += text[i + 1] == 'n' ? '\n' : text[i + 1];
      ++i;
    } else {
      out += text[i];
    }
  }
  return out;
}

/// Ordered key=value view of a serialized RunInfo, with lookup helpers
/// that throw on missing keys so a truncated meta file fails loudly.
class FieldMap {
 public:
  explicit FieldMap(const std::string& text) {
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) {
        continue;
      }
      const usize eq = line.find('=');
      FVF_REQUIRE_MSG(eq != std::string::npos,
                      "malformed run-info line '" << line << "'");
      fields_.emplace_back(line.substr(0, eq), line.substr(eq + 1));
    }
  }

  [[nodiscard]] const std::string& get(const std::string& key) const {
    for (const auto& [k, v] : fields_) {
      if (k == key) {
        return v;
      }
    }
    FVF_REQUIRE_MSG(false, "run-info field '" << key << "' is missing");
    return fields_.front().second;  // unreachable
  }

  [[nodiscard]] u64 get_u64(const std::string& key) const {
    const std::string& value = get(key);
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed =
        std::strtoull(value.c_str(), &end,
                      value.rfind("0x", 0) == 0 ? 16 : 10);
    FVF_REQUIRE_MSG(end != value.c_str() && *end == '\0' && errno == 0,
                    "run-info field '" << key << "' has malformed value '"
                                       << value << "'");
    return static_cast<u64>(parsed);
  }

  [[nodiscard]] f64 get_f64_bits(const std::string& key) const {
    return std::bit_cast<f64>(get_u64(key));
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

constexpr const char* kCounterNames[] = {
    "fmul",      "fsub",          "fneg",
    "fadd",      "fma",           "fmov",
    "scalar_misc", "mem_loads",   "mem_stores",
    "wavelets_sent", "wavelets_received", "controls_sent",
    "tasks_executed"};

u64* counter_slots(wse::PeCounters& c, usize index) {
  u64* slots[] = {&c.fmul,          &c.fsub,      &c.fneg,
                  &c.fadd,          &c.fma,       &c.fmov,
                  &c.scalar_misc,   &c.mem_loads, &c.mem_stores,
                  &c.wavelets_sent, &c.wavelets_received,
                  &c.controls_sent, &c.tasks_executed};
  return slots[index];
}

constexpr const char* kFaultNames[] = {
    "stalls_injected", "flips_injected", "halts_injected", "stalls_absorbed",
    "flips_dropped",   "flips_recovered", "halts_resumed"};

u64* fault_slots(wse::FaultStats& f, usize index) {
  u64* slots[] = {&f.stalls_injected, &f.flips_injected, &f.halts_injected,
                  &f.stalls_absorbed, &f.flips_dropped,  &f.flips_recovered,
                  &f.halts_resumed};
  return slots[index];
}

}  // namespace

std::string serialize_run_info(const dataflow::RunInfo& info) {
  std::ostringstream os;
  os << "device_seconds=" << hex_bits(info.device_seconds) << '\n';
  os << "makespan_cycles=" << hex_bits(info.makespan_cycles) << '\n';
  wse::PeCounters counters = info.counters;
  for (usize i = 0; i < std::size(kCounterNames); ++i) {
    os << "counters." << kCounterNames[i] << '=' << *counter_slots(counters, i)
       << '\n';
  }
  for (usize i = 0; i < info.color_traffic.size(); ++i) {
    os << "color_traffic." << i << '=' << info.color_traffic[i] << '\n';
  }
  os << "max_pe_memory=" << info.max_pe_memory << '\n';
  os << "events_processed=" << info.events_processed << '\n';
  for (usize p = 0; p < obs::kPhaseCount; ++p) {
    os << "phase_cycles." << p << '='
       << hex_bits(info.phase_cycles.cycles[p]) << '\n';
  }
  // Per-PE attribution folds into a digest: byte-identity is what the
  // serialization is for, not reconstruction of every PE's split.
  u64 pe_digest = 0xcbf29ce484222325ULL;
  for (const obs::PhaseCycles& pe : info.pe_phase_cycles) {
    for (const f64 cycles : pe.cycles) {
      pe_digest = fnv1a_mix(pe_digest, std::bit_cast<u64>(cycles));
    }
  }
  os << "pe_phase_count=" << info.pe_phase_cycles.size() << '\n';
  os << "pe_phase_digest=" << hex_u64(pe_digest) << '\n';
  wse::FaultStats faults = info.faults;
  for (usize i = 0; i < std::size(kFaultNames); ++i) {
    os << "faults." << kFaultNames[i] << '=' << *fault_slots(faults, i)
       << '\n';
  }
  os << "trace_events_emitted=" << info.trace_events_emitted << '\n';
  os << "trace_records_dropped=" << info.trace_records_dropped << '\n';
  os << "errors_total=" << info.errors_total << '\n';
  os << "errors_suppressed=" << info.errors_suppressed << '\n';
  os << "errors=" << info.errors.size() << '\n';
  for (usize i = 0; i < info.errors.size(); ++i) {
    os << "error." << i << '=' << escape_line(info.errors[i]) << '\n';
  }
  os << "hazards_total=" << info.hazards_total << '\n';
  os << "hazards_suppressed=" << info.hazards_suppressed << '\n';
  os << "hazards=" << info.hazards.size() << '\n';
  for (usize i = 0; i < info.hazards.size(); ++i) {
    os << "hazard." << i << '=' << escape_line(info.hazards[i]) << '\n';
  }
  return os.str();
}

dataflow::RunInfo parse_run_info(const std::string& text) {
  const FieldMap fields(text);
  dataflow::RunInfo info;
  info.device_seconds = fields.get_f64_bits("device_seconds");
  info.makespan_cycles = fields.get_f64_bits("makespan_cycles");
  for (usize i = 0; i < std::size(kCounterNames); ++i) {
    *counter_slots(info.counters, i) =
        fields.get_u64(std::string("counters.") + kCounterNames[i]);
  }
  for (usize i = 0; i < info.color_traffic.size(); ++i) {
    info.color_traffic[i] =
        fields.get_u64("color_traffic." + std::to_string(i));
  }
  info.max_pe_memory = static_cast<usize>(fields.get_u64("max_pe_memory"));
  info.events_processed = fields.get_u64("events_processed");
  for (usize p = 0; p < obs::kPhaseCount; ++p) {
    info.phase_cycles.cycles[p] =
        fields.get_f64_bits("phase_cycles." + std::to_string(p));
  }
  FVF_REQUIRE_MSG(fields.get_u64("pe_phase_count") == 0,
                  "run-info with per-PE attribution cannot be parsed back "
                  "(only accumulated accounting round-trips)");
  for (usize i = 0; i < std::size(kFaultNames); ++i) {
    *fault_slots(info.faults, i) =
        fields.get_u64(std::string("faults.") + kFaultNames[i]);
  }
  info.trace_events_emitted = fields.get_u64("trace_events_emitted");
  info.trace_records_dropped = fields.get_u64("trace_records_dropped");
  info.errors_total = fields.get_u64("errors_total");
  info.errors_suppressed = fields.get_u64("errors_suppressed");
  const u64 errors = fields.get_u64("errors");
  for (u64 i = 0; i < errors; ++i) {
    info.errors.push_back(
        unescape_line(fields.get("error." + std::to_string(i))));
  }
  info.hazards_total = fields.get_u64("hazards_total");
  info.hazards_suppressed = fields.get_u64("hazards_suppressed");
  const u64 hazards = fields.get_u64("hazards");
  for (u64 i = 0; i < hazards; ++i) {
    info.hazards.push_back(
        unescape_line(fields.get("hazard." + std::to_string(i))));
  }
  return info;
}

std::string serialize_response(const ScenarioResponse& response) {
  std::ostringstream os;
  os << "scenario=" << hex_u64(response.scenario_hash) << '\n';
  os << "status=" << status_name(response.status) << '\n';
  os << "error=" << escape_line(response.error) << '\n';
  os << "result_digest=" << hex_u64(response.result_digest) << '\n';
  std::vector<std::pair<std::string, f64>> summary = response.summary;
  std::sort(summary.begin(), summary.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [name, value] : summary) {
    os << "summary." << name << '=' << hex_bits(value) << '\n';
  }
  os << serialize_run_info(response.info);
  return os.str();
}

u64 digest_f32(u64 hash, std::span<const f32> values) noexcept {
  for (const f32 value : values) {
    hash = fnv1a_mix(hash, std::bit_cast<u32>(value));
  }
  return hash;
}

u64 digest_field(u64 hash, const Array3<f32>& field) noexcept {
  const Extents3 ext = field.extents();
  hash = fnv1a_mix(hash, static_cast<u64>(ext.nx));
  hash = fnv1a_mix(hash, static_cast<u64>(ext.ny));
  hash = fnv1a_mix(hash, static_cast<u64>(ext.nz));
  return digest_f32(hash, field.flat());
}

}  // namespace fvf::serve
