#include "wse/trace.hpp"

#include <iomanip>
#include <sstream>

namespace fvf::wse {

std::string_view trace_kind_name(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::DataRouted:
      return "data";
    case TraceKind::ControlRouted:
      return "ctrl";
    case TraceKind::TaskStart:
      return "task";
    case TraceKind::Backpressured:
      return "park";
    case TraceKind::Released:
      return "free";
    case TraceKind::TimerFired:
      return "timr";
    case TraceKind::FaultStall:
      return "stal";
    case TraceKind::FaultFlip:
      return "flip";
    case TraceKind::FaultHalt:
      return "halt";
    case TraceKind::ParityDrop:
      return "drop";
  }
  return "?";
}

std::string TraceRecorder::render(usize max_lines) const {
  std::ostringstream os;
  for (usize i = 0; i < events_.size(); ++i) {
    if (i >= max_lines) {
      os << "... (" << events_.size() - max_lines << " more)\n";
      break;
    }
    const TraceEvent& e = at(i);
    os << std::setw(10) << std::fixed << std::setprecision(1) << e.time
       << "  " << trace_kind_name(e.kind) << "  PE(" << e.x << ',' << e.y
       << ")  color " << static_cast<int>(e.color.id()) << "  from "
       << dir_name(e.from);
    if (e.payload_words > 0) {
      os << "  [" << e.payload_words << "w]";
    }
    os << '\n';
  }
  if (dropped_ > 0) {
    os << "(" << dropped_ << " events dropped at capacity)\n";
  }
  return os.str();
}

}  // namespace fvf::wse
