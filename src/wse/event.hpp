/// \file event.hpp
/// \brief The event record of the fabric simulator and the queue that
///        orders it.
///
/// An Event is trivially copyable: payload bytes live in a tile-local
/// PayloadArena (see wse/payload.hpp) and the event carries only a 32-bit
/// handle plus the word count. Moving an event between queues, outboxes,
/// and pending buffers is a 64-byte struct copy with no heap traffic.
#pragma once

#include <algorithm>
#include <vector>

#include "wse/fabric_types.hpp"
#include "wse/payload.hpp"

namespace fvf::wse {

/// One simulation event: a wavelet block arriving at a router, a control
/// wavelet, or a synthetic program-start / PE-timer activation.
struct Event {
  f64 time = 0.0;
  /// Birth key: `src` is the linear index of the location (PE/router)
  /// that created the event; `seq` counts creations at that location.
  /// (time, src, seq) is the engine's total processing order, and is
  /// identical for every `threads` value.
  i64 src = 0;
  u64 seq = 0;
  i32 x = 0;
  i32 y = 0;
  /// Payload handle into the owning tile's arena (PayloadArena::kNull when
  /// the event carries no payload bytes) and the block's length in
  /// wavelets. Control wavelets report one wavelet but allocate nothing.
  u32 payload = PayloadArena::kNull;
  u32 payload_words = 0;
  /// XOR parity of the payload, stamped at injection (PeApi::send) and
  /// checked at Ramp delivery when fault injection is enabled.
  u32 parity = 0;
  u32 timer_tag = 0;  ///< opaque tag passed back to on_timer
  Dir from = Dir::Ramp;
  Color color{};
  bool control = false;
  bool start = false;      ///< synthetic program-start event
  bool timer = false;      ///< PE-local timer (PeApi::schedule_timer)
  bool stalled = false;    ///< this hop was delayed by a link stall
  bool corrupted = false;  ///< payload suffered an injected bit flip
  /// Accounting token: exactly one in-flight copy of a corrupted block
  /// carries it, so the eventual drop is counted once under fan-out.
  bool fault_token = false;
};

/// The engine's strict total processing order.
[[nodiscard]] inline bool event_before(const Event& a,
                                       const Event& b) noexcept {
  if (a.time != b.time) {
    return a.time < b.time;
  }
  if (a.src != b.src) {
    return a.src < b.src;
  }
  return a.seq < b.seq;
}

/// Min-queue of events under event_before. Events rest in a slot pool;
/// the heap itself holds 24-byte keys {time, seq, src, slot}, so every
/// sift moves a third of a cache line instead of the full 64-byte Event.
/// A 4-ary array heap on top: shallower than a binary heap, `pop` moves
/// the winning slot out instead of copying it, and `push_batch` drains a
/// barrier outbox in one call. `src` fits u32 because it is a linear
/// location index (y * width + x) of an i32-sized fabric.
class EventQueue {
 public:
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] usize size() const noexcept { return heap_.size(); }
  [[nodiscard]] const Event& top() const noexcept {
    return slots_[heap_.front().slot];
  }
  /// Timestamp of the minimum event without touching its slot (the
  /// window-loop bound check stays inside the key array).
  [[nodiscard]] f64 top_time() const noexcept { return heap_.front().time; }

  void reserve(usize n) {
    heap_.reserve(n);
    slots_.reserve(n);
  }

  void push(const Event& event) {
    u32 slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = event;
    } else {
      slot = static_cast<u32>(slots_.size());
      slots_.push_back(event);
    }
    heap_.push_back(Key{event.time, event.seq,
                        static_cast<u32>(event.src), slot});
    sift_up(heap_.size() - 1);
  }

  /// Moves every event of `events` into the queue and clears it.
  void push_batch(std::vector<Event>& events) {
    for (const Event& event : events) {
      push(event);
    }
    events.clear();
  }

  [[nodiscard]] Event pop() noexcept {
    const u32 slot = heap_.front().slot;
    Event out = slots_[slot];
    free_slots_.push_back(slot);
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      sift_down(0);
    }
    return out;
  }

 private:
  static constexpr usize kArity = 4;

  /// Heap element: the full (time, src, seq) ordering key plus the slot
  /// of the event it stands for.
  struct Key {
    f64 time;
    u64 seq;
    u32 src;
    u32 slot;
  };

  [[nodiscard]] static bool key_before(const Key& a, const Key& b) noexcept {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    if (a.src != b.src) {
      return a.src < b.src;
    }
    return a.seq < b.seq;
  }

  void sift_up(usize i) noexcept {
    const Key moving = heap_[i];
    while (i > 0) {
      const usize parent = (i - 1) / kArity;
      if (!key_before(moving, heap_[parent])) {
        break;
      }
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = moving;
  }

  void sift_down(usize i) noexcept {
    const usize n = heap_.size();
    const Key moving = heap_[i];
    for (;;) {
      const usize first = i * kArity + 1;
      if (first >= n) {
        break;
      }
      usize best = first;
      const usize last = std::min(first + kArity, n);
      for (usize child = first + 1; child < last; ++child) {
        if (key_before(heap_[child], heap_[best])) {
          best = child;
        }
      }
      if (!key_before(heap_[best], moving)) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = moving;
  }

  std::vector<Key> heap_;
  std::vector<Event> slots_;
  std::vector<u32> free_slots_;
};

}  // namespace fvf::wse
