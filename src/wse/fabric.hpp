/// \file fabric.hpp
/// \brief The simulated wafer-scale fabric: a 2-D grid of PEs + routers
///        driven by a deterministic discrete-event engine.
///
/// Semantics (paper Section 4):
///   - Data moves in blocks of 32-bit wavelets tagged with a color.
///   - Routers resolve each block against the color's current switch
///     position; fan-out may include the Ramp (deliver to the local PE)
///     and fabric links (forward to neighbors).
///   - Control wavelets advance the switch position of every router they
///     traverse (after being routed), implementing the Sending/Receiving
///     role swap of Figure 6.
///   - PEs execute color-triggered tasks to completion; communication is
///     asynchronous, so fabric transfers overlap PE computation unless
///     blocking sends are requested (the async-off ablation).
///
/// Timing: events carry the cycle at which the *last* wavelet of a block
/// arrives (wormhole routing — serialization is paid once at injection,
/// each hop adds only latency). A PE task starts at
/// max(arrival, PE ready time) and advances the PE clock by the cycle
/// cost of the DSD/scalar operations it performs.
///
/// Determinism: events are ordered by (time, birth location, birth rank),
/// a key assigned where the event is *created* (the PE injecting it, the
/// router forwarding it, or the router re-releasing it). Because every
/// location's events are themselves processed in that total order, the
/// key is reproducible regardless of how the event loop is executed —
/// which is what lets `ExecutionOptions::threads > 1` shard the fabric
/// into row-strip tiles (each with a local event queue) synchronized by
/// conservative per-tile time windows (each tile advances until the
/// earliest possible cross-boundary arrival from a neighboring tile)
/// while reproducing the serial run bit for bit: same PE clocks,
/// counters, pending-buffer contents, trace sequence, errors, and field
/// values. See docs/ARCHITECTURE.md "Event engine internals".
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/phase.hpp"
#include "wse/counters.hpp"
#include "wse/dsd.hpp"
#include "wse/event.hpp"
#include "wse/fault.hpp"
#include "wse/hazard.hpp"
#include "wse/memory.hpp"
#include "wse/payload.hpp"
#include "wse/program.hpp"
#include "wse/router.hpp"
#include "wse/timing.hpp"
#include "wse/trace.hpp"

namespace fvf::wse {

class Fabric;

namespace detail {
struct Tile;  // one shard of the event engine (defined in fabric.cpp)
}

/// One processing element: private memory, counters, a local cycle clock,
/// and its program instance.
class Pe {
 public:
  Pe(Coord2 coord, usize memory_budget)
      : coord_(coord), memory_(memory_budget) {}

  [[nodiscard]] Coord2 coord() const noexcept { return coord_; }
  [[nodiscard]] PeMemory& memory() noexcept { return memory_; }
  [[nodiscard]] const PeMemory& memory() const noexcept { return memory_; }
  [[nodiscard]] PeCounters& counters() noexcept { return counters_; }
  [[nodiscard]] const PeCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] f64 clock() const noexcept { return clock_; }
  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] PeProgram* program() noexcept { return program_.get(); }
  [[nodiscard]] const PeProgram* program() const noexcept {
    return program_.get();
  }

  /// Per-phase attribution of this PE's clock (all zero when
  /// ExecutionOptions::phase_profiling is off). The phase totals sum to
  /// clock() up to floating-point association.
  [[nodiscard]] const obs::PhaseCycles& phase_cycles() const noexcept {
    return phase_cycles_;
  }
  /// Recorded non-idle phase spans for timeline export (empty unless
  /// ExecutionOptions::phase_span_capacity > 0).
  [[nodiscard]] const std::vector<obs::PhaseSpan>& phase_spans()
      const noexcept {
    return phase_spans_;
  }
  /// Spans not recorded because the per-PE capacity was reached.
  [[nodiscard]] u64 phase_spans_dropped() const noexcept {
    return phase_spans_dropped_;
  }

 private:
  friend class Fabric;
  friend class PeApi;

  // Hot scalars first: every delivery touches the clock, the ramp FIFO
  // time, the phase bookkeeping, and the program pointer, so they share
  // the object's first cache line. The wide blocks (memory, counters,
  // phase arrays) follow.
  Coord2 coord_;
  f64 clock_ = 0.0;
  /// Time the Ramp link finishes injecting the previous send: sequential
  /// sends from one PE serialize on the ramp (FIFO per source), so a
  /// control wavelet can never overtake the data block sent before it.
  f64 ramp_free_ = 0.0;
  f64 phase_mark_ = 0.0;
  obs::Phase current_phase_ = obs::Phase::Idle;
  bool done_ = false;
  std::unique_ptr<PeProgram> program_;
  PeMemory memory_;
  PeCounters counters_;
  /// Profiler state: where the cycles since `phase_mark_` will be booked.
  /// Only touched by the tile that owns this PE's row, so parallel runs
  /// attribute identically to serial ones.
  obs::PhaseCycles phase_cycles_;
  std::vector<obs::PhaseSpan> phase_spans_;
  u64 phase_spans_dropped_ = 0;
};

/// Execution options toggling the paper's Section 5.3 optimizations
/// (for the ablation benches). Defaults = the optimized configuration.
struct ExecutionOptions {
  /// DSD vectorization on: one issue overhead per vector op. Off: every
  /// element pays the issue overhead (scalar loop).
  bool vectorized = true;
  /// Asynchronous sends on: fabric transfers overlap PE compute. Off:
  /// the PE blocks for the serialization time of every send.
  bool async_sends = true;
  /// Host worker threads driving the event engine. 1 (the default) runs
  /// the classic serial loop; N > 1 shards the fabric into up to N
  /// row-strip tiles stepped under a conservative time-window barrier.
  /// Results are bit-identical for every value (see the determinism note
  /// at the top of this file).
  i32 threads = 1;
  /// Fault-injection scenario (see wse/fault.hpp). The default all-zero
  /// rates disable the model entirely: runs are bit-identical to an
  /// engine without it.
  FaultConfig fault{};
  /// Per-PE per-phase cycle attribution (see obs/phase.hpp). Profiling is
  /// pure observation — it never perturbs event order, clocks, or
  /// counters, so runs are bit-identical with it on or off (the golden
  /// traces pin this). Off skips the bookkeeping entirely.
  bool phase_profiling = true;
  /// When > 0, each PE additionally records up to this many non-idle
  /// phase spans for timeline export (obs::write_perfetto_json); excess
  /// spans are counted in Pe::phase_spans_dropped().
  u32 phase_span_capacity = 0;
  /// Dynamic in-PE memory hazard detection (see wse/hazard.hpp): flags
  /// partially-overlapping DSD dest/source operands and fabric receives
  /// (fmovs) into buffers a program marked live. Pure observation — the
  /// checks never touch clocks, counters, or event order, so runs are
  /// bit-identical with it on or off; off (the default) skips every
  /// lookup entirely. Findings land in RunReport::hazards.
  bool hazard_check = false;
  /// Router input-buffer depth: how many wavelet blocks may wait at one
  /// router for a switch advance before further arrivals are dropped with
  /// a recorded run error (deterministic across thread counts, like every
  /// other diagnostic). Deep-column wafer-scale programs can legitimately
  /// exceed the historical depth of 64.
  u32 router_buffer_depth = 64;
  /// Simulated-cycle spacing of the event-budget checkpoints: `max_events`
  /// is evaluated whenever global simulated time crosses a multiple of
  /// this value, which makes the budget decision a pure function of the
  /// simulation (identical for every `threads` value). 0 (the default)
  /// derives a spacing of 256 × max(hop_latency_cycles, 1).
  f64 budget_check_cycles = 0.0;
};

/// Outcome of a fabric run.
struct RunReport {
  /// Makespan: cycle at which the last PE/wavelet activity finished.
  f64 makespan_cycles = 0.0;
  u64 events_processed = 0;
  u64 tasks_executed = 0;
  /// PEs whose program called PeApi::signal_done().
  i64 pes_done = 0;
  std::vector<std::string> errors;
  /// Errors raised in total; only the first few are recorded in `errors`,
  /// the remainder are summarized (`errors_suppressed`) — both counts are
  /// reported so no failure is silently invisible.
  u64 errors_total = 0;
  u64 errors_suppressed = 0;
  /// Trace records emitted by the engine vs. dropped at the recorder's
  /// capacity (populated when the tracer is a TraceRecorder installed via
  /// the Fabric::set_tracer(TraceRecorder&) overload).
  u64 trace_events_emitted = 0;
  u64 trace_records_dropped = 0;
  /// Graceful-degradation accounting: faults injected / detected /
  /// recovered / unrecovered (see FaultStats; the buckets partition
  /// faults.injected()). All zero when fault injection is disabled.
  FaultStats faults;
  /// Memory hazards flagged by ExecutionOptions::hazard_check, recorded
  /// in the deterministic event order like `errors` and capped the same
  /// way (hazards_total / hazards_suppressed preserve the full count).
  /// Always empty when the check is off. Hazards are diagnostics, not
  /// run failures: they do not affect ok().
  std::vector<std::string> hazards;
  u64 hazards_total = 0;
  u64 hazards_suppressed = 0;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// The handle a PE program uses to interact with the machine: memory
/// allocation, DSD computation, and fabric communication. Valid only for
/// the duration of a handler invocation.
class PeApi {
 public:
  PeApi(Fabric& fabric, Pe& pe, detail::Tile& tile)
      : fabric_(fabric), pe_(pe), tile_(tile) {}

  // --- identity ---------------------------------------------------------
  [[nodiscard]] Coord2 coord() const noexcept { return pe_.coord(); }
  [[nodiscard]] Coord2 fabric_size() const noexcept;
  [[nodiscard]] bool has_neighbor(Dir d) const noexcept;

  // --- memory -----------------------------------------------------------
  [[nodiscard]] PeMemory& memory() noexcept { return pe_.memory_; }

  // --- communication ----------------------------------------------------
  /// Sends a block of f32 values as wavelets of `color` through this PE's
  /// router (entering via the Ramp). Asynchronous by default.
  void send(Color color, std::span<const f32> values);

  /// Sends the concatenation of two arrays as a single block (a fabric
  /// output DSD streams directly from memory; no staging copy).
  void send(Color color, std::span<const f32> a, std::span<const f32> b);

  /// Sends a single control wavelet of `color`; every router it traverses
  /// advances that color's switch position after routing it.
  void send_control(Color color);

  /// Schedules a timer event delivered back to *this* PE's program via
  /// PeProgram::on_timer after `delay_cycles`. Timers never touch the
  /// fabric (born and consumed on the same tile), so they are free to use
  /// for protocol watchdogs without perturbing routing determinism.
  void schedule_timer(f64 delay_cycles, u32 tag);

  // --- fault reporting ---------------------------------------------------
  /// A protocol (e.g. the halo-exchange retransmit) recovered `blocks`
  /// previously dropped by the parity check; feeds RunReport::faults.
  void report_fault_recovered(u64 blocks = 1);
  /// A protocol detected an unrecoverable condition (e.g. retries
  /// exhausted); the message lands in RunReport::errors so the run is
  /// flagged, never silently wrong.
  void report_protocol_error(std::string message);

  // --- DSD vector operations (charge counters + cycles) ------------------
  void fmuls(Dsd dest, Dsd a, Dsd b);           ///< dest = a * b
  void fmuls(Dsd dest, Dsd a, f32 scalar);      ///< dest = a * s
  void fadds(Dsd dest, Dsd a, Dsd b);           ///< dest = a + b
  void fsubs(Dsd dest, Dsd a, Dsd b);           ///< dest = a - b
  void fsubs(Dsd dest, Dsd a, f32 scalar);      ///< dest = a - s
  void fnegs(Dsd dest, Dsd a);                  ///< dest = -a
  void fmacs(Dsd dest, Dsd a, Dsd b, Dsd c);    ///< dest = a*b + c
  void fmacs(Dsd dest, Dsd a, f32 scalar, Dsd c);  ///< dest = a*s + c
  /// Predicated select: dest[i] = pred[i] > 0 ? a[i] : b[i]. Charged as a
  /// data move (cycles only), not as an FP instruction — matching the
  /// Table 4 accounting where the upwind select is not FP-counted.
  void selects(Dsd dest, Dsd pred, Dsd a, Dsd b);
  /// Moves received fabric wavelets into PE memory (FMOV: one fabric load
  /// + one store per element).
  void fmovs(Dsd dest, FabricDsd src);
  /// Clears an array (constant-broadcast move; cycles only, not counted
  /// as FP work or memory traffic in the Table 4 model).
  void zeros(Dsd dest);

  // --- scalar ops --------------------------------------------------------
  /// Charges `count` generic scalar ops (cycles + scalar_misc counter).
  void scalar_ops(u64 count);
  /// Charges `count` transcendental evaluations (EOS exponentials).
  void transcendental_ops(u64 count);

  // --- hazard detection ---------------------------------------------------
  /// Marks `view` as a live buffer handed out to program code: until
  /// released, a fabric receive (fmovs) overwriting any part of it is
  /// reported as a hazard. No-op unless ExecutionOptions::hazard_check.
  void hazard_mark_live(Dsd view, const char* label);
  /// Releases the most recent live mark covering exactly `view`'s range.
  void hazard_release(Dsd view);
  /// Releases every live mark on this PE.
  void hazard_release_all();

  // --- observability ------------------------------------------------------
  /// Retags the cycles this handler accrues from here on (the profiler
  /// books everything since the last mark under the previous phase
  /// first). A no-op when phase profiling is off — programs may call it
  /// unconditionally without perturbing anything observable.
  void set_phase(obs::Phase phase) noexcept;

  // --- bookkeeping -------------------------------------------------------
  [[nodiscard]] PeCounters& counters() noexcept { return pe_.counters_; }
  /// Marks this PE's program as finished (quiescence check).
  void signal_done() noexcept { pe_.done_ = true; }
  [[nodiscard]] f64 now() const noexcept { return pe_.clock_; }
  /// Advances the PE clock by raw cycles (modeling costs outside the
  /// provided primitives).
  void add_cycles(f64 cycles) noexcept { pe_.clock_ += cycles; }

 private:
  friend class Fabric;

  /// Shared per-element loop: charges one vector op of length n and the
  /// Table 4 memory traffic (loads per element, one store per element).
  void charge_vector_op(i32 length, u32 loads_per_element);

  /// Hazard_check hooks (no-ops when the option is off): flags sources
  /// that partially overlap the destination, and fmovs destinations that
  /// overwrite a live-marked buffer.
  void check_dsd_hazards(const char* op, Dsd dest, Dsd a);
  void check_dsd_hazards(const char* op, Dsd dest, Dsd a, Dsd b);
  void check_dsd_hazards(const char* op, Dsd dest, Dsd a, Dsd b, Dsd c);
  void check_operand_hazard(const char* op, Dsd dest, Dsd source,
                            usize operand_index);
  void check_receive_hazard(Dsd dest);

  Fabric& fabric_;
  Pe& pe_;
  detail::Tile& tile_;
};

/// The fabric: grid of PEs + routers + the event engine.
class Fabric {
 public:
  Fabric(i32 width, i32 height, FabricTimings timings = {},
         usize pe_memory_budget = PeMemory::kDefaultBudget,
         ExecutionOptions exec = {});

  ~Fabric();

  [[nodiscard]] i32 width() const noexcept { return width_; }
  [[nodiscard]] i32 height() const noexcept { return height_; }
  [[nodiscard]] i64 pe_count() const noexcept {
    return static_cast<i64>(width_) * height_;
  }
  [[nodiscard]] const FabricTimings& timings() const noexcept { return timings_; }
  [[nodiscard]] const ExecutionOptions& execution() const noexcept { return exec_; }

  [[nodiscard]] Pe& pe(i32 x, i32 y);
  [[nodiscard]] const Pe& pe(i32 x, i32 y) const;
  [[nodiscard]] Router& router(i32 x, i32 y);
  [[nodiscard]] const Router& router(i32 x, i32 y) const;

  /// Instantiates a program on every PE and installs router configs.
  void load(const ProgramFactory& factory);

  /// Installs an event tracer (pass nullptr to disable). With a serial
  /// run the tracer fires synchronously as blocks are routed, parked,
  /// released, and delivered; a parallel run buffers records per tile and
  /// drains them in the deterministic global event order at every window
  /// barrier, so the observed sequence is identical either way.
  void set_tracer(Tracer tracer) {
    tracer_ = std::move(tracer);
    recorder_ = nullptr;
  }

  /// Convenience overload: installs `recorder`'s callback and remembers
  /// the recorder so RunReport can surface its capacity-drop count
  /// (trace_records_dropped). The recorder must outlive the run.
  void set_tracer(TraceRecorder& recorder) {
    tracer_ = recorder.callback();
    recorder_ = &recorder;
  }

  /// Runs the event loop until quiescence (or until `max_events`).
  /// on_start fires on every PE at cycle 0, in PE order. The budget is
  /// evaluated at deterministic simulated-time checkpoints (see
  /// ExecutionOptions::budget_check_cycles): every thread count processes
  /// exactly the events below the tripping checkpoint, so an exhausted
  /// run — count, error report, and all observable state — is bit-
  /// identical for every `threads` value. A run that completes at or
  /// under the budget is never flagged.
  RunReport run(u64 max_events = 500'000'000);

  /// Aggregate counters over all PEs.
  [[nodiscard]] PeCounters total_counters() const;

  /// Total wavelets of one color carried by any router output link,
  /// summed over all routers: multi-hop blocks count once per hop, and
  /// Ramp delivery to the destination PE counts like any other link.
  [[nodiscard]] u64 color_traffic(Color color) const;

  /// Largest PE memory usage across the fabric (bytes).
  [[nodiscard]] usize max_memory_used() const;

  /// Per-phase cycle attribution summed over all PEs (all zero when
  /// ExecutionOptions::phase_profiling is off).
  [[nodiscard]] obs::PhaseCycles total_phase_cycles() const;

 private:
  friend class PeApi;
  friend struct detail::Tile;

  /// Backpressured wavelets parked at one router, grouped by color:
  /// release_pending on a switch advance moves out exactly one color's
  /// FIFO instead of linearly rescanning every parked event. Arrival
  /// order within a color is preserved (the re-injection order the
  /// protocol observes); `total` counts parked events across colors for
  /// the overflow check and the stranded-buffer report.
  struct PendingBuffer {
    struct ColorFifo {
      Color color{};
      std::vector<Event> events;
    };
    std::vector<ColorFifo> fifos;
    u32 total = 0;
  };

  /// Stamps the event's birth key (creation at location `birth`) and
  /// routes it to the destination tile: the local queue when the target
  /// PE is in `tile` (or the run is single-tile), the outbox otherwise.
  void push_event(detail::Tile& tile, i64 birth, Event& event);
  void process_event(detail::Tile& tile, Event& event);
  void deliver_to_pe(detail::Tile& tile, Pe& pe, const Event& event);
  /// Records a run error in deterministic event order. Only the first 32
  /// are kept; the rest are counted and reported as one summary line.
  void emit_error(detail::Tile& tile, std::string message);
  /// Same channel discipline as emit_error, but into RunReport::hazards
  /// (hazard_check findings are diagnostics, not run failures).
  void emit_hazard(detail::Tile& tile, std::string message);
  void emit_trace(detail::Tile& tile, const TraceEvent& event);
  /// Books the PE cycles in [begin, end) under `phase` and, when span
  /// recording is on and the phase is not Idle, appends a timeline span.
  void attribute_phase(Pe& pe, obs::Phase phase, f64 begin, f64 end);
  /// Re-injects wavelets that were waiting (backpressure) on a switch
  /// position change of `color` at router (x, y).
  void release_pending(detail::Tile& tile, i32 x, i32 y, Color color,
                       f64 not_before);

  /// Drains one tile's queue up to `window_end` (exclusive). `event_cap`
  /// is the runaway backstop (2× the budget), not the budget itself —
  /// budget enforcement happens at checkpoint cuts in run().
  void run_tile(detail::Tile& tile, f64 window_end, u64 event_cap);
  RunReport finish_run(std::vector<detail::Tile>& tiles, bool budget_hit,
                       u64 max_events);

  [[nodiscard]] i64 index(i32 x, i32 y) const noexcept {
    return static_cast<i64>(y) * width_ + x;
  }

  /// Flat mirror of every router's *current* switch position, one packed
  /// u32 per (location, color, input link): bit 0 = rule exists, bits 1-3
  /// = output count, then 3 bits per output Dir in configuration order.
  /// Route resolution through the Router object chases four dependent
  /// cache lines (configs array -> positions vector -> rules vector ->
  /// outputs vector) per event, which dominates the hot path once the
  /// fabric outgrows the LLC; the mirror answers in a single contiguous
  /// load. Rebuilt from the routers at run() entry and re-resolved for
  /// one (location, color) whenever a control wavelet advances that
  /// switch — the Router stays authoritative.
  void rebuild_route_entry(usize at, Color color);
  void build_route_table();

  /// Checkpoint spacing actually in effect (resolves the auto default).
  [[nodiscard]] f64 checkpoint_cycles() const noexcept;
  /// Row-strip tile count for this fabric's execution options (stable
  /// across run() calls, so payload arenas persist between runs).
  [[nodiscard]] i32 tile_count() const noexcept;

  i32 width_;
  i32 height_;
  FabricTimings timings_;
  ExecutionOptions exec_;
  usize memory_budget_;
  /// Contiguous PE state (SoA-adjacent arrays below index the same way):
  /// sized once in the constructor, never reallocated.
  std::vector<Pe> pes_;
  std::vector<Router> routers_;
  /// See build_route_table: kLinkCount packed rules per (location, color),
  /// laid out [at * kMaxColors + color][input].
  std::vector<std::array<u32, kLinkCount>> route_table_;
  /// Backpressure queues: wavelets whose color's current switch position
  /// does not accept their input link wait here until a control wavelet
  /// advances the switch (models the router's input buffering).
  std::vector<PendingBuffer> pending_;
  /// One payload arena per event-engine tile, owned by the Fabric because
  /// parked (pending) events keep their payload handles alive across
  /// run() calls. Sized on first run; the tiling is a pure function of
  /// construction parameters, so handles stay valid between runs.
  std::vector<PayloadArena> arenas_;
  /// Per-location birth counters backing the deterministic event keys.
  /// Tile owning each fabric row (filled per run).
  std::vector<i32> tile_of_row_;
  /// Fault-injection oracle (disabled when all rates are zero) and the
  /// per-router next-free time of each output link. A stalled link delays
  /// its whole FIFO tail; each entry is only touched by the tile that
  /// owns its router's row, and only consulted when faults are enabled,
  /// so zero-rate runs stay bit-identical to a fault-free engine.
  FaultModel fault_model_;
  std::vector<std::array<f64, kLinkCount>> link_free_;
  /// Per-PE hazard-detector state; sized only when hazard_check is on
  /// (and each entry is only touched by the tile owning its PE's row).
  std::vector<HazardState> hazard_state_;
  std::vector<std::string> hazards_;
  u64 hazards_total_ = 0;
  Tracer tracer_;
  TraceRecorder* recorder_ = nullptr;
  u64 events_processed_ = 0;
  u64 tasks_executed_ = 0;
  f64 horizon_ = 0.0;  ///< latest time observed anywhere
  std::vector<std::string> errors_;
  u64 errors_total_ = 0;
};

}  // namespace fvf::wse
