/// \file stats.hpp
/// \brief Post-run fabric utilization analysis: per-PE busy/idle split,
///        load imbalance, and link-traffic distribution. Used by the
///        benchmark harness to explain where simulated cycles go.
#pragma once

#include <string>
#include <vector>

#include "wse/fabric.hpp"

namespace fvf::wse {

/// Aggregate utilization of a finished fabric run.
struct FabricUtilization {
  f64 makespan_cycles = 0.0;
  /// Busy cycles of the most- and least-loaded PE (their local clocks).
  f64 max_pe_cycles = 0.0;
  f64 min_pe_cycles = 0.0;
  f64 mean_pe_cycles = 0.0;
  /// max/mean busy cycles: 1.0 = perfectly balanced, larger = skewed.
  /// 0.0 is the degenerate no-work sentinel (every PE clock stayed zero).
  f64 imbalance = 0.0;
  /// Mean busy fraction relative to the makespan.
  f64 mean_utilization = 0.0;
  /// Total wavelets through all fabric links, and the busiest router.
  u64 total_link_wavelets = 0;
  u64 max_router_wavelets = 0;
  Coord2 busiest_router{};
};

/// Computes utilization from a fabric after run() returned `report`.
[[nodiscard]] FabricUtilization analyze_utilization(const Fabric& fabric,
                                                    const RunReport& report);

/// Renders a coarse ASCII heat map of per-PE busy cycles (one character
/// per PE, '.' cold to '#' hot), for quick load-balance inspection.
[[nodiscard]] std::string render_load_map(const Fabric& fabric,
                                          i32 max_width = 64);

}  // namespace fvf::wse
