/// \file collectives.hpp
/// \brief Fabric-wide collective operations for dataflow programs.
///
/// The paper's Discussion section calls for "developing nonlinear and
/// linear solvers on a dataflow architecture"; Krylov methods need global
/// dot products, i.e. an all-reduce over every PE. This component
/// implements a deterministic sum all-reduce as two chain reductions plus
/// a two-stage broadcast, using four dedicated colors:
///
///   1. row reduce:   partial sums flow West along each row; the column
///                    x = 0 holds per-row totals.
///   2. column reduce: per-row totals flow South along column x = 0;
///                    PE (0,0) holds the global sum.
///   3. row broadcast: PE (0,0) sends the result East along row y = 0
///                    (fan-out: deliver + forward).
///   4. column broadcast: every row-0 PE relays the result North up its
///                    column.
///
/// The reduction order is fixed (East-to-West, then North-to-South), so
/// the f32 sum is bit-reproducible across runs and fabric activity.
/// Successive rounds are safe: a PE can receive the next round's partial
/// one round early at most (single-slot pending buffer).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "wse/fabric.hpp"

namespace fvf::wse {

/// The four colors an AllReduceSum instance occupies.
struct AllReduceColors {
  Color row_reduce;
  Color col_reduce;
  Color row_bcast;
  Color col_bcast;
};

/// Element-wise combiner of the reduction.
enum class ReduceOp { Sum, Min, Max };

/// A reusable all-reduce over fixed-length f32 vectors. One instance
/// lives inside each PE's program; all instances must be constructed with
/// the same colors, length, and operation. (Named for its original
/// sum-only form; Min/Max reductions serve global CFL steps and
/// convergence checks.)
class AllReduceSum {
 public:
  /// Invoked (once per round, on every PE) when the reduced vector is
  /// available locally.
  using CompletionHandler = std::function<void(PeApi&, std::span<const f32>)>;

  AllReduceSum(AllReduceColors colors, Coord2 coord, Coord2 fabric_size,
               i32 length, ReduceOp op = ReduceOp::Sum);

  /// Installs this collective's routes; call from configure_router.
  void configure_router(Router& router) const;

  /// Owns this color? (lets the program dispatch on_data to the engine)
  [[nodiscard]] bool owns(Color color) const noexcept;

  /// Sends this PE performs per round, derived from its position in the
  /// reduction/broadcast trees; for fvf::lint's routing checks.
  [[nodiscard]] std::vector<SendDeclaration> send_declarations() const;

  /// Blocking intra-round send orderings: every chain send waits for the
  /// upstream partial(s) it folds in, and the broadcasts wait for the
  /// global sum. For fvf::lint's cross-color deadlock analysis.
  [[nodiscard]] std::vector<ChannelDependency> channel_dependencies() const;

  /// The chain folds this PE performs in arrival order (Sum only —
  /// Min/Max combine through order-insensitive selects). For fvf::lint's
  /// determinism analysis, which proves each fold has a single producer.
  [[nodiscard]] std::vector<ReductionDeclaration> reduction_declarations()
      const;

  /// Starts this PE's participation in the next round with its local
  /// contribution. Must be called exactly once per round per PE.
  void contribute(PeApi& api, std::span<const f32> local,
                  CompletionHandler on_complete);

  /// Feeds a fabric block to the engine. Precondition: owns(color).
  void on_data(PeApi& api, Color color, Dir from, std::span<const u32> data);

  /// Rounds completed on this PE so far.
  [[nodiscard]] i32 rounds_completed() const noexcept { return rounds_; }

 private:
  void unpack(PeApi& api, std::span<const u32> data, std::vector<f32>& out);
  void add_into(PeApi& api, std::vector<f32>& acc, std::span<const f32> v);
  void try_advance_row(PeApi& api);
  void try_advance_col(PeApi& api);
  void finish(PeApi& api, std::span<const f32> result);

  AllReduceColors colors_;
  Coord2 coord_;
  Coord2 fabric_;
  i32 length_;
  ReduceOp op_;

  // Per-round state.
  bool have_local_ = false;
  std::vector<f32> acc_;            ///< local + east partial (row phase)
  std::optional<std::vector<f32>> east_pending_;
  bool east_consumed_ = false;
  std::optional<std::vector<f32>> north_pending_;  ///< column phase (x==0)
  bool row_total_ready_ = false;
  std::vector<f32> col_acc_;
  std::optional<std::vector<f32>> result_pending_;  ///< early broadcast
  CompletionHandler on_complete_;
  i32 rounds_ = 0;
  std::vector<f32> scratch_;
};

}  // namespace fvf::wse
