#include "wse/collectives.hpp"

#include "common/assert.hpp"

namespace fvf::wse {

AllReduceSum::AllReduceSum(AllReduceColors colors, Coord2 coord,
                           Coord2 fabric_size, i32 length, ReduceOp op)
    : colors_(colors),
      coord_(coord),
      fabric_(fabric_size),
      length_(length),
      op_(op) {
  FVF_REQUIRE(length > 0);
  FVF_REQUIRE(fabric_size.x > 0 && fabric_size.y > 0);
  scratch_.resize(static_cast<usize>(length));
}

void AllReduceSum::configure_router(Router& router) const {
  // Chain reductions: accept from the upstream side, inject toward the
  // downstream side. Broadcasts fan out (deliver + forward); traffic
  // leaving the fabric is absorbed by the boundary.
  router.configure(colors_.row_reduce,
                   ColorConfig({position({RouteRule{Dir::Ramp, {Dir::West}},
                                          RouteRule{Dir::East, {Dir::Ramp}}})}));
  router.configure(colors_.col_reduce,
                   ColorConfig({position({RouteRule{Dir::Ramp, {Dir::South}},
                                          RouteRule{Dir::North, {Dir::Ramp}}})}));
  router.configure(
      colors_.row_bcast,
      ColorConfig({position({RouteRule{Dir::Ramp, {Dir::East}},
                             RouteRule{Dir::West, {Dir::Ramp, Dir::East}}})}));
  router.configure(
      colors_.col_bcast,
      ColorConfig({position({RouteRule{Dir::Ramp, {Dir::North}},
                             RouteRule{Dir::South, {Dir::Ramp, Dir::North}}})}));
}

bool AllReduceSum::owns(Color color) const noexcept {
  return color == colors_.row_reduce || color == colors_.col_reduce ||
         color == colors_.row_bcast || color == colors_.col_bcast;
}

std::vector<SendDeclaration> AllReduceSum::send_declarations() const {
  std::vector<SendDeclaration> sends;
  if (coord_.x > 0) {
    sends.push_back({colors_.row_reduce, false});
  }
  if (coord_.x == 0 && coord_.y > 0) {
    sends.push_back({colors_.col_reduce, false});
  }
  if (coord_.x == 0 && coord_.y == 0 && fabric_.x > 1) {
    sends.push_back({colors_.row_bcast, false});
  }
  if (coord_.y == 0 && fabric_.y > 1) {
    // PE (0,0) seeds the column broadcasts; every other row-0 PE relays
    // the row broadcast up its own column.
    sends.push_back({colors_.col_bcast, false});
  }
  return sends;
}

std::vector<ChannelDependency> AllReduceSum::channel_dependencies() const {
  // Mirrors the gating in try_advance_row/try_advance_col/on_data: each
  // send below only happens after the listed arrivals of that round.
  // Round-to-round orderings (the handler starting the next round) are
  // deliberately not declared — they are progress, not blocking.
  std::vector<ChannelDependency> deps;
  const bool need_east = coord_.x < fabric_.x - 1;
  const bool need_north = coord_.y < fabric_.y - 1;
  if (coord_.x > 0) {
    if (need_east) {
      deps.push_back({colors_.row_reduce, colors_.row_reduce});
    }
    if (coord_.y == 0 && fabric_.y > 1) {
      // Relaying the broadcast up the column requires the row broadcast.
      deps.push_back({colors_.row_bcast, colors_.col_bcast});
    }
    return deps;
  }
  // Column head (x == 0): the row total feeds the column chain, and at
  // PE (0,0) the global sum feeds both broadcasts.
  std::vector<Color> dependents;
  if (coord_.y > 0) {
    dependents.push_back(colors_.col_reduce);
  } else {
    if (fabric_.x > 1) {
      dependents.push_back(colors_.row_bcast);
    }
    if (fabric_.y > 1) {
      dependents.push_back(colors_.col_bcast);
    }
  }
  for (const Color dependent : dependents) {
    if (fabric_.x > 1) {
      deps.push_back({colors_.row_reduce, dependent});
    }
    if (need_north) {
      deps.push_back({colors_.col_reduce, dependent});
    }
  }
  return deps;
}

std::vector<ReductionDeclaration> AllReduceSum::reduction_declarations()
    const {
  // Min/Max combine through predicated selects, which are
  // order-insensitive; only the Sum chain folds f32 in arrival order.
  std::vector<ReductionDeclaration> reductions;
  if (op_ != ReduceOp::Sum) {
    return reductions;
  }
  if (coord_.x < fabric_.x - 1) {
    reductions.push_back(
        {{colors_.row_reduce}, true, "all-reduce row partial"});
  }
  if (coord_.x == 0 && coord_.y < fabric_.y - 1) {
    reductions.push_back(
        {{colors_.col_reduce}, true, "all-reduce column partial"});
  }
  return reductions;
}

void AllReduceSum::unpack(PeApi& api, std::span<const u32> data,
                          std::vector<f32>& out) {
  FVF_REQUIRE(static_cast<i32>(data.size()) == length_);
  out.resize(static_cast<usize>(length_));
  api.fmovs(Dsd::of(out), FabricDsd::of(data));
}

void AllReduceSum::add_into(PeApi& api, std::vector<f32>& acc,
                            std::span<const f32> v) {
  FVF_REQUIRE(acc.size() == v.size());
  const Dsd operand{const_cast<f32*>(v.data()), length_, 1};
  switch (op_) {
    case ReduceOp::Sum:
      // acc += v, charged as one vector FADD.
      api.fadds(Dsd::of(acc), Dsd::of(acc), operand);
      break;
    case ReduceOp::Min:
    case ReduceOp::Max: {
      // Combine via the predicated select: cmp = acc - v, then pick by
      // sign — same accounting as the upwind select (FSUB + move).
      std::vector<f32> cmp(acc.size());
      api.fsubs(Dsd::of(cmp), Dsd::of(acc), operand);
      if (op_ == ReduceOp::Min) {
        api.selects(Dsd::of(acc), Dsd::of(cmp), operand, Dsd::of(acc));
      } else {
        api.selects(Dsd::of(acc), Dsd::of(cmp), Dsd::of(acc), operand);
      }
      break;
    }
  }
}

void AllReduceSum::contribute(PeApi& api, std::span<const f32> local,
                              CompletionHandler on_complete) {
  FVF_REQUIRE(static_cast<i32>(local.size()) == length_);
  FVF_REQUIRE_MSG(!have_local_, "contribute() called twice in one round");
  on_complete_ = std::move(on_complete);
  // Combining partials and feeding the trees is collective work even when
  // it runs inside a compute task (profiler retag only).
  api.set_phase(obs::Phase::AllReduce);
  acc_.assign(local.begin(), local.end());
  have_local_ = true;
  try_advance_row(api);
}

void AllReduceSum::try_advance_row(PeApi& api) {
  if (!have_local_ || east_consumed_) {
    return;
  }
  const bool need_east = coord_.x < fabric_.x - 1;
  if (need_east) {
    if (!east_pending_) {
      return;
    }
    add_into(api, acc_, *east_pending_);
    east_pending_.reset();
  }
  east_consumed_ = true;
  if (coord_.x > 0) {
    api.send(colors_.row_reduce, acc_);
    return;  // now awaiting the broadcast
  }
  // Column head: this row's total feeds the column reduction.
  col_acc_ = acc_;
  row_total_ready_ = true;
  try_advance_col(api);
}

void AllReduceSum::try_advance_col(PeApi& api) {
  FVF_ASSERT(coord_.x == 0);
  if (!row_total_ready_) {
    return;
  }
  const bool need_north = coord_.y < fabric_.y - 1;
  if (need_north) {
    if (!north_pending_) {
      return;
    }
    add_into(api, col_acc_, *north_pending_);
    north_pending_.reset();
  }
  row_total_ready_ = false;
  if (coord_.y > 0) {
    api.send(colors_.col_reduce, col_acc_);
    return;
  }
  // PE (0,0): global result. Broadcast, then complete locally.
  if (fabric_.x > 1) {
    api.send(colors_.row_bcast, col_acc_);
  }
  if (fabric_.y > 1) {
    api.send(colors_.col_bcast, col_acc_);
  }
  finish(api, col_acc_);
}

void AllReduceSum::on_data(PeApi& api, Color color, Dir from,
                           std::span<const u32> data) {
  FVF_REQUIRE(owns(color));
  if (color == colors_.row_reduce) {
    FVF_REQUIRE(from == Dir::East);
    FVF_REQUIRE_MSG(!east_pending_, "row-reduce partial overrun");
    unpack(api, data, scratch_);
    east_pending_ = scratch_;
    try_advance_row(api);
    return;
  }
  if (color == colors_.col_reduce) {
    FVF_REQUIRE(from == Dir::North);
    FVF_REQUIRE(coord_.x == 0);
    FVF_REQUIRE_MSG(!north_pending_, "column-reduce partial overrun");
    unpack(api, data, scratch_);
    north_pending_ = scratch_;
    try_advance_col(api);
    return;
  }
  if (color == colors_.row_bcast) {
    FVF_REQUIRE(from == Dir::West);
    FVF_REQUIRE(coord_.y == 0);
    unpack(api, data, scratch_);
    if (fabric_.y > 1) {
      api.send(colors_.col_bcast, scratch_);  // relay up the column
    }
    finish(api, scratch_);
    return;
  }
  FVF_REQUIRE(from == Dir::South);
  unpack(api, data, scratch_);
  finish(api, scratch_);
}

void AllReduceSum::finish(PeApi& api, std::span<const f32> result) {
  FVF_REQUIRE_MSG(have_local_,
                  "all-reduce result arrived before this PE contributed");
  // Reset before invoking the handler: it may start the next round.
  have_local_ = false;
  east_consumed_ = false;
  ++rounds_;
  CompletionHandler handler = std::move(on_complete_);
  on_complete_ = nullptr;
  FVF_REQUIRE(handler != nullptr);
  // The completion handler is the program's continuation, not tree work.
  api.set_phase(obs::Phase::LocalCompute);
  handler(api, result);
}

}  // namespace fvf::wse
