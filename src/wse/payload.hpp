/// \file payload.hpp
/// \brief Slab/arena storage for wavelet-block payloads.
///
/// Every data block moving through the fabric used to carry its own heap
/// `std::vector<u32>`, so the event hot path paid an allocation per send
/// and a full copy per forwarded hop and per queue pop. The arena replaces
/// that with chunked slabs handed out by 32-bit handle: allocation is a
/// free-list pop or a bump-pointer add, freeing is a free-list push, and
/// moving a payload between events is a handle assignment.
///
/// Handles are tile-local: each event-engine tile owns one arena, and only
/// the owning tile allocates or frees from it, so no synchronization is
/// needed. A payload crossing tiles is re-homed (copied into the
/// destination tile's arena) on the coordinating thread at the window
/// barrier — the only place cross-tile payload bytes move.
///
/// Pool internals (chunk layout, free-list order) never feed back into the
/// simulation: events are ordered by their (time, src, seq) birth keys and
/// payload *contents* are byte-identical however they are stored, so the
/// engine's bit-for-bit determinism across thread counts is unaffected.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace fvf::wse {

/// Chunked slab allocator for u32 payload blocks, addressed by handle.
///
/// Layout: slabs of `kChunkWords` words; an allocation occupies one header
/// word (its size class) followed by `2^class` data words. The handle
/// encodes (chunk, offset-of-data) in 32 bits. Freed blocks go on an
/// intrusive per-size-class free list (the next-handle link is stored in
/// the block's first data word), so steady-state traffic allocates nothing.
/// Requests larger than half a chunk get a dedicated exactly-sized slab.
class PayloadArena {
 public:
  /// The null handle: "this event carries no payload bytes".
  static constexpr u32 kNull = 0xffffffffu;

  PayloadArena() { free_list_.fill(kNull); }

  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;
  PayloadArena(PayloadArena&&) = default;
  PayloadArena& operator=(PayloadArena&&) = default;

  /// Allocates storage for `words` u32s (at least 1). O(1).
  [[nodiscard]] u32 alloc(u32 words) {
    const u32 cls = size_class(words == 0 ? 1 : words);
    u32 handle = free_list_[cls];
    if (handle != kNull) {
      free_list_[cls] = *data(handle);  // intrusive next link
      return handle;
    }
    const u32 block = (1u << cls) + 1;  // header + data
    if (block > kChunkWords) {
      // Oversized: a dedicated slab holding exactly this block.
      chunks_.push_back(std::make_unique<u32[]>(block));
      const u32 chunk = static_cast<u32>(chunks_.size() - 1);
      FVF_REQUIRE(chunk < kNull >> kOffsetBits);
      chunks_[chunk][0] = cls;
      return (chunk << kOffsetBits) | 1u;
    }
    if (chunks_.empty() || cursor_ + block > kChunkWords) {
      chunks_.push_back(std::make_unique<u32[]>(kChunkWords));
      FVF_REQUIRE(chunks_.size() - 1 < kNull >> kOffsetBits);
      bump_chunk_ = static_cast<u32>(chunks_.size() - 1);
      cursor_ = 0;
    }
    const u32 start = cursor_;
    cursor_ += block;
    chunks_[bump_chunk_][start] = cls;
    return (bump_chunk_ << kOffsetBits) | (start + 1);
  }

  /// Returns a block to its size-class free list. O(1).
  void free(u32 handle) noexcept {
    u32* block = data(handle);
    const u32 cls = block[-1];
    block[0] = free_list_[cls];
    free_list_[cls] = handle;
  }

  /// The block's data words (valid until freed).
  [[nodiscard]] u32* data(u32 handle) noexcept {
    return chunks_[handle >> kOffsetBits].get() + (handle & kOffsetMask);
  }
  [[nodiscard]] const u32* data(u32 handle) const noexcept {
    return chunks_[handle >> kOffsetBits].get() + (handle & kOffsetMask);
  }

  [[nodiscard]] std::span<const u32> view(u32 handle, u32 words) const noexcept {
    return {data(handle), static_cast<usize>(words)};
  }

  /// Copies `words` u32s out of `source` into a fresh block of this arena
  /// (cross-tile re-homing at a window barrier).
  [[nodiscard]] u32 clone_from(const PayloadArena& source, u32 handle,
                               u32 words) {
    const u32 moved = alloc(words);
    const u32* src = source.data(handle);
    u32* dst = data(moved);
    for (u32 i = 0; i < words; ++i) {
      dst[i] = src[i];
    }
    return moved;
  }

  /// Slab bytes currently reserved from the host heap (oversized slabs
  /// are counted at the standard chunk size; close enough for stats).
  [[nodiscard]] usize reserved_bytes() const noexcept {
    return chunks_.size() * static_cast<usize>(kChunkWords) * sizeof(u32);
  }

 private:
  static constexpr u32 kOffsetBits = 16;
  static constexpr u32 kOffsetMask = (1u << kOffsetBits) - 1;
  static constexpr u32 kChunkWords = 1u << kOffsetBits;
  static constexpr u32 kSizeClasses = 32;

  /// Smallest c with 2^c >= need.
  [[nodiscard]] static u32 size_class(u32 need) noexcept {
    u32 cls = 0;
    while ((1u << cls) < need) {
      ++cls;
    }
    return cls;
  }

  std::vector<std::unique_ptr<u32[]>> chunks_;
  std::array<u32, kSizeClasses> free_list_{};
  u32 bump_chunk_ = 0;
  u32 cursor_ = 0;
};

}  // namespace fvf::wse
