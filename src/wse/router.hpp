/// \file router.hpp
/// \brief A fabric router: per-color switch-position configurations plus
///        traversal statistics.
#pragma once

#include <array>

#include "wse/route.hpp"

namespace fvf::wse {

/// Router attached to one PE. Owns the routing configuration for every
/// color and counts traffic through each link.
class Router {
 public:
  /// Installs (replaces) the configuration of a color.
  void configure(Color color, ColorConfig config) {
    configs_[color.id()] = std::move(config);
    ++configure_count_[color.id()];
  }

  /// How many times configure() installed a config for `color`. More than
  /// once means a later component silently replaced an earlier one's
  /// switch positions — traffic planned against the old position table
  /// would be routed by the new one. fvf::lint reports this as a
  /// switch-reconfiguration hazard.
  [[nodiscard]] u32 configure_count(Color color) const noexcept {
    return configure_count_[color.id()];
  }

  [[nodiscard]] const ColorConfig& config(Color color) const noexcept {
    return configs_[color.id()];
  }
  [[nodiscard]] ColorConfig& config(Color color) noexcept {
    return configs_[color.id()];
  }

  /// Resolves the routing rule for a wavelet of `color` entering through
  /// `input` under the color's current switch position.
  [[nodiscard]] const RouteRule* route(Color color, Dir input) const noexcept {
    return configs_[color.id()].route(input);
  }

  /// Advances the switch position of a color (control wavelet semantics).
  void advance_switch(Color color) noexcept { configs_[color.id()].advance(); }

  /// Traffic counters (wavelets through each output link / per color).
  void count_output(Dir d, u64 wavelets) noexcept {
    traffic_out_[static_cast<usize>(d)] += wavelets;
  }
  /// Next value of this location's event birth-sequence counter. Lives
  /// here (not in a side array) so stamping a birth key touches the same
  /// cache line as the traffic counters the push site just bumped.
  [[nodiscard]] u64 next_birth_seq() noexcept { return birth_seq_++; }

  /// A block failed the per-wavelet parity check at this router's Ramp
  /// and was dropped (fault detection; see wse/fault.hpp).
  void count_dropped() noexcept { ++blocks_dropped_; }
  [[nodiscard]] u64 blocks_dropped() const noexcept { return blocks_dropped_; }
  void count_color(Color color, u64 wavelets) noexcept {
    traffic_color_[color.id()] += wavelets;
  }
  [[nodiscard]] u64 traffic_of_color(Color color) const noexcept {
    return traffic_color_[color.id()];
  }
  [[nodiscard]] u64 traffic_out(Dir d) const noexcept {
    return traffic_out_[static_cast<usize>(d)];
  }
  [[nodiscard]] u64 total_fabric_traffic() const noexcept {
    u64 total = 0;
    for (const Dir d : kFabricDirs) {
      total += traffic_out(static_cast<Dir>(d));
    }
    return total;
  }

 private:
  // Traffic counters first: the event hot path bumps count_output and
  // count_color on every routed block, and with the low-id data colors
  // both land in the object's first cache line. The config vectors are
  // only walked on the cold paths (table build, backpressure, errors).
  std::array<u64, kLinkCount> traffic_out_{};
  u64 blocks_dropped_ = 0;
  u64 birth_seq_ = 0;
  std::array<u64, Color::kMaxColors> traffic_color_{};
  std::array<ColorConfig, Color::kMaxColors> configs_{};
  std::array<u32, Color::kMaxColors> configure_count_{};
};

}  // namespace fvf::wse
