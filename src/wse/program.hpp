/// \file program.hpp
/// \brief The dataflow execution model: a per-PE program whose handlers
///        are activated by wavelet arrivals (color-triggered tasks).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/phase.hpp"
#include "wse/fabric_types.hpp"
#include "wse/memory.hpp"
#include "wse/router.hpp"

namespace fvf::wse {

class PeApi;

/// A send this PE's program intends to perform on a color (data block or
/// control wavelet), declared for static verification: fvf::lint checks
/// that every declared send has a Ramp-accepting switch position on the
/// sender and that every Ramp delivery it can reach finds a handler.
struct SendDeclaration {
  Color color{};
  bool control = false;
  /// Upper bound on blocks of this declaration that may be in flight —
  /// injected but not yet accepted by a switch position — at any one
  /// instant. fvf::lint's buffer-bound analyzer sums these bounds along
  /// union-graph reachability to bound the worst-case router input-buffer
  /// occupancy against ExecutionOptions::router_buffer_depth. The default
  /// matches the runtime's one-round-ahead skew guard (the current round's
  /// block plus at most one early next-round block).
  u32 in_flight = 2;
};

/// Declares that this PE sends on `dependent` only after its deliveries
/// on `prerequisite` arrive (within one round): the edge set of
/// fvf::lint's cross-color wait-for graph. Only *blocking* intra-round
/// orderings belong here — round-to-round progressions (this round's
/// reduction enabling next round's halo) must not be declared, or every
/// iterative program would report a spurious cycle.
struct ChannelDependency {
  Color prerequisite{};
  Color dependent{};
};

/// Declares an f32 accumulation this PE performs over deliveries on
/// `colors`. When `folds_in_arrival_order` is set, the result depends on
/// the order blocks happen to arrive in; fvf::lint's determinism analyzer
/// then verifies the routing plan pins that order (at most one declared
/// sender can reach this PE's Ramp over the group). Order-insensitive
/// folds (min/max, or program-pinned canonical orders) need no entry.
struct ReductionDeclaration {
  std::vector<Color> colors;
  bool folds_in_arrival_order = false;
  /// Human name of the accumulator, used in diagnostics.
  std::string label;
};

/// A per-PE program. One instance is created for every PE at load time.
/// Handlers run to completion (tasks are not preemptible), may perform
/// DSD computations through the PeApi, and may send wavelet blocks or
/// control wavelets.
class PeProgram {
 public:
  virtual ~PeProgram() = default;

  /// Installs the program's routing configuration on this PE's router.
  /// Called once at load time, before any handler runs.
  virtual void configure_router(Router& router) = 0;

  /// Declares the program's static PE memory footprint into `mem`.
  /// The runtime calls it once per PE before the first handler runs;
  /// fvf::lint calls it on constructed-but-not-executed probe instances
  /// to verify the footprint against the byte budget. Must not touch
  /// fabric state (it only sees the memory arena).
  virtual void reserve_memory(PeMemory& mem);

  /// Whether a wavelet of `color` delivered to this PE's Ramp would find
  /// a task (data-block handler, or control handler when `control`).
  /// Pure classification for fvf::lint's unhandled-delivery check; the
  /// default accepts everything so hand-rolled programs lint clean
  /// without overriding it.
  [[nodiscard]] virtual bool handles_color(Color color, bool control) const;

  /// Colors this program sends on, for fvf::lint's routing checks.
  /// Default: nothing declared, which exempts the program from the
  /// unrouted-send and reachability analyses.
  [[nodiscard]] virtual std::vector<SendDeclaration> send_declarations() const;

  /// Blocking send orderings of this program (see ChannelDependency), for
  /// fvf::lint's cross-color deadlock analysis. Default: none.
  [[nodiscard]] virtual std::vector<ChannelDependency> channel_dependencies()
      const;

  /// Arrival-order f32 accumulations of this program (see
  /// ReductionDeclaration), for fvf::lint's determinism analysis.
  /// Default: none.
  [[nodiscard]] virtual std::vector<ReductionDeclaration>
  reduction_declarations() const;

  /// Origin note appended to fvf::lint flow diagnostics that involve
  /// `color`: programs generated from a higher-level description (e.g.
  /// spec::SpecPeProgram) name the StencilSpec field that produced the
  /// traffic, so a diagnostic points at the declaration to fix rather
  /// than the lowered routing artifact. Empty = no note.
  [[nodiscard]] virtual std::string describe_channel(Color color) const;

  /// Activated once at cycle zero on every PE.
  virtual void on_start(PeApi& api) = 0;

  /// Activated when a data block of `color` is delivered to the Ramp.
  /// `from` is the link the block entered this router through.
  virtual void on_data(PeApi& api, Color color, Dir from,
                       std::span<const u32> data) = 0;

  /// Activated when a control wavelet of `color` is delivered to the Ramp
  /// (after the traversed routers have advanced their switch positions).
  virtual void on_control(PeApi& api, Color color, Dir from);

  /// Activated when a timer scheduled via PeApi::schedule_timer expires.
  /// `tag` is the opaque value the program passed when arming it.
  virtual void on_timer(PeApi& api, u32 tag);

  /// Classifies the task a delivery would activate, for the per-phase
  /// cycle profiler (see obs/phase.hpp). Called at dispatch when
  /// ExecutionOptions::phase_profiling is on; handlers may refine the
  /// attribution mid-task via PeApi::set_phase. Pure classification —
  /// must not mutate program state.
  [[nodiscard]] virtual obs::Phase task_phase(Color color, bool control,
                                              bool timer) const noexcept;
};

inline void PeProgram::reserve_memory(PeMemory&) {}
inline bool PeProgram::handles_color(Color, bool) const { return true; }
inline std::vector<SendDeclaration> PeProgram::send_declarations() const {
  return {};
}
inline std::vector<ChannelDependency> PeProgram::channel_dependencies() const {
  return {};
}
inline std::vector<ReductionDeclaration> PeProgram::reduction_declarations()
    const {
  return {};
}
inline std::string PeProgram::describe_channel(Color) const { return {}; }
inline void PeProgram::on_control(PeApi&, Color, Dir) {}
inline void PeProgram::on_timer(PeApi&, u32) {}
inline obs::Phase PeProgram::task_phase(Color, bool, bool) const noexcept {
  return obs::Phase::LocalCompute;
}

/// Factory invoked once per PE at load time.
using ProgramFactory =
    std::function<std::unique_ptr<PeProgram>(Coord2 coord, Coord2 fabric_size)>;

}  // namespace fvf::wse
