/// \file route.hpp
/// \brief Per-color router configuration with switch positions.
///
/// A color's configuration on a router is a small set of *switch
/// positions*; exactly one position is current at any time. Each position
/// holds routing rules mapping an input link to a fan-out set of output
/// links. A control wavelet traversing the router advances the switch to
/// the next position — this is the mechanism Figure 6 of the paper uses to
/// alternate PEs between *Sending* and *Receiving* roles.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "wse/fabric_types.hpp"

namespace fvf::wse {

/// A single routing rule: wavelets entering through `input` leave through
/// every link in `outputs` (fan-out / local broadcast).
struct RouteRule {
  Dir input = Dir::Ramp;
  std::vector<Dir> outputs;
};

/// Packed route-entry format used by the engine's flat route table (one
/// u32 per (location, color, input link)):
///   bit 0        rule exists (0 means "no rule for this input")
///   bits 1..3    output fan-out count
///   bits 4..18   outputs, 3 bits per Dir
///   bit 19       the color has more than one switch position
inline constexpr u32 kRouteExistsBit = 1u;
inline constexpr u32 kRouteMultiPositionBit = 1u << 19;

/// One switch position: a set of routing rules active simultaneously.
/// Rules must have distinct inputs.
struct SwitchPosition {
  std::vector<RouteRule> rules;

  [[nodiscard]] const RouteRule* find(Dir input) const noexcept {
    for (const RouteRule& rule : rules) {
      if (rule.input == input) {
        return &rule;
      }
    }
    return nullptr;
  }
};

/// Full per-color configuration: up to kMaxPositions switch positions and
/// the index of the current one.
class ColorConfig {
 public:
  static constexpr usize kMaxPositions = 4;

  ColorConfig() = default;

  explicit ColorConfig(std::vector<SwitchPosition> positions)
      : positions_(std::move(positions)) {
    FVF_REQUIRE(!positions_.empty());
    FVF_REQUIRE(positions_.size() <= kMaxPositions);
    for (const SwitchPosition& pos : positions_) {
      for (usize i = 0; i < pos.rules.size(); ++i) {
        for (usize j = i + 1; j < pos.rules.size(); ++j) {
          FVF_REQUIRE_MSG(pos.rules[i].input != pos.rules[j].input,
                          "duplicate input link in switch position");
        }
      }
    }
    // Pack every position's rules once, at configure time: a control
    // wavelet advancing the switch then refreshes the engine's flat
    // route table with a 5-word copy instead of re-walking the rule
    // vectors (the advance is on the event hot path for multi-position
    // colors).
    packed_.assign(positions_.size() * static_cast<usize>(kLinkCount), 0);
    const u32 multi = positions_.size() > 1 ? kRouteMultiPositionBit : 0u;
    for (usize p = 0; p < positions_.size(); ++p) {
      for (const RouteRule& rule : positions_[p].rules) {
        FVF_REQUIRE(rule.outputs.size() <= static_cast<usize>(kLinkCount));
        u32 packed = kRouteExistsBit |
                     (static_cast<u32>(rule.outputs.size()) << 1) | multi;
        u32 shift = 4;
        for (const Dir out : rule.outputs) {
          packed |= static_cast<u32>(out) << shift;
          shift += 3;
        }
        packed_[p * static_cast<usize>(kLinkCount) +
                static_cast<usize>(rule.input)] = packed;
      }
    }
  }

  [[nodiscard]] bool configured() const noexcept { return !positions_.empty(); }

  [[nodiscard]] usize position_count() const noexcept {
    return positions_.size();
  }

  /// All switch positions, for static inspection: fvf::lint's routing
  /// graph is the union over every position (the switch state at an
  /// arbitrary run point is dynamic, so the conservative reachability
  /// model must consider each position's rules).
  [[nodiscard]] const std::vector<SwitchPosition>& positions() const noexcept {
    return positions_;
  }
  [[nodiscard]] usize current_position() const noexcept { return current_; }

  /// Routing rule for wavelets entering through `input` under the current
  /// position, or nullptr if the color does not accept that input now.
  [[nodiscard]] const RouteRule* route(Dir input) const noexcept {
    if (positions_.empty()) {
      return nullptr;
    }
    return positions_[current_].find(input);
  }

  /// Advances the switch to the next position (wraps around). Invoked by
  /// control wavelets as they traverse the router.
  void advance() noexcept {
    if (!positions_.empty()) {
      current_ = (current_ + 1) % positions_.size();
    }
  }

  void reset_position() noexcept { current_ = 0; }

  /// The current position's packed route entries (kLinkCount words, one
  /// per input link). Only valid when configured().
  [[nodiscard]] const u32* packed_row() const noexcept {
    return packed_.data() + current_ * static_cast<usize>(kLinkCount);
  }

 private:
  std::vector<SwitchPosition> positions_;
  std::vector<u32> packed_;
  usize current_ = 0;
};

/// Convenience builders for the common single-rule configurations.
[[nodiscard]] inline SwitchPosition position(Dir input,
                                             std::vector<Dir> outputs) {
  SwitchPosition pos;
  pos.rules.push_back(RouteRule{input, std::move(outputs)});
  return pos;
}

[[nodiscard]] inline SwitchPosition position(std::vector<RouteRule> rules) {
  SwitchPosition pos;
  pos.rules = std::move(rules);
  return pos;
}

}  // namespace fvf::wse
