/// \file route.hpp
/// \brief Per-color router configuration with switch positions.
///
/// A color's configuration on a router is a small set of *switch
/// positions*; exactly one position is current at any time. Each position
/// holds routing rules mapping an input link to a fan-out set of output
/// links. A control wavelet traversing the router advances the switch to
/// the next position — this is the mechanism Figure 6 of the paper uses to
/// alternate PEs between *Sending* and *Receiving* roles.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "wse/fabric_types.hpp"

namespace fvf::wse {

/// A single routing rule: wavelets entering through `input` leave through
/// every link in `outputs` (fan-out / local broadcast).
struct RouteRule {
  Dir input = Dir::Ramp;
  std::vector<Dir> outputs;
};

/// One switch position: a set of routing rules active simultaneously.
/// Rules must have distinct inputs.
struct SwitchPosition {
  std::vector<RouteRule> rules;

  [[nodiscard]] const RouteRule* find(Dir input) const noexcept {
    for (const RouteRule& rule : rules) {
      if (rule.input == input) {
        return &rule;
      }
    }
    return nullptr;
  }
};

/// Full per-color configuration: up to kMaxPositions switch positions and
/// the index of the current one.
class ColorConfig {
 public:
  static constexpr usize kMaxPositions = 4;

  ColorConfig() = default;

  explicit ColorConfig(std::vector<SwitchPosition> positions)
      : positions_(std::move(positions)) {
    FVF_REQUIRE(!positions_.empty());
    FVF_REQUIRE(positions_.size() <= kMaxPositions);
    for (const SwitchPosition& pos : positions_) {
      for (usize i = 0; i < pos.rules.size(); ++i) {
        for (usize j = i + 1; j < pos.rules.size(); ++j) {
          FVF_REQUIRE_MSG(pos.rules[i].input != pos.rules[j].input,
                          "duplicate input link in switch position");
        }
      }
    }
  }

  [[nodiscard]] bool configured() const noexcept { return !positions_.empty(); }

  [[nodiscard]] usize position_count() const noexcept {
    return positions_.size();
  }

  /// All switch positions, for static inspection: fvf::lint's routing
  /// graph is the union over every position (the switch state at an
  /// arbitrary run point is dynamic, so the conservative reachability
  /// model must consider each position's rules).
  [[nodiscard]] const std::vector<SwitchPosition>& positions() const noexcept {
    return positions_;
  }
  [[nodiscard]] usize current_position() const noexcept { return current_; }

  /// Routing rule for wavelets entering through `input` under the current
  /// position, or nullptr if the color does not accept that input now.
  [[nodiscard]] const RouteRule* route(Dir input) const noexcept {
    if (positions_.empty()) {
      return nullptr;
    }
    return positions_[current_].find(input);
  }

  /// Advances the switch to the next position (wraps around). Invoked by
  /// control wavelets as they traverse the router.
  void advance() noexcept {
    if (!positions_.empty()) {
      current_ = (current_ + 1) % positions_.size();
    }
  }

  void reset_position() noexcept { current_ = 0; }

 private:
  std::vector<SwitchPosition> positions_;
  usize current_ = 0;
};

/// Convenience builders for the common single-rule configurations.
[[nodiscard]] inline SwitchPosition position(Dir input,
                                             std::vector<Dir> outputs) {
  SwitchPosition pos;
  pos.rules.push_back(RouteRule{input, std::move(outputs)});
  return pos;
}

[[nodiscard]] inline SwitchPosition position(std::vector<RouteRule> rules) {
  SwitchPosition pos;
  pos.rules = std::move(rules);
  return pos;
}

}  // namespace fvf::wse
