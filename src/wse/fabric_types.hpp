/// \file fabric_types.hpp
/// \brief Vocabulary types of the simulated wafer-scale engine: link
///        directions, routing colors, and wavelets (paper Section 4).
///
/// Each router manages five full-duplex links — North, East, South, West
/// to neighboring routers plus the Ramp link to its own PE — and moves
/// data in 32-bit packets ("wavelets"), each tagged with a color used for
/// routing and to indicate the message type.
#pragma once

#include <array>
#include <string_view>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace fvf::wse {

/// One of the five router links.
enum class Dir : u8 { North = 0, East = 1, South = 2, West = 3, Ramp = 4 };

inline constexpr usize kFabricDirCount = 4;  // N, E, S, W
inline constexpr usize kLinkCount = 5;       // + Ramp

inline constexpr std::array<Dir, kFabricDirCount> kFabricDirs = {
    Dir::North, Dir::East, Dir::South, Dir::West};

/// Direction a wavelet leaving through `d` arrives from at the neighbor.
[[nodiscard]] constexpr Dir opposite(Dir d) noexcept {
  switch (d) {
    case Dir::North: return Dir::South;
    case Dir::East: return Dir::West;
    case Dir::South: return Dir::North;
    case Dir::West: return Dir::East;
    case Dir::Ramp: return Dir::Ramp;
  }
  return Dir::Ramp;
}

/// Fabric coordinate offset of a direction. The fabric uses matrix-style
/// coordinates: +x is East, +y is North.
[[nodiscard]] constexpr Coord2 dir_offset(Dir d) noexcept {
  switch (d) {
    case Dir::North: return {0, +1};
    case Dir::East: return {+1, 0};
    case Dir::South: return {0, -1};
    case Dir::West: return {-1, 0};
    case Dir::Ramp: return {0, 0};
  }
  return {0, 0};
}

[[nodiscard]] constexpr std::string_view dir_name(Dir d) noexcept {
  switch (d) {
    case Dir::North: return "N";
    case Dir::East: return "E";
    case Dir::South: return "S";
    case Dir::West: return "W";
    case Dir::Ramp: return "R";
  }
  return "?";
}

/// Routing color (tag). The WSE-2 exposes 24 routable colors; we enforce
/// the same bound so programs stay portable to the real machine model.
class Color {
 public:
  static constexpr u8 kMaxColors = 24;

  constexpr Color() = default;
  explicit constexpr Color(u8 id) : id_(id) { FVF_ASSERT(id < kMaxColors); }

  [[nodiscard]] constexpr u8 id() const noexcept { return id_; }

  friend constexpr bool operator==(Color, Color) = default;
  friend constexpr auto operator<=>(Color, Color) = default;

 private:
  u8 id_ = 0;
};

/// Reinterprets a float as a 32-bit wavelet payload and back.
[[nodiscard]] inline u32 pack_f32(f32 value) noexcept {
  u32 bits;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return bits;
}

[[nodiscard]] inline f32 unpack_f32(u32 bits) noexcept {
  f32 value;
  __builtin_memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace fvf::wse
