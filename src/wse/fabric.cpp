#include "wse/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iterator>
#include <limits>
#include <sstream>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"

namespace fvf::wse {

namespace {
/// Run errors kept verbatim; the rest are counted and summarised.
constexpr usize kMaxRecordedErrors = 32;
/// Per-run_tile-call event cap: forces a barrier even when one window
/// legitimately holds an enormous number of events, so the outer loop
/// can watch the global minimum time and detect a zero-time-advance
/// livelock. Never affects results — an interrupted window resumes at
/// the next barrier exactly where it stopped.
constexpr u64 kWindowEventCap = u64{1} << 22;
/// Consecutive barriers without global-minimum advance (while events
/// keep being processed) before the run is declared livelocked. A
/// healthy program bounds its same-timestamp event population, so the
/// limit is only reached when simulated time is genuinely stuck.
constexpr u32 kStallLimit = 16;
}  // namespace

namespace detail {

/// One shard of the event engine: a contiguous strip of fabric rows with
/// its own event queue. A single-tile run (`direct == true`) is the
/// classic serial loop — tracer and error sinks are live and nothing is
/// buffered. A multi-tile run steps all tiles in lockstep over
/// conservative time windows; anything order-sensitive (cross-tile
/// events, trace records, errors) is buffered per tile and merged on the
/// coordinating thread in the deterministic (time, src, seq) order.
struct Tile {
  /// Sort key tagging a deferred record with the event being processed
  /// when it was emitted, plus an emission index within that event.
  struct RecordKey {
    f64 time = 0.0;
    i64 src = 0;
    u64 seq = 0;
    u32 idx = 0;

    [[nodiscard]] friend bool operator<(const RecordKey& a,
                                        const RecordKey& b) noexcept {
      if (a.time != b.time) {
        return a.time < b.time;
      }
      if (a.src != b.src) {
        return a.src < b.src;
      }
      if (a.seq != b.seq) {
        return a.seq < b.seq;
      }
      return a.idx < b.idx;
    }
  };
  struct TraceRecord {
    RecordKey key;
    TraceEvent event;
  };
  struct ErrorRecord {
    RecordKey key;
    std::string message;
  };

  i32 id = 0;
  bool direct = true;
  /// Payload slab pool for every event this tile owns (see
  /// wse/payload.hpp). Points into Fabric::arenas_, which outlives the
  /// run so parked payloads survive between run() calls.
  PayloadArena* arena = nullptr;
  /// Fault-injection accounting local to this tile; summed in finish_run.
  FaultStats faults;
  /// Trace records handed to the tracer (direct) or buffered (deferred).
  u64 traces_emitted = 0;
  EventQueue queue;
  /// Cross-tile events born this window, per destination tile; moved into
  /// the destination queues (payloads re-homed into the destination
  /// arena) at the window barrier.
  std::vector<std::vector<Event>> outbox;
  std::vector<TraceRecord> traces;
  std::vector<ErrorRecord> errors;
  u64 errors_total = 0;
  /// Hazard-check findings, buffered exactly like errors so the merged
  /// report is identical for every thread count.
  std::vector<ErrorRecord> hazards;
  u64 hazards_total = 0;
  u64 events_processed = 0;
  u64 tasks_executed = 0;
  f64 horizon = 0.0;
  /// Key of the event currently being processed (tags deferred records).
  RecordKey cursor;
};

}  // namespace detail

// ---------------------------------------------------------------------------
// PeApi
// ---------------------------------------------------------------------------

Coord2 PeApi::fabric_size() const noexcept {
  return Coord2{fabric_.width(), fabric_.height()};
}

bool PeApi::has_neighbor(Dir d) const noexcept {
  const Coord2 off = dir_offset(d);
  const i32 nx = pe_.coord().x + off.x;
  const i32 ny = pe_.coord().y + off.y;
  return nx >= 0 && nx < fabric_.width() && ny >= 0 && ny < fabric_.height();
}

void PeApi::send(Color color, std::span<const f32> values) {
  FVF_REQUIRE(!values.empty());
  const f64 serialization =
      static_cast<f64>(values.size()) * fabric_.timings_.cycles_per_wavelet_link;

  Event event;
  event.x = pe_.coord().x;
  event.y = pe_.coord().y;
  event.from = Dir::Ramp;
  event.color = color;
  event.payload_words = static_cast<u32>(values.size());
  event.payload = tile_.arena->alloc(event.payload_words);
  u32* words = tile_.arena->data(event.payload);
  for (usize i = 0; i < values.size(); ++i) {
    words[i] = pack_f32(values[i]);
  }
  // Parity stamped at injection, checked at Ramp delivery when fault
  // injection is enabled (bit-flip detection; see wse/fault.hpp). The
  // stamp is skipped entirely on fault-free runs: nothing reads it.
  if (fabric_.fault_model_.enabled()) {
    event.parity =
        block_parity(tile_.arena->view(event.payload, event.payload_words));
  }
  // Wormhole model: the event time is when the last wavelet has entered
  // the local router. Injection serializes on the Ramp link.
  const f64 start = std::max(pe_.clock_, pe_.ramp_free_);
  event.time = start + serialization;
  pe_.ramp_free_ = event.time;
  pe_.counters_.wavelets_sent += values.size();

  if (!fabric_.exec_.async_sends) {
    // Blocking-send ablation: the PE stalls for the injection time.
    pe_.clock_ = event.time;
  }
  fabric_.push_event(tile_, fabric_.index(event.x, event.y), event);
}

void PeApi::send(Color color, std::span<const f32> a, std::span<const f32> b) {
  FVF_REQUIRE(!a.empty() || !b.empty());
  const usize n = a.size() + b.size();
  const f64 serialization =
      static_cast<f64>(n) * fabric_.timings_.cycles_per_wavelet_link;

  Event event;
  event.x = pe_.coord().x;
  event.y = pe_.coord().y;
  event.from = Dir::Ramp;
  event.color = color;
  event.payload_words = static_cast<u32>(n);
  event.payload = tile_.arena->alloc(event.payload_words);
  u32* words = tile_.arena->data(event.payload);
  usize at = 0;
  for (const f32 v : a) {
    words[at++] = pack_f32(v);
  }
  for (const f32 v : b) {
    words[at++] = pack_f32(v);
  }
  if (fabric_.fault_model_.enabled()) {
    event.parity =
        block_parity(tile_.arena->view(event.payload, event.payload_words));
  }
  const f64 start = std::max(pe_.clock_, pe_.ramp_free_);
  event.time = start + serialization;
  pe_.ramp_free_ = event.time;
  pe_.counters_.wavelets_sent += n;
  if (!fabric_.exec_.async_sends) {
    pe_.clock_ = event.time;
  }
  fabric_.push_event(tile_, fabric_.index(event.x, event.y), event);
}

void PeApi::send_control(Color color) {
  Event event;
  event.x = pe_.coord().x;
  event.y = pe_.coord().y;
  event.from = Dir::Ramp;
  event.color = color;
  event.control = true;
  // A control wavelet is one wavelet on the wire but carries no payload
  // bytes: no arena allocation at all.
  event.payload_words = 1;
  const f64 start = std::max(pe_.clock_, pe_.ramp_free_);
  event.time = start + fabric_.timings_.cycles_per_wavelet_link;
  pe_.ramp_free_ = event.time;
  pe_.counters_.controls_sent += 1;
  if (!fabric_.exec_.async_sends) {
    pe_.clock_ = event.time;
  }
  fabric_.push_event(tile_, fabric_.index(event.x, event.y), event);
}

void PeApi::schedule_timer(f64 delay_cycles, u32 tag) {
  FVF_REQUIRE(delay_cycles > 0.0);
  Event event;
  event.x = pe_.coord().x;
  event.y = pe_.coord().y;
  event.timer = true;
  event.timer_tag = tag;
  // Timers are PE-local: born and delivered on the owning tile, so they
  // are exempt from the cross-tile lookahead constraint.
  event.time = pe_.clock_ + delay_cycles;
  fabric_.push_event(tile_, fabric_.index(event.x, event.y), event);
}

void PeApi::report_fault_recovered(u64 blocks) {
  tile_.faults.flips_recovered += blocks;
}

void PeApi::report_protocol_error(std::string message) {
  fabric_.emit_error(tile_, std::move(message));
}

void PeApi::hazard_mark_live(Dsd view, const char* label) {
  if (!fabric_.exec_.hazard_check) {
    return;
  }
  HazardState& state =
      fabric_.hazard_state_[static_cast<usize>(fabric_.index(
          pe_.coord().x, pe_.coord().y))];
  state.live.push_back(HazardState::LiveRange{range_of(view), label});
}

void PeApi::hazard_release(Dsd view) {
  if (!fabric_.exec_.hazard_check) {
    return;
  }
  HazardState& state =
      fabric_.hazard_state_[static_cast<usize>(fabric_.index(
          pe_.coord().x, pe_.coord().y))];
  const MemRange range = range_of(view);
  for (auto it = state.live.rbegin(); it != state.live.rend(); ++it) {
    if (it->range.begin == range.begin && it->range.end == range.end) {
      state.live.erase(std::next(it).base());
      return;
    }
  }
}

void PeApi::hazard_release_all() {
  if (!fabric_.exec_.hazard_check) {
    return;
  }
  fabric_
      .hazard_state_[static_cast<usize>(
          fabric_.index(pe_.coord().x, pe_.coord().y))]
      .live.clear();
}

void PeApi::check_operand_hazard(const char* op, Dsd dest, Dsd source,
                                 usize operand_index) {
  if (!partial_overlap(dest, source)) {
    return;
  }
  const HazardState& state =
      fabric_.hazard_state_[static_cast<usize>(fabric_.index(
          pe_.coord().x, pe_.coord().y))];
  // Offsets are in elements relative to the destination base: stable and
  // deterministic (both views live in the same allocation when they
  // overlap), unlike raw addresses.
  const auto delta = reinterpret_cast<const f32*>(source.base) - dest.base;
  std::ostringstream os;
  os << "memory hazard at PE(" << pe_.coord().x << ',' << pe_.coord().y
     << ") task #" << state.epoch << ": " << op << " source operand "
     << operand_index << " (length " << source.length
     << ") partially overlaps the destination (length " << dest.length
     << ", source offset " << delta
     << " elements) — the element loop reads values the same instruction "
        "already overwrote";
  fabric_.emit_hazard(tile_, os.str());
}

void PeApi::check_dsd_hazards(const char* op, Dsd dest, Dsd a) {
  if (!fabric_.exec_.hazard_check) {
    return;
  }
  check_operand_hazard(op, dest, a, 1);
}

void PeApi::check_dsd_hazards(const char* op, Dsd dest, Dsd a, Dsd b) {
  if (!fabric_.exec_.hazard_check) {
    return;
  }
  check_operand_hazard(op, dest, a, 1);
  check_operand_hazard(op, dest, b, 2);
}

void PeApi::check_dsd_hazards(const char* op, Dsd dest, Dsd a, Dsd b, Dsd c) {
  if (!fabric_.exec_.hazard_check) {
    return;
  }
  check_operand_hazard(op, dest, a, 1);
  check_operand_hazard(op, dest, b, 2);
  check_operand_hazard(op, dest, c, 3);
}

void PeApi::check_receive_hazard(Dsd dest) {
  if (!fabric_.exec_.hazard_check) {
    return;
  }
  const HazardState& state =
      fabric_.hazard_state_[static_cast<usize>(fabric_.index(
          pe_.coord().x, pe_.coord().y))];
  const MemRange range = range_of(dest);
  for (const HazardState::LiveRange& live : state.live) {
    if (ranges_overlap(range, live.range)) {
      std::ostringstream os;
      os << "memory hazard at PE(" << pe_.coord().x << ',' << pe_.coord().y
         << ") task #" << state.epoch << ": fmovs receive (length "
         << dest.length << ") overwrites live buffer '" << live.label
         << "' while a handler still holds a view of it";
      fabric_.emit_hazard(tile_, os.str());
    }
  }
}

void PeApi::set_phase(obs::Phase phase) noexcept {
  if (!fabric_.exec_.phase_profiling || phase == pe_.current_phase_) {
    return;
  }
  fabric_.attribute_phase(pe_, pe_.current_phase_, pe_.phase_mark_, pe_.clock_);
  pe_.current_phase_ = phase;
  pe_.phase_mark_ = pe_.clock_;
}

void PeApi::charge_vector_op(i32 length, u32 loads_per_element) {
  FVF_REQUIRE(length >= 0);
  const FabricTimings& t = fabric_.timings_;
  const f64 issue = fabric_.exec_.vectorized
                        ? t.vector_op_issue_cycles
                        : t.vector_op_issue_cycles * static_cast<f64>(length);
  pe_.clock_ +=
      issue + static_cast<f64>(length) * t.cycles_per_vector_element;
  pe_.counters_.mem_loads += static_cast<u64>(length) * loads_per_element;
  pe_.counters_.mem_stores += static_cast<u64>(length);
}

void PeApi::fmuls(Dsd dest, Dsd a, Dsd b) {
  FVF_REQUIRE(dest.length == a.length && dest.length == b.length);
  check_dsd_hazards("fmuls", dest, a, b);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = a.at(i) * b.at(i);
  }
  pe_.counters_.fmul += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 2);
}

void PeApi::fmuls(Dsd dest, Dsd a, f32 scalar) {
  FVF_REQUIRE(dest.length == a.length);
  check_dsd_hazards("fmuls", dest, a);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = a.at(i) * scalar;
  }
  pe_.counters_.fmul += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 2);
}

void PeApi::fadds(Dsd dest, Dsd a, Dsd b) {
  FVF_REQUIRE(dest.length == a.length && dest.length == b.length);
  check_dsd_hazards("fadds", dest, a, b);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = a.at(i) + b.at(i);
  }
  pe_.counters_.fadd += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 2);
}

void PeApi::fsubs(Dsd dest, Dsd a, Dsd b) {
  FVF_REQUIRE(dest.length == a.length && dest.length == b.length);
  check_dsd_hazards("fsubs", dest, a, b);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = a.at(i) - b.at(i);
  }
  pe_.counters_.fsub += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 2);
}

void PeApi::fsubs(Dsd dest, Dsd a, f32 scalar) {
  FVF_REQUIRE(dest.length == a.length);
  check_dsd_hazards("fsubs", dest, a);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = a.at(i) - scalar;
  }
  pe_.counters_.fsub += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 2);
}

void PeApi::fnegs(Dsd dest, Dsd a) {
  FVF_REQUIRE(dest.length == a.length);
  check_dsd_hazards("fnegs", dest, a);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = -a.at(i);
  }
  pe_.counters_.fneg += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 1);
}

void PeApi::fmacs(Dsd dest, Dsd a, Dsd b, Dsd c) {
  FVF_REQUIRE(dest.length == a.length && dest.length == b.length &&
              dest.length == c.length);
  check_dsd_hazards("fmacs", dest, a, b, c);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = a.at(i) * b.at(i) + c.at(i);
  }
  pe_.counters_.fma += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 3);
}

void PeApi::fmacs(Dsd dest, Dsd a, f32 scalar, Dsd c) {
  FVF_REQUIRE(dest.length == a.length && dest.length == c.length);
  check_dsd_hazards("fmacs", dest, a, c);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = a.at(i) * scalar + c.at(i);
  }
  pe_.counters_.fma += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 3);
}

void PeApi::selects(Dsd dest, Dsd pred, Dsd a, Dsd b) {
  FVF_REQUIRE(dest.length == pred.length && dest.length == a.length &&
              dest.length == b.length);
  check_dsd_hazards("selects", dest, pred, a, b);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = pred.at(i) > 0.0f ? a.at(i) : b.at(i);
  }
  // Predicated move: cycles, no FP instruction counts, no Table 4 traffic.
  const FabricTimings& t = fabric_.timings_;
  const f64 issue = fabric_.exec_.vectorized
                        ? t.vector_op_issue_cycles
                        : t.vector_op_issue_cycles * static_cast<f64>(dest.length);
  pe_.clock_ +=
      issue + static_cast<f64>(dest.length) * t.cycles_per_vector_element;
}

void PeApi::fmovs(Dsd dest, FabricDsd src) {
  FVF_REQUIRE(dest.length == src.length);
  check_receive_hazard(dest);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = unpack_f32(src.base[i]);
  }
  pe_.counters_.fmov += static_cast<u64>(dest.length);
  pe_.counters_.mem_stores += static_cast<u64>(dest.length);
  pe_.clock_ += static_cast<f64>(dest.length) *
                fabric_.timings_.ramp_cycles_per_wavelet;
}

void PeApi::zeros(Dsd dest) {
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = 0.0f;
  }
  const FabricTimings& t = fabric_.timings_;
  const f64 issue = fabric_.exec_.vectorized
                        ? t.vector_op_issue_cycles
                        : t.vector_op_issue_cycles * static_cast<f64>(dest.length);
  pe_.clock_ +=
      issue + static_cast<f64>(dest.length) * t.cycles_per_vector_element;
}

void PeApi::scalar_ops(u64 count) {
  pe_.counters_.scalar_misc += count;
  pe_.clock_ += static_cast<f64>(count) * fabric_.timings_.scalar_op_cycles;
}

void PeApi::transcendental_ops(u64 count) {
  pe_.counters_.scalar_misc += count;
  pe_.clock_ += static_cast<f64>(count) * fabric_.timings_.exp_cycles;
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

Fabric::Fabric(i32 width, i32 height, FabricTimings timings,
               usize pe_memory_budget, ExecutionOptions exec)
    : width_(width),
      height_(height),
      timings_(timings),
      exec_(exec),
      memory_budget_(pe_memory_budget),
      fault_model_(exec.fault) {
  FVF_REQUIRE(width > 0 && height > 0);
  pes_.reserve(static_cast<usize>(pe_count()));
  routers_.resize(static_cast<usize>(pe_count()));
  pending_.resize(static_cast<usize>(pe_count()));
  if (fault_model_.enabled()) {
    // Per-link next-free times backing the FIFO-preserving stall model.
    link_free_.resize(static_cast<usize>(pe_count()),
                      std::array<f64, kLinkCount>{});
  }
  if (exec_.hazard_check) {
    hazard_state_.resize(static_cast<usize>(pe_count()));
  }
  for (i32 y = 0; y < height_; ++y) {
    for (i32 x = 0; x < width_; ++x) {
      pes_.emplace_back(Coord2{x, y}, memory_budget_);
    }
  }
}

Fabric::~Fabric() = default;

Pe& Fabric::pe(i32 x, i32 y) {
  FVF_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_);
  return pes_[static_cast<usize>(index(x, y))];
}

const Pe& Fabric::pe(i32 x, i32 y) const {
  FVF_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_);
  return pes_[static_cast<usize>(index(x, y))];
}

Router& Fabric::router(i32 x, i32 y) {
  FVF_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_);
  return routers_[static_cast<usize>(index(x, y))];
}

const Router& Fabric::router(i32 x, i32 y) const {
  FVF_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_);
  return routers_[static_cast<usize>(index(x, y))];
}

void Fabric::load(const ProgramFactory& factory) {
  FVF_REQUIRE(factory != nullptr);
  for (i32 y = 0; y < height_; ++y) {
    for (i32 x = 0; x < width_; ++x) {
      Pe& p = pe(x, y);
      p.program_ = factory(Coord2{x, y}, Coord2{width_, height_});
      FVF_REQUIRE(p.program_ != nullptr);
      p.program_->configure_router(router(x, y));
    }
  }
}

void Fabric::push_event(detail::Tile& tile, i64 birth, Event& event) {
  event.src = birth;
  event.seq = routers_[static_cast<usize>(birth)].next_birth_seq();
  tile.horizon = std::max(tile.horizon, event.time);
  if (tile.direct) {
    tile.queue.push(event);
    return;
  }
  const i32 dest = tile_of_row_[static_cast<usize>(event.y)];
  if (dest == tile.id) {
    tile.queue.push(event);
  } else {
    // The payload handle still points into this tile's arena; the
    // barrier re-homes it into the destination arena before delivery.
    tile.outbox[static_cast<usize>(dest)].push_back(event);
  }
}

void Fabric::emit_error(detail::Tile& tile, std::string message) {
  if (tile.direct) {
    ++errors_total_;
    if (errors_.size() < kMaxRecordedErrors) {
      errors_.push_back(std::move(message));
    }
    return;
  }
  ++tile.errors_total;
  if (tile.errors.size() < kMaxRecordedErrors) {
    detail::Tile::ErrorRecord record;
    record.key = tile.cursor;
    ++tile.cursor.idx;
    record.message = std::move(message);
    tile.errors.push_back(std::move(record));
  }
}

void Fabric::emit_hazard(detail::Tile& tile, std::string message) {
  if (tile.direct) {
    ++hazards_total_;
    if (hazards_.size() < kMaxRecordedErrors) {
      hazards_.push_back(std::move(message));
    }
    return;
  }
  ++tile.hazards_total;
  if (tile.hazards.size() < kMaxRecordedErrors) {
    detail::Tile::ErrorRecord record;
    record.key = tile.cursor;
    ++tile.cursor.idx;
    record.message = std::move(message);
    tile.hazards.push_back(std::move(record));
  }
}

void Fabric::emit_trace(detail::Tile& tile, const TraceEvent& event) {
  ++tile.traces_emitted;
  if (tile.direct) {
    tracer_(event);
    return;
  }
  detail::Tile::TraceRecord record;
  record.key = tile.cursor;
  ++tile.cursor.idx;
  record.event = event;
  tile.traces.push_back(record);
}

void Fabric::deliver_to_pe(detail::Tile& tile, Pe& target, const Event& event) {
  if (tracer_) {
    emit_trace(tile, TraceEvent{event.timer ? TraceKind::TimerFired
                                            : TraceKind::TaskStart,
                                event.time, event.x, event.y, event.color,
                                event.from, event.payload_words});
  }
  // Profiling is observation only: it reads the clock the dispatch code
  // below advances, and writes nothing the simulation reads back.
  const f64 clock_before = target.clock_;
  if (fault_model_.enabled() && !event.start &&
      fault_model_.halt_pe(event.src, event.seq)) {
    // Transient halt right at dispatch. The per-PE watchdog notices the
    // hung task and restarts it after halt_cycles: the fault costs
    // latency only, and is immediately detected + recovered.
    ++tile.faults.halts_injected;
    ++tile.faults.halts_resumed;
    if (tracer_) {
      emit_trace(tile, TraceEvent{TraceKind::FaultHalt, event.time, event.x,
                                  event.y, event.color, event.from, 0});
    }
    target.clock_ =
        std::max(target.clock_, event.time) + fault_model_.halt_cycles();
  }
  // The task starts when both the data has arrived and the PE is free.
  target.clock_ = std::max(target.clock_, event.time) +
                  timings_.task_dispatch_cycles;
  target.counters_.tasks_executed += 1;
  ++tile.tasks_executed;
  if (exec_.hazard_check) {
    // Dispatch-epoch counter for hazard messages; only the owning tile
    // touches it, so the numbering is identical for every thread count.
    ++hazard_state_[static_cast<usize>(index(target.coord_.x,
                                             target.coord_.y))]
          .epoch;
  }

  if (exec_.phase_profiling) {
    // Cycles the PE spent waiting for this delivery are idle; everything
    // from the task's start (dispatch, halt recovery, handler work) is
    // booked under the task's phase until the handler retags itself.
    const f64 start = std::max(clock_before, event.time);
    attribute_phase(target, obs::Phase::Idle, clock_before, start);
    target.current_phase_ =
        event.start ? obs::Phase::LocalCompute
                    : target.program_->task_phase(event.color, event.control,
                                                  event.timer);
    target.phase_mark_ = start;
  }

  PeApi api(*this, target, tile);
  if (event.start) {
    target.program_->on_start(api);
  } else if (event.timer) {
    target.program_->on_timer(api, event.timer_tag);
  } else if (event.control) {
    target.program_->on_control(api, event.color, event.from);
  } else {
    target.counters_.wavelets_received += event.payload_words;
    target.program_->on_data(
        api, event.color, event.from,
        tile.arena->view(event.payload, event.payload_words));
  }
  if (exec_.phase_profiling) {
    attribute_phase(target, target.current_phase_, target.phase_mark_,
                    target.clock_);
    target.current_phase_ = obs::Phase::Idle;
    target.phase_mark_ = target.clock_;
  }
  tile.horizon = std::max(tile.horizon, target.clock_);
}

void Fabric::attribute_phase(Pe& pe, obs::Phase phase, f64 begin, f64 end) {
  if (end <= begin) {
    return;
  }
  pe.phase_cycles_[phase] += end - begin;
  if (exec_.phase_span_capacity > 0 && phase != obs::Phase::Idle) {
    if (pe.phase_spans_.size() < exec_.phase_span_capacity) {
      pe.phase_spans_.push_back(obs::PhaseSpan{phase, begin, end});
    } else {
      ++pe.phase_spans_dropped_;
    }
  }
}

void Fabric::process_event(detail::Tile& tile, Event& event) {
  // Hot path: coordinates were validated when the event was born, so
  // index directly instead of through the checked pe()/router()
  // accessors.
  const usize at = static_cast<usize>(index(event.x, event.y));
  Pe& local = pes_[at];
  if (event.start || event.timer) {
    // Synthetic events bypass the router entirely.
    deliver_to_pe(tile, local, event);
    return;
  }
  if (event.stalled) {
    // The delayed block made it through its stalled hop: the fault cost
    // latency only and is absorbed by the dataflow slack.
    ++tile.faults.stalls_absorbed;
    event.stalled = false;
  }

  // Resolve the route from the flat mirror (one load) instead of chasing
  // the Router's config/position/rule vectors; see build_route_table.
  const u32 packed =
      route_table_[at * Color::kMaxColors + event.color.id()]
                  [static_cast<usize>(event.from)];
  if (packed == 0) {
    Router& rt = routers_[at];
    if (!rt.config(event.color).configured()) {
      std::ostringstream os;
      os << "wavelet on unconfigured color "
         << static_cast<int>(event.color.id()) << " entering PE (" << event.x
         << ',' << event.y << ") from " << dir_name(event.from);
      emit_error(tile, os.str());
      return;
    }
    // Backpressure: the current switch position does not accept this
    // input. The wavelet waits in the router's input buffer until a
    // control wavelet advances the switch.
    if (tracer_) {
      emit_trace(tile, TraceEvent{TraceKind::Backpressured, event.time,
                                  event.x, event.y, event.color, event.from,
                                  event.payload_words});
    }
    PendingBuffer& buf = pending_[at];
    if (buf.total >= exec_.router_buffer_depth) {
      // A real router would assert backpressure upstream; the model keeps
      // timing simple by dropping the block and recording the overflow as
      // a run error (deterministic across thread counts, like every other
      // diagnostic). ExecutionOptions::router_buffer_depth widens the
      // buffer for deep-column programs that legitimately park more.
      std::ostringstream os;
      os << "router input buffer overflow at PE (" << event.x << ','
         << event.y << "): " << buf.total
         << " blocks waiting, dropped " << (event.control ? "ctrl" : "data")
         << " block on color " << static_cast<int>(event.color.id())
         << " from " << dir_name(event.from);
      emit_error(tile, os.str());
      return;  // run_tile frees the dropped payload
    }
    PendingBuffer::ColorFifo* fifo = nullptr;
    for (PendingBuffer::ColorFifo& f : buf.fifos) {
      if (f.color == event.color) {
        fifo = &f;
        break;
      }
    }
    if (fifo == nullptr) {
      buf.fifos.push_back(PendingBuffer::ColorFifo{event.color, {}});
      fifo = &buf.fifos.back();
    }
    fifo->events.push_back(event);
    event.payload = PayloadArena::kNull;  // the parked copy owns it now
    ++buf.total;
    return;
  }

  if (tracer_) {
    emit_trace(tile, TraceEvent{
        event.control ? TraceKind::ControlRouted : TraceKind::DataRouted,
        event.time, event.x, event.y, event.color, event.from,
        event.payload_words});
  }

  // Route first (using the pre-advance configuration)...
  Router& rt = routers_[at];
  const bool faults = fault_model_.enabled();
  // Exactly-once drop accounting for corrupted blocks: the token travels
  // with one surviving forwarded copy (fan-out duplicates are not
  // re-counted) and is consumed when that copy is dropped at a parity
  // check or absorbed at the wafer boundary.
  bool token = event.fault_token;
  // Decode the packed rule: output links in configuration order.
  const usize out_count = (packed >> 1) & 0x7u;
  Dir outputs[kLinkCount];
  for (usize i = 0; i < out_count; ++i) {
    outputs[i] = static_cast<Dir>((packed >> (4 + 3 * i)) & 0x7u);
  }
  // The last output that reads payload bytes (Ramp delivery or an
  // in-bounds fabric link): the handle is *moved* there instead of
  // copied, so the common single-output forward allocates nothing.
  usize last_reader = out_count;
  if (event.payload != PayloadArena::kNull) {
    for (usize i = out_count; i-- > 0;) {
      const Dir out = outputs[i];
      if (out == Dir::Ramp) {
        last_reader = i;
        break;
      }
      const Coord2 off = dir_offset(out);
      const i32 nx = event.x + off.x;
      const i32 ny = event.y + off.y;
      if (nx >= 0 && nx < width_ && ny >= 0 && ny < height_) {
        last_reader = i;
        break;
      }
    }
  }
  for (usize out_idx = 0; out_idx < out_count; ++out_idx) {
    const Dir out = outputs[out_idx];
    // Every resolved output link carries the block — including the Ramp,
    // so router utilization and per-color traffic account for delivery
    // to the local PE (Table 3's communication accounting).
    rt.count_output(out, event.payload_words);
    rt.count_color(event.color, event.payload_words);
    if (out == Dir::Ramp) {
      if (faults && !event.control &&
          block_parity(tile.arena->view(event.payload, event.payload_words)) !=
              event.parity) {
        // Detection: the parity word stamped at injection no longer
        // matches — drop the block at delivery, exactly as a link-level
        // CRC would discard it. Recovery (if any) is protocol-level.
        rt.count_dropped();
        if (token) {
          ++tile.faults.flips_dropped;
          token = false;
        }
        if (tracer_) {
          emit_trace(tile,
                     TraceEvent{TraceKind::ParityDrop, event.time, event.x,
                                event.y, event.color, event.from,
                                event.payload_words});
        }
        continue;
      }
      deliver_to_pe(tile, local, event);
      continue;
    }
    const Coord2 off = dir_offset(out);
    const i32 nx = event.x + off.x;
    const i32 ny = event.y + off.y;
    if (nx < 0 || nx >= width_ || ny < 0 || ny >= height_) {
      // Traffic leaving the simulated region is absorbed by the reserved
      // boundary layer of the wafer (paper Section 7.1).
      continue;
    }
    Event forwarded;
    forwarded.time = event.time + timings_.hop_latency_cycles;
    forwarded.x = nx;
    forwarded.y = ny;
    forwarded.from = opposite(out);
    forwarded.color = event.color;
    forwarded.control = event.control;
    forwarded.parity = event.parity;
    forwarded.corrupted = event.corrupted;
    forwarded.payload_words = event.payload_words;
    if (event.payload != PayloadArena::kNull) {
      if (out_idx == last_reader) {
        forwarded.payload = event.payload;  // move: no later output reads it
        event.payload = PayloadArena::kNull;
      } else {
        forwarded.payload = tile.arena->clone_from(*tile.arena, event.payload,
                                                   event.payload_words);
      }
    }
    if (faults) {
      f64& link_free = link_free_[at][static_cast<usize>(out)];
      // FIFO: a stalled link delays its whole tail — later blocks queue
      // behind the held one instead of overtaking it (overtaking would
      // let data slip past the control wavelet sent after it and arrive
      // under the wrong switch position).
      forwarded.time = std::max(forwarded.time, link_free);
      if (fault_model_.stall_link(event.src, event.seq, out)) {
        ++tile.faults.stalls_injected;
        forwarded.time += fault_model_.stall_cycles();
        forwarded.stalled = true;
        if (tracer_) {
          emit_trace(tile,
                     TraceEvent{TraceKind::FaultStall, forwarded.time, event.x,
                                event.y, event.color, event.from,
                                event.payload_words});
        }
      }
      link_free = std::max(link_free, forwarded.time);
      if (!event.control) {
        if (!forwarded.corrupted) {
          usize word = 0;
          u32 bit = 0;
          if (fault_model_.flip_bit(event.src, event.seq, out, event.color,
                                    event.payload_words, &word, &bit)) {
            // Single-event upset: one bit of one wavelet of this copy.
            tile.arena->data(forwarded.payload)[word] ^= (1u << bit);
            forwarded.corrupted = true;
            forwarded.fault_token = true;
            ++tile.faults.flips_injected;
            if (tracer_) {
              emit_trace(tile,
                         TraceEvent{TraceKind::FaultFlip, forwarded.time,
                                    event.x, event.y, event.color, event.from,
                                    event.payload_words});
            }
          }
        } else if (token) {
          forwarded.fault_token = true;
          token = false;
        }
      }
    }
    push_event(tile, static_cast<i64>(at), forwarded);
  }
  if (token) {
    // The only copy carrying the drop-accounting token left the simulated
    // region: the corrupted block is gone for good — count it dropped so
    // the injected/detected/recovered/unrecovered partition holds.
    ++tile.faults.flips_dropped;
  }

  // ...then advance the switch if this was a control wavelet, releasing
  // any wavelets the old position was holding back.
  if (event.control) {
    // Advancing a single-position switch is a no-op, so the Router and
    // the mirror only need touching when the color actually alternates.
    if (packed & kRouteMultiPositionBit) {
      rt.advance_switch(event.color);
      rebuild_route_entry(at, event.color);
    }
    release_pending(tile, event.x, event.y, event.color, event.time);
  }
}

void Fabric::release_pending(detail::Tile& tile, i32 x, i32 y, Color color,
                             f64 not_before) {
  PendingBuffer& buf = pending_[static_cast<usize>(index(x, y))];
  // Re-inject (in FIFO order) the waiting wavelets of this color; they
  // re-resolve against the new switch position. The per-color FIFO makes
  // this a single move instead of a scan over every parked event.
  for (usize f = 0; f < buf.fifos.size(); ++f) {
    if (buf.fifos[f].color != color) {
      continue;
    }
    std::vector<Event> released = std::move(buf.fifos[f].events);
    buf.fifos.erase(buf.fifos.begin() + static_cast<std::ptrdiff_t>(f));
    buf.total -= static_cast<u32>(released.size());
    for (Event& event : released) {
      event.time = std::max(event.time, not_before);
      if (tracer_) {
        emit_trace(tile, TraceEvent{TraceKind::Released, event.time, event.x,
                                    event.y, event.color, event.from,
                                    event.payload_words});
      }
      push_event(tile, index(x, y), event);
    }
    return;
  }
}

void Fabric::run_tile(detail::Tile& tile, f64 window_end, u64 event_cap) {
  u64 processed = 0;
  while (!tile.queue.empty() && tile.queue.top_time() < window_end) {
    if (processed >= event_cap) {
      return;  // forced barrier, not a stop; see kWindowEventCap
    }
    ++processed;
    Event event = tile.queue.pop();
    if (!tile.queue.empty()) {
      // Overlap the next event's cache misses with this event's work:
      // the queue minimum is already known, and its PE/router/route rows
      // are scattered across arrays far larger than the LLC at wafer
      // scale, so the engine is otherwise bound by these fetch stalls.
      const Event& next = tile.queue.top();
      const usize next_at = static_cast<usize>(index(next.x, next.y));
      __builtin_prefetch(
          &route_table_[next_at * Color::kMaxColors + next.color.id()]);
      __builtin_prefetch(&pes_[next_at]);
      __builtin_prefetch(&routers_[next_at]);
    }
    tile.cursor = detail::Tile::RecordKey{event.time, event.src, event.seq, 0};
    ++tile.events_processed;
    process_event(tile, event);
    if (event.payload != PayloadArena::kNull) {
      // Ownership not transferred to a forward or a pending buffer: the
      // payload's last reader was this event.
      tile.arena->free(event.payload);
    }
  }
}

void Fabric::rebuild_route_entry(usize at, Color color) {
  std::array<u32, kLinkCount>& entry =
      route_table_[at * Color::kMaxColors + color.id()];
  const ColorConfig& config = routers_[at].config(color);
  if (!config.configured()) {
    entry.fill(0);
    return;
  }
  // ColorConfig packed every position at configure time (see route.hpp),
  // so refreshing the mirror — including on the control-wavelet hot path
  // — is one kLinkCount-word copy.
  std::memcpy(entry.data(), config.packed_row(), sizeof(entry));
}

void Fabric::build_route_table() {
  const usize n = static_cast<usize>(width_) * static_cast<usize>(height_);
  route_table_.assign(n * Color::kMaxColors, {});
  for (usize at = 0; at < n; ++at) {
    for (u8 c = 0; c < Color::kMaxColors; ++c) {
      rebuild_route_entry(at, Color{c});
    }
  }
}

f64 Fabric::checkpoint_cycles() const noexcept {
  if (exec_.budget_check_cycles > 0.0) {
    return exec_.budget_check_cycles;
  }
  // Auto: frequent enough that a budget overshoot stays small relative to
  // the budget, coarse enough that checkpoint barriers never dominate.
  return 256.0 * std::max(timings_.hop_latency_cycles, 1.0);
}

i32 Fabric::tile_count() const noexcept {
  if (!(timings_.hop_latency_cycles > 0.0)) {
    // Zero cross-tile lookahead: conservative windows cannot make
    // progress, so fall back to the serial engine.
    return 1;
  }
  return std::clamp(exec_.threads, 1, height_);
}

RunReport Fabric::run(u64 max_events) {
  const i32 tile_count = this->tile_count();
  build_route_table();

  tile_of_row_.assign(static_cast<usize>(height_), 0);
  if (arenas_.empty()) {
    // One payload arena per tile, owned by the Fabric: parked events keep
    // their payload handles alive across run() calls, and tile_count() is
    // a pure function of construction parameters so the tiling (and thus
    // handle ownership) is identical every run.
    arenas_ = std::vector<PayloadArena>(static_cast<usize>(tile_count));
  }
  std::vector<detail::Tile> tiles(static_cast<usize>(tile_count));
  for (i32 t = 0; t < tile_count; ++t) {
    const i32 row_begin =
        static_cast<i32>(static_cast<i64>(height_) * t / tile_count);
    const i32 row_end =
        static_cast<i32>(static_cast<i64>(height_) * (t + 1) / tile_count);
    for (i32 y = row_begin; y < row_end; ++y) {
      tile_of_row_[static_cast<usize>(y)] = t;
    }
    tiles[static_cast<usize>(t)].id = t;
    tiles[static_cast<usize>(t)].direct = tile_count == 1;
    tiles[static_cast<usize>(t)].arena = &arenas_[static_cast<usize>(t)];
    tiles[static_cast<usize>(t)].outbox.resize(static_cast<usize>(tile_count));
  }

  // Program-start events, one per PE, in deterministic PE order.
  for (i32 y = 0; y < height_; ++y) {
    for (i32 x = 0; x < width_; ++x) {
      FVF_REQUIRE_MSG(pe(x, y).program_ != nullptr,
                      "Fabric::run called before load()");
      Event start;
      start.time = 0.0;
      start.x = x;
      start.y = y;
      start.start = true;
      const i64 loc = index(x, y);
      start.src = loc;
      start.seq = routers_[static_cast<usize>(loc)].next_birth_seq();
      tiles[static_cast<usize>(tile_of_row_[static_cast<usize>(y)])]
          .queue.push(start);
    }
  }

  // Unified windowed loop, serial and parallel alike. Execution proceeds
  // in windows capped at the next budget checkpoint (a fixed simulated-
  // time grid, see checkpoint_cycles()); within a window each tile
  // additionally stops at the earliest possible cross-boundary arrival
  // from its neighboring tiles (its events can only come from the two
  // adjacent row strips, one hop away). The budget is evaluated exactly
  // when global time crosses a checkpoint, at which point the processed-
  // event multiset is the precise set of events below that checkpoint —
  // a pure function of the simulation, identical for every thread count.
  const f64 checkpoint = checkpoint_cycles();
  const f64 hop = timings_.hop_latency_cycles;
  std::unique_ptr<ThreadPool> pool;
  if (tile_count > 1) {
    pool = std::make_unique<ThreadPool>(tile_count);
  }
  const usize n_tiles = tiles.size();
  std::vector<f64> tile_min(n_tiles);
  std::vector<f64> earliest(n_tiles);
  std::vector<f64> window_end(n_tiles);
  /// Deferred trace records not yet safe to hand to the tracer: a lagging
  /// tile may still emit records with earlier keys, so only records below
  /// the post-barrier global minimum time are drained each window.
  std::vector<detail::Tile::TraceRecord> held_traces;
  const auto trace_key_less = [](const detail::Tile::TraceRecord& a,
                                 const detail::Tile::TraceRecord& b) {
    return a.key < b.key;
  };
  bool budget_hit = false;
  f64 cut = -std::numeric_limits<f64>::infinity();
  f64 last_min = -std::numeric_limits<f64>::infinity();
  u32 stalled_windows = 0;
  for (;;) {
    f64 min_time = std::numeric_limits<f64>::infinity();
    for (usize t = 0; t < n_tiles; ++t) {
      tile_min[t] = tiles[t].queue.empty()
                        ? std::numeric_limits<f64>::infinity()
                        : tiles[t].queue.top_time();
      min_time = std::min(min_time, tile_min[t]);
    }
    if (!std::isfinite(min_time)) {
      break;  // quiescent
    }
    // Livelock watchdog. The global minimum is nondecreasing (windows
    // only process events below their bound, and every push lands at or
    // after its creator’s time); if it fails to advance across many
    // barriers while events keep flowing, simulated time is stuck.
    if (min_time > last_min) {
      last_min = min_time;
      stalled_windows = 0;
    } else if (++stalled_windows >= kStallLimit) {
      budget_hit = true;
      break;
    }
    if (min_time >= cut) {
      // Checkpoint cut: every event below `cut` (and nothing at or above
      // it) has been processed, on every tiling.
      u64 total = 0;
      for (const detail::Tile& tile : tiles) {
        total += tile.events_processed;
      }
      if (total >= max_events) {
        budget_hit = true;
        break;
      }
      cut = (std::floor(min_time / checkpoint) + 1.0) * checkpoint;
      while (cut <= min_time) {
        cut += checkpoint;  // guard the floor against fp rounding
      }
    }
    u64 before = 0;
    for (const detail::Tile& tile : tiles) {
      before += tile.events_processed;
    }
    // Per-tile-boundary lookahead (conservative CMB-style). `earliest[t]`
    // is the earliest event tile t could possibly process from here on:
    // its own queue minimum, or anything a neighbor could emit to it —
    // which includes multi-tile round trips (a block this tile sends can
    // bounce straight back at +2 hops), so the bound is the fixpoint of
    //   earliest[t] = min(queue_min[t], earliest[t±1] + hop)
    // computed exactly by one forward and one backward sweep over the
    // row-strip chain. Tile t's window then extends to the earliest its
    // neighbors could emit. The bound grows by one hop per tile of
    // distance from the global laggard, so far-away tiles advance many
    // events per barrier (never less than the old global gmin + hop).
    for (usize t = 0; t < n_tiles; ++t) {
      earliest[t] = tile_min[t];
    }
    for (usize t = 1; t < n_tiles; ++t) {
      earliest[t] = std::min(earliest[t], earliest[t - 1] + hop);
    }
    for (usize t = n_tiles - 1; t-- > 0;) {
      earliest[t] = std::min(earliest[t], earliest[t + 1] + hop);
    }
    for (usize t = 0; t < n_tiles; ++t) {
      f64 bound = cut;
      if (t > 0) {
        bound = std::min(bound, earliest[t - 1] + hop);
      }
      if (t + 1 < n_tiles) {
        bound = std::min(bound, earliest[t + 1] + hop);
      }
      window_end[t] = bound;
    }
    if (pool == nullptr) {
      run_tile(tiles[0], window_end[0], kWindowEventCap);
    } else {
      pool->run_indexed(static_cast<i64>(n_tiles), [&](i64 t) {
        run_tile(tiles[static_cast<usize>(t)], window_end[static_cast<usize>(t)],
                 kWindowEventCap);
      });
      // Barrier: batch cross-tile events into their destination queues,
      // re-homing each payload into the destination tile's arena (the
      // only point where payload bytes cross tiles, single-threaded).
      for (detail::Tile& src_tile : tiles) {
        for (usize dest = 0; dest < src_tile.outbox.size(); ++dest) {
          std::vector<Event>& box = src_tile.outbox[dest];
          if (box.empty()) {
            continue;
          }
          for (Event& event : box) {
            if (event.payload != PayloadArena::kNull) {
              const u32 moved = tiles[dest].arena->clone_from(
                  *src_tile.arena, event.payload, event.payload_words);
              src_tile.arena->free(event.payload);
              event.payload = moved;
            }
          }
          tiles[dest].queue.push_batch(box);
        }
      }
      // Drain trace records up to the new safe watermark in global event
      // order; hold the rest (ties included) for a later window.
      if (tracer_) {
        for (detail::Tile& tile : tiles) {
          held_traces.insert(held_traces.end(), tile.traces.begin(),
                             tile.traces.end());
          tile.traces.clear();
        }
        if (!held_traces.empty()) {
          f64 watermark = std::numeric_limits<f64>::infinity();
          for (const detail::Tile& tile : tiles) {
            if (!tile.queue.empty()) {
              watermark = std::min(watermark, tile.queue.top_time());
            }
          }
          std::sort(held_traces.begin(), held_traces.end(), trace_key_less);
          usize safe = 0;
          while (safe < held_traces.size() &&
                 held_traces[safe].key.time < watermark) {
            tracer_(held_traces[safe].event);
            ++safe;
          }
          held_traces.erase(held_traces.begin(),
                            held_traces.begin() +
                                static_cast<std::ptrdiff_t>(safe));
        }
      }
    }
    u64 after = 0;
    for (const detail::Tile& tile : tiles) {
      after += tile.events_processed;
    }
    if (after == before) {
      // No tile could take a single step (possible only with degenerate
      // zero-hop timings where the lookahead windows collapse): report
      // it as budget exhaustion rather than spinning forever.
      budget_hit = true;
      break;
    }
  }
  // Flush records held back by the watermark (end of run: order is final).
  if (tracer_ && !held_traces.empty()) {
    std::sort(held_traces.begin(), held_traces.end(), trace_key_less);
    for (const detail::Tile::TraceRecord& record : held_traces) {
      tracer_(record.event);
    }
  }
  return finish_run(tiles, budget_hit, max_events);
}

RunReport Fabric::finish_run(std::vector<detail::Tile>& tiles,
                             bool budget_hit, u64 max_events) {
  FaultStats faults;
  u64 traces_emitted = 0;
  u64 run_events = 0;
  for (const detail::Tile& tile : tiles) {
    events_processed_ += tile.events_processed;
    run_events += tile.events_processed;
    tasks_executed_ += tile.tasks_executed;
    horizon_ = std::max(horizon_, tile.horizon);
    faults += tile.faults;
    traces_emitted += tile.traces_emitted;
  }

  // Merge deferred error records (multi-tile runs) in deterministic event
  // order, then apply the global cap. Each tile retained at least its
  // first kMaxRecordedErrors records, so the global first
  // kMaxRecordedErrors are all present.
  std::vector<detail::Tile::ErrorRecord> records;
  for (detail::Tile& tile : tiles) {
    errors_total_ += tile.errors_total;
    std::move(tile.errors.begin(), tile.errors.end(),
              std::back_inserter(records));
    tile.errors.clear();
  }
  std::sort(records.begin(), records.end(),
            [](const detail::Tile::ErrorRecord& a,
               const detail::Tile::ErrorRecord& b) { return a.key < b.key; });
  for (detail::Tile::ErrorRecord& record : records) {
    if (errors_.size() < kMaxRecordedErrors) {
      errors_.push_back(std::move(record.message));
    }
  }
  if (budget_hit) {
    ++errors_total_;
    if (errors_.size() < kMaxRecordedErrors) {
      // The count is evaluated at a deterministic simulated-time
      // checkpoint, so this message is byte-identical for every thread
      // count (see Fabric::run).
      std::ostringstream os;
      os << "event budget exhausted (possible livelock): " << run_events
         << " events processed, budget " << max_events;
      errors_.push_back(os.str());
    }
  }

  // Hazard findings merge exactly like errors: sorted by the emitting
  // event's key, first kMaxRecordedErrors kept, the rest summarized.
  std::vector<detail::Tile::ErrorRecord> hazard_records;
  for (detail::Tile& tile : tiles) {
    hazards_total_ += tile.hazards_total;
    std::move(tile.hazards.begin(), tile.hazards.end(),
              std::back_inserter(hazard_records));
    tile.hazards.clear();
  }
  std::sort(hazard_records.begin(), hazard_records.end(),
            [](const detail::Tile::ErrorRecord& a,
               const detail::Tile::ErrorRecord& b) { return a.key < b.key; });
  for (detail::Tile::ErrorRecord& record : hazard_records) {
    if (hazards_.size() < kMaxRecordedErrors) {
      hazards_.push_back(std::move(record.message));
    }
  }

  RunReport report;
  report.makespan_cycles = horizon_;
  report.events_processed = events_processed_;
  report.tasks_executed = tasks_executed_;
  report.faults = faults;
  report.trace_events_emitted = traces_emitted;
  report.trace_records_dropped = recorder_ != nullptr ? recorder_->dropped() : 0;
  report.errors = errors_;
  report.errors_total = errors_total_;
  if (errors_total_ > errors_.size()) {
    report.errors_suppressed = errors_total_ - errors_.size();
    std::ostringstream os;
    os << "… and " << report.errors_suppressed << " more errors suppressed";
    report.errors.push_back(os.str());
  }
  report.hazards = hazards_;
  report.hazards_total = hazards_total_;
  if (hazards_total_ > hazards_.size()) {
    report.hazards_suppressed = hazards_total_ - hazards_.size();
    std::ostringstream os;
    os << "… and " << report.hazards_suppressed << " more hazards suppressed";
    report.hazards.push_back(os.str());
  }
  u64 pending_count = 0;
  for (const PendingBuffer& waiting : pending_) {
    pending_count += waiting.total;
  }
  if (pending_count > 0) {
    std::ostringstream os;
    os << pending_count
       << " wavelet block(s) stranded in router input buffers "
          "(switch never advanced to accept them):";
    int shown = 0;
    for (i32 y = 0; y < height_ && shown < 8; ++y) {
      for (i32 x = 0; x < width_ && shown < 8; ++x) {
        const PendingBuffer& buf = pending_[static_cast<usize>(index(x, y))];
        for (const PendingBuffer::ColorFifo& fifo : buf.fifos) {
          for (const Event& e : fifo.events) {
            os << " [PE(" << x << ',' << y << ") color "
               << static_cast<int>(e.color.id()) << " from "
               << dir_name(e.from) << (e.control ? " ctrl" : " data")
               << " pos "
               << router(x, y).config(e.color).current_position() << "]";
            if (++shown >= 8) {
              break;
            }
          }
          if (shown >= 8) {
            break;
          }
        }
      }
    }
    report.errors.push_back(os.str());
    ++report.errors_total;
  }
  for (const Pe& p : pes_) {
    if (p.done()) {
      ++report.pes_done;
    }
  }
  if (report.pes_done != pe_count()) {
    std::ostringstream os;
    os << "fabric quiescent but only " << report.pes_done << " of "
       << pe_count() << " PEs signaled done (deadlock or missing data)";
    report.errors.push_back(os.str());
    ++report.errors_total;
  }
  return report;
}

PeCounters Fabric::total_counters() const {
  PeCounters total;
  for (const Pe& p : pes_) {
    total += p.counters();
  }
  return total;
}

u64 Fabric::color_traffic(Color color) const {
  u64 total = 0;
  for (const Router& r : routers_) {
    total += r.traffic_of_color(color);
  }
  return total;
}

obs::PhaseCycles Fabric::total_phase_cycles() const {
  obs::PhaseCycles total;
  for (const Pe& p : pes_) {
    total += p.phase_cycles_;
  }
  return total;
}

usize Fabric::max_memory_used() const {
  usize peak = 0;
  for (const Pe& p : pes_) {
    peak = std::max(peak, p.memory().used());
  }
  return peak;
}

}  // namespace fvf::wse
