#include "wse/fabric.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace fvf::wse {

// ---------------------------------------------------------------------------
// PeApi
// ---------------------------------------------------------------------------

Coord2 PeApi::fabric_size() const noexcept {
  return Coord2{fabric_.width(), fabric_.height()};
}

bool PeApi::has_neighbor(Dir d) const noexcept {
  const Coord2 off = dir_offset(d);
  const i32 nx = pe_.coord().x + off.x;
  const i32 ny = pe_.coord().y + off.y;
  return nx >= 0 && nx < fabric_.width() && ny >= 0 && ny < fabric_.height();
}

void PeApi::send(Color color, std::span<const f32> values) {
  FVF_REQUIRE(!values.empty());
  const f64 serialization =
      static_cast<f64>(values.size()) * fabric_.timings_.cycles_per_wavelet_link;

  Fabric::Event event;
  event.x = pe_.coord().x;
  event.y = pe_.coord().y;
  event.from = Dir::Ramp;
  event.color = color;
  event.payload.reserve(values.size());
  for (const f32 v : values) {
    event.payload.push_back(pack_f32(v));
  }
  // Wormhole model: the event time is when the last wavelet has entered
  // the local router. Injection serializes on the Ramp link.
  const f64 start = std::max(pe_.clock_, pe_.ramp_free_);
  event.time = start + serialization;
  pe_.ramp_free_ = event.time;
  pe_.counters_.wavelets_sent += values.size();

  if (!fabric_.exec_.async_sends) {
    // Blocking-send ablation: the PE stalls for the injection time.
    pe_.clock_ = event.time;
  }
  fabric_.push_event(std::move(event));
}

void PeApi::send(Color color, std::span<const f32> a, std::span<const f32> b) {
  FVF_REQUIRE(!a.empty() || !b.empty());
  const usize n = a.size() + b.size();
  const f64 serialization =
      static_cast<f64>(n) * fabric_.timings_.cycles_per_wavelet_link;

  Fabric::Event event;
  event.x = pe_.coord().x;
  event.y = pe_.coord().y;
  event.from = Dir::Ramp;
  event.color = color;
  event.payload.reserve(n);
  for (const f32 v : a) {
    event.payload.push_back(pack_f32(v));
  }
  for (const f32 v : b) {
    event.payload.push_back(pack_f32(v));
  }
  const f64 start = std::max(pe_.clock_, pe_.ramp_free_);
  event.time = start + serialization;
  pe_.ramp_free_ = event.time;
  pe_.counters_.wavelets_sent += n;
  if (!fabric_.exec_.async_sends) {
    pe_.clock_ = event.time;
  }
  fabric_.push_event(std::move(event));
}

void PeApi::send_control(Color color) {
  Fabric::Event event;
  event.x = pe_.coord().x;
  event.y = pe_.coord().y;
  event.from = Dir::Ramp;
  event.color = color;
  event.control = true;
  event.payload.push_back(0);
  const f64 start = std::max(pe_.clock_, pe_.ramp_free_);
  event.time = start + fabric_.timings_.cycles_per_wavelet_link;
  pe_.ramp_free_ = event.time;
  pe_.counters_.controls_sent += 1;
  if (!fabric_.exec_.async_sends) {
    pe_.clock_ = event.time;
  }
  fabric_.push_event(std::move(event));
}

void PeApi::charge_vector_op(i32 length, u32 loads_per_element) {
  FVF_REQUIRE(length >= 0);
  const FabricTimings& t = fabric_.timings_;
  const f64 issue = fabric_.exec_.vectorized
                        ? t.vector_op_issue_cycles
                        : t.vector_op_issue_cycles * static_cast<f64>(length);
  pe_.clock_ +=
      issue + static_cast<f64>(length) * t.cycles_per_vector_element;
  pe_.counters_.mem_loads += static_cast<u64>(length) * loads_per_element;
  pe_.counters_.mem_stores += static_cast<u64>(length);
}

void PeApi::fmuls(Dsd dest, Dsd a, Dsd b) {
  FVF_REQUIRE(dest.length == a.length && dest.length == b.length);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = a.at(i) * b.at(i);
  }
  pe_.counters_.fmul += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 2);
}

void PeApi::fmuls(Dsd dest, Dsd a, f32 scalar) {
  FVF_REQUIRE(dest.length == a.length);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = a.at(i) * scalar;
  }
  pe_.counters_.fmul += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 2);
}

void PeApi::fadds(Dsd dest, Dsd a, Dsd b) {
  FVF_REQUIRE(dest.length == a.length && dest.length == b.length);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = a.at(i) + b.at(i);
  }
  pe_.counters_.fadd += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 2);
}

void PeApi::fsubs(Dsd dest, Dsd a, Dsd b) {
  FVF_REQUIRE(dest.length == a.length && dest.length == b.length);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = a.at(i) - b.at(i);
  }
  pe_.counters_.fsub += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 2);
}

void PeApi::fsubs(Dsd dest, Dsd a, f32 scalar) {
  FVF_REQUIRE(dest.length == a.length);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = a.at(i) - scalar;
  }
  pe_.counters_.fsub += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 2);
}

void PeApi::fnegs(Dsd dest, Dsd a) {
  FVF_REQUIRE(dest.length == a.length);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = -a.at(i);
  }
  pe_.counters_.fneg += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 1);
}

void PeApi::fmacs(Dsd dest, Dsd a, Dsd b, Dsd c) {
  FVF_REQUIRE(dest.length == a.length && dest.length == b.length &&
              dest.length == c.length);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = a.at(i) * b.at(i) + c.at(i);
  }
  pe_.counters_.fma += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 3);
}

void PeApi::fmacs(Dsd dest, Dsd a, f32 scalar, Dsd c) {
  FVF_REQUIRE(dest.length == a.length && dest.length == c.length);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = a.at(i) * scalar + c.at(i);
  }
  pe_.counters_.fma += static_cast<u64>(dest.length);
  charge_vector_op(dest.length, 3);
}

void PeApi::selects(Dsd dest, Dsd pred, Dsd a, Dsd b) {
  FVF_REQUIRE(dest.length == pred.length && dest.length == a.length &&
              dest.length == b.length);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = pred.at(i) > 0.0f ? a.at(i) : b.at(i);
  }
  // Predicated move: cycles, no FP instruction counts, no Table 4 traffic.
  const FabricTimings& t = fabric_.timings_;
  const f64 issue = fabric_.exec_.vectorized
                        ? t.vector_op_issue_cycles
                        : t.vector_op_issue_cycles * static_cast<f64>(dest.length);
  pe_.clock_ +=
      issue + static_cast<f64>(dest.length) * t.cycles_per_vector_element;
}

void PeApi::fmovs(Dsd dest, FabricDsd src) {
  FVF_REQUIRE(dest.length == src.length);
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = unpack_f32(src.base[i]);
  }
  pe_.counters_.fmov += static_cast<u64>(dest.length);
  pe_.counters_.mem_stores += static_cast<u64>(dest.length);
  pe_.clock_ += static_cast<f64>(dest.length) *
                fabric_.timings_.ramp_cycles_per_wavelet;
}

void PeApi::zeros(Dsd dest) {
  for (i32 i = 0; i < dest.length; ++i) {
    dest.at(i) = 0.0f;
  }
  const FabricTimings& t = fabric_.timings_;
  const f64 issue = fabric_.exec_.vectorized
                        ? t.vector_op_issue_cycles
                        : t.vector_op_issue_cycles * static_cast<f64>(dest.length);
  pe_.clock_ +=
      issue + static_cast<f64>(dest.length) * t.cycles_per_vector_element;
}

void PeApi::scalar_ops(u64 count) {
  pe_.counters_.scalar_misc += count;
  pe_.clock_ += static_cast<f64>(count) * fabric_.timings_.scalar_op_cycles;
}

void PeApi::transcendental_ops(u64 count) {
  pe_.counters_.scalar_misc += count;
  pe_.clock_ += static_cast<f64>(count) * fabric_.timings_.exp_cycles;
}

// ---------------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------------

Fabric::Fabric(i32 width, i32 height, FabricTimings timings,
               usize pe_memory_budget, ExecutionOptions exec)
    : width_(width),
      height_(height),
      timings_(timings),
      exec_(exec),
      memory_budget_(pe_memory_budget) {
  FVF_REQUIRE(width > 0 && height > 0);
  pes_.reserve(static_cast<usize>(pe_count()));
  routers_.resize(static_cast<usize>(pe_count()));
  pending_.resize(static_cast<usize>(pe_count()));
  for (i32 y = 0; y < height_; ++y) {
    for (i32 x = 0; x < width_; ++x) {
      pes_.push_back(std::make_unique<Pe>(Coord2{x, y}, memory_budget_));
    }
  }
}

Pe& Fabric::pe(i32 x, i32 y) {
  FVF_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_);
  return *pes_[static_cast<usize>(index(x, y))];
}

const Pe& Fabric::pe(i32 x, i32 y) const {
  FVF_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_);
  return *pes_[static_cast<usize>(index(x, y))];
}

Router& Fabric::router(i32 x, i32 y) {
  FVF_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_);
  return routers_[static_cast<usize>(index(x, y))];
}

const Router& Fabric::router(i32 x, i32 y) const {
  FVF_REQUIRE(x >= 0 && x < width_ && y >= 0 && y < height_);
  return routers_[static_cast<usize>(index(x, y))];
}

void Fabric::load(const ProgramFactory& factory) {
  FVF_REQUIRE(factory != nullptr);
  for (i32 y = 0; y < height_; ++y) {
    for (i32 x = 0; x < width_; ++x) {
      Pe& p = pe(x, y);
      p.program_ = factory(Coord2{x, y}, Coord2{width_, height_});
      FVF_REQUIRE(p.program_ != nullptr);
      p.program_->configure_router(router(x, y));
    }
  }
}

void Fabric::push_event(Event event) {
  event.seq = next_seq_++;
  horizon_ = std::max(horizon_, event.time);
  queue_.push(std::move(event));
}

void Fabric::record_error(std::string message) {
  if (errors_.size() < 32) {
    errors_.push_back(std::move(message));
  }
}

void Fabric::deliver_to_pe(Pe& target, const Event& event) {
  if (tracer_) {
    tracer_(TraceEvent{TraceKind::TaskStart, event.time, event.x, event.y,
                       event.color, event.from,
                       static_cast<u32>(event.payload.size())});
  }
  // The task starts when both the data has arrived and the PE is free.
  target.clock_ = std::max(target.clock_, event.time) +
                  timings_.task_dispatch_cycles;
  target.counters_.tasks_executed += 1;
  ++tasks_executed_;

  PeApi api(*this, target);
  if (event.start) {
    target.program_->on_start(api);
  } else if (event.control) {
    target.program_->on_control(api, event.color, event.from);
  } else {
    target.counters_.wavelets_received += event.payload.size();
    target.program_->on_data(api, event.color, event.from,
                             std::span<const u32>(event.payload));
  }
  horizon_ = std::max(horizon_, target.clock_);
}

void Fabric::process_event(Event& event) {
  Pe& local = pe(event.x, event.y);
  if (event.start) {
    deliver_to_pe(local, event);
    return;
  }

  Router& rt = router(event.x, event.y);
  const RouteRule* rule = rt.route(event.color, event.from);
  if (rule == nullptr) {
    if (!rt.config(event.color).configured()) {
      std::ostringstream os;
      os << "wavelet on unconfigured color "
         << static_cast<int>(event.color.id()) << " entering PE (" << event.x
         << ',' << event.y << ") from " << dir_name(event.from);
      record_error(os.str());
      return;
    }
    // Backpressure: the current switch position does not accept this
    // input. The wavelet waits in the router's input buffer until a
    // control wavelet advances the switch.
    if (tracer_) {
      tracer_(TraceEvent{TraceKind::Backpressured, event.time, event.x,
                         event.y, event.color, event.from,
                         static_cast<u32>(event.payload.size())});
    }
    const usize idx = static_cast<usize>(index(event.x, event.y));
    FVF_REQUIRE_MSG(pending_[idx].size() < 64,
                    "router input buffer overflow at PE (" << event.x << ','
                                                           << event.y << ")");
    pending_[idx].push_back(std::move(event));
    ++pending_count_;
    return;
  }

  if (tracer_) {
    tracer_(TraceEvent{
        event.control ? TraceKind::ControlRouted : TraceKind::DataRouted,
        event.time, event.x, event.y, event.color, event.from,
        static_cast<u32>(event.payload.size())});
  }

  // Route first (using the pre-advance configuration)...
  for (const Dir out : rule->outputs) {
    if (out == Dir::Ramp) {
      deliver_to_pe(local, event);
      continue;
    }
    const Coord2 off = dir_offset(out);
    const i32 nx = event.x + off.x;
    const i32 ny = event.y + off.y;
    rt.count_output(out, event.payload.size());
    rt.count_color(event.color, event.payload.size());
    if (nx < 0 || nx >= width_ || ny < 0 || ny >= height_) {
      // Traffic leaving the simulated region is absorbed by the reserved
      // boundary layer of the wafer (paper Section 7.1).
      continue;
    }
    Event forwarded;
    forwarded.time = event.time + timings_.hop_latency_cycles;
    forwarded.x = nx;
    forwarded.y = ny;
    forwarded.from = opposite(out);
    forwarded.color = event.color;
    forwarded.control = event.control;
    forwarded.payload = event.payload;  // copy: fan-out may reuse it
    push_event(std::move(forwarded));
  }

  // ...then advance the switch if this was a control wavelet, releasing
  // any wavelets the old position was holding back.
  if (event.control) {
    rt.advance_switch(event.color);
    release_pending(event.x, event.y, event.color, event.time);
  }
}

void Fabric::release_pending(i32 x, i32 y, Color color, f64 not_before) {
  const usize idx = static_cast<usize>(index(x, y));
  std::vector<Event>& waiting = pending_[idx];
  // Re-inject (in FIFO order) the waiting wavelets of this color; they
  // re-resolve against the new switch position.
  std::vector<Event> released;
  for (auto it = waiting.begin(); it != waiting.end();) {
    if (it->color == color) {
      released.push_back(std::move(*it));
      it = waiting.erase(it);
      --pending_count_;
    } else {
      ++it;
    }
  }
  for (Event& event : released) {
    event.time = std::max(event.time, not_before);
    if (tracer_) {
      tracer_(TraceEvent{TraceKind::Released, event.time, event.x, event.y,
                         event.color, event.from,
                         static_cast<u32>(event.payload.size())});
    }
    push_event(std::move(event));
  }
}

RunReport Fabric::run(u64 max_events) {
  // Program-start events, one per PE, in deterministic PE order.
  for (i32 y = 0; y < height_; ++y) {
    for (i32 x = 0; x < width_; ++x) {
      FVF_REQUIRE_MSG(pe(x, y).program_ != nullptr,
                      "Fabric::run called before load()");
      Event start;
      start.time = 0.0;
      start.x = x;
      start.y = y;
      start.start = true;
      push_event(std::move(start));
    }
  }

  while (!queue_.empty()) {
    if (events_processed_ >= max_events) {
      record_error("event budget exhausted (possible livelock)");
      break;
    }
    // priority_queue::top returns const ref; copy out then pop.
    Event event = queue_.top();
    queue_.pop();
    ++events_processed_;
    process_event(event);
  }

  RunReport report;
  report.makespan_cycles = horizon_;
  report.events_processed = events_processed_;
  report.tasks_executed = tasks_executed_;
  report.errors = errors_;
  if (pending_count_ > 0) {
    std::ostringstream os;
    os << pending_count_
       << " wavelet block(s) stranded in router input buffers "
          "(switch never advanced to accept them):";
    int shown = 0;
    for (i32 y = 0; y < height_ && shown < 8; ++y) {
      for (i32 x = 0; x < width_ && shown < 8; ++x) {
        for (const Event& e : pending_[static_cast<usize>(index(x, y))]) {
          os << " [PE(" << x << ',' << y << ") color "
             << static_cast<int>(e.color.id()) << " from "
             << dir_name(e.from) << (e.control ? " ctrl" : " data")
             << " pos "
             << router(x, y).config(e.color).current_position() << "]";
          if (++shown >= 8) {
            break;
          }
        }
      }
    }
    report.errors.push_back(os.str());
  }
  for (const auto& p : pes_) {
    if (p->done()) {
      ++report.pes_done;
    }
  }
  if (report.pes_done != pe_count()) {
    std::ostringstream os;
    os << "fabric quiescent but only " << report.pes_done << " of "
       << pe_count() << " PEs signaled done (deadlock or missing data)";
    report.errors.push_back(os.str());
  }
  return report;
}

PeCounters Fabric::total_counters() const {
  PeCounters total;
  for (const auto& p : pes_) {
    total += p->counters();
  }
  return total;
}

u64 Fabric::color_traffic(Color color) const {
  u64 total = 0;
  for (const Router& r : routers_) {
    total += r.traffic_of_color(color);
  }
  return total;
}

usize Fabric::max_memory_used() const {
  usize peak = 0;
  for (const auto& p : pes_) {
    peak = std::max(peak, p->memory().used());
  }
  return peak;
}

}  // namespace fvf::wse
