/// \file trace.hpp
/// \brief Event tracing for the fabric simulator: every routed block and
///        executed task can be recorded for debugging, visualization, and
///        communication-pattern verification.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "wse/fabric_types.hpp"

namespace fvf::wse {

/// What happened at a traced point.
enum class TraceKind : u8 {
  DataRouted,     ///< data block resolved at a router
  ControlRouted,  ///< control wavelet resolved at a router (pre-advance)
  TaskStart,      ///< PE handler invoked
  Backpressured,  ///< block parked in a router input buffer
  Released,       ///< parked block re-injected after a switch advance
  TimerFired,     ///< a scheduled PE timer (watchdog) delivered
  FaultStall,     ///< injected link stall (extra per-hop delay)
  FaultFlip,      ///< injected payload bit flip on a fabric link
  FaultHalt,      ///< injected transient PE halt (watchdog restarts it)
  ParityDrop,     ///< corrupted block dropped by the Ramp parity check
};

/// One trace record.
struct TraceEvent {
  TraceKind kind = TraceKind::DataRouted;
  f64 time = 0.0;
  i32 x = 0;
  i32 y = 0;
  Color color{};
  Dir from = Dir::Ramp;
  u32 payload_words = 0;
};

/// Callback invoked synchronously from the event loop.
using Tracer = std::function<void(const TraceEvent&)>;

/// Bounded in-memory recorder with text rendering. Two overflow policies:
/// KeepFirst (the historical default) retains the head of the run and
/// drops the tail; KeepLatest is a ring buffer that overwrites the oldest
/// records, retaining the *end* of the run — where faults and NACK
/// retries cluster — at the same memory bound. Either way `dropped()`
/// counts the records lost, so `emitted == size() + dropped()` holds.
class TraceRecorder {
 public:
  enum class Mode : u8 {
    KeepFirst,   ///< stop recording once full; the tail is dropped
    KeepLatest,  ///< ring buffer: overwrite the oldest once full
  };

  explicit TraceRecorder(usize capacity = 1 << 16, Mode mode = Mode::KeepFirst)
      : capacity_(capacity), mode_(mode) {}

  /// The callback to install via Fabric::set_tracer.
  [[nodiscard]] Tracer callback() {
    return [this](const TraceEvent& event) { record(event); };
  }

  void record(const TraceEvent& event) {
    if (events_.size() < capacity_) {
      events_.push_back(event);
      return;
    }
    ++dropped_;
    if (mode_ == Mode::KeepLatest && capacity_ > 0) {
      events_[head_] = event;
      head_ = (head_ + 1) % capacity_;
    }
  }

  /// Retained records in chronological order (a snapshot copy: the ring
  /// is unrolled so index 0 is always the oldest retained event).
  [[nodiscard]] std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    for (usize i = 0; i < events_.size(); ++i) {
      out.push_back(at(i));
    }
    return out;
  }
  [[nodiscard]] usize size() const noexcept { return events_.size(); }
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  /// Records lost to the capacity bound (the tail in KeepFirst mode, the
  /// overwritten head in KeepLatest mode).
  [[nodiscard]] u64 dropped() const noexcept { return dropped_; }

  /// Count of retained events of one kind.
  [[nodiscard]] usize count(TraceKind kind) const noexcept {
    usize n = 0;
    for (const TraceEvent& e : events_) {
      n += (e.kind == kind);
    }
    return n;
  }

  /// Human-readable timeline (one line per event, capped).
  [[nodiscard]] std::string render(usize max_lines = 200) const;

 private:
  /// The i-th retained record in chronological order.
  [[nodiscard]] const TraceEvent& at(usize i) const noexcept {
    return events_[(head_ + i) % events_.size()];
  }

  usize capacity_;
  Mode mode_;
  std::vector<TraceEvent> events_;
  /// KeepLatest ring cursor: the oldest retained record (== next slot to
  /// overwrite). Stays 0 until the buffer wraps, so `at` is the identity
  /// for partially filled recorders of either mode.
  usize head_ = 0;
  u64 dropped_ = 0;
};

[[nodiscard]] std::string_view trace_kind_name(TraceKind kind) noexcept;

}  // namespace fvf::wse
