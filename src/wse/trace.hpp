/// \file trace.hpp
/// \brief Event tracing for the fabric simulator: every routed block and
///        executed task can be recorded for debugging, visualization, and
///        communication-pattern verification.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "wse/fabric_types.hpp"

namespace fvf::wse {

/// What happened at a traced point.
enum class TraceKind : u8 {
  DataRouted,     ///< data block resolved at a router
  ControlRouted,  ///< control wavelet resolved at a router (pre-advance)
  TaskStart,      ///< PE handler invoked
  Backpressured,  ///< block parked in a router input buffer
  Released,       ///< parked block re-injected after a switch advance
  TimerFired,     ///< a scheduled PE timer (watchdog) delivered
  FaultStall,     ///< injected link stall (extra per-hop delay)
  FaultFlip,      ///< injected payload bit flip on a fabric link
  FaultHalt,      ///< injected transient PE halt (watchdog restarts it)
  ParityDrop,     ///< corrupted block dropped by the Ramp parity check
};

/// One trace record.
struct TraceEvent {
  TraceKind kind = TraceKind::DataRouted;
  f64 time = 0.0;
  i32 x = 0;
  i32 y = 0;
  Color color{};
  Dir from = Dir::Ramp;
  u32 payload_words = 0;
};

/// Callback invoked synchronously from the event loop.
using Tracer = std::function<void(const TraceEvent&)>;

/// Bounded in-memory recorder with text rendering.
class TraceRecorder {
 public:
  explicit TraceRecorder(usize capacity = 1 << 16) : capacity_(capacity) {}

  /// The callback to install via Fabric::set_tracer.
  [[nodiscard]] Tracer callback() {
    return [this](const TraceEvent& event) { record(event); };
  }

  void record(const TraceEvent& event) {
    if (events_.size() < capacity_) {
      events_.push_back(event);
    } else {
      ++dropped_;
    }
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] u64 dropped() const noexcept { return dropped_; }

  /// Count of events of one kind.
  [[nodiscard]] usize count(TraceKind kind) const noexcept {
    usize n = 0;
    for (const TraceEvent& e : events_) {
      n += (e.kind == kind);
    }
    return n;
  }

  /// Human-readable timeline (one line per event, capped).
  [[nodiscard]] std::string render(usize max_lines = 200) const;

 private:
  usize capacity_;
  std::vector<TraceEvent> events_;
  u64 dropped_ = 0;
};

[[nodiscard]] std::string_view trace_kind_name(TraceKind kind) noexcept;

}  // namespace fvf::wse
