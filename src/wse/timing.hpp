/// \file timing.hpp
/// \brief Cycle-cost model of the simulated wafer-scale engine.
///
/// The discrete-event simulation advances a cycle clock; these constants
/// say how many cycles each primitive costs. Defaults are calibrated so
/// the TPFA dataflow program reproduces the performance *shape* the paper
/// reports on the real CS-2 (see EXPERIMENTS.md): a ~75/25 compute/
/// communication split at Nz=246 (Table 3) and flat per-PE time under
/// weak scaling (Table 2).
#pragma once

#include "common/types.hpp"

namespace fvf::wse {

struct FabricTimings {
  /// Core clock. The WSE-2 runs at ~850 MHz.
  f64 clock_hz = 850.0e6;

  /// Issue overhead of one DSD (vector) instruction, independent of length.
  f64 vector_op_issue_cycles = 4.0;

  /// Per-element cost of a DSD op. The PE has 2-wide f32 SIMD, but real
  /// kernels see sequencing overheads; 1.3 cycles/element reproduces the
  /// ~215 cycles/cell the paper's Table 1+3 numbers imply.
  f64 cycles_per_vector_element = 1.45;

  /// Cost of one scalar FP/transcendental operation (EOS exponential).
  f64 scalar_op_cycles = 1.0;
  f64 exp_cycles = 18.0;

  /// Serialization: cycles per 32-bit wavelet crossing one link.
  f64 cycles_per_wavelet_link = 3.4;

  /// Router traversal latency added per hop (head of the block).
  f64 hop_latency_cycles = 3.0;

  /// Cost per wavelet moved between fabric and PE memory (FMOV).
  f64 ramp_cycles_per_wavelet = 1.25;

  /// Fixed cost of activating a task on a PE (dataflow dispatch).
  f64 task_dispatch_cycles = 12.0;

  [[nodiscard]] f64 seconds(f64 cycles) const noexcept {
    return cycles / clock_hz;
  }
};

}  // namespace fvf::wse
