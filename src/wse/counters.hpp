/// \file counters.hpp
/// \brief Per-PE instruction, traffic, and cycle counters.
#pragma once

#include "common/types.hpp"

namespace fvf::wse {

/// Everything a PE counts while executing its program. Vector (DSD) ops
/// count once per *element* processed, matching the paper's per-cell
/// accounting in Table 4.
struct PeCounters {
  // Floating-point instruction classes (per element).
  u64 fmul = 0;
  u64 fsub = 0;
  u64 fneg = 0;
  u64 fadd = 0;
  u64 fma = 0;
  /// FMOV: one 32-bit word moved from the fabric into local memory.
  u64 fmov = 0;
  /// Scalar transcendental/other ops outside the Table 4 classes (EOS exp).
  u64 scalar_misc = 0;

  // Memory traffic implied by the Table 4 cost model (32-bit words).
  u64 mem_loads = 0;
  u64 mem_stores = 0;

  // Fabric traffic.
  u64 wavelets_sent = 0;
  u64 wavelets_received = 0;
  u64 controls_sent = 0;

  // Scheduling.
  u64 tasks_executed = 0;

  [[nodiscard]] constexpr u64 flops() const noexcept {
    return fmul + fsub + fneg + fadd + 2 * fma;
  }
  [[nodiscard]] constexpr u64 fp_instruction_elements() const noexcept {
    return fmul + fsub + fneg + fadd + fma;
  }
  [[nodiscard]] constexpr u64 mem_accesses() const noexcept {
    return mem_loads + mem_stores;
  }
  [[nodiscard]] constexpr u64 mem_bytes() const noexcept {
    return 4 * mem_accesses();
  }
  [[nodiscard]] constexpr u64 fabric_load_bytes() const noexcept {
    return 4 * fmov;
  }

  constexpr PeCounters& operator+=(const PeCounters& o) noexcept {
    fmul += o.fmul;
    fsub += o.fsub;
    fneg += o.fneg;
    fadd += o.fadd;
    fma += o.fma;
    fmov += o.fmov;
    scalar_misc += o.scalar_misc;
    mem_loads += o.mem_loads;
    mem_stores += o.mem_stores;
    wavelets_sent += o.wavelets_sent;
    wavelets_received += o.wavelets_received;
    controls_sent += o.controls_sent;
    tasks_executed += o.tasks_executed;
    return *this;
  }
};

}  // namespace fvf::wse
