/// \file dsd.hpp
/// \brief Data Structure Descriptors: the WSE's vector registers.
///
/// A DSD describes an array (base address, length, stride) that a single
/// vectorized instruction streams through (paper Section 5.3.3). The
/// simulator executes DSD operations element-wise on the PE's private
/// memory while charging per-element instruction counts and cycles.
#pragma once

#include <span>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace fvf::wse {

/// A view over f32 elements of a PE's private memory.
struct Dsd {
  f32* base = nullptr;
  i32 length = 0;
  i32 stride = 1;

  [[nodiscard]] static Dsd of(std::span<f32> memory) noexcept {
    return Dsd{memory.data(), static_cast<i32>(memory.size()), 1};
  }

  /// Sub-view starting at `offset` with `count` elements (unit stride).
  [[nodiscard]] Dsd window(i32 offset, i32 count) const noexcept {
    FVF_ASSERT(offset >= 0 && count >= 0);
    FVF_ASSERT(stride == 1);
    FVF_ASSERT(offset + count <= length);
    return Dsd{base + offset, count, 1};
  }

  [[nodiscard]] f32& at(i32 i) const noexcept {
    FVF_ASSERT(i >= 0 && i < length);
    return base[static_cast<i64>(i) * stride];
  }
};

/// A read-only DSD over received fabric data (u32 wavelets holding f32).
struct FabricDsd {
  const u32* base = nullptr;
  i32 length = 0;

  [[nodiscard]] static FabricDsd of(std::span<const u32> data) noexcept {
    return FabricDsd{data.data(), static_cast<i32>(data.size())};
  }

  [[nodiscard]] FabricDsd window(i32 offset, i32 count) const noexcept {
    FVF_ASSERT(offset >= 0 && count >= 0 && offset + count <= length);
    return FabricDsd{base + offset, count};
  }
};

}  // namespace fvf::wse
