/// \file fault.hpp
/// \brief Deterministic, seeded fault injection for the simulated fabric.
///
/// A production wafer is not a perfectly reliable machine: fabric links
/// glitch, wavelets pick up single-event upsets, and PEs transiently
/// halt. The FaultModel injects three such fault classes into the event
/// engine so the detection/recovery machinery (parity tagging, per-PE
/// watchdogs, the halo-exchange retransmit protocol) can be exercised and
/// *proved* correct:
///
///   - **Link stall**: a fabric link holds a block for extra cycles.
///     Stalls delay the whole link (FIFO order is preserved — a stalled
///     link stalls everything queued behind it), so they perturb timing
///     but never data. The dataflow protocols absorb them; the fabric
///     counts each one recovered when the delayed block is processed.
///   - **Payload bit-flip**: one bit of one wavelet of a forwarded data
///     block is inverted (single-event-upset model: at most one flip per
///     block instance). Every block carries the parity word stamped at
///     injection; the destination router checks it on Ramp delivery and
///     *drops* corrupted blocks (detection). Recovery is protocol-level:
///     the halo exchange NACKs and retransmits missing blocks.
///   - **Transient PE halt**: a PE freezes just before dispatching a
///     task. The per-PE watchdog notices the hung dispatch and restarts
///     it after `halt_cycles` — the fault costs latency, never data.
///
/// Determinism: every decision is a pure hash of (seed, fault class, the
/// triggering event's birth key, output link). Birth keys — the
/// (source location, per-location sequence) pairs the deterministic
/// parallel engine orders events by — are identical for every `--threads`
/// value, so a given seed/rate scenario is bit-for-bit reproducible
/// across thread counts. No shared RNG stream exists to race on.
#pragma once

#include <span>

#include "wse/fabric_types.hpp"

namespace fvf::wse {

/// Fault-injection configuration. All rates are probabilities in [0, 1];
/// the default (all zero) injects nothing and leaves the engine
/// bit-identical to a build without the fault model.
struct FaultConfig {
  /// Seed of the fault scenario. Two runs with the same seed, rates, and
  /// workload observe the identical fault sequence.
  u64 seed = 0;

  /// Probability that a forwarded block stalls its link (per block/hop).
  f64 link_stall_rate = 0.0;
  /// Probability that a forwarded data block suffers a bit flip (per
  /// block/hop; control wavelets are assumed protected by hardware
  /// redundancy and are never corrupted).
  f64 bit_flip_rate = 0.0;
  /// Probability that a task dispatch transiently halts its PE.
  f64 pe_halt_rate = 0.0;

  /// Extra cycles a stalled link holds the block (and its FIFO tail).
  f64 stall_cycles = 96.0;
  /// Cycles the watchdog needs to notice and restart a halted PE.
  f64 halt_cycles = 768.0;

  /// Colors eligible for bit flips (bit c = Color{c}); campaigns can
  /// target one traffic class. Stalls and halts ignore the mask.
  u32 flip_color_mask = 0xFFFF'FFFFu;

  /// True when any fault class can fire. A disabled model leaves every
  /// field, counter, trace, and report bit-identical to a fault-free run.
  [[nodiscard]] bool enabled() const noexcept {
    return link_stall_rate > 0.0 || bit_flip_rate > 0.0 || pe_halt_rate > 0.0;
  }

  /// Convenience: one seed, the same rate for all three classes (the
  /// `--fault-seed` / `--fault-rate` command-line surface).
  [[nodiscard]] static FaultConfig uniform(u64 seed, f64 rate) noexcept {
    FaultConfig config;
    config.seed = seed;
    config.link_stall_rate = rate;
    config.bit_flip_rate = rate;
    config.pe_halt_rate = rate;
    return config;
  }
};

/// Per-run fault accounting, summed over tiles in finish_run. The
/// reported outcome buckets partition the injected faults:
///
///   injected() == detected + recovered + unrecovered   (RunReport)
///
///   recovered   — fault masked: stalls absorbed by the dataflow slack,
///                 halts restarted by the watchdog, dropped blocks made
///                 up by a protocol retransmission.
///   detected    — corrupted block dropped by the parity check but never
///                 made up (no retransmit protocol, or retries
///                 exhausted); the run is flagged, results untrusted.
///   unrecovered — fault still in flight at an aborted (budget-hit) run,
///                 or a corrupted block stranded in a router buffer.
struct FaultStats {
  u64 stalls_injected = 0;
  u64 flips_injected = 0;
  u64 halts_injected = 0;

  /// Stalled blocks whose delayed delivery was processed.
  u64 stalls_absorbed = 0;
  /// Corrupted blocks dropped by the parity check at a Ramp.
  u64 flips_dropped = 0;
  /// Protocol-reported retransmission recoveries (PeApi).
  u64 flips_recovered = 0;
  /// Halted dispatches restarted by the per-PE watchdog.
  u64 halts_resumed = 0;

  [[nodiscard]] constexpr u64 injected() const noexcept {
    return stalls_injected + flips_injected + halts_injected;
  }
  [[nodiscard]] constexpr u64 detected() const noexcept {
    return flips_dropped - recovered_flips();
  }
  [[nodiscard]] constexpr u64 recovered() const noexcept {
    return stalls_absorbed + halts_resumed + recovered_flips();
  }
  [[nodiscard]] constexpr u64 unrecovered() const noexcept {
    return (stalls_injected - stalls_absorbed) +
           (halts_injected - halts_resumed) + (flips_injected - flips_dropped);
  }

  constexpr FaultStats& operator+=(const FaultStats& o) noexcept {
    stalls_injected += o.stalls_injected;
    flips_injected += o.flips_injected;
    halts_injected += o.halts_injected;
    stalls_absorbed += o.stalls_absorbed;
    flips_dropped += o.flips_dropped;
    flips_recovered += o.flips_recovered;
    halts_resumed += o.halts_resumed;
    return *this;
  }

 private:
  /// A spurious NACK (the original block was stalled, not dropped) can
  /// over-report protocol recoveries; clamp so the partition holds.
  [[nodiscard]] constexpr u64 recovered_flips() const noexcept {
    return flips_recovered < flips_dropped ? flips_recovered : flips_dropped;
  }
};

/// The decision oracle: pure hash-based draws, no mutable state.
class FaultModel {
 public:
  FaultModel() = default;
  explicit FaultModel(FaultConfig config);

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled(); }
  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

  /// Does the block born as (src, seq) stall crossing link `out`?
  [[nodiscard]] bool stall_link(i64 src, u64 seq, Dir out) const noexcept;

  /// Does the data block born as (src, seq) corrupt crossing link `out`?
  /// On true, `word`/`bit` select the flipped payload bit.
  [[nodiscard]] bool flip_bit(i64 src, u64 seq, Dir out, Color color,
                              usize payload_words, usize* word,
                              u32* bit) const noexcept;

  /// Does delivering the event born as (src, seq) halt its PE?
  [[nodiscard]] bool halt_pe(i64 src, u64 seq) const noexcept;

  [[nodiscard]] f64 stall_cycles() const noexcept {
    return config_.stall_cycles;
  }
  [[nodiscard]] f64 halt_cycles() const noexcept { return config_.halt_cycles; }

 private:
  /// One deterministic draw for (class salt, birth key, link).
  [[nodiscard]] u64 draw(u64 salt, i64 src, u64 seq, u64 extra) const noexcept;

  FaultConfig config_{};
  u64 stall_threshold_ = 0;
  u64 flip_threshold_ = 0;
  u64 halt_threshold_ = 0;
};

/// XOR parity word of a wavelet block, stamped at injection and checked
/// at Ramp delivery; detects any single-bit upset (see router.hpp for the
/// drop accounting on the router side).
[[nodiscard]] inline u32 block_parity(std::span<const u32> payload) noexcept {
  u32 parity = 0;
  for (const u32 word : payload) {
    parity ^= word;
  }
  return parity;
}

}  // namespace fvf::wse
