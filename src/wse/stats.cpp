#include "wse/stats.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"

namespace fvf::wse {

FabricUtilization analyze_utilization(const Fabric& fabric,
                                      const RunReport& report) {
  FabricUtilization u;
  u.makespan_cycles = report.makespan_cycles;

  f64 total = 0.0;
  bool first = true;
  for (i32 y = 0; y < fabric.height(); ++y) {
    for (i32 x = 0; x < fabric.width(); ++x) {
      const f64 cycles = fabric.pe(x, y).clock();
      total += cycles;
      if (first) {
        u.max_pe_cycles = cycles;
        u.min_pe_cycles = cycles;
        first = false;
      } else {
        u.max_pe_cycles = std::max(u.max_pe_cycles, cycles);
        u.min_pe_cycles = std::min(u.min_pe_cycles, cycles);
      }
      const u64 traffic = fabric.router(x, y).total_fabric_traffic();
      u.total_link_wavelets += traffic;
      if (traffic > u.max_router_wavelets) {
        u.max_router_wavelets = traffic;
        u.busiest_router = Coord2{x, y};
      }
    }
  }
  const f64 pes = static_cast<f64>(fabric.pe_count());
  u.mean_pe_cycles = total / pes;
  // A zero-cycle run has no load to balance: report 0 (the struct's
  // "no work" sentinel) rather than 1.0, which would claim the degenerate
  // run was perfectly balanced.
  u.imbalance =
      u.mean_pe_cycles > 0.0 ? u.max_pe_cycles / u.mean_pe_cycles : 0.0;
  u.mean_utilization = u.makespan_cycles > 0.0
                           ? u.mean_pe_cycles / u.makespan_cycles
                           : 0.0;
  return u;
}

std::string render_load_map(const Fabric& fabric, i32 max_width) {
  FVF_REQUIRE(max_width >= 4);
  // Down-sample the fabric to at most max_width columns.
  const i32 step_x = std::max(1, (fabric.width() + max_width - 1) / max_width);
  const i32 step_y = step_x;  // keep aspect ratio

  f64 hottest = 0.0;
  for (i32 y = 0; y < fabric.height(); ++y) {
    for (i32 x = 0; x < fabric.width(); ++x) {
      hottest = std::max(hottest, fabric.pe(x, y).clock());
    }
  }
  constexpr std::string_view kRamp = ".:-=+*%#";

  std::ostringstream os;
  for (i32 y0 = fabric.height() - 1; y0 >= 0; y0 -= step_y) {
    os << "  ";
    for (i32 x0 = 0; x0 < fabric.width(); x0 += step_x) {
      // Cell value: max busy cycles in the down-sampled tile.
      f64 v = 0.0;
      for (i32 y = std::max(0, y0 - step_y + 1); y <= y0; ++y) {
        for (i32 x = x0; x < std::min(fabric.width(), x0 + step_x); ++x) {
          v = std::max(v, fabric.pe(x, y).clock());
        }
      }
      const usize level =
          hottest > 0.0
              ? std::min(kRamp.size() - 1,
                         static_cast<usize>(v / hottest *
                                            static_cast<f64>(kRamp.size())))
              : 0;
      os << kRamp[level];
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace fvf::wse
