/// \file hazard.hpp
/// \brief Dynamic in-PE memory hazard detection (`--hazard-check`): the
///        race-detector analogue for the dataflow machine.
///
/// The simulator's DSD operations execute element-wise over views of a
/// PE's private memory. Two classes of silent-corruption bugs live there:
///
///   1. *Partial dest/source overlap inside one instruction.* Exact
///      aliasing (dest is the same view as a source) is well defined —
///      element i reads only index i of each operand before writing it —
///      and the shipped kernels use it deliberately for memory reuse. A
///      *shifted* overlap is not: later iterations read elements the same
///      instruction already overwrote.
///   2. *Receive into a live buffer.* A handler keeps a view of a receive
///      buffer across tasks (HaloExchange hands out such views) while a
///      later fabric delivery (fmovs) overwrites the buffer underneath
///      it.
///
/// When ExecutionOptions::hazard_check is on, every DSD operation checks
/// its operands, and fmovs additionally checks its destination against
/// the ranges programs marked live via PeApi::hazard_mark_live. The
/// checks are pure observation — no clock, counter, or event-order
/// effect — so checked runs are bit-identical to unchecked ones; off (the
/// default) skips every lookup.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wse/dsd.hpp"

namespace fvf::wse {

/// Half-open byte range of PE memory covered by a DSD operand.
struct MemRange {
  std::uintptr_t begin = 0;
  std::uintptr_t end = 0;

  [[nodiscard]] bool empty() const noexcept { return begin >= end; }
};

/// Byte footprint of a DSD view (conservative for stride > 1: the whole
/// span from the first to the last touched element).
[[nodiscard]] inline MemRange range_of(Dsd d) noexcept {
  const auto base = reinterpret_cast<std::uintptr_t>(d.base);
  if (d.base == nullptr || d.length <= 0) {
    return MemRange{base, base};
  }
  const auto last = static_cast<std::uintptr_t>(d.length - 1) *
                    static_cast<std::uintptr_t>(d.stride > 0 ? d.stride : 1);
  return MemRange{base, base + (last + 1) * sizeof(f32)};
}

[[nodiscard]] inline bool ranges_overlap(MemRange a, MemRange b) noexcept {
  return !a.empty() && !b.empty() && a.begin < b.end && b.begin < a.end;
}

/// Exact aliasing: the two views are the *same* view (base, length,
/// stride). dest[i] then reads only index i of the source before writing
/// it — the element-wise loops are well defined, and the shipped kernels
/// rely on this for in-place updates (e.g. `fadds(acc, acc, operand)`).
[[nodiscard]] inline bool dsd_identical(Dsd a, Dsd b) noexcept {
  return a.base == b.base && a.length == b.length && a.stride == b.stride;
}

/// The hazardous case: operands overlap but are not exactly aliased.
[[nodiscard]] inline bool partial_overlap(Dsd dest, Dsd src) noexcept {
  return ranges_overlap(range_of(dest), range_of(src)) &&
         !dsd_identical(dest, src);
}

/// Per-PE detector state. Allocated only when hazard_check is on and only
/// touched by the tile that owns the PE's row, so parallel runs report
/// hazards identically to serial ones.
struct HazardState {
  struct LiveRange {
    MemRange range;
    std::string label;
  };

  /// Buffer views currently handed out to program code
  /// (PeApi::hazard_mark_live / hazard_release).
  std::vector<LiveRange> live;
  /// Tasks dispatched on this PE so far — the "dispatch epoch" hazard
  /// messages reference, so a report pinpoints *which* task collided.
  u64 epoch = 0;
};

}  // namespace fvf::wse
