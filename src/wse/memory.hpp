/// \file memory.hpp
/// \brief Per-PE private memory arena with a hard byte budget.
///
/// Each WSE-2 PE owns 48 KiB of single-level local SRAM holding code,
/// data, and communication buffers. Section 5.3.1 of the paper stresses
/// that minimising per-PE memory is what lets the largest problems fit;
/// this arena enforces the budget and records a tagged breakdown so the
/// memory-reuse ablation can report exactly what was saved.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace fvf::wse {

/// One tagged allocation record.
struct AllocationRecord {
  std::string tag;
  usize bytes = 0;
};

/// Bump allocator over a fixed-size private memory. Allocations are
/// permanent for the lifetime of a program (matching the static buffer
/// allocation style of CSL kernels); the *reuse* optimisation is expressed
/// by allocating one buffer and using it for several purposes.
class PeMemory {
 public:
  /// WSE-2 PEs have 48 KiB of local memory.
  static constexpr usize kDefaultBudget = 48 * 1024;

  explicit PeMemory(usize budget_bytes = kDefaultBudget)
      : budget_(budget_bytes) {}

  /// Allocates `count` f32 words, 4-byte aligned, tagged for reporting.
  [[nodiscard]] std::span<f32> alloc_f32(usize count, std::string tag) {
    return std::span<f32>(
        static_cast<f32*>(alloc_raw(count * sizeof(f32), std::move(tag))),
        count);
  }

  [[nodiscard]] std::span<u32> alloc_u32(usize count, std::string tag) {
    return std::span<u32>(
        static_cast<u32*>(alloc_raw(count * sizeof(u32), std::move(tag))),
        count);
  }

  /// Reserves bytes without handing out a pointer (models the footprint
  /// of code/runtime structures).
  void reserve(usize bytes, std::string tag) {
    FVF_REQUIRE_MSG(used_ + bytes <= budget_,
                    "PE memory budget exceeded reserving '"
                        << tag << "': " << used_ + bytes << " > " << budget_);
    used_ += bytes;
    records_.push_back(AllocationRecord{std::move(tag), bytes});
  }

  [[nodiscard]] usize budget() const noexcept { return budget_; }
  [[nodiscard]] usize used() const noexcept { return used_; }
  [[nodiscard]] usize available() const noexcept { return budget_ - used_; }
  [[nodiscard]] const std::vector<AllocationRecord>& records() const noexcept {
    return records_;
  }

 private:
  [[nodiscard]] void* alloc_raw(usize bytes, std::string tag) {
    FVF_REQUIRE_MSG(used_ + bytes <= budget_,
                    "PE memory budget exceeded allocating '"
                        << tag << "': " << used_ + bytes << " > " << budget_);
    used_ += bytes;
    records_.push_back(AllocationRecord{std::move(tag), bytes});
    // Backing storage: one chunk per allocation keeps pointers stable.
    chunks_.emplace_back(bytes, std::byte{0});
    return chunks_.back().data();
  }

  usize budget_;
  usize used_ = 0;
  std::vector<AllocationRecord> records_;
  std::vector<std::vector<std::byte>> chunks_;
};

}  // namespace fvf::wse
