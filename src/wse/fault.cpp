#include "wse/fault.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace fvf::wse {

namespace {

/// Distinct salts keep the three fault classes' draws independent even
/// when they share a seed and a triggering event.
constexpr u64 kStallSalt = 0x5354414C4C5F4C4BULL;  // "STALL_LK"
constexpr u64 kFlipSalt = 0x464C49505F424954ULL;   // "FLIP_BIT"
constexpr u64 kHaltSalt = 0x48414C545F5F5045ULL;   // "HALT__PE"
constexpr u64 kSiteSalt = 0x464C49505F534954ULL;   // "FLIP_SIT"

/// rate in [0, 1] -> accept threshold on a uniform u64 draw.
u64 rate_threshold(f64 rate) noexcept {
  if (rate <= 0.0) {
    return 0;
  }
  if (rate >= 1.0) {
    return ~0ULL;
  }
  return static_cast<u64>(std::ldexp(rate, 64));
}

}  // namespace

FaultModel::FaultModel(FaultConfig config) : config_(config) {
  FVF_REQUIRE(config.link_stall_rate >= 0.0 && config.link_stall_rate <= 1.0);
  FVF_REQUIRE(config.bit_flip_rate >= 0.0 && config.bit_flip_rate <= 1.0);
  FVF_REQUIRE(config.pe_halt_rate >= 0.0 && config.pe_halt_rate <= 1.0);
  FVF_REQUIRE(config.stall_cycles > 0.0);
  FVF_REQUIRE(config.halt_cycles > 0.0);
  stall_threshold_ = rate_threshold(config.link_stall_rate);
  flip_threshold_ = rate_threshold(config.bit_flip_rate);
  halt_threshold_ = rate_threshold(config.pe_halt_rate);
}

u64 FaultModel::draw(u64 salt, i64 src, u64 seq, u64 extra) const noexcept {
  // Two SplitMix64 steps over the mixed key: cheap, stateless, and
  // avalanche enough that per-class/per-link streams are uncorrelated.
  SplitMix64 mix(config_.seed ^ salt);
  u64 key = mix.next() ^ (static_cast<u64>(src) * 0x9E3779B97F4A7C15ULL);
  key ^= seq + 0x632BE59BD9B4E019ULL + (key << 6) + (key >> 2);
  key ^= extra * 0xD1B54A32D192ED03ULL;
  SplitMix64 fold(key);
  return fold.next();
}

bool FaultModel::stall_link(i64 src, u64 seq, Dir out) const noexcept {
  if (stall_threshold_ == 0) {
    return false;
  }
  return draw(kStallSalt, src, seq, static_cast<u64>(out)) < stall_threshold_;
}

bool FaultModel::flip_bit(i64 src, u64 seq, Dir out, Color color,
                          usize payload_words, usize* word,
                          u32* bit) const noexcept {
  if (flip_threshold_ == 0 || payload_words == 0) {
    return false;
  }
  if ((config_.flip_color_mask & (1u << color.id())) == 0) {
    return false;
  }
  if (draw(kFlipSalt, src, seq, static_cast<u64>(out)) >= flip_threshold_) {
    return false;
  }
  // An independent draw picks the upset site so the flipped bit does not
  // correlate with the accept decision.
  const u64 site = draw(kSiteSalt, src, seq, static_cast<u64>(out));
  *word = static_cast<usize>((site >> 5) % payload_words);
  *bit = static_cast<u32>(site & 31u);
  return true;
}

bool FaultModel::halt_pe(i64 src, u64 seq) const noexcept {
  if (halt_threshold_ == 0) {
    return false;
  }
  return draw(kHaltSalt, src, seq, 0) < halt_threshold_;
}

}  // namespace fvf::wse
