/// \file newton.hpp
/// \brief Newton's method with backtracking line search over the
///        matrix-free FlowOperator, using a Krylov solver for the linear
///        systems.
#pragma once

#include "solver/flow_operator.hpp"
#include "solver/krylov.hpp"

namespace fvf::solver {

/// Which Krylov method solves the Newton linear systems.
enum class LinearSolverKind { BiCGStab, Gmres, ConjugateGradient };

/// Preconditioner for the Newton linear systems.
enum class PreconditionerKind {
  None,
  Jacobi,  ///< analytic Jacobian diagonal (matrix-free)
  Ilu0,    ///< ILU(0) of the assembled analytic Jacobian
};

struct NewtonOptions {
  i32 max_iterations = 25;
  f64 residual_tolerance = 1e-6;  ///< on ||R||_2 relative to first iterate
  f64 absolute_tolerance = 1e-12;
  i32 max_line_search_steps = 8;
  LinearSolverKind linear_solver = LinearSolverKind::BiCGStab;
  KrylovOptions krylov{};
  PreconditionerKind preconditioner = PreconditionerKind::Jacobi;
};

struct NewtonResult {
  bool converged = false;
  i32 iterations = 0;
  i32 total_linear_iterations = 0;
  f64 initial_residual_norm = 0.0;
  f64 final_residual_norm = 0.0;
};

/// Solves R(p) = 0 for the implicit time step, starting from `pressure`
/// (updated in place).
[[nodiscard]] NewtonResult newton_solve(const FlowOperator& op,
                                        std::span<f64> pressure,
                                        const NewtonOptions& options);

}  // namespace fvf::solver
