/// \file krylov.hpp
/// \brief Matrix-free Krylov solvers: CG, BiCGStab, and restarted GMRES,
///        with optional diagonal (Jacobi) preconditioning.
///
/// Operators are callables `apply(v, out)` so the FlowOperator's analytic
/// Jacobian-vector product plugs in directly — no matrix is ever formed,
/// matching the matrix-free direction of the paper's Discussion section.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fvf::solver {

/// A linear operator y = A x.
using LinearOperator =
    std::function<void(std::span<const f64>, std::span<f64>)>;

/// Solver configuration.
struct KrylovOptions {
  i32 max_iterations = 500;
  f64 relative_tolerance = 1e-8;
  f64 absolute_tolerance = 1e-30;
  i32 gmres_restart = 30;
};

/// Convergence report.
struct KrylovResult {
  bool converged = false;
  i32 iterations = 0;
  f64 final_residual_norm = 0.0;
  f64 initial_residual_norm = 0.0;
};

/// Conjugate gradients (requires A symmetric positive definite — holds for
/// the incompressible-limit pressure operator on a flat mesh).
[[nodiscard]] KrylovResult conjugate_gradient(const LinearOperator& a,
                                              std::span<const f64> rhs,
                                              std::span<f64> x,
                                              const KrylovOptions& options,
                                              const LinearOperator& precond = {});

/// BiCGStab (general nonsymmetric systems; the workhorse for the upwinded
/// TPFA Jacobian).
[[nodiscard]] KrylovResult bicgstab(const LinearOperator& a,
                                    std::span<const f64> rhs,
                                    std::span<f64> x,
                                    const KrylovOptions& options,
                                    const LinearOperator& precond = {});

/// Restarted GMRES(m) with modified Gram-Schmidt.
[[nodiscard]] KrylovResult gmres(const LinearOperator& a,
                                 std::span<const f64> rhs, std::span<f64> x,
                                 const KrylovOptions& options,
                                 const LinearOperator& precond = {});

/// Builds a Jacobi preconditioner M^{-1} v = v ./ diag from a diagonal.
[[nodiscard]] LinearOperator make_jacobi_preconditioner(
    std::vector<f64> diagonal);

}  // namespace fvf::solver
