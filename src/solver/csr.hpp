/// \file csr.hpp
/// \brief Compressed-sparse-row matrices for the assembled-Jacobian path.
///
/// The matrix-free operator (flow_operator.hpp) is the performance path;
/// the assembled path exists for strong preconditioning (ILU(0)) and for
/// validating the analytic Jacobian-vector products.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace fvf::solver {

/// CSR matrix with sorted column indices within each row.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplet-ish per-row data; `columns[r]` must be sorted
  /// and unique, `values[r]` parallel to it.
  static CsrMatrix from_rows(std::vector<std::vector<i64>> columns,
                             std::vector<std::vector<f64>> values);

  [[nodiscard]] i64 rows() const noexcept {
    return static_cast<i64>(row_ptr_.size()) - 1;
  }
  [[nodiscard]] i64 nonzeros() const noexcept {
    return static_cast<i64>(values_.size());
  }

  [[nodiscard]] std::span<const i64> row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] std::span<const i64> cols() const noexcept { return cols_; }
  [[nodiscard]] std::span<const f64> values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::span<f64> values() noexcept { return values_; }

  /// y = A x.
  void multiply(std::span<const f64> x, std::span<f64> y) const;

  /// Value at (row, col), or 0 if not in the pattern.
  [[nodiscard]] f64 at(i64 row, i64 col) const;

  /// Index into values() of entry (row, col), or -1 if absent.
  [[nodiscard]] i64 find(i64 row, i64 col) const;

  /// The diagonal (throws if any diagonal entry is absent).
  [[nodiscard]] std::vector<f64> diagonal() const;

 private:
  std::vector<i64> row_ptr_{0};
  std::vector<i64> cols_;
  std::vector<f64> values_;
};

/// Zero-fill-in incomplete LU factorization of a CSR matrix, with
/// forward/backward triangular application — the classic smoother/
/// preconditioner for TPFA pressure systems.
class Ilu0 {
 public:
  /// Factors A in ILU(0) form (pattern preserved). Throws on a zero
  /// pivot.
  explicit Ilu0(const CsrMatrix& matrix);

  /// z = (LU)^{-1} r.
  void apply(std::span<const f64> r, std::span<f64> z) const;

  [[nodiscard]] i64 rows() const noexcept { return factors_.rows(); }

 private:
  CsrMatrix factors_;       ///< L (strict lower, unit diag) + U in place
  std::vector<i64> diag_;   ///< index of the diagonal entry per row
};

}  // namespace fvf::solver
