#include "solver/krylov.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "solver/blas.hpp"

namespace fvf::solver {

namespace {

void apply_or_copy(const LinearOperator& op, std::span<const f64> in,
                   std::span<f64> out) {
  if (op) {
    op(in, out);
  } else {
    copy(in, out);
  }
}

}  // namespace

LinearOperator make_jacobi_preconditioner(std::vector<f64> diagonal) {
  for (const f64 d : diagonal) {
    FVF_REQUIRE_MSG(d != 0.0, "Jacobi preconditioner: zero diagonal entry");
  }
  return [diag = std::move(diagonal)](std::span<const f64> in,
                                      std::span<f64> out) {
    FVF_REQUIRE(in.size() == diag.size() && out.size() == diag.size());
    for (usize i = 0; i < diag.size(); ++i) {
      out[i] = in[i] / diag[i];
    }
  };
}

KrylovResult conjugate_gradient(const LinearOperator& a,
                                std::span<const f64> rhs, std::span<f64> x,
                                const KrylovOptions& options,
                                const LinearOperator& precond) {
  const usize n = rhs.size();
  FVF_REQUIRE(x.size() == n);
  std::vector<f64> r(n), zv(n), p(n), ap(n);

  // r = b - A x
  a(x, ap);
  for (usize i = 0; i < n; ++i) {
    r[i] = rhs[i] - ap[i];
  }
  KrylovResult result;
  result.initial_residual_norm = norm2(r);
  const f64 target = std::max(
      options.absolute_tolerance,
      options.relative_tolerance * result.initial_residual_norm);
  if (result.initial_residual_norm <= target) {
    result.converged = true;
    result.final_residual_norm = result.initial_residual_norm;
    return result;
  }

  apply_or_copy(precond, r, zv);
  copy(zv, p);
  f64 rz = dot(r, zv);

  for (i32 it = 0; it < options.max_iterations; ++it) {
    a(p, ap);
    const f64 pap = dot(p, ap);
    FVF_REQUIRE_MSG(pap != 0.0, "CG breakdown: p'Ap == 0");
    const f64 alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    result.iterations = it + 1;
    result.final_residual_norm = norm2(r);
    if (result.final_residual_norm <= target) {
      result.converged = true;
      return result;
    }
    apply_or_copy(precond, r, zv);
    const f64 rz_new = dot(r, zv);
    const f64 beta = rz_new / rz;
    rz = rz_new;
    for (usize i = 0; i < n; ++i) {
      p[i] = zv[i] + beta * p[i];
    }
  }
  return result;
}

KrylovResult bicgstab(const LinearOperator& a, std::span<const f64> rhs,
                      std::span<f64> x, const KrylovOptions& options,
                      const LinearOperator& precond) {
  const usize n = rhs.size();
  FVF_REQUIRE(x.size() == n);
  std::vector<f64> r(n), r0(n), p(n), v(n), s(n), t(n), phat(n), shat(n);

  a(x, v);
  for (usize i = 0; i < n; ++i) {
    r[i] = rhs[i] - v[i];
  }
  copy(r, r0);

  KrylovResult result;
  result.initial_residual_norm = norm2(r);
  const f64 target = std::max(
      options.absolute_tolerance,
      options.relative_tolerance * result.initial_residual_norm);
  if (result.initial_residual_norm <= target) {
    result.converged = true;
    result.final_residual_norm = result.initial_residual_norm;
    return result;
  }

  f64 rho_prev = 1.0;
  f64 alpha = 1.0;
  f64 omega = 1.0;
  fill(p, 0.0);
  fill(v, 0.0);

  for (i32 it = 0; it < options.max_iterations; ++it) {
    const f64 rho = dot(r0, r);
    if (rho == 0.0) {
      break;  // breakdown
    }
    if (it == 0) {
      copy(r, p);
    } else {
      const f64 beta = (rho / rho_prev) * (alpha / omega);
      for (usize i = 0; i < n; ++i) {
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
      }
    }
    apply_or_copy(precond, p, phat);
    a(phat, v);
    const f64 r0v = dot(r0, v);
    if (r0v == 0.0) {
      break;
    }
    alpha = rho / r0v;
    for (usize i = 0; i < n; ++i) {
      s[i] = r[i] - alpha * v[i];
    }
    result.iterations = it + 1;
    if (norm2(s) <= target) {
      axpy(alpha, phat, x);
      result.final_residual_norm = norm2(s);
      result.converged = true;
      return result;
    }
    apply_or_copy(precond, s, shat);
    a(shat, t);
    const f64 tt = dot(t, t);
    if (tt == 0.0) {
      break;
    }
    omega = dot(t, s) / tt;
    for (usize i = 0; i < n; ++i) {
      x[i] += alpha * phat[i] + omega * shat[i];
      r[i] = s[i] - omega * t[i];
    }
    result.final_residual_norm = norm2(r);
    if (result.final_residual_norm <= target) {
      result.converged = true;
      return result;
    }
    if (omega == 0.0) {
      break;
    }
    rho_prev = rho;
  }
  return result;
}

KrylovResult gmres(const LinearOperator& a, std::span<const f64> rhs,
                   std::span<f64> x, const KrylovOptions& options,
                   const LinearOperator& precond) {
  const usize n = rhs.size();
  FVF_REQUIRE(x.size() == n);
  const i32 m = std::max<i32>(1, options.gmres_restart);

  std::vector<std::vector<f64>> basis;  // Krylov basis vectors
  std::vector<f64> r(n), w(n), z(n);
  // Hessenberg (column-major, (m+1) x m), Givens rotations, rhs of LS.
  std::vector<f64> h(static_cast<usize>(m + 1) * static_cast<usize>(m), 0.0);
  std::vector<f64> cs(static_cast<usize>(m), 0.0);
  std::vector<f64> sn(static_cast<usize>(m), 0.0);
  std::vector<f64> g(static_cast<usize>(m + 1), 0.0);
  const auto H = [&](i32 i, i32 j) -> f64& {
    return h[static_cast<usize>(j) * static_cast<usize>(m + 1) +
             static_cast<usize>(i)];
  };

  KrylovResult result;
  f64 target = 0.0;
  bool first_pass = true;

  while (result.iterations < options.max_iterations) {
    // r = M^{-1} (b - A x)
    a(x, w);
    for (usize i = 0; i < n; ++i) {
      r[i] = rhs[i] - w[i];
    }
    apply_or_copy(precond, r, z);
    const f64 beta = norm2(z);
    if (first_pass) {
      result.initial_residual_norm = beta;
      target = std::max(options.absolute_tolerance,
                        options.relative_tolerance * beta);
      first_pass = false;
    }
    result.final_residual_norm = beta;
    if (beta <= target) {
      result.converged = true;
      return result;
    }

    basis.assign(1, std::vector<f64>(n));
    for (usize i = 0; i < n; ++i) {
      basis[0][i] = z[i] / beta;
    }
    fill(g, 0.0);
    g[0] = beta;

    i32 k = 0;
    for (; k < m && result.iterations < options.max_iterations; ++k) {
      ++result.iterations;
      // w = M^{-1} A v_k
      a(basis[static_cast<usize>(k)], w);
      apply_or_copy(precond, w, z);
      // Modified Gram-Schmidt.
      for (i32 i = 0; i <= k; ++i) {
        H(i, k) = dot(z, basis[static_cast<usize>(i)]);
        axpy(-H(i, k), basis[static_cast<usize>(i)], z);
      }
      H(k + 1, k) = norm2(z);
      if (H(k + 1, k) != 0.0) {
        basis.emplace_back(n);
        for (usize i = 0; i < n; ++i) {
          basis.back()[i] = z[i] / H(k + 1, k);
        }
      }
      // Apply previous Givens rotations to the new column.
      for (i32 i = 0; i < k; ++i) {
        const f64 tmp = cs[static_cast<usize>(i)] * H(i, k) +
                        sn[static_cast<usize>(i)] * H(i + 1, k);
        H(i + 1, k) = -sn[static_cast<usize>(i)] * H(i, k) +
                      cs[static_cast<usize>(i)] * H(i + 1, k);
        H(i, k) = tmp;
      }
      // New rotation to annihilate H(k+1, k).
      const f64 denom = std::hypot(H(k, k), H(k + 1, k));
      if (denom == 0.0) {
        cs[static_cast<usize>(k)] = 1.0;
        sn[static_cast<usize>(k)] = 0.0;
      } else {
        cs[static_cast<usize>(k)] = H(k, k) / denom;
        sn[static_cast<usize>(k)] = H(k + 1, k) / denom;
      }
      H(k, k) = cs[static_cast<usize>(k)] * H(k, k) +
                sn[static_cast<usize>(k)] * H(k + 1, k);
      H(k + 1, k) = 0.0;
      g[static_cast<usize>(k + 1)] =
          -sn[static_cast<usize>(k)] * g[static_cast<usize>(k)];
      g[static_cast<usize>(k)] *= cs[static_cast<usize>(k)];

      result.final_residual_norm = std::abs(g[static_cast<usize>(k + 1)]);
      if (result.final_residual_norm <= target) {
        ++k;
        break;
      }
      if (H(k + 1, k) == 0.0 &&
          static_cast<usize>(k + 1) >= basis.size()) {
        ++k;
        break;  // lucky breakdown
      }
    }

    // Back-substitute y from the triangular system and update x.
    std::vector<f64> y(static_cast<usize>(k), 0.0);
    for (i32 i = k - 1; i >= 0; --i) {
      f64 sum = g[static_cast<usize>(i)];
      for (i32 j = i + 1; j < k; ++j) {
        sum -= H(i, j) * y[static_cast<usize>(j)];
      }
      FVF_REQUIRE_MSG(H(i, i) != 0.0, "GMRES: singular Hessenberg");
      y[static_cast<usize>(i)] = sum / H(i, i);
    }
    for (i32 j = 0; j < k; ++j) {
      axpy(y[static_cast<usize>(j)], basis[static_cast<usize>(j)], x);
    }

    if (result.final_residual_norm <= target) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace fvf::solver
