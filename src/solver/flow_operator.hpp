/// \file flow_operator.hpp
/// \brief Matrix-free residual and Jacobian operators for the fully
///        implicit discrete system (Eq. 2 of the paper) — the "natural
///        extension to a matrix-free FV operator for use in an iterative
///        Krylov method" the paper's Discussion section calls for.
///
/// Unknown: cell pressures p^{n+1}. Residual per cell K:
///
///   R_K = V_K (phi(p)rho(p) - phi(p^n)rho(p^n)) / dt
///         + sum_{L in adj(K)} F_KL(p) - q_K
///
/// with the TPFA flux of Eq. 3 (double precision here; the f32 kernels
/// remain the performance path) and q_K an optional source term (well).
#pragma once

#include <vector>

#include "common/array3d.hpp"
#include "physics/problem.hpp"
#include "physics/residual.hpp"
#include "solver/csr.hpp"

namespace fvf::solver {

/// A constant-rate point source (injection well perforation).
struct SourceTerm {
  Coord3 cell{};
  f64 mass_rate = 0.0;  ///< [kg/s], positive = injection
};

/// Matrix-free discrete operator for Eq. 2.
class FlowOperator {
 public:
  FlowOperator(const physics::FlowProblem& problem, f64 dt,
               physics::StencilMode mode = physics::StencilMode::AllTenFaces);

  [[nodiscard]] i64 size() const noexcept { return n_; }
  [[nodiscard]] f64 dt() const noexcept { return dt_; }
  void set_dt(f64 dt) {
    FVF_REQUIRE(dt > 0.0);
    dt_ = dt;
  }

  void add_source(const SourceTerm& source);
  void clear_sources() { sources_.clear(); }

  /// Sets the previous-time-step state p^n (accumulation reference).
  void set_previous_state(std::span<const f64> pressure_old);

  /// R(p) — full residual including accumulation, flux, and sources.
  void residual(std::span<const f64> pressure, std::span<f64> out) const;

  /// Analytic Jacobian-vector product J(p) * v.
  void jacobian_vector(std::span<const f64> pressure, std::span<const f64> v,
                       std::span<f64> out) const;

  /// Analytic Jacobian diagonal (for Jacobi preconditioning).
  void jacobian_diagonal(std::span<const f64> pressure,
                         std::span<f64> out) const;

  /// Assembles the full analytic Jacobian in CSR form (diagonal + one
  /// entry per in-mesh neighbor). Used for ILU(0) preconditioning and
  /// for validating the matrix-free products.
  [[nodiscard]] CsrMatrix assemble_jacobian(std::span<const f64> pressure) const;

 private:
  struct FaceContribution {
    f64 flux = 0.0;
    f64 dflux_dp_self = 0.0;
    f64 dflux_dp_neib = 0.0;
  };

  [[nodiscard]] FaceContribution face_contribution(i32 x, i32 y, i32 z,
                                                   mesh::Face f,
                                                   std::span<const f64> p) const;

  const physics::FlowProblem& problem_;
  f64 dt_;
  physics::StencilMode mode_;
  i64 n_;
  std::vector<f64> pressure_old_;
  std::vector<f64> accum_old_;  ///< V*phi(p^n)*rho(p^n) per cell
  std::vector<SourceTerm> sources_;
  Array3<f32> elevation_;
};

}  // namespace fvf::solver
