/// \file timestepper.hpp
/// \brief Backward-Euler time integration of the implicit flow system —
///        a runnable CO2-injection pressure simulator built on the
///        matrix-free operator + Newton + Krylov stack.
#pragma once

#include <vector>

#include "solver/newton.hpp"

namespace fvf::solver {

struct TimeStepperOptions {
  f64 dt_initial = 0.5 * 86400.0;  ///< [s]
  f64 dt_max = 30.0 * 86400.0;
  f64 dt_growth = 1.5;             ///< growth factor after an easy step
  f64 dt_cut = 0.5;                ///< cut factor after a failed step
  i32 max_retries_per_step = 6;
  NewtonOptions newton{};
};

/// Per-step record for reporting.
struct StepRecord {
  f64 time_s = 0.0;
  f64 dt_s = 0.0;
  i32 newton_iterations = 0;
  i32 linear_iterations = 0;
  bool converged = false;
  f64 max_pressure = 0.0;
  f64 min_pressure = 0.0;
};

struct SimulationReport {
  std::vector<StepRecord> steps;
  bool completed = false;
  f64 end_time_s = 0.0;

  [[nodiscard]] i32 total_newton_iterations() const noexcept {
    i32 total = 0;
    for (const StepRecord& s : steps) {
      total += s.newton_iterations;
    }
    return total;
  }
};

/// Advances the implicit system from `pressure` (updated in place) to
/// `end_time` seconds, adapting the time step on Newton failures.
[[nodiscard]] SimulationReport simulate_to(FlowOperator& op,
                                           std::span<f64> pressure,
                                           f64 end_time,
                                           const TimeStepperOptions& options);

}  // namespace fvf::solver
