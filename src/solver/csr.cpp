#include "solver/csr.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fvf::solver {

CsrMatrix CsrMatrix::from_rows(std::vector<std::vector<i64>> columns,
                               std::vector<std::vector<f64>> values) {
  FVF_REQUIRE(columns.size() == values.size());
  CsrMatrix m;
  m.row_ptr_.assign(1, 0);
  m.row_ptr_.reserve(columns.size() + 1);
  for (usize r = 0; r < columns.size(); ++r) {
    FVF_REQUIRE(columns[r].size() == values[r].size());
    FVF_REQUIRE_MSG(std::is_sorted(columns[r].begin(), columns[r].end()),
                    "row " << r << " columns not sorted");
    for (usize k = 0; k + 1 < columns[r].size(); ++k) {
      FVF_REQUIRE_MSG(columns[r][k] != columns[r][k + 1],
                      "duplicate column in row " << r);
    }
    m.cols_.insert(m.cols_.end(), columns[r].begin(), columns[r].end());
    m.values_.insert(m.values_.end(), values[r].begin(), values[r].end());
    m.row_ptr_.push_back(static_cast<i64>(m.cols_.size()));
  }
  return m;
}

void CsrMatrix::multiply(std::span<const f64> x, std::span<f64> y) const {
  FVF_REQUIRE(static_cast<i64>(x.size()) == rows());
  FVF_REQUIRE(static_cast<i64>(y.size()) == rows());
  for (i64 r = 0; r < rows(); ++r) {
    f64 sum = 0.0;
    for (i64 k = row_ptr_[static_cast<usize>(r)];
         k < row_ptr_[static_cast<usize>(r) + 1]; ++k) {
      sum += values_[static_cast<usize>(k)] *
             x[static_cast<usize>(cols_[static_cast<usize>(k)])];
    }
    y[static_cast<usize>(r)] = sum;
  }
}

i64 CsrMatrix::find(i64 row, i64 col) const {
  FVF_REQUIRE(row >= 0 && row < rows());
  const i64 begin = row_ptr_[static_cast<usize>(row)];
  const i64 end = row_ptr_[static_cast<usize>(row) + 1];
  const auto first = cols_.begin() + begin;
  const auto last = cols_.begin() + end;
  const auto it = std::lower_bound(first, last, col);
  if (it == last || *it != col) {
    return -1;
  }
  return begin + (it - first);
}

f64 CsrMatrix::at(i64 row, i64 col) const {
  const i64 k = find(row, col);
  return k < 0 ? 0.0 : values_[static_cast<usize>(k)];
}

std::vector<f64> CsrMatrix::diagonal() const {
  std::vector<f64> diag(static_cast<usize>(rows()));
  for (i64 r = 0; r < rows(); ++r) {
    const i64 k = find(r, r);
    FVF_REQUIRE_MSG(k >= 0, "missing diagonal entry in row " << r);
    diag[static_cast<usize>(r)] = values_[static_cast<usize>(k)];
  }
  return diag;
}

Ilu0::Ilu0(const CsrMatrix& matrix) : factors_(matrix) {
  const i64 n = factors_.rows();
  diag_.resize(static_cast<usize>(n));
  for (i64 r = 0; r < n; ++r) {
    const i64 d = factors_.find(r, r);
    FVF_REQUIRE_MSG(d >= 0, "ILU(0): missing diagonal in row " << r);
    diag_[static_cast<usize>(r)] = d;
  }

  const std::span<const i64> row_ptr = factors_.row_ptr();
  const std::span<const i64> cols = factors_.cols();
  const std::span<f64> vals = factors_.values();

  // Standard IKJ ILU(0): for each row i, eliminate with rows k < i that
  // appear in i's pattern.
  for (i64 i = 0; i < n; ++i) {
    for (i64 kk = row_ptr[static_cast<usize>(i)];
         kk < row_ptr[static_cast<usize>(i) + 1]; ++kk) {
      const i64 k = cols[static_cast<usize>(kk)];
      if (k >= i) {
        break;  // columns are sorted: strictly-lower part exhausted
      }
      const f64 pivot = vals[static_cast<usize>(diag_[static_cast<usize>(k)])];
      FVF_REQUIRE_MSG(pivot != 0.0, "ILU(0): zero pivot at row " << k);
      const f64 lik = vals[static_cast<usize>(kk)] / pivot;
      vals[static_cast<usize>(kk)] = lik;
      // Subtract lik * U(k, j) for every j > k that exists in row i.
      for (i64 jj = diag_[static_cast<usize>(k)] + 1;
           jj < row_ptr[static_cast<usize>(k) + 1]; ++jj) {
        const i64 j = cols[static_cast<usize>(jj)];
        const i64 ij = factors_.find(i, j);
        if (ij >= 0) {
          vals[static_cast<usize>(ij)] -=
              lik * vals[static_cast<usize>(jj)];
        }
      }
    }
  }
}

void Ilu0::apply(std::span<const f64> r, std::span<f64> z) const {
  const i64 n = factors_.rows();
  FVF_REQUIRE(static_cast<i64>(r.size()) == n);
  FVF_REQUIRE(static_cast<i64>(z.size()) == n);
  const std::span<const i64> row_ptr = factors_.row_ptr();
  const std::span<const i64> cols = factors_.cols();
  const std::span<const f64> vals = factors_.values();

  // Forward solve L y = r (unit diagonal, strictly-lower entries).
  for (i64 i = 0; i < n; ++i) {
    f64 sum = r[static_cast<usize>(i)];
    for (i64 k = row_ptr[static_cast<usize>(i)];
         k < row_ptr[static_cast<usize>(i) + 1]; ++k) {
      const i64 j = cols[static_cast<usize>(k)];
      if (j >= i) {
        break;
      }
      sum -= vals[static_cast<usize>(k)] * z[static_cast<usize>(j)];
    }
    z[static_cast<usize>(i)] = sum;
  }
  // Backward solve U z = y.
  for (i64 i = n - 1; i >= 0; --i) {
    f64 sum = z[static_cast<usize>(i)];
    for (i64 k = diag_[static_cast<usize>(i)] + 1;
         k < row_ptr[static_cast<usize>(i) + 1]; ++k) {
      sum -= vals[static_cast<usize>(k)] *
             z[static_cast<usize>(cols[static_cast<usize>(k)])];
    }
    z[static_cast<usize>(i)] =
        sum / vals[static_cast<usize>(diag_[static_cast<usize>(i)])];
  }
}

}  // namespace fvf::solver
