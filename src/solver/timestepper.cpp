#include "solver/timestepper.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "solver/blas.hpp"

namespace fvf::solver {

SimulationReport simulate_to(FlowOperator& op, std::span<f64> pressure,
                             f64 end_time, const TimeStepperOptions& options) {
  FVF_REQUIRE(end_time > 0.0);
  FVF_REQUIRE(options.dt_initial > 0.0);

  SimulationReport report;
  std::vector<f64> saved(pressure.size());
  f64 time = 0.0;
  f64 dt = options.dt_initial;

  while (time < end_time) {
    dt = std::min({dt, options.dt_max, end_time - time});
    copy(pressure, saved);
    op.set_dt(dt);
    op.set_previous_state(saved);

    bool step_done = false;
    for (i32 retry = 0; retry <= options.max_retries_per_step; ++retry) {
      const NewtonResult newton =
          newton_solve(op, pressure, options.newton);

      StepRecord record;
      record.time_s = time + dt;
      record.dt_s = dt;
      record.newton_iterations = newton.iterations;
      record.linear_iterations = newton.total_linear_iterations;
      record.converged = newton.converged;

      if (newton.converged) {
        f64 pmin = pressure[0];
        f64 pmax = pressure[0];
        for (const f64 p : pressure) {
          pmin = std::min(pmin, p);
          pmax = std::max(pmax, p);
        }
        record.min_pressure = pmin;
        record.max_pressure = pmax;
        report.steps.push_back(record);
        time += dt;
        // Easy step: grow dt for the next one.
        if (newton.iterations <= options.newton.max_iterations / 2) {
          dt *= options.dt_growth;
        }
        step_done = true;
        break;
      }
      // Failed: restore state, cut the step, retry.
      report.steps.push_back(record);
      copy(saved, pressure);
      dt *= options.dt_cut;
      op.set_dt(dt);
    }
    if (!step_done) {
      report.completed = false;
      report.end_time_s = time;
      return report;
    }
  }
  report.completed = true;
  report.end_time_s = time;
  return report;
}

}  // namespace fvf::solver
