#include "solver/flow_operator.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "solver/blas.hpp"

namespace fvf::solver {

FlowOperator::FlowOperator(const physics::FlowProblem& problem, f64 dt,
                           physics::StencilMode mode)
    : problem_(problem),
      dt_(dt),
      mode_(mode),
      n_(problem.cell_count()),
      elevation_(physics::cell_elevations(problem.mesh())) {
  FVF_REQUIRE(dt > 0.0);
  pressure_old_.assign(static_cast<usize>(n_), 0.0);
  accum_old_.assign(static_cast<usize>(n_), 0.0);
}

void FlowOperator::add_source(const SourceTerm& source) {
  FVF_REQUIRE(problem_.extents().contains(source.cell.x, source.cell.y,
                                          source.cell.z));
  sources_.push_back(source);
}

void FlowOperator::set_previous_state(std::span<const f64> pressure_old) {
  FVF_REQUIRE(static_cast<i64>(pressure_old.size()) == n_);
  copy(pressure_old, pressure_old_);
  const physics::FluidProperties& fluid = problem_.fluid();
  const physics::RockProperties& rock = problem_.rock();
  const f64 volume = problem_.mesh().cell_volume();
  for (i64 i = 0; i < n_; ++i) {
    const f64 p = pressure_old_[static_cast<usize>(i)];
    accum_old_[static_cast<usize>(i)] =
        volume * rock.porosity(p) * fluid.density(p);
  }
}

FlowOperator::FaceContribution FlowOperator::face_contribution(
    i32 x, i32 y, i32 z, mesh::Face f, std::span<const f64> p) const {
  const mesh::CartesianMesh& m = problem_.mesh();
  const auto nb = m.neighbor(x, y, z, f);
  FaceContribution out;
  if (!nb) {
    return out;
  }
  const physics::FluidProperties& fluid = problem_.fluid();
  const Extents3 ext = problem_.extents();
  const i64 self = ext.linear(x, y, z);
  const i64 neib = ext.linear(nb->x, nb->y, nb->z);

  const f64 trans = problem_.transmissibility().at(x, y, z, f);
  const f64 p_self = p[static_cast<usize>(self)];
  const f64 p_neib = p[static_cast<usize>(neib)];
  const f64 rho_self = fluid.density(p_self);
  const f64 rho_neib = fluid.density(p_neib);
  const f64 drho_self = fluid.density_derivative(p_self);
  const f64 drho_neib = fluid.density_derivative(p_neib);
  const f64 dz = static_cast<f64>(elevation_(nb->x, nb->y, nb->z)) -
                 static_cast<f64>(elevation_(x, y, z));
  const f64 g = fluid.gravity;
  const f64 inv_mu = 1.0 / fluid.viscosity;

  const f64 rho_avg = 0.5 * (rho_self + rho_neib);
  const f64 dphi = p_neib - p_self + rho_avg * g * dz;
  const bool upwind_self = dphi > 0.0;
  const f64 lambda = (upwind_self ? rho_self : rho_neib) * inv_mu;

  out.flux = trans * lambda * dphi;

  // d(dphi)/dp: the gravity term depends on p through rho_avg.
  const f64 ddphi_dself = -1.0 + 0.5 * drho_self * g * dz;
  const f64 ddphi_dneib = 1.0 + 0.5 * drho_neib * g * dz;
  // d(lambda)/dp: only through the upwinded density (the switch itself is
  // treated as locally constant, standard practice for implicit TPFA).
  const f64 dlambda_dself = upwind_self ? drho_self * inv_mu : 0.0;
  const f64 dlambda_dneib = upwind_self ? 0.0 : drho_neib * inv_mu;

  out.dflux_dp_self = trans * (dlambda_dself * dphi + lambda * ddphi_dself);
  out.dflux_dp_neib = trans * (dlambda_dneib * dphi + lambda * ddphi_dneib);
  return out;
}

void FlowOperator::residual(std::span<const f64> pressure,
                            std::span<f64> out) const {
  FVF_REQUIRE(static_cast<i64>(pressure.size()) == n_);
  FVF_REQUIRE(static_cast<i64>(out.size()) == n_);
  const Extents3 ext = problem_.extents();
  const physics::FluidProperties& fluid = problem_.fluid();
  const physics::RockProperties& rock = problem_.rock();
  const f64 volume = problem_.mesh().cell_volume();

  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        const i64 i = ext.linear(x, y, z);
        const f64 p = pressure[static_cast<usize>(i)];
        const f64 accum =
            (volume * rock.porosity(p) * fluid.density(p) -
             accum_old_[static_cast<usize>(i)]) /
            dt_;
        f64 r = accum;
        for (const mesh::Face f : mesh::kAllFaces) {
          if (mode_ == physics::StencilMode::CardinalOnly &&
              mesh::is_diagonal(f)) {
            continue;
          }
          r += face_contribution(x, y, z, f, pressure).flux;
        }
        out[static_cast<usize>(i)] = r;
      }
    }
  }
  for (const SourceTerm& s : sources_) {
    out[static_cast<usize>(ext.linear(s.cell.x, s.cell.y, s.cell.z))] -=
        s.mass_rate;
  }
}

void FlowOperator::jacobian_vector(std::span<const f64> pressure,
                                   std::span<const f64> v,
                                   std::span<f64> out) const {
  FVF_REQUIRE(static_cast<i64>(pressure.size()) == n_);
  FVF_REQUIRE(static_cast<i64>(v.size()) == n_);
  FVF_REQUIRE(static_cast<i64>(out.size()) == n_);
  const Extents3 ext = problem_.extents();
  const physics::FluidProperties& fluid = problem_.fluid();
  const physics::RockProperties& rock = problem_.rock();
  const f64 volume = problem_.mesh().cell_volume();

  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        const i64 i = ext.linear(x, y, z);
        const f64 p = pressure[static_cast<usize>(i)];
        // d(accum)/dp = V (phi' rho + phi rho') / dt
        const f64 daccum =
            volume *
            (rock.porosity_derivative() * fluid.density(p) +
             rock.porosity(p) * fluid.density_derivative(p)) /
            dt_;
        f64 jv = daccum * v[static_cast<usize>(i)];
        for (const mesh::Face f : mesh::kAllFaces) {
          if (mode_ == physics::StencilMode::CardinalOnly &&
              mesh::is_diagonal(f)) {
            continue;
          }
          const auto nb = problem_.mesh().neighbor(x, y, z, f);
          if (!nb) {
            continue;
          }
          const FaceContribution fc = face_contribution(x, y, z, f, pressure);
          const i64 j = ext.linear(nb->x, nb->y, nb->z);
          jv += fc.dflux_dp_self * v[static_cast<usize>(i)] +
                fc.dflux_dp_neib * v[static_cast<usize>(j)];
        }
        out[static_cast<usize>(i)] = jv;
      }
    }
  }
}

CsrMatrix FlowOperator::assemble_jacobian(std::span<const f64> pressure) const {
  FVF_REQUIRE(static_cast<i64>(pressure.size()) == n_);
  const Extents3 ext = problem_.extents();
  const physics::FluidProperties& fluid = problem_.fluid();
  const physics::RockProperties& rock = problem_.rock();
  const f64 volume = problem_.mesh().cell_volume();

  std::vector<std::vector<i64>> columns(static_cast<usize>(n_));
  std::vector<std::vector<f64>> values(static_cast<usize>(n_));

  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        const i64 i = ext.linear(x, y, z);
        const f64 p = pressure[static_cast<usize>(i)];
        f64 diag = volume *
                   (rock.porosity_derivative() * fluid.density(p) +
                    rock.porosity(p) * fluid.density_derivative(p)) /
                   dt_;
        std::vector<std::pair<i64, f64>> entries;
        for (const mesh::Face f : mesh::kAllFaces) {
          if (mode_ == physics::StencilMode::CardinalOnly &&
              mesh::is_diagonal(f)) {
            continue;
          }
          const auto nb = problem_.mesh().neighbor(x, y, z, f);
          if (!nb) {
            continue;
          }
          const FaceContribution fc = face_contribution(x, y, z, f, pressure);
          diag += fc.dflux_dp_self;
          entries.emplace_back(ext.linear(nb->x, nb->y, nb->z),
                               fc.dflux_dp_neib);
        }
        entries.emplace_back(i, diag);
        std::sort(entries.begin(), entries.end());
        auto& row_cols = columns[static_cast<usize>(i)];
        auto& row_vals = values[static_cast<usize>(i)];
        row_cols.reserve(entries.size());
        row_vals.reserve(entries.size());
        for (const auto& [col, val] : entries) {
          row_cols.push_back(col);
          row_vals.push_back(val);
        }
      }
    }
  }
  return CsrMatrix::from_rows(std::move(columns), std::move(values));
}

void FlowOperator::jacobian_diagonal(std::span<const f64> pressure,
                                     std::span<f64> out) const {
  FVF_REQUIRE(static_cast<i64>(pressure.size()) == n_);
  FVF_REQUIRE(static_cast<i64>(out.size()) == n_);
  const Extents3 ext = problem_.extents();
  const physics::FluidProperties& fluid = problem_.fluid();
  const physics::RockProperties& rock = problem_.rock();
  const f64 volume = problem_.mesh().cell_volume();

  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        const i64 i = ext.linear(x, y, z);
        const f64 p = pressure[static_cast<usize>(i)];
        f64 diag = volume *
                   (rock.porosity_derivative() * fluid.density(p) +
                    rock.porosity(p) * fluid.density_derivative(p)) /
                   dt_;
        for (const mesh::Face f : mesh::kAllFaces) {
          if (mode_ == physics::StencilMode::CardinalOnly &&
              mesh::is_diagonal(f)) {
            continue;
          }
          diag += face_contribution(x, y, z, f, pressure).dflux_dp_self;
        }
        out[static_cast<usize>(i)] = diag;
      }
    }
  }
}

}  // namespace fvf::solver
