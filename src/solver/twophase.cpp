#include "solver/twophase.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "physics/residual.hpp"

namespace fvf::solver {

namespace {

/// Faces owned by a cell for single-visit flux storage.
constexpr std::array<mesh::Face, 5> kOwnedFaces = {
    mesh::Face::XPlus, mesh::Face::YPlus, mesh::Face::ZPlus,
    mesh::Face::DiagPP, mesh::Face::DiagPM};

usize owned_index(mesh::Face f) {
  for (usize i = 0; i < kOwnedFaces.size(); ++i) {
    if (kOwnedFaces[i] == f) {
      return i;
    }
  }
  FVF_REQUIRE(false);
  return 0;
}

}  // namespace

f64 TwoPhaseFluid::kr_nonwetting(f64 s) const {
  s = std::clamp(s, 0.0, 1.0);
  return std::pow(s, corey_exponent);
}

f64 TwoPhaseFluid::kr_wetting(f64 s) const {
  s = std::clamp(s, 0.0, 1.0);
  return std::pow(1.0 - s, corey_exponent);
}

f64 TwoPhaseFluid::total_mobility(f64 s) const {
  return kr_nonwetting(s) / viscosity_nonwetting +
         kr_wetting(s) / viscosity_wetting;
}

f64 TwoPhaseFluid::fractional_flow(f64 s) const {
  const f64 mob_n = kr_nonwetting(s) / viscosity_nonwetting;
  return mob_n / (mob_n + kr_wetting(s) / viscosity_wetting);
}

TwoPhaseSimulator::TwoPhaseSimulator(const physics::FlowProblem& problem,
                                     TwoPhaseOptions options)
    : problem_(problem),
      options_(options),
      pressure_(problem.extents(), options.anchor_pressure),
      saturation_(problem.extents(), 0.0) {
  FVF_REQUIRE(options_.porosity > 0.0 && options_.porosity < 1.0);
  FVF_REQUIRE(options_.cfl > 0.0 && options_.cfl <= 1.0);
  FVF_REQUIRE(problem.extents().contains(options_.anchor_cell.x,
                                         options_.anchor_cell.y,
                                         options_.anchor_cell.z));
  for (auto& f : face_flux_) {
    f = Array3<f64>(problem.extents());
  }
}

void TwoPhaseSimulator::add_well(const InjectionWell& well) {
  FVF_REQUIRE(problem_.extents().contains(well.cell.x, well.cell.y,
                                          well.cell.z));
  FVF_REQUIRE(well.volume_rate >= 0.0);
  wells_.push_back(well);
}

f64 TwoPhaseSimulator::co2_in_place() const {
  const f64 pore_volume = problem_.mesh().cell_volume() * options_.porosity;
  f64 total = 0.0;
  for (i64 i = 0; i < saturation_.size(); ++i) {
    total += saturation_[i] * pore_volume;
  }
  return total;
}

Array3<f32> TwoPhaseSimulator::saturation_f32() const {
  Array3<f32> out(saturation_.extents());
  for (i64 i = 0; i < saturation_.size(); ++i) {
    out[i] = static_cast<f32>(saturation_[i]);
  }
  return out;
}

void TwoPhaseSimulator::solve_pressure() {
  const Extents3 ext = problem_.extents();
  const i64 n = ext.cell_count();
  const mesh::CartesianMesh& m = problem_.mesh();
  const TwoPhaseFluid& fluid = options_.fluid;
  const f64 g = options_.include_gravity ? units::kGravity : 0.0;
  const Array3<f32> elev = physics::cell_elevations(m);

  // Per-owned-face lagged phase mobilities, upwinded on the previous
  // pressure's phase potentials (standard IMPES lagging).
  std::array<Array3<f64>, 5> mob_n;
  std::array<Array3<f64>, 5> mob_w;
  for (usize k = 0; k < 5; ++k) {
    mob_n[k] = Array3<f64>(ext);
    mob_w[k] = Array3<f64>(ext);
  }
  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        for (const mesh::Face f : kOwnedFaces) {
          const auto nb = m.neighbor(x, y, z, f);
          if (!nb) {
            continue;
          }
          const f64 dz = static_cast<f64>(elev(x, y, z)) -
                         elev(nb->x, nb->y, nb->z);
          const f64 dp = pressure_(x, y, z) -
                         pressure_(nb->x, nb->y, nb->z);
          const f64 dphi_n = dp + fluid.density_nonwetting * g * dz;
          const f64 dphi_w = dp + fluid.density_wetting * g * dz;
          const f64 s_n = dphi_n > 0.0 ? saturation_(x, y, z)
                                       : saturation_(nb->x, nb->y, nb->z);
          const f64 s_w = dphi_w > 0.0 ? saturation_(x, y, z)
                                       : saturation_(nb->x, nb->y, nb->z);
          const usize k = owned_index(f);
          mob_n[k](x, y, z) =
              fluid.kr_nonwetting(s_n) / fluid.viscosity_nonwetting;
          mob_w[k](x, y, z) =
              fluid.kr_wetting(s_w) / fluid.viscosity_wetting;
        }
      }
    }
  }

  // Matrix-free operator with the anchor handled by a penalty term
  // (keeps the operator definite without breaking the stencil).
  const i64 anchor = ext.linear(options_.anchor_cell.x,
                                options_.anchor_cell.y,
                                options_.anchor_cell.z);
  f64 diag_scale = 0.0;
  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        for (const mesh::Face f : kOwnedFaces) {
          if (m.neighbor(x, y, z, f)) {
            const usize k = owned_index(f);
            diag_scale +=
                static_cast<f64>(problem_.transmissibility().at(x, y, z, f)) *
                (mob_n[k](x, y, z) + mob_w[k](x, y, z));
          }
        }
      }
    }
  }
  // Penalty sized like an average cell's diagonal (x1000): strong enough
  // to pin the anchor pressure, weak enough not to wreck conditioning.
  const f64 penalty =
      std::max(diag_scale / static_cast<f64>(n), 1e-30) * 1e3;

  const auto apply = [&](std::span<const f64> p, std::span<f64> out) {
    for (i64 i = 0; i < n; ++i) {
      out[static_cast<usize>(i)] = 0.0;
    }
    for (i32 z = 0; z < ext.nz; ++z) {
      for (i32 y = 0; y < ext.ny; ++y) {
        for (i32 x = 0; x < ext.nx; ++x) {
          const i64 i = ext.linear(x, y, z);
          for (const mesh::Face f : kOwnedFaces) {
            const auto nb = m.neighbor(x, y, z, f);
            if (!nb) {
              continue;
            }
            const usize k = owned_index(f);
            const i64 j = ext.linear(nb->x, nb->y, nb->z);
            const f64 t =
                static_cast<f64>(problem_.transmissibility().at(x, y, z, f)) *
                (mob_n[k](x, y, z) + mob_w[k](x, y, z));
            const f64 flux = t * (p[static_cast<usize>(i)] -
                                  p[static_cast<usize>(j)]);
            out[static_cast<usize>(i)] += flux;
            out[static_cast<usize>(j)] -= flux;
          }
        }
      }
    }
    out[static_cast<usize>(anchor)] += penalty * p[static_cast<usize>(anchor)];
  };

  // RHS: wells + gravity terms.
  std::vector<f64> rhs(static_cast<usize>(n), 0.0);
  for (const InjectionWell& well : wells_) {
    rhs[static_cast<usize>(
        ext.linear(well.cell.x, well.cell.y, well.cell.z))] +=
        well.volume_rate;
  }
  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        const i64 i = ext.linear(x, y, z);
        for (const mesh::Face f : kOwnedFaces) {
          const auto nb = m.neighbor(x, y, z, f);
          if (!nb) {
            continue;
          }
          const usize k = owned_index(f);
          const i64 j = ext.linear(nb->x, nb->y, nb->z);
          const f64 dz = static_cast<f64>(elev(x, y, z)) -
                         elev(nb->x, nb->y, nb->z);
          const f64 t =
              static_cast<f64>(problem_.transmissibility().at(x, y, z, f));
          const f64 grav = t * g * dz *
                           (mob_n[k](x, y, z) * fluid.density_nonwetting +
                            mob_w[k](x, y, z) * fluid.density_wetting);
          // Moving T*g*dz*(lambda rho) to the RHS with the flux sign
          // convention used in apply().
          rhs[static_cast<usize>(i)] -= grav;
          rhs[static_cast<usize>(j)] += grav;
        }
      }
    }
  }
  rhs[static_cast<usize>(anchor)] += penalty * options_.anchor_pressure;

  // Jacobi preconditioner from the operator diagonal.
  std::vector<f64> diag(static_cast<usize>(n), 0.0);
  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        const i64 i = ext.linear(x, y, z);
        for (const mesh::Face f : kOwnedFaces) {
          const auto nb = m.neighbor(x, y, z, f);
          if (!nb) {
            continue;
          }
          const usize k = owned_index(f);
          const f64 t =
              static_cast<f64>(problem_.transmissibility().at(x, y, z, f)) *
              (mob_n[k](x, y, z) + mob_w[k](x, y, z));
          diag[static_cast<usize>(i)] += t;
          diag[static_cast<usize>(ext.linear(nb->x, nb->y, nb->z))] += t;
        }
      }
    }
  }
  diag[static_cast<usize>(anchor)] += penalty;

  std::vector<f64> p(static_cast<usize>(n));
  for (i64 i = 0; i < n; ++i) {
    p[static_cast<usize>(i)] = pressure_[i];
  }
  KrylovOptions krylov = options_.krylov;
  const KrylovResult result =
      bicgstab(apply, rhs, p, krylov,
               make_jacobi_preconditioner(std::move(diag)));
  FVF_REQUIRE_MSG(result.converged,
                  "IMPES pressure solve failed: ||r|| = "
                      << result.final_residual_norm << " after "
                      << result.iterations << " iterations");
  linear_iterations_ += result.iterations;
  ++pressure_solves_;
  for (i64 i = 0; i < n; ++i) {
    pressure_[i] = p[static_cast<usize>(i)];
  }
}

f64 TwoPhaseSimulator::compute_face_fluxes() {
  const Extents3 ext = problem_.extents();
  const mesh::CartesianMesh& m = problem_.mesh();
  const TwoPhaseFluid& fluid = options_.fluid;
  const f64 g = options_.include_gravity ? units::kGravity : 0.0;
  const Array3<f32> elev = physics::cell_elevations(m);
  const f64 pore_volume = problem_.mesh().cell_volume() * options_.porosity;

  Array3<f64> outflow(ext);
  for (auto& f : face_flux_) {
    f.fill(0.0);
  }

  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        for (const mesh::Face f : kOwnedFaces) {
          const auto nb = m.neighbor(x, y, z, f);
          if (!nb) {
            continue;
          }
          const f64 t =
              static_cast<f64>(problem_.transmissibility().at(x, y, z, f));
          const f64 dz = static_cast<f64>(elev(x, y, z)) -
                         elev(nb->x, nb->y, nb->z);
          const f64 dp = pressure_(x, y, z) - pressure_(nb->x, nb->y, nb->z);
          const f64 dphi_n = dp + fluid.density_nonwetting * g * dz;
          const f64 s_up = dphi_n > 0.0 ? saturation_(x, y, z)
                                        : saturation_(nb->x, nb->y, nb->z);
          const f64 flux_n =
              t * (fluid.kr_nonwetting(s_up) / fluid.viscosity_nonwetting) *
              dphi_n;
          face_flux_[owned_index(f)](x, y, z) = flux_n;
          // Track total outgoing volume per cell for the CFL bound
          // (non-wetting phase only drives the saturation update, but
          // include the wetting counter-flux for safety).
          const f64 dphi_w = dp + fluid.density_wetting * g * dz;
          const f64 s_up_w = dphi_w > 0.0 ? saturation_(x, y, z)
                                          : saturation_(nb->x, nb->y, nb->z);
          const f64 flux_w =
              t * (fluid.kr_wetting(s_up_w) / fluid.viscosity_wetting) *
              dphi_w;
          const f64 magnitude = std::abs(flux_n) + std::abs(flux_w);
          outflow(x, y, z) += magnitude;
          outflow(nb->x, nb->y, nb->z) += magnitude;
        }
      }
    }
  }
  for (const InjectionWell& well : wells_) {
    outflow(well.cell.x, well.cell.y, well.cell.z) += well.volume_rate;
  }

  f64 dt_max = std::numeric_limits<f64>::infinity();
  for (i64 i = 0; i < outflow.size(); ++i) {
    if (outflow[i] > 0.0) {
      dt_max = std::min(dt_max, pore_volume / outflow[i]);
    }
  }
  return options_.cfl * dt_max;
}

void TwoPhaseSimulator::transport_step(f64 dt) {
  const Extents3 ext = problem_.extents();
  const mesh::CartesianMesh& m = problem_.mesh();
  const f64 pore_volume = problem_.mesh().cell_volume() * options_.porosity;

  Array3<f64> delta(ext);
  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        for (const mesh::Face f : kOwnedFaces) {
          const auto nb = m.neighbor(x, y, z, f);
          if (!nb) {
            continue;
          }
          const f64 flux = face_flux_[owned_index(f)](x, y, z);
          delta(x, y, z) -= flux;
          delta(nb->x, nb->y, nb->z) += flux;
        }
      }
    }
  }
  for (const InjectionWell& well : wells_) {
    delta(well.cell.x, well.cell.y, well.cell.z) += well.volume_rate;
  }
  for (i64 i = 0; i < saturation_.size(); ++i) {
    saturation_[i] += dt * delta[i] / pore_volume;
    // CFL keeps this a no-op up to rounding; guard anyway.
    saturation_[i] = std::clamp(saturation_[i], 0.0, 1.0);
  }
}

TwoPhaseReport TwoPhaseSimulator::advance(f64 end_time,
                                          f64 pressure_interval) {
  FVF_REQUIRE(end_time > 0.0);
  FVF_REQUIRE(pressure_interval > 0.0);
  TwoPhaseReport report;
  const f64 initial_in_place = co2_in_place();
  const i32 solves_at_entry = pressure_solves_;
  const i64 linear_at_entry = linear_iterations_;

  f64 time = 0.0;
  while (time < end_time) {
    solve_pressure();
    const f64 window_end = std::min(time + pressure_interval, end_time);
    i32 substeps = 0;
    while (time < window_end) {
      // dt_cfl is +inf when nothing flows (quiescent reservoir).
      const f64 dt_cfl = compute_face_fluxes();
      FVF_REQUIRE_MSG(dt_cfl > 0.0, "transport CFL collapsed to zero");
      const f64 dt = std::min(dt_cfl, window_end - time);
      transport_step(dt);
      time += dt;
      ++report.transport_substeps;
      if (++substeps > options_.max_substeps_per_pressure_solve) {
        report.completed = false;
        report.end_time_s = time;
        report.pressure_solves = pressure_solves_ - solves_at_entry;
        report.total_linear_iterations = linear_iterations_ - linear_at_entry;
        report.co2_in_place = co2_in_place();
        return report;
      }
    }
  }
  report.completed = true;
  report.end_time_s = time;
  report.pressure_solves = pressure_solves_ - solves_at_entry;
  report.total_linear_iterations = linear_iterations_ - linear_at_entry;
  report.co2_in_place = co2_in_place();
  f64 injected = 0.0;
  for (const InjectionWell& well : wells_) {
    injected += well.volume_rate * end_time;
  }
  report.injected = injected + initial_in_place;
  return report;
}

}  // namespace fvf::solver
