/// \file blas.hpp
/// \brief Small dense-vector kernels used by the Krylov solvers.
#pragma once

#include <cmath>
#include <span>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace fvf::solver {

[[nodiscard]] inline f64 dot(std::span<const f64> a, std::span<const f64> b) {
  FVF_REQUIRE(a.size() == b.size());
  f64 sum = 0.0;
  for (usize i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

[[nodiscard]] inline f64 norm2(std::span<const f64> a) {
  return std::sqrt(dot(a, a));
}

[[nodiscard]] inline f64 norm_inf(std::span<const f64> a) {
  f64 m = 0.0;
  for (const f64 v : a) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

/// y += alpha * x
inline void axpy(f64 alpha, std::span<const f64> x, std::span<f64> y) {
  FVF_REQUIRE(x.size() == y.size());
  for (usize i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

/// y = x
inline void copy(std::span<const f64> x, std::span<f64> y) {
  FVF_REQUIRE(x.size() == y.size());
  for (usize i = 0; i < x.size(); ++i) {
    y[i] = x[i];
  }
}

/// x *= alpha
inline void scale(f64 alpha, std::span<f64> x) {
  for (f64& v : x) {
    v *= alpha;
  }
}

inline void fill(std::span<f64> x, f64 value) {
  for (f64& v : x) {
    v = value;
  }
}

}  // namespace fvf::solver
