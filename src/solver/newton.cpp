#include "solver/newton.hpp"

#include <cmath>
#include <memory>

#include "common/assert.hpp"
#include "solver/blas.hpp"

namespace fvf::solver {

NewtonResult newton_solve(const FlowOperator& op, std::span<f64> pressure,
                          const NewtonOptions& options) {
  const usize n = static_cast<usize>(op.size());
  FVF_REQUIRE(pressure.size() == n);

  std::vector<f64> residual(n), rhs(n), delta(n), trial(n), diag(n);
  NewtonResult result;

  op.residual(pressure, residual);
  f64 res_norm = norm2(residual);
  result.initial_residual_norm = res_norm;
  const f64 target =
      std::max(options.absolute_tolerance,
               options.residual_tolerance * std::max(res_norm, 1e-300));

  for (i32 it = 0; it < options.max_iterations; ++it) {
    result.final_residual_norm = res_norm;
    if (res_norm <= target) {
      result.converged = true;
      return result;
    }
    ++result.iterations;

    // Solve J delta = -R.
    for (usize i = 0; i < n; ++i) {
      rhs[i] = -residual[i];
    }
    fill(delta, 0.0);

    const LinearOperator jacobian = [&](std::span<const f64> v,
                                        std::span<f64> out) {
      op.jacobian_vector(pressure, v, out);
    };
    LinearOperator precond;
    std::shared_ptr<Ilu0> ilu;  // keeps the factors alive in the lambda
    switch (options.preconditioner) {
      case PreconditionerKind::None:
        break;
      case PreconditionerKind::Jacobi:
        op.jacobian_diagonal(pressure, diag);
        precond = make_jacobi_preconditioner(diag);
        break;
      case PreconditionerKind::Ilu0:
        ilu = std::make_shared<Ilu0>(op.assemble_jacobian(pressure));
        precond = [ilu](std::span<const f64> in, std::span<f64> out) {
          ilu->apply(in, out);
        };
        break;
    }

    KrylovResult linear;
    switch (options.linear_solver) {
      case LinearSolverKind::BiCGStab:
        linear = bicgstab(jacobian, rhs, delta, options.krylov, precond);
        break;
      case LinearSolverKind::Gmres:
        linear = gmres(jacobian, rhs, delta, options.krylov, precond);
        break;
      case LinearSolverKind::ConjugateGradient:
        linear = conjugate_gradient(jacobian, rhs, delta, options.krylov,
                                    precond);
        break;
    }
    result.total_linear_iterations += linear.iterations;

    // Backtracking line search on ||R||.
    f64 step = 1.0;
    bool accepted = false;
    for (i32 ls = 0; ls < options.max_line_search_steps; ++ls) {
      copy(pressure, trial);
      axpy(step, delta, trial);
      op.residual(trial, residual);
      const f64 trial_norm = norm2(residual);
      if (std::isfinite(trial_norm) && trial_norm < res_norm) {
        copy(trial, pressure);
        res_norm = trial_norm;
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) {
      // Full step as a last resort (keeps Newton moving on flat regions).
      axpy(step, delta, pressure);
      op.residual(pressure, residual);
      res_norm = norm2(residual);
    }
  }
  result.final_residual_norm = res_norm;
  result.converged = res_norm <= target;
  return result;
}

}  // namespace fvf::solver
