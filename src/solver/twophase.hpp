/// \file twophase.hpp
/// \brief Two-phase (CO2 / brine) immiscible flow by IMPES — the
///        application class the paper's introduction motivates (plume
///        migration and containment in a storage formation), built on the
///        same TPFA transmissibilities and Krylov stack as the flux
///        kernel.
///
/// Formulation: incompressible IMPES (IMplicit Pressure, Explicit
/// Saturation) with Corey relative permeabilities and gravity.
///
///   pressure:    sum_f T_f lambda_t(S_upw) (p_K - p_L + G_f) = q_K
///   saturation:  phi V dS_K/dt = - sum_f f_g(S_upw) F_f + q_g,K
///
/// with single-point upwinding of both mobility and fractional flow, an
/// automatic CFL-limited sub-stepping of the explicit transport, and a
/// pressure-anchor cell making the incompressible system well-posed.
#pragma once

#include <vector>

#include "common/array3d.hpp"
#include "physics/problem.hpp"
#include "solver/krylov.hpp"

namespace fvf::solver {

/// Constant phase properties (defaults: supercritical CO2 displacing
/// brine at storage conditions).
struct TwoPhaseFluid {
  f64 viscosity_wetting = 5.0e-4;     ///< brine [Pa s]
  f64 viscosity_nonwetting = 5.5e-5;  ///< CO2 [Pa s]
  f64 density_wetting = 1050.0;       ///< brine [kg/m^3]
  f64 density_nonwetting = 700.0;     ///< CO2 [kg/m^3]
  f64 corey_exponent = 2.0;

  /// Relative permeability of the non-wetting (CO2) phase at saturation s.
  [[nodiscard]] f64 kr_nonwetting(f64 s) const;
  /// Relative permeability of the wetting (brine) phase.
  [[nodiscard]] f64 kr_wetting(f64 s) const;
  /// Total mobility lambda_t(s).
  [[nodiscard]] f64 total_mobility(f64 s) const;
  /// Fractional flow of the non-wetting phase (viscous part).
  [[nodiscard]] f64 fractional_flow(f64 s) const;
};

/// A constant-rate injection of the non-wetting phase (volume rate).
struct InjectionWell {
  Coord3 cell{};
  f64 volume_rate = 0.0;  ///< [m^3/s], positive = injection
};

struct TwoPhaseOptions {
  TwoPhaseFluid fluid{};
  f64 porosity = 0.2;
  /// Saturation CFL target for the explicit sub-steps.
  f64 cfl = 0.5;
  i32 max_substeps_per_pressure_solve = 200;
  /// Pressure-solve tolerances: looser than the Newton path's defaults —
  /// IMPES re-solves pressure every interval, and strongly heterogeneous
  /// transmissibilities make the system ill-conditioned.
  KrylovOptions krylov{.max_iterations = 4000,
                       .relative_tolerance = 1e-7,
                       .absolute_tolerance = 1e-30,
                       .gmres_restart = 30};
  bool include_gravity = true;
  /// Cell whose pressure is pinned (makes the incompressible pressure
  /// system nonsingular). Defaults to the first cell.
  Coord3 anchor_cell{0, 0, 0};
  f64 anchor_pressure = 20.0e6;
};

/// State + history of a two-phase run.
struct TwoPhaseReport {
  i32 pressure_solves = 0;
  i32 transport_substeps = 0;
  i64 total_linear_iterations = 0;
  f64 end_time_s = 0.0;
  bool completed = false;
  /// Non-wetting phase volume in place at the end [m^3].
  f64 co2_in_place = 0.0;
  /// Total injected volume [m^3].
  f64 injected = 0.0;
};

/// IMPES simulator over a FlowProblem's geometry and transmissibilities.
class TwoPhaseSimulator {
 public:
  TwoPhaseSimulator(const physics::FlowProblem& problem,
                    TwoPhaseOptions options);

  void add_well(const InjectionWell& well);

  [[nodiscard]] const Array3<f64>& saturation() const noexcept {
    return saturation_;
  }
  [[nodiscard]] const Array3<f64>& pressure() const noexcept {
    return pressure_;
  }
  [[nodiscard]] Array3<f32> saturation_f32() const;

  /// Advances to `end_time` seconds, re-solving pressure every
  /// `pressure_interval` seconds of simulated time.
  [[nodiscard]] TwoPhaseReport advance(f64 end_time, f64 pressure_interval);

  /// Non-wetting phase pore volume currently in place [m^3].
  [[nodiscard]] f64 co2_in_place() const;

 private:
  void solve_pressure();
  /// Computes the total Darcy flux through every owned face; returns the
  /// max stable transport step (CFL).
  f64 compute_face_fluxes();
  /// One explicit transport step of size dt.
  void transport_step(f64 dt);

  const physics::FlowProblem& problem_;
  TwoPhaseOptions options_;
  Array3<f64> pressure_;
  Array3<f64> saturation_;
  /// Total flux through each cell's x+/y+/z+/diagonal-owned faces.
  std::array<Array3<f64>, 5> face_flux_;
  std::vector<InjectionWell> wells_;
  i64 linear_iterations_ = 0;
  i32 pressure_solves_ = 0;
};

}  // namespace fvf::solver
