#include "gpusim/occupancy.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fvf::gpusim {

namespace {
/// Fraction of resident warps the SM schedulers keep active on this
/// kernel; calibrated to the paper's Nsight measurement (30.79 of 32).
constexpr f64 kSchedulerEfficiency = 30.79 / 32.0;
}  // namespace

OccupancyEstimate estimate_occupancy(BlockDim block,
                                     const KernelResources& resources,
                                     const SmLimits& limits) {
  const i32 threads = block.threads();
  FVF_REQUIRE(threads > 0 && threads <= 1024);
  FVF_REQUIRE(resources.registers_per_thread > 0);

  const i32 warps_per_block =
      (threads + limits.warp_size - 1) / limits.warp_size;

  // The SM allocates in warp granules: a 33-thread block occupies two
  // full warps of scheduler slots and registers, so every per-SM limit
  // is computed from the warp-rounded footprint, not raw thread count.
  const i32 by_threads =
      limits.max_threads_per_sm / (warps_per_block * limits.warp_size);
  const i32 by_warps = limits.max_warps_per_sm / warps_per_block;
  const i32 by_blocks = limits.max_blocks_per_sm;
  const i32 regs_per_block =
      resources.registers_per_thread * warps_per_block * limits.warp_size;
  const i32 by_registers = limits.registers_per_sm / regs_per_block;

  OccupancyEstimate estimate;
  estimate.blocks_per_sm =
      std::min({by_threads, by_warps, by_blocks, by_registers});
  FVF_REQUIRE_MSG(estimate.blocks_per_sm >= 1,
                  "kernel does not fit on an SM: " << regs_per_block
                                                   << " registers per block");
  estimate.warps_per_sm = std::min(estimate.blocks_per_sm * warps_per_block,
                                   limits.max_warps_per_sm);
  estimate.theoretical_occupancy =
      static_cast<f64>(estimate.warps_per_sm) /
      static_cast<f64>(limits.max_warps_per_sm);
  estimate.occupancy = estimate.theoretical_occupancy;
  estimate.achieved_warps_per_sm =
      static_cast<f64>(estimate.warps_per_sm) * kSchedulerEfficiency;
  estimate.achieved_occupancy =
      estimate.theoretical_occupancy * kSchedulerEfficiency;
  return estimate;
}

}  // namespace fvf::gpusim
