/// \file launch.hpp
/// \brief 3-D grid/block kernel launches over the simulated device.
///
/// Execution is functional and deterministic: blocks are visited in
/// (bz, by, bx) order and threads within a block in (tz, ty, tx) order,
/// the same logical decomposition a CUDA launch with 3-D thread blocks
/// performs. Out-of-range threads are skipped exactly where a CUDA
/// kernel's boundary check would return.
#pragma once

#include <concepts>

#include "common/array3d.hpp"
#include "common/assert.hpp"
#include "common/types.hpp"
#include "gpusim/device.hpp"

namespace fvf::gpusim {

/// CUDA dim3 analog.
struct BlockDim {
  i32 x = 16;
  i32 y = 8;
  i32 z = 8;

  [[nodiscard]] constexpr i32 threads() const noexcept { return x * y * z; }
};

/// Grid dimensions derived from the domain and block size (ceil-div).
struct GridDim {
  i32 x = 0;
  i32 y = 0;
  i32 z = 0;
};

[[nodiscard]] constexpr GridDim make_grid(Extents3 domain,
                                          BlockDim block) noexcept {
  return GridDim{(domain.nx + block.x - 1) / block.x,
                 (domain.ny + block.y - 1) / block.y,
                 (domain.nz + block.z - 1) / block.z};
}

/// Statistics of one launch.
struct LaunchStats {
  i64 threads_launched = 0;
  i64 cells_processed = 0;
  f64 simulated_seconds = 0.0;
};

/// Launches `body(x, y, z)` over every in-domain cell with the given
/// block decomposition; appends the analytic kernel duration computed
/// from `traffic` to the device timeline.
template <std::invocable<i32, i32, i32> Body>
LaunchStats launch_3d(Device& device, Extents3 domain, BlockDim block,
                      const KernelTraffic& traffic, Body&& body) {
  FVF_REQUIRE(block.x > 0 && block.y > 0 && block.z > 0);
  // The paper launches 1024-thread blocks tiled 16x8x8 (Section 6); any
  // smaller block is legal, larger is a CUDA configuration error.
  FVF_REQUIRE_MSG(block.threads() <= 1024,
                  "GPU limit: at most 1024 threads per block");
  FVF_REQUIRE_MSG(domain.nx > 0 && domain.ny > 0 && domain.nz > 0,
                  "launch_3d: domain extents must be positive, got "
                      << domain.nx << "x" << domain.ny << "x" << domain.nz);

  const GridDim grid = make_grid(domain, block);
  LaunchStats stats;
  for (i32 bz = 0; bz < grid.z; ++bz) {
    for (i32 by = 0; by < grid.y; ++by) {
      for (i32 bx = 0; bx < grid.x; ++bx) {
        for (i32 tz = 0; tz < block.z; ++tz) {
          for (i32 ty = 0; ty < block.y; ++ty) {
            for (i32 tx = 0; tx < block.x; ++tx) {
              const i32 x = bx * block.x + tx;
              const i32 y = by * block.y + ty;
              const i32 z = bz * block.z + tz;
              ++stats.threads_launched;
              if (x >= domain.nx || y >= domain.ny || z >= domain.nz) {
                continue;  // boundary check, as in the CUDA kernel
              }
              body(x, y, z);
              ++stats.cells_processed;
            }
          }
        }
      }
    }
  }
  // An empty grid never reaches the device: no kernel is recorded and
  // no analytic duration is appended to the timeline.
  if (stats.cells_processed > 0) {
    stats.simulated_seconds = device.record_kernel(traffic);
  }
  return stats;
}

}  // namespace fvf::gpusim
