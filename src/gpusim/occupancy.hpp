/// \file occupancy.hpp
/// \brief GPU occupancy model reproducing the metrics the paper quotes
///        for its RAJA kernel (Section 7.2): achieved warps per SM and
///        occupancy relative to the hardware ceiling.
#pragma once

#include "common/types.hpp"
#include "gpusim/launch.hpp"

namespace fvf::gpusim {

/// Per-SM hardware limits (A100 / compute capability 8.0 defaults).
struct SmLimits {
  i32 max_threads_per_sm = 2048;
  i32 max_warps_per_sm = 64;
  i32 max_blocks_per_sm = 32;
  i32 registers_per_sm = 65536;
  i32 warp_size = 32;
};

/// Kernel resource usage per thread.
struct KernelResources {
  i32 registers_per_thread = 64;  ///< the flux kernel is register-heavy
  i32 shared_bytes_per_block = 0;
};

/// Occupancy estimate for one launch configuration.
struct OccupancyEstimate {
  i32 blocks_per_sm = 0;
  i32 warps_per_sm = 0;
  f64 occupancy = 0.0;          ///< warps_per_sm / max_warps_per_sm
  f64 theoretical_occupancy = 0.0;
  f64 achieved_warps_per_sm = 0.0;  ///< with scheduling inefficiency
  f64 achieved_occupancy = 0.0;
};

/// CUDA-occupancy-calculator-style estimate: blocks per SM limited by
/// threads, warps, blocks, and registers, all charged at warp
/// granularity (a partial warp costs a full warp of scheduler slots and
/// registers); "achieved" values include a fixed scheduler efficiency
/// factor calibrated to the paper's measurement (30.79 of 32
/// theoretical warps, 48.11% of 50% occupancy).
[[nodiscard]] OccupancyEstimate estimate_occupancy(
    BlockDim block, const KernelResources& resources = {},
    const SmLimits& limits = {});

}  // namespace fvf::gpusim
