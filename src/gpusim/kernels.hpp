/// \file kernels.hpp
/// \brief Executing GPU implementations of the field-equation kernels:
///        CG, transport, wave, heat, and the IMPES two-kernel driver.
///
/// Each kernel runs functionally on the host in CUDA block/thread order
/// (gpusim::launch_3d) while the *device time* it would take comes from
/// the analytic roofline model (Device::record_kernel), exactly like the
/// TPFA baselines in src/baseline/. Determinism contract:
///
///   - Per-cell updates read old state and write only their own cell, so
///     results are independent of the block-tiled visit order and match
///     the raster-order serial oracles bit-for-bit.
///   - The transport CFL bound is an f32 MIN reduction (exact in any
///     order), so gpusim transport equals transport_reference_host — and
///     therefore the fabric program — bitwise.
///   - The CG dot products are f32 SUM reductions, accumulated here in
///     raster order on the simulated device. That pins gpusim CG against
///     a raster-order serial oracle bitwise, while the fabric's tree
///     all-reduce agrees only to tolerance.
///
/// The physics is shared with the fabric programs (core::transport_face,
/// spec::heat_face_weight, core::build_impes_pressure_system), never
/// duplicated.
#pragma once

#include <vector>

#include "common/array3d.hpp"
#include "core/cg_program.hpp"
#include "core/linear_stencil.hpp"
#include "core/transport_program.hpp"
#include "core/wave_program.hpp"
#include "gpusim/launch.hpp"
#include "physics/problem.hpp"
#include "spec/heat.hpp"

namespace fvf::gpusim {

/// Device-side accounting shared by every gpusim kernel run — the GPU
/// analog of the fabric's RunInfo surface.
struct GpuRunInfo {
  f64 device_seconds = 0.0;  ///< simulated timeline (kernels + copies)
  f64 host_seconds = 0.0;    ///< wall-clock of the functional execution
  u64 kernels_launched = 0;
  i64 threads_launched = 0;  ///< summed over every launch_3d grid
  i64 cells_processed = 0;
  u64 h2d_bytes = 0;
  u64 d2h_bytes = 0;
  f64 occupancy = 0.0;  ///< theoretical occupancy of the block shape
};

/// Accumulates a sub-run's accounting (the IMPES driver sums its CG and
/// transport launches the way dataflow::accumulate sums fabric launches).
void accumulate(GpuRunInfo& into, const GpuRunInfo& launch);

/// Launch configuration shared by the gpusim kernels.
struct GpuLaunchOptions {
  BlockDim block{};  ///< the paper's 16x8x8 tiling by default
};

// ---------------------------------------------------------------- CG --

struct GpuCgOptions : GpuLaunchOptions {
  core::CgKernelOptions kernel{};
};

struct GpuCgResult {
  GpuRunInfo info;
  Array3<f32> solution;
  i32 iterations = 0;
  bool converged = false;
  f64 initial_residual_norm = 0.0;
  f64 final_residual_norm = 0.0;
};

/// Solves A x = rhs on the simulated GPU (same stopping rule as the
/// fabric CG; dot products reduced in raster order).
[[nodiscard]] GpuCgResult run_gpu_cg(const core::LinearStencil& stencil,
                                     const Array3<f32>& rhs,
                                     const GpuCgOptions& options);

// --------------------------------------------------------- transport --

struct GpuTransportOptions : GpuLaunchOptions {
  core::TransportKernelOptions kernel{};
};

struct GpuTransportResult {
  GpuRunInfo info;
  Array3<f32> saturation;
  i32 substeps = 0;
  f64 advanced_seconds = 0.0;
};

/// Advances saturations by `options.kernel.window_seconds` holding
/// `pressure` fixed (one IMPES transport window). Bitwise-identical to
/// core::transport_reference_host.
[[nodiscard]] GpuTransportResult run_gpu_transport(
    const physics::FlowProblem& problem, const Array3<f32>& saturation,
    const Array3<f32>& pressure, const Array3<f32>& well_rate,
    const GpuTransportOptions& options);

// -------------------------------------------------------------- wave --

struct GpuWaveOptions : GpuLaunchOptions {
  core::WaveKernelOptions kernel{};
};

struct GpuWaveResult {
  GpuRunInfo info;
  Array3<f32> field;
};

/// Leapfrog wave propagation: per step one stencil-apply kernel
/// (q = A u, faces in mesh::kAllFaces order) and one update kernel
/// (u_next = 2u - u_prev - kappa q).
[[nodiscard]] GpuWaveResult run_gpu_wave(const core::LinearStencil& stencil,
                                         const Array3<f32>& initial,
                                         const GpuWaveOptions& options);

// -------------------------------------------------------------- heat --

struct GpuHeatOptions : GpuLaunchOptions {
  spec::HeatKernelOptions kernel{};
};

struct GpuHeatResult {
  GpuRunInfo info;
  Array3<f32> field;
  i32 steps_completed = 0;
};

/// 9-point Jacobi heat diffusion; bitwise-identical to
/// spec::heat_reference_host.
[[nodiscard]] GpuHeatResult run_gpu_heat(const Array3<f32>& field,
                                         const GpuHeatOptions& options);

// ------------------------------------------------------------- IMPES --

struct GpuImpesOptions : GpuLaunchOptions {
  core::TransportFluid fluid{};
  f64 porosity = 0.2;
  f32 cfl = 0.5f;
  Coord3 anchor_cell{0, 0, 0};
  f64 anchor_pressure = 20.0e6;
  core::CgKernelOptions cg{.max_iterations = 1500,
                           .relative_tolerance = 1e-5f};
  i32 max_substeps_per_window = 5000;
};

/// Per-window statistics (mirrors core::FabricImpesWindow).
struct GpuImpesWindow {
  i32 cg_iterations = 0;
  bool cg_converged = false;
  i32 transport_substeps = 0;
};

struct GpuImpesResult {
  GpuRunInfo info;
  Array3<f32> saturation;
  Array3<f32> pressure;
  std::vector<GpuImpesWindow> windows;
};

/// The IMPES two-kernel driver on the simulated GPU: each window builds
/// the identical lagged-mobility pressure system as the fabric driver
/// (core::build_impes_pressure_system), solves it with run_gpu_cg, and
/// advances saturations with run_gpu_transport. Host work is assembly
/// only — the same scheduling role the fabric driver's host plays.
[[nodiscard]] GpuImpesResult run_gpu_impes(const physics::FlowProblem& problem,
                                           const Array3<f32>& well_rate,
                                           f64 window_seconds, i32 windows,
                                           const GpuImpesOptions& options);

}  // namespace fvf::gpusim
