/// \file device.hpp
/// \brief Simulated GPU device (substitution for the NVIDIA A100 of paper
///        Section 6): explicit host/device memory spaces, kernel launches,
///        and cudaEvent-style timers driven by an analytic timing model.
///
/// Kernels execute *functionally* on the host (deterministically, in
/// GPU-like block/thread order) so their numerical output is real; the
/// *device time* they would take is computed from a bandwidth/compute
/// roofline model calibrated to the paper's published A100 measurements
/// (see EXPERIMENTS.md for the calibration).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace fvf::gpusim {

/// Static description of a device's performance envelope.
struct DeviceSpec {
  std::string name = "sim-gpu";
  f64 dram_bandwidth_bytes_per_s = 1.555e12;  ///< A100-40GB HBM2e
  f64 peak_fp32_flops = 19.5e12;              ///< A100 FP32 (non-TC)
  f64 kernel_launch_overhead_s = 4.0e-6;
  f64 pcie_bandwidth_bytes_per_s = 25.0e9;    ///< host<->device copies
  u64 memory_bytes = 40ull * 1024 * 1024 * 1024;
  /// Fraction of nominal DRAM bandwidth a well-tuned streaming kernel
  /// sustains (ERT-style measured ceiling vs. datasheet).
  f64 achievable_bandwidth_fraction = 0.92;
};

/// An A100-40GB-like device.
[[nodiscard]] DeviceSpec a100_spec();

/// Estimated resource usage of one kernel launch, supplied by the caller
/// (the launch harness computes it from the cells processed).
struct KernelTraffic {
  f64 dram_bytes = 0.0;
  f64 flops = 0.0;
};

/// A typed allocation in the simulated device memory.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(usize count) : storage_(count) {}

  [[nodiscard]] usize size() const noexcept { return storage_.size(); }
  [[nodiscard]] usize bytes() const noexcept {
    return storage_.size() * sizeof(T);
  }
  [[nodiscard]] T* data() noexcept { return storage_.data(); }
  [[nodiscard]] const T* data() const noexcept { return storage_.data(); }
  [[nodiscard]] std::span<T> span() noexcept { return storage_; }
  [[nodiscard]] std::span<const T> span() const noexcept { return storage_; }

 private:
  std::vector<T> storage_;
};

/// A point on the device timeline (cudaEvent analog).
struct DeviceEvent {
  f64 timeline_s = 0.0;
};

/// The simulated device: memory accounting plus a busy-timeline that
/// kernel launches and copies append to.
class Device {
 public:
  explicit Device(DeviceSpec spec = a100_spec()) : spec_(std::move(spec)) {}

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }

  /// Allocates device memory (throws if the 40 GB capacity is exceeded —
  /// the paper notes it sizes meshes to fit device memory wholesale).
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> alloc(usize count, const char* tag = "") {
    const usize bytes = count * sizeof(T);
    FVF_REQUIRE_MSG(allocated_ + bytes <= spec_.memory_bytes,
                    "device out of memory allocating " << bytes << " B ("
                                                       << tag << ")");
    allocated_ += bytes;
    return DeviceBuffer<T>(count);
  }

  /// Host -> device copy: data is copied and the PCIe time appended.
  template <typename T>
  void copy_to_device(std::span<const T> host, DeviceBuffer<T>& device) {
    FVF_REQUIRE(host.size() == device.size());
    std::copy(host.begin(), host.end(), device.data());
    const f64 bytes = static_cast<f64>(host.size_bytes());
    h2d_bytes_ += host.size_bytes();
    timeline_s_ += bytes / spec_.pcie_bandwidth_bytes_per_s;
  }

  template <typename T>
  void copy_to_host(const DeviceBuffer<T>& device, std::span<T> host) {
    FVF_REQUIRE(host.size() == device.size());
    std::copy(device.data(), device.data() + device.size(), host.begin());
    const f64 bytes = static_cast<f64>(host.size_bytes());
    d2h_bytes_ += host.size_bytes();
    timeline_s_ += bytes / spec_.pcie_bandwidth_bytes_per_s;
  }

  /// Appends one kernel execution to the device timeline: the roofline
  /// duration max(bytes/BW, flops/peak) plus launch overhead.
  f64 record_kernel(const KernelTraffic& traffic) {
    const f64 bw = spec_.dram_bandwidth_bytes_per_s *
                   spec_.achievable_bandwidth_fraction;
    const f64 mem_time = traffic.dram_bytes / bw;
    const f64 compute_time = traffic.flops / spec_.peak_fp32_flops;
    const f64 duration =
        spec_.kernel_launch_overhead_s + std::max(mem_time, compute_time);
    timeline_s_ += duration;
    ++kernels_launched_;
    return duration;
  }

  /// cudaEventRecord analog.
  [[nodiscard]] DeviceEvent record_event() const noexcept {
    return DeviceEvent{timeline_s_};
  }
  /// cudaEventElapsedTime analog (seconds, not milliseconds).
  [[nodiscard]] static f64 elapsed_seconds(DeviceEvent start,
                                           DeviceEvent stop) noexcept {
    return stop.timeline_s - start.timeline_s;
  }

  [[nodiscard]] u64 kernels_launched() const noexcept {
    return kernels_launched_;
  }
  [[nodiscard]] usize allocated_bytes() const noexcept { return allocated_; }
  [[nodiscard]] usize h2d_bytes() const noexcept { return h2d_bytes_; }
  [[nodiscard]] usize d2h_bytes() const noexcept { return d2h_bytes_; }

 private:
  DeviceSpec spec_;
  usize allocated_ = 0;
  usize h2d_bytes_ = 0;
  usize d2h_bytes_ = 0;
  u64 kernels_launched_ = 0;
  f64 timeline_s_ = 0.0;
};

}  // namespace fvf::gpusim
