#include "gpusim/device.hpp"

namespace fvf::gpusim {

DeviceSpec a100_spec() {
  DeviceSpec spec;
  spec.name = "NVIDIA A100-40GB (simulated)";
  spec.dram_bandwidth_bytes_per_s = 1.555e12;
  spec.peak_fp32_flops = 19.5e12;
  spec.kernel_launch_overhead_s = 4.0e-6;
  spec.pcie_bandwidth_bytes_per_s = 25.0e9;
  spec.memory_bytes = 40ull * 1024 * 1024 * 1024;
  spec.achievable_bandwidth_fraction = 0.92;
  return spec;
}

}  // namespace fvf::gpusim
