/// \file raja_like.hpp
/// \brief A RAJA-flavoured execution-policy layer over the simulated GPU
///        (paper Section 6, Figure 7).
///
/// The paper's reference implementation nests cuda_thread_z_loop /
/// cuda_thread_y_loop / cuda_thread_x_loop policies under a 16x8x8 tile.
/// This header reproduces the same compile-time shape: a KernelPolicy
/// carrying the tile extents, and `forall_cells` expanding to the tiled
/// triple loop over the simulated device.
#pragma once

#include "gpusim/launch.hpp"

namespace fvf::gpusim {

/// Compile-time tile specification (RAJA::statement::Tile analog).
template <i32 TX, i32 TY, i32 TZ>
struct Tile {
  static constexpr i32 x = TX;
  static constexpr i32 y = TY;
  static constexpr i32 z = TZ;
  static_assert(TX > 0 && TY > 0 && TZ > 0);
  static_assert(TX * TY * TZ <= 1024,
                "GPU thread blocks are limited to 1024 threads");
};

/// The tiling the paper uses: 16 innermost (x) by 8 by 8 = 1024 threads.
using PaperTile = Tile<16, 8, 8>;

/// Policy binding a tile to thread loops (RAJA::KernelPolicy analog).
template <typename TileT>
struct KernelPolicy {
  using tile = TileT;
  [[nodiscard]] static constexpr BlockDim block() noexcept {
    return BlockDim{TileT::x, TileT::y, TileT::z};
  }
};

/// RAJA::kernel analog: applies `body(x, y, z)` to every cell of the
/// domain under the policy's tiling, on the simulated device.
template <typename Policy, std::invocable<i32, i32, i32> Body>
LaunchStats forall_cells(Device& device, Extents3 domain,
                         const KernelTraffic& traffic, Body&& body) {
  return launch_3d(device, domain, Policy::block(), traffic,
                   std::forward<Body>(body));
}

}  // namespace fvf::gpusim
