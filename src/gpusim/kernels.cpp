#include "gpusim/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/timer.hpp"
#include "core/fabric_impes.hpp"
#include "gpusim/device.hpp"
#include "gpusim/occupancy.hpp"
#include "physics/residual.hpp"

namespace fvf::gpusim {

namespace {

/// Analytic per-cell DRAM-traffic constants feeding the roofline model,
/// in the style of baseline::GpuTrafficModel: one f32 stream is 4 bytes.
/// Stencil apply reads the operand + 11 coefficient streams and writes
/// the result; axpy-style updates stream 3 arrays; dot products stream
/// two operands and write one partial; reductions re-read one stream.
constexpr f64 kApplyBytesPerCell = 13.0 * 4.0;
constexpr f64 kApplyFlopsPerCell = 22.0;
constexpr f64 kAxpyBytesPerCell = 12.0;
constexpr f64 kAxpyFlopsPerCell = 2.0;
constexpr f64 kDotBytesPerCell = 12.0;
constexpr f64 kDotFlopsPerCell = 2.0;
constexpr f64 kReduceBytesPerCell = 4.0;
constexpr f64 kReduceFlopsPerCell = 1.0;
/// Transport flux kernel: S, p, elevation, well rate + 10 per-face
/// transmissibilities in; ds and outflow out. ~12 flops per face.
constexpr f64 kTransportFluxBytesPerCell = 16.0 * 4.0;
constexpr f64 kTransportFluxFlopsPerCell = 10.0 * 12.0 + 2.0;
/// Heat Jacobi step: u in (self + cached halo re-reads), u_next out.
constexpr f64 kHeatBytesPerCell = 6.0 * 4.0;
constexpr f64 kHeatFlopsPerCell = 8.0 * 4.0;

[[nodiscard]] KernelTraffic traffic(f64 bytes_per_cell, f64 flops_per_cell,
                                    i64 cells) {
  return KernelTraffic{bytes_per_cell * static_cast<f64>(cells),
                       flops_per_cell * static_cast<f64>(cells)};
}

/// Per-run bookkeeping: folds launch stats and the final device state
/// into the shared GpuRunInfo surface.
class RunAccounting {
 public:
  RunAccounting(Device& device, BlockDim block)
      : device_(device), block_(block) {}

  void add(const LaunchStats& stats) {
    threads_ += stats.threads_launched;
    cells_ += stats.cells_processed;
  }

  [[nodiscard]] GpuRunInfo finish(const WallTimer& timer) const {
    GpuRunInfo info;
    info.device_seconds = Device::elapsed_seconds({}, device_.record_event());
    info.host_seconds = timer.seconds();
    info.kernels_launched = device_.kernels_launched();
    info.threads_launched = threads_;
    info.cells_processed = cells_;
    info.h2d_bytes = device_.h2d_bytes();
    info.d2h_bytes = device_.d2h_bytes();
    info.occupancy = estimate_occupancy(block_).theoretical_occupancy;
    return info;
  }

 private:
  Device& device_;
  BlockDim block_;
  i64 threads_ = 0;
  i64 cells_ = 0;
};

/// Raster-order f32 dot product of two device buffers, charged as one
/// elementwise-product launch plus a reduction pass. The accumulation
/// order is the linear-index order every serial oracle uses, so gpusim
/// CG is bitwise-reproducible against a host reference.
[[nodiscard]] f32 device_dot(Device& device, RunAccounting& accounting,
                             Extents3 ext, BlockDim block,
                             const DeviceBuffer<f32>& a,
                             const DeviceBuffer<f32>& b,
                             DeviceBuffer<f32>& prod) {
  const f32* pa = a.data();
  const f32* pb = b.data();
  f32* pp = prod.data();
  accounting.add(launch_3d(
      device, ext, block,
      traffic(kDotBytesPerCell, kDotFlopsPerCell, ext.cell_count()),
      [&](i32 x, i32 y, i32 z) {
        const i64 i = ext.linear(x, y, z);
        pp[i] = pa[i] * pb[i];
      }));
  f32 sum = 0.0f;
  for (i64 i = 0; i < ext.cell_count(); ++i) {
    sum += pp[i];
  }
  device.record_kernel(
      traffic(kReduceBytesPerCell, kReduceFlopsPerCell, ext.cell_count()));
  return sum;
}

/// Uploads the 11 stencil coefficient streams.
struct DeviceStencil {
  DeviceBuffer<f32> diag;
  std::array<DeviceBuffer<f32>, mesh::kFaceCount> offdiag;
};

[[nodiscard]] DeviceStencil upload_stencil(Device& device,
                                           const core::LinearStencil& stencil,
                                           usize n) {
  DeviceStencil out;
  out.diag = device.alloc<f32>(n, "diag");
  device.copy_to_device<f32>(stencil.diag.flat(), out.diag);
  for (const mesh::Face f : mesh::kAllFaces) {
    auto& buf = out.offdiag[static_cast<usize>(f)];
    buf = device.alloc<f32>(n, "offdiag");
    device.copy_to_device<f32>(stencil.offdiag[static_cast<usize>(f)].flat(),
                               buf);
  }
  return out;
}

/// One matrix-free stencil apply, out = A u: diagonal term first, then
/// the faces in mesh::kAllFaces order (out-of-domain neighbors skipped).
/// Per-cell independent, so bitwise-stable under any visit order.
void launch_apply(Device& device, RunAccounting& accounting, Extents3 ext,
                  BlockDim block, const DeviceStencil& stencil,
                  const DeviceBuffer<f32>& u, DeviceBuffer<f32>& out) {
  const f32* pu = u.data();
  f32* po = out.data();
  accounting.add(launch_3d(
      device, ext, block,
      traffic(kApplyBytesPerCell, kApplyFlopsPerCell, ext.cell_count()),
      [&](i32 x, i32 y, i32 z) {
        const i64 i = ext.linear(x, y, z);
        f32 acc = stencil.diag.data()[i] * pu[i];
        for (const mesh::Face f : mesh::kAllFaces) {
          const Coord3 off = mesh::face_offset(f);
          const i32 nx = x + off.x;
          const i32 ny = y + off.y;
          const i32 nz = z + off.z;
          if (!ext.contains(nx, ny, nz)) {
            continue;
          }
          acc += stencil.offdiag[static_cast<usize>(f)].data()[i] *
                 pu[ext.linear(nx, ny, nz)];
        }
        po[i] = acc;
      }));
}

}  // namespace

void accumulate(GpuRunInfo& into, const GpuRunInfo& launch) {
  into.device_seconds += launch.device_seconds;
  into.host_seconds += launch.host_seconds;
  into.kernels_launched += launch.kernels_launched;
  into.threads_launched += launch.threads_launched;
  into.cells_processed += launch.cells_processed;
  into.h2d_bytes += launch.h2d_bytes;
  into.d2h_bytes += launch.d2h_bytes;
  into.occupancy = std::max(into.occupancy, launch.occupancy);
}

GpuCgResult run_gpu_cg(const core::LinearStencil& stencil,
                       const Array3<f32>& rhs, const GpuCgOptions& options) {
  const Extents3 ext = stencil.extents;
  FVF_REQUIRE(rhs.extents() == ext);
  const i64 cells = ext.cell_count();
  const usize n = static_cast<usize>(cells);

  WallTimer timer;
  Device device;
  RunAccounting accounting(device, options.block);

  DeviceStencil d_stencil = upload_stencil(device, stencil, n);
  auto d_b = device.alloc<f32>(n, "b");
  auto d_x = device.alloc<f32>(n, "x");
  auto d_r = device.alloc<f32>(n, "r");
  auto d_d = device.alloc<f32>(n, "d");
  auto d_q = device.alloc<f32>(n, "q");
  auto d_prod = device.alloc<f32>(n, "dot scratch");
  device.copy_to_device<f32>(rhs.flat(), d_b);

  GpuCgResult result;

  // x = 0, r = b, d = r.
  {
    const f32* pb = d_b.data();
    f32* px = d_x.data();
    f32* pr = d_r.data();
    f32* pd = d_d.data();
    accounting.add(launch_3d(device, ext, options.block,
                             traffic(kAxpyBytesPerCell, 0.0, cells),
                             [&](i32 x, i32 y, i32 z) {
                               const i64 i = ext.linear(x, y, z);
                               px[i] = 0.0f;
                               pr[i] = pb[i];
                               pd[i] = pb[i];
                             }));
  }

  // Identical decision sequence to the fabric CG (cg_program.cpp); only
  // the reduction order of the f32 dots differs (raster vs. tree).
  f32 rho = device_dot(device, accounting, ext, options.block, d_r, d_r,
                       d_prod);
  const f64 rho0 = static_cast<f64>(rho);
  f64 rho_last = rho0;
  if (rho0 <= 0.0 || options.kernel.max_iterations == 0) {
    result.converged = rho0 <= 0.0;
  } else {
    const f32 tol2 = options.kernel.relative_tolerance *
                     options.kernel.relative_tolerance;
    while (true) {
      launch_apply(device, accounting, ext, options.block, d_stencil, d_d,
                   d_q);
      const f32 dot_dq = device_dot(device, accounting, ext, options.block,
                                    d_d, d_q, d_prod);
      FVF_REQUIRE_MSG(dot_dq != 0.0f, "CG breakdown: d'Ad == 0");
      const f32 alpha = rho / dot_dq;
      {
        // x += alpha d ; r -= alpha q (fused into one launch).
        const f32* pd = d_d.data();
        const f32* pq = d_q.data();
        f32* px = d_x.data();
        f32* pr = d_r.data();
        accounting.add(launch_3d(
            device, ext, options.block,
            traffic(2.0 * kAxpyBytesPerCell, 2.0 * kAxpyFlopsPerCell, cells),
            [&](i32 x, i32 y, i32 z) {
              const i64 i = ext.linear(x, y, z);
              px[i] = px[i] + alpha * pd[i];
              pr[i] = pr[i] - alpha * pq[i];
            }));
      }
      const f32 rr = device_dot(device, accounting, ext, options.block, d_r,
                                d_r, d_prod);
      ++result.iterations;
      rho_last = static_cast<f64>(rr);
      if (rr <= tol2 * static_cast<f32>(rho0) ||
          result.iterations >= options.kernel.max_iterations) {
        result.converged = rr <= tol2 * static_cast<f32>(rho0);
        break;
      }
      const f32 beta = rr / rho;
      rho = rr;
      {
        // d = r + beta d.
        const f32* pr = d_r.data();
        f32* pd = d_d.data();
        accounting.add(launch_3d(
            device, ext, options.block,
            traffic(kAxpyBytesPerCell, kAxpyFlopsPerCell, cells),
            [&](i32 x, i32 y, i32 z) {
              const i64 i = ext.linear(x, y, z);
              pd[i] = pr[i] + beta * pd[i];
            }));
      }
    }
  }

  result.solution = Array3<f32>(ext);
  device.copy_to_host<f32>(d_x, result.solution.flat());
  result.initial_residual_norm = std::sqrt(rho0);
  result.final_residual_norm = std::sqrt(rho_last);
  result.info = accounting.finish(timer);
  return result;
}

GpuTransportResult run_gpu_transport(const physics::FlowProblem& problem,
                                     const Array3<f32>& saturation,
                                     const Array3<f32>& pressure,
                                     const Array3<f32>& well_rate,
                                     const GpuTransportOptions& options) {
  const Extents3 ext = problem.extents();
  FVF_REQUIRE(saturation.extents() == ext);
  FVF_REQUIRE(pressure.extents() == ext);
  FVF_REQUIRE(well_rate.extents() == ext);
  const core::TransportKernelOptions& kernel = options.kernel;
  FVF_REQUIRE(kernel.window_seconds > 0.0);
  FVF_REQUIRE(kernel.pore_volume > 0.0f);
  FVF_REQUIRE(kernel.cfl > 0.0f && kernel.cfl <= 1.0f);
  const i64 cells = ext.cell_count();
  const usize n = static_cast<usize>(cells);

  WallTimer timer;
  Device device;
  RunAccounting accounting(device, options.block);

  auto d_s = device.alloc<f32>(n, "saturation");
  auto d_p = device.alloc<f32>(n, "pressure");
  auto d_wells = device.alloc<f32>(n, "well rate");
  auto d_elev = device.alloc<f32>(n, "elevation");
  auto d_ds = device.alloc<f32>(n, "ds");
  auto d_outflow = device.alloc<f32>(n, "outflow");
  std::array<DeviceBuffer<f32>, mesh::kFaceCount> d_trans;
  for (const mesh::Face f : mesh::kAllFaces) {
    d_trans[static_cast<usize>(f)] = device.alloc<f32>(n, "trans");
    device.copy_to_device<f32>(
        problem.transmissibility().face_array(f).flat(),
        d_trans[static_cast<usize>(f)]);
  }
  device.copy_to_device<f32>(saturation.flat(), d_s);
  device.copy_to_device<f32>(pressure.flat(), d_p);
  device.copy_to_device<f32>(well_rate.flat(), d_wells);
  {
    const Array3<f32> elev = physics::cell_elevations(problem.mesh());
    device.copy_to_device<f32>(elev.flat(), d_elev);
  }

  const core::TransportFluid fl = kernel.fluid;
  GpuTransportResult result;
  f64 time = 0.0;
  while (true) {
    // Flux kernel: per-cell ds / outflow accumulation over all ten faces
    // in mesh::kAllFaces order — the same arithmetic as the PE kernel and
    // transport_reference_host, reading only old state.
    {
      const f32* ps = d_s.data();
      const f32* pp = d_p.data();
      const f32* pw = d_wells.data();
      const f32* pe = d_elev.data();
      f32* pds = d_ds.data();
      f32* pout = d_outflow.data();
      accounting.add(launch_3d(
          device, ext, options.block,
          traffic(kTransportFluxBytesPerCell, kTransportFluxFlopsPerCell,
                  cells),
          [&](i32 x, i32 y, i32 z) {
            const i64 i = ext.linear(x, y, z);
            pds[i] = pw[i];
            pout[i] = pw[i];
            for (const mesh::Face face : mesh::kAllFaces) {
              const Coord3 off = mesh::face_offset(face);
              const i32 nx = x + off.x;
              const i32 ny = y + off.y;
              const i32 nz = z + off.z;
              if (!ext.contains(nx, ny, nz)) {
                continue;
              }
              const i64 j = ext.linear(nx, ny, nz);
              const core::TransportFaceFlux flux = core::transport_face(
                  ps[i], ps[j], pp[i], pp[j], pe[i], pe[j],
                  d_trans[static_cast<usize>(face)].data()[i], fl);
              pds[i] -= flux.nonwetting;
              pout[i] += flux.magnitude;
            }
          }));
    }
    // CFL bound: f32 MIN over the outflow stream. MIN is exact in any
    // order, so the raster reduction equals the fabric's tree reduce.
    f32 dt_global = std::numeric_limits<f32>::infinity();
    {
      const f32* pout = d_outflow.data();
      for (i64 i = 0; i < cells; ++i) {
        if (pout[i] > 0.0f) {
          dt_global = std::min(dt_global,
                               kernel.cfl * kernel.pore_volume / pout[i]);
        }
      }
      device.record_kernel(
          traffic(kReduceBytesPerCell, kReduceFlopsPerCell, cells));
    }
    // Identical step-size decision as the PE kernel's on_reduced.
    const f32 remaining = static_cast<f32>(kernel.window_seconds - time);
    f32 dt = std::min(dt_global, remaining);
    if (!(dt > 0.0f)) {
      dt = remaining;  // quiescent or rounding: finish the window
    }
    {
      // Saturation update kernel.
      const f32* pds = d_ds.data();
      f32* ps = d_s.data();
      const f32 pore_volume = kernel.pore_volume;
      accounting.add(launch_3d(
          device, ext, options.block,
          traffic(kAxpyBytesPerCell, 3.0, cells), [&](i32 x, i32 y, i32 z) {
            const i64 i = ext.linear(x, y, z);
            ps[i] = std::clamp(ps[i] + dt * pds[i] / pore_volume, 0.0f, 1.0f);
          }));
    }
    time += static_cast<f64>(dt);
    ++result.substeps;
    if (time >= kernel.window_seconds * (1.0 - 1e-12) ||
        result.substeps >= kernel.max_substeps) {
      break;
    }
  }

  result.saturation = Array3<f32>(ext);
  device.copy_to_host<f32>(d_s, result.saturation.flat());
  result.advanced_seconds = time;
  result.info = accounting.finish(timer);
  return result;
}

GpuWaveResult run_gpu_wave(const core::LinearStencil& stencil,
                           const Array3<f32>& initial,
                           const GpuWaveOptions& options) {
  const Extents3 ext = stencil.extents;
  FVF_REQUIRE(initial.extents() == ext);
  FVF_REQUIRE(options.kernel.timesteps >= 1);
  const i64 cells = ext.cell_count();
  const usize n = static_cast<usize>(cells);

  WallTimer timer;
  Device device;
  RunAccounting accounting(device, options.block);

  DeviceStencil d_stencil = upload_stencil(device, stencil, n);
  auto d_prev = device.alloc<f32>(n, "u_prev");
  auto d_cur = device.alloc<f32>(n, "u_cur");
  auto d_q = device.alloc<f32>(n, "q");
  device.copy_to_device<f32>(initial.flat(), d_prev);
  device.copy_to_device<f32>(initial.flat(), d_cur);

  const f32 kappa = options.kernel.kappa;
  for (i32 step = 0; step < options.kernel.timesteps; ++step) {
    launch_apply(device, accounting, ext, options.block, d_stencil, d_cur,
                 d_q);
    {
      // Leapfrog update written into the dead u_prev buffer, then the
      // time levels rotate by swapping the buffers.
      const f32* pu = d_cur.data();
      const f32* pq = d_q.data();
      f32* pprev = d_prev.data();
      accounting.add(launch_3d(
          device, ext, options.block,
          traffic(kAxpyBytesPerCell, 4.0, cells), [&](i32 x, i32 y, i32 z) {
            const i64 i = ext.linear(x, y, z);
            pprev[i] = 2.0f * pu[i] - pprev[i] - kappa * pq[i];
          }));
    }
    std::swap(d_prev, d_cur);
  }

  GpuWaveResult result;
  result.field = Array3<f32>(ext);
  device.copy_to_host<f32>(d_cur, result.field.flat());
  result.info = accounting.finish(timer);
  return result;
}

GpuHeatResult run_gpu_heat(const Array3<f32>& field,
                           const GpuHeatOptions& options) {
  const Extents3 ext = field.extents();
  FVF_REQUIRE(options.kernel.steps >= 1);
  const i64 cells = ext.cell_count();
  const usize n = static_cast<usize>(cells);

  WallTimer timer;
  Device device;
  RunAccounting accounting(device, options.block);

  auto d_u = device.alloc<f32>(n, "u");
  auto d_next = device.alloc<f32>(n, "u_next");
  device.copy_to_device<f32>(field.flat(), d_u);

  const f32 alpha = options.kernel.alpha;
  GpuHeatResult result;
  for (i32 step = 0; step < options.kernel.steps; ++step) {
    const f32* pu = d_u.data();
    f32* pn = d_next.data();
    accounting.add(launch_3d(
        device, ext, options.block,
        traffic(kHeatBytesPerCell, kHeatFlopsPerCell, cells),
        [&](i32 x, i32 y, i32 z) {
          const i64 i = ext.linear(x, y, z);
          const f32 u_self = pu[i];
          f32 acc = u_self;
          // Identical face order and skip rules as the PE kernel and
          // heat_reference_host.
          for (const mesh::Face face : mesh::kAllFaces) {
            if (mesh::is_vertical(face)) {
              continue;  // Z layers are independent
            }
            const Coord3 off = mesh::face_offset(face);
            const i32 nx = x + off.x;
            const i32 ny = y + off.y;
            if (nx < 0 || nx >= ext.nx || ny < 0 || ny >= ext.ny) {
              continue;  // mesh-edge face: no-flux boundary
            }
            const f32 u_nb = pu[ext.linear(nx, ny, z)];
            acc += alpha * (spec::heat_face_weight(face) * (u_nb - u_self));
          }
          pn[i] = acc;
        }));
    std::swap(d_u, d_next);
    ++result.steps_completed;
  }

  result.field = Array3<f32>(ext);
  device.copy_to_host<f32>(d_u, result.field.flat());
  result.info = accounting.finish(timer);
  return result;
}

GpuImpesResult run_gpu_impes(const physics::FlowProblem& problem,
                             const Array3<f32>& well_rate, f64 window_seconds,
                             i32 windows, const GpuImpesOptions& options) {
  const Extents3 ext = problem.extents();
  FVF_REQUIRE(well_rate.extents() == ext);
  FVF_REQUIRE(window_seconds > 0.0);
  FVF_REQUIRE(windows >= 1);
  FVF_REQUIRE(options.porosity > 0.0 && options.porosity < 1.0);
  FVF_REQUIRE(ext.contains(options.anchor_cell.x, options.anchor_cell.y,
                           options.anchor_cell.z));

  GpuImpesResult result;
  result.saturation = Array3<f32>(ext, 0.0f);
  result.pressure =
      Array3<f32>(ext, static_cast<f32>(options.anchor_pressure));
  result.info.occupancy = 0.0;

  for (i32 w = 0; w < windows; ++w) {
    // Host-side assembly of the lagged-mobility system — identical to
    // the fabric driver by construction (shared free function).
    core::LinearStencil stencil;
    Array3<f32> rhs;
    core::build_impes_pressure_system(
        problem, options.fluid, result.saturation, result.pressure, well_rate,
        options.anchor_cell, options.anchor_pressure, stencil, rhs);
    const core::ScaledSystem scaled = core::jacobi_scale(stencil);

    GpuCgOptions cg_options;
    cg_options.block = options.block;
    cg_options.kernel = options.cg;
    const GpuCgResult cg =
        run_gpu_cg(scaled.stencil, core::scale_rhs(scaled, rhs), cg_options);
    FVF_REQUIRE_MSG(cg.converged, "gpusim pressure solve did not converge ("
                                      << cg.iterations << " iterations, ||r|| "
                                      << cg.final_residual_norm << ")");
    result.pressure = core::unscale_solution(scaled, cg.solution);

    GpuTransportOptions transport_options;
    transport_options.block = options.block;
    transport_options.kernel.fluid = options.fluid;
    transport_options.kernel.cfl = options.cfl;
    transport_options.kernel.window_seconds = window_seconds;
    transport_options.kernel.max_substeps = options.max_substeps_per_window;
    transport_options.kernel.pore_volume = static_cast<f32>(
        problem.mesh().cell_volume() * options.porosity);
    const GpuTransportResult transport =
        run_gpu_transport(problem, result.saturation, result.pressure,
                          well_rate, transport_options);
    result.saturation = transport.saturation;

    GpuImpesWindow window;
    window.cg_iterations = cg.iterations;
    window.cg_converged = cg.converged;
    window.transport_substeps = transport.substeps;
    result.windows.push_back(window);
    accumulate(result.info, cg.info);
    accumulate(result.info, transport.info);
  }
  return result;
}

}  // namespace fvf::gpusim
