/// \file json.hpp
/// \brief Minimal JSON value + recursive-descent parser.
///
/// Just enough JSON for the observability tooling: tools/bench_compare
/// reads the BENCH_<name>.json sidecars, and the tests round-trip the
/// Perfetto export through it. Hand-rolled on purpose — the toolchain
/// image carries no JSON library, and the two producers are ours, so a
/// strict little parser (no comments, no trailing commas) is all that is
/// needed.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace fvf::obs {

class JsonValue {
 public:
  enum class Kind : u8 { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  f64 number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Key/value pairs in document order (duplicate keys keep the first).
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::Object;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::Array; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::String;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

/// Parses one JSON document (throws std::runtime_error with a position
/// diagnostic on malformed input or trailing garbage).
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace fvf::obs
