#include "obs/perfetto.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "obs/phase.hpp"

namespace fvf::obs {

namespace {

/// JSON has no Inf/NaN; exact %.17g keeps cycle stamps round-trippable.
std::string num(f64 v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {
    os_ << "{\"displayTimeUnit\": \"ms\",\n"
        << "\"otherData\": {\"time_base\": \"1 us == 1 simulated cycle\"},\n"
        << "\"traceEvents\": [";
  }

  void begin_event() { os_ << (first_ ? "\n" : ",\n"); first_ = false; }

  void metadata(const char* what, i32 pid, i32 tid, bool with_tid,
                const std::string& name) {
    begin_event();
    os_ << "{\"ph\": \"M\", \"pid\": " << pid;
    if (with_tid) {
      os_ << ", \"tid\": " << tid;
    }
    os_ << ", \"name\": \"" << what << "\", \"args\": {\"name\": \"" << name
        << "\"}}";
  }

  void slice(i32 pid, i32 tid, f64 ts, f64 dur, std::string_view name) {
    begin_event();
    os_ << "{\"ph\": \"X\", \"cat\": \"phase\", \"pid\": " << pid
        << ", \"tid\": " << tid << ", \"ts\": " << num(ts)
        << ", \"dur\": " << num(dur) << ", \"name\": \"" << name << "\"}";
  }

  void instant(i32 pid, i32 tid, f64 ts, std::string_view name,
               std::string_view cat, i32 color, std::string_view from,
               u32 words) {
    begin_event();
    os_ << "{\"ph\": \"i\", \"s\": \"t\", \"cat\": \"" << cat
        << "\", \"pid\": " << pid << ", \"tid\": " << tid
        << ", \"ts\": " << num(ts) << ", \"name\": \"" << name
        << "\", \"args\": {\"color\": " << color << ", \"from\": \"" << from
        << "\", \"words\": " << words << "}}";
  }

  void finish() { os_ << "\n]}\n"; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

}  // namespace

bool is_fault_kind(wse::TraceKind kind) noexcept {
  switch (kind) {
    case wse::TraceKind::FaultStall:
    case wse::TraceKind::FaultFlip:
    case wse::TraceKind::FaultHalt:
    case wse::TraceKind::ParityDrop:
      return true;
    default:
      return false;
  }
}

PerfettoExportStats write_perfetto_json(std::ostream& os,
                                        const wse::Fabric& fabric,
                                        const wse::TraceRecorder* recorder) {
  PerfettoExportStats stats;
  EventWriter w(os);

  // Track naming: one "process" per fabric row, one "thread" per PE, so
  // Perfetto groups the grid the way the paper draws it.
  for (i32 y = 0; y < fabric.height(); ++y) {
    w.metadata("process_name", y, 0, false,
               "fabric row " + std::to_string(y));
    for (i32 x = 0; x < fabric.width(); ++x) {
      w.metadata("thread_name", y, x, true,
                 "PE(" + std::to_string(x) + "," + std::to_string(y) + ")");
    }
  }

  for (i32 y = 0; y < fabric.height(); ++y) {
    for (i32 x = 0; x < fabric.width(); ++x) {
      const wse::Pe& pe = fabric.pe(x, y);
      stats.spans_dropped += pe.phase_spans_dropped();
      for (const PhaseSpan& span : pe.phase_spans()) {
        w.slice(y, x, span.begin, span.end - span.begin,
                phase_name(span.phase));
        ++stats.phase_slices;
      }
    }
  }

  if (recorder != nullptr) {
    // The recorder snapshot is in the engine's deterministic processing
    // order, so timestamps are globally non-decreasing.
    for (const wse::TraceEvent& e : recorder->events()) {
      const bool fault = is_fault_kind(e.kind);
      w.instant(e.y, e.x, e.time, trace_kind_name(e.kind),
                fault ? "fault" : "trace", static_cast<i32>(e.color.id()),
                wse::dir_name(e.from), e.payload_words);
      ++stats.instant_events;
      stats.fault_instants += fault ? 1u : 0u;
    }
  }

  w.finish();
  return stats;
}

bool write_perfetto_json(const std::string& path, const wse::Fabric& fabric,
                         const wse::TraceRecorder* recorder,
                         PerfettoExportStats* stats) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    return false;
  }
  const PerfettoExportStats s = write_perfetto_json(out, fabric, recorder);
  if (stats != nullptr) {
    *stats = s;
  }
  return out.good();
}

}  // namespace fvf::obs
