/// \file perfetto.hpp
/// \brief Chrome `trace_event` JSON export of a fabric run: the recorded
///        phase spans become one timeline track per PE (grouped by fabric
///        row), and the TraceRecorder stream becomes instant markers —
///        fault injections included. The file loads directly in Perfetto
///        (ui.perfetto.dev) or chrome://tracing.
///
/// Time base: 1 trace microsecond == 1 simulated cycle (the trace_event
/// format counts in µs; cycles are the simulator's native unit, so the
/// timeline reads in cycles).
#pragma once

#include <iosfwd>
#include <string>

#include "common/types.hpp"
#include "wse/fabric.hpp"
#include "wse/trace.hpp"

namespace fvf::obs {

/// What an export wrote, for accounting and tests.
struct PerfettoExportStats {
  usize phase_slices = 0;    ///< "X" complete events from phase spans
  usize instant_events = 0;  ///< "i" markers from the TraceRecorder
  usize fault_instants = 0;  ///< subset of instants that are fault kinds
  u64 spans_dropped = 0;     ///< per-PE span-capacity overflow, summed
};

/// Streams the trace_event JSON for a finished run. Phase spans come from
/// the fabric's PEs (record them by setting
/// ExecutionOptions::phase_span_capacity > 0); `recorder` (optional) adds
/// the routed/task/fault event markers.
PerfettoExportStats write_perfetto_json(std::ostream& os,
                                        const wse::Fabric& fabric,
                                        const wse::TraceRecorder* recorder);

/// File convenience wrapper; returns false (and writes nothing) when the
/// path cannot be opened.
bool write_perfetto_json(const std::string& path, const wse::Fabric& fabric,
                         const wse::TraceRecorder* recorder,
                         PerfettoExportStats* stats = nullptr);

/// True for the TraceKinds that mark injected faults or their detection.
[[nodiscard]] bool is_fault_kind(wse::TraceKind kind) noexcept;

}  // namespace fvf::obs
