/// \file bench_diff.hpp
/// \brief The bench-regression gate's engine: parse two BENCH_<name>.json
///        sidecars (written by bench/bench_common.hpp) and report every
///        out-of-tolerance divergence. Used by tools/bench_compare and
///        unit-tested directly.
///
/// The simulator is deterministic, so the gate can be strict: cycle
/// counts and device seconds get a small relative tolerance (they move
/// only when the cost model or the schedule changes), instruction
/// counters default to exact equality. Drift is flagged in *both*
/// directions — an unexplained improvement stales the committed baseline
/// just like a regression does.
///
/// The one exception is host metrics, which depend on the machine
/// running the gate. A metric whose name starts with `min_` (e.g.
/// bench_sim_throughput's min_events_per_host_second) declares "higher
/// is better, machine-sensitive": it fails the gate only when the
/// current value drops below baseline * (1 - min_metric_tolerance), and
/// a faster machine never trips it. Symmetrically, a `max_` prefix
/// (e.g. bench_serve_load's max_p99_latency_ms) declares "lower is
/// better, machine-sensitive": it fails only when the current value
/// rises above baseline * (1 + max_metric_tolerance).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace fvf::obs {

struct BenchCaseData {
  std::string name;
  f64 cycles = 0.0;
  f64 device_seconds = 0.0;
  std::vector<std::pair<std::string, f64>> counters;
  std::vector<std::pair<std::string, f64>> metrics;
};

struct BenchData {
  std::string bench;
  std::vector<BenchCaseData> cases;
};

/// Parses one sidecar document (throws std::runtime_error when the text
/// is not JSON or not the BENCH sidecar shape).
[[nodiscard]] BenchData parse_bench_json(const std::string& text);

struct BenchCompareOptions {
  /// Relative tolerance on cycles / device_seconds / metrics.
  f64 tolerance = 0.01;
  /// Relative tolerance on instruction counters (0 = bit-exact).
  f64 counter_tolerance = 0.0;
  /// One-direction tolerance for `min_`-prefixed metrics: the gate
  /// fails only when current < baseline * (1 - min_metric_tolerance).
  /// Generous by default — host throughput swings with machine load,
  /// and the gate should only catch an engine falling off a cliff.
  f64 min_metric_tolerance = 0.6;
  /// One-direction tolerance for `max_`-prefixed metrics: the gate
  /// fails only when current > baseline * (1 + max_metric_tolerance).
  /// Generous by default, for the same reason — host latency swings
  /// with machine load, and only a cliff should trip the gate.
  f64 max_metric_tolerance = 3.0;
  /// Metric/counter names excluded from gating (value drift AND
  /// presence are ignored). Default: "host_seconds" — host wall-clock is
  /// recorded for information but is inherently noisy, unlike every
  /// simulated number in the sidecar.
  std::vector<std::string> ignored_fields = {"host_seconds"};
};

/// One out-of-tolerance field (or a structural mismatch: missing/extra
/// case or field — those report rel = inf via the `structural` flag).
struct BenchDivergence {
  std::string case_name;
  std::string field;
  f64 baseline = 0.0;
  f64 current = 0.0;
  f64 rel = 0.0;
  bool structural = false;

  [[nodiscard]] std::string describe() const;
};

/// Symmetric relative difference: |a-b| / max(|a|, |b|); 0 when both 0.
[[nodiscard]] f64 relative_difference(f64 a, f64 b) noexcept;

/// Diffs `current` against `baseline`; empty result == gate passes.
[[nodiscard]] std::vector<BenchDivergence> compare_bench(
    const BenchData& baseline, const BenchData& current,
    const BenchCompareOptions& options = {});

}  // namespace fvf::obs
