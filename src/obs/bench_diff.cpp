#include "obs/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace fvf::obs {

namespace {

const JsonValue& require(const JsonValue* v, const std::string& what) {
  if (v == nullptr) {
    throw std::runtime_error("BENCH json: missing " + what);
  }
  return *v;
}

f64 require_number(const JsonValue& parent, const std::string& key) {
  const JsonValue& v = require(parent.find(key), "'" + key + "'");
  if (!v.is_number()) {
    throw std::runtime_error("BENCH json: '" + key + "' is not a number");
  }
  return v.number;
}

std::vector<std::pair<std::string, f64>> number_map(const JsonValue& parent,
                                                    const std::string& key) {
  std::vector<std::pair<std::string, f64>> out;
  const JsonValue* v = parent.find(key);
  if (v == nullptr) {
    return out;  // older sidecars may predate the section
  }
  if (!v->is_object()) {
    throw std::runtime_error("BENCH json: '" + key + "' is not an object");
  }
  for (const auto& [name, entry] : v->object) {
    if (!entry.is_number()) {
      throw std::runtime_error("BENCH json: " + key + "." + name +
                               " is not a number");
    }
    out.emplace_back(name, entry.number);
  }
  return out;
}

const BenchCaseData* find_case(const BenchData& data,
                               const std::string& name) {
  for (const BenchCaseData& c : data.cases) {
    if (c.name == name) {
      return &c;
    }
  }
  return nullptr;
}

const f64* find_field(const std::vector<std::pair<std::string, f64>>& fields,
                      const std::string& name) {
  for (const auto& [key, value] : fields) {
    if (key == name) {
      return &value;
    }
  }
  return nullptr;
}

void compare_field(std::vector<BenchDivergence>& out,
                   const std::string& case_name, const std::string& field,
                   f64 baseline, f64 current, f64 tolerance) {
  const f64 rel = relative_difference(baseline, current);
  if (rel > tolerance) {
    out.push_back(BenchDivergence{case_name, field, baseline, current, rel,
                                  /*structural=*/false});
  }
}

bool ignored(const std::vector<std::string>& ignored_fields,
             const std::string& name) {
  for (const std::string& field : ignored_fields) {
    if (field == name) {
      return true;
    }
  }
  return false;
}

/// `min_`-prefixed metrics are machine-sensitive "higher is better"
/// measurements (see the header): gated one direction only.
bool min_metric(const std::string& name) {
  return name.rfind("min_", 0) == 0;
}

/// `max_`-prefixed metrics are the mirror image: "lower is better"
/// host measurements (latencies), gated only against rising.
bool max_metric(const std::string& name) {
  return name.rfind("max_", 0) == 0;
}

void compare_min_metric(std::vector<BenchDivergence>& out,
                        const std::string& case_name, const std::string& field,
                        f64 baseline, f64 current, f64 tolerance) {
  if (current < baseline * (1.0 - tolerance)) {
    out.push_back(BenchDivergence{case_name, field, baseline, current,
                                  relative_difference(baseline, current),
                                  /*structural=*/false});
  }
}

void compare_max_metric(std::vector<BenchDivergence>& out,
                        const std::string& case_name, const std::string& field,
                        f64 baseline, f64 current, f64 tolerance) {
  if (current > baseline * (1.0 + tolerance)) {
    out.push_back(BenchDivergence{case_name, field, baseline, current,
                                  relative_difference(baseline, current),
                                  /*structural=*/false});
  }
}

/// Both directions: fields present in `a` must exist in `b` and vice
/// versa; values are compared once (when scanning `a`).
void compare_field_maps(std::vector<BenchDivergence>& out,
                        const std::string& case_name, const std::string& kind,
                        const std::vector<std::pair<std::string, f64>>& base,
                        const std::vector<std::pair<std::string, f64>>& cur,
                        f64 tolerance, f64 min_metric_tolerance,
                        f64 max_metric_tolerance,
                        const std::vector<std::string>& ignored_fields) {
  for (const auto& [name, value] : base) {
    if (ignored(ignored_fields, name)) {
      continue;
    }
    const f64* current = find_field(cur, name);
    if (current == nullptr) {
      out.push_back(BenchDivergence{case_name, kind + "." + name, value, 0.0,
                                    0.0, /*structural=*/true});
      continue;
    }
    if (kind == "metrics" && min_metric(name)) {
      compare_min_metric(out, case_name, kind + "." + name, value, *current,
                         min_metric_tolerance);
      continue;
    }
    if (kind == "metrics" && max_metric(name)) {
      compare_max_metric(out, case_name, kind + "." + name, value, *current,
                         max_metric_tolerance);
      continue;
    }
    compare_field(out, case_name, kind + "." + name, value, *current,
                  tolerance);
  }
  for (const auto& [name, value] : cur) {
    if (ignored(ignored_fields, name)) {
      continue;
    }
    if (find_field(base, name) == nullptr) {
      out.push_back(BenchDivergence{case_name, kind + "." + name, 0.0, value,
                                    0.0, /*structural=*/true});
    }
  }
}

}  // namespace

std::string BenchDivergence::describe() const {
  std::ostringstream os;
  if (structural) {
    os << "case '" << case_name << "': " << field
       << " present on only one side (baseline=" << baseline
       << ", current=" << current << ")";
    return os.str();
  }
  os << "case '" << case_name << "': " << field << " baseline=" << baseline
     << " current=" << current << " (" << rel * 100.0 << "% apart)";
  return os.str();
}

f64 relative_difference(f64 a, f64 b) noexcept {
  const f64 scale = std::max(std::fabs(a), std::fabs(b));
  if (scale == 0.0) {
    return 0.0;
  }
  if (!std::isfinite(a) || !std::isfinite(b)) {
    return a == b ? 0.0 : std::numeric_limits<f64>::infinity();
  }
  return std::fabs(a - b) / scale;
}

BenchData parse_bench_json(const std::string& text) {
  const JsonValue doc = parse_json(text);
  if (!doc.is_object()) {
    throw std::runtime_error("BENCH json: document is not an object");
  }
  BenchData data;
  const JsonValue& bench = require(doc.find("bench"), "'bench'");
  if (!bench.is_string()) {
    throw std::runtime_error("BENCH json: 'bench' is not a string");
  }
  data.bench = bench.string;
  const JsonValue& cases = require(doc.find("cases"), "'cases'");
  if (!cases.is_array()) {
    throw std::runtime_error("BENCH json: 'cases' is not an array");
  }
  for (const JsonValue& entry : cases.array) {
    if (!entry.is_object()) {
      throw std::runtime_error("BENCH json: case entry is not an object");
    }
    BenchCaseData c;
    const JsonValue& name = require(entry.find("name"), "case 'name'");
    if (!name.is_string()) {
      throw std::runtime_error("BENCH json: case 'name' is not a string");
    }
    c.name = name.string;
    c.cycles = require_number(entry, "cycles");
    c.device_seconds = require_number(entry, "device_seconds");
    c.counters = number_map(entry, "counters");
    c.metrics = number_map(entry, "metrics");
    data.cases.push_back(std::move(c));
  }
  return data;
}

std::vector<BenchDivergence> compare_bench(const BenchData& baseline,
                                           const BenchData& current,
                                           const BenchCompareOptions& options) {
  std::vector<BenchDivergence> out;
  for (const BenchCaseData& base : baseline.cases) {
    const BenchCaseData* cur = find_case(current, base.name);
    if (cur == nullptr) {
      out.push_back(BenchDivergence{base.name, "(case)", base.cycles, 0.0, 0.0,
                                    /*structural=*/true});
      continue;
    }
    compare_field(out, base.name, "cycles", base.cycles, cur->cycles,
                  options.tolerance);
    compare_field(out, base.name, "device_seconds", base.device_seconds,
                  cur->device_seconds, options.tolerance);
    compare_field_maps(out, base.name, "counters", base.counters,
                       cur->counters, options.counter_tolerance,
                       options.min_metric_tolerance,
                       options.max_metric_tolerance, options.ignored_fields);
    compare_field_maps(out, base.name, "metrics", base.metrics, cur->metrics,
                       options.tolerance, options.min_metric_tolerance,
                       options.max_metric_tolerance, options.ignored_fields);
  }
  for (const BenchCaseData& cur : current.cases) {
    if (find_case(baseline, cur.name) == nullptr) {
      out.push_back(BenchDivergence{cur.name, "(case)", 0.0, cur.cycles, 0.0,
                                    /*structural=*/true});
    }
  }
  return out;
}

}  // namespace fvf::obs
