#include "obs/json.hpp"

#include <cstdlib>
#include <stdexcept>

namespace fvf::obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after JSON document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', found '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = (c == 't');
        if (!consume_literal(c == 't' ? "true" : "false")) {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) {
          fail("bad literal");
        }
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          u32 code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<u32>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<u32>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<u32>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // Our producers are ASCII; anything wider degrades visibly.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const usize start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const f64 parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  usize pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace fvf::obs
