/// \file phase.hpp
/// \brief Phase taxonomy of the observability layer: every cycle a PE's
///        clock advances is attributed to exactly one phase, giving the
///        measured Table 3-style time split the paper reads from the
///        CS-2's hardware timestamp counters.
///
/// This header is the vocabulary shared by the engine (src/wse) and the
/// runtime (src/dataflow); it depends on nothing but the core types so
/// fvf_wse can include it without linking the fvf_obs library (which
/// holds the exporters).
#pragma once

#include <array>
#include <string_view>

#include "common/types.hpp"

namespace fvf::obs {

/// Where a PE's cycles went. A task is tagged with a phase at dispatch
/// (wse::PeProgram::task_phase) and may retag itself mid-handler via
/// wse::PeApi::set_phase — e.g. a halo-receive task switches to
/// LocalCompute when it hands the drained block to the physics kernel.
enum class Phase : u8 {
  LocalCompute = 0,  ///< physics kernels, residual assembly, EOS
  Halo,              ///< halo send/recv: FMOV drain, diagonal forwards
  AllReduce,         ///< collective reduction/broadcast trees
  Reliability,       ///< NACK/retransmit protocol and its watchdogs
  Idle,              ///< waiting for data between tasks (dispatch gaps)
};

inline constexpr usize kPhaseCount = 5;

[[nodiscard]] constexpr std::string_view phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::LocalCompute:
      return "compute";
    case Phase::Halo:
      return "halo";
    case Phase::AllReduce:
      return "allreduce";
    case Phase::Reliability:
      return "reliability";
    case Phase::Idle:
      return "idle";
  }
  return "?";
}

/// Per-phase cycle accumulator. The engine maintains one per PE; the sum
/// over all phases equals that PE's clock at the end of the run (the
/// invariant the observability tests pin).
struct PhaseCycles {
  std::array<f64, kPhaseCount> cycles{};

  [[nodiscard]] f64& operator[](Phase phase) noexcept {
    return cycles[static_cast<usize>(phase)];
  }
  [[nodiscard]] f64 operator[](Phase phase) const noexcept {
    return cycles[static_cast<usize>(phase)];
  }

  /// All attributed cycles, idle included (== the PE clock).
  [[nodiscard]] f64 total() const noexcept {
    f64 sum = 0.0;
    for (const f64 c : cycles) {
      sum += c;
    }
    return sum;
  }

  /// Non-idle cycles only.
  [[nodiscard]] f64 busy() const noexcept {
    return total() - (*this)[Phase::Idle];
  }

  PhaseCycles& operator+=(const PhaseCycles& other) noexcept {
    for (usize i = 0; i < kPhaseCount; ++i) {
      cycles[i] += other.cycles[i];
    }
    return *this;
  }
};

/// One contiguous stretch of PE time spent in a (non-idle) phase, kept
/// for timeline export. Recorded only when
/// wse::ExecutionOptions::phase_span_capacity > 0.
struct PhaseSpan {
  Phase phase = Phase::LocalCompute;
  f64 begin = 0.0;
  f64 end = 0.0;
};

}  // namespace fvf::obs
