#include "mesh/fields.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace fvf::mesh {

Array3<f32> homogeneous_field(Extents3 extents, f32 value) {
  FVF_REQUIRE(value > 0.0f);
  return Array3<f32>(extents, value);
}

Array3<f32> layered_permeability(Extents3 extents, f32 min_value,
                                 f32 max_value, u64 seed) {
  FVF_REQUIRE(min_value > 0.0f && max_value >= min_value);
  Xoshiro256 rng(seed);
  const f64 log_min = std::log10(static_cast<f64>(min_value));
  const f64 log_max = std::log10(static_cast<f64>(max_value));

  Array3<f32> field(extents);
  for (i32 z = 0; z < extents.nz; ++z) {
    const f64 k = std::pow(10.0, rng.uniform(log_min, log_max));
    for (i32 y = 0; y < extents.ny; ++y) {
      for (i32 x = 0; x < extents.nx; ++x) {
        field(x, y, z) = static_cast<f32>(k);
      }
    }
  }
  return field;
}

namespace {

/// One pass of a 7-point box filter (self + six cardinal neighbors) with
/// clamped boundaries; preserves the mean of the field.
void box_smooth(Array3<f64>& field) {
  const Extents3 ext = field.extents();
  Array3<f64> out(ext);
  const auto clamped = [&](i32 x, i32 y, i32 z) -> f64 {
    x = std::clamp(x, 0, ext.nx - 1);
    y = std::clamp(y, 0, ext.ny - 1);
    z = std::clamp(z, 0, ext.nz - 1);
    return field(x, y, z);
  };
  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        const f64 sum = clamped(x, y, z) + clamped(x - 1, y, z) +
                        clamped(x + 1, y, z) + clamped(x, y - 1, z) +
                        clamped(x, y + 1, z) + clamped(x, y, z - 1) +
                        clamped(x, y, z + 1);
        out(x, y, z) = sum / 7.0;
      }
    }
  }
  field = std::move(out);
}

}  // namespace

Array3<f32> lognormal_permeability(Extents3 extents,
                                   const LognormalOptions& options) {
  FVF_REQUIRE(options.smoothing_passes >= 0);
  Xoshiro256 rng(options.seed);

  Array3<f64> noise(extents);
  for (i64 i = 0; i < noise.size(); ++i) {
    noise[i] = rng.normal();
  }
  for (int pass = 0; pass < options.smoothing_passes; ++pass) {
    box_smooth(noise);
  }

  // Smoothing shrinks the variance; rescale to the requested sigma.
  f64 mean = 0.0;
  for (i64 i = 0; i < noise.size(); ++i) {
    mean += noise[i];
  }
  mean /= static_cast<f64>(noise.size());
  f64 var = 0.0;
  for (i64 i = 0; i < noise.size(); ++i) {
    const f64 d = noise[i] - mean;
    var += d * d;
  }
  var /= static_cast<f64>(noise.size());
  const f64 scale = var > 0.0 ? options.log10_sigma / std::sqrt(var) : 0.0;

  Array3<f32> field(extents);
  for (i64 i = 0; i < field.size(); ++i) {
    const f64 log10_k = options.log10_mean + scale * (noise[i] - mean);
    field[i] = static_cast<f32>(std::pow(10.0, log10_k));
  }
  return field;
}

Array3<f32> channelized_permeability(Extents3 extents,
                                     const ChannelOptions& options) {
  FVF_REQUIRE(options.background > 0.0f && options.channel > 0.0f);
  FVF_REQUIRE(options.channels_per_layer >= 1);
  FVF_REQUIRE(options.half_width_cells > 0.0);
  Xoshiro256 rng(options.seed);

  Array3<f32> field(extents, options.background);
  for (i32 z = 0; z < extents.nz; ++z) {
    for (i32 c = 0; c < options.channels_per_layer; ++c) {
      // One meandering centreline: y(x) = y0 + A sin(2 pi f x/nx + phi).
      const f64 y0 = rng.uniform(0.0, static_cast<f64>(extents.ny - 1));
      const f64 amplitude =
          options.amplitude_fraction * static_cast<f64>(extents.ny);
      const f64 frequency = rng.uniform(0.5, 2.0);
      const f64 phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
      for (i32 x = 0; x < extents.nx; ++x) {
        const f64 centre =
            y0 + amplitude *
                     std::sin(2.0 * std::numbers::pi * frequency *
                                  static_cast<f64>(x) /
                                  std::max(1, extents.nx - 1) +
                              phase);
        for (i32 y = 0; y < extents.ny; ++y) {
          if (std::abs(static_cast<f64>(y) - centre) <=
              options.half_width_cells) {
            field(x, y, z) = options.channel;
          }
        }
      }
    }
  }
  return field;
}

Array3<f32> hydrostatic_pressure(const CartesianMesh& mesh,
                                 const PressureFieldOptions& options) {
  const Extents3 ext = mesh.extents();
  Xoshiro256 rng(options.seed);
  // Reference elevation: top layer, ignoring topography so columns with a
  // structural high end up slightly over-pressured, as in a real trap.
  const f64 top_elevation = mesh.layer_elevation(ext.nz - 1);

  Array3<f32> pressure(ext);
  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        const f64 head = options.reference_density * units::kGravity *
                         (top_elevation - mesh.elevation(x, y, z));
        const f64 noise = options.perturbation * rng.uniform(-1.0, 1.0);
        pressure(x, y, z) =
            static_cast<f32>(options.top_pressure + head + noise);
      }
    }
  }
  return pressure;
}

Array3<f32> iteration_pressure(const CartesianMesh& mesh,
                               const PressureFieldOptions& options,
                               i32 iteration) {
  Array3<f32> pressure = hydrostatic_pressure(mesh, options);
  for (i32 it = 0; it < iteration; ++it) {
    advance_pressure(pressure.span(), it);
  }
  return pressure;
}

void advance_pressure(Span3<f32> pressure, i32 iteration) {
  // A cheap, strictly deterministic update: a smooth additive bump whose
  // phase depends on the iteration index. Keeps every pressure vector
  // distinct across the 1000 applications of Algorithm 1 without
  // host<->device traffic, matching the paper's measurement protocol of
  // timing device-side work only.
  const i64 n = pressure.size();
  f32* data = pressure.data();
  for (i64 i = 0; i < n; ++i) {
    data[i] += pressure_bump(i, iteration);
  }
}

}  // namespace fvf::mesh
