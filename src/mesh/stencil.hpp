/// \file stencil.hpp
/// \brief The 10-neighbor flux stencil of the paper (Section 5.1).
///
/// Each interior cell exchanges fluxes with:
///   - four X-Y *cardinal* neighbors (west/east/south/north),
///   - four X-Y *diagonal* neighbors, and
///   - two vertical neighbors (below/above) that live in the same PE's
///     memory on the dataflow architecture.
///
/// The face ordering defined here is shared by every implementation so
/// per-face arrays (transmissibilities, partial fluxes) line up.
#pragma once

#include <array>
#include <string_view>

#include "common/types.hpp"

namespace fvf::mesh {

/// Identifier of one of the ten faces of a cell.
enum class Face : u8 {
  XMinus = 0,   ///< west   (x-1, y,   z)
  XPlus = 1,    ///< east   (x+1, y,   z)
  YMinus = 2,   ///< south  (x,   y-1, z)
  YPlus = 3,    ///< north  (x,   y+1, z)
  ZMinus = 4,   ///< below  (x,   y,   z-1)
  ZPlus = 5,    ///< above  (x,   y,   z+1)
  DiagMM = 6,   ///< southwest (x-1, y-1, z)
  DiagPM = 7,   ///< southeast (x+1, y-1, z)
  DiagMP = 8,   ///< northwest (x-1, y+1, z)
  DiagPP = 9,   ///< northeast (x+1, y+1, z)
};

inline constexpr usize kFaceCount = 10;
inline constexpr usize kCardinalXYFaceCount = 4;
inline constexpr usize kDiagonalFaceCount = 4;

/// All faces in storage order.
inline constexpr std::array<Face, kFaceCount> kAllFaces = {
    Face::XMinus, Face::XPlus, Face::YMinus, Face::YPlus, Face::ZMinus,
    Face::ZPlus,  Face::DiagMM, Face::DiagPM, Face::DiagMP, Face::DiagPP};

/// Neighbor offset of each face, indexed by static_cast<usize>(Face).
inline constexpr std::array<Coord3, kFaceCount> kFaceOffsets = {{
    {-1, 0, 0},  // XMinus
    {+1, 0, 0},  // XPlus
    {0, -1, 0},  // YMinus
    {0, +1, 0},  // YPlus
    {0, 0, -1},  // ZMinus
    {0, 0, +1},  // ZPlus
    {-1, -1, 0}, // DiagMM
    {+1, -1, 0}, // DiagPM
    {-1, +1, 0}, // DiagMP
    {+1, +1, 0}, // DiagPP
}};

[[nodiscard]] constexpr Coord3 face_offset(Face f) noexcept {
  return kFaceOffsets[static_cast<usize>(f)];
}

/// The face of the neighbor that coincides with face `f` of the cell.
[[nodiscard]] constexpr Face opposite(Face f) noexcept {
  switch (f) {
    case Face::XMinus: return Face::XPlus;
    case Face::XPlus: return Face::XMinus;
    case Face::YMinus: return Face::YPlus;
    case Face::YPlus: return Face::YMinus;
    case Face::ZMinus: return Face::ZPlus;
    case Face::ZPlus: return Face::ZMinus;
    case Face::DiagMM: return Face::DiagPP;
    case Face::DiagPM: return Face::DiagMP;
    case Face::DiagMP: return Face::DiagPM;
    case Face::DiagPP: return Face::DiagMM;
  }
  return f;  // unreachable
}

[[nodiscard]] constexpr bool is_cardinal_xy(Face f) noexcept {
  return f == Face::XMinus || f == Face::XPlus || f == Face::YMinus ||
         f == Face::YPlus;
}

[[nodiscard]] constexpr bool is_vertical(Face f) noexcept {
  return f == Face::ZMinus || f == Face::ZPlus;
}

[[nodiscard]] constexpr bool is_diagonal(Face f) noexcept {
  return static_cast<u8>(f) >= static_cast<u8>(Face::DiagMM);
}

[[nodiscard]] constexpr std::string_view face_name(Face f) noexcept {
  switch (f) {
    case Face::XMinus: return "x-";
    case Face::XPlus: return "x+";
    case Face::YMinus: return "y-";
    case Face::YPlus: return "y+";
    case Face::ZMinus: return "z-";
    case Face::ZPlus: return "z+";
    case Face::DiagMM: return "xy--";
    case Face::DiagPM: return "xy+-";
    case Face::DiagMP: return "xy-+";
    case Face::DiagPP: return "xy++";
  }
  return "?";
}

}  // namespace fvf::mesh
