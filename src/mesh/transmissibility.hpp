/// \file transmissibility.hpp
/// \brief TPFA transmissibility computation (the Υ_KL coefficient of
///        Eq. 3a): harmonic averaging of per-cell permeabilities over the
///        ten-face stencil, including the effective diagonal connections
///        the paper adds "to prepare the communication pattern for either
///        higher-accuracy schemes or more intricate meshes" (Section 3).
#pragma once

#include <array>

#include "common/array3d.hpp"
#include "common/types.hpp"
#include "mesh/cartesian_mesh.hpp"
#include "mesh/stencil.hpp"

namespace fvf::mesh {

/// Options controlling transmissibility construction.
struct TransmissibilityOptions {
  /// Scale factor applied to the effective area of diagonal connections.
  /// Diagonal faces do not exist geometrically on a Cartesian mesh; the
  /// paper computes fluxes through them anyway to exercise the diagonal
  /// communication pattern. A weight of 0 disables diagonal fluxes.
  f64 diagonal_weight = 0.5;
};

/// Per-cell, per-face transmissibilities. Storage is ten dense 3-D arrays,
/// one per face in stencil order; entries whose neighbor lies outside the
/// mesh are zero, which makes the corresponding flux vanish.
class TransmissibilityField {
 public:
  explicit TransmissibilityField(Extents3 extents);

  [[nodiscard]] Extents3 extents() const noexcept { return extents_; }

  [[nodiscard]] f32& at(i32 x, i32 y, i32 z, Face f) {
    return faces_[static_cast<usize>(f)](x, y, z);
  }
  [[nodiscard]] const f32& at(i32 x, i32 y, i32 z, Face f) const {
    return faces_[static_cast<usize>(f)](x, y, z);
  }

  [[nodiscard]] const Array3<f32>& face_array(Face f) const noexcept {
    return faces_[static_cast<usize>(f)];
  }
  [[nodiscard]] Array3<f32>& face_array(Face f) noexcept {
    return faces_[static_cast<usize>(f)];
  }

 private:
  Extents3 extents_;
  std::array<Array3<f32>, kFaceCount> faces_;
};

/// Builds TPFA transmissibilities from a scalar permeability field [m^2]:
///
///   Υ_KL = A_f * 2 κ_K κ_L / (d_KL (κ_K + κ_L))
///
/// where A_f is the face area and d_KL the centre-to-centre distance.
/// Diagonal connections use d = sqrt(dx²+dy²) and an effective area
/// A = diagonal_weight * dz * sqrt(dx·dy).
[[nodiscard]] TransmissibilityField build_transmissibilities(
    const CartesianMesh& mesh, const Array3<f32>& permeability,
    const TransmissibilityOptions& options = {});

/// Verifies the TPFA symmetry property Υ(K, f) == Υ(L, opposite(f)) for
/// every interior face; returns the maximum absolute asymmetry found.
[[nodiscard]] f64 max_transmissibility_asymmetry(
    const CartesianMesh& mesh, const TransmissibilityField& trans);

}  // namespace fvf::mesh
