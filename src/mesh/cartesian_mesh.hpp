/// \file cartesian_mesh.hpp
/// \brief Uniform 3-D Cartesian mesh with geometry queries needed by the
///        TPFA discretisation: cell volumes, face areas, centre elevations,
///        and the 10-neighbor connectivity of paper Section 5.1.
///
/// The mesh supports an optional per-column topography offset (a gentle
/// structural dome, say). With topography, laterally adjacent cells have
/// different centre elevations, so the "gravity coefficients" the
/// dataflow implementation exchanges between PEs (paper Section 5.1)
/// contribute to the X-Y fluxes, exactly as in a real corner-point-like
/// geomodel. Topography is static: the dataflow implementation exchanges
/// it once at setup, while pressures/densities flow every iteration.
#pragma once

#include <cmath>
#include <optional>
#include <vector>

#include "common/array3d.hpp"
#include "common/assert.hpp"
#include "common/types.hpp"
#include "mesh/stencil.hpp"

namespace fvf::mesh {

/// Uniform grid spacing in metres.
struct Spacing3 {
  f64 dx = 1.0;
  f64 dy = 1.0;
  f64 dz = 1.0;
};

/// A uniform Cartesian mesh. Cell (x, y, z) occupies
/// [x*dx, (x+1)*dx) × [y*dy, (y+1)*dy) × [z*dz, (z+1)*dz) relative to the
/// origin; elevation grows with the z index (z measured upward).
class CartesianMesh {
 public:
  CartesianMesh(Extents3 extents, Spacing3 spacing, f64 origin_elevation = 0.0)
      : extents_(extents),
        spacing_(spacing),
        origin_elevation_(origin_elevation) {
    FVF_REQUIRE(extents.nx > 0 && extents.ny > 0 && extents.nz > 0);
    FVF_REQUIRE(spacing.dx > 0 && spacing.dy > 0 && spacing.dz > 0);
  }

  [[nodiscard]] Extents3 extents() const noexcept { return extents_; }
  [[nodiscard]] Spacing3 spacing() const noexcept { return spacing_; }
  [[nodiscard]] i64 cell_count() const noexcept { return extents_.cell_count(); }

  [[nodiscard]] f64 cell_volume() const noexcept {
    return spacing_.dx * spacing_.dy * spacing_.dz;
  }

  /// Installs a per-column elevation offset; `topography` must have
  /// nx*ny entries in row-major (x innermost) order.
  void set_topography(std::vector<f64> topography) {
    FVF_REQUIRE(topography.size() ==
                static_cast<usize>(extents_.nx) * static_cast<usize>(extents_.ny));
    topography_ = std::move(topography);
  }

  [[nodiscard]] bool has_topography() const noexcept {
    return !topography_.empty();
  }

  /// Per-column topography offset (0 for a flat mesh).
  [[nodiscard]] f64 topography(i32 x, i32 y) const noexcept {
    if (topography_.empty()) {
      return 0.0;
    }
    return topography_[static_cast<usize>(y) * static_cast<usize>(extents_.nx) +
                       static_cast<usize>(x)];
  }

  /// Elevation contribution of the z-layer alone (no topography).
  [[nodiscard]] f64 layer_elevation(i32 z) const noexcept {
    return origin_elevation_ + (static_cast<f64>(z) + 0.5) * spacing_.dz;
  }

  /// Elevation (z-coordinate, metres, positive up) of a cell centre.
  [[nodiscard]] f64 elevation(i32 x, i32 y, i32 z) const noexcept {
    return layer_elevation(z) + topography(x, y);
  }

  /// Area of a cardinal face in the given direction.
  [[nodiscard]] f64 face_area(Face f) const noexcept {
    switch (f) {
      case Face::XMinus:
      case Face::XPlus:
        return spacing_.dy * spacing_.dz;
      case Face::YMinus:
      case Face::YPlus:
        return spacing_.dx * spacing_.dz;
      case Face::ZMinus:
      case Face::ZPlus:
        return spacing_.dx * spacing_.dy;
      default:
        // Diagonal connections have no geometric face on a Cartesian
        // mesh; an effective area is assigned by the transmissibility
        // builder (see transmissibility.hpp).
        return 0.0;
    }
  }

  /// Centre-to-centre distance to the neighbor across face `f`.
  [[nodiscard]] f64 centre_distance(Face f) const noexcept {
    switch (f) {
      case Face::XMinus:
      case Face::XPlus:
        return spacing_.dx;
      case Face::YMinus:
      case Face::YPlus:
        return spacing_.dy;
      case Face::ZMinus:
      case Face::ZPlus:
        return spacing_.dz;
      default: {
        const f64 dx = spacing_.dx;
        const f64 dy = spacing_.dy;
        return std::sqrt(dx * dx + dy * dy);
      }
    }
  }

  /// Neighbor coordinate across face `f`, if it lies inside the mesh.
  [[nodiscard]] std::optional<Coord3> neighbor(i32 x, i32 y, i32 z,
                                               Face f) const noexcept {
    const Coord3 off = face_offset(f);
    const i32 nxp = x + off.x;
    const i32 nyp = y + off.y;
    const i32 nzp = z + off.z;
    if (!extents_.contains(nxp, nyp, nzp)) {
      return std::nullopt;
    }
    return Coord3{nxp, nyp, nzp};
  }

  /// Number of faces of cell (x, y, z) that have an in-mesh neighbor.
  [[nodiscard]] int interior_face_count(i32 x, i32 y, i32 z) const noexcept {
    int n = 0;
    for (const Face f : kAllFaces) {
      if (neighbor(x, y, z, f)) {
        ++n;
      }
    }
    return n;
  }

  /// Whether the cell touches no mesh boundary (all 10 neighbors exist).
  [[nodiscard]] bool is_interior(i32 x, i32 y, i32 z) const noexcept {
    return x > 0 && x + 1 < extents_.nx && y > 0 && y + 1 < extents_.ny &&
           z > 0 && z + 1 < extents_.nz;
  }

 private:
  Extents3 extents_;
  Spacing3 spacing_;
  f64 origin_elevation_;
  std::vector<f64> topography_;  // empty = flat
};

/// Builds a smooth deterministic dome topography: a cosine bump of the
/// given amplitude centred on the mesh, emulating a structural trap.
[[nodiscard]] std::vector<f64> dome_topography(Extents3 extents,
                                               f64 amplitude_m);

}  // namespace fvf::mesh
