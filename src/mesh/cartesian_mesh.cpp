#include "mesh/cartesian_mesh.hpp"

#include <numbers>

namespace fvf::mesh {

std::vector<f64> dome_topography(Extents3 extents, f64 amplitude_m) {
  FVF_REQUIRE(extents.nx > 0 && extents.ny > 0);
  std::vector<f64> topo(static_cast<usize>(extents.nx) *
                        static_cast<usize>(extents.ny));
  const f64 cx = 0.5 * static_cast<f64>(extents.nx - 1);
  const f64 cy = 0.5 * static_cast<f64>(extents.ny - 1);
  for (i32 y = 0; y < extents.ny; ++y) {
    for (i32 x = 0; x < extents.nx; ++x) {
      // Smooth cosine dome: amplitude at the centre, 0 at the corners.
      const f64 rx = extents.nx > 1 ? (static_cast<f64>(x) - cx) / cx : 0.0;
      const f64 ry = extents.ny > 1 ? (static_cast<f64>(y) - cy) / cy : 0.0;
      const f64 r = std::min(1.0, std::sqrt(rx * rx + ry * ry));
      const f64 bump = 0.5 * (1.0 + std::cos(std::numbers::pi * r));
      topo[static_cast<usize>(y) * static_cast<usize>(extents.nx) +
           static_cast<usize>(x)] = amplitude_m * bump;
    }
  }
  return topo;
}

}  // namespace fvf::mesh
