#include "mesh/transmissibility.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace fvf::mesh {

TransmissibilityField::TransmissibilityField(Extents3 extents)
    : extents_(extents) {
  for (auto& face : faces_) {
    face = Array3<f32>(extents);
  }
}

TransmissibilityField build_transmissibilities(
    const CartesianMesh& mesh, const Array3<f32>& permeability,
    const TransmissibilityOptions& options) {
  FVF_REQUIRE(permeability.extents() == mesh.extents());
  FVF_REQUIRE(options.diagonal_weight >= 0.0);

  const Extents3 ext = mesh.extents();
  const Spacing3 h = mesh.spacing();
  TransmissibilityField trans(ext);

  const f64 diag_area =
      options.diagonal_weight * h.dz * std::sqrt(h.dx * h.dy);

  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        const f64 k_self = permeability(x, y, z);
        FVF_ASSERT(k_self > 0.0);
        for (const Face f : kAllFaces) {
          const auto nb = mesh.neighbor(x, y, z, f);
          if (!nb) {
            continue;  // boundary face: transmissibility stays zero
          }
          const f64 k_neib = permeability(nb->x, nb->y, nb->z);
          const f64 area = is_diagonal(f) ? diag_area : mesh.face_area(f);
          const f64 dist = mesh.centre_distance(f);
          const f64 harmonic =
              2.0 * k_self * k_neib / (dist * (k_self + k_neib));
          trans.at(x, y, z, f) = static_cast<f32>(area * harmonic);
        }
      }
    }
  }
  return trans;
}

f64 max_transmissibility_asymmetry(const CartesianMesh& mesh,
                                   const TransmissibilityField& trans) {
  const Extents3 ext = mesh.extents();
  f64 worst = 0.0;
  for (i32 z = 0; z < ext.nz; ++z) {
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        for (const Face f : kAllFaces) {
          const auto nb = mesh.neighbor(x, y, z, f);
          if (!nb) {
            continue;
          }
          const f64 a = trans.at(x, y, z, f);
          const f64 b = trans.at(nb->x, nb->y, nb->z, opposite(f));
          worst = std::max(worst, std::abs(a - b));
        }
      }
    }
  }
  return worst;
}

}  // namespace fvf::mesh
