/// \file fields.hpp
/// \brief Synthetic geomodel property generators.
///
/// The paper runs on "highly detailed geomodels" that are proprietary; per
/// the reproduction rules we substitute deterministic synthetic fields that
/// exercise the same code paths: heterogeneous permeability spanning
/// several orders of magnitude, layered stratigraphy, and smoothly
/// correlated log-normal variation, plus hydrostatic-plus-perturbation
/// initial pressure fields.
#pragma once

#include <cmath>

#include "common/array3d.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "mesh/cartesian_mesh.hpp"

namespace fvf::mesh {

/// Uniform permeability [m^2].
[[nodiscard]] Array3<f32> homogeneous_field(Extents3 extents, f32 value);

/// Layer-cake permeability: each z-layer gets a log-uniform value in
/// [min_value, max_value], deterministic in `seed`.
[[nodiscard]] Array3<f32> layered_permeability(Extents3 extents, f32 min_value,
                                               f32 max_value, u64 seed);

/// Correlated log-normal permeability: white noise smoothed by
/// `smoothing_passes` sweeps of a 7-point box filter, then exponentiated
/// so that log10(k) has roughly the requested mean and spread.
struct LognormalOptions {
  f64 log10_mean = -13.0;   ///< mean of log10(k [m^2]) ~ 100 mD
  f64 log10_sigma = 1.0;    ///< spread of log10(k)
  int smoothing_passes = 3; ///< correlation length control
  u64 seed = 42;
};

[[nodiscard]] Array3<f32> lognormal_permeability(Extents3 extents,
                                                 const LognormalOptions& options);

/// Channelized (fluvial) permeability: sinuous high-permeability sand
/// channels meandering along X through a low-permeability background —
/// the classic heterogeneity structure of clastic storage reservoirs.
/// Channels are deterministic in `seed`; each z-layer band hosts its own
/// set of channels.
struct ChannelOptions {
  f32 background = 1.0e-15f;   ///< shale background [m^2] (~1 mD)
  f32 channel = 1.0e-12f;      ///< channel sand [m^2] (~1 D)
  i32 channels_per_layer = 2;  ///< meanders per z-layer
  f64 half_width_cells = 1.2;  ///< channel half-width in cells
  f64 amplitude_fraction = 0.25;  ///< meander amplitude as fraction of ny
  u64 seed = 42;
};

[[nodiscard]] Array3<f32> channelized_permeability(
    Extents3 extents, const ChannelOptions& options);

/// Hydrostatic pressure profile with an optional cell-wise random
/// perturbation: p(z) = p_top + rho*g*(z_top - z) + eps*U(-1,1).
struct PressureFieldOptions {
  f64 top_pressure = 20.0e6;     ///< [Pa] at the highest layer
  f64 reference_density = 800.0; ///< [kg/m^3] for the hydrostatic gradient
  f64 perturbation = 1.0e4;      ///< [Pa] amplitude of random noise
  u64 seed = 7;
};

[[nodiscard]] Array3<f32> hydrostatic_pressure(const CartesianMesh& mesh,
                                               const PressureFieldOptions& options);

/// A smooth, deterministic, iteration-dependent pressure field used to
/// emulate "a different pressure vector at every call" (Section 3) without
/// storing 1000 input vectors: a hydrostatic base plus a phase-shifted
/// trigonometric bump parameterised by the iteration number.
[[nodiscard]] Array3<f32> iteration_pressure(const CartesianMesh& mesh,
                                             const PressureFieldOptions& options,
                                             i32 iteration);

/// The per-cell pressure increment applied between application `iteration`
/// and `iteration + 1` of Algorithm 1. Shared by every implementation
/// (serial, GPU-style, dataflow) so all see bit-identical input vectors.
[[nodiscard]] inline f32 pressure_bump(i64 linear_index,
                                       i32 iteration) noexcept {
  const f32 phase = 0.1f * static_cast<f32>(iteration + 1);
  const f32 s = static_cast<f32>(linear_index % 97) * 0.0647f + phase;
  return 500.0f * std::sin(s);
}

/// Applies the same in-place pressure update the harness uses between two
/// applications of Algorithm 1 (cheap, vectorizable, deterministic).
void advance_pressure(Span3<f32> pressure, i32 iteration);

}  // namespace fvf::mesh
