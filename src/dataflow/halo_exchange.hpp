/// \file halo_exchange.hpp
/// \brief Reusable 10-neighbor halo exchange for dataflow programs with
///        static routes (no Figure 6 switch protocol): every PE sends one
///        fixed-length block per round on each cardinal color and
///        forwards received cardinal blocks to the rotated diagonal
///        target (Figure 5). Used by the fabric CG solver, the transport
///        kernel and the acoustic-wave kernel; the TPFA flux program
///        keeps its own exchange because it implements the switch-based
///        protocol.
///
/// Round semantics: blocks are tagged implicitly by per-link FIFO order.
/// A neighbor may run at most one round ahead; such early blocks wait in
/// their receive buffer and are delivered at the next begin_round. The
/// owner is notified once per processed block and once per completed
/// round. Handler block views stay valid until the next begin_round (in
/// both modes), so owners may stash them for deferred processing.
///
/// Reliability layer (HaloReliabilityOptions::enabled): under fault
/// injection the fabric *drops* corrupted blocks at the parity check, so
/// FIFO tagging is no longer sound. The reliable mode prepends an
/// explicit round tag to every block, keeps a bounded resend buffer at
/// the origin (cardinal payloads) and the intermediary (diagonal
/// forwards), and arms a per-round watchdog timer: when it fires with
/// blocks still missing, the receiver NACKs the upstream neighbor on a
/// dedicated color (kNackColors) and the neighbor retransmits. Retries
/// are bounded; exhaustion raises a protocol error so an unrecoverable
/// run is *reported*, never silently wrong. Duplicates (a retransmit
/// racing the stalled original) are suppressed by tag.
#pragma once

#include <array>
#include <functional>
#include <span>
#include <vector>

#include "dataflow/colors.hpp"
#include "wse/fabric.hpp"

namespace fvf::dataflow {

/// Ack/retransmit configuration for the halo exchange. Disabled (the
/// default) runs the implicit-FIFO protocol untouched: no tag word on the
/// wire, no timers, no NACK routes — bit-identical to the historic
/// behavior.
struct HaloReliabilityOptions {
  bool enabled = false;
  /// Cycles the per-round watchdog waits before NACKing missing blocks.
  /// Must comfortably exceed a healthy round's latency or spurious NACKs
  /// cost bandwidth (they are suppressed as duplicates, never corrupt).
  f64 watchdog_cycles = 4096.0;
  /// Watchdog firings per round before the PE declares the round
  /// unrecoverable and raises a protocol error.
  i32 max_retries = 8;
};

class HaloExchange {
 public:
  /// Invoked for every processed block of the *current* round with the
  /// face it supplies and a view of the received data. The view stays
  /// valid until the next begin_round.
  using BlockHandler =
      std::function<void(wse::PeApi&, mesh::Face, wse::Dsd data)>;
  /// Invoked exactly once per round, after all expected blocks of that
  /// round were processed. May start the next round.
  using RoundHandler = std::function<void(wse::PeApi&)>;

  HaloExchange(Coord2 coord, Coord2 fabric_size, i32 block_length,
               HaloReliabilityOptions reliability = {});

  /// Installs the static routes for the cardinal + diagonal colors (plus
  /// the NACK colors when the reliability layer is enabled); call from
  /// configure_router.
  void configure_router(wse::Router& router) const;

  /// Whether `color` belongs to this exchange (the cardinal and diagonal
  /// blocks).
  [[nodiscard]] static bool owns(wse::Color color) noexcept {
    return is_cardinal_color(color) || is_diagonal_color(color);
  }

  /// Sends this PE performs per round, for fvf::lint's routing checks:
  /// the four unconditional cardinal payloads, the diagonal forward for
  /// every cardinal link with an upstream neighbor (Figure 5 intermediary
  /// role), and — in reliable mode — the NACK toward each upstream.
  [[nodiscard]] std::vector<wse::SendDeclaration> send_declarations() const;

  /// Blocking intra-round send orderings for fvf::lint's cross-color
  /// deadlock analysis: the diagonal forward happens inside the cardinal
  /// block's handler, and — in reliable mode — a retransmit happens only
  /// after the downstream receiver's NACK arrives.
  [[nodiscard]] std::vector<wse::ChannelDependency> channel_dependencies()
      const;

  /// Colors this PE expects halo deliveries on each round (cardinal and
  /// diagonal links with an existing upstream neighbor): the arrivals
  /// that gate round completion. Owners use this to declare orderings of
  /// later phases (e.g. an all-reduce contribution that waits for the
  /// halo round).
  [[nodiscard]] std::vector<wse::Color> upstream_colors() const;

  void set_handlers(BlockHandler on_block, RoundHandler on_round_complete);

  /// Starts the next round: sends `payload` on all four cardinal colors
  /// and consumes blocks that arrived early. May complete the round
  /// synchronously (boundary PEs with no neighbors, or all blocks early).
  void begin_round(wse::PeApi& api, std::span<const f32> payload);

  /// Feeds a block to the exchange. Precondition: owns(color).
  void on_data(wse::PeApi& api, wse::Color color, wse::Dir from,
               std::span<const u32> data);

  /// Feeds a retransmit request (the NACK block) to the exchange; only
  /// meaningful when the reliability layer is enabled.
  void on_nack(wse::PeApi& api, wse::Color color, wse::Dir from,
               std::span<const u32> data);

  /// Watchdog expiry; forward from PeProgram::on_timer.
  void on_timer(wse::PeApi& api, u32 tag);

  [[nodiscard]] i32 rounds_started() const noexcept { return round_; }
  /// Blocks expected per round (existing cardinal + diagonal neighbors).
  [[nodiscard]] i32 expected_blocks() const noexcept {
    return expected_cards_ + expected_diags_;
  }
  [[nodiscard]] i32 block_length() const noexcept { return block_length_; }
  [[nodiscard]] const HaloReliabilityOptions& reliability() const noexcept {
    return reliability_;
  }
  /// Retransmit requests this PE sent (reliable mode).
  [[nodiscard]] u64 nacks_sent() const noexcept { return nacks_sent_; }
  /// Duplicate blocks suppressed by the tag check (reliable mode).
  [[nodiscard]] u64 duplicates_dropped() const noexcept {
    return duplicates_dropped_;
  }

 private:
  /// A received-but-unprocessed block (reliable mode). At most two per
  /// link can be pending: the retransmitted current round and the next
  /// round sent by a neighbor that already completed the current one.
  struct Buffered {
    i32 tag = 0;
    std::vector<f32> data;
  };

  struct LinkState {
    bool has_upstream = false;
    i32 received = 0;
    i32 processed = 0;
    bool buffered = false;
    /// Reliable mode: pending tagged blocks + the tag last NACKed (0 =
    /// none; a matching arrival counts as a protocol-level recovery).
    std::vector<Buffered> pending;
    i32 nacked_tag = 0;
  };

  [[nodiscard]] LinkState& link(wse::Color color) noexcept {
    return is_cardinal_color(color) ? card_[cardinal_index(color)]
                                    : diag_[diagonal_index(color)];
  }

  void process_block(wse::PeApi& api, wse::Color color);
  void check_round_complete(wse::PeApi& api);

  // Reliable-mode internals.
  void on_data_reliable(wse::PeApi& api, wse::Color color,
                        std::span<const u32> data);
  void try_process_reliable(wse::PeApi& api, wse::Color color);
  void send_tagged(wse::PeApi& api, wse::Color color, i32 tag,
                   std::span<const f32> payload);
  void send_nack(wse::PeApi& api, wse::Color data_color, i32 tag);
  void arm_watchdog(wse::PeApi& api);

  Coord2 coord_;
  Coord2 fabric_;
  i32 block_length_ = 0;
  HaloReliabilityOptions reliability_;
  BlockHandler on_block_;
  RoundHandler on_round_complete_;

  std::array<std::vector<f32>, 4> card_buf_;
  std::array<std::vector<f32>, 4> diag_buf_;
  std::array<LinkState, 4> card_;
  std::array<LinkState, 4> diag_;
  i32 expected_cards_ = 0;
  i32 expected_diags_ = 0;
  i32 round_ = 0;
  i32 done_this_round_ = 0;
  bool round_open_ = false;

  /// Reliable mode: bounded resend buffers. A NACK can only request the
  /// current or the previous round (a neighbor is never two rounds
  /// behind a PE that completed the round in between), so two slots
  /// indexed by round parity suffice. `origin_*` answers cardinal NACKs
  /// with this PE's own payload; `diag_*` answers diagonal NACKs with the
  /// cardinal block this PE forwarded as the Figure 5 intermediary.
  std::array<std::vector<f32>, 2> origin_resend_;
  std::array<i32, 2> origin_tag_{0, 0};
  std::array<std::array<std::vector<f32>, 2>, 4> diag_resend_;
  std::array<std::array<i32, 2>, 4> diag_tag_{};
  i32 retries_ = 0;
  bool retries_exhausted_ = false;
  u64 nacks_sent_ = 0;
  u64 duplicates_dropped_ = 0;
};

}  // namespace fvf::dataflow
