/// \file run_info.hpp
/// \brief Shared launch options and run accounting of the fvf::dataflow
///        runtime (Layer 2 data types).
///
/// Every program pipeline used to re-plumb timings/execution/trace/memory
/// options into the fabric by hand and copy a drifting subset of the
/// RunReport into its own result struct. HarnessOptions and RunInfo are
/// the single definitions both sides embed: program option structs
/// inherit HarnessOptions, program result structs inherit RunInfo, and
/// FabricHarness::run fills the whole RunInfo for every program alike.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "dataflow/color_plan.hpp"
#include "lint/lint.hpp"
#include "obs/phase.hpp"
#include "wse/fabric.hpp"

namespace fvf::dataflow {

/// Fabric launch configuration common to every dataflow program.
struct HarnessOptions {
  wse::FabricTimings timings{};
  wse::ExecutionOptions execution{};
  usize pe_memory_budget = wse::PeMemory::kDefaultBudget;
  /// Static verification level applied after load (fvf::lint). Off runs
  /// only the historic unclaimed-color audit; Warn runs every check and
  /// prints findings to stderr; Strict fails the load on any
  /// error-severity finding. Unclaimed colors fail the load at every
  /// level — that contract predates the linter.
  lint::Level lint = lint::Level::Off;
  /// Optional event recorder (communication-pattern capture). Installed
  /// via Fabric::set_tracer(TraceRecorder&) so the run report also
  /// carries the recorder's capacity-drop count. Must outlive the run.
  wse::TraceRecorder* trace = nullptr;
  /// When non-empty, the harness exports a Perfetto/Chrome trace_event
  /// timeline of the run to this path (obs::write_perfetto_json): phase
  /// spans per PE plus the trace stream. Enables phase-span recording,
  /// and attaches an internal keep-latest recorder when `trace` is null,
  /// so the timeline includes routed-block and fault markers by default.
  std::string trace_json_path;
};

/// Accounting of one fabric run, embedded by every program result.
struct RunInfo {
  /// Simulated device time for the whole run, from the fabric clock.
  f64 device_seconds = 0.0;
  f64 makespan_cycles = 0.0;
  /// Aggregate instruction/traffic counters over all PEs.
  wse::PeCounters counters{};
  /// Fabric-link wavelets per managed communication color (indices follow
  /// dataflow/colors.hpp: 0-3 cardinal data, 4-7 diagonal forwards, 8-11
  /// AllReduce trees, 12-15 reliability NACKs).
  std::array<u64, ColorPlan::kManagedColors> color_traffic{};
  /// Peak per-PE memory footprint (bytes).
  usize max_pe_memory = 0;
  u64 events_processed = 0;
  /// Measured per-phase cycle attribution summed over all PEs — the
  /// Table 3-style time split (all zero when
  /// ExecutionOptions::phase_profiling is off).
  obs::PhaseCycles phase_cycles{};
  /// Per-PE attribution, row-major (y * width + x; empty when profiling
  /// is off). Each entry's total() equals that PE's final clock.
  std::vector<obs::PhaseCycles> pe_phase_cycles;
  /// Fault-injection outcome (all zero when injection is disabled).
  wse::FaultStats faults{};
  /// Trace accounting when a recorder was attached: records emitted by
  /// the engine and records the recorder dropped at capacity.
  u64 trace_events_emitted = 0;
  u64 trace_records_dropped = 0;
  /// Total errors raised vs. messages suppressed past the recording cap.
  u64 errors_total = 0;
  u64 errors_suppressed = 0;
  std::vector<std::string> errors;
  /// Memory hazards flagged by ExecutionOptions::hazard_check (empty, and
  /// all counters zero, when the detector is off).
  std::vector<std::string> hazards;
  u64 hazards_total = 0;
  u64 hazards_suppressed = 0;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

/// Accumulates the accounting of a second launch into `into`: the
/// multi-launch jobs (IMPES windows, the scenario service's long jobs)
/// report one RunInfo covering every fabric run they issued. Scalars and
/// counters add, max_pe_memory takes the max, error/hazard lists append.
/// Per-PE phase attribution is per-launch and does not aggregate — the
/// result's pe_phase_cycles is cleared (the summed phase_cycles split is
/// kept).
void accumulate(RunInfo& into, const RunInfo& launch);

}  // namespace fvf::dataflow
