/// \file color_plan.hpp
/// \brief Layer 1 of the fvf::dataflow runtime: a registry/allocator for
///        the 16-color managed routing space.
///
/// Every fabric launch owns one ColorPlan (created by FabricHarness).
/// Program pipelines claim the color blocks their components need —
/// cardinal halo data, diagonal forwards, AllReduce trees, retransmit
/// NACKs — under a human-readable owner name. Conflicting claims (two
/// components asking for the same color) fail immediately with a
/// diagnostic naming both claimants, instead of silently corrupting the
/// routing tables; and after Fabric::load the harness audits that every
/// router-configured color was actually claimed, so a program wiring up
/// an unregistered color is caught at load time, not as a misrouted
/// wavelet mid-run.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "dataflow/colors.hpp"
#include "wse/collectives.hpp"

namespace fvf::dataflow {

/// A contiguous group of claimed colors.
struct ColorBlock {
  u8 base = 0;
  u8 count = 0;

  /// The i-th color of the block.
  [[nodiscard]] wse::Color at(u8 i) const;
  [[nodiscard]] bool contains(wse::Color c) const noexcept {
    return c.id() >= base && c.id() < base + count;
  }
};

/// Registry of the managed color space (colors 0..15). Colors above the
/// managed space (the WSE exposes Color::kMaxColors in total) are not
/// allocatable through the plan and fail the load-time audit if routed.
class ColorPlan {
 public:
  static constexpr u8 kManagedColors = ColorSpace::kManagedColors;

  ColorPlan() = default;

  /// Claims the specific block [base, base+count). Throws
  /// ContractViolation naming both claimants if any color is taken.
  ColorBlock claim(std::string_view owner, u8 base, u8 count);

  /// First-fit allocation of `count` consecutive free colors. Throws
  /// ContractViolation with the full color map when the space is
  /// exhausted.
  ColorBlock allocate(std::string_view owner, u8 count);

  // --- canonical blocks (values fixed by dataflow/colors.hpp) -----------
  /// Cardinal data colors (kEastData..kSouthData).
  ColorBlock claim_cardinal(std::string_view owner);
  /// Diagonal forward colors (kDiagSouth..kDiagWest).
  ColorBlock claim_diagonal(std::string_view owner);
  /// The AllReduce tree block, typed for wse::AllReduceSum.
  wse::AllReduceColors claim_allreduce(std::string_view owner);
  /// The halo-reliability NACK colors (kNackEast..kNackSouth).
  ColorBlock claim_nack(std::string_view owner);

  [[nodiscard]] bool claimed(wse::Color c) const noexcept {
    return c.id() < kManagedColors && !owners_[c.id()].empty();
  }
  /// Owner name of a claimed color ("" when free or unmanaged).
  [[nodiscard]] std::string_view owner_of(wse::Color c) const noexcept {
    return c.id() < kManagedColors ? std::string_view(owners_[c.id()])
                                   : std::string_view{};
  }

  /// Human-readable color-space map, one line per color; used in every
  /// conflict/exhaustion/audit diagnostic.
  [[nodiscard]] std::string describe() const;

 private:
  std::array<std::string, kManagedColors> owners_{};
};

}  // namespace fvf::dataflow
