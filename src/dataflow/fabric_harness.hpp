/// \file fabric_harness.hpp
/// \brief Layer 2 of the fvf::dataflow runtime: the single launch
///        pipeline shared by every dataflow program.
///
/// A FabricHarness builds the fabric from the mesh's XY extents, applies
/// the shared HarnessOptions (timings, execution/fault model, trace
/// recorder, PE memory budget), registers color claims through its
/// ColorPlan, loads one typed program per PE, audits that every
/// router-configured color was claimed, runs the event engine to
/// quiescence, and returns the complete RunInfo every program result
/// embeds. The per-program pipelines that used to copy-paste all of this
/// shrink to: claim colors, construct programs, gather columns.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/array3d.hpp"
#include "common/assert.hpp"
#include "dataflow/color_plan.hpp"
#include "dataflow/run_info.hpp"
#include "wse/fabric.hpp"

namespace fvf::dataflow {

/// Typed handle to the per-PE program instances of one load, used to
/// gather results back to host arrays after the run.
template <typename Program>
class ProgramGrid {
 public:
  ProgramGrid() = default;

  [[nodiscard]] Program& at(i32 x, i32 y) const {
    FVF_REQUIRE(x >= 0 && x < extents_.x && y >= 0 && y < extents_.y);
    Program* program =
        programs_[static_cast<usize>(y) * static_cast<usize>(extents_.x) +
                  static_cast<usize>(x)];
    FVF_ASSERT(program != nullptr);
    return *program;
  }

  /// Gathers one f32 column per PE into `out` (whose XY extents must
  /// match the fabric): `column(program)` returns the Nz-length span of
  /// PE (x, y)'s values for z = 0..Nz-1.
  template <typename ColumnFn>
  void gather(Array3<f32>& out, ColumnFn&& column) const {
    const Extents3 ext = out.extents();
    FVF_REQUIRE(ext.nx == extents_.x && ext.ny == extents_.y);
    for (i32 y = 0; y < ext.ny; ++y) {
      for (i32 x = 0; x < ext.nx; ++x) {
        const std::span<const f32> col = column(at(x, y));
        FVF_REQUIRE(static_cast<i32>(col.size()) >= ext.nz);
        for (i32 z = 0; z < ext.nz; ++z) {
          out(x, y, z) = col[static_cast<usize>(z)];
        }
      }
    }
  }

 private:
  friend class FabricHarness;

  Coord2 extents_{};
  std::vector<Program*> programs_;
};

class FabricHarness {
 public:
  /// Builds the fabric for an `extents.x` x `extents.y` PE grid under the
  /// shared launch options (one PE per mesh column).
  FabricHarness(Coord2 extents, const HarnessOptions& options);

  /// The color registry of this launch. Claim blocks *before* load so
  /// the post-load audit can vouch for the routing tables.
  [[nodiscard]] ColorPlan& colors() noexcept { return colors_; }
  [[nodiscard]] const ColorPlan& colors() const noexcept { return colors_; }

  [[nodiscard]] wse::Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] Coord2 extents() const noexcept { return extents_; }

  /// Instantiates `make(coord, fabric_size)` (returning a
  /// unique_ptr<Program>) on every PE, then statically verifies the
  /// loaded fabric at the configured HarnessOptions::lint level
  /// (fvf::lint). A configured-but-unclaimed color fails fast at every
  /// level with a diagnostic naming the PE, the color, and the full
  /// color map; Strict additionally fails the load on any other
  /// error-severity finding, and Warn prints findings to stderr.
  ///
  /// `make` must be copyable: the harness keeps it as the probe factory
  /// so the lint memory check (and lint_report()) can construct fresh
  /// program instances and measure their reserve_memory declarations.
  template <typename Program, typename MakeFn>
  ProgramGrid<Program> load(MakeFn&& make) {
    ProgramGrid<Program> grid;
    grid.extents_ = extents_;
    grid.programs_.assign(static_cast<usize>(fabric_.pe_count()), nullptr);
    fabric_.load([&](Coord2 coord, Coord2 fabric_size) {
      std::unique_ptr<Program> program = make(coord, fabric_size);
      grid.programs_[static_cast<usize>(coord.y) *
                         static_cast<usize>(extents_.x) +
                     static_cast<usize>(coord.x)] = program.get();
      return program;
    });
    probe_factory_ = [make](Coord2 coord, Coord2 fabric_size)
        -> std::unique_ptr<wse::PeProgram> { return make(coord, fabric_size); };
    verify_load();
    return grid;
  }

  /// Runs the full static verifier over the loaded fabric and returns
  /// the report without enforcing it — the `fvf_lint` CLI path. Requires
  /// a prior load(); the probe factory (and anything it references) must
  /// still be alive.
  [[nodiscard]] lint::Report lint_report() const;

  /// Runs the event engine to quiescence and returns the full accounting.
  /// When HarnessOptions::trace_json_path is set, also writes the
  /// Perfetto timeline of the run before returning.
  [[nodiscard]] RunInfo run(u64 max_events = 500'000'000);

 private:
  /// Applies the observability implications of the caller's options:
  /// a trace_json_path without an explicit span capacity turns on
  /// phase-span recording so the timeline has slices to show.
  [[nodiscard]] static HarnessOptions effective(HarnessOptions options);

  /// Builds the lint::Options for this launch. `full` enables the
  /// routing/memory/reconfiguration checks; the claim audit always runs.
  [[nodiscard]] lint::Options lint_options(bool full) const;

  /// Post-load static verification at HarnessOptions::lint level; throws
  /// ContractViolation on enforced findings (see load()).
  void verify_load() const;

  Coord2 extents_;
  HarnessOptions options_;
  ColorPlan colors_;
  /// Type-erased copy of the last load()'s make function, used by the
  /// lint memory check to probe per-PE reserve_memory declarations.
  wse::ProgramFactory probe_factory_;
  /// Keep-latest recorder the harness attaches for Perfetto export when
  /// the caller asked for trace_json_path but supplied no recorder.
  std::unique_ptr<wse::TraceRecorder> owned_trace_;
  wse::Fabric fabric_;
};

}  // namespace fvf::dataflow
