/// \file iterative_kernel.hpp
/// \brief Layer 3 of the fvf::dataflow runtime: the shared per-PE phase
///        machine every dataflow program iterates through.
///
/// All five programs (TPFA, CG, transport, wave, IMPES' two kernels)
/// follow the same shape: reserve PE memory, begin a phase, exchange halo
/// columns with the ten XY neighbors, do local compute as blocks arrive,
/// optionally agree on a global scalar via AllReduce, then advance or
/// finish. IterativeKernelProgram owns the wse::PeProgram entry points
/// and performs declarative per-color dispatch:
///
///   - an attached HaloExchange (use_halo_exchange) receives its
///     cardinal/diagonal blocks, NACK retransmit requests, and watchdog
///     timers automatically, invoking the on_halo_block /
///     on_halo_complete hooks;
///   - an attached wse::AllReduceSum (use_allreduce) receives its four
///     tree colors;
///   - explicitly bound colors (bind_data / bind_control) go to their
///     handlers — this is how the TPFA program keeps its Figure 6
///     switch-protocol exchange verbatim while still living on the
///     runtime;
///   - anything else raises a contract violation naming the color.
///
/// Derived programs implement physics + phase hooks only.
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "dataflow/colors.hpp"
#include "dataflow/halo_exchange.hpp"
#include "wse/collectives.hpp"
#include "wse/fabric.hpp"
#include "wse/program.hpp"

namespace fvf::dataflow {

class IterativeKernelProgram : public wse::PeProgram {
 public:
  // --- wse::PeProgram entry points (owned by the runtime) ---------------
  void configure_router(wse::Router& router) final;
  void on_start(wse::PeApi& api) final;
  void on_data(wse::PeApi& api, wse::Color color, wse::Dir from,
               std::span<const u32> data) final;
  void on_control(wse::PeApi& api, wse::Color color, wse::Dir from) final;
  void on_timer(wse::PeApi& api, u32 tag) final;

  /// Phase classification for the per-phase cycle profiler, mirroring the
  /// dispatch precedence of on_data: bound handlers carry the phase they
  /// were bound with, AllReduce colors are AllReduce, halo-exchange
  /// colors are Halo, NACK blocks and watchdog timers are Reliability.
  [[nodiscard]] obs::Phase task_phase(wse::Color color, bool control,
                                      bool timer) const noexcept final;

  /// Static handler coverage for fvf::lint, mirroring the dispatch
  /// precedence of on_data / on_control exactly: a delivery is handled iff
  /// dispatch would find a bound handler or an attached component for it.
  [[nodiscard]] bool handles_color(wse::Color color,
                                   bool control) const final;

  /// Sends of the attached components (halo exchange, AllReduce) plus the
  /// derived program's own program_send_declarations().
  [[nodiscard]] std::vector<wse::SendDeclaration> send_declarations()
      const final;

  /// Orderings of the attached components plus the derived program's own
  /// program_channel_dependencies(), plus the phase-structure bridge:
  /// when both components are attached, every all-reduce send waits for
  /// the halo round (contribute runs from on_halo_complete or later).
  [[nodiscard]] std::vector<wse::ChannelDependency> channel_dependencies()
      const final;

  /// Arrival-order folds of the attached AllReduce plus the derived
  /// program's own program_reduction_declarations().
  [[nodiscard]] std::vector<wse::ReductionDeclaration>
  reduction_declarations() const final;

 protected:
  using DataHandler = std::function<void(wse::PeApi&, wse::Color, wse::Dir,
                                         std::span<const u32>)>;
  using ControlHandler =
      std::function<void(wse::PeApi&, wse::Color, wse::Dir)>;

  IterativeKernelProgram(Coord2 coord, Coord2 fabric_size);

  // --- component attachment (call from the derived constructor) ---------
  /// Attaches the shared 10-neighbor halo exchange on the canonical
  /// cardinal/diagonal colors. The runtime then routes those colors (and
  /// the NACK block plus watchdog timers when `reliability` is enabled)
  /// to the exchange and invokes on_halo_block / on_halo_complete.
  void use_halo_exchange(i32 block_length,
                         HaloReliabilityOptions reliability = {});

  /// Attaches an AllReduce engine; its four colors dispatch to it.
  void use_allreduce(wse::AllReduceColors colors, i32 length,
                     wse::ReduceOp op = wse::ReduceOp::Sum);

  /// Declarative per-color dispatch for program-owned colors. Bound
  /// handlers take precedence over attached components. `phase` tags the
  /// tasks the color activates for the cycle profiler (handlers can still
  /// retag mid-task via PeApi::set_phase).
  void bind_data(wse::Color color, DataHandler handler,
                 obs::Phase phase = obs::Phase::LocalCompute);
  void bind_control(wse::Color color, ControlHandler handler,
                    obs::Phase phase = obs::Phase::LocalCompute);

  [[nodiscard]] HaloExchange& exchange() {
    FVF_REQUIRE(exchange_.has_value());
    return *exchange_;
  }
  [[nodiscard]] wse::AllReduceSum& allreduce() {
    FVF_REQUIRE(allreduce_.has_value());
    return *allreduce_;
  }
  [[nodiscard]] Coord2 coord() const noexcept { return coord_; }
  [[nodiscard]] Coord2 fabric_size() const noexcept { return fabric_size_; }

  // --- phase hooks -------------------------------------------------------
  /// Starts the program's first phase. The runtime reserves the program's
  /// declared footprint first (wse::PeProgram::reserve_memory, which
  /// derived programs must override — fvf::lint probes the same
  /// declaration against the byte budget without executing anything).
  virtual void begin(wse::PeApi& api) = 0;
  /// Sends performed by the derived program itself on its bound colors
  /// (the component sends are declared automatically). Override alongside
  /// bind_data / bind_control so fvf::lint can trace the traffic.
  [[nodiscard]] virtual std::vector<wse::SendDeclaration>
  program_send_declarations() const;
  /// Blocking intra-round orderings among the program's own bound colors
  /// (see wse::ChannelDependency), for the cross-color deadlock analysis.
  [[nodiscard]] virtual std::vector<wse::ChannelDependency>
  program_channel_dependencies() const;
  /// Arrival-order f32 folds the program performs over its bound colors
  /// (see wse::ReductionDeclaration), for the determinism analysis.
  [[nodiscard]] virtual std::vector<wse::ReductionDeclaration>
  program_reduction_declarations() const;
  /// One halo block of the current round arrived (use_halo_exchange).
  /// The view stays valid until the next begin_round.
  virtual void on_halo_block(wse::PeApi& api, mesh::Face face,
                             wse::Dsd block);
  /// All expected halo blocks of the round were processed.
  virtual void on_halo_complete(wse::PeApi& api);
  /// Installs routes for program-owned colors (bound via bind_data /
  /// bind_control); attached components install their own routes first.
  virtual void configure_routes(wse::Router& router);

 private:
  Coord2 coord_;
  Coord2 fabric_size_;
  std::optional<HaloExchange> exchange_;
  std::optional<wse::AllReduceSum> allreduce_;
  std::array<DataHandler, wse::Color::kMaxColors> data_handlers_{};
  std::array<ControlHandler, wse::Color::kMaxColors> control_handlers_{};
  /// Profiler tag per bound color (set by bind_data / bind_control).
  std::array<obs::Phase, wse::Color::kMaxColors> color_phase_{};
};

}  // namespace fvf::dataflow
