#include "dataflow/color_plan.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace fvf::dataflow {

wse::Color ColorBlock::at(u8 i) const {
  FVF_REQUIRE(i < count);
  return wse::Color{static_cast<u8>(base + i)};
}

ColorBlock ColorPlan::claim(std::string_view owner, u8 base, u8 count) {
  FVF_REQUIRE_MSG(!owner.empty(), "color claims need an owner name");
  FVF_REQUIRE(count > 0);
  FVF_REQUIRE_MSG(base + count <= kManagedColors,
                  "claim [" << static_cast<int>(base) << ", "
                            << static_cast<int>(base + count)
                            << ") by '" << owner
                            << "' leaves the managed color space (0.."
                            << static_cast<int>(kManagedColors - 1) << ")");
  for (u8 c = base; c < base + count; ++c) {
    FVF_REQUIRE_MSG(owners_[c].empty(),
                    "color " << static_cast<int>(c)
                             << " claimed by both '" << owners_[c]
                             << "' and '" << owner << "'\n"
                             << describe());
  }
  for (u8 c = base; c < base + count; ++c) {
    owners_[c].assign(owner);
  }
  return ColorBlock{base, count};
}

ColorBlock ColorPlan::allocate(std::string_view owner, u8 count) {
  FVF_REQUIRE(count > 0 && count <= kManagedColors);
  for (u8 base = 0; base + count <= kManagedColors; ++base) {
    bool free = true;
    for (u8 c = base; c < base + count; ++c) {
      if (!owners_[c].empty()) {
        free = false;
        break;
      }
    }
    if (free) {
      return claim(owner, base, count);
    }
  }
  std::ostringstream os;
  os << "color space exhausted: no room for " << static_cast<int>(count)
     << " consecutive colors requested by '" << owner << "'\n"
     << describe();
  throw ContractViolation(os.str());
}

ColorBlock ColorPlan::claim_cardinal(std::string_view owner) {
  return claim(owner, ColorSpace::kCardinalBase, ColorSpace::kBlockSize);
}

ColorBlock ColorPlan::claim_diagonal(std::string_view owner) {
  return claim(owner, ColorSpace::kDiagonalBase, ColorSpace::kBlockSize);
}

wse::AllReduceColors ColorPlan::claim_allreduce(std::string_view owner) {
  const ColorBlock block =
      claim(owner, ColorSpace::kAllReduceBase, ColorSpace::kBlockSize);
  return wse::AllReduceColors{block.at(0), block.at(1), block.at(2),
                              block.at(3)};
}

ColorBlock ColorPlan::claim_nack(std::string_view owner) {
  return claim(owner, ColorSpace::kNackBase, ColorSpace::kBlockSize);
}

std::string ColorPlan::describe() const {
  std::ostringstream os;
  os << "color map:";
  for (u8 c = 0; c < kManagedColors; ++c) {
    os << "\n  color " << static_cast<int>(c) << ": "
       << (owners_[c].empty() ? "<free>" : owners_[c]);
  }
  return os.str();
}

}  // namespace fvf::dataflow
