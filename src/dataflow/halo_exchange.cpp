#include "dataflow/halo_exchange.hpp"

#include <sstream>
#include <utility>

#include "common/assert.hpp"

namespace fvf::dataflow {

namespace {

using wse::Color;
using wse::ColorConfig;
using wse::Dir;
using wse::Dsd;
using wse::FabricDsd;
using wse::PeApi;
using wse::RouteRule;
using wse::unpack_f32;

[[nodiscard]] mesh::Face face_of(Color color) noexcept {
  return is_cardinal_color(color) ? cardinal_face(color) : diagonal_face(color);
}

}  // namespace

HaloExchange::HaloExchange(Coord2 coord, Coord2 fabric_size, i32 block_length,
                           HaloReliabilityOptions reliability)
    : coord_(coord),
      fabric_(fabric_size),
      block_length_(block_length),
      reliability_(reliability) {
  FVF_REQUIRE(block_length > 0);
  FVF_REQUIRE(reliability.watchdog_cycles > 0.0);
  FVF_REQUIRE(reliability.max_retries > 0);
  const usize n = static_cast<usize>(block_length);
  for (auto& buf : card_buf_) {
    buf.assign(n, 0.0f);
  }
  for (auto& buf : diag_buf_) {
    buf.assign(n, 0.0f);
  }
  const auto exists = [&](mesh::Face face) {
    const Coord3 off = mesh::face_offset(face);
    const i32 nx = coord_.x + off.x;
    const i32 ny = coord_.y + off.y;
    return nx >= 0 && nx < fabric_.x && ny >= 0 && ny < fabric_.y;
  };
  for (const Color c : kCardinalColors) {
    LinkState& s = card_[cardinal_index(c)];
    s.has_upstream = exists(cardinal_face(c));
    expected_cards_ += s.has_upstream;
  }
  for (const Color c : kDiagonalColors) {
    LinkState& s = diag_[diagonal_index(c)];
    s.has_upstream = exists(diagonal_face(c));
    expected_diags_ += s.has_upstream;
  }
}

void HaloExchange::configure_router(wse::Router& router) const {
  for (const Color c : kCardinalColors) {
    router.configure(c, ColorConfig({wse::position(
                            {RouteRule{Dir::Ramp, {movement_dir(c)}},
                             RouteRule{upstream_dir(c), {Dir::Ramp}}})}));
  }
  for (const Color c : kDiagonalColors) {
    router.configure(c, ColorConfig({wse::position(
                            {RouteRule{Dir::Ramp, {movement_dir(c)}},
                             RouteRule{upstream_dir(c), {Dir::Ramp}}})}));
  }
  if (reliability_.enabled) {
    // NACKs travel one hop against the data flow: same static
    // pass-through shape as the halo colors.
    for (const Color c : kNackColors) {
      const Dir move = nack_movement_dir(c);
      router.configure(
          c, ColorConfig({wse::position({RouteRule{Dir::Ramp, {move}},
                                         RouteRule{wse::opposite(move),
                                                   {Dir::Ramp}}})}));
    }
  }
}

std::vector<wse::SendDeclaration> HaloExchange::send_declarations() const {
  std::vector<wse::SendDeclaration> sends;
  for (const Color c : kCardinalColors) {
    // begin_round injects on every cardinal color unconditionally;
    // boundary traffic is absorbed at the wafer edge by design.
    sends.push_back({c, false});
    if (card_[cardinal_index(c)].has_upstream) {
      sends.push_back({diagonal_forward_color(c), false});
      if (reliability_.enabled) {
        sends.push_back({nack_color_toward(upstream_dir(c)), false});
      }
    }
  }
  if (reliability_.enabled) {
    for (const Color c : kDiagonalColors) {
      if (diag_[diagonal_index(c)].has_upstream) {
        sends.push_back({nack_color_toward(upstream_dir(c)), false});
      }
    }
  }
  return sends;
}

std::vector<wse::ChannelDependency> HaloExchange::channel_dependencies()
    const {
  std::vector<wse::ChannelDependency> deps;
  const auto downstream_exists = [&](Dir move) {
    const Coord2 off = wse::dir_offset(move);
    const i32 nx = coord_.x + off.x;
    const i32 ny = coord_.y + off.y;
    return nx >= 0 && nx < fabric_.x && ny >= 0 && ny < fabric_.y;
  };
  for (const Color c : kCardinalColors) {
    if (card_[cardinal_index(c)].has_upstream) {
      // Figure 5 intermediary: the rotated forward is sent from inside
      // the cardinal block's handler.
      deps.push_back({c, diagonal_forward_color(c)});
    }
    if (reliability_.enabled && downstream_exists(movement_dir(c))) {
      // Origin retransmit of the cardinal payload waits for the
      // downstream receiver's NACK. The NACK itself is watchdog-timer
      // triggered and therefore has no prerequisite: the wait chain ends
      // there.
      deps.push_back({nack_color_toward(upstream_dir(c)), c});
    }
  }
  if (reliability_.enabled) {
    for (const Color c : kDiagonalColors) {
      const Color source = diagonal_source_color(c);
      if (card_[cardinal_index(source)].has_upstream &&
          downstream_exists(movement_dir(c))) {
        // Intermediary retransmit of a forwarded diagonal block.
        deps.push_back({nack_color_toward(upstream_dir(c)), c});
      }
    }
  }
  return deps;
}

std::vector<wse::Color> HaloExchange::upstream_colors() const {
  std::vector<Color> colors;
  for (const Color c : kCardinalColors) {
    if (card_[cardinal_index(c)].has_upstream) {
      colors.push_back(c);
    }
  }
  for (const Color c : kDiagonalColors) {
    if (diag_[diagonal_index(c)].has_upstream) {
      colors.push_back(c);
    }
  }
  return colors;
}

void HaloExchange::set_handlers(BlockHandler on_block,
                                RoundHandler on_round_complete) {
  on_block_ = std::move(on_block);
  on_round_complete_ = std::move(on_round_complete);
}

void HaloExchange::begin_round(PeApi& api, std::span<const f32> payload) {
  FVF_REQUIRE(static_cast<i32>(payload.size()) == block_length_);
  FVF_REQUIRE_MSG(!round_open_, "begin_round while a round is in flight");
  FVF_REQUIRE(on_block_ != nullptr && on_round_complete_ != nullptr);
  ++round_;
  done_this_round_ = 0;
  round_open_ = true;

  if (reliability_.enabled) {
    retries_ = 0;
    retries_exhausted_ = false;
    // Keep the payload for cardinal retransmits (two-slot buffer indexed
    // by round parity; a NACK only ever asks for the current or the
    // previous round).
    const usize slot = static_cast<usize>(round_) & 1;
    origin_resend_[slot].assign(payload.begin(), payload.end());
    origin_tag_[slot] = round_;
    for (const Color c : kCardinalColors) {
      send_tagged(api, c, round_, payload);
    }
    for (const Color c : kCardinalColors) {
      try_process_reliable(api, c);
    }
    for (const Color c : kDiagonalColors) {
      try_process_reliable(api, c);
    }
    check_round_complete(api);
    if (round_open_ && expected_blocks() > 0) {
      arm_watchdog(api);
    }
    return;
  }

  for (const Color c : kCardinalColors) {
    api.send(c, payload);
  }
  // Blocks that arrived one round early are current now.
  for (const Color c : kCardinalColors) {
    LinkState& s = card_[cardinal_index(c)];
    if (s.buffered && s.processed == round_ - 1) {
      process_block(api, c);
    }
  }
  for (const Color c : kDiagonalColors) {
    LinkState& s = diag_[diagonal_index(c)];
    if (s.buffered && s.processed == round_ - 1) {
      process_block(api, c);
    }
  }
  check_round_complete(api);
}

void HaloExchange::process_block(PeApi& api, Color color) {
  const bool cardinal = is_cardinal_color(color);
  LinkState& s = cardinal ? card_[cardinal_index(color)]
                          : diag_[diagonal_index(color)];
  FVF_ASSERT(s.buffered);
  std::vector<f32>& buf = cardinal ? card_buf_[cardinal_index(color)]
                                   : diag_buf_[diagonal_index(color)];
  // The block handler is the program's physics: its cycles are compute,
  // not halo traffic (profiler retag; no observable effect on the run).
  api.set_phase(obs::Phase::LocalCompute);
  on_block_(api, face_of(color), Dsd::of(buf));
  ++s.processed;
  s.buffered = false;
  ++done_this_round_;
}

void HaloExchange::on_data(PeApi& api, Color color, Dir from,
                           std::span<const u32> data) {
  FVF_REQUIRE(owns(color));
  FVF_REQUIRE(from == upstream_dir(color));
  if (reliability_.enabled) {
    on_data_reliable(api, color, data);
    return;
  }
  FVF_REQUIRE(static_cast<i32>(data.size()) == block_length_);

  const bool cardinal = is_cardinal_color(color);
  LinkState& s = cardinal ? card_[cardinal_index(color)]
                          : diag_[diagonal_index(color)];
  FVF_REQUIRE_MSG(s.has_upstream, "halo block from a nonexistent neighbor");
  const i32 tag = s.received;
  ++s.received;
  FVF_REQUIRE_MSG(!s.buffered, "halo receive buffer overrun");
  FVF_REQUIRE_MSG(tag <= round_, "neighbor ran more than 1 round ahead");

  std::vector<f32>& buf = cardinal ? card_buf_[cardinal_index(color)]
                                   : diag_buf_[diagonal_index(color)];
  api.fmovs(Dsd::of(buf), FabricDsd::of(data));
  s.buffered = true;
  if (cardinal) {
    // Intermediary role (Figure 5): forward for the diagonal second hop.
    api.send(diagonal_forward_color(color), buf);
  }
  if (round_open_ && tag == round_ - 1) {
    process_block(api, color);
    check_round_complete(api);
  }
}

void HaloExchange::on_data_reliable(PeApi& api, Color color,
                                    std::span<const u32> data) {
  FVF_REQUIRE(static_cast<i32>(data.size()) == block_length_ + 1);
  LinkState& s = link(color);
  FVF_REQUIRE_MSG(s.has_upstream, "halo block from a nonexistent neighbor");

  const i32 tag = static_cast<i32>(unpack_f32(data[0]));
  if (tag <= s.processed) {
    // A retransmit raced the (stalled) original, or a spurious NACK was
    // answered: already consumed, drop.
    ++duplicates_dropped_;
    return;
  }
  for (const Buffered& entry : s.pending) {
    if (entry.tag == tag) {
      ++duplicates_dropped_;
      return;
    }
  }
  if (tag > round_ + 1) {
    std::ostringstream os;
    os << "halo protocol violation at PE(" << coord_.x << ',' << coord_.y
       << "): color " << static_cast<int>(color.id()) << " block tagged "
       << tag << " while in round " << round_;
    api.report_protocol_error(os.str());
    return;
  }
  FVF_REQUIRE_MSG(s.pending.size() < 2, "halo receive buffer overrun");

  Buffered entry;
  entry.tag = tag;
  entry.data.assign(static_cast<usize>(block_length_), 0.0f);
  api.fmovs(Dsd::of(entry.data), FabricDsd::of(data.subspan(1)));
  ++s.received;
  if (s.nacked_tag == tag) {
    // The block we actively requested arrived: a protocol-level
    // recovery. (If the original was merely stalled, not dropped, this
    // over-reports; FaultStats clamps against the drop count.)
    api.report_fault_recovered(1);
    s.nacked_tag = 0;
  }
  if (is_cardinal_color(color)) {
    // Intermediary role (Figure 5): forward for the diagonal second hop,
    // and keep a copy so a diagonal NACK can be answered.
    const Color fwd = diagonal_forward_color(color);
    const usize idx = diagonal_index(fwd);
    const usize slot = static_cast<usize>(tag) & 1;
    diag_resend_[idx][slot] = entry.data;
    diag_tag_[idx][slot] = tag;
    send_tagged(api, fwd, tag, entry.data);
  }
  s.pending.push_back(std::move(entry));
  try_process_reliable(api, color);
  check_round_complete(api);
}

void HaloExchange::try_process_reliable(PeApi& api, Color color) {
  if (!round_open_) {
    return;
  }
  LinkState& s = link(color);
  if (s.processed != round_ - 1) {
    return;
  }
  for (auto it = s.pending.begin(); it != s.pending.end(); ++it) {
    if (it->tag != round_) {
      continue;
    }
    // Move the block into the stable per-face buffer before notifying:
    // handler views must survive until the next begin_round (owners may
    // stash them), while the pending entry dies below.
    std::vector<f32>& buf = is_cardinal_color(color)
                                ? card_buf_[cardinal_index(color)]
                                : diag_buf_[diagonal_index(color)];
    std::swap(buf, it->data);
    s.processed = round_;
    ++done_this_round_;
    s.pending.erase(it);
    api.set_phase(obs::Phase::LocalCompute);
    on_block_(api, face_of(color), Dsd::of(buf));
    return;
  }
}

void HaloExchange::send_tagged(PeApi& api, Color color, i32 tag,
                               std::span<const f32> payload) {
  // Wire format in reliable mode: [round tag | payload]. The two-span
  // send streams both straight from memory (no staging copy).
  const f32 tag_word = static_cast<f32>(tag);
  api.send(color, std::span<const f32>(&tag_word, 1), payload);
}

void HaloExchange::send_nack(PeApi& api, Color data_color, i32 tag) {
  const Color nack = nack_color_toward(upstream_dir(data_color));
  const std::array<f32, 2> request{static_cast<f32>(data_color.id()),
                                   static_cast<f32>(tag)};
  api.send(nack, request);
  ++nacks_sent_;
}

void HaloExchange::on_nack(PeApi& api, Color color, Dir from,
                           std::span<const u32> data) {
  FVF_REQUIRE(reliability_.enabled);
  FVF_REQUIRE(is_nack_color(color));
  FVF_REQUIRE(from == wse::opposite(nack_movement_dir(color)));
  FVF_REQUIRE(data.size() == 2);
  const Color requested{static_cast<u8>(unpack_f32(data[0]))};
  const i32 tag = static_cast<i32>(unpack_f32(data[1]));
  const usize slot = static_cast<usize>(tag) & 1;
  if (is_cardinal_color(requested)) {
    if (origin_tag_[slot] == tag) {
      send_tagged(api, requested, tag, origin_resend_[slot]);
    }
    // else: stale request for a payload we no longer hold — impossible
    // for a live neighbor (it is never two rounds behind); drop.
  } else if (is_diagonal_color(requested)) {
    const usize idx = diagonal_index(requested);
    if (diag_tag_[idx][slot] == tag) {
      send_tagged(api, requested, tag, diag_resend_[idx][slot]);
    }
    // else: this intermediary never received the cardinal block itself.
    // Our own watchdog is recovering it; the normal forward path will
    // serve the diagonal target when it arrives, or the target re-NACKs.
  }
}

void HaloExchange::on_timer(PeApi& api, u32 tag) {
  if (!reliability_.enabled || retries_exhausted_) {
    return;
  }
  if (!round_open_ || static_cast<i32>(tag) != round_) {
    return;  // stale watchdog from an already-completed round
  }
  if (retries_ >= reliability_.max_retries) {
    retries_exhausted_ = true;
    std::ostringstream os;
    os << "halo retransmit retries exhausted at PE(" << coord_.x << ','
       << coord_.y << ") after " << retries_ << " attempts in round "
       << round_;
    api.report_protocol_error(os.str());
    return;
  }
  ++retries_;
  for (const Color c : kCardinalColors) {
    LinkState& s = card_[cardinal_index(c)];
    if (s.has_upstream && s.processed < round_) {
      send_nack(api, c, round_);
      s.nacked_tag = round_;
    }
  }
  for (const Color c : kDiagonalColors) {
    LinkState& s = diag_[diagonal_index(c)];
    if (s.has_upstream && s.processed < round_) {
      send_nack(api, c, round_);
      s.nacked_tag = round_;
    }
  }
  arm_watchdog(api);
}

void HaloExchange::arm_watchdog(PeApi& api) {
  api.schedule_timer(reliability_.watchdog_cycles,
                     static_cast<u32>(round_));
}

void HaloExchange::check_round_complete(PeApi& api) {
  if (round_open_ && done_this_round_ == expected_blocks()) {
    // Close the round before notifying: the handler may begin the next.
    round_open_ = false;
    // The completion hook continues the program (next phase/iteration).
    api.set_phase(obs::Phase::LocalCompute);
    on_round_complete_(api);
  }
}

}  // namespace fvf::dataflow
