/// \file colors.hpp
/// \brief Canonical color (routing tag) layout of the fvf::dataflow
///        runtime: the 16-color managed space shared by every dataflow
///        program, plus the constexpr geometry helpers tying colors to
///        movement directions and mesh faces.
///
/// The managed space is carved into four blocks of four:
///
///   colors  0- 3   cardinal data      (two-switch-position protocol or
///                                      static halo routes)
///   colors  4- 7   diagonal forwards  (Figure 5 intermediary hops)
///   colors  8-11   AllReduce trees    (row/col reduce + row/col bcast)
///   colors 12-15   retransmit NACKs   (halo reliability layer)
///
/// Programs obtain blocks through ColorPlan (color_plan.hpp), which
/// registers ownership and rejects conflicting claims; the constants here
/// are the canonical values those claims resolve to, so checked-in golden
/// traces stay valid across refactors.
///
/// Communication plan per application of Algorithm 1 (paper Section 5.2):
///
/// *Cardinal exchange* — four data colors, one per movement direction.
/// Each uses the two-switch-position send/receive protocol of Figure 6:
/// PEs at even coordinate along the movement axis send first; their
/// control wavelet flips both routers; the odd PEs then send back.
///
///   color       moves   received from   provides face   forwarded on
///   kEastData   East    West neighbor   x-  (XMinus)    kDiagSouth
///   kWestData   West    East neighbor   x+  (XPlus)     kDiagNorth
///   kNorthData  North   South neighbor  y-  (YMinus)    kDiagEast
///   kSouthData  South   North neighbor  y+  (YPlus)     kDiagWest
///
/// *Diagonal exchange* — four forward colors with static routes
/// (Ramp -> movement dir; upstream -> Ramp). Every PE acts as the
/// intermediary of Figure 5: on receiving a cardinal block it immediately
/// re-sends it rotated counterclockwise (W->S, S->E, E->N, N->W), so each
/// corner's data reaches the diagonal target in two hops and all four
/// corner transfers proceed concurrently through distinct intermediaries.
///
///   color        second hop   received from   provides corner  face
///   kDiagSouth   southward    North neighbor  north-west       xy-+
///   kDiagNorth   northward    South neighbor  south-east       xy+-
///   kDiagEast    eastward     West neighbor   south-west       xy--
///   kDiagWest    westward     East neighbor   north-east       xy++
#pragma once

#include <array>
#include <optional>

#include "mesh/stencil.hpp"
#include "wse/collectives.hpp"
#include "wse/fabric_types.hpp"

namespace fvf::dataflow {

/// Static layout of the managed color space (see the file comment).
struct ColorSpace {
  static constexpr u8 kBlockSize = 4;
  static constexpr u8 kCardinalBase = 0;
  static constexpr u8 kDiagonalBase = kCardinalBase + kBlockSize;
  static constexpr u8 kAllReduceBase = kDiagonalBase + kBlockSize;
  static constexpr u8 kNackBase = kAllReduceBase + kBlockSize;
  static constexpr u8 kManagedColors = kNackBase + kBlockSize;
};

namespace detail {
[[nodiscard]] constexpr wse::Color block_color(u8 base, u8 offset) noexcept {
  return wse::Color{static_cast<u8>(base + offset)};
}
}  // namespace detail

inline constexpr wse::Color kEastData =
    detail::block_color(ColorSpace::kCardinalBase, 0);
inline constexpr wse::Color kWestData =
    detail::block_color(ColorSpace::kCardinalBase, 1);
inline constexpr wse::Color kNorthData =
    detail::block_color(ColorSpace::kCardinalBase, 2);
inline constexpr wse::Color kSouthData =
    detail::block_color(ColorSpace::kCardinalBase, 3);
inline constexpr wse::Color kDiagSouth =
    detail::block_color(ColorSpace::kDiagonalBase, 0);
inline constexpr wse::Color kDiagNorth =
    detail::block_color(ColorSpace::kDiagonalBase, 1);
inline constexpr wse::Color kDiagEast =
    detail::block_color(ColorSpace::kDiagonalBase, 2);
inline constexpr wse::Color kDiagWest =
    detail::block_color(ColorSpace::kDiagonalBase, 3);

inline constexpr std::array<wse::Color, 4> kCardinalColors = {
    kEastData, kWestData, kNorthData, kSouthData};
inline constexpr std::array<wse::Color, 4> kDiagonalColors = {
    kDiagSouth, kDiagNorth, kDiagEast, kDiagWest};

/// *AllReduce trees* — four colors carrying the chain reductions and
/// broadcasts of wse::AllReduceSum (row reduce West, column reduce South,
/// then row/column broadcast back). Historically these were implicit
/// numeric literals inside each program; the canonical block lives here
/// and is handed out by ColorPlan::claim_allreduce.
inline constexpr wse::Color kAllReduceRowReduce =
    detail::block_color(ColorSpace::kAllReduceBase, 0);
inline constexpr wse::Color kAllReduceColReduce =
    detail::block_color(ColorSpace::kAllReduceBase, 1);
inline constexpr wse::Color kAllReduceRowBcast =
    detail::block_color(ColorSpace::kAllReduceBase, 2);
inline constexpr wse::Color kAllReduceColBcast =
    detail::block_color(ColorSpace::kAllReduceBase, 3);

/// The canonical AllReduce color group (matches the pre-ColorPlan
/// hard-coded assignment bit for bit).
[[nodiscard]] inline wse::AllReduceColors canonical_allreduce_colors() {
  return wse::AllReduceColors{kAllReduceRowReduce, kAllReduceColReduce,
                              kAllReduceRowBcast, kAllReduceColBcast};
}

/// *Retransmit NACKs* — four colors with static one-hop routes, one per
/// travel direction, used by the halo-exchange reliability layer (a
/// receiver missing a block NACKs its upstream neighbor, which resends
/// from a bounded resend buffer). Configured and used only when
/// HaloReliabilityOptions::enabled is set.
inline constexpr wse::Color kNackEast =
    detail::block_color(ColorSpace::kNackBase, 0);
inline constexpr wse::Color kNackWest =
    detail::block_color(ColorSpace::kNackBase, 1);
inline constexpr wse::Color kNackNorth =
    detail::block_color(ColorSpace::kNackBase, 2);
inline constexpr wse::Color kNackSouth =
    detail::block_color(ColorSpace::kNackBase, 3);

inline constexpr std::array<wse::Color, 4> kNackColors = {
    kNackEast, kNackWest, kNackNorth, kNackSouth};

[[nodiscard]] constexpr bool is_nack_color(wse::Color c) noexcept {
  return c.id() >= kNackEast.id() && c.id() <= kNackSouth.id();
}

/// Direction a NACK color carries its request in.
[[nodiscard]] constexpr wse::Dir nack_movement_dir(wse::Color c) noexcept {
  if (c == kNackEast) {
    return wse::Dir::East;
  }
  if (c == kNackWest) {
    return wse::Dir::West;
  }
  if (c == kNackNorth) {
    return wse::Dir::North;
  }
  return wse::Dir::South;
}

/// The NACK color that travels toward `d`.
[[nodiscard]] constexpr wse::Color nack_color_toward(wse::Dir d) noexcept {
  switch (d) {
    case wse::Dir::East: return kNackEast;
    case wse::Dir::West: return kNackWest;
    case wse::Dir::North: return kNackNorth;
    default: return kNackSouth;
  }
}

/// Index (0..3) of a cardinal or diagonal color within its group.
[[nodiscard]] constexpr usize cardinal_index(wse::Color c) noexcept {
  return static_cast<usize>(c.id() - ColorSpace::kCardinalBase);
}
[[nodiscard]] constexpr usize diagonal_index(wse::Color c) noexcept {
  return static_cast<usize>(c.id() - ColorSpace::kDiagonalBase);
}

[[nodiscard]] constexpr bool is_cardinal_color(wse::Color c) noexcept {
  return c.id() >= kEastData.id() && c.id() <= kSouthData.id();
}
[[nodiscard]] constexpr bool is_diagonal_color(wse::Color c) noexcept {
  return c.id() >= kDiagSouth.id() && c.id() <= kDiagWest.id();
}

/// Direction a cardinal (or diagonal-forward) color moves data in.
[[nodiscard]] constexpr wse::Dir movement_dir(wse::Color c) noexcept {
  if (c == kEastData || c == kDiagEast) {
    return wse::Dir::East;
  }
  if (c == kWestData || c == kDiagWest) {
    return wse::Dir::West;
  }
  if (c == kNorthData || c == kDiagNorth) {
    return wse::Dir::North;
  }
  return wse::Dir::South;
}

/// Link a block of this color arrives through (= opposite of movement).
[[nodiscard]] constexpr wse::Dir upstream_dir(wse::Color c) noexcept {
  return wse::opposite(movement_dir(c));
}

/// Mesh face whose neighbor data a cardinal color delivers.
[[nodiscard]] constexpr mesh::Face cardinal_face(wse::Color c) noexcept {
  if (c == kEastData) {
    return mesh::Face::XMinus;
  }
  if (c == kWestData) {
    return mesh::Face::XPlus;
  }
  if (c == kNorthData) {
    return mesh::Face::YMinus;
  }
  return mesh::Face::YPlus;
}

/// Mesh face whose corner data a diagonal color delivers.
[[nodiscard]] constexpr mesh::Face diagonal_face(wse::Color c) noexcept {
  if (c == kDiagSouth) {
    return mesh::Face::DiagMP;  // north-west corner
  }
  if (c == kDiagNorth) {
    return mesh::Face::DiagPM;  // south-east corner
  }
  if (c == kDiagEast) {
    return mesh::Face::DiagMM;  // south-west corner
  }
  return mesh::Face::DiagPP;  // north-east corner
}

/// The diagonal color on which a cardinal block is forwarded by its
/// intermediary (the counterclockwise rotation W->S, S->E, E->N, N->W).
[[nodiscard]] constexpr wse::Color diagonal_forward_color(
    wse::Color cardinal) noexcept {
  if (cardinal == kEastData) {
    return kDiagSouth;  // arrived from West  -> forward South
  }
  if (cardinal == kWestData) {
    return kDiagNorth;  // arrived from East  -> forward North
  }
  if (cardinal == kNorthData) {
    return kDiagEast;  // arrived from South -> forward East
  }
  return kDiagWest;  // arrived from North -> forward West
}

/// Inverse of diagonal_forward_color: the cardinal color whose blocks an
/// intermediary re-sends on `diagonal`.
[[nodiscard]] constexpr wse::Color diagonal_source_color(
    wse::Color diagonal) noexcept {
  if (diagonal == kDiagSouth) {
    return kEastData;
  }
  if (diagonal == kDiagNorth) {
    return kWestData;
  }
  if (diagonal == kDiagEast) {
    return kNorthData;
  }
  return kSouthData;
}

}  // namespace fvf::dataflow
