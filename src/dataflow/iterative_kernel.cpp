#include "dataflow/iterative_kernel.hpp"

#include <utility>

namespace fvf::dataflow {

IterativeKernelProgram::IterativeKernelProgram(Coord2 coord,
                                              Coord2 fabric_size)
    : coord_(coord), fabric_size_(fabric_size) {}

void IterativeKernelProgram::use_halo_exchange(
    i32 block_length, HaloReliabilityOptions reliability) {
  FVF_REQUIRE_MSG(!exchange_.has_value(),
                  "use_halo_exchange called twice on one program");
  exchange_.emplace(coord_, fabric_size_, block_length, reliability);
  exchange_->set_handlers(
      [this](wse::PeApi& api, mesh::Face face, wse::Dsd block) {
        on_halo_block(api, face, block);
      },
      [this](wse::PeApi& api) { on_halo_complete(api); });
}

void IterativeKernelProgram::use_allreduce(wse::AllReduceColors colors,
                                           i32 length, wse::ReduceOp op) {
  FVF_REQUIRE_MSG(!allreduce_.has_value(),
                  "use_allreduce called twice on one program");
  allreduce_.emplace(colors, coord_, fabric_size_, length, op);
}

void IterativeKernelProgram::bind_data(wse::Color color, DataHandler handler,
                                       obs::Phase phase) {
  FVF_REQUIRE(handler != nullptr);
  FVF_REQUIRE_MSG(data_handlers_[color.id()] == nullptr,
                  "data color " << static_cast<int>(color.id())
                                << " bound twice");
  data_handlers_[color.id()] = std::move(handler);
  color_phase_[color.id()] = phase;
}

void IterativeKernelProgram::bind_control(wse::Color color,
                                          ControlHandler handler,
                                          obs::Phase phase) {
  FVF_REQUIRE(handler != nullptr);
  FVF_REQUIRE_MSG(control_handlers_[color.id()] == nullptr,
                  "control color " << static_cast<int>(color.id())
                                   << " bound twice");
  control_handlers_[color.id()] = std::move(handler);
  color_phase_[color.id()] = phase;
}

void IterativeKernelProgram::configure_router(wse::Router& router) {
  if (exchange_.has_value()) {
    exchange_->configure_router(router);
  }
  if (allreduce_.has_value()) {
    allreduce_->configure_router(router);
  }
  configure_routes(router);
}

void IterativeKernelProgram::on_start(wse::PeApi& api) {
  reserve_memory(api.memory());
  begin(api);
}

void IterativeKernelProgram::on_data(wse::PeApi& api, wse::Color color,
                                     wse::Dir from,
                                     std::span<const u32> data) {
  if (data_handlers_[color.id()] != nullptr) {
    data_handlers_[color.id()](api, color, from, data);
    return;
  }
  if (allreduce_.has_value() && allreduce_->owns(color)) {
    allreduce_->on_data(api, color, from, data);
    return;
  }
  if (exchange_.has_value()) {
    if (is_nack_color(color)) {
      exchange_->on_nack(api, color, from, data);
      return;
    }
    if (HaloExchange::owns(color)) {
      if (!exchange_->reliability().enabled) {
        FVF_REQUIRE(static_cast<i32>(data.size()) ==
                    exchange_->block_length());
      }
      exchange_->on_data(api, color, from, data);
      return;
    }
  }
  FVF_REQUIRE_MSG(false, "PE(" << coord_.x << ',' << coord_.y
                               << ") received data on color "
                               << static_cast<int>(color.id())
                               << " with no handler, exchange or allreduce "
                                  "bound to it");
}

void IterativeKernelProgram::on_control(wse::PeApi& api, wse::Color color,
                                        wse::Dir from) {
  FVF_REQUIRE_MSG(control_handlers_[color.id()] != nullptr,
                  "PE(" << coord_.x << ',' << coord_.y
                        << ") received a control wavelet on color "
                        << static_cast<int>(color.id())
                        << " with no handler bound to it");
  control_handlers_[color.id()](api, color, from);
}

obs::Phase IterativeKernelProgram::task_phase(wse::Color color, bool control,
                                              bool timer) const noexcept {
  if (timer) {
    // Timers belong to the halo exchange's retransmit watchdog.
    return obs::Phase::Reliability;
  }
  const bool bound = control ? control_handlers_[color.id()] != nullptr
                             : data_handlers_[color.id()] != nullptr;
  if (bound) {
    return color_phase_[color.id()];
  }
  if (allreduce_.has_value() && allreduce_->owns(color)) {
    return obs::Phase::AllReduce;
  }
  if (exchange_.has_value()) {
    if (is_nack_color(color)) {
      return obs::Phase::Reliability;
    }
    if (HaloExchange::owns(color)) {
      return obs::Phase::Halo;
    }
  }
  return obs::Phase::LocalCompute;
}

bool IterativeKernelProgram::handles_color(wse::Color color,
                                           bool control) const {
  if (control) {
    return control_handlers_[color.id()] != nullptr;
  }
  if (data_handlers_[color.id()] != nullptr) {
    return true;
  }
  if (allreduce_.has_value() && allreduce_->owns(color)) {
    return true;
  }
  if (exchange_.has_value()) {
    if (is_nack_color(color)) {
      return exchange_->reliability().enabled;
    }
    if (HaloExchange::owns(color)) {
      return true;
    }
  }
  return false;
}

std::vector<wse::SendDeclaration> IterativeKernelProgram::send_declarations()
    const {
  std::vector<wse::SendDeclaration> sends = program_send_declarations();
  if (exchange_.has_value()) {
    const std::vector<wse::SendDeclaration> ex =
        exchange_->send_declarations();
    sends.insert(sends.end(), ex.begin(), ex.end());
  }
  if (allreduce_.has_value()) {
    const std::vector<wse::SendDeclaration> ar =
        allreduce_->send_declarations();
    sends.insert(sends.end(), ar.begin(), ar.end());
  }
  return sends;
}

std::vector<wse::SendDeclaration>
IterativeKernelProgram::program_send_declarations() const {
  return {};
}

std::vector<wse::ChannelDependency>
IterativeKernelProgram::channel_dependencies() const {
  std::vector<wse::ChannelDependency> deps = program_channel_dependencies();
  if (exchange_.has_value()) {
    const std::vector<wse::ChannelDependency> ex =
        exchange_->channel_dependencies();
    deps.insert(deps.end(), ex.begin(), ex.end());
  }
  if (allreduce_.has_value()) {
    const std::vector<wse::ChannelDependency> ar =
        allreduce_->channel_dependencies();
    deps.insert(deps.end(), ar.begin(), ar.end());
    if (exchange_.has_value()) {
      // Phase-structure bridge: the all-reduce contribution runs from
      // on_halo_complete (or later compute), so every tree send waits
      // for each halo arrival of the round. Halo sends of the *next*
      // round are round-to-round progress and deliberately undeclared.
      for (const wse::SendDeclaration& send :
           allreduce_->send_declarations()) {
        for (const wse::Color halo : exchange_->upstream_colors()) {
          deps.push_back({halo, send.color});
        }
      }
    }
  }
  return deps;
}

std::vector<wse::ReductionDeclaration>
IterativeKernelProgram::reduction_declarations() const {
  std::vector<wse::ReductionDeclaration> reductions =
      program_reduction_declarations();
  if (allreduce_.has_value()) {
    const std::vector<wse::ReductionDeclaration> ar =
        allreduce_->reduction_declarations();
    reductions.insert(reductions.end(), ar.begin(), ar.end());
  }
  return reductions;
}

std::vector<wse::ChannelDependency>
IterativeKernelProgram::program_channel_dependencies() const {
  return {};
}

std::vector<wse::ReductionDeclaration>
IterativeKernelProgram::program_reduction_declarations() const {
  return {};
}

void IterativeKernelProgram::on_timer(wse::PeApi& api, u32 tag) {
  FVF_REQUIRE_MSG(exchange_.has_value(),
                  "timer fired on a program without a halo exchange");
  exchange_->on_timer(api, tag);
}

void IterativeKernelProgram::on_halo_block(wse::PeApi&, mesh::Face,
                                           wse::Dsd) {
  FVF_REQUIRE_MSG(false,
                  "program attached a halo exchange but overrides neither "
                  "on_halo_block nor the block handler");
}

void IterativeKernelProgram::on_halo_complete(wse::PeApi&) {
  FVF_REQUIRE_MSG(false,
                  "program attached a halo exchange but does not override "
                  "on_halo_complete");
}

void IterativeKernelProgram::configure_routes(wse::Router&) {}

}  // namespace fvf::dataflow
