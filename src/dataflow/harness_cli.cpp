#include "dataflow/harness_cli.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <string>

#include "common/assert.hpp"
#include "common/cli.hpp"

namespace fvf::dataflow {

std::string parse_program_flag(const CliParser& cli,
                               std::string_view fallback,
                               std::span<const std::string> known,
                               std::span<const std::string_view> extra) {
  const std::string program =
      cli.get_string("program", std::string(fallback));
  if (std::find(known.begin(), known.end(), program) != known.end() ||
      std::find(extra.begin(), extra.end(), program) != extra.end()) {
    return program;
  }
  std::ostringstream names;
  for (usize i = 0; i < known.size(); ++i) {
    names << (i == 0 ? "" : ", ") << known[i];
  }
  FVF_REQUIRE_MSG(false, "unknown --program '"
                             << program << "' (registered kernels: "
                             << names.str() << ")");
}

void apply_verification_flags(HarnessOptions& options, const CliParser& cli) {
  options.execution.hazard_check = cli.has("hazard-check");
  const std::string level = cli.get_string("lint", "off");
  if (level == "off") {
    options.lint = lint::Level::Off;
  } else if (level == "warn") {
    options.lint = lint::Level::Warn;
  } else if (level == "strict") {
    options.lint = lint::Level::Strict;
  } else {
    FVF_REQUIRE_MSG(false, "unknown --lint level '"
                               << level << "' (expected off|warn|strict)");
  }
}

void print_hazard_summary(const RunInfo& info, bool enabled,
                          std::ostream& out) {
  if (!enabled) {
    return;
  }
  if (info.hazards_total == 0) {
    out << "hazard check: clean\n";
    return;
  }
  out << "hazard check: " << info.hazards_total << " finding(s)\n";
  for (const std::string& hazard : info.hazards) {
    out << "  " << hazard << '\n';
  }
  if (info.hazards_suppressed > 0) {
    out << "  (" << info.hazards_suppressed
        << " further finding(s) past the recording cap)\n";
  }
}

}  // namespace fvf::dataflow
