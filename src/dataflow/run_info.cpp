#include "dataflow/run_info.hpp"

#include <algorithm>

namespace fvf::dataflow {

void accumulate(RunInfo& into, const RunInfo& launch) {
  into.device_seconds += launch.device_seconds;
  into.makespan_cycles += launch.makespan_cycles;
  into.counters += launch.counters;
  for (usize i = 0; i < into.color_traffic.size(); ++i) {
    into.color_traffic[i] += launch.color_traffic[i];
  }
  into.max_pe_memory = std::max(into.max_pe_memory, launch.max_pe_memory);
  into.events_processed += launch.events_processed;
  into.phase_cycles += launch.phase_cycles;
  into.pe_phase_cycles.clear();
  into.faults += launch.faults;
  into.trace_events_emitted += launch.trace_events_emitted;
  into.trace_records_dropped += launch.trace_records_dropped;
  into.errors_total += launch.errors_total;
  into.errors_suppressed += launch.errors_suppressed;
  into.errors.insert(into.errors.end(), launch.errors.begin(),
                     launch.errors.end());
  into.hazards_total += launch.hazards_total;
  into.hazards_suppressed += launch.hazards_suppressed;
  into.hazards.insert(into.hazards.end(), launch.hazards.begin(),
                      launch.hazards.end());
}

}  // namespace fvf::dataflow
