/// \file harness_cli.hpp
/// \brief Shared CLI plumbing for the verification flags every
///        fabric-facing binary exposes.
///
/// All demos and benches accept the same two switches:
///
///   --lint off|warn|strict   static fabric-program verification level
///                            applied at load (fvf::lint); default off
///   --hazard-check           dynamic simulated-memory hazard detector
///                            (receive-into-live-buffer, overlapping
///                            DSD read/write); off by default and
///                            bit-identical to a run without it
///
/// Parsing them once here keeps the flag names, defaults, and error
/// text identical across binaries.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "dataflow/run_info.hpp"

namespace fvf {
class CliParser;
}  // namespace fvf

namespace fvf::dataflow {

/// Applies `--lint` and `--hazard-check` to `options`. Throws
/// ContractViolation when `--lint` names an unknown level.
void apply_verification_flags(HarnessOptions& options, const CliParser& cli);

/// Reads `--program` (using `fallback` when the flag is absent) and
/// validates it against `known`. Throws ContractViolation naming the
/// unknown value and listing every registered kernel — never silently
/// defaults. `extra` admits tool-specific pseudo-programs ("all").
[[nodiscard]] std::string parse_program_flag(
    const CliParser& cli, std::string_view fallback,
    std::span<const std::string> known,
    std::span<const std::string_view> extra = {});

/// Prints the run's hazard findings to `out`: one line per recorded
/// hazard plus a suppression note, or a "clean" line when the detector
/// flagged nothing. No-op when `enabled` is false (detector off).
void print_hazard_summary(const RunInfo& info, bool enabled,
                          std::ostream& out);

}  // namespace fvf::dataflow
