#include "dataflow/fabric_harness.hpp"

#include <iostream>
#include <sstream>

#include "obs/perfetto.hpp"

namespace fvf::dataflow {

HarnessOptions FabricHarness::effective(HarnessOptions options) {
  if (!options.trace_json_path.empty()) {
    // Exporting a timeline needs spans: phase attribution alone only
    // accumulates totals. Leave explicit capacities alone.
    if (options.execution.phase_span_capacity == 0) {
      options.execution.phase_span_capacity = 1u << 14;
    }
  }
  return options;
}

FabricHarness::FabricHarness(Coord2 extents, const HarnessOptions& options)
    : extents_(extents),
      options_(effective(options)),
      fabric_(extents.x, extents.y, options_.timings, options_.pe_memory_budget,
              options_.execution) {
  if (options_.trace == nullptr && !options_.trace_json_path.empty()) {
    // Keep-latest so a long run still shows its final iterations in the
    // exported timeline rather than an empty tail.
    owned_trace_ = std::make_unique<wse::TraceRecorder>(
        usize{1} << 20, wse::TraceRecorder::Mode::KeepLatest);
    options_.trace = owned_trace_.get();
  }
  if (options_.trace != nullptr) {
    fabric_.set_tracer(*options_.trace);
  }
}

void FabricHarness::audit_routes() const {
  for (i32 y = 0; y < extents_.y; ++y) {
    for (i32 x = 0; x < extents_.x; ++x) {
      const wse::Router& router = fabric_.router(x, y);
      for (u8 c = 0; c < wse::Color::kMaxColors; ++c) {
        const wse::Color color{c};
        if (!router.config(color).configured()) {
          continue;
        }
        if (!colors_.claimed(color)) {
          std::ostringstream os;
          os << "router at PE(" << x << ',' << y << ") configures color "
             << static_cast<int>(c)
             << " which no component claimed in the ColorPlan\n"
             << colors_.describe();
          throw ContractViolation(os.str());
        }
      }
    }
  }
}

RunInfo FabricHarness::run(u64 max_events) {
  const wse::RunReport report = fabric_.run(max_events);

  RunInfo info;
  info.makespan_cycles = report.makespan_cycles;
  info.device_seconds = options_.timings.seconds(report.makespan_cycles);
  info.counters = fabric_.total_counters();
  for (u8 c = 0; c < ColorPlan::kManagedColors; ++c) {
    info.color_traffic[c] = fabric_.color_traffic(wse::Color{c});
  }
  info.max_pe_memory = fabric_.max_memory_used();
  info.events_processed = report.events_processed;
  if (options_.execution.phase_profiling) {
    info.phase_cycles = fabric_.total_phase_cycles();
    info.pe_phase_cycles.reserve(static_cast<usize>(fabric_.pe_count()));
    for (i32 y = 0; y < extents_.y; ++y) {
      for (i32 x = 0; x < extents_.x; ++x) {
        info.pe_phase_cycles.push_back(fabric_.pe(x, y).phase_cycles());
      }
    }
  }
  info.faults = report.faults;
  info.trace_events_emitted = report.trace_events_emitted;
  info.trace_records_dropped = report.trace_records_dropped;
  info.errors_total = report.errors_total;
  info.errors_suppressed = report.errors_suppressed;
  info.errors = report.errors;
  if (!options_.trace_json_path.empty()) {
    if (!obs::write_perfetto_json(options_.trace_json_path, fabric_,
                                  options_.trace)) {
      std::cerr << "warning: could not write trace timeline to "
                << options_.trace_json_path << "\n";
    }
  }
  return info;
}

}  // namespace fvf::dataflow
