#include "dataflow/fabric_harness.hpp"

#include <sstream>

namespace fvf::dataflow {

FabricHarness::FabricHarness(Coord2 extents, const HarnessOptions& options)
    : extents_(extents),
      options_(options),
      fabric_(extents.x, extents.y, options.timings, options.pe_memory_budget,
              options.execution) {
  if (options_.trace != nullptr) {
    fabric_.set_tracer(*options_.trace);
  }
}

void FabricHarness::audit_routes() const {
  for (i32 y = 0; y < extents_.y; ++y) {
    for (i32 x = 0; x < extents_.x; ++x) {
      const wse::Router& router = fabric_.router(x, y);
      for (u8 c = 0; c < wse::Color::kMaxColors; ++c) {
        const wse::Color color{c};
        if (!router.config(color).configured()) {
          continue;
        }
        if (!colors_.claimed(color)) {
          std::ostringstream os;
          os << "router at PE(" << x << ',' << y << ") configures color "
             << static_cast<int>(c)
             << " which no component claimed in the ColorPlan\n"
             << colors_.describe();
          throw ContractViolation(os.str());
        }
      }
    }
  }
}

RunInfo FabricHarness::run(u64 max_events) {
  const wse::RunReport report = fabric_.run(max_events);

  RunInfo info;
  info.makespan_cycles = report.makespan_cycles;
  info.device_seconds = options_.timings.seconds(report.makespan_cycles);
  info.counters = fabric_.total_counters();
  for (u8 c = 0; c < ColorPlan::kManagedColors; ++c) {
    info.color_traffic[c] = fabric_.color_traffic(wse::Color{c});
  }
  info.max_pe_memory = fabric_.max_memory_used();
  info.events_processed = report.events_processed;
  info.faults = report.faults;
  info.trace_events_emitted = report.trace_events_emitted;
  info.trace_records_dropped = report.trace_records_dropped;
  info.errors_total = report.errors_total;
  info.errors_suppressed = report.errors_suppressed;
  info.errors = report.errors;
  return info;
}

}  // namespace fvf::dataflow
