#include "dataflow/fabric_harness.hpp"

#include <iostream>
#include <sstream>

#include "obs/perfetto.hpp"

namespace fvf::dataflow {

HarnessOptions FabricHarness::effective(HarnessOptions options) {
  if (!options.trace_json_path.empty()) {
    // Exporting a timeline needs spans: phase attribution alone only
    // accumulates totals. Leave explicit capacities alone.
    if (options.execution.phase_span_capacity == 0) {
      options.execution.phase_span_capacity = 1u << 14;
    }
  }
  return options;
}

FabricHarness::FabricHarness(Coord2 extents, const HarnessOptions& options)
    : extents_(extents),
      options_(effective(options)),
      fabric_(extents.x, extents.y, options_.timings, options_.pe_memory_budget,
              options_.execution) {
  if (options_.trace == nullptr && !options_.trace_json_path.empty()) {
    // Keep-latest so a long run still shows its final iterations in the
    // exported timeline rather than an empty tail.
    owned_trace_ = std::make_unique<wse::TraceRecorder>(
        usize{1} << 20, wse::TraceRecorder::Mode::KeepLatest);
    options_.trace = owned_trace_.get();
  }
  if (options_.trace != nullptr) {
    fabric_.set_tracer(*options_.trace);
  }
}

lint::Options FabricHarness::lint_options(bool full) const {
  lint::Options options;
  options.check_routing = full;
  options.check_memory = full;
  options.check_reconfiguration = full;
  // Flow analyses (buffer bounds, cross-color deadlock, determinism)
  // compare against the loaded fabric's own router_buffer_depth
  // (router_buffer_depth = 0 in lint::Options).
  options.check_flow = full;
  options.memory_budget = options_.pe_memory_budget;
  if (full) {
    options.probe_factory = probe_factory_;
  }
  options.color_claimed = [this](wse::Color c) { return colors_.claimed(c); };
  options.color_map = [this] { return colors_.describe(); };
  options.color_label = [this](wse::Color c) {
    std::ostringstream os;
    os << "color " << static_cast<int>(c.id());
    const std::string_view owner = colors_.owner_of(c);
    if (!owner.empty()) {
      os << " ('" << owner << "')";
    }
    return os.str();
  };
  return options;
}

void FabricHarness::verify_load() const {
  const bool full = options_.lint != lint::Level::Off;
  const lint::Report report = lint::run(fabric_, lint_options(full));
  // A configured-but-unclaimed color fails the load at every lint level:
  // that fail-fast contract predates the linter, and a silently
  // misrouted color is never survivable.
  for (const lint::Diagnostic& d : report.diagnostics) {
    if (d.check == lint::Check::UnclaimedColor) {
      throw ContractViolation(d.message);
    }
  }
  if (report.clean()) {
    return;
  }
  if (options_.lint == lint::Level::Strict && report.error_count() > 0) {
    throw ContractViolation(
        "fabric program failed static verification (--lint=strict):\n" +
        report.describe());
  }
  if (options_.lint != lint::Level::Off) {
    std::cerr << "fvf::lint: " << report.error_count() << " error(s), "
              << report.warning_count() << " warning(s)\n"
              << report.describe();
  }
}

lint::Report FabricHarness::lint_report() const {
  FVF_REQUIRE_MSG(probe_factory_ != nullptr,
                  "FabricHarness::lint_report requires a prior load()");
  return lint::run(fabric_, lint_options(/*full=*/true));
}

RunInfo FabricHarness::run(u64 max_events) {
  const wse::RunReport report = fabric_.run(max_events);

  RunInfo info;
  info.makespan_cycles = report.makespan_cycles;
  info.device_seconds = options_.timings.seconds(report.makespan_cycles);
  info.counters = fabric_.total_counters();
  for (u8 c = 0; c < ColorPlan::kManagedColors; ++c) {
    info.color_traffic[c] = fabric_.color_traffic(wse::Color{c});
  }
  info.max_pe_memory = fabric_.max_memory_used();
  info.events_processed = report.events_processed;
  if (options_.execution.phase_profiling) {
    info.phase_cycles = fabric_.total_phase_cycles();
    info.pe_phase_cycles.reserve(static_cast<usize>(fabric_.pe_count()));
    for (i32 y = 0; y < extents_.y; ++y) {
      for (i32 x = 0; x < extents_.x; ++x) {
        info.pe_phase_cycles.push_back(fabric_.pe(x, y).phase_cycles());
      }
    }
  }
  info.faults = report.faults;
  info.trace_events_emitted = report.trace_events_emitted;
  info.trace_records_dropped = report.trace_records_dropped;
  info.errors_total = report.errors_total;
  info.errors_suppressed = report.errors_suppressed;
  info.errors = report.errors;
  info.hazards = report.hazards;
  info.hazards_total = report.hazards_total;
  info.hazards_suppressed = report.hazards_suppressed;
  if (!options_.trace_json_path.empty()) {
    if (!obs::write_perfetto_json(options_.trace_json_path, fabric_,
                                  options_.trace)) {
      std::cerr << "warning: could not write trace timeline to "
                << options_.trace_json_path << "\n";
    }
  }
  return info;
}

}  // namespace fvf::dataflow
