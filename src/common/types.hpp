/// \file types.hpp
/// \brief Fundamental fixed-width type aliases and small vocabulary types
///        shared by every fluxwse subsystem.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fvf {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;
using usize = std::size_t;

/// Index of a cell in a linearised 3-D mesh (x innermost, z outermost),
/// matching the memory layout used by the GPU reference implementation
/// described in Section 6 of the paper.
using CellIndex = i64;

/// 3-D integer coordinate of a cell or processing element.
struct Coord3 {
  i32 x = 0;
  i32 y = 0;
  i32 z = 0;

  friend constexpr bool operator==(const Coord3&, const Coord3&) = default;
};

/// 2-D integer coordinate of a processing element on the fabric.
struct Coord2 {
  i32 x = 0;
  i32 y = 0;

  friend constexpr bool operator==(const Coord2&, const Coord2&) = default;
};

}  // namespace fvf
