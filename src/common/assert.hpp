/// \file assert.hpp
/// \brief Contract-checking macros (Core Guidelines I.6 / E.12 style).
///
/// FVF_REQUIRE checks preconditions in every build type and throws
/// fvf::ContractViolation on failure; FVF_ASSERT checks internal
/// invariants and is compiled out in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fvf {

/// Thrown when a precondition or invariant expressed via FVF_REQUIRE /
/// FVF_ASSERT does not hold.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace fvf

#define FVF_REQUIRE(expr)                                                     \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::fvf::detail::contract_failure("precondition", #expr, __FILE__,        \
                                      __LINE__, std::string{});               \
    }                                                                         \
  } while (false)

#define FVF_REQUIRE_MSG(expr, msg)                                            \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream fvf_require_os_;                                     \
      fvf_require_os_ << msg;                                                 \
      ::fvf::detail::contract_failure("precondition", #expr, __FILE__,        \
                                      __LINE__, fvf_require_os_.str());       \
    }                                                                         \
  } while (false)

#ifdef NDEBUG
#define FVF_ASSERT(expr) ((void)0)
#else
#define FVF_ASSERT(expr)                                                      \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::fvf::detail::contract_failure("invariant", #expr, __FILE__, __LINE__, \
                                      std::string{});                         \
    }                                                                         \
  } while (false)
#endif
