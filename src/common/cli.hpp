/// \file cli.hpp
/// \brief Minimal command-line option parser used by examples and the
///        benchmark harness (`--name value` / `--name=value` / `--flag`).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fvf {

/// Parses `--key value`, `--key=value`, and boolean `--flag` options.
/// Unrecognised positional arguments are collected in order.
class CliParser {
 public:
  CliParser(int argc, const char* const* argv);

  /// Whether a `--flag` (or `--key value`) was present.
  [[nodiscard]] bool has(const std::string& key) const;

  /// Raw string value, if the option was given a value.
  [[nodiscard]] std::optional<std::string> value(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] i64 get_int(const std::string& key, i64 fallback) const;
  [[nodiscard]] f64 get_double(const std::string& key, f64 fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& program_name() const noexcept {
    return program_name_;
  }

 private:
  std::string program_name_;
  std::map<std::string, std::string> options_;  // value may be empty (flag)
  std::vector<std::string> positional_;
};

}  // namespace fvf
