#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace fvf {

ThreadPool::ThreadPool(i32 threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<usize>(threads_ - 1));
  for (i32 i = 0; i < threads_ - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::drain_batch(std::unique_lock<std::mutex>& lock) {
  while (next_index_ < batch_count_) {
    const i64 index = next_index_++;
    const std::function<void(i64)>* fn = batch_fn_;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*fn)(index);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !first_error_) {
      first_error_ = error;
    }
    ++completed_;
  }
  if (completed_ == batch_count_) {
    drained_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  u64 seen = 0;
  std::unique_lock lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) {
      return;
    }
    seen = generation_;
    drain_batch(lock);
  }
}

void ThreadPool::run_indexed(i64 count, const std::function<void(i64)>& fn) {
  FVF_REQUIRE(count >= 0);
  if (count == 0) {
    return;
  }
  if (workers_.empty() || count == 1) {
    for (i64 i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  std::unique_lock lock(mutex_);
  FVF_REQUIRE_MSG(batch_fn_ == nullptr,
                  "ThreadPool::run_indexed is not reentrant");
  batch_fn_ = &fn;
  batch_count_ = count;
  next_index_ = 0;
  completed_ = 0;
  first_error_ = nullptr;
  ++generation_;
  wake_.notify_all();
  drain_batch(lock);
  drained_.wait(lock, [&] { return completed_ == batch_count_; });
  batch_fn_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

i32 ThreadPool::hardware_threads() noexcept {
  return std::max(1, static_cast<i32>(std::thread::hardware_concurrency()));
}

}  // namespace fvf
