/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation for reproducible
///        synthetic geomodels and test inputs.
///
/// All randomness in this repository flows through SplitMix64/Xoshiro256++
/// seeded explicitly, so every test, example, and benchmark is bit-for-bit
/// reproducible across runs and platforms.
#pragma once

#include <array>

#include "common/types.hpp"

namespace fvf {

/// SplitMix64: used for seeding and cheap scalar streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(u64 seed) : state_(seed) {}

  constexpr u64 next() noexcept {
    u64 z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// Xoshiro256++ — fast, high-quality, deterministic generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(u64 seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.next();
    }
  }

  u64 next() noexcept {
    const u64 result = rotl(state_[0] + state_[3], 23) + state_[0];
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  f64 uniform() noexcept {
    return static_cast<f64>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  f64 uniform(f64 lo, f64 hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  f64 normal() noexcept;

  /// Uniform integer in [0, bound) without modulo bias for small bounds.
  u64 below(u64 bound) noexcept { return bound ? next() % bound : 0; }

 private:
  static constexpr u64 rotl(u64 v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::array<u64, 4> state_{};
};

}  // namespace fvf
