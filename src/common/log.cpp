#include "common/log.hpp"

namespace fvf {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void Log::write(LogLevel level, const std::string& message) {
  const std::scoped_lock lock(log_mutex());
  std::cerr << "[fluxwse:" << level_name(level) << "] " << message << '\n';
}

}  // namespace fvf
