/// \file table.hpp
/// \brief ASCII table and CSV rendering used by the benchmark harness to
///        print rows matching the paper's Tables 1–4.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fvf {

/// Column alignment within a rendered table.
enum class Align { Left, Right };

/// A simple row/column text table. Cells are strings; numeric helpers are
/// provided for consistent formatting of times, throughputs, and counts.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers,
                     std::vector<Align> alignments = {});

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] usize row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] usize column_count() const noexcept { return headers_.size(); }

  /// Renders with box-drawing separators, e.g. for terminal output.
  [[nodiscard]] std::string render() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas).
  [[nodiscard]] std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> alignments_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds with four decimal places, as in the paper's tables.
[[nodiscard]] std::string format_seconds(f64 seconds);

/// Formats a number with a fixed number of decimals.
[[nodiscard]] std::string format_fixed(f64 value, int decimals);

/// Formats an integer with thousands separators, e.g. 183,393,000.
[[nodiscard]] std::string format_count(i64 value);

/// Formats a ratio as a speedup string, e.g. "204.0x".
[[nodiscard]] std::string format_speedup(f64 ratio);

/// Formats bytes in a human-friendly unit (KiB/MiB/GiB).
[[nodiscard]] std::string format_bytes(u64 bytes);

}  // namespace fvf
