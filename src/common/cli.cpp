#include "common/cli.hpp"

#include <cstdlib>
#include <stdexcept>

#include "common/assert.hpp"

namespace fvf {

CliParser::CliParser(int argc, const char* const* argv) {
  FVF_REQUIRE(argc >= 1);
  program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself an option;
    // otherwise a bare flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[i + 1];
      ++i;
    } else {
      options_[body] = "";
    }
  }
}

bool CliParser::has(const std::string& key) const {
  return options_.contains(key);
}

std::optional<std::string> CliParser::value(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) {
    return std::nullopt;
  }
  return it->second;
}

std::string CliParser::get_string(const std::string& key,
                                  const std::string& fallback) const {
  return value(key).value_or(fallback);
}

i64 CliParser::get_int(const std::string& key, i64 fallback) const {
  const auto v = value(key);
  if (!v) {
    return fallback;
  }
  // Validate the whole token: std::stoll alone would abort the program
  // on "--threads=abc" (uncaught std::invalid_argument) and silently
  // accept trailing garbage like "12abc".
  usize pos = 0;
  i64 parsed = 0;
  try {
    parsed = std::stoll(*v, &pos);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("option --" + key +
                                " has out-of-range value '" + *v + "'");
  } catch (const std::invalid_argument&) {
    pos = 0;
  }
  if (pos != v->size()) {
    throw std::invalid_argument("option --" + key + " has non-numeric value '" +
                                *v + "'");
  }
  return parsed;
}

f64 CliParser::get_double(const std::string& key, f64 fallback) const {
  const auto v = value(key);
  if (!v) {
    return fallback;
  }
  usize pos = 0;
  f64 parsed = 0.0;
  try {
    parsed = std::stod(*v, &pos);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("option --" + key +
                                " has out-of-range value '" + *v + "'");
  } catch (const std::invalid_argument&) {
    pos = 0;
  }
  if (pos != v->size()) {
    throw std::invalid_argument("option --" + key + " has non-numeric value '" +
                                *v + "'");
  }
  return parsed;
}

bool CliParser::get_bool(const std::string& key, bool fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) {
    return fallback;
  }
  if (it->second.empty() || it->second == "true" || it->second == "1" ||
      it->second == "yes" || it->second == "on") {
    return true;
  }
  if (it->second == "false" || it->second == "0" || it->second == "no" ||
      it->second == "off") {
    return false;
  }
  throw std::invalid_argument("boolean option --" + key +
                              " has non-boolean value '" + it->second + "'");
}

}  // namespace fvf
