/// \file log.hpp
/// \brief Leveled logging to stderr, off by default for benchmarks.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace fvf {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Process-wide logger configuration. Thread-safe; messages are emitted
/// atomically per call.
class Log {
 public:
  static void set_level(LogLevel level) noexcept { level_ref() = level; }
  [[nodiscard]] static LogLevel level() noexcept { return level_ref(); }

  static void write(LogLevel level, const std::string& message);

 private:
  static LogLevel& level_ref() noexcept {
    static LogLevel level = LogLevel::Warn;
    return level;
  }
};

namespace detail {

inline void log_emit(LogLevel level, const std::ostringstream& os) {
  Log::write(level, os.str());
}

}  // namespace detail
}  // namespace fvf

#define FVF_LOG(level, expr)                                 \
  do {                                                       \
    if (static_cast<int>(level) >=                           \
        static_cast<int>(::fvf::Log::level())) {             \
      std::ostringstream fvf_log_os_;                        \
      fvf_log_os_ << expr;                                   \
      ::fvf::detail::log_emit(level, fvf_log_os_);           \
    }                                                        \
  } while (false)

#define FVF_LOG_DEBUG(expr) FVF_LOG(::fvf::LogLevel::Debug, expr)
#define FVF_LOG_INFO(expr) FVF_LOG(::fvf::LogLevel::Info, expr)
#define FVF_LOG_WARN(expr) FVF_LOG(::fvf::LogLevel::Warn, expr)
#define FVF_LOG_ERROR(expr) FVF_LOG(::fvf::LogLevel::Error, expr)
