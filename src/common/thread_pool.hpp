/// \file thread_pool.hpp
/// \brief Fixed-width fork-join thread pool for the simulator and the
///        benchmark harness.
///
/// `ThreadPool(n)` provides n-way parallelism: n-1 persistent worker
/// threads plus the calling thread, which participates in every batch
/// (so `--threads N` never oversubscribes the host with N+1 runnable
/// threads). With n <= 1 the pool spawns nothing and runs batches
/// inline, making the serial path zero-overhead.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace fvf {

class ThreadPool {
 public:
  explicit ThreadPool(i32 threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism of the pool (workers + calling thread), >= 1.
  [[nodiscard]] i32 size() const noexcept { return threads_; }

  /// Invokes fn(i) for every i in [0, count), distributing indices over
  /// the pool (the caller runs tasks too). Blocks until every invocation
  /// has returned. If any invocation throws, the batch still drains and
  /// the first captured exception is rethrown to the caller. Batches may
  /// not be issued concurrently or reentrantly from pool tasks.
  void run_indexed(i64 count, const std::function<void(i64)>& fn);

  /// Parallelism available on this host (>= 1).
  [[nodiscard]] static i32 hardware_threads() noexcept;

 private:
  void worker_loop();
  /// Drains indices of the current batch; called with `lock` held by both
  /// workers and the issuing thread.
  void drain_batch(std::unique_lock<std::mutex>& lock);

  i32 threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;     ///< workers: a new batch (or stop)
  std::condition_variable drained_;  ///< issuer: batch fully completed
  const std::function<void(i64)>* batch_fn_ = nullptr;
  i64 batch_count_ = 0;
  i64 next_index_ = 0;
  i64 completed_ = 0;
  u64 generation_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace fvf
