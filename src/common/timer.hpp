/// \file timer.hpp
/// \brief Wall-clock timing utilities.
///
/// On the real machines the paper uses hardware timestamp counters (CS-2
/// SDK <time> library) and cudaEvent timers (A100). In this reproduction,
/// *simulated* device times come from the respective simulators' timing
/// models; WallTimer measures host-side elapsed time for the serial
/// reference and for harness bookkeeping.
#pragma once

#include <chrono>

#include "common/types.hpp"

namespace fvf {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] f64 seconds() const {
    return std::chrono::duration<f64>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed seconds into a target on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(f64& accumulator) : accumulator_(accumulator) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { accumulator_ += timer_.seconds(); }

 private:
  f64& accumulator_;
  WallTimer timer_;
};

}  // namespace fvf
