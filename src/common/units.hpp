/// \file units.hpp
/// \brief Physical constants and unit conversion helpers for the Darcy-flow
///        problem of paper Section 3.
#pragma once

#include "common/types.hpp"

namespace fvf::units {

/// Gravitational acceleration [m/s^2].
inline constexpr f64 kGravity = 9.80665;

/// One Darcy in SI permeability units [m^2].
inline constexpr f64 kDarcy = 9.869233e-13;
inline constexpr f64 kMilliDarcy = 1e-3 * kDarcy;

/// Pressure helpers.
inline constexpr f64 kPascal = 1.0;
inline constexpr f64 kBar = 1e5;
inline constexpr f64 kMegaPascal = 1e6;

/// Viscosity helpers [Pa*s].
inline constexpr f64 kCentiPoise = 1e-3;

/// Time helpers [s].
inline constexpr f64 kDay = 86400.0;
inline constexpr f64 kYear = 365.25 * kDay;

}  // namespace fvf::units
