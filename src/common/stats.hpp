/// \file stats.hpp
/// \brief Streaming statistics used to report the mean/standard-deviation
///        measurements in Tables 1–3 of the paper.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace fvf {

/// Welford streaming accumulator: numerically stable single-pass mean and
/// variance, plus min/max.
class RunningStats {
 public:
  void add(f64 value) noexcept;

  [[nodiscard]] u64 count() const noexcept { return count_; }
  [[nodiscard]] f64 mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] f64 variance() const noexcept;
  [[nodiscard]] f64 stddev() const noexcept;
  [[nodiscard]] f64 min() const noexcept { return min_; }
  [[nodiscard]] f64 max() const noexcept { return max_; }
  [[nodiscard]] f64 sum() const noexcept { return mean_ * static_cast<f64>(count_); }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  u64 count_ = 0;
  f64 mean_ = 0.0;
  f64 m2_ = 0.0;
  f64 min_ = 0.0;
  f64 max_ = 0.0;
};

/// Summary of a set of repeated timing measurements.
struct TimingSummary {
  f64 mean_seconds = 0.0;
  f64 stddev_seconds = 0.0;
  f64 min_seconds = 0.0;
  f64 max_seconds = 0.0;
  u64 repetitions = 0;
};

/// Reduce a vector of per-repetition timings into a summary.
[[nodiscard]] TimingSummary summarize_timings(std::span<const f64> seconds);

/// Percentile of a sample set via linear interpolation (p in [0, 100]).
[[nodiscard]] f64 percentile(std::vector<f64> samples, f64 p);

/// Relative error |a - b| / max(|a|, |b|, floor).
[[nodiscard]] f64 relative_error(f64 a, f64 b, f64 floor = 1e-300) noexcept;

/// Maximum absolute and relative difference between two equally sized
/// arrays. Used by validation tests comparing implementation outputs.
struct ArrayDiff {
  f64 max_abs = 0.0;
  f64 max_rel = 0.0;
  i64 argmax_abs = -1;
};

[[nodiscard]] ArrayDiff compare_arrays(std::span<const f32> a,
                                       std::span<const f32> b);
[[nodiscard]] ArrayDiff compare_arrays(std::span<const f64> a,
                                       std::span<const f64> b);

}  // namespace fvf
